// Chaos tests driven by the scenario engine: instead of ad-hoc goroutine
// sleeps deciding when the fault lands, each test's fault timeline is a
// seeded trace replayed through scenario.Player — Advance(t) applies every
// environment transition up to logical time t, synchronously, exactly
// between two phases of the test. External test package: scenario imports
// serve, so these tests cannot live inside package serve.
package serve_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
	"murmuration/internal/testutil"
)

func chaosInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, 3, 32, 32)
	x.RandNormal(rng, 0.5)
	return x
}

func chaosLatSLO(ms float64) runtime.SLO {
	return runtime.SLO{Type: env.LatencySLO, Value: ms}
}

func chaosDaemon(t *testing.T, net *supernet.Supernet, addr string) (*rpcx.Server, string) {
	t.Helper()
	srv := rpcx.NewServer()
	runtime.NewExecutor(net).Register(srv)
	monitor.RegisterHandlers(srv)
	cluster.NewNode().Register(srv)
	got, err := srv.Listen(addr)
	if err != nil {
		t.Fatalf("listen %q: %v", addr, err)
	}
	return srv, got
}

func chaosDial(t *testing.T, addr string, sh *netem.Shaper) *rpcx.Client {
	t.Helper()
	c, err := rpcx.Dial(addr, sh)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
	c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
	return c
}

// liveSpreadDecider spreads tiles round-robin over every device whose link
// looks alive (the runtime degrades a down device's link to ~zero).
func liveSpreadDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	}
}

// TestChaosLatencySpike drives the gateway through a scripted network latency
// spike and asserts the paper's "degrade, don't drop" contract end to end:
//
//   - during the spike, at least 90% of latency-SLO requests that rung 0
//     could no longer serve complete as Served-with-Degraded (the first
//     request or two are the learning cost — typed budget drops, never
//     Failed);
//   - hedged second attempts fire but never exceed the configured hedge
//     budget fraction of primary calls;
//   - deadline pressure is not device death: the failure detector keeps
//     both devices Up and no failover is attempted;
//   - once the spike clears, the hysteresis ladder climbs back to rung 0.
//
// The spike itself is a trace: SetDelay transitions at logical offsets,
// applied between test phases by scenario.Player — no wall-clock sleeps
// decide when the network turns bad.
func TestChaosLatencySpike(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		sloMs        = 1500
		spikeDelayMs = 600
		calmDelayMs  = 2
		baselineReqs = 5
		spikeReqs    = 30

		// Logical trace offsets: the spike starts after the baseline phase
		// and clears after the spike phase. The test advances the player to
		// each mark explicitly.
		spikeAt = 10 * time.Millisecond
		clearAt = 20 * time.Millisecond
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 303)

	srv1, addr1 := chaosDaemon(t, net, "127.0.0.1:0")
	defer srv1.Close()
	srv2, addr2 := chaosDaemon(t, net, "127.0.0.1:0")
	defer srv2.Close()

	// Data clients ride mutable shapers — the trace's SetDelay events are the
	// spike lever. Retry + idempotent marking so budget-poisoned connections
	// re-dial instead of failing the next call.
	sh1 := netem.NewShaper(0, calmDelayMs*time.Millisecond)
	sh2 := netem.NewShaper(0, calmDelayMs*time.Millisecond)
	data1, data2 := chaosDial(t, addr1, sh1), chaosDial(t, addr2, sh2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second
	sched.Hedge = &runtime.HedgePolicy{After: 40 * time.Millisecond, BudgetFrac: 0.2}

	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	// Heartbeats ride dedicated UNSHAPED connections: a latency spike on the
	// data path must read as deadline pressure, never as device death.
	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := serve.New(rt, serve.Options{
		Workers: 1, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32,
		MaxRung: 3, LadderHysteresis: 4,
	})
	defer g.Close(5 * time.Second)
	g.AttachCluster(m)
	m.Start()

	// The fault timeline as data: spike both links, later restore both.
	spike := &scenario.Trace{
		Name: "latency-spike",
		Seed: 303,
		Events: []scenario.Event{
			{At: spikeAt, Kind: scenario.EvSetDelay, Device: 0, Value: spikeDelayMs},
			{At: spikeAt, Kind: scenario.EvSetDelay, Device: 1, Value: spikeDelayMs},
			{At: clearAt, Kind: scenario.EvSetDelay, Device: 0, Value: calmDelayMs},
			{At: clearAt, Kind: scenario.EvSetDelay, Device: 1, Value: calmDelayMs},
		},
	}
	orch := scenario.NewOrchestrator([]scenario.Target{{Shaper: sh1}, {Shaper: sh2}})
	player := scenario.NewPlayer(orch, spike)

	// Phase 1 — calm baseline: everything serves at full quality, seeding the
	// rung-0 cost estimate and the batch EMA the spike will invalidate.
	for i := 0; i < baselineReqs; i++ {
		out, err := g.Submit(chaosInput(int64(i)), chaosLatSLO(sloMs))
		if err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
		if out.Rung != 0 {
			t.Fatalf("baseline request %d served at rung %d, want 0", i, out.Rung)
		}
	}

	// Phase 2 — spike: advance the player past the SetDelay events. Both data
	// links jump to a delay that makes any remote hop blow the SLO. The
	// system must learn this (a drop or two) and then keep serving degraded
	// instead of dropping.
	if n, err := player.Advance(spikeAt); err != nil || n != 2 {
		t.Fatalf("spike transition applied %d events, err=%v; want 2, nil", n, err)
	}
	served, servedDegraded := 0, 0
	for i := 0; i < spikeReqs; i++ {
		out, err := g.Submit(chaosInput(int64(100+i)), chaosLatSLO(sloMs))
		if err != nil {
			if !serve.IsBudgetExhausted(err) && !serve.IsDeadlineMissed(err) && !serve.IsShed(err) {
				t.Fatalf("spike request %d: unexpected error class: %v", i, err)
			}
			continue
		}
		served++
		if out.Rung > 0 {
			servedDegraded++
		}
	}
	if served < spikeReqs*9/10 {
		t.Fatalf("spike window served %d/%d, want >= 90%%", served, spikeReqs)
	}
	if servedDegraded == 0 {
		t.Fatal("no spike-window request was served degraded")
	}
	if r := g.Ladder().Rung(); r == 0 {
		t.Fatal("ladder still at rung 0 at the end of the spike window")
	}

	// Phase 3 — recovery: finish the trace (the restore events) and the
	// hysteresis ladder must climb all the way back to full quality.
	if n, err := player.Finish(); err != nil || n != 2 {
		t.Fatalf("restore transition applied %d events, err=%v; want 2, nil", n, err)
	}
	if player.Remaining() != 0 {
		t.Fatalf("%d trace events never applied", player.Remaining())
	}
	recovered := false
	for i := 0; i < 60; i++ {
		if _, err := g.Submit(chaosInput(int64(200+i)), chaosLatSLO(sloMs)); err != nil &&
			!serve.IsBudgetExhausted(err) && !serve.IsDeadlineMissed(err) && !serve.IsShed(err) {
			t.Fatalf("recovery request %d: unexpected error class: %v", i, err)
		}
		if g.Ladder().Rung() == 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("ladder never climbed back to rung 0: %+v", g.Ladder().Counters())
	}
	out, err := g.Submit(chaosInput(999), chaosLatSLO(sloMs))
	if err != nil || out.Rung != 0 {
		t.Fatalf("post-recovery request: err=%v rung=%d, want full quality", err, out.Rung)
	}

	st := g.Stats()
	ss := sched.Stats()
	if st.Failed != 0 {
		t.Fatalf("latency spike produced Failed=%d, want 0 (typed drops only): %+v", st.Failed, st)
	}
	if st.Degraded == 0 || st.DegradedRungs < st.Degraded {
		t.Fatalf("degradation counters %d/%d: %+v", st.Degraded, st.DegradedRungs, st)
	}
	if st.BudgetExhausted == 0 {
		t.Fatalf("expected typed budget drops while learning the spike: %+v", st)
	}
	if c := g.Ladder().Counters(); c.Degradations == 0 || c.Promotions == 0 {
		t.Fatalf("ladder counters %+v, want both descents and promotions", c)
	}
	// Hedging: second attempts fired during the spike, and never beyond the
	// configured fraction of primary calls.
	if ss.Hedges == 0 {
		t.Fatalf("no hedged attempts during a %dms spike: %+v", spikeDelayMs, ss)
	}
	if max := uint64(sched.Hedge.BudgetFrac*float64(ss.RemoteCalls)) + 1; ss.Hedges > max {
		t.Fatalf("hedges %d exceed budget (frac %.2f of %d calls): %+v",
			ss.Hedges, sched.Hedge.BudgetFrac, ss.RemoteCalls, ss)
	}
	if st.Hedges != ss.Hedges || st.HedgeWins != ss.HedgeWins {
		t.Fatalf("gateway stats do not mirror scheduler hedging: %+v vs %+v", st, ss)
	}
	// Deadline pressure must never look like device death.
	if st.FailoverAttempts != 0 {
		t.Fatalf("latency spike triggered failover: %+v", st)
	}
	for dev := 0; dev < 2; dev++ {
		if m.StateOf(dev) != cluster.Up {
			t.Fatalf("device %d is %v after a latency-only spike, want Up", dev, m.StateOf(dev))
		}
	}
	if h := rt.HealthyDevices(); !h[0] || !h[1] {
		t.Fatalf("healthy map %v after a latency-only spike", h)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: %+v", st)
	}
}

// TestChaosDeviceKill is the fault-injection load test: concurrent clients
// drive a gateway over real sockets while one of its two device daemons is
// killed mid-run and later restarted on the same address. The kill and the
// restart are trace events applied through the scenario orchestrator's
// leave/join hooks — the test decides when to advance the timeline by
// observed progress (enough requests served), not by sleeping and hoping.
//
// The serving invariant must hold throughout (no request vanishes), the
// outage must not fail requests (failover serves them on the surviving
// device), and once the daemon returns the detector must reintegrate it so
// strategies place work there again.
func TestChaosDeviceKill(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		numClients    = 8
		reqsPerClient = 6
		sloMs         = 30000 // generous: -race plus outage retries are slow

		killAt    = 10 * time.Millisecond // logical offsets on the trace clock
		restartAt = 20 * time.Millisecond
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 302)

	srv1, addr1 := chaosDaemon(t, net, "127.0.0.1:0")
	srv2, addr2 := chaosDaemon(t, net, "127.0.0.1:0")
	defer srv2.Close()

	data1, data2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second

	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	// Heartbeats ride dedicated connections (data calls serialize per client,
	// so sharing would let a slow batch delay failure detection).
	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := serve.New(rt, serve.Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32})
	g.AttachCluster(m)
	m.Start()

	gwSrv := rpcx.NewServer()
	g.Register(gwSrv)
	gwAddr, err := gwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()

	// The fault timeline as data: device 0 (daemon 1) leaves, then rejoins.
	// Leave kills the live server; join restarts one on the same address.
	var srv1b *rpcx.Server
	orch := scenario.NewOrchestrator([]scenario.Target{{
		Leave: func() { srv1.Close() },
		Join:  func() { srv1b, _ = chaosDaemon(t, net, addr1) },
	}})
	kill := &scenario.Trace{
		Name: "device-kill",
		Seed: 302,
		Events: []scenario.Event{
			{At: killAt, Kind: scenario.EvDeviceLeave, Device: 0},
			{At: restartAt, Kind: scenario.EvDeviceJoin, Device: 0},
		},
	}
	player := scenario.NewPlayer(orch, kill)
	defer func() {
		if srv1b != nil {
			srv1b.Close()
		}
	}()

	var success, shed, missed, otherErr atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := serve.DialClient(gwAddr)
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			for i := 0; i < reqsPerClient; i++ {
				res, err := cl.Infer(chaosInput(int64(100*c+i)), chaosLatSLO(sloMs), 60*time.Second)
				switch {
				case err == nil:
					success.Add(1)
					if res.Logits == nil || res.Logits.Shape[1] != 4 {
						t.Errorf("client %d: bad logits %v", c, res.Logits)
					}
				case serve.IsShed(err):
					shed.Add(1)
				case serve.IsDeadlineMissed(err):
					missed.Add(1)
				default:
					otherErr.Add(1)
					t.Errorf("client %d req %d: unexpected error %v", c, i, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(c)
	}

	// Progress-gated timeline: once traffic demonstrably flows, advance the
	// trace to the kill; after the detector confirms Down, advance to the
	// restart and wait for reintegration — all mid-load, no blind sleeps.
	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}
	waitFor("first successes before the kill", func() bool { return success.Load() >= 4 })
	if n, err := player.Advance(killAt); err != nil || n != 1 {
		t.Fatalf("kill event: applied %d, err=%v; want 1, nil", n, err)
	}
	waitFor("member 0 Down", func() bool { return m.StateOf(0) == cluster.Down })
	if n, err := player.Finish(); err != nil || n != 1 {
		t.Fatalf("restart event: applied %d, err=%v; want 1, nil", n, err)
	}
	waitFor("member 0 Up again", func() bool { return m.StateOf(0) == cluster.Up })

	wg.Wait()
	g.Close(30 * time.Second)

	st := g.Stats()
	const total = uint64(numClients * reqsPerClient)
	t.Logf("chaos: %d requests → success=%d shed=%d missed=%d; detector=%+v; stats=%+v",
		total, success.Load(), shed.Load(), missed.Load(), m.CountersSnapshot(), st)

	// Every request got exactly one definitive outcome, and the admission
	// ledger balances: nothing vanished during the outage.
	if got := success.Load() + shed.Load() + missed.Load() + otherErr.Load(); got != total {
		t.Fatalf("outcomes %d != requests %d", got, total)
	}
	if otherErr.Load() != 0 {
		t.Fatalf("%d requests failed with unexpected errors", otherErr.Load())
	}
	if st.Admitted+st.Shed != total {
		t.Fatalf("admitted %d + shed %d != %d attempts", st.Admitted, st.Shed, total)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	// Failover, not failure: requests caught on the dying device were retried
	// onto the survivors.
	if st.Failed != 0 {
		t.Fatalf("%d requests failed despite failover", st.Failed)
	}
	if success.Load() == 0 {
		t.Fatal("no request succeeded — chaos test vacuous")
	}
	// The detector saw the churn.
	if c := m.CountersSnapshot(); c.Downs < 1 || c.Recoveries < 1 {
		t.Fatalf("detector counters after kill+restart: %+v", c)
	}
	// Reintegration: with the daemon back and Up, resolution places work on
	// device 1 again (the degraded-constraint bucket is no longer used).
	res, err := rt.ResolveFor(rt.SLO())
	if err != nil {
		t.Fatal(err)
	}
	placed := false
	for _, layer := range res.Decision.Placement.Devices {
		for _, dev := range layer {
			if dev == 1 {
				placed = true
			}
		}
	}
	if !placed {
		t.Fatalf("recovered device 1 not back in the placement: %v", res.Decision.Placement.Devices)
	}
}
