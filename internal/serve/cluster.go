package serve

import (
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/runtime"
)

// Failover glue between the gateway and the cluster layer.
//
// Detection is two-pronged: the data path reacts synchronously the moment a
// batch fails with a runtime.DeviceError (noteDeviceError), while the
// heartbeat detector (AttachCluster) catches devices that die between
// requests and — crucially — is the only path that reintegrates a device once
// its heartbeats resume.

// noteDeviceError reacts to a device-attributed batch failure: demote the
// device in the runtime's health mask so the failover re-resolve avoids it,
// drop every cached strategy placing work there, and feed the observation to
// the failure detector so proactive probing converges faster.
func (g *Gateway) noteDeviceError(de *runtime.DeviceError) {
	// Placement device d >= 1 is remote index d-1 (cluster member d-1).
	idx := de.Device - 1
	g.rt.SetDeviceHealth(idx, false)
	if g.rt.Cache != nil {
		g.rt.Cache.InvalidateDevice(de.Device)
	}
	g.mu.Lock()
	m := g.cluster
	hook := g.opts.OnDeviceError
	g.mu.Unlock()
	if m != nil {
		m.ReportFailure(idx)
	}
	// Batch cost just changed regime (the placement lost a device); a wait
	// estimate learned before the demotion would mis-admit until it decayed.
	g.ResetWaitEstimates()
	if hook != nil {
		hook(de.Device, de.Err)
	}
}

// AttachCluster subscribes the gateway to a failure detector whose member i
// is the scheduler's remote device i+1. On Down the device is demoted and its
// cached strategies invalidated; on recovery it is reinstated. Either way the
// strategy for the gateway's global SLO is re-resolved (re-warmed) so the
// next batch doesn't pay the decide cost. The event loop exits when the
// manager is closed; close the manager before or after the gateway, order
// does not matter.
//
// The subscription is the batch channel: same-tick transitions (a mass kill
// via MarkDownBatch, a sweep that expires several members at once) arrive as
// one slice, so a correlated loss of K devices costs one demote/invalidate
// pass, one wait-estimate reset, and one rewarm — not K of each.
func (g *Gateway) AttachCluster(m *cluster.Manager) {
	g.mu.Lock()
	g.cluster = m
	g.mu.Unlock()
	batches := m.SubscribeBatch()
	go func() {
		for evs := range batches {
			g.handleClusterBatch(evs)
		}
	}()
}

// handleClusterBatch applies one coalesced batch of cluster transitions.
// Per-device work (health mask, SLI ledger, O(1) cache epoch bump, damper)
// still runs per event; the batch-amplified work — wait-estimate resets and
// strategy rewarms — runs once per batch. Mass reinstatements are staggered:
// the first device rejoins immediately, device i after i stagger periods
// (storm.go), so returning capacity ramps instead of slamming.
func (g *Gateway) handleClusterBatch(evs []cluster.Event) {
	g.mu.Lock()
	tr, dmp := g.health, g.damper
	g.mu.Unlock()
	downs := 0
	var ups []cluster.Event
	for _, ev := range evs {
		if ev.Restart {
			g.handleRestart(ev)
			continue
		}
		switch ev.To {
		case cluster.Down:
			// A Down is always honored (safety first); it also charges
			// one membership flip to the damper.
			if dmp != nil {
				dmp.RecordFlip(ev.Member, ev.At)
			}
			if tr != nil {
				tr.SetUp(ev.Member, false)
			}
			g.rt.SetDeviceHealth(ev.Member, false)
			if g.rt.Cache != nil {
				g.rt.Cache.InvalidateDevice(ev.Member + 1)
			}
			downs++
			g.noteDown(ev.At)
		case cluster.Up:
			if tr != nil {
				tr.SetUp(ev.Member, true)
			}
			if dmp != nil {
				// A recovery from Down is the other half of a flap.
				if ev.From == cluster.Down {
					dmp.RecordFlip(ev.Member, ev.At)
				}
				if dmp.Suppressed(ev.Member, ev.At) {
					// Flap damping: refuse the reinstatement. The health
					// tick loop (health.go) releases the device once the
					// penalty decays below the reuse threshold.
					g.mu.Lock()
					if ev.Member < len(g.suppressHeld) {
						g.suppressHeld[ev.Member] = true
					}
					g.mu.Unlock()
					continue
				}
			}
			ups = append(ups, ev)
		case cluster.Suspect:
			// No action: the device may still be serving. The data path
			// demotes it immediately if a request actually fails there.
		}
	}
	if downs > 0 {
		g.ResetWaitEstimates()
		g.rewarmAsync()
	}
	if len(ups) > 0 {
		// The first recovered device reinstates now (a lone recovery behaves
		// exactly as before); the rest of a mass recovery is staggered.
		g.reinstate(ups[0].Member)
		g.ResetWaitEstimates()
		g.rewarmAsync()
		for i, ev := range ups[1:] {
			g.staggerReinstate(ev.Member, time.Duration(i+1)*g.opts.ReintegrationStagger)
		}
	}
}

// handleRestart reconfigures around a detected incarnation change — an
// atomic Down→Up. The device never answered "dead", but the process behind it
// is new: every piece of state learned against the old process is stale, and
// every response still in flight from it must be fenced, not delivered.
// Order matters: the expected incarnation is raised *first*, so a stale
// response racing this handler fails the scheduler's fence check rather than
// slipping through mid-reconfiguration.
func (g *Gateway) handleRestart(ev cluster.Event) {
	sched := g.rt.Scheduler
	dev := ev.Member + 1
	// 1. Fence: responses handshaken with the old incarnation are now dropped.
	if ev.Incarnation != 0 {
		sched.SetDeviceIncarnation(dev, ev.Incarnation)
	}
	// 2. Demote while reconfiguring: strategies placing work there are stale
	// (the new process has cold caches and possibly different capabilities).
	g.rt.SetDeviceHealth(ev.Member, false)
	if g.rt.Cache != nil {
		g.rt.Cache.InvalidateDevice(dev)
	}
	// 3. The data connection may still terminate at the dead process's socket
	// (a zombie that keeps its listener): poison it so the next dispatch
	// re-dials — and re-handshakes — to the live incarnation. Asynchronous
	// because ForceRedial serializes behind any in-flight call (that call's
	// response will be fenced on completion, which poisons the client too).
	if ev.Member >= 0 && ev.Member < len(sched.Remotes) && sched.Remotes[ev.Member] != nil {
		go sched.Remotes[ev.Member].ForceRedial()
	}
	// 4. Adaptive state learned against the old process does not transfer.
	sched.ResetDevice(dev)
	g.mu.Lock()
	g.stats.Restarts++
	hook := g.opts.OnRestart
	g.mu.Unlock()
	// 5. Re-negotiate capabilities (link probe, monitor refresh) before the
	// device takes traffic again.
	if hook != nil {
		hook(dev, ev.Incarnation)
	}
	// 6. Reinstate and rewarm: the new incarnation serves from here on.
	g.rt.SetDeviceHealth(ev.Member, true)
	g.ResetWaitEstimates()
	g.rewarm()
}

// rewarm re-resolves the strategy for the gateway's global SLO under the
// current health mask, priming the cache after a topology change. Errors are
// deliberately ignored — the next request resolves (and surfaces) them.
func (g *Gateway) rewarm() {
	if slo := g.rt.SLO(); slo.Value > 0 {
		g.rt.ResolveFor(slo)
	}
}
