package serve

import (
	"math/rand"
	"time"

	"murmuration/internal/cluster"
)

// Recovery-storm smoothing: the serving half of the correlated-failure
// immunity plane. The retry budget (limit.Budget, wired through rpcx and the
// scheduler) bounds how hard the data path amplifies a correlated loss;
// this file bounds how hard the control path amplifies one:
//
//   - A correlated-loss detector watches Down transitions. At least K inside
//     a sliding window means the survivors are about to absorb the victims'
//     traffic, so admission tightens one ladder rung pre-emptively — batches
//     cheapen before the wave lands, not after the first misses.
//   - Strategy rewarms after topology changes are asynchronous, jittered,
//     and concurrency-capped, so a mass reinstatement cannot stampede the
//     decider with simultaneous re-resolutions.
//   - Mass reinstatements are staggered (cluster.go): one cluster batch that
//     returns n devices rejoins them one ReintegrationStagger apart.

// stormRung is how many ladder rungs a correlated-loss detection adds to the
// floor. It composes additively with a watchdog brownout's BrownoutRung —
// resource pressure plus a correlated loss is strictly worse than either —
// and the ladder clamps the sum to its own max rung.
const stormRung = 1

// rewarmJitter bounds the random delay before an async rewarm fires, so the
// rewarms of near-simultaneous topology changes decorrelate instead of
// hitting the decider in one pulse.
const rewarmJitter = 20 * time.Millisecond

// applyFloor recomputes the degradation-ladder floor from the active
// pressure signals (brownout, correlated-loss tighten). Every writer of
// either signal funnels through here so the signals compose instead of
// overwriting each other's floor.
func (g *Gateway) applyFloor() {
	g.mu.Lock()
	floor := 0
	if g.brownout {
		floor += BrownoutRung
	}
	if g.stormTight {
		floor += stormRung
	}
	g.mu.Unlock()
	g.ladder.SetFloor(floor)
}

// noteDown feeds one Down transition into the correlated-loss detector.
// When at least CorrelatedLossK Downs land inside CorrelatedLossWindow, the
// gateway records a correlated-loss event, raises the ladder floor by
// stormRung, and holds the tighten for CorrelatedLossHold past the last
// detection. Detection re-arms afterwards: the next event needs K fresh
// Downs, so a long outage is one event, not one per straggler.
func (g *Gateway) noteDown(at time.Time) {
	g.mu.Lock()
	if g.opts.CorrelatedLossK < 0 {
		g.mu.Unlock()
		return
	}
	if at.IsZero() {
		at = time.Now()
	}
	cutoff := at.Add(-g.opts.CorrelatedLossWindow)
	keep := g.downTimes[:0]
	for _, t := range g.downTimes {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	g.downTimes = append(keep, at)
	if len(g.downTimes) < g.opts.CorrelatedLossK {
		g.mu.Unlock()
		return
	}
	g.stats.CorrelatedLossEvents++
	tighten := !g.stormTight
	g.stormTight = true
	g.downTimes = g.downTimes[:0]
	if g.stormClear != nil {
		g.stormClear.Stop()
	}
	g.stormClear = time.AfterFunc(g.opts.CorrelatedLossHold, g.stormRelease)
	g.mu.Unlock()
	if tighten {
		g.applyFloor()
	}
}

// stormRelease drops the correlated-loss tighten once the hold elapses; the
// ladder then climbs home through its normal hysteresis.
func (g *Gateway) stormRelease() {
	g.mu.Lock()
	was := g.stormTight
	g.stormTight = false
	g.mu.Unlock()
	if was {
		g.applyFloor()
	}
}

// rewarmAsync schedules one jittered strategy rewarm, capped at
// RewarmConcurrency in flight. A refused request is dropped, not queued:
// any rewarm that runs resolves under the health mask current at that
// moment, so a rewarm already in flight (or about to run) covers the
// refused one's work. The synchronous rewarm() remains for paths that need
// the cache warm before they return (restart handling).
func (g *Gateway) rewarmAsync() {
	g.mu.Lock()
	if g.closing {
		g.mu.Unlock()
		return
	}
	// Add under mu, ordered before Close's Wait: Close sets closing first,
	// so no Add can race past a Wait that already started.
	g.rewarmWG.Add(1)
	g.mu.Unlock()
	select {
	case g.rewarmSem <- struct{}{}:
	default:
		g.rewarmWG.Done()
		return
	}
	go func() {
		defer g.rewarmWG.Done()
		defer func() { <-g.rewarmSem }()
		time.Sleep(time.Duration(rand.Int63n(int64(rewarmJitter))))
		g.rewarm()
	}()
}

// reinstate returns a recovered device to service: health mask up, adaptive
// state (AIMD limit, panic streak) reset — the old values were learned
// against the incarnation that failed.
func (g *Gateway) reinstate(member int) {
	g.rt.SetDeviceHealth(member, true)
	g.rt.Scheduler.ResetDevice(member + 1)
}

// staggerReinstate schedules a deferred reinstatement delay from now. The
// timer re-checks the detector at fire time: a device that went Down again
// while it waited stays down (its next Up event restarts the process).
func (g *Gateway) staggerReinstate(member int, delay time.Duration) {
	g.mu.Lock()
	if g.closing {
		g.mu.Unlock()
		return
	}
	g.stats.StaggeredReintegrations++
	t := time.AfterFunc(delay, func() {
		g.mu.Lock()
		closing, m := g.closing, g.cluster
		g.mu.Unlock()
		if closing {
			return
		}
		if m != nil && m.StateOf(member) != cluster.Up {
			return
		}
		g.reinstate(member)
		g.ResetWaitEstimates()
		g.rewarmAsync()
	})
	g.staggerTimers = append(g.staggerTimers, t)
	g.mu.Unlock()
}
