package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
)

func accSLO(v float64) runtime.SLO {
	return runtime.SLO{Type: env.AccuracySLO, Value: v}
}

// TestClassCountersWireRoundTrip: the v6 per-class attainment counters ride
// the stats wire like every other field.
func TestClassCountersWireRoundTrip(t *testing.T) {
	var in Stats
	in.Admitted = 7
	in.ClassMet = [numClasses]uint64{3, 2, 1}
	in.ClassMissed = [numClasses]uint64{1, 0, 0}
	out, err := decodeStats(encodeStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ClassMet != in.ClassMet || out.ClassMissed != in.ClassMissed {
		t.Fatalf("class counters round trip: got %v/%v, want %v/%v",
			out.ClassMet, out.ClassMissed, in.ClassMet, in.ClassMissed)
	}
}

// TestClassCountersSemantics pins the met/missed ledger: a served request
// counts met for its class unless it is a latency request delivered after its
// deadline, which counts missed (alongside DeadlineMissed); after drain every
// admitted request sits in exactly one bucket.
func TestClassCountersSemantics(t *testing.T) {
	var stall atomic.Bool
	rt := newTestRuntime(77, func() {
		if stall.Load() {
			time.Sleep(120 * time.Millisecond)
		}
	})
	g := New(rt, Options{Workers: 1, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 8})
	defer g.Close(5 * time.Second)

	// One on-time serve per class.
	if _, err := g.Submit(testInput(1), latSLO(10_000)); err != nil {
		t.Fatalf("latency request: %v", err)
	}
	if _, err := g.Submit(testInput(2), accSLO(75)); err != nil {
		t.Fatalf("accuracy request: %v", err)
	}
	if _, err := g.Submit(testInput(3), latSLO(0)); err != nil {
		t.Fatalf("best-effort request: %v", err)
	}

	// A late serve: a fresh SLO forces a decider call, and the stalled decide
	// pushes delivery past the 30ms deadline. Served, but missed.
	stall.Store(true)
	if _, err := g.Submit(testInput(4), latSLO(30)); err != nil {
		t.Fatalf("stalled request should still be served (late): %v", err)
	}
	stall.Store(false)

	st := g.Stats()
	wantMet := [numClasses]uint64{1, 1, 1}
	wantMissed := [numClasses]uint64{1, 0, 0}
	if st.ClassMet != wantMet || st.ClassMissed != wantMissed {
		t.Fatalf("class counters met=%v missed=%v, want %v/%v: %+v",
			st.ClassMet, st.ClassMissed, wantMet, wantMissed, st)
	}
	if st.DeadlineMissed != 1 {
		t.Fatalf("DeadlineMissed = %d, want 1 (the late serve): %+v", st.DeadlineMissed, st)
	}
	var met, missed uint64
	for c := range st.ClassMet {
		met += st.ClassMet[c]
		missed += st.ClassMissed[c]
	}
	if met+missed != st.Admitted {
		t.Fatalf("per-class ledger: met %d + missed %d != admitted %d", met, missed, st.Admitted)
	}
}

// TestClassForExported: the exported classifier matches the gateway's own
// bucketing, so scorers aggregate under the same classes admission uses.
func TestClassForExported(t *testing.T) {
	cases := []struct {
		slo  runtime.SLO
		want Class
	}{
		{latSLO(100), ClassLatency},
		{accSLO(75), ClassAccuracy},
		{latSLO(0), ClassBestEffort},
		{accSLO(0), ClassBestEffort},
	}
	for _, tc := range cases {
		if got := ClassFor(tc.slo); got != tc.want {
			t.Fatalf("ClassFor(%+v) = %v, want %v", tc.slo, got, tc.want)
		}
	}
	if NumClasses != int(numClasses) {
		t.Fatalf("NumClasses = %d, want %d", NumClasses, numClasses)
	}
}
