// Gray-failure chaos tests: the failure modes heartbeats cannot see. A
// device that answers pings crisply while its compute path runs 10x slow
// must be caught by the SLI-driven health tracker and quarantined; a device
// that cycles leave/join faster than placement can follow must be held down
// by flap damping instead of thrashing the strategy cache. External test
// package for the same reason as chaos_scenario_test.go: scenario imports
// serve.
package serve_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/health"
	"murmuration/internal/monitor"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// chaosWaitFor polls cond until it holds or a generous deadline expires —
// progress-gating on observed state, never blind sleeps.
func chaosWaitFor(t *testing.T, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", desc)
}

// TestChaosGrayFailure injects a 10x compute slowdown into one of two device
// daemons — heartbeats untouched — and asserts the gray-failure contract:
//
//   - the SLI tracker quarantines the sick device within the detection
//     window while the heartbeat detector still reports it Up (the failure
//     is invisible to liveness probing, by construction);
//   - with the device quarantined, SLO attainment recovers: a post-detection
//     batch serves >= 90% within SLO on the remaining capacity;
//   - once the injection clears, synthetic probes feed the quarantined
//     device's ledger, it completes the reintegration ramp, returns to
//     Active, and placement uses it again;
//   - the admission ledger stays exact throughout.
func TestChaosGrayFailure(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		sloMs      = 30000 // generous: -race plus a 10x-slowed device in the loop
		slowAt     = 10 * time.Millisecond
		clearAt    = 20 * time.Millisecond
		recoveryN  = 30
		slowFactor = 10
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 808)

	// Daemon 1 (device 0) wraps its executor in a compute injector: the
	// trace's slow-compute event multiplies every block execution's latency
	// while the daemon keeps answering heartbeats instantly — the canonical
	// gray failure.
	inj := runtime.NewComputeInjector(runtime.NewExecutor(net).ExecBlockHandler())
	srv1 := rpcx.NewServer()
	srv1.Handle(runtime.ExecBlockMethod, inj.Handler())
	monitor.RegisterHandlers(srv1)
	cluster.NewNode().Register(srv1)
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	srv2, addr2 := chaosDaemon(t, net, "127.0.0.1:0")
	defer srv2.Close()

	data1, data2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second

	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := serve.New(rt, serve.Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 64})
	g.AttachCluster(m)
	// Aggressive detection so the test converges fast: 60ms SLI windows, gray
	// at 2.5x the fleet median for 2 consecutive windows, one clean window to
	// advance, a short quarantine dwell, and a single 50% ramp step.
	tr := g.AttachHealth(serve.HealthOptions{
		Tracker: health.Options{
			Window:           60 * time.Millisecond,
			MinSamples:       2,
			LatencyFactor:    2.5,
			FailureRate:      0.5,
			GrayWindows:      2,
			CleanWindows:     1,
			ReintegrateAfter: 300 * time.Millisecond,
			RampWeights:      []float64{0.5},
		},
		ProbeEvery:   15 * time.Millisecond,
		ProbeTimeout: 5 * time.Second,
		TickEvery:    10 * time.Millisecond,
	})
	m.Start()

	// Background pump: continuous traffic so both devices' SLI ledgers stay
	// fed. Every submission lands in the gateway ledger checked at the end.
	var pumped, pumpOK, pumpBad atomic.Uint64
	stopPump := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopPump:
					return
				default:
				}
				pumped.Add(1)
				_, err := g.Submit(chaosInput(int64(1000*p+i)), chaosLatSLO(sloMs))
				switch {
				case err == nil:
					pumpOK.Add(1)
				case serve.IsShed(err) || serve.IsDeadlineMissed(err) || serve.IsBudgetExhausted(err):
					// Typed drops are legitimate outcomes under churn.
				default:
					pumpBad.Add(1)
					t.Errorf("pump %d req %d: unexpected error class: %v", p, i, err)
				}
				time.Sleep(time.Millisecond)
			}
		}(p)
	}

	// The fault timeline as data: device 0's compute path turns 10x slow,
	// later recovers.
	gray := &scenario.Trace{
		Name: "gray-failure",
		Seed: 808,
		Events: []scenario.Event{
			{At: slowAt, Kind: scenario.EvSlowCompute, Device: 0, Value: slowFactor},
			{At: clearAt, Kind: scenario.EvSlowCompute, Device: 0, Value: 1},
		},
	}
	orch := scenario.NewOrchestrator([]scenario.Target{{Compute: inj}, {}})
	player := scenario.NewPlayer(orch, gray)

	// Phase 1 — healthy baseline, then inject.
	chaosWaitFor(t, "baseline successes", func() bool { return pumpOK.Load() >= 5 })
	if n, err := player.Advance(slowAt); err != nil || n != 1 {
		t.Fatalf("slow-compute event: applied %d, err=%v; want 1, nil", n, err)
	}

	// Phase 2 — detection: the tracker must quarantine device 0 while the
	// heartbeat detector still says Up (probes never touched the injector).
	chaosWaitFor(t, "device 0 quarantined while heartbeats stay Up", func() bool {
		return tr.StateOf(0) == health.Quarantined &&
			rt.QuarantinedDevices()[0] &&
			m.StateOf(0) == cluster.Up
	})
	if m.StateOf(0) != cluster.Up {
		t.Fatalf("heartbeat detector reports %v for a compute-only fault, want Up", m.StateOf(0))
	}
	if h := rt.HealthyDevices(); !h[0] {
		t.Fatalf("gray failure demoted the liveness mask %v — quarantine must be a separate axis", h)
	}
	if c := tr.Counters(); c.GraySuspects == 0 || c.Quarantines == 0 {
		t.Fatalf("tracker counters after detection: %+v", c)
	}

	// Phase 3 — attainment recovery: with the sick device out of placement,
	// a fresh batch must serve >= 90% within SLO on the remaining capacity.
	before := g.Stats()
	okN := 0
	for i := 0; i < recoveryN; i++ {
		if _, err := g.Submit(chaosInput(int64(5000+i)), chaosLatSLO(sloMs)); err == nil {
			okN++
		}
	}
	if okN < recoveryN*9/10 {
		t.Fatalf("post-quarantine batch served %d/%d, want >= 90%%", okN, recoveryN)
	}
	after := g.Stats()
	var met, total uint64
	for k := range after.ClassMet {
		met += after.ClassMet[k] - before.ClassMet[k]
		total += after.ClassMet[k] - before.ClassMet[k] + after.ClassMissed[k] - before.ClassMissed[k]
	}
	if total == 0 || float64(met)/float64(total) < 0.9 {
		t.Fatalf("post-quarantine SLO attainment %d/%d, want >= 0.9", met, total)
	}

	// Phase 4 — cure and reintegration: clear the injection; synthetic probes
	// feed clean windows, the ramp completes, and the device is Active again.
	if n, err := player.Finish(); err != nil || n != 1 {
		t.Fatalf("clear event: applied %d, err=%v; want 1, nil", n, err)
	}
	chaosWaitFor(t, "device 0 back to Active", func() bool { return tr.StateOf(0) == health.Active })
	if rt.QuarantinedDevices()[0] {
		t.Fatal("device 0 still masked quarantined after completing reintegration")
	}
	if c := tr.Counters(); c.Reintegrations == 0 {
		t.Fatalf("no completed reintegration recorded: %+v", c)
	}
	// Placement uses the recovered device again.
	res, err := rt.ResolveFor(rt.SLO())
	if err != nil {
		t.Fatal(err)
	}
	placed := false
	for _, layer := range res.Decision.Placement.Devices {
		for _, dev := range layer {
			if dev == 1 {
				placed = true
			}
		}
	}
	if !placed {
		t.Fatalf("recovered device 1 not back in the placement: %v", res.Decision.Placement.Devices)
	}

	close(stopPump)
	wg.Wait()
	g.Close(30 * time.Second)

	st := g.Stats()
	t.Logf("gray chaos: pumped=%d ok=%d; injector=%v; tracker=%+v; stats Admitted=%d Served=%d Dropped=%d Failed=%d",
		pumped.Load(), pumpOK.Load(), func() [2]uint64 { s, e := inj.Counters(); return [2]uint64{s, e} }(),
		tr.Counters(), st.Admitted, st.Served, st.Dropped, st.Failed)
	if slowed, _ := inj.Counters(); slowed == 0 {
		t.Fatal("injector never slowed a block — the fault never landed, test vacuous")
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	if st.GraySuspects == 0 || st.Quarantines == 0 || st.Reintegrations == 0 {
		t.Fatalf("health counters missing from stats: %+v", st)
	}
}

// TestChaosFlappingDevice cycles one device through leave/join every few
// hundred milliseconds and asserts flap damping holds it down: after enough
// flips the damper refuses the reinstatement (FlapSuppressed > 0), the
// device stays demoted even while its heartbeats say Up, strategy-cache
// invalidations stay bounded (the flapping device stops generating
// invalidation storms once held), and the admission ledger stays exact with
// zero Failed — every request rides the stable device.
func TestChaosFlappingDevice(t *testing.T) {
	testutil.CheckGoroutines(t)
	const sloMs = 30000
	a := supernet.TinyArch(4)
	net := supernet.New(a, 809)

	srv1, addr1 := chaosDaemon(t, net, "127.0.0.1:0")
	srv2, addr2 := chaosDaemon(t, net, "127.0.0.1:0")
	defer srv2.Close()

	data1, data2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second

	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := serve.New(rt, serve.Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32})
	g.AttachCluster(m)
	// The tracker is along for the ride (10s windows never roll during the
	// test, probing off); the damper is the subject: default 1000/flip
	// penalty and 2500 suppress threshold, but a 60s half-life so the
	// penalty cannot decay away mid-test, and a short hold-down.
	g.AttachHealth(serve.HealthOptions{
		Tracker: health.Options{Window: 10 * time.Second},
		Damper: health.DamperOptions{
			HalfLife: 60 * time.Second,
			HoldDown: 100 * time.Millisecond,
		},
		ProbeEvery: -1,
		TickEvery:  10 * time.Millisecond,
	})
	m.Start()

	// The flap timeline as data: device 0 leaves and rejoins three times.
	// Each join restarts a daemon on the same address. The test advances each
	// event only after the detector confirmed the previous transition, so
	// every flip is actually observed (no event coalescing).
	var restarts []*rpcx.Server
	orch := scenario.NewOrchestrator([]scenario.Target{{
		Leave: func() {
			if n := len(restarts); n > 0 {
				restarts[n-1].Close()
			} else {
				srv1.Close()
			}
		},
		Join: func() {
			s, _ := chaosDaemon(t, net, addr1)
			restarts = append(restarts, s)
		},
	}, {}})
	orch.AttachCluster(m)
	var events []scenario.Event
	for i := 0; i < 3; i++ {
		events = append(events,
			scenario.Event{At: time.Duration(10*(2*i+1)) * time.Millisecond, Kind: scenario.EvDeviceLeave, Device: 0},
			scenario.Event{At: time.Duration(10*(2*i+2)) * time.Millisecond, Kind: scenario.EvDeviceJoin, Device: 0},
		)
	}
	player := scenario.NewPlayer(orch, &scenario.Trace{Name: "flapping-device", Seed: 809, Events: events})
	defer func() {
		for _, s := range restarts {
			s.Close()
		}
	}()

	submit := func(n, base int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := g.Submit(chaosInput(int64(base+i)), chaosLatSLO(sloMs)); err != nil &&
				!serve.IsShed(err) && !serve.IsDeadlineMissed(err) && !serve.IsBudgetExhausted(err) {
				t.Fatalf("request %d: unexpected error class: %v", base+i, err)
			}
		}
	}
	submit(4, 0)

	// Flap 1: leave (flip 1, penalty 1000) then join (flip 2, penalty 2000 —
	// still under the threshold, so the device is reinstated normally).
	advance := func(to time.Duration, what string) {
		t.Helper()
		if n, err := player.Advance(to); err != nil || n != 1 {
			t.Fatalf("%s: applied %d, err=%v; want 1, nil", what, n, err)
		}
	}
	advance(10*time.Millisecond, "leave 1")
	chaosWaitFor(t, "down 1", func() bool { return m.StateOf(0) == cluster.Down })
	advance(20*time.Millisecond, "join 1")
	chaosWaitFor(t, "up 1", func() bool { return m.StateOf(0) == cluster.Up })
	chaosWaitFor(t, "reinstated after flap 1", func() bool { return rt.HealthyDevices()[0] })
	submit(4, 100)

	// Flap 2: the third flip crosses the suppress threshold (3000 >= 2500);
	// the join's reinstatement must be refused.
	advance(30*time.Millisecond, "leave 2")
	chaosWaitFor(t, "down 2", func() bool { return m.StateOf(0) == cluster.Down })
	advance(40*time.Millisecond, "join 2")
	chaosWaitFor(t, "up 2", func() bool { return m.StateOf(0) == cluster.Up })
	chaosWaitFor(t, "flap suppression engaged", func() bool { return g.Stats().FlapSuppressed >= 1 })
	if rt.HealthyDevices()[0] {
		t.Fatal("flapping device reinstated despite suppression")
	}
	submit(4, 200)

	// Flap 3: still flapping, still held — the penalty only grows.
	advance(50*time.Millisecond, "leave 3")
	chaosWaitFor(t, "down 3", func() bool { return m.StateOf(0) == cluster.Down })
	advance(60*time.Millisecond, "join 3")
	chaosWaitFor(t, "up 3", func() bool { return m.StateOf(0) == cluster.Up })
	if player.Remaining() != 0 {
		t.Fatalf("%d trace events never applied", player.Remaining())
	}
	submit(4, 300)

	// Held down: heartbeats say Up, placement says no.
	if m.StateOf(0) != cluster.Up {
		t.Fatalf("device 0 is %v with a live daemon, want Up", m.StateOf(0))
	}
	if rt.HealthyDevices()[0] {
		t.Fatal("flapping device back in placement while suppressed")
	}

	g.Close(30 * time.Second)

	st := g.Stats()
	t.Logf("flap chaos: detector=%+v; FlapSuppressed=%d; cache invalidations=%d; stats Admitted=%d Served=%d Dropped=%d Failed=%d",
		m.CountersSnapshot(), st.FlapSuppressed, st.Cache.Invalidations,
		st.Admitted, st.Served, st.Dropped, st.Failed)
	if st.FlapSuppressed == 0 {
		t.Fatal("flap damping never engaged")
	}
	// Invalidation storms are the damage flap damping exists to stop: each
	// Down sweep may drop a handful of entries, but a held-down device stops
	// generating new placements to invalidate. Loose bound, tight intent.
	if st.Cache.Invalidations > 16 {
		t.Fatalf("strategy-cache invalidations %d — flapping thrashed the cache", st.Cache.Invalidations)
	}
	// Every request rode the stable device: zero Failed, exact ledger.
	if st.Failed != 0 {
		t.Fatalf("%d requests failed despite a stable second device", st.Failed)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
}
