package serve

import (
	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
)

// OutcomeKind classifies a tapped request outcome.
type OutcomeKind int

// Outcome kinds, mirroring the ledger buckets: every admitted request ends as
// exactly one of Served/Dropped/Failed; Shed requests were never admitted but
// still signal demand the adaptation loop must see — during an admission
// collapse the Decide path starves, and sheds are the only evidence left.
const (
	KindServed OutcomeKind = iota
	KindDropped
	KindFailed
	KindShed
)

// String names the kind for logs.
func (k OutcomeKind) String() string {
	switch k {
	case KindServed:
		return "served"
	case KindDropped:
		return "dropped"
	case KindFailed:
		return "failed"
	case KindShed:
		return "shed"
	}
	return "unknown"
}

// OutcomeEvent is one tapped request outcome: what the gateway decided, which
// policy version decided it, and how it went on the wire. Served events carry
// the resolved constraint, measured latency, and (on fresh decodes) the
// policy's raw choice sequence; shed/dropped/failed events carry the SLO and
// class only.
type OutcomeEvent struct {
	Kind  OutcomeKind
	Class Class
	SLO   runtime.SLO
	// Constraint is the (goal, task) pair the strategy was resolved under.
	// Valid for served events; zero otherwise.
	Constraint env.Constraint
	// Rung is the degradation-ladder rung the request executed at.
	Rung int
	// PolicyVersion / Canary attribute the serving decision (see
	// runtime.DecisionMeta).
	PolicyVersion uint64
	Canary        bool
	// LatencyMs is the end-to-end latency (admission to delivery) of a served
	// request.
	LatencyMs float64
	// SLOMet is the attainment verdict recorded in the class ledger.
	SLOMet bool
	// Choices is the policy action sequence behind the decision, when the
	// resolution was a fresh decode from a choice-exposing decider (nil on
	// cache hits). It lets the adaptation loop insert the measured transition
	// into the replay buffer directly.
	Choices []int
}

// OutcomeTap receives tapped events. Offer MUST be non-blocking and must not
// call back into the gateway: it runs on the serving hot path, sometimes under
// the gateway mutex. Implementations that cannot keep up must drop events
// (the adaptation feed drops oldest-first).
type OutcomeTap interface {
	Offer(OutcomeEvent)
}

// AdaptStats is the adaptation controller's counter snapshot folded into the
// gateway's Stats (wire v7).
type AdaptStats struct {
	// PolicyVersion is the serving (incumbent) policy version — a gauge.
	PolicyVersion uint64
	// ShadowScored counts candidate decisions scored in shadow against live
	// outcomes.
	ShadowScored uint64
	// Promotions / Rollbacks count rollout state-machine transitions to full
	// and back to last-good.
	Promotions uint64
	Rollbacks  uint64
}

// AdaptSource exposes an adaptation controller's counters to the gateway.
type AdaptSource interface {
	AdaptStats() AdaptStats
}

// SetOutcomeTap installs (or, with nil, removes) the outcome tap. Safe to
// call while serving; events emitted concurrently with the swap may go to
// either tap.
func (g *Gateway) SetOutcomeTap(t OutcomeTap) {
	g.mu.Lock()
	g.tap = t
	g.mu.Unlock()
}

// AttachAdapter records the adaptation controller whose counters ride Stats.
func (g *Gateway) AttachAdapter(a AdaptSource) {
	g.mu.Lock()
	g.adapter = a
	g.mu.Unlock()
}

// offerLocked emits an event to the installed tap. Caller holds g.mu; the
// tap's non-blocking contract keeps the critical section bounded.
func (g *Gateway) offerLocked(ev OutcomeEvent) {
	if g.tap != nil {
		g.tap.Offer(ev)
	}
}
