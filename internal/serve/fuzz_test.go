package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
)

// FuzzDecodeStats hammers the versioned stats codec with arbitrary frames:
// it must never panic, and any frame it accepts must survive a re-encode
// round trip bit-for-bit.
func FuzzDecodeStats(f *testing.F) {
	full := Stats{Admitted: 1, Served: 2, Degraded: 3, Hedges: 4}
	full.QueueDepth = [numClasses]int{5, 6, 7}
	full.Cache = runtime.CacheStats{Len: 8, Cap: 9, Hits: 10}
	f.Add(encodeStats(full))
	f.Add(encodeStats(Stats{}))
	f.Add([]byte{})
	f.Add([]byte{statsWireVersion})
	f.Add([]byte{statsWireVersion + 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := decodeStats(b)
		if err != nil {
			return
		}
		out, err := decodeStats(encodeStats(s))
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if out != s {
			t.Fatalf("stats round trip mismatch:\n got %+v\nwant %+v", out, s)
		}
	})
}

// FuzzDecodeInferRequest hammers the infer-request codec: arbitrary frames
// must never panic, and every accepted frame must yield a valid SLO and a
// rank-4 tensor (the invariants the queueing path indexes on).
func FuzzDecodeInferRequest(f *testing.F) {
	valid := func(sloType byte, value float64, x *tensor.Tensor) []byte {
		var buf bytes.Buffer
		var u8 [8]byte
		buf.WriteByte(sloType)
		binary.LittleEndian.PutUint64(u8[:], math.Float64bits(value))
		buf.Write(u8[:])
		if err := tensor.Encode(&buf, x); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(byte(env.LatencySLO), 50, tensor.New(1, 3, 8, 8)))
	f.Add(valid(byte(env.AccuracySLO), 0.9, tensor.New(2, 1, 4, 4)))
	f.Add(valid(byte(env.LatencySLO), 50, tensor.New(4)))
	f.Add([]byte{})
	f.Add([]byte{byte(env.LatencySLO), 1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		slo, x, err := decodeInferRequest(b)
		if err != nil {
			return
		}
		if slo.Type != env.LatencySLO && slo.Type != env.AccuracySLO {
			t.Fatalf("accepted frame with SLO type %d", slo.Type)
		}
		if x == nil || x.Rank() != 4 {
			t.Fatalf("accepted frame with non-NCHW image: %v", x)
		}
	})
}
