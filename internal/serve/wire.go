package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
)

// RPC method names served by a gateway.
const (
	// InferMethod takes an SLO-tagged encoded image and returns logits plus
	// per-request timing.
	InferMethod = "serve.infer"
	// StatsMethod returns the gateway's Stats snapshot.
	StatsMethod = "serve.stats"
)

// Wire layout (little endian).
//
//	infer request:  u8 sloType (0 latency, 1 accuracy — env.SLOType values)
//	                f64 sloValue | tensor.Encode(image)
//	infer response: u8 batchSize | u8 cacheHit | u64 queueWaitµs
//	                u64 execµs | u64 decideµs | tensor.Encode(logits)
//	stats response: u8 version | 54 × u64 (see encodeStats)
const inferHeaderLen = 1 + 8

// statsWireVersion is the leading byte of the stats frame, bumped whenever
// the field set changes. PR 2 grew the frame 16→22 u64s silently, which a
// mixed-version gateway/daemon pair would misparse into garbage counters;
// the version byte turns that into a typed, actionable error instead.
//
//	v3: +Degraded, +DegradedRungs, +BudgetExhausted, +Hedges, +HedgeWins
//	v4: +CorruptFrames, +Redials
//	v5: +Panics, +RemotePanics, +Overloads, +LimiterCuts, +LimiterLimit,
//	    +Brownouts, +BrownoutActive, +Goroutines, +HeapBytes
//	v6: +ClassMet[numClasses], +ClassMissed[numClasses] (per-class SLO
//	    attainment, read by the scenario scorer)
//	v7: +PolicyVersion, +ShadowScored, +CanaryServed, +Promotions,
//	    +Rollbacks (online-adaptation rollout attribution)
//	v8: +GraySuspects, +Quarantines, +Probations, +Reintegrations,
//	    +FlapSuppressed (gray-failure health machine and flap damping)
//	v9: +Restarts, +FencedResponses, +StalledCalls, +AsymmetricQuarantines
//	    (incarnation fencing and asymmetric-partition detection)
//	v10: +RetryBudgetExhausted, +ResolveCoalesced, +InvalidationEpochs,
//	    +CorrelatedLossEvents, +StaggeredReintegrations (storm control:
//	    retry budgets, resolution singleflight, correlated-loss smoothing)
const statsWireVersion = 10

// StatsWireVersion is the exported stats frame version, stamped into load
// generator reports so offline analysis knows which field set it is reading.
const StatsWireVersion = statsWireVersion

// WireVersionError is the typed mismatch a client gets when the gateway
// speaks a different stats frame version.
type WireVersionError struct {
	Got, Want byte
}

// Error implements error.
func (e *WireVersionError) Error() string {
	return fmt.Sprintf("serve: stats wire version %d, want %d (mixed gateway/client build?)", e.Got, e.Want)
}

// Register installs the gateway's handlers on an rpcx server.
func (g *Gateway) Register(s *rpcx.Server) {
	s.Handle(InferMethod, g.handleInfer)
	s.Handle(StatsMethod, g.handleStats)
}

// decodeInferRequest parses an infer frame into its SLO and image. Split
// from handleInfer so the codec can be fuzzed without a gateway.
func decodeInferRequest(payload []byte) (runtime.SLO, *tensor.Tensor, error) {
	if len(payload) < inferHeaderLen {
		return runtime.SLO{}, nil, fmt.Errorf("serve: short infer payload")
	}
	slo, err := decodeSLO(payload[0], math.Float64frombits(binary.LittleEndian.Uint64(payload[1:9])))
	if err != nil {
		return runtime.SLO{}, nil, err
	}
	x, err := tensor.Decode(bytes.NewReader(payload[inferHeaderLen:]))
	if err != nil {
		return runtime.SLO{}, nil, err
	}
	// Reject malformed images at the wire boundary: the batching path indexes
	// Shape[0] and Shape[1], so a non-NCHW tensor must never reach the queue.
	if x.Rank() != 4 {
		return runtime.SLO{}, nil, fmt.Errorf("serve: infer image has rank %d, want 4 (NCHW)", x.Rank())
	}
	return slo, x, nil
}

func (g *Gateway) handleInfer(payload []byte) ([]byte, error) {
	slo, x, err := decodeInferRequest(payload)
	if err != nil {
		return nil, err
	}
	out, err := g.Submit(x, slo)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var u8 [8]byte
	buf.WriteByte(byte(out.BatchSize))
	if out.CacheHit {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	for _, d := range []time.Duration{out.QueueWait, out.ExecTime, out.DecideTime} {
		binary.LittleEndian.PutUint64(u8[:], uint64(d.Microseconds()))
		buf.Write(u8[:])
	}
	if err := tensor.Encode(&buf, out.Logits); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (g *Gateway) handleStats(payload []byte) ([]byte, error) {
	return encodeStats(g.Stats()), nil
}

// decodeSLO rebuilds the submitted SLO from its wire form. The SLO type and
// value travel verbatim (not a class-derived kind), so the gateway classifies
// exactly the constraint the client stated: an accuracy SLO with Value<=0 is
// still accuracy-typed downstream even though it queues as best-effort.
func decodeSLO(typ byte, value float64) (runtime.SLO, error) {
	switch env.SLOType(typ) {
	case env.LatencySLO, env.AccuracySLO:
		return runtime.SLO{Type: env.SLOType(typ), Value: value}, nil
	}
	return runtime.SLO{}, fmt.Errorf("serve: bad SLO type %d", typ)
}

// statsFieldCount is the number of u64 fields in the stats wire encoding:
// 48 counters/gauges + 2×3 per-class attainment counters + 3 queue depths +
// 6 cache fields.
const statsFieldCount = 63

// statsFields lists the counter fields in wire order; queue depths and
// cache stats follow them in encodeStats/decodeStats.
func statsFields(s *Stats) []*uint64 {
	fields := []*uint64{
		&s.Admitted, &s.Served, &s.Shed, &s.Dropped, &s.DeadlineMissed,
		&s.Failed, &s.Batches, &s.BatchedRequests,
		&s.FailoverAttempts, &s.Failovers,
		&s.Degraded, &s.DegradedRungs, &s.BudgetExhausted,
		&s.Hedges, &s.HedgeWins,
		&s.CorruptFrames, &s.Redials,
		&s.ClusterUp, &s.ClusterSuspect, &s.ClusterDown,
		&s.Panics, &s.RemotePanics, &s.Overloads,
		&s.LimiterCuts, &s.LimiterLimit,
		&s.Brownouts, &s.BrownoutActive,
		&s.Goroutines, &s.HeapBytes,
		&s.PolicyVersion, &s.ShadowScored, &s.CanaryServed,
		&s.Promotions, &s.Rollbacks,
		&s.GraySuspects, &s.Quarantines, &s.Probations,
		&s.Reintegrations, &s.FlapSuppressed,
		&s.Restarts, &s.FencedResponses, &s.StalledCalls,
		&s.AsymmetricQuarantines,
		&s.RetryBudgetExhausted, &s.ResolveCoalesced, &s.InvalidationEpochs,
		&s.CorrelatedLossEvents, &s.StaggeredReintegrations,
	}
	for c := range s.ClassMet {
		fields = append(fields, &s.ClassMet[c])
	}
	for c := range s.ClassMissed {
		fields = append(fields, &s.ClassMissed[c])
	}
	return fields
}

func encodeStats(s Stats) []byte {
	buf := make([]byte, 0, 1+statsFieldCount*8)
	buf = append(buf, statsWireVersion)
	var u8 [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u8[:], v)
		buf = append(buf, u8[:]...)
	}
	for _, f := range statsFields(&s) {
		put(*f)
	}
	for c := 0; c < int(numClasses); c++ {
		put(uint64(s.QueueDepth[c]))
	}
	put(uint64(s.Cache.Len))
	put(uint64(s.Cache.Cap))
	put(s.Cache.Hits)
	put(s.Cache.Misses)
	put(s.Cache.Evictions)
	put(s.Cache.Invalidations)
	return buf
}

func decodeStats(b []byte) (Stats, error) {
	if len(b) < 1 {
		return Stats{}, fmt.Errorf("serve: empty stats payload")
	}
	if b[0] != statsWireVersion {
		return Stats{}, &WireVersionError{Got: b[0], Want: statsWireVersion}
	}
	b = b[1:]
	if len(b) < statsFieldCount*8 {
		return Stats{}, fmt.Errorf("serve: short stats payload (%d bytes)", len(b))
	}
	var s Stats
	i := 0
	next := func() uint64 {
		v := binary.LittleEndian.Uint64(b[i*8:])
		i++
		return v
	}
	for _, f := range statsFields(&s) {
		*f = next()
	}
	for c := 0; c < int(numClasses); c++ {
		s.QueueDepth[c] = int(next())
	}
	s.Cache.Len = int(next())
	s.Cache.Cap = int(next())
	s.Cache.Hits = next()
	s.Cache.Misses = next()
	s.Cache.Evictions = next()
	s.Cache.Invalidations = next()
	return s, nil
}

// Client is the deployment-side client of a gateway.
type Client struct {
	c *rpcx.Client
}

// DialClient connects to a gateway address.
func DialClient(addr string) (*Client, error) {
	c, err := rpcx.Dial(addr, nil)
	if err != nil {
		return nil, err
	}
	return &Client{c: c}, nil
}

// NewClient wraps an existing rpcx client.
func NewClient(c *rpcx.Client) *Client { return &Client{c: c} }

// Close closes the underlying connection.
func (c *Client) Close() error { return c.c.Close() }

// InferResult is the client-side view of a served inference.
type InferResult struct {
	Logits     *tensor.Tensor
	QueueWait  time.Duration
	ExecTime   time.Duration
	DecideTime time.Duration
	BatchSize  int
	CacheHit   bool
}

// Infer submits one image under an SLO and waits for the logits. A timeout
// of 0 waits indefinitely; on expiry the underlying connection is poisoned
// (see rpcx.Client.CallTimeout) and the client must be re-dialed.
func (c *Client) Infer(x *tensor.Tensor, slo runtime.SLO, timeout time.Duration) (*InferResult, error) {
	var buf bytes.Buffer
	var u8 [8]byte
	buf.WriteByte(byte(slo.Type))
	binary.LittleEndian.PutUint64(u8[:], math.Float64bits(slo.Value))
	buf.Write(u8[:])
	if err := tensor.Encode(&buf, x); err != nil {
		return nil, err
	}
	resp, err := c.c.CallTimeout(InferMethod, buf.Bytes(), timeout)
	if err != nil {
		return nil, err
	}
	if len(resp) < 2+3*8 {
		return nil, fmt.Errorf("serve: short infer response")
	}
	r := &InferResult{
		BatchSize: int(resp[0]),
		CacheHit:  resp[1] == 1,
	}
	us := func(off int) time.Duration {
		return time.Duration(binary.LittleEndian.Uint64(resp[off:])) * time.Microsecond
	}
	r.QueueWait, r.ExecTime, r.DecideTime = us(2), us(10), us(18)
	logits, err := tensor.Decode(bytes.NewReader(resp[2+3*8:]))
	if err != nil {
		return nil, err
	}
	r.Logits = logits
	return r, nil
}

// Stats fetches the gateway's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.c.CallTimeout(StatsMethod, nil, 5*time.Second)
	if err != nil {
		return Stats{}, err
	}
	return decodeStats(resp)
}

// IsShed reports whether err (local or remote) represents admission-control
// shedding: full queue, unattainable deadline, or gateway shutdown.
func IsShed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDeadlineUnattainable) ||
		errors.Is(err, ErrShuttingDown) {
		return true
	}
	return strings.Contains(err.Error(), "serve: shed")
}

// IsDeadlineMissed reports whether err (local or remote) is an admitted
// request dropped because its deadline expired in the queue.
func IsDeadlineMissed(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrDeadlineMissed) ||
		strings.Contains(err.Error(), "serve: deadline missed")
}

// IsBudgetExhausted reports whether err (local or remote) is a request
// abandoned because its deadline budget ran out during execution — the
// typed refusal that replaces a silent late reply.
func IsBudgetExhausted(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, rpcx.ErrBudgetExhausted) ||
		strings.Contains(err.Error(), "budget exhausted")
}

// IsCorruptFrame reports whether err (local or remote) is a frame rejected
// by the rpcx integrity layer — a checksum mismatch or framing violation.
// Corruption is a link fault: the connection was poisoned and re-dialed, no
// corrupted payload was delivered, and no device was demoted for it.
func IsCorruptFrame(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, rpcx.ErrCorruptFrame) ||
		strings.Contains(err.Error(), "corrupt frame")
}

// IsPanic reports whether err (local or remote) is a request failed by a
// recovered panic — a daemon handler's (rpcx.ErrPanic) or the gateway's own
// batch execution. The panic failed one request; the process survived.
func IsPanic(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, rpcx.ErrPanic) ||
		strings.Contains(err.Error(), "panicked")
}

// IsOverloaded reports whether err (local or remote) is an overload refusal:
// a brownout admission shed, a concurrency-limit shed, or a daemon's typed
// in-flight-cap refusal. Overload is backpressure, not failure — the caller
// should back off and retry.
func IsOverloaded(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrOverloaded) || errors.Is(err, rpcx.ErrOverloaded) ||
		strings.Contains(err.Error(), "overloaded")
}

// IsStalled reports whether err (local or remote) is a call aborted by the
// rpcx progress watchdog — a frame transfer that stopped advancing, the
// signature of a half-open link. The connection was poisoned and will be
// re-dialed; the health layer scores stalls as link-gray evidence.
func IsStalled(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, rpcx.ErrStalled) ||
		strings.Contains(err.Error(), "stalled")
}

// IsRetryBudget reports whether err (local or remote) is a speculative
// attempt — a retry, failover, or hedge — refused by the shared retry
// budget. Budget exhaustion is storm backpressure, not a fault: the refusal
// rides the shed/overload ledger, demotes no device, and clears as soon as
// primary traffic refills the bucket.
func IsRetryBudget(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, rpcx.ErrRetryBudget) ||
		strings.Contains(err.Error(), "retry budget depleted")
}

// IsFenced reports whether err (local or remote) is a batch failed because a
// tile response came from a dead incarnation of a device (the daemon
// restarted mid-flight). The stale response was dropped, never delivered;
// the retry path re-dials the live incarnation.
func IsFenced(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, runtime.ErrFenced) ||
		strings.Contains(err.Error(), "fenced")
}
