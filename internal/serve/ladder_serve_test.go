package serve

import (
	"errors"
	"testing"
	"time"

	"murmuration/internal/netem"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
)

func TestStatsWireVersionRoundTrip(t *testing.T) {
	in := Stats{
		Admitted: 1, Served: 2, Shed: 3, Dropped: 4, DeadlineMissed: 5,
		Failed: 6, Batches: 7, BatchedRequests: 8,
		FailoverAttempts: 9, Failovers: 10,
		Degraded: 11, DegradedRungs: 12, BudgetExhausted: 13,
		Hedges: 14, HedgeWins: 15,
		ClusterUp: 16, ClusterSuspect: 17, ClusterDown: 18,
	}
	in.QueueDepth = [numClasses]int{19, 20, 21}
	in.Cache = runtime.CacheStats{Len: 22, Cap: 23, Hits: 24, Misses: 25, Evictions: 26, Invalidations: 27}

	out, err := decodeStats(encodeStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestStatsWireVersionMismatchIsTyped(t *testing.T) {
	frame := encodeStats(Stats{})
	frame[0] = statsWireVersion + 1
	_, err := decodeStats(frame)
	var ve *WireVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *WireVersionError", err)
	}
	if ve.Got != statsWireVersion+1 || ve.Want != statsWireVersion {
		t.Fatalf("version error %+v, want got=%d want=%d", ve, statsWireVersion+1, statsWireVersion)
	}
	if _, err := decodeStats(nil); err == nil {
		t.Fatal("empty stats payload decoded")
	}
}

// TestAdmissionUsesLadderEstimate: a latency request whose deadline is under
// the full-quality batch estimate must still be admitted when the ladder
// knows a cheaper rung that fits — workers degrade rather than drop, and
// admission must not shed what a degraded rung can serve.
func TestAdmissionUsesLadderEstimate(t *testing.T) {
	g := New(newTestRuntime(40, nil), Options{Workers: 1})
	defer g.Close(time.Second)
	g.mu.Lock()
	g.emaBatchSec[ClassLatency] = 0.05 // full-quality batches take ~50ms
	g.mu.Unlock()

	if _, err := g.Submit(testInput(40), latSLO(10)); !errors.Is(err, ErrDeadlineUnattainable) {
		t.Fatalf("without ladder knowledge: got %v, want ErrDeadlineUnattainable", err)
	}

	// Teach the ladder that the deepest rung completes in ~1ms; the same
	// request now fits (exec estimate = min(class EMA, ladder estimate)).
	g.Ladder().Observe(g.Ladder().MaxRung(), time.Millisecond, 0)
	if _, err := g.Submit(testInput(41), latSLO(10)); err != nil {
		t.Fatalf("with a feasible degraded rung: got %v, want admission", err)
	}
}

// TestDeviceErrorResetsWaitEstimates: a device-attributed failure changes
// the batch-cost regime, so the stale per-class wait estimates must be
// cleared rather than left to decay.
func TestDeviceErrorResetsWaitEstimates(t *testing.T) {
	g := New(newTestRuntime(42, nil), Options{Workers: 1})
	defer g.Close(time.Second)
	g.mu.Lock()
	for c := range g.emaBatchSec {
		g.emaBatchSec[c] = 1.0
	}
	g.mu.Unlock()

	g.noteDeviceError(&runtime.DeviceError{Device: 1, Tile: 0, Err: errors.New("boom")})

	g.mu.Lock()
	defer g.mu.Unlock()
	for c, v := range g.emaBatchSec {
		if v != 0 {
			t.Fatalf("class %d wait estimate %v after device error, want reset", c, v)
		}
	}
}

// TestServeDegradesInsteadOfDropping is the fast, deterministic sibling of
// the netem chaos test: a gateway whose decider places every tile on a
// 150ms-delayed remote link receives latency-SLO requests that rung 0
// cannot meet. The first few requests burn their budgets learning that
// (typed budget drops, not failures); the ladder then descends until the
// all-local rung serves within the SLO, and keeps serving there.
func TestServeDegradesInsteadOfDropping(t *testing.T) {
	a := supernet.TinyArch(4)
	net := supernet.New(a, 43)

	srv := rpcx.NewServer()
	runtime.NewExecutor(net).Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := rpcx.Dial(addr, netem.NewShaper(0, 150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
	cl.MarkIdempotent(runtime.ExecBlockMethod)

	sched := runtime.NewScheduler(net, []*rpcx.Client{cl})
	sched.RemoteTimeout = 5 * time.Second
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 150)

	g := New(rt, Options{Workers: 1, MaxRung: 3})
	defer g.Close(2 * time.Second)

	const n = 10
	var lastErr error
	servedDegraded := 0
	for i := 0; i < n; i++ {
		out, err := g.Submit(testInput(int64(100+i)), latSLO(250))
		lastErr = err
		if err == nil && out.Rung > 0 {
			servedDegraded++
		}
		if err != nil && !IsBudgetExhausted(err) && !IsDeadlineMissed(err) && !IsShed(err) {
			t.Fatalf("request %d: unexpected error class: %v", i, err)
		}
	}
	if lastErr != nil {
		t.Fatalf("ladder never converged: last request failed with %v", lastErr)
	}
	if servedDegraded == 0 {
		t.Fatal("no request was served degraded")
	}

	st := g.Stats()
	if st.Failed != 0 {
		t.Fatalf("budget pressure produced Failed=%d, want 0 (typed drops only): %+v", st.Failed, st)
	}
	if st.Degraded == 0 || st.DegradedRungs < st.Degraded {
		t.Fatalf("degradation counters %d/%d: %+v", st.Degraded, st.DegradedRungs, st)
	}
	if st.BudgetExhausted == 0 {
		t.Fatalf("expected at least one typed budget drop while learning: %+v", st)
	}
	if c := g.Ladder().Counters(); c.Degradations == 0 {
		t.Fatalf("ladder counters %+v, want at least one descent", c)
	}
	// Deadline pressure must never demote the (healthy, just slow) device.
	if h := rt.HealthyDevices(); !h[0] {
		t.Fatal("budget exhaustion demoted a healthy device")
	}
	if st.FailoverAttempts != 0 {
		t.Fatalf("budget exhaustion triggered failover: %+v", st)
	}
	// Ledger: every admitted request is accounted for.
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: %+v", st)
	}
}
