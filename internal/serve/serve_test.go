package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
)

// newTestRuntime builds a local-only runtime over the tiny supernet with a
// fixed min-config decider. beforeDecide, when non-nil, runs inside every
// decider call (cache misses only), letting tests stall the pipeline.
func newTestRuntime(seed int64, beforeDecide func()) *runtime.Runtime {
	a := supernet.TinyArch(4)
	net := supernet.New(a, seed)
	sched := runtime.NewScheduler(net, nil)
	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		if beforeDecide != nil {
			beforeDecide()
		}
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	})
	return runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
}

func testInput(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(1, 3, 32, 32)
	x.RandNormal(rng, 0.5)
	return x
}

func latSLO(ms float64) runtime.SLO {
	return runtime.SLO{Type: env.LatencySLO, Value: ms}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		slo  runtime.SLO
		want Class
	}{
		{latSLO(100), ClassLatency},
		{runtime.SLO{Type: env.AccuracySLO, Value: 75}, ClassAccuracy},
		{latSLO(0), ClassBestEffort},
		{runtime.SLO{Type: env.AccuracySLO, Value: 0}, ClassBestEffort},
	}
	for _, c := range cases {
		if got := classOf(c.slo); got != c.want {
			t.Fatalf("classOf(%+v) = %v, want %v", c.slo, got, c.want)
		}
	}
}

func TestSubmitServes(t *testing.T) {
	g := New(newTestRuntime(1, nil), Options{Workers: 1})
	defer g.Close(time.Second)

	out, err := g.Submit(testInput(1), latSLO(5000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Logits == nil || out.Logits.Shape[0] != 1 || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits shape: %v", out.Logits)
	}
	if out.BatchSize != 1 {
		t.Fatalf("solo request batch size %d, want 1", out.BatchSize)
	}
	st := g.Stats()
	if st.Admitted != 1 || st.Served != 1 || st.Shed != 0 || st.DeadlineMissed != 0 {
		t.Fatalf("stats after one served request: %+v", st)
	}
	if st.Cache.Misses == 0 {
		t.Fatal("first request should have missed the strategy cache")
	}
}

func TestQueueFullSheds(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(2, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, QueueDepth: 2, MaxLinger: time.Millisecond})

	// Occupy the single worker with a best-effort request stalled in its
	// decider, then overfill the latency queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(2), latSLO(0))
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	results := make(chan error, 3)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			_, err := g.Submit(testInput(10+i), latSLO(10000))
			results <- err
		}(int64(i))
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == 2 })
	if _, err := g.Submit(testInput(20), latSLO(10000)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull queue: got %v, want ErrQueueFull", err)
	}
	close(gate)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued request failed: %v", err)
		}
	}
	st := g.Stats()
	if st.Shed != 1 || st.Admitted != 3 || st.Served != 3 {
		t.Fatalf("stats: %+v, want shed=1 admitted=3 served=3", st)
	}
	g.Close(time.Second)
}

func TestDeadlineExpiredInQueueIsDropped(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(3, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(3), latSLO(0))
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	// Admitted with a 30ms budget, but the worker is stalled past it.
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Submit(testInput(30), latSLO(30))
		errCh <- err
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == 1 })
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if err := <-errCh; !IsDeadlineMissed(err) {
		t.Fatalf("expired request: got %v, want deadline-missed", err)
	}
	st := g.Stats()
	if st.Dropped != 1 || st.DeadlineMissed != 1 {
		t.Fatalf("stats: %+v, want dropped=1 deadlineMissed=1", st)
	}
	if st.Admitted != 2 || st.Served != 1 {
		t.Fatalf("stats: %+v, want admitted=2 served=1", st)
	}
	g.Close(time.Second)
}

func TestAdmissionShedsUnattainableDeadline(t *testing.T) {
	g := New(newTestRuntime(4, nil), Options{Workers: 1})
	defer g.Close(time.Second)
	// Teach the admission estimator that a batch takes ~50ms.
	g.mu.Lock()
	g.emaBatchSec[ClassLatency] = 0.05
	g.mu.Unlock()

	if _, err := g.Submit(testInput(4), latSLO(10)); !errors.Is(err, ErrDeadlineUnattainable) {
		t.Fatalf("10ms budget under 50ms service estimate: got %v, want ErrDeadlineUnattainable", err)
	}
	st := g.Stats()
	if st.Shed != 1 || st.Admitted != 0 {
		t.Fatalf("stats: %+v, want shed=1 admitted=0", st)
	}
	// A generous budget is still admitted.
	if _, err := g.Submit(testInput(5), latSLO(10000)); err != nil {
		t.Fatalf("generous budget rejected: %v", err)
	}
}

func TestDynamicBatchingCoalesces(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(5, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, MaxBatch: 8, MaxLinger: 100 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(6), latSLO(0)) // stall the worker
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	const n = 4
	sizes := make(chan int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			out, err := g.Submit(testInput(40+i), latSLO(10000))
			if err != nil {
				t.Error(err)
				sizes <- 0
				return
			}
			sizes <- out.BatchSize
		}(int64(i))
	}
	// All four share an SLO, hence a strategy key, hence a batch.
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == n })
	close(gate)
	wg.Wait()
	for i := 0; i < n; i++ {
		if bs := <-sizes; bs != n {
			t.Fatalf("request served in batch of %d, want %d", bs, n)
		}
	}
	st := g.Stats()
	if st.Batches != 2 || st.BatchedRequests != n+1 {
		t.Fatalf("stats: batches=%d batchedReqs=%d, want 2/%d", st.Batches, st.BatchedRequests, n+1)
	}
	g.Close(time.Second)
}

func TestLatencyClassHasPriority(t *testing.T) {
	// A custom runtime whose decider records the SLO of each resolution, so
	// the test observes server-side *service* order, not client wakeup order
	// (outcome channels are buffered; completion wakeups may reorder).
	gate := make(chan struct{})
	var decides int32
	var orderMu sync.Mutex
	var order []env.SLOType
	a := supernet.TinyArch(4)
	net := supernet.New(a, 6)
	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		} else {
			orderMu.Lock()
			order = append(order, c.Type)
			orderMu.Unlock()
		}
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	})
	rt := runtime.New(runtime.NewScheduler(net, nil), decider,
		runtime.NewStrategyCache(32, 25, 5, 10), nil)
	g := New(rt, Options{Workers: 1, MaxBatch: 1, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(7), latSLO(0)) // stall the worker
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	// Enqueue accuracy-SLO first, then latency-SLO; despite arriving later,
	// the latency request must be resolved first once the worker unblocks.
	// Distinct SLO types give every request a distinct strategy key, so each
	// resolution is a cache miss and reaches the recording decider.
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.Submit(testInput(50), runtime.SLO{Type: env.AccuracySLO, Value: 75})
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassAccuracy] == 1 })
	go func() {
		defer wg.Done()
		g.Submit(testInput(51), latSLO(10000))
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == 1 })
	close(gate)
	wg.Wait()
	orderMu.Lock()
	defer orderMu.Unlock()
	if len(order) != 2 || order[0] != env.LatencySLO {
		t.Fatalf("service order %v, want latency (%v) first", order, env.LatencySLO)
	}
	g.Close(time.Second)
}

func TestGracefulDrainServesQueued(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(8, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(8), latSLO(0))
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	const queued = 3
	errs := make(chan error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			_, err := g.Submit(testInput(60+i), latSLO(10000))
			errs <- err
		}(int64(i))
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == queued })

	closed := make(chan struct{})
	go func() {
		g.Close(10 * time.Second)
		close(closed)
	}()
	// New work is rejected once closing (a Submit racing ahead of the
	// closing flag would be admitted and block, so wait for the flag).
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.closing
	})
	if _, err := g.Submit(testInput(70), latSLO(10000)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit during drain: got %v, want ErrShuttingDown", err)
	}
	close(gate)
	<-closed
	wg.Wait()
	for i := 0; i < queued; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued request not drained: %v", err)
		}
	}
	st := g.Stats()
	if st.Served != queued+1 || st.Dropped != 0 {
		t.Fatalf("drain stats: %+v, want served=%d dropped=0", st, queued+1)
	}
}

func TestCloseGraceExpiryFailsQueued(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(9, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(9), latSLO(0))
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Submit(testInput(90), latSLO(10000))
		errCh <- err
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth[ClassLatency] == 1 })

	// Grace is far shorter than the stall: the queued request must be
	// abandoned, not silently lost. Release the stall afterwards so Close
	// can join the worker.
	time.AfterFunc(300*time.Millisecond, func() { close(gate) })
	g.Close(50 * time.Millisecond)
	wg.Wait()
	if err := <-errCh; !errors.Is(err, ErrShuttingDown) && !IsShed(err) {
		t.Fatalf("abandoned request: got %v, want shutting-down", err)
	}
	st := g.Stats()
	if st.Dropped != 1 {
		t.Fatalf("stats: %+v, want dropped=1", st)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("accounting broken: %+v", st)
	}
}

// TestDecodeSLOPreservesType checks that the SLO type survives the wire
// verbatim: a best-effort accuracy SLO (Value<=0) must not come back
// latency-typed, since downstream constraint assembly keys off slo.Type.
func TestDecodeSLOPreservesType(t *testing.T) {
	cases := []runtime.SLO{
		{Type: env.LatencySLO, Value: 100},
		{Type: env.LatencySLO, Value: 0},
		{Type: env.AccuracySLO, Value: 75},
		{Type: env.AccuracySLO, Value: 0},
		{Type: env.AccuracySLO, Value: -1},
	}
	for _, in := range cases {
		out, err := decodeSLO(byte(in.Type), in.Value)
		if err != nil {
			t.Fatalf("decodeSLO(%+v): %v", in, err)
		}
		if out != in {
			t.Fatalf("SLO round trip: sent %+v, got %+v", in, out)
		}
	}
	if _, err := decodeSLO(9, 1); err == nil {
		t.Fatal("unknown SLO type must be rejected")
	}
}

// TestCloseBoundedWithWedgedWorker wedges the single worker inside its
// decider forever and checks Close still returns within its grace bounds
// instead of waiting on the worker indefinitely.
func TestCloseBoundedWithWedgedWorker(t *testing.T) {
	gate := make(chan struct{})
	var decides int32
	g := New(newTestRuntime(10, func() {
		if atomic.AddInt32(&decides, 1) == 1 {
			<-gate
		}
	}), Options{Workers: 1, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Submit(testInput(100), latSLO(0))
	}()
	waitFor(t, func() bool { return atomic.LoadInt32(&decides) == 1 })

	start := time.Now()
	g.Close(50 * time.Millisecond)
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("Close with wedged worker took %v, want bounded by grace", e)
	}
	// Unwedge so the abandoned worker and its submitter can finish.
	close(gate)
	wg.Wait()
}

func TestStatsWireRoundTrip(t *testing.T) {
	in := Stats{
		Admitted: 10, Served: 7, Shed: 2, Dropped: 1, DeadlineMissed: 3,
		Failed: 1, Batches: 4, BatchedRequests: 8,
		QueueDepth: [numClasses]int{1, 2, 3},
		Cache: runtime.CacheStats{
			Len: 5, Cap: 64, Hits: 100, Misses: 20, Evictions: 2,
		},
	}
	out, err := decodeStats(encodeStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("stats round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
