package serve

import (
	"errors"
	"time"

	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
)

// worker is one executor loop: form a batch, run it, repeat until the
// gateway is closed and drained.
func (g *Gateway) worker() {
	for {
		batch := g.nextBatch()
		if batch == nil {
			return
		}
		g.execute(batch)
	}
}

// nextBatch blocks until work is available and returns a batch of
// compatible requests (same class and strategy key), or nil when the
// gateway is closed and fully drained. After taking a head request it
// lingers up to MaxLinger for the batch to fill, but never past the point
// where a latency-SLO head could still make its deadline.
func (g *Gateway) nextBatch() []*request {
	g.mu.Lock()
	var head *request
	for {
		head = g.popHead(time.Now())
		if head != nil {
			break
		}
		if g.closing {
			g.mu.Unlock()
			return nil
		}
		g.cond.Wait()
	}
	batch := append([]*request{head},
		g.collectCompatible(head, g.opts.MaxBatch-1, time.Now())...)
	if len(batch) < g.opts.MaxBatch {
		lingerEnd := time.Now().Add(g.opts.MaxLinger)
		if head.class == ClassLatency {
			// Leave one estimated batch execution of slack before the
			// head's deadline.
			slackEnd := head.deadline.Add(-time.Duration(g.emaBatchSec * float64(time.Second)))
			if slackEnd.Before(lingerEnd) {
				lingerEnd = slackEnd
			}
		}
		for len(batch) < g.opts.MaxBatch && !g.closing {
			now := time.Now()
			if !now.Before(lingerEnd) {
				break
			}
			timer := time.AfterFunc(lingerEnd.Sub(now), g.cond.Broadcast)
			g.cond.Wait()
			timer.Stop()
			batch = append(batch,
				g.collectCompatible(head, g.opts.MaxBatch-len(batch), time.Now())...)
		}
	}
	g.mu.Unlock()
	return batch
}

// execute resolves the batch's strategy once, runs the batched inference,
// and delivers per-request outcomes. A batch that fails with a
// device-attributed error triggers failover — mark the device unhealthy,
// invalidate its cached strategies, tell the failure detector — and is
// retried once on a re-resolved strategy before it counts as Failed.
func (g *Gateway) execute(batch []*request) {
	start := time.Now()
	res, err := g.rt.ResolveFor(batch[0].slo)
	if err != nil {
		g.finishError(batch, err)
		return
	}
	xs := make([]*tensor.Tensor, len(batch))
	for i, r := range batch {
		xs[i] = r.x
	}
	outs, _, err := g.rt.ExecBatch(xs, res.Decision)
	var de *runtime.DeviceError
	if err != nil && errors.As(err, &de) {
		g.noteDeviceError(de)
		g.mu.Lock()
		g.stats.FailoverAttempts++
		g.mu.Unlock()
		if res2, rerr := g.rt.ResolveFor(batch[0].slo); rerr == nil {
			res = res2
			outs, _, err = g.rt.ExecBatch(xs, res.Decision)
			if err == nil {
				g.mu.Lock()
				g.stats.Failovers++
				g.mu.Unlock()
			}
		}
	}
	execTime := time.Since(start)
	if err != nil {
		g.finishError(batch, err)
		return
	}

	now := time.Now()
	g.mu.Lock()
	sec := execTime.Seconds()
	if g.emaBatchSec == 0 {
		g.emaBatchSec = sec
	} else {
		g.emaBatchSec = 0.8*g.emaBatchSec + 0.2*sec
	}
	g.stats.Batches++
	g.stats.BatchedRequests += uint64(len(batch))
	for _, r := range batch {
		g.stats.Served++
		if r.class == ClassLatency && now.After(r.deadline) {
			g.stats.DeadlineMissed++
		}
	}
	g.mu.Unlock()

	for i, r := range batch {
		r.done <- Outcome{
			Logits:     outs[i],
			QueueWait:  start.Sub(r.enqueued),
			ExecTime:   execTime,
			DecideTime: res.DecideTime,
			BatchSize:  len(batch),
			CacheHit:   res.CacheHit,
		}
	}
}

// finishError fails every request of a batch whose execution errored.
func (g *Gateway) finishError(batch []*request, err error) {
	g.mu.Lock()
	g.stats.Failed += uint64(len(batch))
	g.mu.Unlock()
	for _, r := range batch {
		r.done <- Outcome{Err: err}
	}
}
