package serve

import (
	"errors"
	"fmt"
	goruntime "runtime"
	"time"

	"murmuration/internal/limit"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
)

// worker is one executor loop: form a batch, run it, repeat until the
// gateway is closed and drained.
func (g *Gateway) worker() {
	for {
		batch := g.nextBatch()
		if batch == nil {
			return
		}
		g.executeProtected(batch)
	}
}

// panicStackCap bounds the stack capture attached to a recovered worker
// panic's error.
const panicStackCap = 4096

// executeProtected runs one batch with panic isolation: a panic anywhere in
// resolution, degradation, or execution fails that batch — every request
// gets a typed error — and the worker loop survives to take the next batch.
// Delivery is idempotent, so a panic after some outcomes were already sent
// fails only the requests still waiting.
func (g *Gateway) executeProtected(batch []*request) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := make([]byte, panicStackCap)
		stack = stack[:goruntime.Stack(stack, false)]
		g.mu.Lock()
		g.stats.Panics++
		g.mu.Unlock()
		err := fmt.Errorf("serve: batch execution panicked: %v\n%s", r, stack)
		g.finishError(batch, err)
	}()
	g.execute(batch)
}

// nextBatch blocks until work is available and returns a batch of
// compatible requests (same class and strategy key), or nil when the
// gateway is closed and fully drained. After taking a head request it
// lingers up to MaxLinger for the batch to fill, but never past the point
// where a latency-SLO head could still make its deadline.
func (g *Gateway) nextBatch() []*request {
	g.mu.Lock()
	var head *request
	for {
		head = g.popHead(time.Now())
		if head != nil {
			break
		}
		if g.closing {
			g.mu.Unlock()
			return nil
		}
		g.cond.Wait()
	}
	batch := append([]*request{head},
		g.collectCompatible(head, g.opts.MaxBatch-1, time.Now())...)
	if len(batch) < g.opts.MaxBatch {
		lingerEnd := time.Now().Add(g.opts.MaxLinger)
		if head.class == ClassLatency {
			// Leave one estimated batch execution of slack before the
			// head's deadline.
			slackEnd := head.deadline.Add(-time.Duration(g.emaBatchSec[head.class] * float64(time.Second)))
			if slackEnd.Before(lingerEnd) {
				lingerEnd = slackEnd
			}
		}
		for len(batch) < g.opts.MaxBatch && !g.closing {
			now := time.Now()
			if !now.Before(lingerEnd) {
				break
			}
			timer := time.AfterFunc(lingerEnd.Sub(now), g.cond.Broadcast)
			g.cond.Wait()
			timer.Stop()
			batch = append(batch,
				g.collectCompatible(head, g.opts.MaxBatch-len(batch), time.Now())...)
		}
	}
	g.mu.Unlock()
	return batch
}

// batchDeadline returns the tightest deadline across the batch (zero when
// no request carries one — non-latency classes).
func batchDeadline(batch []*request) time.Time {
	var d time.Time
	for _, r := range batch {
		if r.deadline.IsZero() {
			continue
		}
		if d.IsZero() || r.deadline.Before(d) {
			d = r.deadline
		}
	}
	return d
}

// execute resolves the batch's strategy once, consults the degradation
// ladder against the batch's remaining deadline budget, runs the batched
// inference under that budget, and delivers per-request outcomes.
//
// Two recovery paths run before a batch counts as lost:
//   - A device-attributed error triggers failover — mark the device
//     unhealthy, invalidate its cached strategies, tell the failure
//     detector — and the batch is retried once on a re-resolved strategy
//     (re-degraded at the same rung) before it counts as Failed.
//   - A budget exhaustion (the typed refusal, never a silent late reply)
//     feeds the ladder so the next batch plans a cheaper rung, and the
//     batch's requests are dropped as deadline-missed, not Failed.
func (g *Gateway) execute(batch []*request) {
	start := time.Now()
	deadline := batchDeadline(batch)

	// Queue wait and batch formation already happened on the clock: the
	// budget we plan against is what is left now, not the original SLO.
	var remaining time.Duration
	if !deadline.IsZero() {
		remaining = time.Until(deadline)
		if remaining <= 0 {
			g.dropBatch(batch, ErrDeadlineMissed)
			return
		}
	}

	res, err := g.rt.ResolveFor(batch[0].slo)
	if err != nil {
		g.finishError(batch, err)
		return
	}
	rung := g.ladder.Plan(remaining)

	xs := make([]*tensor.Tensor, len(batch))
	for i, r := range batch {
		xs[i] = r.x
	}
	attemptStart := time.Now()
	var outs []*tensor.Tensor
	outs, res, err = g.runBatch(xs, res, batch[0].slo, rung, deadline)
	if err != nil && errors.Is(err, rpcx.ErrBudgetExhausted) {
		// The budget ran out mid-attempt: teach the ladder this rung is over
		// budget, then spend whatever budget is left on one deeper attempt —
		// runBatch capped the failed attempt below the full budget precisely
		// to keep this fallback affordable. A promotion probe that hits a
		// still-degraded network therefore costs latency, not the request.
		g.ladder.ObserveMiss(rung, time.Since(attemptStart))
		if left := time.Until(deadline); !deadline.IsZero() && left > 5*time.Millisecond {
			if deeper := g.ladder.Plan(left); deeper > rung {
				rung = deeper
				attemptStart = time.Now()
				outs, res, err = g.runBatch(xs, res, batch[0].slo, rung, deadline)
				if err != nil && errors.Is(err, rpcx.ErrBudgetExhausted) {
					g.ladder.ObserveMiss(rung, time.Since(attemptStart))
				}
			}
		}
	}
	execTime := time.Since(start)
	if err != nil {
		if errors.Is(err, rpcx.ErrBudgetExhausted) {
			// Even the fallback ran out of time: drop the batch as missed,
			// not failed — the system refused to be late rather than
			// malfunctioning.
			g.mu.Lock()
			g.stats.BudgetExhausted += uint64(len(batch))
			g.mu.Unlock()
			g.dropBatch(batch, err)
			return
		}
		if errors.Is(err, rpcx.ErrRetryBudget) {
			// The shared retry budget refused the speculative attempt that
			// could have saved this batch. That is storm control doing its
			// job, not a malfunction: the batch is dropped shed-shaped
			// (retryable by the caller once primary traffic refills the
			// bucket), never Failed, and no device is demoted for it.
			g.mu.Lock()
			g.stats.Overloads += uint64(len(batch))
			g.mu.Unlock()
			g.dropBatch(batch, fmt.Errorf("%w: %v", ErrOverloaded, err))
			return
		}
		if errors.Is(err, limit.ErrLimited) || errors.Is(err, rpcx.ErrOverloaded) {
			// An overload refusal — the per-device limiter shed the dispatch,
			// or the daemon's in-flight cap refused it. A refusal is not a
			// malfunction: the batch is dropped (shed-shaped, retryable by
			// the caller), never Failed, and no device is demoted for it.
			g.mu.Lock()
			g.stats.Overloads += uint64(len(batch))
			g.mu.Unlock()
			g.dropBatch(batch, fmt.Errorf("%w: %v", ErrOverloaded, err))
			return
		}
		g.finishError(batch, err)
		return
	}
	// The estimate is the cost of the rung that served, so a fallback serve
	// folds only its own attempt, not the failed probe before it.
	g.ladder.Observe(rung, time.Since(attemptStart), remaining)

	now := time.Now()
	g.mu.Lock()
	class := batch[0].class
	sec := execTime.Seconds()
	if g.emaBatchSec[class] == 0 {
		g.emaBatchSec[class] = sec
	} else {
		g.emaBatchSec[class] = 0.8*g.emaBatchSec[class] + 0.2*sec
	}
	g.stats.Batches++
	g.stats.BatchedRequests += uint64(len(batch))
	if rung > 0 {
		g.stats.Degraded += uint64(len(batch))
		g.stats.DegradedRungs += uint64(rung) * uint64(len(batch))
	}
	if res.Canary {
		g.stats.CanaryServed += uint64(len(batch))
	}
	met := make([]bool, len(batch))
	for i, r := range batch {
		g.stats.Served++
		if r.class == ClassLatency && now.After(r.deadline) {
			g.stats.DeadlineMissed++
			g.stats.ClassMissed[r.class]++
		} else {
			g.stats.ClassMet[r.class]++
			met[i] = true
		}
	}
	tap := g.tap
	g.mu.Unlock()

	// A degraded batch did not execute the policy's decision, so its measured
	// latency must not be credited to the policy's choice sequence.
	choices := res.Choices
	if rung != 0 {
		choices = nil
	}
	for i, r := range batch {
		if tap != nil {
			tap.Offer(OutcomeEvent{
				Kind:          KindServed,
				Class:         r.class,
				SLO:           r.slo,
				Constraint:    res.Constraint,
				Rung:          rung,
				PolicyVersion: res.PolicyVersion,
				Canary:        res.Canary,
				LatencyMs:     now.Sub(r.enqueued).Seconds() * 1000,
				SLOMet:        met[i],
				Choices:       choices,
			})
		}
		g.deliver(r, Outcome{
			Logits:        outs[i],
			QueueWait:     start.Sub(r.enqueued),
			ExecTime:      execTime,
			DecideTime:    res.DecideTime,
			BatchSize:     len(batch),
			CacheHit:      res.CacheHit,
			Rung:          rung,
			PolicyVersion: res.PolicyVersion,
			Canary:        res.Canary,
		})
	}
}

// runBatch executes one attempt of the batch at the given rung, retrying
// once on a device-attributed failure (failover: mark the device, re-resolve,
// re-degrade at the same rung). It returns the resolution actually used so
// the caller reports accurate decide/cache metadata after a failover.
//
// When the ladder still has deeper rungs below the planned one, a
// deadline-bounded attempt is deliberately capped at ~3/5 of the remaining
// budget: if this attempt misses, execute's budget-exhaustion fallback can
// still afford one deeper attempt inside the same deadline. Rung 0 always
// gets the full budget — healthy traffic must not be degraded preemptively.
func (g *Gateway) runBatch(xs []*tensor.Tensor, res *runtime.Resolution, slo runtime.SLO, rung int, deadline time.Time) ([]*tensor.Tensor, *runtime.Resolution, error) {
	budget := budgetLeft(deadline)
	if budget > 0 && rung > 0 && rung < g.ladder.MaxRung() {
		if capped := budget * 3 / 5; capped > 0 {
			budget = capped
		}
	}
	decision := g.rt.DegradeDecision(res.Decision, rung)
	outs, _, err := g.rt.ExecBatchBudget(xs, decision, budget)
	retry := false
	var de *runtime.DeviceError
	switch {
	case err == nil:
	case errors.As(err, &de):
		g.noteDeviceError(de)
		retry = true
	case errors.Is(err, runtime.ErrFenced), errors.Is(err, rpcx.ErrStalled):
		// A fenced response (the device restarted mid-batch) or a stalled
		// transfer (half-open link) fails the attempt but demotes nothing:
		// the fence has already redirected the connection to the live
		// incarnation, and a stall is link-gray evidence the health tracker
		// scores separately. Either way the batch deserves one retry on a
		// re-resolved strategy before it counts as Failed.
		retry = true
	}
	if retry {
		// The failover re-execution is a speculative attempt like any rpcx
		// retry or hedge: it draws from the same shared budget, so a
		// correlated loss cannot multiply every failing batch into double
		// load on the survivors. A refusal keeps the first attempt's error
		// wrapped in the typed retry-budget shed — execute drops the batch
		// shed-shaped, never Failed, and no device is demoted for it.
		if b := g.rt.Scheduler.RetryBudget; b != nil && !b.TryWithdraw() {
			return outs, res, fmt.Errorf("serve: failover retry suppressed: %w (cause: %v)",
				rpcx.ErrRetryBudget, err)
		}
		g.mu.Lock()
		g.stats.FailoverAttempts++
		g.mu.Unlock()
		if res2, rerr := g.rt.ResolveFor(slo); rerr == nil {
			res = res2
			decision = g.rt.DegradeDecision(res.Decision, rung)
			outs, _, err = g.rt.ExecBatchBudget(xs, decision, budgetLeft(deadline))
			if err == nil {
				g.mu.Lock()
				g.stats.Failovers++
				g.mu.Unlock()
			}
		}
	}
	return outs, res, err
}

// budgetLeft converts a deadline into the budget remaining right now (0 =
// no deadline).
func budgetLeft(deadline time.Time) time.Duration {
	if deadline.IsZero() {
		return 0
	}
	if left := time.Until(deadline); left > 0 {
		return left
	}
	// Expired between planning and dispatch: pass the smallest positive
	// budget so execution fails fast with the typed budget error instead of
	// running unbounded.
	return time.Nanosecond
}

// dropBatch abandons every request of an admitted batch that will not (or
// did not) execute in time, with drop/deadline accounting.
func (g *Gateway) dropBatch(batch []*request, err error) {
	g.mu.Lock()
	for _, r := range batch {
		g.failLocked(r, err)
	}
	g.mu.Unlock()
}

// finishError fails every request of a batch whose execution errored.
// Delivery is idempotent: requests that already received their outcome
// (e.g. before a mid-delivery panic) are neither re-sent nor re-counted.
func (g *Gateway) finishError(batch []*request, err error) {
	for _, r := range batch {
		if g.deliver(r, Outcome{Err: err}) {
			g.mu.Lock()
			g.stats.Failed++
			g.stats.ClassMissed[r.class]++
			g.offerLocked(OutcomeEvent{Kind: KindFailed, Class: r.class, SLO: r.slo})
			g.mu.Unlock()
		}
	}
}
