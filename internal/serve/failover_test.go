package serve

import (
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
)

// remoteDecider always places every tile on placement device 1 — the
// runtime's sanitize pass, not the decider, must keep dead devices out.
func remoteDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		for k := range p.Devices {
			for ti := range p.Devices[k] {
				p.Devices[k][ti] = 1
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	}
}

// TestFailoverRetriesOnDeviceError: a batch that dies on a remote device must
// be retried once on a re-resolved (device-free) strategy and served, not
// failed — and the failure must be visible in every failover counter.
func TestFailoverRetriesOnDeviceError(t *testing.T) {
	a := supernet.TinyArch(4)
	net := supernet.New(a, 300)

	// A server that accepts the dial and then goes away: the first remote
	// tile call fails with a device-attributed transport error.
	srv := rpcx.NewServer()
	runtime.NewExecutor(net).Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, dialErr := rpcx.Dial(addr, nil)
	srv.Close()
	if dialErr != nil {
		t.Skip("dial failed fast; nothing to test")
	}
	defer cl.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)

	var hookDevice atomic.Int64
	g := New(rt, Options{Workers: 1, OnDeviceError: func(dev int, err error) {
		hookDevice.Store(int64(dev))
	}})
	defer g.Close(time.Second)

	out, err := g.Submit(testInput(300), latSLO(30000))
	if err != nil {
		t.Fatalf("failover should have served the request locally: %v", err)
	}
	if out.Logits == nil || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after failover: %v", out.Logits)
	}

	st := g.Stats()
	if st.Served != 1 || st.Failed != 0 {
		t.Fatalf("served=%d failed=%d, want 1/0: %+v", st.Served, st.Failed, st)
	}
	if st.FailoverAttempts != 1 || st.Failovers != 1 {
		t.Fatalf("failover counters %d/%d, want 1/1", st.FailoverAttempts, st.Failovers)
	}
	// Invalidation is an O(1) epoch bump; the stranded entry is swept lazily
	// if a lookup ever lands on its key again, so the event counter — not the
	// per-entry sweep counter — is what must move here.
	if st.InvalidationEpochs == 0 {
		t.Fatal("the poisoned cached strategy was not invalidated")
	}
	// No detector attached: cluster counts derive from the health mask.
	if st.ClusterDown != 1 || st.ClusterUp != 0 {
		t.Fatalf("derived cluster counts up=%d down=%d, want 0/1", st.ClusterUp, st.ClusterDown)
	}
	if hookDevice.Load() != 1 {
		t.Fatalf("OnDeviceError saw device %d, want 1", hookDevice.Load())
	}
	if h := rt.HealthyDevices(); h[0] {
		t.Fatal("failing device still marked healthy")
	}
}

// TestAttachClusterFailoverEvents drives Down/Up through the failure detector
// and checks the gateway mirrors them into the runtime: demote + invalidate
// on Down, reinstate on recovery, counts exposed via Stats.
func TestAttachClusterFailoverEvents(t *testing.T) {
	a := supernet.TinyArch(4)
	net := supernet.New(a, 301)
	// The remote is never called; a closed client is fine as a placeholder.
	srv := rpcx.NewServer()
	addr, _ := srv.Listen("127.0.0.1:0")
	cl, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	defer cl.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetSLO(latSLO(5000))

	g := New(rt, Options{Workers: 1})
	defer g.Close(time.Second)

	// Seed the cache with a strategy that places work on device 1.
	if _, err := rt.ResolveFor(rt.SLO()); err != nil {
		t.Fatal(err)
	}

	ok := atomic.Bool{}
	ok.Store(true)
	probe := func(timeout time.Duration) (time.Duration, uint64, error) {
		if !ok.Load() {
			return 0, 0, rpcx.ErrTimeout
		}
		return time.Millisecond, 0, nil
	}
	m := cluster.NewManager([]cluster.ProbeFunc{probe}, cluster.Options{
		HeartbeatInterval: 5 * time.Millisecond,
		SuspectAfter:      25 * time.Millisecond,
		DownAfter:         60 * time.Millisecond,
	})
	g.AttachCluster(m)
	m.Start()
	defer m.Close()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	ok.Store(false)
	waitFor("device demoted on Down", func() bool { return !rt.HealthyDevices()[0] })
	waitFor("cached strategy invalidated", func() bool { return g.Stats().InvalidationEpochs >= 1 })
	waitFor("cluster counts show the down member", func() bool { return g.Stats().ClusterDown == 1 })

	ok.Store(true)
	waitFor("device reinstated on recovery", func() bool { return rt.HealthyDevices()[0] })
	waitFor("cluster counts show recovery", func() bool {
		st := g.Stats()
		return st.ClusterUp == 1 && st.ClusterDown == 0
	})
}
