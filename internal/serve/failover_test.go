package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// remoteDecider always places every tile on placement device 1 — the
// runtime's sanitize pass, not the decider, must keep dead devices out.
func remoteDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		for k := range p.Devices {
			for ti := range p.Devices[k] {
				p.Devices[k][ti] = 1
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	}
}

// TestFailoverRetriesOnDeviceError: a batch that dies on a remote device must
// be retried once on a re-resolved (device-free) strategy and served, not
// failed — and the failure must be visible in every failover counter.
func TestFailoverRetriesOnDeviceError(t *testing.T) {
	a := supernet.TinyArch(4)
	net := supernet.New(a, 300)

	// A server that accepts the dial and then goes away: the first remote
	// tile call fails with a device-attributed transport error.
	srv := rpcx.NewServer()
	runtime.NewExecutor(net).Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, dialErr := rpcx.Dial(addr, nil)
	srv.Close()
	if dialErr != nil {
		t.Skip("dial failed fast; nothing to test")
	}
	defer cl.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)

	var hookDevice atomic.Int64
	g := New(rt, Options{Workers: 1, OnDeviceError: func(dev int, err error) {
		hookDevice.Store(int64(dev))
	}})
	defer g.Close(time.Second)

	out, err := g.Submit(testInput(300), latSLO(30000))
	if err != nil {
		t.Fatalf("failover should have served the request locally: %v", err)
	}
	if out.Logits == nil || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after failover: %v", out.Logits)
	}

	st := g.Stats()
	if st.Served != 1 || st.Failed != 0 {
		t.Fatalf("served=%d failed=%d, want 1/0: %+v", st.Served, st.Failed, st)
	}
	if st.FailoverAttempts != 1 || st.Failovers != 1 {
		t.Fatalf("failover counters %d/%d, want 1/1", st.FailoverAttempts, st.Failovers)
	}
	if st.Cache.Invalidations == 0 {
		t.Fatal("the poisoned cached strategy was not invalidated")
	}
	// No detector attached: cluster counts derive from the health mask.
	if st.ClusterDown != 1 || st.ClusterUp != 0 {
		t.Fatalf("derived cluster counts up=%d down=%d, want 0/1", st.ClusterUp, st.ClusterDown)
	}
	if hookDevice.Load() != 1 {
		t.Fatalf("OnDeviceError saw device %d, want 1", hookDevice.Load())
	}
	if h := rt.HealthyDevices(); h[0] {
		t.Fatal("failing device still marked healthy")
	}
}

// TestAttachClusterFailoverEvents drives Down/Up through the failure detector
// and checks the gateway mirrors them into the runtime: demote + invalidate
// on Down, reinstate on recovery, counts exposed via Stats.
func TestAttachClusterFailoverEvents(t *testing.T) {
	a := supernet.TinyArch(4)
	net := supernet.New(a, 301)
	// The remote is never called; a closed client is fine as a placeholder.
	srv := rpcx.NewServer()
	addr, _ := srv.Listen("127.0.0.1:0")
	cl, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	defer cl.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetSLO(latSLO(5000))

	g := New(rt, Options{Workers: 1})
	defer g.Close(time.Second)

	// Seed the cache with a strategy that places work on device 1.
	if _, err := rt.ResolveFor(rt.SLO()); err != nil {
		t.Fatal(err)
	}

	ok := atomic.Bool{}
	ok.Store(true)
	probe := func(timeout time.Duration) (time.Duration, error) {
		if !ok.Load() {
			return 0, rpcx.ErrTimeout
		}
		return time.Millisecond, nil
	}
	m := cluster.NewManager([]cluster.ProbeFunc{probe}, cluster.Options{
		HeartbeatInterval: 5 * time.Millisecond,
		SuspectAfter:      25 * time.Millisecond,
		DownAfter:         60 * time.Millisecond,
	})
	g.AttachCluster(m)
	m.Start()
	defer m.Close()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	ok.Store(false)
	waitFor("device demoted on Down", func() bool { return !rt.HealthyDevices()[0] })
	waitFor("cached strategy invalidated", func() bool { return g.Stats().Cache.Invalidations >= 1 })
	waitFor("cluster counts show the down member", func() bool { return g.Stats().ClusterDown == 1 })

	ok.Store(true)
	waitFor("device reinstated on recovery", func() bool { return rt.HealthyDevices()[0] })
	waitFor("cluster counts show recovery", func() bool {
		st := g.Stats()
		return st.ClusterUp == 1 && st.ClusterDown == 0
	})
}

// TestChaosDeviceKill is the fault-injection load test: concurrent clients
// drive a gateway over real sockets while one of its two device daemons is
// killed mid-run and later restarted on the same address. The serving
// invariant must hold throughout (no request vanishes), the outage must not
// fail requests (failover serves them on the surviving devices), and once the
// daemon returns the detector must reintegrate it so strategies place work
// there again.
func TestChaosDeviceKill(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		numClients    = 8
		reqsPerClient = 6
		sloMs         = 30000 // generous: -race plus outage retries are slow
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 302)

	// Two device daemons: executor + monitor endpoints + cluster node.
	startDaemon := func(addr string) (*rpcx.Server, string) {
		srv := rpcx.NewServer()
		runtime.NewExecutor(net).Register(srv)
		monitor.RegisterHandlers(srv)
		cluster.NewNode().Register(srv)
		got, err := srv.Listen(addr)
		if err != nil {
			t.Fatalf("listen %q: %v", addr, err)
		}
		return srv, got
	}
	srv1, addr1 := startDaemon("127.0.0.1:0")
	srv2, addr2 := startDaemon("127.0.0.1:0")
	defer srv2.Close()

	// Data clients: retry policy + idempotent marking so calls ride out the
	// restart via automatic re-dial.
	dialData := func(addr string) *rpcx.Client {
		c, err := rpcx.Dial(addr, nil)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
		c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
		return c
	}
	data1, data2 := dialData(addr1), dialData(addr2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second

	// Deterministic decider: spread tiles round-robin over every device whose
	// link looks alive (the runtime degrades a down device's link to ~zero).
	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	})
	rt := runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(latSLO(sloMs))

	// Heartbeats ride dedicated connections (data calls serialize per client,
	// so sharing would let a slow batch delay failure detection).
	hb1, hb2 := dialData(addr1), dialData(addr2)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := New(rt, Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32})
	g.AttachCluster(m)
	m.Start()

	gwSrv := rpcx.NewServer()
	g.Register(gwSrv)
	gwAddr, err := gwSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer gwSrv.Close()

	var success, shed, missed, otherErr atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialClient(gwAddr)
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			for i := 0; i < reqsPerClient; i++ {
				res, err := cl.Infer(testInput(int64(100*c+i)), latSLO(sloMs), 60*time.Second)
				switch {
				case err == nil:
					success.Add(1)
					if res.Logits == nil || res.Logits.Shape[1] != 4 {
						t.Errorf("client %d: bad logits %v", c, res.Logits)
					}
				case IsShed(err):
					shed.Add(1)
				case IsDeadlineMissed(err):
					missed.Add(1)
				default:
					otherErr.Add(1)
					t.Errorf("client %d req %d: unexpected error %v", c, i, err)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(c)
	}

	// Kill device 1 while traffic flows, wait for the detector, restart it on
	// the same address, and wait for reintegration — all mid-load.
	time.Sleep(50 * time.Millisecond)
	srv1.Close()
	waitState := func(want cluster.State) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if m.StateOf(0) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("member 0 never reached %v (now %v)", want, m.StateOf(0))
	}
	waitState(cluster.Down)
	srv1b, _ := startDaemon(addr1)
	defer srv1b.Close()
	waitState(cluster.Up)

	wg.Wait()
	g.Close(30 * time.Second)

	st := g.Stats()
	const total = uint64(numClients * reqsPerClient)
	t.Logf("chaos: %d requests → success=%d shed=%d missed=%d; detector=%+v; stats=%+v",
		total, success.Load(), shed.Load(), missed.Load(), m.CountersSnapshot(), st)

	// Every request got exactly one definitive outcome, and the admission
	// ledger balances: nothing vanished during the outage.
	if got := success.Load() + shed.Load() + missed.Load() + otherErr.Load(); got != total {
		t.Fatalf("outcomes %d != requests %d", got, total)
	}
	if otherErr.Load() != 0 {
		t.Fatalf("%d requests failed with unexpected errors", otherErr.Load())
	}
	if st.Admitted+st.Shed != total {
		t.Fatalf("admitted %d + shed %d != %d attempts", st.Admitted, st.Shed, total)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	// Failover, not failure: requests caught on the dying device were retried
	// onto the survivors.
	if st.Failed != 0 {
		t.Fatalf("%d requests failed despite failover", st.Failed)
	}
	if success.Load() == 0 {
		t.Fatal("no request succeeded — chaos test vacuous")
	}
	// The detector saw the churn.
	if c := m.CountersSnapshot(); c.Downs < 1 || c.Recoveries < 1 {
		t.Fatalf("detector counters after kill+restart: %+v", c)
	}
	// Reintegration: with the daemon back and Up, resolution places work on
	// device 1 again (the degraded-constraint bucket is no longer used).
	res, err := rt.ResolveFor(rt.SLO())
	if err != nil {
		t.Fatal(err)
	}
	placed := false
	for _, layer := range res.Decision.Placement.Devices {
		for _, dev := range layer {
			if dev == 1 {
				placed = true
			}
		}
	}
	if !placed {
		t.Fatalf("recovered device 1 not back in the placement: %v", res.Decision.Placement.Devices)
	}
}
