// Restart- and partition-immunity chaos tests: incarnation-fenced
// reconfiguration on an in-place daemon restart, and asymmetric network
// faults that heartbeats cannot see. Like chaos_scenario_test.go, the fault
// timeline is scenario data applied between observed phases, never a blind
// sleep.
package serve_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/health"
	"murmuration/internal/monitor"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// TestChaosDaemonRestart drives the full incarnation-fencing path end to end.
// Device 0's daemon is "restarted" as the nastiest variant: the old process
// stays alive as a zombie that still owns its socket and keeps computing,
// while the replacement (next incarnation) comes up elsewhere and the
// gateway's dialer now resolves to it. The heartbeat path discovers the new
// incarnation; the restart must be detected as an atomic Down→Up within a
// few heartbeat periods, every zombie response still in flight must be
// fenced — counted, never delivered, never fed to health — and the fenced
// batch must ride the ordinary retry path to a successful outcome.
func TestChaosDaemonRestart(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		sloMs     = 30000
		heartbeat = 25 * time.Millisecond
		restartAt = 10 * time.Millisecond // logical trace offset
	)
	inc1 := uint64(1)<<48 | 0xA1 // zombie's incarnation (restart #1)
	inc2 := uint64(2)<<48 | 0xC3 // replacement's incarnation (restart #2)

	a := supernet.TinyArch(4)
	snet := supernet.New(a, 401)

	// Zombie-capable daemon: its ExecBlock handler counts in-flight calls (so
	// the test can trigger the restart while one is provably on the wire) and
	// rides a compute injector whose slowdown stretches the zombie's answers
	// past the detection latency.
	var zombieBusy atomic.Int64
	inj1 := runtime.NewComputeInjector(runtime.NewExecutor(snet).ExecBlockHandler())
	srv1 := rpcx.NewServer()
	srv1.Handle(runtime.ExecBlockMethod, func(p []byte) ([]byte, error) {
		zombieBusy.Add(1)
		defer zombieBusy.Add(-1)
		return inj1.Handler()(p)
	})
	monitor.RegisterHandlers(srv1)
	cluster.NewNode().Register(srv1)
	srv1.SetIncarnation(inc1)
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()

	srv2, addr2 := chaosDaemon(t, snet, "127.0.0.1:0")
	srv2.SetIncarnation(uint64(1)<<48 | 0xB2)
	defer srv2.Close()

	// Both device-0 connections re-dial through a mutable target, so swapping
	// it models "the address now resolves to the replacement process" while
	// the zombie keeps its established connections.
	var target atomic.Value
	target.Store(addr1)
	redial := func() (net.Conn, error) { return net.Dial("tcp", target.Load().(string)) }

	data1, data2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()
	data1.SetDialer(redial)
	if _, err := data1.Handshake(2 * time.Second); err != nil {
		t.Fatalf("handshake device 1: %v", err)
	}
	if _, err := data2.Handshake(2 * time.Second); err != nil {
		t.Fatalf("handshake device 2: %v", err)
	}

	sched := runtime.NewScheduler(snet, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 15 * time.Second
	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	hb1.SetDialer(redial)
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: heartbeat,
			SuspectAfter:      8 * heartbeat,
			DownAfter:         20 * heartbeat,
		})
	defer m.Close()

	var restartedAt atomic.Value // time.Time: when the replacement took over
	detected := make(chan uint64, 1)
	g := serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 64,
		OnRestart: func(dev int, incarnation uint64) {
			if dev == 1 {
				select {
				case detected <- incarnation:
				default:
				}
			}
		},
	})
	defer g.Close(30 * time.Second)
	// Health rides along to prove fenced responses never reach its ledger:
	// the failure-rate gate is live, and the latency gate is disabled because
	// the zombie's slow answers are the test's own injection.
	tr := g.AttachHealth(serve.HealthOptions{
		Tracker: health.Options{
			Window: 150 * time.Millisecond, MinSamples: 1,
			LatencyFactor: 1e9, FailureRate: 0.3, GrayWindows: 2,
			ReintegrateAfter: time.Hour,
		},
		ProbeEvery: -1,
	})
	g.AttachCluster(m)
	m.Start()

	// The restart as trace data: the replacement starts, the address flips,
	// and the heartbeat path is forced off the zombie's connection.
	var srv1b *rpcx.Server
	orch := scenario.NewOrchestrator([]scenario.Target{{
		Restart: func() {
			var addr1b string
			srv1b, addr1b = chaosDaemon(t, snet, "127.0.0.1:0")
			srv1b.SetIncarnation(inc2)
			target.Store(addr1b)
			restartedAt.Store(time.Now())
			hb1.ForceRedial()
		},
	}, {}})
	player := scenario.NewPlayer(orch, &scenario.Trace{
		Name: "daemon-restart", Seed: 401,
		Events: []scenario.Event{{At: restartAt, Kind: scenario.EvRestart, Device: 0}},
	})
	defer func() {
		if srv1b != nil {
			srv1b.Close()
		}
	}()

	// Phase 1 — baseline: both devices serve, the scheduler adopts inc1.
	for i := 0; i < 3; i++ {
		if _, err := g.Submit(chaosInput(int64(i)), chaosLatSLO(sloMs)); err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
	}
	if got := sched.DeviceIncarnation(1); got != inc1 {
		t.Fatalf("scheduler adopted incarnation %#x, want %#x", got, inc1)
	}
	// The detector must know the zombie's identity before the restart, or the
	// new incarnation would look like a first acquaintance, not a change.
	chaosWaitFor(t, "detector learned the baseline incarnation",
		func() bool { return m.IncarnationOf(0) == inc1 })

	// Phase 2 — wedge a batch on the zombie, then restart under it. The
	// slowdown keeps the zombie's in-flight answer on the wire long past
	// detection, so it must come back under the old incarnation after the
	// fence is up.
	inj1.SetSlowdown(1000)
	var wg sync.WaitGroup
	var success, failed atomic.Uint64
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := g.Submit(chaosInput(int64(100*c+i)), chaosLatSLO(sloMs)); err != nil {
					// A restart mid-batch may fail a request through the
					// ordinary Failed path; the ledger check below proves
					// nothing vanished either way.
					failed.Add(1)
				} else {
					success.Add(1)
				}
			}
		}(c)
	}
	chaosWaitFor(t, "a batch in flight on the zombie",
		func() bool { return zombieBusy.Load() >= 1 })
	if n, err := player.Advance(restartAt); err != nil || n != 1 {
		t.Fatalf("restart event: applied %d, err=%v; want 1, nil", n, err)
	}

	// Detection: the incarnation change must surface as a restart event
	// within a few heartbeat periods — no Down dwell, no suspect window.
	var gotInc uint64
	select {
	case gotInc = <-detected:
	case <-time.After(10 * time.Second):
		t.Fatal("restart never detected")
	}
	latency := time.Since(restartedAt.Load().(time.Time))
	if gotInc != inc2 {
		t.Fatalf("restart detected with incarnation %#x, want %#x", gotInc, inc2)
	}
	if latency > 40*heartbeat {
		t.Fatalf("restart detected after %v, want within a few heartbeat periods (%v)", latency, heartbeat)
	}
	t.Logf("restart detected in %v (%.1f heartbeats)", latency, float64(latency)/float64(heartbeat))

	// Fencing: the wedged zombie answer (and any sibling still in flight)
	// must be dropped and counted, never delivered.
	chaosWaitFor(t, "a fenced zombie response",
		func() bool { return sched.Stats().FencedResponses >= 1 })
	wg.Wait()

	// Phase 3 — the replacement serves: new traffic lands on incarnation 2.
	for i := 0; i < 5; i++ {
		if _, err := g.Submit(chaosInput(int64(500+i)), chaosLatSLO(sloMs)); err != nil {
			t.Fatalf("post-restart request %d: %v", i, err)
		}
	}
	if got := sched.DeviceIncarnation(1); got != inc2 {
		t.Fatalf("scheduler still expects incarnation %#x after restart, want %#x", got, inc2)
	}

	g.Close(30 * time.Second)
	st := g.Stats()
	t.Logf("restart chaos: success=%d failed=%d stats=%+v detector=%+v",
		success.Load(), failed.Load(), st, m.CountersSnapshot())

	if st.Restarts < 1 {
		t.Fatalf("gateway restart counter %d, want >= 1", st.Restarts)
	}
	if st.FencedResponses < 1 {
		t.Fatalf("fenced responses %d, want >= 1", st.FencedResponses)
	}
	// Restart is not death: the detector never saw a Down, and the member is
	// Up under the new incarnation.
	if c := m.CountersSnapshot(); c.Downs != 0 || c.Restarts < 1 {
		t.Fatalf("detector counters %+v: want zero Downs and >= 1 restart", c)
	}
	if m.StateOf(0) != cluster.Up {
		t.Fatalf("member 0 is %v after restart, want Up", m.StateOf(0))
	}
	if got := m.IncarnationOf(0); got != inc2 {
		t.Fatalf("detector tracks incarnation %#x, want %#x", got, inc2)
	}
	// Fenced responses are a dead process's answers: they must never have fed
	// the health ledger as device failures (device 0 stays Active) and never
	// count as asymmetric-partition evidence.
	if s := tr.StateOf(0); s != health.Active {
		t.Fatalf("device 0 health state %v after fenced responses, want Active", s)
	}
	if st.AsymmetricQuarantines != 0 {
		t.Fatalf("restart chaos charged %d asymmetric quarantines", st.AsymmetricQuarantines)
	}
	// The ledger stays exact through fencing and retries: every admitted
	// request got exactly one outcome.
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	if uint64(st.Failed) != failed.Load() {
		t.Fatalf("gateway Failed=%d but clients saw %d failures", st.Failed, failed.Load())
	}
	if success.Load() == 0 {
		t.Fatal("no concurrent request succeeded — restart chaos vacuous")
	}
}

// TestChaosAsymmetricPartition wedges one direction of device 0's link for
// large frames only: heartbeats, pings, and hello frames keep flowing, so
// the liveness detector stays Up, while tensor responses stall. The progress
// watchdog must fail the wedged calls in bounded time with a typed stall,
// the health layer must classify the repeated stalls as link-gray and
// quarantine the path (attributed as an asymmetric quarantine, not a device
// fault), and post-quarantine traffic must serve on the healthy device.
func TestChaosAsymmetricPartition(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		sloMs   = 30000
		stallMs = 120000 // window far outlives the test; cleared at the end
	)
	a := supernet.TinyArch(4)
	a.Resolutions = append(a.Resolutions, 224) // admit the large rung below
	snet := supernet.New(a, 402)

	// Serving at 224x224 pushes tile responses past rpcx's large-frame
	// threshold (64 KiB), where the response header is flushed ahead of the
	// payload: the client sees the transfer start and then stop — the
	// observable mid-flight stall the progress watchdog exists for. (A
	// response wedged before its first byte is indistinguishable from slow
	// compute and is bounded by the call deadline instead.)
	spread := liveSpreadDecider(a)
	bigDecider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		d, err := spread(c)
		if err == nil {
			d.Config.Resolution = 224
		}
		return d, err
	})

	// Device 0's server wraps every accepted connection in the Downstream
	// direction of a shared shaper: when the trace opens the stall window,
	// its large response frames (tensors) wedge while small ones pass.
	sh := netem.NewShaper(0, 0)
	srv1 := rpcx.NewServer()
	runtime.NewExecutor(snet).Register(srv1)
	monitor.RegisterHandlers(srv1)
	cluster.NewNode().Register(srv1)
	srv1.WrapConn = func(c net.Conn) net.Conn { return netem.NewConnDir(c, sh, netem.Downstream) }
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv1.Close()
	defer sh.SetStallLarge(netem.Downstream, 0, 0) // release any wedged writer

	srv2, addr2 := chaosDaemon(t, snet, "127.0.0.1:0")
	defer srv2.Close()

	data1, data2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()
	// In-flight progress deadline: a response that stops advancing fails in
	// ~2 ticks instead of riding out the call timeout.
	data1.SetProgressPolicy(rpcx.ProgressPolicy{Tick: 30 * time.Millisecond, MinBytes: 1})

	sched := runtime.NewScheduler(snet, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 2 * time.Second
	rt := runtime.New(sched, bigDecider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(chaosLatSLO(sloMs))

	hb1, hb2 := chaosDial(t, addr1, nil), chaosDial(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      80 * time.Millisecond,
			DownAfter:         300 * time.Millisecond,
		})
	defer m.Close()

	var deviceErrors atomic.Uint64
	g := serve.New(rt, serve.Options{
		Workers: 1, MaxBatch: 2, MaxLinger: time.Millisecond, QueueDepth: 64,
		OnDeviceError: func(dev int, err error) { deviceErrors.Add(1) },
	})
	defer g.Close(30 * time.Second)
	tr := g.AttachHealth(serve.HealthOptions{
		Tracker: health.Options{
			Window: 150 * time.Millisecond, MinSamples: 1,
			LatencyFactor: 1e9, FailureRate: 0.3, GrayWindows: 1,
			ReintegrateAfter: time.Hour,
		},
		ProbeEvery: -1, // probes through the wedged link would just stall too
	})
	g.AttachCluster(m)
	m.Start()

	orch := scenario.NewOrchestrator([]scenario.Target{{Shaper: sh}, {}})
	player := scenario.NewPlayer(orch, &scenario.Trace{
		Name: "asym-partition", Seed: 402,
		Events: []scenario.Event{
			// Seed is the stall threshold: 512 bytes wedges every tensor
			// frame while ping/hello/heartbeat frames (tens of bytes) pass.
			{At: 10 * time.Millisecond, Kind: scenario.EvAsymDegrade, Device: 0, Value: stallMs, Seed: 512},
		},
	})

	// Phase 1 — baseline: both devices serve through the (closed) stall window.
	for i := 0; i < 4; i++ {
		if _, err := g.Submit(chaosInput(int64(i)), chaosLatSLO(sloMs)); err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
	}

	// Phase 2 — open the one-direction stall and keep submitting until the
	// stall evidence quarantines the link. Requests in this window may fail
	// (the retry may land on the wedged device again); the ledger check below
	// proves none vanish.
	if n, err := player.Finish(); err != nil || n != 1 {
		t.Fatalf("asym-degrade event: applied %d, err=%v; want 1, nil", n, err)
	}
	if !sh.StallActive(netem.Downstream) {
		t.Fatal("stall window did not open")
	}
	stallStart := time.Now()
	var windowReqs, windowFailed int
	for i := 0; i < 80 && tr.StateOf(0) != health.Quarantined; i++ {
		windowReqs++
		if _, err := g.Submit(chaosInput(int64(100+i)), chaosLatSLO(sloMs)); err != nil {
			windowFailed++
		}
		if time.Since(stallStart) > 60*time.Second {
			break
		}
	}
	chaosWaitFor(t, "device 0 quarantined by stall evidence",
		func() bool { return tr.StateOf(0) == health.Quarantined })
	t.Logf("quarantined after %v (%d requests, %d failed in the learning window)",
		time.Since(stallStart), windowReqs, windowFailed)

	// Phase 3 — post-quarantine: placement excludes the wedged link, so
	// attainment recovers on the healthy device.
	const postReqs = 20
	postServed := 0
	for i := 0; i < postReqs; i++ {
		if _, err := g.Submit(chaosInput(int64(300+i)), chaosLatSLO(sloMs)); err == nil {
			postServed++
		}
	}
	if postServed < postReqs*9/10 {
		t.Fatalf("post-quarantine attainment %d/%d, want >= 90%%", postServed, postReqs)
	}

	g.Close(30 * time.Second)
	st := g.Stats()
	t.Logf("asym chaos: stats=%+v detector=%+v", st, m.CountersSnapshot())

	// The watchdog saw the wedge: typed stalls, counted end to end.
	if st.StalledCalls < 1 {
		t.Fatalf("stalled calls %d, want >= 1", st.StalledCalls)
	}
	// The quarantine is attributed to the asymmetric signature.
	if st.AsymmetricQuarantines < 1 {
		t.Fatalf("asymmetric quarantines %d, want >= 1", st.AsymmetricQuarantines)
	}
	// A stalled link is link-gray, never a device fault: no demotion through
	// the DeviceError path, and the liveness detector stayed Up throughout —
	// the whole point of an asymmetric fault is that heartbeats cannot see it.
	if deviceErrors.Load() != 0 {
		t.Fatalf("stalls were misclassified as %d device faults", deviceErrors.Load())
	}
	if c := m.CountersSnapshot(); c.Downs != 0 {
		t.Fatalf("detector counters %+v: a stall-only fault must not look like death", c)
	}
	if m.StateOf(0) != cluster.Up {
		t.Fatalf("member 0 is %v under an asymmetric stall, want Up", m.StateOf(0))
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
}
