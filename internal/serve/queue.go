package serve

import (
	"sync"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/health"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
	"murmuration/internal/watchdog"
)

// request is one queued inference.
type request struct {
	x        *tensor.Tensor
	slo      runtime.SLO
	class    Class
	key      string    // strategy key at admission; batch-compatibility group
	deadline time.Time // zero for non-latency classes
	enqueued time.Time
	done     chan Outcome // buffered(1); exactly one Outcome is ever sent
	// sent guards the done channel (under Gateway.mu): delivery must be
	// idempotent so a panic recovered mid-delivery cannot double-send into
	// the buffered(1) channel and wedge a worker.
	sent bool
}

// expired reports whether the request's deadline has passed.
func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && now.After(r.deadline)
}

// Gateway is the serving front-end: bounded per-class queues, deadline-aware
// admission, a batching worker pool, and counters. Create with New; stop
// with Close.
type Gateway struct {
	rt   *runtime.Runtime
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond
	queues  [numClasses][]*request
	closing bool

	// emaBatchSec is a per-class exponential moving average of
	// batched-inference duration, feeding the admission-time queue-wait
	// estimate. Per-class because strategy cost differs sharply between
	// classes (a latency batch is typically much cheaper than an accuracy
	// one) and a shared estimate lets one class poison another's admission.
	emaBatchSec [numClasses]float64

	// ladder is the degradation ladder workers consult when a batch's
	// remaining deadline budget is below the strategy's observed cost.
	ladder *runtime.Ladder

	// cluster is the attached failure detector, nil until AttachCluster.
	// Guarded by mu; the Manager itself is internally synchronized.
	cluster *cluster.Manager

	// brownout marks the watchdog's resource-pressure signal: while set,
	// admission tightens (best-effort shed, queue depth halved) and the
	// ladder floor is raised to BrownoutRung. wd is the attached watchdog
	// (nil until AttachWatchdog), source of the resource gauges in Stats.
	brownout bool
	wd       *watchdog.Watchdog

	// tap receives outcome events for the adaptation loop (nil until
	// SetOutcomeTap); adapter is the adaptation controller whose counters are
	// folded into Stats (nil until AttachAdapter). Both guarded by mu.
	tap     OutcomeTap
	adapter AdaptSource

	// health is the gray-failure tracker; damper is the flap damper fed by
	// cluster transitions. Both are nil until AttachHealth (see health.go).
	// suppressHeld[i] marks a device whose reinstatement the damper refused;
	// the health tick loop reinstates it once the penalty decays. All
	// guarded by mu; healthStop/healthDone bound the tick-loop goroutine.
	health       *health.Tracker
	damper       *health.Damper
	suppressHeld []bool
	healthStop   chan struct{}
	healthDone   chan struct{}
	// stallEvidence[i] counts rpcx.ErrStalled observations for device i+1
	// since its last quarantine — the attribution trail that marks a
	// quarantine as asymmetric (link-gray) rather than compute-gray. Guarded
	// by mu; sized by AttachHealth.
	stallEvidence []uint64

	// Storm-control state (storm.go). downTimes is the correlated-loss
	// detector's sliding window of recent Down transitions; stormTight marks
	// the pre-emptive admission tighten it raised, cleared by stormClear
	// after the hold. staggerTimers are pending deferred reinstatements from
	// a mass recovery. All guarded by mu. rewarmSem caps concurrent async
	// rewarms (capacity RewarmConcurrency); rewarmWG drains them at Close.
	downTimes     []time.Time
	stormTight    bool
	stormClear    *time.Timer
	staggerTimers []*time.Timer
	rewarmSem     chan struct{}
	rewarmWG      sync.WaitGroup

	stats Stats

	workers sync.WaitGroup
}

// New creates a gateway over a runtime and starts its worker pool.
func New(rt *runtime.Runtime, opts Options) *Gateway {
	g := &Gateway{rt: rt, opts: opts.withDefaults()}
	g.ladder = runtime.NewLadder(g.opts.MaxRung, g.opts.LadderHysteresis)
	g.rewarmSem = make(chan struct{}, g.opts.RewarmConcurrency)
	g.cond = sync.NewCond(&g.mu)
	for i := 0; i < g.opts.Workers; i++ {
		g.workers.Add(1)
		go func() {
			defer g.workers.Done()
			g.worker()
		}()
	}
	return g
}

// admit applies admission control: shed when closing, when the class queue
// is at depth, or when a latency-SLO request cannot plausibly make its
// deadline given the queue ahead of it.
func (g *Gateway) admit(req *request) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	// A shed is still a demand signal: the tap sees it so the adaptation loop
	// keeps observing the live constraint cells even when admission collapses
	// and the decide path starves.
	shed := func() {
		g.offerLocked(OutcomeEvent{Kind: KindShed, Class: req.class, SLO: req.slo})
	}
	if g.closing {
		g.stats.Shed++
		shed()
		return ErrShuttingDown
	}
	q := req.class
	depth := g.opts.QueueDepth
	if g.brownout {
		// Brownout admission: best-effort traffic is refused outright and
		// every queue runs at half depth — the fastest way to shrink the
		// goroutine and heap footprint is to hold less work.
		if q == ClassBestEffort {
			g.stats.Shed++
			g.stats.Overloads++
			shed()
			return ErrOverloaded
		}
		if depth /= 2; depth < 1 {
			depth = 1
		}
	}
	if len(g.queues[q]) >= depth {
		g.stats.Shed++
		shed()
		return ErrQueueFull
	}
	if q == ClassLatency && g.emaBatchSec[q] > 0 {
		// Queue-wait estimate: batches ahead of us in our class, divided
		// over the worker pool, plus our own batch's execution. The
		// execution component is the cheaper of the class EMA and the
		// ladder's deepest-rung estimate — under deadline pressure workers
		// degrade rather than drop, so admission must not shed a request
		// that a degraded rung could still serve in time.
		batchesAhead := (len(g.queues[q]) + g.opts.MaxBatch - 1) / g.opts.MaxBatch
		wait := time.Duration(float64(batchesAhead) / float64(g.opts.Workers) *
			g.emaBatchSec[q] * float64(time.Second))
		exec := time.Duration(g.emaBatchSec[q] * float64(time.Second))
		if e := g.ladder.MinEstimate(); e > 0 && e < exec {
			exec = e
		}
		if time.Now().Add(wait + exec).After(req.deadline) {
			g.stats.Shed++
			shed()
			return ErrDeadlineUnattainable
		}
	}
	g.stats.Admitted++
	g.queues[q] = append(g.queues[q], req)
	// Broadcast, not Signal: a lingering worker could otherwise swallow the
	// wakeup meant for an idle one and strand an incompatible request.
	g.cond.Broadcast()
	return nil
}

// popHead removes and returns the first live request from the highest-
// priority non-empty queue, failing expired ones on the way. Returns nil
// when every queue is empty. Caller holds g.mu.
func (g *Gateway) popHead(now time.Time) *request {
	for c := Class(0); c < numClasses; c++ {
		for len(g.queues[c]) > 0 {
			req := g.queues[c][0]
			g.queues[c] = g.queues[c][1:]
			if req.expired(now) {
				g.failLocked(req, ErrDeadlineMissed)
				continue
			}
			return req
		}
	}
	return nil
}

// collectCompatible removes up to max additional requests with the head's
// class and strategy key, preserving queue order of the rest. Expired
// requests encountered during the scan are failed. Caller holds g.mu.
func (g *Gateway) collectCompatible(head *request, max int, now time.Time) []*request {
	if max <= 0 {
		return nil
	}
	q := head.class
	var batch []*request
	kept := g.queues[q][:0]
	for _, req := range g.queues[q] {
		switch {
		case len(batch) < max && req.key == head.key:
			if req.expired(now) {
				g.failLocked(req, ErrDeadlineMissed)
				continue
			}
			batch = append(batch, req)
		default:
			kept = append(kept, req)
		}
	}
	// Zero the tail so dropped slots don't pin requests.
	for i := len(kept); i < len(g.queues[q]); i++ {
		g.queues[q][i] = nil
	}
	g.queues[q] = kept
	return batch
}

// failLocked delivers an error outcome for an admitted request that will
// not execute and updates the drop counters. Caller holds g.mu. A request
// that already received its outcome is left alone (idempotent delivery).
func (g *Gateway) failLocked(req *request, err error) {
	if req.sent {
		return
	}
	req.sent = true
	g.stats.Dropped++
	g.stats.ClassMissed[req.class]++
	if req.class == ClassLatency {
		g.stats.DeadlineMissed++
	}
	g.offerLocked(OutcomeEvent{Kind: KindDropped, Class: req.class, SLO: req.slo})
	req.done <- Outcome{Err: err}
}

// deliver sends a request's outcome exactly once; it reports false when the
// request already received one. The buffered(1) done channel never blocks a
// first send.
func (g *Gateway) deliver(req *request, out Outcome) bool {
	g.mu.Lock()
	if req.sent {
		g.mu.Unlock()
		return false
	}
	req.sent = true
	g.mu.Unlock()
	req.done <- out
	return true
}

// Ladder exposes the gateway's degradation ladder for observation (current
// rung, degradation/promotion counters).
func (g *Gateway) Ladder() *runtime.Ladder { return g.ladder }

// SetBrownout raises or clears the gateway's brownout: on entry the ladder
// floor rises by BrownoutRung (every batch at least one rung degraded) and
// admission tightens; on exit the floor drops back and the ladder climbs
// home through its normal hysteresis. The floor composes with the
// correlated-loss tighten (storm.go) via applyFloor, so clearing one signal
// never erases the other. Idempotent per edge. Wired to the watchdog's
// OnBrownout/OnClear callbacks by the daemons.
func (g *Gateway) SetBrownout(on bool) {
	g.mu.Lock()
	changed := g.brownout != on
	g.brownout = on
	if changed && on {
		g.stats.Brownouts++
	}
	g.mu.Unlock()
	if changed {
		g.applyFloor()
	}
}

// Brownout reports whether the gateway is currently in brownout.
func (g *Gateway) Brownout() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.brownout
}

// AttachWatchdog records the resource watchdog whose gauges ride Stats. The
// caller remains responsible for the watchdog's lifecycle (Start/Close) and
// for wiring its callbacks to SetBrownout.
func (g *Gateway) AttachWatchdog(w *watchdog.Watchdog) {
	g.mu.Lock()
	g.wd = w
	g.mu.Unlock()
}

// ResetWaitEstimates clears the per-class queue-wait EMAs. The cluster glue
// calls it when a device is demoted or reinstated: batch cost just changed
// regime (a placement lost or regained a device), so an estimate learned in
// the old regime would mis-admit until it lazily decayed. The next batch of
// each class re-seeds its estimate from a fresh measurement.
func (g *Gateway) ResetWaitEstimates() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for c := range g.emaBatchSec {
		g.emaBatchSec[c] = 0
	}
}

// Stats returns a snapshot of the gateway's counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	ss := g.rt.Scheduler.Stats()
	s.Hedges, s.HedgeWins = ss.Hedges, ss.HedgeWins
	s.CorruptFrames, s.Redials = ss.CorruptFrames, ss.Redials
	s.RemotePanics = ss.Panics
	s.LimiterCuts, s.LimiterLimit = ss.LimiterCuts, ss.LimiterLimit
	s.FencedResponses, s.StalledCalls = ss.FencedResponses, ss.StalledCalls
	s.RetryBudgetExhausted = ss.RetryBudgetExhausted
	s.ResolveCoalesced = g.rt.ResolveCoalesced()
	if g.brownout {
		s.BrownoutActive = 1
	}
	if g.wd != nil {
		s.Goroutines = uint64(g.wd.Goroutines())
		s.HeapBytes = g.wd.HeapBytes()
	}
	if g.adapter != nil {
		as := g.adapter.AdaptStats()
		s.PolicyVersion = as.PolicyVersion
		s.ShadowScored = as.ShadowScored
		s.Promotions = as.Promotions
		s.Rollbacks = as.Rollbacks
	}
	if g.health != nil {
		hc := g.health.Counters()
		s.GraySuspects = hc.GraySuspects
		s.Probations = hc.Probations
		s.Quarantines = hc.Quarantines
		s.Reintegrations = hc.Reintegrations
	}
	if g.damper != nil {
		s.FlapSuppressed = g.damper.Suppressions()
	}
	for c := Class(0); c < numClasses; c++ {
		s.QueueDepth[c] = len(g.queues[c])
	}
	if g.rt.Cache != nil {
		s.Cache = g.rt.Cache.Stats()
		s.InvalidationEpochs = s.Cache.InvalidationEpochs
	}
	if g.cluster != nil {
		up, suspect, down := g.cluster.Counts()
		s.ClusterUp, s.ClusterSuspect, s.ClusterDown = uint64(up), uint64(suspect), uint64(down)
	} else {
		// No detector attached: derive a coarse view from the runtime's
		// device-health mask (data-path failures still demote devices).
		for _, h := range g.rt.HealthyDevices() {
			if h {
				s.ClusterUp++
			} else {
				s.ClusterDown++
			}
		}
	}
	return s
}

// Close drains the gateway: admission stops immediately, queued requests
// keep executing for up to grace, and whatever is still queued after that
// is failed with ErrShuttingDown. Close returns once every worker exited,
// except that a worker wedged inside a batch execution (e.g. a remote call
// with no deadline) is abandoned after a second grace window rather than
// hanging shutdown forever.
func (g *Gateway) Close(grace time.Duration) {
	g.mu.Lock()
	g.closing = true
	hstop, hdone := g.healthStop, g.healthDone
	g.healthStop = nil
	sc := g.stormClear
	staggers := g.staggerTimers
	g.staggerTimers = nil
	g.cond.Broadcast()
	g.mu.Unlock()
	// Storm-control teardown: cancel pending deferred reinstatements and the
	// tighten-release timer (their callbacks also no-op on closing), then
	// drain in-flight async rewarms — closing was set under mu first, so no
	// new rewarm can Add after this Wait starts.
	if sc != nil {
		sc.Stop()
	}
	for _, t := range staggers {
		t.Stop()
	}
	g.rewarmWG.Wait()
	if hstop != nil {
		close(hstop)
		// The tick loop exits promptly; a probe in flight is bounded by its
		// own ProbeTimeout.
		<-hdone
	}

	done := make(chan struct{})
	go func() {
		g.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return
	case <-time.After(grace):
	}
	// Grace expired: abandon what is still queued so workers can exit.
	g.mu.Lock()
	for c := Class(0); c < numClasses; c++ {
		for _, req := range g.queues[c] {
			g.failLocked(req, ErrShuttingDown)
		}
		g.queues[c] = nil
	}
	g.cond.Broadcast()
	g.mu.Unlock()
	// Workers with an empty queue exit on the broadcast; one stuck mid-
	// execution can only be abandoned — its outcome sends are buffered, so
	// it cannot block on delivery if it ever returns.
	select {
	case <-done:
	case <-time.After(grace + 100*time.Millisecond):
	}
}
