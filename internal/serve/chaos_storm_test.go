// Chaos tests for the correlated-failure immunity plane: a mass device loss
// and a recovery storm, both scripted as scenario traces whose mass events
// flow through the cluster manager's batched transitions. External test
// package for the same reason as chaos_scenario_test.go.
package serve_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/limit"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// concurrencyDecider wraps a decider and records, per constraint key, the
// maximum number of concurrently executing decide calls. The resolution
// singleflight makes ==1 an invariant: however many workers miss on the same
// key at once, exactly one decider call runs for it.
type concurrencyDecider struct {
	inner runtime.DeciderFunc
	hold  time.Duration

	mu    sync.Mutex
	cur   map[string]int
	max   int
	calls uint64
}

func (d *concurrencyDecider) decide(c env.Constraint) (*env.Decision, error) {
	key := fmt.Sprintf("%v", c)
	d.mu.Lock()
	if d.cur == nil {
		d.cur = make(map[string]int)
	}
	d.cur[key]++
	if d.cur[key] > d.max {
		d.max = d.cur[key]
	}
	d.calls++
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.cur[key]--
		d.mu.Unlock()
	}()
	// Widen the window in which a second miss on the same key would overlap:
	// without singleflight this test's burst phase would push max past 1.
	time.Sleep(d.hold)
	return d.inner(c)
}

func (d *concurrencyDecider) maxPerKey() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.max
}

// TestChaosMassDeviceLoss kills half the fleet in one scripted tick (one
// EvMassKill → one MarkDownBatch → one batched reconfiguration) and asserts
// the storm-control contract:
//
//   - the correlated-loss detector fires and tightens admission one rung;
//   - speculative attempts (rpcx retries, failovers, hedges) stay inside the
//     shared retry budget — the combined retry rate is bounded no matter how
//     many mechanisms want to re-drive work;
//   - concurrent strategy-cache misses for one key collapse into a single
//     decider call (ResolveCoalesced > 0, per-key decide concurrency == 1);
//   - survivors keep serving: >= 90% of post-kill requests complete, nothing
//     lands in Failed, and the admission ledger stays exact.
func TestChaosMassDeviceLoss(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		numDevices   = 4
		sloMs        = 30000
		killAt       = 10 * time.Millisecond
		inFlightReqs = 12
		survivorReqs = 20
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 310)
	start := time.Now()

	srvs := make([]*rpcx.Server, numDevices)
	addrs := make([]string, numDevices)
	for i := range srvs {
		srvs[i], addrs[i] = chaosDaemon(t, net, "127.0.0.1:0")
	}
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()

	clients := make([]*rpcx.Client, numDevices)
	for i := range clients {
		clients[i] = chaosDial(t, addrs[i], nil)
		defer clients[i].Close()
	}

	sched := runtime.NewScheduler(net, clients)
	sched.RemoteTimeout = 10 * time.Second
	budget := limit.NewBudget(limit.BudgetOptions{Ratio: 0.1, Burst: 4})
	sched.SetRetryBudget(budget)

	dec := &concurrencyDecider{inner: liveSpreadDecider(a), hold: 20 * time.Millisecond}
	rt := runtime.New(sched, runtime.DeciderFunc(dec.decide), runtime.NewStrategyCache(64, 25, 5, 10), nil)
	for i := 0; i < numDevices; i++ {
		rt.SetLinkState(i, 100, 5)
	}
	rt.SetSLO(chaosLatSLO(sloMs))

	hbs := make([]cluster.ProbeFunc, numDevices)
	for i := range hbs {
		hb := chaosDial(t, addrs[i], nil)
		defer hb.Close()
		hbs[i] = cluster.PingProbe(hb)
	}
	m := cluster.NewManager(hbs, cluster.Options{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      50 * time.Millisecond,
		DownAfter:         120 * time.Millisecond,
	})
	defer m.Close()

	// MaxBatch 1 + several workers: a burst of same-SLO requests becomes
	// parallel single-request batches, each resolving independently — the
	// exact shape that stampedes a decider without singleflight.
	g := serve.New(rt, serve.Options{
		Workers: 4, MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 64,
		CorrelatedLossK:      2,
		CorrelatedLossWindow: 2 * time.Second,
		CorrelatedLossHold:   30 * time.Second, // hold the tighten for the whole test
	})
	defer g.Close(30 * time.Second)
	g.AttachCluster(m)
	m.Start()

	// The fault timeline as data: one mass-kill event removing devices 0..1.
	orch := scenario.NewOrchestrator([]scenario.Target{
		{Leave: func() { srvs[0].Close() }},
		{Leave: func() { srvs[1].Close() }},
		{},
		{},
	})
	orch.AttachCluster(m)
	player := scenario.NewPlayer(orch, &scenario.Trace{
		Name:   "mass-kill",
		Seed:   310,
		Events: []scenario.Event{{At: killAt, Kind: scenario.EvMassKill, Value: 0.5}},
	})

	// Phase 1 — baseline: traffic flows over the full fleet.
	for i := 0; i < 4; i++ {
		if _, err := g.Submit(chaosInput(int64(i)), chaosLatSLO(sloMs)); err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
	}

	// Phase 2 — the kill lands under load: launch concurrent requests, then
	// advance the trace while they are in flight, so calls caught on dying
	// devices exercise the failover-and-retry path the budget must bound.
	var started, success, shed, missed, otherErr atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < inFlightReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Add(1)
			_, err := g.Submit(chaosInput(int64(100+i)), chaosLatSLO(sloMs))
			switch {
			case err == nil:
				success.Add(1)
			case serve.IsShed(err):
				shed.Add(1)
			case serve.IsDeadlineMissed(err), serve.IsBudgetExhausted(err):
				missed.Add(1)
			default:
				otherErr.Add(1)
				t.Errorf("in-flight request %d: unexpected error class: %v", i, err)
			}
		}(i)
	}
	for started.Load() < inFlightReqs/2 {
		time.Sleep(time.Millisecond)
	}
	if n, err := player.Advance(killAt); err != nil || n != 1 {
		t.Fatalf("mass kill applied %d events, err=%v; want 1, nil", n, err)
	}
	wg.Wait()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}
	waitFor("both victims Down", func() bool {
		return m.StateOf(0) == cluster.Down && m.StateOf(1) == cluster.Down
	})

	// One batched loss of 2 devices inside a 2s window with K=2: the detector
	// must have fired once and pre-tightened admission by one rung.
	waitFor("correlated-loss event recorded", func() bool {
		return g.Stats().CorrelatedLossEvents >= 1
	})
	if r := g.Ladder().Rung(); r < 1 {
		t.Fatalf("ladder rung %d after a correlated loss, want >= 1 (storm floor)", r)
	}

	// Phase 3 — resolution stampede: bursts of concurrent requests under a
	// fresh SLO value miss the cache on the same new key at once. The
	// singleflight must collapse them; retry until coalescing is observed
	// (each round uses a distinct key so earlier rounds cannot warm it).
	for round := 0; g.Stats().ResolveCoalesced == 0 && round < 5; round++ {
		slo := chaosLatSLO(sloMs - 1000 - float64(round))
		var bwg sync.WaitGroup
		for i := 0; i < 8; i++ {
			bwg.Add(1)
			go func(i int) {
				defer bwg.Done()
				if _, err := g.Submit(chaosInput(int64(200+i)), slo); err != nil &&
					!serve.IsShed(err) && !serve.IsDeadlineMissed(err) && !serve.IsBudgetExhausted(err) {
					t.Errorf("burst request %d: unexpected error class: %v", i, err)
				}
			}(i)
		}
		bwg.Wait()
	}

	// Phase 4 — survivor attainment: sequential requests after the fleet
	// halved must overwhelmingly serve (degraded is fine; Failed is not).
	survived := 0
	for i := 0; i < survivorReqs; i++ {
		if _, err := g.Submit(chaosInput(int64(300+i)), chaosLatSLO(sloMs)); err == nil {
			survived++
		} else if !serve.IsShed(err) && !serve.IsDeadlineMissed(err) && !serve.IsBudgetExhausted(err) {
			t.Fatalf("survivor request %d: unexpected error class: %v", i, err)
		}
	}
	if survived < survivorReqs*9/10 {
		t.Fatalf("survivors served %d/%d, want >= 90%%", survived, survivorReqs)
	}

	st := g.Stats()
	snap := budget.Snapshot()
	t.Logf("mass loss: in-flight success=%d shed=%d missed=%d; budget=%+v; stats=%+v",
		success.Load(), shed.Load(), missed.Load(), snap, st)

	if otherErr.Load() != 0 {
		t.Fatalf("%d requests failed with unexpected errors", otherErr.Load())
	}
	// The shared budget's hard bound: every speculative attempt withdrew a
	// whole token, financed only by the Ratio-per-primary deposits, the
	// starting Burst, and the MinRate trickle over the test's lifetime.
	elapsed := time.Since(start).Seconds()
	if maxW := 0.1*float64(snap.Deposits) + 4 + elapsed + 1; float64(snap.Withdrawals) > maxW {
		t.Fatalf("budget failed to bound retries: %d withdrawals > %.1f allowed (%+v)",
			snap.Withdrawals, maxW, snap)
	}
	if st.RetryBudgetExhausted != snap.Exhausted {
		t.Fatalf("stats mirror RetryBudgetExhausted=%d, budget says %d", st.RetryBudgetExhausted, snap.Exhausted)
	}
	// Singleflight: concurrent misses coalesced, and at no point did two
	// decider calls run for one constraint key.
	if st.ResolveCoalesced == 0 {
		t.Fatal("no resolution was coalesced across 5 burst rounds")
	}
	if st.ResolveCoalesced != rt.ResolveCoalesced() {
		t.Fatalf("stats mirror ResolveCoalesced=%d, runtime says %d", st.ResolveCoalesced, rt.ResolveCoalesced())
	}
	if max := dec.maxPerKey(); max != 1 {
		t.Fatalf("decider ran %d concurrent resolutions for one key, want exactly 1", max)
	}
	// The mass kill epoch-bumped the cache (visible even though the lazy
	// sweep may never touch the stranded entries).
	if st.InvalidationEpochs == 0 {
		t.Fatal("mass kill did not bump the invalidation epoch")
	}
	// Ledger exactness under the storm: every admitted request has exactly
	// one outcome, and none of them is Failed.
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	if st.Failed != 0 {
		t.Fatalf("mass loss produced Failed=%d, want 0 (shed/degrade only)", st.Failed)
	}
}

// TestChaosRecoveryStorm kills 3 of 4 devices, then returns them all in one
// scripted tick (one EvMassRecover → one MarkUpBatch → one batched Up). The
// gateway must smooth the wave: the reinstatements beyond the first are
// staggered, the rewarm burst is concurrency-capped (rewarmAsync), and the
// fleet fully recovers — every device healthy, placements spread again, and
// post-recovery traffic serves without the limiter collapsing.
func TestChaosRecoveryStorm(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		numDevices = 4
		sloMs      = 30000
		killAt     = 10 * time.Millisecond
		recoverAt  = 20 * time.Millisecond
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 311)

	srvs := make([]*rpcx.Server, numDevices)
	addrs := make([]string, numDevices)
	for i := range srvs {
		srvs[i], addrs[i] = chaosDaemon(t, net, "127.0.0.1:0")
	}
	defer func() {
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}()

	clients := make([]*rpcx.Client, numDevices)
	for i := range clients {
		clients[i] = chaosDial(t, addrs[i], nil)
		defer clients[i].Close()
	}

	sched := runtime.NewScheduler(net, clients)
	sched.RemoteTimeout = 10 * time.Second
	sched.SetRetryBudget(limit.NewBudget(limit.BudgetOptions{Ratio: 0.2, Burst: 6}))

	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(64, 25, 5, 10), nil)
	for i := 0; i < numDevices; i++ {
		rt.SetLinkState(i, 100, 5)
	}
	rt.SetSLO(chaosLatSLO(sloMs))

	// A long heartbeat keeps the scripted MarkUpBatch ahead of any organic
	// heartbeat recovery, so the batch path (and its staggering) is what the
	// test exercises.
	hbs := make([]cluster.ProbeFunc, numDevices)
	for i := range hbs {
		hb := chaosDial(t, addrs[i], nil)
		defer hb.Close()
		hbs[i] = cluster.PingProbe(hb)
	}
	m := cluster.NewManager(hbs, cluster.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		SuspectAfter:      400 * time.Millisecond,
		DownAfter:         time.Second,
	})
	defer m.Close()

	g := serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32,
		CorrelatedLossK:      2,
		CorrelatedLossWindow: 2 * time.Second,
		CorrelatedLossHold:   500 * time.Millisecond,
		ReintegrationStagger: 100 * time.Millisecond,
		RewarmConcurrency:    2,
	})
	defer g.Close(30 * time.Second)
	g.AttachCluster(m)
	m.Start()

	// Kill devices 0..2 (0.75 of 4); recovery restarts each daemon on its
	// old address and MarkUpBatch returns all three in one batch.
	orch := scenario.NewOrchestrator([]scenario.Target{
		{Leave: func() { srvs[0].Close() }, Join: func() { srvs[0], _ = chaosDaemon(t, net, addrs[0]) }},
		{Leave: func() { srvs[1].Close() }, Join: func() { srvs[1], _ = chaosDaemon(t, net, addrs[1]) }},
		{Leave: func() { srvs[2].Close() }, Join: func() { srvs[2], _ = chaosDaemon(t, net, addrs[2]) }},
		{},
	})
	orch.AttachCluster(m)
	player := scenario.NewPlayer(orch, &scenario.Trace{
		Name: "recovery-storm",
		Seed: 311,
		Events: []scenario.Event{
			{At: killAt, Kind: scenario.EvMassKill, Value: 0.75},
			{At: recoverAt, Kind: scenario.EvMassRecover},
		},
	})

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	// Baseline, then the kill.
	for i := 0; i < 3; i++ {
		if _, err := g.Submit(chaosInput(int64(i)), chaosLatSLO(sloMs)); err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
	}
	if n, err := player.Advance(killAt); err != nil || n != 1 {
		t.Fatalf("mass kill applied %d events, err=%v; want 1, nil", n, err)
	}
	waitFor("victims Down", func() bool {
		return m.StateOf(0) == cluster.Down && m.StateOf(1) == cluster.Down && m.StateOf(2) == cluster.Down
	})
	// The lone survivor (plus local) keeps the service alive through the hole.
	for i := 0; i < 3; i++ {
		if _, err := g.Submit(chaosInput(int64(50+i)), chaosLatSLO(sloMs)); err != nil &&
			!serve.IsShed(err) && !serve.IsDeadlineMissed(err) && !serve.IsBudgetExhausted(err) {
			t.Fatalf("outage request %d: unexpected error class: %v", i, err)
		}
	}

	// The simultaneous return: one batch of 3 Up transitions. The first
	// device reinstates immediately; the other two are scheduled one stagger
	// period apart rather than slamming back at once.
	if n, err := player.Finish(); err != nil || n != 1 {
		t.Fatalf("mass recover applied %d events, err=%v; want 1, nil", n, err)
	}
	waitFor("staggered reintegrations scheduled", func() bool {
		return g.Stats().StaggeredReintegrations >= 2
	})

	// Full recovery: every device Up and placement-eligible again once the
	// stagger timers fire.
	waitFor("all devices healthy", func() bool {
		h := rt.HealthyDevices()
		for i := 0; i < numDevices; i++ {
			if !h[i] {
				return false
			}
		}
		return true
	})
	// A heartbeat client's first probe after the restart can fail once (the
	// old socket died) before its re-dial lands, dipping the member to
	// Suspect — poll rather than assert a snapshot.
	waitFor("every member Up on the detector", func() bool {
		for i := 0; i < numDevices; i++ {
			if m.StateOf(i) != cluster.Up {
				return false
			}
		}
		return true
	})

	// Post-recovery traffic must serve — the limiter and ladder survived the
	// wave — and placement must spread over recovered devices again.
	served := 0
	const postReqs = 20
	for i := 0; i < postReqs; i++ {
		if _, err := g.Submit(chaosInput(int64(100+i)), chaosLatSLO(sloMs)); err == nil {
			served++
		} else if !serve.IsShed(err) && !serve.IsDeadlineMissed(err) && !serve.IsBudgetExhausted(err) {
			t.Fatalf("post-recovery request %d: unexpected error class: %v", i, err)
		}
	}
	if served < postReqs*9/10 {
		t.Fatalf("post-recovery served %d/%d, want >= 90%%", served, postReqs)
	}
	res, err := rt.ResolveFor(rt.SLO())
	if err != nil {
		t.Fatal(err)
	}
	recoveredPlaced := false
	for _, layer := range res.Decision.Placement.Devices {
		for _, dev := range layer {
			if dev >= 1 && dev <= 3 {
				recoveredPlaced = true
			}
		}
	}
	if !recoveredPlaced {
		t.Fatalf("no recovered device back in the placement: %v", res.Decision.Placement.Devices)
	}

	st := g.Stats()
	t.Logf("recovery storm: stats=%+v", st)
	if st.CorrelatedLossEvents == 0 {
		t.Fatal("the 3-device kill did not register as a correlated loss")
	}
	if st.StaggeredReintegrations < 2 {
		t.Fatalf("StaggeredReintegrations=%d, want >= 2 (3 devices in one batch)", st.StaggeredReintegrations)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	if st.Failed != 0 {
		t.Fatalf("recovery storm produced Failed=%d, want 0", st.Failed)
	}
}
