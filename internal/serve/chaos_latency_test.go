package serve

import (
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// TestChaosLatencySpike drives the gateway through a scripted network
// latency spike (netem SetDelay raised mid-run, then cleared) and asserts
// the paper's "degrade, don't drop" contract end to end:
//
//   - during the spike, at least 90% of latency-SLO requests that rung 0
//     could no longer serve complete as Served-with-Degraded (the first
//     request or two are the learning cost — typed budget drops, never
//     Failed);
//   - hedged second attempts fire but never exceed the configured hedge
//     budget fraction of primary calls;
//   - deadline pressure is not device death: the failure detector keeps
//     both devices Up and no failover is attempted;
//   - once the spike clears, the hysteresis ladder climbs back to rung 0.
func TestChaosLatencySpike(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		sloMs        = 1500
		spikeDelay   = 600 * time.Millisecond
		calmDelay    = 2 * time.Millisecond
		baselineReqs = 5
		spikeReqs    = 30
	)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 303)

	startDaemon := func() (*rpcx.Server, string) {
		srv := rpcx.NewServer()
		runtime.NewExecutor(net).Register(srv)
		monitor.RegisterHandlers(srv)
		cluster.NewNode().Register(srv)
		got, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		return srv, got
	}
	srv1, addr1 := startDaemon()
	defer srv1.Close()
	srv2, addr2 := startDaemon()
	defer srv2.Close()

	// Data clients ride mutable shapers — SetDelay mid-run is the spike
	// lever. Retry + idempotent marking so budget-poisoned connections
	// re-dial instead of failing the next call.
	sh1 := netem.NewShaper(0, calmDelay)
	sh2 := netem.NewShaper(0, calmDelay)
	dialData := func(addr string, sh *netem.Shaper) *rpcx.Client {
		c, err := rpcx.Dial(addr, sh)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
		c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
		return c
	}
	data1, data2 := dialData(addr1, sh1), dialData(addr2, sh2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second
	sched.Hedge = &runtime.HedgePolicy{After: 40 * time.Millisecond, BudgetFrac: 0.2}

	// Deterministic decider: spread tiles round-robin over every device whose
	// link looks alive (same shape as the device-kill chaos test).
	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	})
	rt := runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(latSLO(sloMs))

	// Heartbeats ride dedicated UNSHAPED connections: a latency spike on the
	// data path must read as deadline pressure, never as device death.
	hbDial := func(addr string) *rpcx.Client {
		c, err := rpcx.Dial(addr, nil)
		if err != nil {
			t.Fatalf("dial hb %s: %v", addr, err)
		}
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
		c.MarkIdempotent(monitor.PingMethod)
		return c
	}
	hb1, hb2 := hbDial(addr1), hbDial(addr2)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := New(rt, Options{
		Workers: 1, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32,
		MaxRung: 3, LadderHysteresis: 4,
	})
	defer g.Close(5 * time.Second)
	g.AttachCluster(m)
	m.Start()

	// Phase 1 — calm baseline: everything serves at full quality, seeding the
	// rung-0 cost estimate and the batch EMA the spike will invalidate.
	for i := 0; i < baselineReqs; i++ {
		out, err := g.Submit(testInput(int64(i)), latSLO(sloMs))
		if err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
		if out.Rung != 0 {
			t.Fatalf("baseline request %d served at rung %d, want 0", i, out.Rung)
		}
	}

	// Phase 2 — spike: both data links jump to a delay that makes any remote
	// hop blow the SLO. The system must learn this (a drop or two) and then
	// keep serving degraded instead of dropping.
	sh1.SetDelay(spikeDelay)
	sh2.SetDelay(spikeDelay)
	served, servedDegraded := 0, 0
	for i := 0; i < spikeReqs; i++ {
		out, err := g.Submit(testInput(int64(100+i)), latSLO(sloMs))
		if err != nil {
			if !IsBudgetExhausted(err) && !IsDeadlineMissed(err) && !IsShed(err) {
				t.Fatalf("spike request %d: unexpected error class: %v", i, err)
			}
			continue
		}
		served++
		if out.Rung > 0 {
			servedDegraded++
		}
	}
	if served < spikeReqs*9/10 {
		t.Fatalf("spike window served %d/%d, want >= 90%%", served, spikeReqs)
	}
	if servedDegraded == 0 {
		t.Fatal("no spike-window request was served degraded")
	}
	if r := g.Ladder().Rung(); r == 0 {
		t.Fatal("ladder still at rung 0 at the end of the spike window")
	}

	// Phase 3 — recovery: the spike clears and the hysteresis ladder must
	// climb all the way back to full quality.
	sh1.SetDelay(calmDelay)
	sh2.SetDelay(calmDelay)
	recovered := false
	for i := 0; i < 60; i++ {
		if _, err := g.Submit(testInput(int64(200+i)), latSLO(sloMs)); err != nil &&
			!IsBudgetExhausted(err) && !IsDeadlineMissed(err) && !IsShed(err) {
			t.Fatalf("recovery request %d: unexpected error class: %v", i, err)
		}
		if g.Ladder().Rung() == 0 {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("ladder never climbed back to rung 0: %+v", g.Ladder().Counters())
	}
	out, err := g.Submit(testInput(999), latSLO(sloMs))
	if err != nil || out.Rung != 0 {
		t.Fatalf("post-recovery request: err=%v rung=%d, want full quality", err, out.Rung)
	}

	st := g.Stats()
	ss := sched.Stats()
	if st.Failed != 0 {
		t.Fatalf("latency spike produced Failed=%d, want 0 (typed drops only): %+v", st.Failed, st)
	}
	if st.Degraded == 0 || st.DegradedRungs < st.Degraded {
		t.Fatalf("degradation counters %d/%d: %+v", st.Degraded, st.DegradedRungs, st)
	}
	if st.BudgetExhausted == 0 {
		t.Fatalf("expected typed budget drops while learning the spike: %+v", st)
	}
	if c := g.Ladder().Counters(); c.Degradations == 0 || c.Promotions == 0 {
		t.Fatalf("ladder counters %+v, want both descents and promotions", c)
	}
	// Hedging: second attempts fired during the spike, and never beyond the
	// configured fraction of primary calls.
	if ss.Hedges == 0 {
		t.Fatalf("no hedged attempts during a %v spike: %+v", spikeDelay, ss)
	}
	if max := uint64(sched.Hedge.BudgetFrac*float64(ss.RemoteCalls)) + 1; ss.Hedges > max {
		t.Fatalf("hedges %d exceed budget (frac %.2f of %d calls): %+v",
			ss.Hedges, sched.Hedge.BudgetFrac, ss.RemoteCalls, ss)
	}
	if st.Hedges != ss.Hedges || st.HedgeWins != ss.HedgeWins {
		t.Fatalf("gateway stats do not mirror scheduler hedging: %+v vs %+v", st, ss)
	}
	// Deadline pressure must never look like device death.
	if st.FailoverAttempts != 0 {
		t.Fatalf("latency spike triggered failover: %+v", st)
	}
	for dev := 0; dev < 2; dev++ {
		if m.StateOf(dev) != cluster.Up {
			t.Fatalf("device %d is %v after a latency-only spike, want Up", dev, m.StateOf(dev))
		}
	}
	if h := rt.HealthyDevices(); !h[0] || !h[1] {
		t.Fatalf("healthy map %v after a latency-only spike", h)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: %+v", st)
	}
}
