package serve

import (
	"errors"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/health"
	"murmuration/internal/limit"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
)

// Gray-failure glue between the gateway and the health layer.
//
// The cluster glue (cluster.go) handles hard failures: a device that stops
// answering heartbeats. This file handles the failures heartbeats cannot
// see — a device that answers 1ms pings while serving tiles 10× slow or
// erroring a third of its calls. AttachHealth wires three loops together:
//
//   - Evidence: the scheduler's OnTileOutcome hook feeds every remote tile
//     call's (device, latency, error) into the tracker's SLI ledger, and the
//     scheduler's Gate consults the tracker before every dispatch so a
//     quarantined or ramping device takes only the traffic its state allows.
//   - Verdicts: tracker transitions drive the runtime's quarantine mask
//     (placement exclusion without connection teardown), cache invalidation,
//     wait-estimate resets, and — on completed reintegration — an AIMD
//     limiter reset.
//   - Time: a tick-loop goroutine rolls the tracker's windows, probes
//     quarantined devices with synthetic inferences so their ledgers stay
//     fed, and releases flap-suppressed devices once the damper's penalty
//     decays.

// HealthOptions configures AttachHealth. Zero values select the defaults.
type HealthOptions struct {
	// Tracker configures the SLI windows, gray thresholds, and the
	// quarantine/reintegration machine.
	Tracker health.Options
	// Damper configures flap damping on cluster Up/Down transitions.
	Damper health.DamperOptions
	// ProbeEvery is the synthetic-probe period per quarantined or
	// reintegrating device (default 500ms; negative disables probing).
	ProbeEvery time.Duration
	// ProbeTimeout bounds each probe call (default 2s).
	ProbeTimeout time.Duration
	// TickEvery is the tracker's clock-drive period (default half the SLI
	// window, so window rolls land close to on time).
	TickEvery time.Duration
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.TickEvery <= 0 {
		o.TickEvery = o.Tracker.Window / 2
		if o.TickEvery <= 0 {
			o.TickEvery = 500 * time.Millisecond
		}
	}
	return o
}

// AttachHealth creates the gray-failure tracker and flap damper, wires them
// into the scheduler's dispatch path and the cluster glue, and starts the
// tick loop. Call once, before traffic, and before Close. The returned
// tracker is the gateway's view of per-device health (for observation; its
// counters also ride Stats). Idempotent: a second call returns the existing
// tracker.
func (g *Gateway) AttachHealth(opts HealthOptions) *health.Tracker {
	g.mu.Lock()
	if g.health != nil {
		tr := g.health
		g.mu.Unlock()
		return tr
	}
	opts = opts.withDefaults()
	n := len(g.rt.Scheduler.Remotes)
	tr := health.NewTracker(n, opts.Tracker)
	g.health = tr
	g.damper = health.NewDamper(n, opts.Damper)
	g.suppressHeld = make([]bool, n)
	g.stallEvidence = make([]uint64, n)
	g.healthStop = make(chan struct{})
	g.healthDone = make(chan struct{})
	stop, done := g.healthStop, g.healthDone
	g.mu.Unlock()

	tr.OnTransition = g.onHealthTransition
	sched := g.rt.Scheduler
	sched.OnTileOutcome = func(dev int, elapsed time.Duration, err error) {
		g.observeTile(tr, dev, elapsed, err)
	}
	sched.Gate = func(dev int) bool { return tr.Admit(dev - 1) }

	go g.healthLoop(tr, opts, stop, done)
	return tr
}

// Health returns the attached gray-failure tracker (nil before AttachHealth).
func (g *Gateway) Health() *health.Tracker {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.health
}

// observeTile classifies one remote tile call's outcome into the tracker's
// SLI ledger. The taxonomy mirrors the scheduler's fault classification:
// overload refusals are backpressure (recorded but never gray), budget
// exhaustion, corrupt frames, and fenced responses say nothing about the
// live device (deadline pressure, link damage, and a dead process's answer
// respectively), everything else that failed is device-attributable. A
// stalled call is deliberately a *failure*, not an overload: the link is
// gray — it passes heartbeats and small frames while wedging tensor
// transfers — and repeated stalls must quarantine the path even though the
// liveness detector keeps seeing the device Up. The stall evidence is also
// remembered so the eventual quarantine is attributed as asymmetric.
func (g *Gateway) observeTile(tr *health.Tracker, dev int, elapsed time.Duration, err error) {
	i := dev - 1
	now := time.Now()
	switch {
	case err == nil:
		tr.ObserveOK(i, elapsed, now)
	case errors.Is(err, rpcx.ErrOverloaded), errors.Is(err, limit.ErrLimited):
		tr.ObserveOverload(i, now)
	case errors.Is(err, rpcx.ErrBudgetExhausted), errors.Is(err, rpcx.ErrCorruptFrame),
		errors.Is(err, runtime.ErrFenced), errors.Is(err, rpcx.ErrRetryBudget):
		// Not the device's fault; keep it out of the ledger entirely. A
		// retry-budget shed in particular is the storm-control plane refusing
		// to amplify a correlated outage: it carries a real first-attempt
		// failure as its cause, but charging gray evidence during a mass
		// failure would quarantine the fleet exactly when capacity is
		// scarcest — the liveness detector and data-path demotion already
		// cover hard faults without the budget's help.
	case errors.Is(err, rpcx.ErrStalled):
		g.mu.Lock()
		if i >= 0 && i < len(g.stallEvidence) {
			g.stallEvidence[i]++
		}
		g.mu.Unlock()
		tr.ObserveFailure(i, now)
	default:
		tr.ObserveFailure(i, now)
	}
}

// onHealthTransition applies a tracker verdict to the serving plane.
func (g *Gateway) onHealthTransition(tr health.Transition) {
	i := tr.Device
	switch tr.To {
	case health.Quarantined:
		// Exclude from placement like Down — but without touching the
		// cluster detector or the connections, which stay warm for probes.
		g.rt.SetDeviceQuarantined(i, true)
		if g.rt.Cache != nil {
			g.rt.Cache.InvalidateDevice(i + 1)
		}
		// Attribution: if stall evidence accrued since the last quarantine,
		// this is the asymmetric-partition signature — the device stayed Up
		// on the liveness detector while its bulk transfers wedged.
		g.mu.Lock()
		if i >= 0 && i < len(g.stallEvidence) && g.stallEvidence[i] > 0 {
			g.stats.AsymmetricQuarantines++
			g.stallEvidence[i] = 0
		}
		g.mu.Unlock()
	case health.Reintegrating:
		// Placement-eligible again; the scheduler's Gate admits only the
		// ramp fraction, redirecting the rest to local execution.
		g.rt.SetDeviceQuarantined(i, false)
	case health.Active:
		if tr.From == health.Reintegrating {
			// Ramp complete: the AIMD limit and panic streak learned against
			// the sick incarnation must not throttle the recovered one.
			g.rt.Scheduler.ResetDevice(i + 1)
		}
	default:
		// Probation: full traffic continues, no serving-plane change.
		return
	}
	// Every serving-plane change above shifts batch-cost regime.
	g.ResetWaitEstimates()
	g.rewarm()
}

// healthLoop is the tick-loop goroutine: it drives the tracker's window
// clock, probes quarantined/reintegrating devices, and releases
// flap-suppressed devices whose penalty has decayed.
func (g *Gateway) healthLoop(tr *health.Tracker, opts HealthOptions, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(opts.TickEvery)
	defer ticker.Stop()
	lastProbe := make([]time.Time, len(g.rt.Scheduler.Remotes))
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			tr.Tick(now)
			g.damperSweep(now)
			if opts.ProbeEvery >= 0 {
				g.probeSweep(tr, opts, lastProbe, now)
			}
		}
	}
}

// damperSweep reinstates devices whose reinstatement the flap damper
// refused, once their penalty has decayed and the detector still says Up.
func (g *Gateway) damperSweep(now time.Time) {
	g.mu.Lock()
	dmp, m := g.damper, g.cluster
	held := append([]bool(nil), g.suppressHeld...)
	g.mu.Unlock()
	for i, h := range held {
		if !h || dmp.Suppressed(i, now) {
			continue
		}
		if m != nil && m.StateOf(i) != cluster.Up {
			// Released from damping but genuinely down: leave it to the
			// detector's next Up event (which now passes the damper).
			g.mu.Lock()
			g.suppressHeld[i] = false
			g.mu.Unlock()
			continue
		}
		g.mu.Lock()
		g.suppressHeld[i] = false
		g.mu.Unlock()
		g.rt.SetDeviceHealth(i, true)
		g.rt.Scheduler.ResetDevice(i + 1)
		g.ResetWaitEstimates()
		g.rewarm()
	}
}

// probeSweep sends one synthetic probe inference to every quarantined or
// reintegrating device whose probe period elapsed, feeding the outcome into
// the tracker so an idle quarantined device still accrues (clean or gray)
// windows and can earn its way back.
func (g *Gateway) probeSweep(tr *health.Tracker, opts HealthOptions, lastProbe []time.Time, now time.Time) {
	for i := range lastProbe {
		st := tr.StateOf(i)
		if st != health.Quarantined && st != health.Reintegrating {
			continue
		}
		if now.Sub(lastProbe[i]) < opts.ProbeEvery {
			continue
		}
		lastProbe[i] = now
		elapsed, err := g.rt.Scheduler.ProbeDevice(i+1, opts.ProbeTimeout)
		g.observeTile(tr, i+1, elapsed, err)
	}
}
