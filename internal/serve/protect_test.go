package serve

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
	"murmuration/internal/watchdog"
)

// Self-protection at the serving layer: a daemon panic fails one batch and
// nothing else, a panic streak demotes the device and failover serves the
// request anyway, worker panics are recovered in-process, and a watchdog
// brownout tightens admission without touching SLO-bearing traffic.

// TestPanicFailsOnlyBatch: a single handler panic on the remote daemon is a
// request fault — the batch riding it fails with a typed error, the very next
// request serves on the same daemon, and no device is demoted.
func TestPanicFailsOnlyBatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := supernet.TinyArch(4)
	net1 := supernet.New(a, 500)

	ex := runtime.NewExecutor(net1)
	handler := ex.ExecBlockHandler()
	var calls atomic.Int64
	srv := rpcx.NewServer()
	srv.Handle(runtime.ExecBlockMethod, func(p []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			panic("injected daemon panic")
		}
		return handler(p)
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sched := runtime.NewScheduler(net1, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)

	g := New(rt, Options{Workers: 1})
	defer g.Close(time.Second)

	_, err = g.Submit(testInput(500), latSLO(30000))
	if !IsPanic(err) {
		t.Fatalf("first submit rode the panic: err = %v, want panic-typed", err)
	}
	out, err := g.Submit(testInput(501), latSLO(30000))
	if err != nil {
		t.Fatalf("second submit after isolated panic: %v", err)
	}
	if out.Logits == nil || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after panic recovery: %v", out.Logits)
	}

	st := g.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("failed=%d served=%d, want 1/1: %+v", st.Failed, st.Served, st)
	}
	if st.RemotePanics == 0 {
		t.Fatalf("daemon panic not visible in serve stats: %+v", st)
	}
	// One panic is a request fault: no failover fired and the device stays
	// healthy.
	if st.FailoverAttempts != 0 {
		t.Fatalf("a lone panic triggered failover: %+v", st)
	}
	if h := rt.HealthyDevices(); !h[0] {
		t.Fatal("a lone panic demoted the device")
	}
}

// TestRepeatedPanicsDemoteAndFailover: a daemon that panics on every call
// crosses PanicFaultThreshold — the streak reclassifies the panic as a device
// fault, failover serves the request locally, and the device is demoted.
func TestRepeatedPanicsDemoteAndFailover(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := supernet.TinyArch(4)
	net1 := supernet.New(a, 501)

	srv := rpcx.NewServer()
	srv.Handle(runtime.ExecBlockMethod, func([]byte) ([]byte, error) {
		panic("wedged daemon")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sched := runtime.NewScheduler(net1, []*rpcx.Client{cl})
	rt := runtime.New(sched, remoteDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)

	g := New(rt, Options{Workers: 1})
	defer g.Close(time.Second)

	// Below the threshold every panic is a request fault: typed failure, no
	// failover.
	for i := 1; i < runtime.PanicFaultThreshold; i++ {
		_, err := g.Submit(testInput(int64(510+i)), latSLO(30000))
		if !IsPanic(err) {
			t.Fatalf("submit %d: err = %v, want panic-typed", i, err)
		}
	}
	// The streak tips the classification: device fault → failover serves the
	// request on a re-resolved (device-free) strategy.
	out, err := g.Submit(testInput(520), latSLO(30000))
	if err != nil {
		t.Fatalf("failover should have served the request locally: %v", err)
	}
	if out.Logits == nil || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after failover: %v", out.Logits)
	}

	st := g.Stats()
	if st.FailoverAttempts != 1 || st.Failovers != 1 {
		t.Fatalf("failover counters %d/%d, want 1/1: %+v", st.FailoverAttempts, st.Failovers, st)
	}
	if want := uint64(runtime.PanicFaultThreshold - 1); st.Failed != want {
		t.Fatalf("failed=%d, want %d: %+v", st.Failed, want, st)
	}
	if st.RemotePanics < uint64(runtime.PanicFaultThreshold) {
		t.Fatalf("RemotePanics=%d, want >= %d", st.RemotePanics, runtime.PanicFaultThreshold)
	}
	if h := rt.HealthyDevices(); h[0] {
		t.Fatal("panic-streaking device still marked healthy")
	}
}

// TestWorkerPanicRecovered: a panic inside the gateway's own pipeline (here
// the decider) fails that batch with a typed error and the worker loop
// survives to serve the next request.
func TestWorkerPanicRecovered(t *testing.T) {
	testutil.CheckGoroutines(t)
	var calls atomic.Int64
	rt := newTestRuntime(502, func() {
		if calls.Add(1) == 1 {
			panic("decider exploded")
		}
	})
	g := New(rt, Options{Workers: 1})
	defer g.Close(time.Second)

	_, err := g.Submit(testInput(530), latSLO(5000))
	if !IsPanic(err) {
		t.Fatalf("panicked batch: err = %v, want panic-typed", err)
	}
	out, err := g.Submit(testInput(531), latSLO(5000))
	if err != nil {
		t.Fatalf("worker did not survive its own panic: %v", err)
	}
	if out.Logits == nil || out.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after worker recovery: %v", out.Logits)
	}

	st := g.Stats()
	if st.Panics != 1 {
		t.Fatalf("Panics=%d, want 1: %+v", st.Panics, st)
	}
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("failed=%d served=%d, want 1/1: %+v", st.Failed, st.Served, st)
	}
}

// TestBrownoutTightensAdmission: flipping the brownout sheds best-effort
// traffic as a typed overload refusal, raises the degradation-ladder floor so
// SLO-bearing batches execute degraded, and clearing it restores both.
func TestBrownoutTightensAdmission(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := New(newTestRuntime(503, nil), Options{Workers: 1, QueueDepth: 8})
	defer g.Close(time.Second)

	// Healthy gateway: best-effort is admitted and served.
	if _, err := g.Submit(testInput(540), runtime.SLO{}); err != nil {
		t.Fatalf("best-effort before brownout: %v", err)
	}

	g.SetBrownout(true)
	if !g.Brownout() {
		t.Fatal("SetBrownout(true) did not take")
	}
	_, err := g.Submit(testInput(541), runtime.SLO{})
	if !errors.Is(err, ErrOverloaded) || !IsShed(err) || !IsOverloaded(err) {
		t.Fatalf("brownout best-effort: err = %v, want a typed overload shed", err)
	}
	if g.Ladder().Floor() != BrownoutRung || g.Ladder().Rung() < BrownoutRung {
		t.Fatalf("brownout floor/rung = %d/%d, want >= %d",
			g.Ladder().Floor(), g.Ladder().Rung(), BrownoutRung)
	}
	// SLO-bearing traffic still serves — degraded at the brownout floor.
	out, err := g.Submit(testInput(542), latSLO(5000))
	if err != nil {
		t.Fatalf("latency request under brownout: %v", err)
	}
	if out.Rung < BrownoutRung {
		t.Fatalf("brownout batch ran at rung %d, want >= %d", out.Rung, BrownoutRung)
	}
	st := g.Stats()
	if st.Brownouts != 1 || st.BrownoutActive != 1 {
		t.Fatalf("brownout counters: %+v", st)
	}
	if st.Overloads == 0 || st.Shed == 0 || st.Degraded == 0 {
		t.Fatalf("brownout effects not counted: %+v", st)
	}

	// Watchdog gauges ride stats once attached and sampled.
	w := watchdog.New(watchdog.Options{})
	g.AttachWatchdog(w)
	w.Sample()
	if st := g.Stats(); st.Goroutines == 0 || st.HeapBytes == 0 {
		t.Fatalf("watchdog gauges missing from stats: %+v", st)
	}

	// Clearing restores admission and drops the floor; the ladder climbs home
	// through its normal hysteresis rather than snapping.
	g.SetBrownout(false)
	if _, err := g.Submit(testInput(543), runtime.SLO{}); err != nil {
		t.Fatalf("best-effort after brownout cleared: %v", err)
	}
	if st := g.Stats(); st.BrownoutActive != 0 {
		t.Fatalf("BrownoutActive still set after clear: %+v", st)
	}
	if g.Ladder().Floor() != 0 {
		t.Fatalf("floor not cleared: %d", g.Ladder().Floor())
	}

	// Edge-triggered: re-asserting the same state does not re-count.
	g.SetBrownout(true)
	g.SetBrownout(true)
	if st := g.Stats(); st.Brownouts != 2 {
		t.Fatalf("Brownouts=%d after two distinct activations, want 2", st.Brownouts)
	}
	g.SetBrownout(false)
}
