// Regression tests for the limiter-reset satellite of the health model: an
// AIMD concurrency limit (and panic streak) learned against a device's sick
// incarnation must not throttle its recovered one. Both return paths are
// covered — heartbeat-detector reinstatement (Down -> Up through the cluster
// glue) and gray-failure reintegration (Quarantined -> Reintegrating ->
// Active through the tracker). External test package like the chaos tests.
package serve_test

import (
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/health"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// resetGateway builds a gateway over a two-remote scheduler whose clients
// are nil — no traffic ever dispatches, so the tests can poke limiters and
// drive membership/health transitions without sockets.
func resetGateway(t *testing.T) (*serve.Gateway, *runtime.Runtime, *runtime.Scheduler, *cluster.Manager) {
	t.Helper()
	a := supernet.TinyArch(4)
	net := supernet.New(a, 810)
	sched := runtime.NewScheduler(net, make([]*rpcx.Client, 2))
	rt := runtime.New(sched, liveSpreadDecider(a), runtime.NewStrategyCache(8, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	probe := cluster.ProbeFunc(func(time.Duration) (time.Duration, uint64, error) { return time.Millisecond, 0, nil })
	// Never Started: the tests drive transitions via MarkDown/ReportSuccess,
	// which publish events to the gateway's cluster glue directly.
	m := cluster.NewManager([]cluster.ProbeFunc{probe, probe}, cluster.Options{})
	g := serve.New(rt, serve.Options{Workers: 1, MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 4})
	return g, rt, sched, m
}

// TestReinstateResetsLimiter covers the detector direction: a device goes
// Down with a cut AIMD limit, and its Up reinstatement must restore the
// limit to Start.
func TestReinstateResetsLimiter(t *testing.T) {
	testutil.CheckGoroutines(t)
	g, rt, sched, m := resetGateway(t)
	defer m.Close()
	g.AttachCluster(m)
	g.AttachHealth(serve.HealthOptions{
		ProbeEvery: -1,
		TickEvery:  time.Hour, // the tests below never need the tick loop
	})
	defer g.Close(time.Second)

	lim := sched.Limiter(1)
	start := lim.Snapshot().Limit
	lim.Cut()
	if cut := lim.Snapshot().Limit; cut >= start {
		t.Fatalf("Cut did not lower the limit: %d -> %d", start, cut)
	}

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}
	m.MarkDown(0)
	waitFor("demotion", func() bool { return !rt.HealthyDevices()[0] })
	m.ReportSuccess(0, time.Millisecond)
	waitFor("reinstatement with a fresh limiter", func() bool {
		return rt.HealthyDevices()[0] && lim.Snapshot().Limit == start
	})
}

// TestReintegrationResetsLimiter covers the tracker direction: a device is
// grayed into quarantine (losing hedge-alternate eligibility), ramps back
// at reduced weight, and completing reintegration must reset its cut AIMD
// limit. The tracker's clock is driven manually on a synthetic timeline —
// transitions fire synchronously from Tick, so every assertion is
// deterministic.
func TestReintegrationResetsLimiter(t *testing.T) {
	testutil.CheckGoroutines(t)
	const win = 50 * time.Millisecond
	g, rt, sched, m := resetGateway(t)
	defer m.Close()
	g.AttachCluster(m)
	tr := g.AttachHealth(serve.HealthOptions{
		Tracker: health.Options{
			Window:           win,
			MinSamples:       2,
			FailureRate:      0.5,
			GrayWindows:      1,
			CleanWindows:     1,
			ReintegrateAfter: win,
			RampWeights:      []float64{0.5},
		},
		ProbeEvery: -1,
		TickEvery:  time.Hour, // quiet: this test owns the tracker's clock
	})
	defer g.Close(time.Second)

	now := time.Unix(0, 0)
	tick := func() { now = now.Add(win); tr.Tick(now) }
	grayWindow := func() {
		for k := 0; k < 4; k++ {
			tr.ObserveFailure(0, now)
			tr.ObserveOK(1, time.Millisecond, now)
		}
		tick()
	}
	cleanWindow := func() {
		for k := 0; k < 4; k++ {
			tr.ObserveOK(0, time.Millisecond, now)
			tr.ObserveOK(1, time.Millisecond, now)
		}
		tick()
	}
	tr.Tick(now) // anchor the window clock

	grayWindow() // Active -> Probation
	grayWindow() // Probation -> Quarantined
	if st := tr.StateOf(0); st != health.Quarantined {
		t.Fatalf("after two gray windows: %v, want Quarantined", st)
	}
	if !rt.QuarantinedDevices()[0] {
		t.Fatal("quarantine did not reach the runtime mask")
	}
	// Hedge-alternate eligibility is revoked: with device 2 as primary, the
	// only alternate would be device 1, and it is quarantined.
	if alt := rt.AlternateFor(2); alt != 0 {
		t.Fatalf("AlternateFor(2) = %d while device 1 is quarantined, want 0", alt)
	}

	lim := sched.Limiter(1)
	start := lim.Snapshot().Limit
	lim.Cut()

	cleanWindow() // earns the clean streak; dwell also elapses -> Reintegrating
	if st := tr.StateOf(0); st != health.Reintegrating {
		t.Fatalf("after a clean window past the dwell: %v, want Reintegrating", st)
	}
	if w := tr.Weight(0); w != 0.5 {
		t.Fatalf("ramp weight %v, want 0.5 — reintegration must not absorb full traffic at once", w)
	}
	if rt.QuarantinedDevices()[0] {
		t.Fatal("reintegrating device still masked out of placement")
	}
	if got := lim.Snapshot().Limit; got >= start {
		t.Fatalf("limit %d already restored during the ramp, want the reset only on completion", got)
	}

	cleanWindow() // ramp complete -> Active, limiter reset fires synchronously
	if st := tr.StateOf(0); st != health.Active {
		t.Fatalf("after the ramp: %v, want Active", st)
	}
	if got := lim.Snapshot().Limit; got != start {
		t.Fatalf("completed reintegration left the limit at %d, want %d", got, start)
	}
	if w := tr.Weight(0); w != 1 {
		t.Fatalf("active weight %v, want 1", w)
	}
	if alt := rt.AlternateFor(2); alt != 1 {
		t.Fatalf("AlternateFor(2) = %d after reintegration, want 1", alt)
	}
	if c := tr.Counters(); c.Reintegrations != 1 {
		t.Fatalf("counters %+v, want exactly one completed reintegration", c)
	}
}
