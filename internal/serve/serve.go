// Package serve is Murmuration's SLO-aware serving layer: a concurrent
// inference gateway that sits in front of runtime.Runtime and turns the
// single-request pipeline into a request-serving system.
//
// Requests are classified by their SLO into service classes (latency-SLO
// ahead of accuracy-SLO ahead of best-effort) and admitted into bounded
// per-class queues. Admission is deadline-aware: a latency-SLO request whose
// estimated queue wait already exceeds its budget is shed immediately rather
// than admitted and missed. A worker pool drains the queues in strict class
// priority, coalescing compatible requests — same resolved strategy key from
// the StrategyCache — into one batched Scheduler inference (up to MaxBatch,
// waiting at most MaxLinger to fill a batch). Everything observable is
// counted and exposed via Stats() so experiments and benchmarks can assert
// on admitted / served / shed / deadline-missed totals.
package serve

import (
	"errors"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
)

// Class is the service class a request is queued under, derived from its
// SLO. Lower values are served first.
type Class int

// Service classes in strict priority order.
const (
	ClassLatency    Class = iota // latency-SLO requests: have a hard deadline
	ClassAccuracy                // accuracy-SLO requests: quality-bound, no deadline
	ClassBestEffort              // no SLO: served when capacity is idle
	numClasses
)

// String names the class for logs and stats.
func (c Class) String() string {
	switch c {
	case ClassLatency:
		return "latency"
	case ClassAccuracy:
		return "accuracy"
	case ClassBestEffort:
		return "best-effort"
	}
	return "unknown"
}

// NumClasses is the number of service classes — the length of the per-class
// arrays in Stats, exported for scorers that iterate them.
const NumClasses = int(numClasses)

// ClassFor derives the service class a request with the given SLO queues
// under — the exported form of the gateway's own classifier, so external
// scorers bucket exactly the way admission does.
func ClassFor(slo runtime.SLO) Class { return classOf(slo) }

// classOf derives the service class from an SLO. A latency SLO with a
// positive budget gets the deadline class; a positive accuracy SLO gets the
// quality class; anything else is best-effort.
func classOf(slo runtime.SLO) Class {
	switch {
	case slo.Type == env.LatencySLO && slo.Value > 0:
		return ClassLatency
	case slo.Type == env.AccuracySLO && slo.Value > 0:
		return ClassAccuracy
	}
	return ClassBestEffort
}

// Sentinel errors surfaced to submitters. Over the wire they travel as rpcx
// remote-error strings; Client maps them back with IsShed / errors.Is.
var (
	// ErrQueueFull sheds a request because its class queue is at depth.
	ErrQueueFull = errors.New("serve: shed: queue full")
	// ErrDeadlineUnattainable sheds a latency-SLO request at admission
	// because the estimated queue wait already exceeds its budget.
	ErrDeadlineUnattainable = errors.New("serve: shed: deadline unattainable")
	// ErrDeadlineMissed fails an admitted request whose deadline passed
	// while it waited in the queue.
	ErrDeadlineMissed = errors.New("serve: deadline missed in queue")
	// ErrShuttingDown rejects work during/after gateway shutdown.
	ErrShuttingDown = errors.New("serve: shed: gateway shutting down")
	// ErrOverloaded sheds a request because the gateway is protecting itself:
	// a watchdog brownout tightened admission, or dispatch hit a concurrency
	// limit downstream. Like every shed it is a refusal, not a failure.
	ErrOverloaded = errors.New("serve: shed: overloaded")
)

// BrownoutRung is the degradation-ladder floor a watchdog brownout raises:
// under resource pressure every batch executes at least one rung degraded,
// trading quality for headroom until the pressure clears.
const BrownoutRung = 1

// Options configures a Gateway. Zero values select the defaults.
type Options struct {
	// Workers is the number of parallel batch executors (default 2).
	Workers int
	// MaxBatch caps how many compatible requests coalesce into one batched
	// inference (default 8, max 255 — the wire encodes it in one byte).
	MaxBatch int
	// MaxLinger is how long a worker waits to fill a batch after the first
	// request is taken (default 2ms). Lingering never extends past a
	// latency-SLO head's feasible slack.
	MaxLinger time.Duration
	// QueueDepth bounds each class queue (default 64).
	QueueDepth int
	// OnDeviceError, when set, is called (off the worker's hot path but
	// synchronously, so keep it cheap) whenever a batch fails with a
	// device-attributed error, before the failover retry. Daemons use it to
	// log which device is dying.
	OnDeviceError func(device int, err error)
	// OnRestart, when set, is called from the cluster event loop when a
	// device's incarnation changes (a silent restart was detected), after the
	// gateway has fenced the old incarnation and reset the device's adaptive
	// state, and before the device is reinstated. The gateway command wires
	// it to capability re-negotiation: re-probing the link monitor and
	// refreshing the runtime's link state, because the restarted process may
	// have different performance than the one the estimates were learned on.
	OnRestart func(device int, incarnation uint64)
	// MaxRung is the deepest degradation-ladder rung workers may descend to
	// when the remaining deadline budget is below the strategy's observed
	// cost: 0 selects runtime.DefaultMaxRung, a negative value disables
	// degradation entirely (requests then drop under pressure, as before).
	MaxRung int
	// LadderHysteresis is how many consecutive comfortable completions are
	// needed before the ladder climbs one rung back toward full quality
	// (default runtime.DefaultLadderHysteresis).
	LadderHysteresis int
	// CorrelatedLossK is the correlated-loss threshold: when at least K
	// devices go Down within CorrelatedLossWindow the gateway records a
	// CorrelatedLossEvent and pre-emptively raises the degradation-ladder
	// floor one rung for CorrelatedLossHold — the surviving capacity is about
	// to absorb the dead devices' traffic, so every batch cheapens before the
	// wave lands instead of after the first misses. Default 2; negative
	// disables the detector.
	CorrelatedLossK int
	// CorrelatedLossWindow is the sliding window the detector counts Down
	// events over (default 2s).
	CorrelatedLossWindow time.Duration
	// CorrelatedLossHold is how long the pre-emptive tighten persists after
	// the last detection (default 5s).
	CorrelatedLossHold time.Duration
	// RewarmConcurrency caps concurrent post-topology-change strategy rewarms
	// (default 2). A mass recovery used to fire one synchronous re-resolve
	// per event; now rewarms are asynchronous, jittered, and at most this
	// many run at once — excess requests are dropped, because any rewarm that
	// runs sees the current health mask.
	RewarmConcurrency int
	// ReintegrationStagger spaces mass reinstatements: when one cluster batch
	// reinstates n devices, device i rejoins after i*stagger so rewarms,
	// limiter resets, and placement shifts ramp instead of thundering
	// (default 200ms).
	ReintegrationStagger time.Duration
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxBatch > 255 {
		o.MaxBatch = 255
	}
	if o.MaxLinger <= 0 {
		o.MaxLinger = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CorrelatedLossK == 0 {
		o.CorrelatedLossK = 2
	}
	if o.CorrelatedLossWindow <= 0 {
		o.CorrelatedLossWindow = 2 * time.Second
	}
	if o.CorrelatedLossHold <= 0 {
		o.CorrelatedLossHold = 5 * time.Second
	}
	if o.RewarmConcurrency <= 0 {
		o.RewarmConcurrency = 2
	}
	if o.ReintegrationStagger <= 0 {
		o.ReintegrationStagger = 200 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time snapshot of the gateway's counters. After a
// drain, Admitted == Served + Dropped + Failed: no admitted request
// disappears silently.
type Stats struct {
	// Admitted counts requests that passed admission control.
	Admitted uint64
	// Served counts admitted requests that completed execution and were
	// delivered (late completions included — see DeadlineMissed).
	Served uint64
	// Shed counts requests rejected at admission: full queue, hopeless
	// deadline, or shutdown.
	Shed uint64
	// Dropped counts admitted requests abandoned before execution (deadline
	// expired in queue, or shutdown drain gave up).
	Dropped uint64
	// DeadlineMissed counts admitted latency-SLO requests that did not make
	// their budget: every Dropped latency request plus every late Served
	// completion.
	DeadlineMissed uint64
	// Failed counts admitted requests whose execution errored.
	Failed uint64
	// Batches / BatchedRequests describe batching efficiency:
	// BatchedRequests/Batches is the mean batch size.
	Batches         uint64
	BatchedRequests uint64
	// FailoverAttempts counts batches whose execution hit a device-attributed
	// error and were retried once on a re-resolved strategy; Failovers counts
	// the retries that then succeeded. A batch only lands in Failed after its
	// failover retry also failed (or the error was not device-attributable).
	FailoverAttempts uint64
	Failovers        uint64
	// Degraded counts requests served below rung 0 on the degradation
	// ladder; DegradedRungs sums their rungs (DegradedRungs/Degraded is the
	// mean degradation depth).
	Degraded      uint64
	DegradedRungs uint64
	// BudgetExhausted counts admitted requests dropped because their
	// deadline budget ran out during execution — even the deepest permitted
	// rung could not finish in time.
	BudgetExhausted uint64
	// Hedges / HedgeWins are the scheduler's hedged tile-RPC counters:
	// second attempts issued after the hedge delay, and how many of those
	// second responses arrived first and were used.
	Hedges    uint64
	HedgeWins uint64
	// CorruptFrames counts rpcx frames rejected by checksum/framing
	// validation on the scheduler's remote clients; Redials counts the
	// connection re-establishments forced by poisoned connections. Both come
	// from the integrity layer: corruption is detected, the connection torn
	// down, and the call retried — never delivered corrupted.
	CorruptFrames uint64
	Redials       uint64
	// ClusterUp / ClusterSuspect / ClusterDown are the failure detector's
	// member counts at snapshot time (from the attached cluster.Manager, or
	// derived from the runtime's device-health mask when none is attached).
	ClusterUp      uint64
	ClusterSuspect uint64
	ClusterDown    uint64
	// Panics counts batch executions that panicked inside the gateway and
	// were recovered (the batch failed, the process survived); RemotePanics
	// counts typed handler-panic responses received from daemons.
	Panics       uint64
	RemotePanics uint64
	// Overloads counts requests shed or dropped as overload refusals: brownout
	// admission sheds plus batches refused by a concurrency limit (local AIMD
	// or a daemon's in-flight cap). Overload is never a fault — these ride
	// Shed/Dropped in the ledger, never Failed.
	Overloads uint64
	// LimiterCuts counts multiplicative cuts across the scheduler's per-device
	// AIMD limiters; LimiterLimit is their summed current limit (a gauge).
	LimiterCuts  uint64
	LimiterLimit uint64
	// Brownouts counts watchdog brownout activations; BrownoutActive is 1
	// while the gateway is currently in brownout (a gauge).
	Brownouts      uint64
	BrownoutActive uint64
	// Goroutines / HeapBytes are the watchdog's last resource samples (0 when
	// no watchdog is attached). Gauges, not counters.
	Goroutines uint64
	HeapBytes  uint64
	// PolicyVersion is the serving policy's version (a gauge, 0 when no
	// adaptation controller is attached); ShadowScored, Promotions, and
	// Rollbacks are the attached controller's rollout counters. CanaryServed
	// counts requests served by a canary-routed candidate decision — these
	// ride the normal Served/ClassMet ledger, the counter only attributes
	// them. All five are wire v7.
	PolicyVersion uint64
	ShadowScored  uint64
	CanaryServed  uint64
	Promotions    uint64
	Rollbacks     uint64
	// GraySuspects counts gray-window detections by the health tracker (a
	// device's data-path SLIs breached the fleet-relative thresholds while
	// its heartbeats stayed Up); Probations, Quarantines, and Reintegrations
	// count the health machine's transitions into Probation, into
	// Quarantined, and completed reintegration ramps back to Active.
	// FlapSuppressed counts devices crossing into flap-damping suppression
	// (reinstatement refused until the flip penalty decays). All five are
	// wire v8, zero when no health tracker is attached (AttachHealth).
	GraySuspects   uint64
	Quarantines    uint64
	Probations     uint64
	Reintegrations uint64
	FlapSuppressed uint64
	// Restarts counts detected device restarts (incarnation changes) the
	// gateway reconfigured around: strategy cache invalidated, adaptive state
	// reset, capabilities re-negotiated. FencedResponses counts tile responses
	// produced by a dead incarnation that were dropped before reaching any
	// caller or adaptive state. StalledCalls counts remote calls the per-call
	// progress watchdog aborted (typed rpcx.ErrStalled — a half-open link).
	// AsymmetricQuarantines counts health quarantines attributed to stall
	// evidence: the link passed heartbeats while wedging tensor transfers.
	// All four are wire v9.
	Restarts              uint64
	FencedResponses       uint64
	StalledCalls          uint64
	AsymmetricQuarantines uint64
	// RetryBudgetExhausted counts speculative attempts — rpcx retries,
	// failover re-executions, hedges — refused by the shared retry budget:
	// each one a contribution to a retry storm that did not happen.
	// ResolveCoalesced counts strategy resolutions served by another caller's
	// in-flight decider run instead of a duplicate run (singleflight).
	// InvalidationEpochs mirrors Cache.InvalidationEpochs on the wire: O(1)
	// strategy-cache invalidation events (device-loss epoch bumps and policy
	// clears). CorrelatedLossEvents counts correlated-loss detections (>= K
	// devices Down inside the window) that pre-emptively tightened admission
	// one ladder rung. StaggeredReintegrations counts device reinstatements
	// the recovery-storm smoother delayed so returning capacity ramps instead
	// of slamming. All five are wire v10.
	RetryBudgetExhausted    uint64
	ResolveCoalesced        uint64
	InvalidationEpochs      uint64
	CorrelatedLossEvents    uint64
	StaggeredReintegrations uint64
	// ClassMet / ClassMissed are the per-SLO-class attainment ledger: every
	// admitted request lands in exactly one bucket of its class once it gets
	// its outcome. Met is served within the SLO (for classes without a
	// deadline, simply served); Missed is everything else — a late serve, a
	// queue drop, a budget exhaustion, or a failure. After a drain,
	// sum(ClassMet) + sum(ClassMissed) == Admitted, so per-class attainment
	// is Met/(Met+Missed) straight off the stats wire (v6), with no
	// client-side bookkeeping.
	ClassMet    [numClasses]uint64
	ClassMissed [numClasses]uint64
	// QueueDepth is the current per-class queue occupancy.
	QueueDepth [numClasses]int
	// Cache is the runtime strategy-cache snapshot (occupancy, hit-rate).
	Cache runtime.CacheStats
}

// Outcome is the per-request result delivered to a submitter.
type Outcome struct {
	Logits     *tensor.Tensor
	QueueWait  time.Duration // admission → execution start
	ExecTime   time.Duration // the batched scheduler call this request rode in
	DecideTime time.Duration // strategy resolution time for the batch
	BatchSize  int
	CacheHit   bool
	// Rung is the degradation-ladder rung the batch executed at (0 = the
	// resolved strategy unchanged).
	Rung int
	// PolicyVersion / Canary attribute the serving decision to its policy
	// snapshot (see runtime.Resolution). Zero when the decider is unversioned.
	PolicyVersion uint64
	Canary        bool
	Err           error
}

// Submit enqueues one inference under slo and blocks until its outcome is
// ready. It is safe for concurrent use; the returned error is also set on
// Outcome.Err.
func (g *Gateway) Submit(x *tensor.Tensor, slo runtime.SLO) (Outcome, error) {
	req := &request{
		x:        x,
		slo:      slo,
		class:    classOf(slo),
		key:      g.rt.StrategyKeyFor(slo),
		enqueued: time.Now(),
		done:     make(chan Outcome, 1),
	}
	if req.class == ClassLatency {
		req.deadline = req.enqueued.Add(time.Duration(slo.Value * float64(time.Millisecond)))
	}
	if err := g.admit(req); err != nil {
		return Outcome{Err: err}, err
	}
	out := <-req.done
	return out, out.Err
}
