package serve

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// TestChaosPanicStorm drives the gateway through sustained concurrent load
// while both daemons' exec.block handlers panic at a seeded 1e-2 per call,
// then clears the fault. The self-protection contract, end to end:
//
//   - the process survives: every panic is recovered on the daemon, travels
//     as a typed response, and fails at most its own batch — every client
//     error during the storm is a typed class, never a crash or silent loss;
//   - the per-device AIMD limiters clamp on the congestion signal (cuts
//     observable via scheduler stats);
//   - panics never read as device death to the failure detector — both
//     members stay Up throughout;
//   - when the storm clears, throughput fully recovers;
//   - the admission ledger balances and goroutines unwind (leak-checked).
func TestChaosPanicStorm(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		panicRate    = 1e-2
		numClients   = 6
		baselineReqs = 4  // per client, storm off
		waveReqs     = 10 // per client per storm wave
		maxWaves     = 40
		minInjected  = 3
		recoveryReqs = 10 // sequential, storm off
		sloMs        = 30000
	)
	a := supernet.TinyArch(4)
	net1 := supernet.New(a, 505)

	// Daemons whose exec handler panics at panicRate while the storm flag is
	// up. Each daemon draws from its own seeded rng (under a lock — handlers
	// run concurrently) so the injection schedule is reproducible per daemon.
	var storm atomic.Bool
	var injected atomic.Uint64
	startDaemon := func(seed int64) (*rpcx.Server, string) {
		handler := runtime.NewExecutor(net1).ExecBlockHandler()
		rng := rand.New(rand.NewSource(seed))
		var mu sync.Mutex
		srv := rpcx.NewServer()
		srv.Handle(runtime.ExecBlockMethod, func(p []byte) ([]byte, error) {
			mu.Lock()
			fire := storm.Load() && rng.Float64() < panicRate
			mu.Unlock()
			if fire {
				injected.Add(1)
				panic("chaos: injected handler panic")
			}
			return handler(p)
		})
		monitor.RegisterHandlers(srv)
		cluster.NewNode().Register(srv)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		return srv, addr
	}
	srv1, addr1 := startDaemon(1)
	defer srv1.Close()
	srv2, addr2 := startDaemon(2)
	defer srv2.Close()

	dialData := func(addr string) *rpcx.Client {
		c, err := rpcx.Dial(addr, nil)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
		c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
		return c
	}
	data1, data2 := dialData(addr1), dialData(addr2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net1, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second

	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	})
	rt := runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)
	rt.SetSLO(latSLO(sloMs))

	// Heartbeats ride dedicated clean connections: a panicking handler must
	// read as a request/device fault through the data path, never as member
	// death — the daemon process is alive and answering pings throughout.
	hb1, hb2 := dialData(addr1), dialData(addr2)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := New(rt, Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32})
	defer g.Close(10 * time.Second)
	g.AttachCluster(m)
	m.Start()

	var successes, panicsSeen, otherTyped atomic.Uint64
	runWave := func(phase string, reqs int, seedBase int64) {
		var wg sync.WaitGroup
		for c := 0; c < numClients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < reqs; i++ {
					_, err := g.Submit(testInput(seedBase+int64(100*c+i)), latSLO(sloMs))
					switch {
					case err == nil:
						successes.Add(1)
					case IsPanic(err):
						panicsSeen.Add(1)
					case IsShed(err) || IsDeadlineMissed(err) || IsBudgetExhausted(err) ||
						errors.Is(err, rpcx.ErrTimeout):
						otherTyped.Add(1)
					default:
						t.Errorf("%s: client %d req %d: unexpected error class: %v", phase, c, i, err)
					}
				}
			}(c)
		}
		wg.Wait()
	}

	// Phase 1 — storm off: everything serves.
	runWave("baseline", baselineReqs, 0)
	if got := successes.Load(); got != numClients*baselineReqs {
		t.Fatalf("baseline: %d/%d served", got, numClients*baselineReqs)
	}

	// Phase 2 — storm: drive concurrent waves until the injector has fired
	// enough to mean something (bounded by maxWaves).
	storm.Store(true)
	waves := 0
	for ; waves < maxWaves && injected.Load() < minInjected; waves++ {
		runWave("storm", waveReqs, int64(10000*(waves+1)))
	}
	storm.Store(false)
	if injected.Load() < minInjected {
		t.Fatalf("injector fired %d times across %d storm waves — test exercised nothing",
			injected.Load(), waves)
	}

	// Phase 3 — recovery: sequential requests, no contention, must all serve.
	for i := 0; i < recoveryReqs; i++ {
		if _, err := g.Submit(testInput(int64(900000+i)), latSLO(sloMs)); err != nil {
			t.Fatalf("recovery request %d: %v", i, err)
		}
	}

	g.Close(10 * time.Second)
	st := g.Stats()
	ss := sched.Stats()
	t.Logf("panic storm: injected=%d waves=%d success=%d panics-seen=%d other-typed=%d; "+
		"sched panics=%d cuts=%d limit=%d; stats=%+v",
		injected.Load(), waves, successes.Load(), panicsSeen.Load(), otherTyped.Load(),
		ss.Panics, ss.LimiterCuts, ss.LimiterLimit, st)

	// Every injected panic surfaced as a typed response, and the counters saw
	// them at both layers.
	if st.RemotePanics == 0 || ss.Panics == 0 {
		t.Fatalf("injected %d panics but none counted: serve=%d sched=%d",
			injected.Load(), st.RemotePanics, ss.Panics)
	}
	// The limiters treated panics as congestion and clamped at least once.
	if ss.LimiterCuts == 0 {
		t.Fatalf("no limiter cut despite %d panics: %+v", injected.Load(), ss)
	}
	// The ledger balances: nothing vanished during the storm.
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	// Panics are not member death: both daemons answered heartbeats all along.
	for dev := 0; dev < 2; dev++ {
		if m.StateOf(dev) != cluster.Up {
			t.Fatalf("device %d is %v under panics alone, want Up", dev, m.StateOf(dev))
		}
	}
	if c := m.CountersSnapshot(); c.Downs != 0 {
		t.Fatalf("detector saw %d member deaths during a panic storm", c.Downs)
	}
}
