package serve

import (
	"errors"
	"net"
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// TestChaosCorruption drives the gateway through sustained load while the
// uplink to both devices flips bits (netem SetCorrupt at the paper-realistic
// 1e-3 per write), then clears the fault. The integrity contract, end to end:
//
//   - zero corrupted payloads reach callers: every served response is
//     bit-identical to the clean-network golden logits; every failure is a
//     typed error class, never silent garbage;
//   - corruption is detected (CorruptFrames observable via serve stats) and
//     recovered (poison → re-dial → retry), so Redials > 0 while Failed == 0;
//   - corruption is a link fault, not a device fault: the failure detector
//     keeps both devices Up and no failover fires;
//   - when the corruption clears, throughput fully recovers.
func TestChaosCorruption(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		corruptRate  = 1e-3
		baselineReqs = 5
		maxCorrupted = 4000 // hard cap on the corruption-phase request count
		recoveryReqs = 20
		sloMs        = 10000
	)
	a := supernet.TinyArch(4)
	net1 := supernet.New(a, 404)

	startDaemon := func() (*rpcx.Server, string) {
		srv := rpcx.NewServer()
		runtime.NewExecutor(net1).Register(srv)
		monitor.RegisterHandlers(srv)
		cluster.NewNode().Register(srv)
		got, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		return srv, got
	}
	srv1, addr1 := startDaemon()
	defer srv1.Close()
	srv2, addr2 := startDaemon()
	defer srv2.Close()

	// Data clients ride netem fault-injecting conns so SetCorrupt can flip
	// bits on the uplink. rpcx.Dial wouldn't route writes through the
	// injector, so the conn is wrapped by hand and SetDialer keeps re-dials
	// inside the same corrupting link — recovery must work *through* the
	// fault, not around it.
	sh1 := netem.NewShaper(0, 0)
	sh2 := netem.NewShaper(0, 0)
	dialData := func(addr string, sh *netem.Shaper) *rpcx.Client {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		c := rpcx.NewClient(netem.NewConn(conn, sh), nil)
		c.SetDialer(func() (net.Conn, error) {
			nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return netem.NewConn(nc, sh), nil
		})
		c.SetChecksum(true)
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 4, BaseBackoff: 2 * time.Millisecond})
		c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
		return c
	}
	data1, data2 := dialData(addr1, sh1), dialData(addr2, sh2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net1, []*rpcx.Client{data1, data2})
	// Bounds the rare hang where a bit flip lands in a frame's length prefix
	// and the server waits for bytes that never come.
	sched.RemoteTimeout = 2 * time.Second

	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	})
	rt := runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 1)
	rt.SetLinkState(1, 100, 1)
	rt.SetSLO(latSLO(sloMs))

	// Heartbeats ride dedicated clean connections: bit flips on the data
	// path must read as link corruption, never as device death.
	hbDial := func(addr string) *rpcx.Client {
		c, err := rpcx.Dial(addr, nil)
		if err != nil {
			t.Fatalf("dial hb %s: %v", addr, err)
		}
		c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
		c.MarkIdempotent(monitor.PingMethod)
		return c
	}
	hb1, hb2 := hbDial(addr1), hbDial(addr2)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	// MaxRung -1 pins full quality: with degradation off and a fixed input,
	// every served response must be bit-identical to the golden logits.
	g := New(rt, Options{
		Workers: 1, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 32,
		MaxRung: -1,
	})
	defer g.Close(5 * time.Second)
	g.AttachCluster(m)
	m.Start()

	input := testInput(7)
	sameLogits := func(a, b []float32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	// Phase 1 — clean network: capture the golden logits for the fixed input.
	var golden []float32
	for i := 0; i < baselineReqs; i++ {
		out, err := g.Submit(input, latSLO(sloMs))
		if err != nil {
			t.Fatalf("baseline request %d: %v", i, err)
		}
		if golden == nil {
			golden = append([]float32(nil), out.Logits.Data...)
		} else if !sameLogits(golden, out.Logits.Data) {
			t.Fatalf("baseline logits not deterministic at request %d", i)
		}
	}

	// Phase 2 — both uplinks flip bits at 1e-3 per write. Drive load until
	// at least two corruptions were detected end to end (bounded by
	// maxCorrupted); every success must match golden, every failure must be
	// a typed error class.
	sh1.SetCorrupt(corruptRate, 42)
	sh2.SetCorrupt(corruptRate, 43)
	sent := 0
	for ; sent < maxCorrupted; sent++ {
		out, err := g.Submit(input, latSLO(sloMs))
		if err != nil {
			if !IsCorruptFrame(err) && !IsBudgetExhausted(err) && !IsDeadlineMissed(err) &&
				!IsShed(err) && !errors.Is(err, rpcx.ErrTimeout) {
				t.Fatalf("corruption-phase request %d: unexpected error class: %v", sent, err)
			}
			continue
		}
		if !sameLogits(golden, out.Logits.Data) {
			t.Fatalf("corrupted payload reached a caller at request %d", sent)
		}
		if sched.Stats().CorruptFrames >= 2 {
			sent++
			break
		}
	}
	if sh1.Corruptions()+sh2.Corruptions() == 0 {
		t.Fatalf("injector never fired across %d requests — test exercised nothing", sent)
	}

	// Phase 3 — fault clears: every request serves clean again.
	sh1.SetCorrupt(0, 0)
	sh2.SetCorrupt(0, 0)
	for i := 0; i < recoveryReqs; i++ {
		out, err := g.Submit(input, latSLO(sloMs))
		if err != nil {
			t.Fatalf("recovery request %d: %v", i, err)
		}
		if !sameLogits(golden, out.Logits.Data) {
			t.Fatalf("recovery request %d served wrong logits", i)
		}
	}

	st := g.Stats()
	ss := sched.Stats()
	if ss.CorruptFrames < 2 {
		t.Fatalf("detected %d corrupt frames across %d requests (injector fired %d/%d times); "+
			"raise maxCorrupted or check detection: %+v",
			ss.CorruptFrames, sent, sh1.Corruptions(), sh2.Corruptions(), ss)
	}
	if st.CorruptFrames != ss.CorruptFrames || st.Redials != ss.Redials {
		t.Fatalf("gateway stats do not mirror scheduler integrity counters: %+v vs %+v", st, ss)
	}
	if ss.Redials == 0 {
		t.Fatalf("corruption detected but no connection was re-dialed: %+v", ss)
	}
	// Corruption was recovered, not surfaced: with idempotent retries every
	// admitted request must have completed or failed typed — never Failed.
	if st.Failed != 0 {
		t.Fatalf("corruption produced Failed=%d, want 0: %+v", st.Failed, st)
	}
	// A link that corrupts frames is not a dead device.
	if st.FailoverAttempts != 0 {
		t.Fatalf("corruption triggered failover: %+v", st)
	}
	for dev := 0; dev < 2; dev++ {
		if m.StateOf(dev) != cluster.Up {
			t.Fatalf("device %d is %v under corruption alone, want Up", dev, m.StateOf(dev))
		}
	}
	if h := rt.HealthyDevices(); !h[0] || !h[1] {
		t.Fatalf("healthy map %v under corruption alone", h)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken: %+v", st)
	}
}
