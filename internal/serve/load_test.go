package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/tensor"
	"murmuration/internal/testutil"
)

// TestServeUnderLoad fires N concurrent clients at a gateway over real rpcx
// sockets and checks the serving invariants: every request gets exactly one
// outcome, every admitted latency-SLO request either makes its budget or is
// explicitly counted in DeadlineMissed/Dropped, shedding is counted, and
// nothing grows without bound. Run under -race this is the subsystem's
// concurrency test.
func TestServeUnderLoad(t *testing.T) {
	testutil.CheckGoroutines(t)
	const (
		numClients    = 40 // 32 latency-SLO + 8 accuracy/best-effort
		reqsPerClient = 3
		latencyMs     = 4000 // generous: the race detector slows inference ~10x
	)

	g := New(newTestRuntime(100, nil), Options{
		Workers:    2,
		MaxBatch:   8,
		MaxLinger:  time.Millisecond,
		QueueDepth: 16,
	})
	srv := rpcx.NewServer()
	g.Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		success, shed, missed, late, otherErr atomic.Uint64
		latencySuccess                        atomic.Uint64
	)
	var wg sync.WaitGroup
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := DialClient(addr)
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			slo := latSLO(latencyMs)
			isLatency := c < 32
			if !isLatency {
				if c%2 == 0 {
					slo = runtime.SLO{Type: env.AccuracySLO, Value: 75}
				} else {
					slo = latSLO(0) // best-effort
				}
			}
			for i := 0; i < reqsPerClient; i++ {
				x := tensor.New(1, 3, 32, 32)
				x.RandNormal(rng, 0.5)
				res, err := cl.Infer(x, slo, 60*time.Second)
				switch {
				case err == nil:
					success.Add(1)
					if isLatency {
						latencySuccess.Add(1)
						if res.QueueWait+res.ExecTime > latencyMs*time.Millisecond {
							late.Add(1)
						}
					}
					if res.Logits == nil || res.Logits.Shape[1] != 4 {
						t.Errorf("client %d: bad logits %v", c, res.Logits)
					}
					if res.BatchSize < 1 || res.BatchSize > 8 {
						t.Errorf("client %d: batch size %d out of [1,8]", c, res.BatchSize)
					}
				case IsShed(err):
					shed.Add(1)
				case IsDeadlineMissed(err):
					missed.Add(1)
				default:
					otherErr.Add(1)
					t.Errorf("client %d req %d: unexpected error %v", c, i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	g.Close(30 * time.Second)

	st := g.Stats()
	const total = uint64(numClients * reqsPerClient)
	t.Logf("load: %d requests → success=%d (latency %d) shed=%d missed=%d late=%d; stats=%+v",
		total, success.Load(), latencySuccess.Load(), shed.Load(), missed.Load(), late.Load(), st)

	// Every request got exactly one definitive outcome.
	if got := success.Load() + shed.Load() + missed.Load() + otherErr.Load(); got != total {
		t.Fatalf("outcomes %d != requests %d", got, total)
	}
	if otherErr.Load() != 0 {
		t.Fatalf("%d requests failed with unexpected errors", otherErr.Load())
	}
	// Admission accounting: nothing disappears silently.
	if st.Admitted+st.Shed != total {
		t.Fatalf("admitted %d + shed %d != %d attempts", st.Admitted, st.Shed, total)
	}
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	if st.Failed != 0 {
		t.Fatalf("%d executions failed", st.Failed)
	}
	if st.Shed != shed.Load() {
		t.Fatalf("server shed %d != client-observed shed %d", st.Shed, shed.Load())
	}
	if st.Dropped != missed.Load() {
		t.Fatalf("server dropped %d != client-observed deadline drops %d", st.Dropped, missed.Load())
	}
	// Every admitted latency-SLO request met its budget or is explicitly
	// counted: the server's DeadlineMissed covers every queue drop and every
	// late completion the clients saw (client µs truncation can only
	// undercount lateness, so >= is the tight safe bound).
	if st.DeadlineMissed < missed.Load()+late.Load() {
		t.Fatalf("DeadlineMissed %d does not cover drops %d + late completions %d",
			st.DeadlineMissed, missed.Load(), late.Load())
	}
	// Queues fully drained, bounded all along.
	for c := Class(0); c < numClasses; c++ {
		if st.QueueDepth[c] != 0 {
			t.Fatalf("queue %v not drained: %d", c, st.QueueDepth[c])
		}
	}
	if success.Load() == 0 {
		t.Fatal("no request succeeded — load test vacuous")
	}
	// Batching must have engaged under 40 concurrent clients.
	if st.Batches == 0 || st.BatchedRequests < st.Batches {
		t.Fatalf("batching counters implausible: %+v", st)
	}
	// The strategy cache should have been hit heavily (few distinct SLOs).
	if st.Cache.Hits == 0 {
		t.Fatal("strategy cache never hit under repeated SLOs")
	}
}

// TestGatewayOverRPCSingle exercises the wire protocol end to end: encoded
// image + SLO in, logits + timing out, stats over the wire.
func TestGatewayOverRPCSingle(t *testing.T) {
	g := New(newTestRuntime(101, nil), Options{Workers: 1})
	defer g.Close(time.Second)
	srv := rpcx.NewServer()
	g.Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	res, err := cl.Infer(testInput(200), latSLO(5000), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Logits == nil || res.Logits.Shape[0] != 1 || res.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits: %v", res.Logits)
	}
	if res.BatchSize != 1 || res.ExecTime <= 0 {
		t.Fatalf("bad timing/batch fields: %+v", res)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 || st.Served != 1 {
		t.Fatalf("wire stats: %+v, want admitted=1 served=1", st)
	}
	if st.Cache.Len == 0 {
		t.Fatal("wire stats cache snapshot empty after a resolve")
	}
}

// TestGatewayRejectsMalformedTensor sends a non-NCHW image over the wire and
// checks the gateway answers with an error — rather than panicking in the
// batching path — and keeps serving well-formed requests afterwards.
func TestGatewayRejectsMalformedTensor(t *testing.T) {
	g := New(newTestRuntime(102, nil), Options{Workers: 1})
	defer g.Close(time.Second)
	srv := rpcx.NewServer()
	g.Register(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for _, bad := range []*tensor.Tensor{
		tensor.New(5),         // rank 1
		tensor.New(3, 32, 32), // rank 3 (missing batch dim)
	} {
		if _, err := cl.Infer(bad, latSLO(5000), 30*time.Second); err == nil {
			t.Fatalf("rank-%d image must be rejected", bad.Rank())
		}
	}
	// The gateway survived and still serves valid traffic on the same conn.
	res, err := cl.Infer(testInput(201), latSLO(5000), 30*time.Second)
	if err != nil {
		t.Fatalf("valid request after malformed ones failed: %v", err)
	}
	if res.Logits == nil || res.Logits.Shape[1] != 4 {
		t.Fatalf("bad logits after recovery: %v", res.Logits)
	}
	if st := g.Stats(); st.Admitted != 1 || st.Served != 1 {
		t.Fatalf("malformed requests must be rejected pre-admission: %+v", st)
	}
}
