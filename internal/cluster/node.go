package cluster

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"murmuration/internal/monitor"
	"murmuration/internal/rpcx"
)

// InfoMethod is the RPC a device daemon serves so operators and gateways can
// read its liveness counters.
const InfoMethod = "cluster.info"

// Info is a device daemon's self-reported liveness snapshot.
type Info struct {
	Uptime     time.Duration
	Heartbeats uint64 // ping probes answered since start
}

// Node is the device-daemon side of the cluster layer: it answers heartbeat
// pings (taking over the monitor's ping endpoint with a counting handler)
// and serves an info endpoint with uptime and heartbeat totals.
type Node struct {
	start      time.Time
	heartbeats atomic.Uint64
}

// NewNode creates a node with its uptime clock starting now.
func NewNode() *Node {
	return &Node{start: time.Now()}
}

// Register installs the node's handlers. Call after monitor.RegisterHandlers
// so the counting ping handler replaces the plain echo.
func (n *Node) Register(s *rpcx.Server) {
	s.Handle(monitor.PingMethod, func(p []byte) ([]byte, error) {
		n.heartbeats.Add(1)
		return p, nil
	})
	s.Handle(InfoMethod, func(p []byte) ([]byte, error) {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(time.Since(n.start).Microseconds()))
		binary.LittleEndian.PutUint64(buf[8:], n.heartbeats.Load())
		return buf[:], nil
	})
}

// Heartbeats returns how many pings the node has answered.
func (n *Node) Heartbeats() uint64 { return n.heartbeats.Load() }

// FetchInfo queries a device daemon's info endpoint.
func FetchInfo(c *rpcx.Client, timeout time.Duration) (Info, error) {
	resp, err := c.CallTimeout(InfoMethod, nil, timeout)
	if err != nil {
		return Info{}, err
	}
	if len(resp) < 16 {
		return Info{}, fmt.Errorf("cluster: short info payload (%d bytes)", len(resp))
	}
	return Info{
		Uptime:     time.Duration(binary.LittleEndian.Uint64(resp[0:])) * time.Microsecond,
		Heartbeats: binary.LittleEndian.Uint64(resp[8:]),
	}, nil
}
