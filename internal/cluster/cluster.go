// Package cluster is Murmuration's membership and health layer: it turns
// device churn — the defining hazard of dynamic edge deployments — from a
// request-killing error into a reconfiguration event the runtime can adapt
// to, the same way it already adapts to bandwidth and delay drift.
//
// A Manager runs one heartbeat prober per remote device (reusing the
// monitor's ping endpoint), smooths observed RTTs with an EMA to derive an
// adaptive probe timeout, and drives a per-device state machine
//
//	Up ──(no heartbeat for SuspectAfter)──▶ Suspect
//	Suspect ──(no heartbeat for DownAfter)──▶ Down
//	Suspect/Down ──(heartbeat answered)──▶ Up
//
// State transitions are published to subscribers; the serving layer reacts
// to Down by invalidating cached strategies that place work on the lost
// device and re-resolving over the healthy subset, and to Up by
// reintegrating the device and re-warming the cache.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"murmuration/internal/monitor"
	"murmuration/internal/rpcx"
	"murmuration/internal/stats"
)

// State is the health of one cluster member.
type State int

// Member states, in increasing order of distrust.
const (
	Up State = iota
	Suspect
	Down
)

// String names the state for logs and stats.
func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return "unknown"
}

// Event is one state transition of one member.
type Event struct {
	// Member indexes the probed device (0-based remote index; the runtime's
	// placement device number is Member+1 because device 0 is local).
	Member int
	From   State
	To     State
	At     time.Time
	// Restart marks an incarnation change: the process answering heartbeats
	// is not the one that answered before, even if no heartbeat was ever
	// missed. Consumers must treat it as an atomic Down→Up — caches, wait
	// estimates, and negotiated capabilities for the member are stale.
	Restart bool
	// Incarnation is the member's current incarnation (0 when unknown or on
	// plain liveness transitions from probes that do not carry identity).
	Incarnation uint64
}

// ProbeFunc performs one heartbeat against a device, bounded by timeout, and
// returns the observed round-trip time plus the device's incarnation
// (0 when the probe path cannot learn identity — the member is then tracked
// for liveness only and restarts go undetected).
type ProbeFunc func(timeout time.Duration) (rtt time.Duration, incarnation uint64, err error)

// PingProbe adapts an rpcx client into a heartbeat probe against the
// device's monitor ping endpoint. The first probe performs the rpcx hello
// handshake — learning the peer's incarnation and arming automatic
// re-handshake on every re-dial — so each subsequent ping reports the
// incarnation of the process behind the live connection. The client should
// be dedicated to heartbeating (calls serialize per client, so sharing one
// with the data path would let a long inference inflate — or block — the
// heartbeat) and should have a retry policy installed so it re-dials a
// device that comes back after an outage.
func PingProbe(c *rpcx.Client) ProbeFunc {
	handshaken := false // probes for one member run serially in one goroutine
	return func(timeout time.Duration) (time.Duration, uint64, error) {
		start := time.Now()
		if !handshaken {
			if _, err := c.Handshake(timeout); err != nil {
				return 0, 0, err
			}
			handshaken = true
			return time.Since(start), c.RemoteIncarnation(), nil
		}
		if _, err := c.CallTimeout(monitor.PingMethod, []byte{0xB}, timeout); err != nil {
			return 0, 0, err
		}
		return time.Since(start), c.RemoteIncarnation(), nil
	}
}

// Options configures a Manager. Zero values select the defaults.
type Options struct {
	// HeartbeatInterval is the mean probe period per member (default 500ms).
	HeartbeatInterval time.Duration
	// JitterFrac randomizes each probe period by ±frac (default 0.2) so the
	// probers do not synchronize.
	JitterFrac float64
	// SuspectAfter demotes a member to Suspect when no heartbeat has been
	// answered for this long (default 4× the heartbeat interval).
	SuspectAfter time.Duration
	// DownAfter demotes a member to Down when no heartbeat has been answered
	// for this long (default 10× the heartbeat interval).
	DownAfter time.Duration
	// ProbeTimeout caps the per-probe deadline (default 2s). The effective
	// deadline adapts below the cap: RTTMultiplier × the EMA of observed
	// RTTs, floored at 20ms, so a fast LAN detects loss in tens of
	// milliseconds while a slow WAN is not falsely suspected.
	ProbeTimeout time.Duration
	// RTTMultiplier scales the smoothed RTT into the adaptive probe timeout
	// (default 6).
	RTTMultiplier float64
	// RTTClampFactor caps a single RTT sample's contribution to the smoothed
	// RTT at this multiple of the current estimate (default 3). Without the
	// clamp, one pathological probe — a GC pause, a retransmit — inflates
	// the EMA and with it the adaptive timeout, masking a genuinely
	// degrading device behind a self-raised bar. A sustained rise still
	// tracks: each sample may grow the estimate, just not explode it.
	RTTClampFactor float64
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.2
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 4 * o.HeartbeatInterval
	}
	if o.DownAfter <= o.SuspectAfter {
		o.DownAfter = 10 * o.HeartbeatInterval
		if o.DownAfter <= o.SuspectAfter {
			o.DownAfter = 2 * o.SuspectAfter
		}
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.RTTMultiplier <= 0 {
		o.RTTMultiplier = 6
	}
	if o.RTTClampFactor <= 1 {
		o.RTTClampFactor = 3
	}
	return o
}

// minAdaptiveTimeout floors the EMA-derived probe deadline.
const minAdaptiveTimeout = 20 * time.Millisecond

// member is the detector state for one device.
type member struct {
	probe       ProbeFunc
	state       State
	lastSuccess time.Time
	emaRTT      *stats.EMA
	rttSamples  int
	incarnation uint64 // last incarnation seen (0 = never learned)
}

// Counters is a snapshot of the manager's lifetime transition counts.
type Counters struct {
	Transitions uint64 // every state change
	Downs       uint64 // transitions into Down
	Recoveries  uint64 // transitions out of Down back to Up
	Restarts    uint64 // incarnation changes (silent restarts detected)
}

// Manager probes a set of devices and publishes health transitions.
type Manager struct {
	opts Options

	mu        sync.Mutex
	members   []*member
	subs      []chan Event
	batchSubs []chan []Event
	counters  Counters
	started   bool
	stopped   bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewManager creates a manager over one probe per device. Members start Up:
// a deployment begins from a working cluster, and a device that is already
// dead is demoted within DownAfter of Start.
func NewManager(probes []ProbeFunc, opts Options) *Manager {
	m := &Manager{opts: opts.withDefaults(), stop: make(chan struct{})}
	for _, p := range probes {
		m.members = append(m.members, &member{probe: p, state: Up, emaRTT: stats.NewEMA(0.3)})
	}
	return m
}

// N returns the number of tracked members.
func (m *Manager) N() int { return len(m.members) }

// Start launches one heartbeat loop per member. Idempotent.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	now := time.Now()
	for _, mb := range m.members {
		// The clock for "no heartbeat since" starts now, not at zero time:
		// otherwise the first failed probe of a dead device would jump
		// straight to Down without passing Suspect.
		mb.lastSuccess = now
	}
	m.mu.Unlock()
	for i := range m.members {
		m.wg.Add(1)
		go func(i int) {
			defer m.wg.Done()
			m.run(i)
		}(i)
	}
}

// Close stops the heartbeat loops, waits for them to exit, and closes every
// subscriber channel.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	m.wg.Wait()
	m.mu.Lock()
	for _, ch := range m.subs {
		close(ch)
	}
	m.subs = nil
	for _, ch := range m.batchSubs {
		close(ch)
	}
	m.batchSubs = nil
	m.mu.Unlock()
}

// Subscribe returns a channel of state-transition events. The channel is
// buffered (capacity 256); a subscriber that falls that far behind loses the
// oldest unread events rather than blocking the detector. It is closed by
// Close.
func (m *Manager) Subscribe() <-chan Event {
	ch := make(chan Event, 256)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, ch)
	return ch
}

// SubscribeBatch returns a channel of state-transition event batches: every
// transition the manager publishes in one call arrives as one slice, so a
// correlated loss of K members (MarkDownBatch) costs the subscriber one
// notification and one reconfiguration pass instead of K. Transitions
// published individually arrive as one-element batches. The channel is
// buffered (capacity 256) with the same drop-oldest overflow semantics as
// Subscribe, and is closed by Close.
func (m *Manager) SubscribeBatch() <-chan []Event {
	ch := make(chan []Event, 256)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSubs = append(m.batchSubs, ch)
	return ch
}

// StateOf returns the current state of member i (Down for out-of-range).
func (m *Manager) StateOf(i int) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.members) {
		return Down
	}
	return m.members[i].state
}

// Snapshot returns every member's current state.
func (m *Manager) Snapshot() []State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]State, len(m.members))
	for i, mb := range m.members {
		out[i] = mb.state
	}
	return out
}

// Counts returns how many members are currently in each state.
func (m *Manager) Counts() (up, suspect, down int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mb := range m.members {
		switch mb.state {
		case Up:
			up++
		case Suspect:
			suspect++
		case Down:
			down++
		}
	}
	return
}

// CountersSnapshot returns the lifetime transition counters.
func (m *Manager) CountersSnapshot() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// run is the heartbeat loop for member i.
func (m *Manager) run(i int) {
	rng := rand.New(rand.NewSource(int64(i)*7919 + time.Now().UnixNano()))
	for {
		t := time.NewTimer(monitor.Jittered(m.opts.HeartbeatInterval, m.opts.JitterFrac, rng))
		select {
		case <-m.stop:
			t.Stop()
			return
		case <-t.C:
		}
		rtt, inc, err := m.members[i].probe(m.adaptiveTimeout(i))
		if err != nil {
			m.ReportFailure(i)
		} else {
			m.ReportHeartbeat(i, rtt, inc)
		}
	}
}

// adaptiveTimeout derives the probe deadline for member i from its smoothed
// RTT (the EMA-timeout detector), capped at Options.ProbeTimeout.
func (m *Manager) adaptiveTimeout(i int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb := m.members[i]
	if mb.rttSamples == 0 {
		return m.opts.ProbeTimeout
	}
	// emaRTT holds nanoseconds (RTTs folded in as float64(rtt)).
	d := time.Duration(m.opts.RTTMultiplier * mb.emaRTT.Value())
	if d < minAdaptiveTimeout {
		d = minAdaptiveTimeout
	}
	if d > m.opts.ProbeTimeout {
		d = m.opts.ProbeTimeout
	}
	return d
}

// ReportSuccess folds in an answered heartbeat (or a passive success the
// data path observed) for member i: the member returns to Up if it was
// suspected or down. Identity-free — a success carrying an incarnation
// should go through ReportHeartbeat so restarts are detected.
func (m *Manager) ReportSuccess(i int, rtt time.Duration) {
	m.ReportHeartbeat(i, rtt, 0)
}

// ReportHeartbeat folds in an answered heartbeat that also carries the
// member's incarnation. A changed incarnation means the answering process is
// a different one than before — a silent restart — and is published as a
// restart event (atomically: the event's To is Up, and Restart is set, so a
// consumer performs its full Down→Up reconfiguration in one step). An
// incarnation of 0 means the probe path cannot learn identity; liveness is
// still folded in, restarts are simply not detectable on that path.
func (m *Manager) ReportHeartbeat(i int, rtt time.Duration, incarnation uint64) {
	m.mu.Lock()
	if i < 0 || i >= len(m.members) {
		m.mu.Unlock()
		return
	}
	mb := m.members[i]
	mb.lastSuccess = time.Now()
	sample := float64(rtt)
	if mb.rttSamples > 0 {
		// Outlier clamp: one slow probe may contribute at most
		// RTTClampFactor× the current estimate to the EMA.
		if cap := m.opts.RTTClampFactor * mb.emaRTT.Value(); sample > cap {
			sample = cap
		}
	}
	mb.emaRTT.Add(sample)
	mb.rttSamples++

	restarted := incarnation != 0 && mb.incarnation != 0 && incarnation != mb.incarnation
	if incarnation != 0 {
		mb.incarnation = incarnation
	}
	if restarted {
		// Publish exactly one event for the whole episode, whatever liveness
		// state the member was in: the consumer's restart handling subsumes a
		// plain recovery (it demotes, invalidates, and reinstates).
		ev := Event{Member: i, From: mb.state, To: Up, At: time.Now(),
			Restart: true, Incarnation: incarnation}
		m.counters.Restarts++
		m.counters.Transitions++
		if mb.state == Down {
			m.counters.Recoveries++
		}
		mb.state = Up
		m.mu.Unlock()
		m.publish(ev)
		return
	}
	ev, ok := m.transitionLocked(i, Up)
	if ok && incarnation != 0 {
		ev.Incarnation = incarnation
	}
	m.mu.Unlock()
	if ok {
		m.publish(ev)
	}
}

// IncarnationOf returns the last incarnation learned for member i (0 when
// never learned or out of range).
func (m *Manager) IncarnationOf(i int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.members) {
		return 0
	}
	return m.members[i].incarnation
}

// ReportFailure folds in a failed heartbeat — or a failure the data path
// observed, such as a remote tile call erroring — for member i. The member
// is demoted according to how long it has been silent; a data-path report
// therefore accelerates detection between heartbeats.
func (m *Manager) ReportFailure(i int) {
	m.mu.Lock()
	if i < 0 || i >= len(m.members) {
		m.mu.Unlock()
		return
	}
	mb := m.members[i]
	if mb.lastSuccess.IsZero() {
		mb.lastSuccess = time.Now()
	}
	silent := time.Since(mb.lastSuccess)
	next := mb.state
	switch {
	case silent >= m.opts.DownAfter:
		next = Down
	case silent >= m.opts.SuspectAfter:
		if next != Down {
			next = Suspect
		}
	default:
		// A failure with recent successes still raises suspicion once: the
		// data path does not report spuriously, and Suspect only biases the
		// detector to look harder — it does not evict the device.
		if next == Up {
			next = Suspect
		}
	}
	ev, ok := m.transitionLocked(i, next)
	m.mu.Unlock()
	if ok {
		m.publish(ev)
	}
}

// MarkDown forces member i straight to Down (operator action or an
// unambiguous external signal such as a connection-refused burst).
func (m *Manager) MarkDown(i int) {
	m.mu.Lock()
	if i < 0 || i >= len(m.members) {
		m.mu.Unlock()
		return
	}
	ev, ok := m.transitionLocked(i, Down)
	m.mu.Unlock()
	if ok {
		m.publish(ev)
	}
}

// MarkDownBatch forces every listed member straight to Down in one pass and
// publishes all resulting transitions as a single batch: the notification a
// correlated kill produces is one event carrying K members, not K events
// racing each other through subscribers. Members already Down (or out of
// range) contribute no transition; an empty batch publishes nothing.
func (m *Manager) MarkDownBatch(members []int) {
	m.mu.Lock()
	var evs []Event
	for _, i := range members {
		if i < 0 || i >= len(m.members) {
			continue
		}
		if ev, ok := m.transitionLocked(i, Down); ok {
			evs = append(evs, ev)
		}
	}
	m.mu.Unlock()
	if len(evs) == 0 {
		return
	}
	for _, ev := range evs {
		m.publishSingles(ev)
	}
	m.publishBatches(evs)
}

// MarkUpBatch forces every listed member straight to Up in one pass and
// publishes all resulting transitions as a single batch — the recovery-storm
// mirror of MarkDownBatch. It exists for scripted mass recovery (rack power
// restored, partition healed by an operator): the scenario knows the devices
// are live the instant it revives them, and delivering the K recoveries as
// one batch lets the consumer stagger reintegration instead of reacting to K
// independent Up events trickling in on heartbeat cadence. Organic recovery
// should keep flowing through heartbeats — this is an override, not the
// detector. Members already Up (or out of range) contribute no transition.
func (m *Manager) MarkUpBatch(members []int) {
	m.mu.Lock()
	var evs []Event
	for _, i := range members {
		if i < 0 || i >= len(m.members) {
			continue
		}
		if ev, ok := m.transitionLocked(i, Up); ok {
			// The member answered nothing yet; restart the silence clock so
			// the next probe failure walks Up→Suspect→Down rather than
			// re-demoting instantly off a stale lastSuccess.
			m.members[i].lastSuccess = time.Now()
			if inc := m.members[i].incarnation; inc != 0 {
				ev.Incarnation = inc
			}
			evs = append(evs, ev)
		}
	}
	m.mu.Unlock()
	if len(evs) == 0 {
		return
	}
	for _, ev := range evs {
		m.publishSingles(ev)
	}
	m.publishBatches(evs)
}

// transitionLocked moves member i to state next, updating counters, and
// returns the event to publish. Caller holds m.mu.
func (m *Manager) transitionLocked(i int, next State) (Event, bool) {
	mb := m.members[i]
	if mb.state == next {
		return Event{}, false
	}
	ev := Event{Member: i, From: mb.state, To: next, At: time.Now()}
	m.counters.Transitions++
	if next == Down {
		m.counters.Downs++
	}
	if mb.state == Down && next == Up {
		m.counters.Recoveries++
	}
	mb.state = next
	return ev, true
}

// publish fans an event out to subscribers without blocking the detector: a
// full channel sheds its oldest event to make room for the newest, so
// subscribers always converge on the latest state. Batch subscribers see the
// event as a one-element batch.
func (m *Manager) publish(ev Event) {
	m.publishSingles(ev)
	m.publishBatches([]Event{ev})
}

// publishSingles delivers one event to the per-event subscribers.
func (m *Manager) publishSingles(ev Event) {
	m.mu.Lock()
	subs := append([]chan Event(nil), m.subs...)
	m.mu.Unlock()
	for _, ch := range subs {
		sent := false
		for tries := 0; !sent && tries < 4; tries++ {
			select {
			case ch <- ev:
				sent = true
			default:
				select {
				case <-ch: // drop oldest to make room
				default:
				}
			}
		}
	}
}

// publishBatches delivers one batch of same-tick transitions to the batch
// subscribers, with the same non-blocking drop-oldest overflow handling.
func (m *Manager) publishBatches(evs []Event) {
	m.mu.Lock()
	subs := append([]chan []Event(nil), m.batchSubs...)
	m.mu.Unlock()
	for _, ch := range subs {
		sent := false
		for tries := 0; !sent && tries < 4; tries++ {
			select {
			case ch <- evs:
				sent = true
			default:
				select {
				case <-ch: // drop oldest to make room
				default:
				}
			}
		}
	}
}

// String renders a snapshot like "up:2 suspect:0 down:1" for logs.
func (m *Manager) String() string {
	up, suspect, down := m.Counts()
	return fmt.Sprintf("up:%d suspect:%d down:%d", up, suspect, down)
}
