package cluster

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/monitor"
	"murmuration/internal/rpcx"
	"murmuration/internal/testutil"
)

// scriptedProbe is a ProbeFunc whose outcome tests flip at will.
type scriptedProbe struct {
	fail atomic.Bool
	rtt  time.Duration
	inc  atomic.Uint64
}

func (p *scriptedProbe) fn(timeout time.Duration) (time.Duration, uint64, error) {
	if p.fail.Load() {
		return 0, 0, errors.New("probe: scripted failure")
	}
	return p.rtt, p.inc.Load(), nil
}

// waitState polls until member i reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, i int, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.StateOf(i) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("member %d never reached %v (now %v)", i, want, m.StateOf(i))
}

// fastOpts makes the detector converge in tens of milliseconds for tests.
func fastOpts() Options {
	return Options{
		HeartbeatInterval: 5 * time.Millisecond,
		JitterFrac:        0.2,
		SuspectAfter:      25 * time.Millisecond,
		DownAfter:         60 * time.Millisecond,
		ProbeTimeout:      50 * time.Millisecond,
	}
}

// TestStateMachineFullCycle drives Up → Suspect → Down → Up through probe
// outcomes and checks the published events and counters.
func TestStateMachineFullCycle(t *testing.T) {
	p := &scriptedProbe{rtt: time.Millisecond}
	m := NewManager([]ProbeFunc{p.fn}, fastOpts())
	events := m.Subscribe()
	m.Start()
	defer m.Close()

	if m.StateOf(0) != Up {
		t.Fatalf("members must start Up, got %v", m.StateOf(0))
	}
	// Let a few successes land so the EMA timeout has samples.
	time.Sleep(30 * time.Millisecond)

	p.fail.Store(true)
	waitState(t, m, 0, Suspect)
	waitState(t, m, 0, Down)

	p.fail.Store(false)
	waitState(t, m, 0, Up)

	c := m.CountersSnapshot()
	if c.Downs != 1 || c.Recoveries != 1 {
		t.Fatalf("counters after one churn cycle: %+v", c)
	}
	if c.Transitions < 3 {
		t.Fatalf("expected >=3 transitions, got %d", c.Transitions)
	}

	// The event stream saw the full cycle in order.
	var seq []State
	timeout := time.After(2 * time.Second)
	for len(seq) < 3 {
		select {
		case ev := <-events:
			seq = append(seq, ev.To)
		case <-timeout:
			t.Fatalf("event stream incomplete: %v", seq)
		}
	}
	if seq[0] != Suspect || seq[1] != Down || seq[2] != Up {
		t.Fatalf("transition order %v, want [suspect down up]", seq)
	}
}

// TestSuspectRecoversWithoutDown: a brief glitch (one failed probe window)
// must not reach Down.
func TestSuspectRecoversWithoutDown(t *testing.T) {
	p := &scriptedProbe{rtt: time.Millisecond}
	opts := fastOpts()
	opts.DownAfter = 10 * time.Second // effectively unreachable here
	m := NewManager([]ProbeFunc{p.fn}, opts)
	m.Start()
	defer m.Close()
	time.Sleep(20 * time.Millisecond)

	p.fail.Store(true)
	waitState(t, m, 0, Suspect)
	p.fail.Store(false)
	waitState(t, m, 0, Up)

	c := m.CountersSnapshot()
	if c.Downs != 0 {
		t.Fatalf("brief glitch reached Down: %+v", c)
	}
}

// TestReportFailureAcceleratesDetection: a data-path failure report demotes
// a member to Suspect immediately, without waiting for the prober.
func TestReportFailureAcceleratesDetection(t *testing.T) {
	p := &scriptedProbe{rtt: time.Millisecond}
	opts := fastOpts()
	opts.HeartbeatInterval = time.Hour // prober effectively off
	opts.SuspectAfter = time.Hour
	opts.DownAfter = 2 * time.Hour
	m := NewManager([]ProbeFunc{p.fn}, opts)
	m.Start()
	defer m.Close()

	m.ReportFailure(0)
	if got := m.StateOf(0); got != Suspect {
		t.Fatalf("data-path failure should suspect immediately, got %v", got)
	}
	m.ReportSuccess(0, time.Millisecond)
	if got := m.StateOf(0); got != Up {
		t.Fatalf("success should clear suspicion, got %v", got)
	}
	m.MarkDown(0)
	if got := m.StateOf(0); got != Down {
		t.Fatalf("MarkDown ignored, got %v", got)
	}
}

// TestCountsAndSnapshot covers the aggregate views.
func TestCountsAndSnapshot(t *testing.T) {
	a := &scriptedProbe{rtt: time.Millisecond}
	b := &scriptedProbe{rtt: time.Millisecond}
	opts := fastOpts()
	opts.HeartbeatInterval = time.Hour
	m := NewManager([]ProbeFunc{a.fn, b.fn}, opts)
	m.Start()
	defer m.Close()

	m.MarkDown(1)
	up, suspect, down := m.Counts()
	if up != 1 || suspect != 0 || down != 1 {
		t.Fatalf("counts %d/%d/%d, want 1/0/1", up, suspect, down)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0] != Up || snap[1] != Down {
		t.Fatalf("snapshot %v", snap)
	}
	if m.String() != "up:1 suspect:0 down:1" {
		t.Fatalf("String() = %q", m.String())
	}
	if m.StateOf(99) != Down {
		t.Fatal("out-of-range member must read as Down")
	}
}

// TestPingProbeAgainstRealDaemon runs the heartbeat against a live rpcx
// server, kills it, waits for Down, restarts it on the same address, and
// waits for reintegration — the detector's end-to-end contract.
func TestPingProbeAgainstRealDaemon(t *testing.T) {
	testutil.CheckGoroutines(t)
	srv := rpcx.NewServer()
	monitor.RegisterHandlers(srv)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	hb, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	// Re-dial so the prober can reconnect once the daemon returns.
	hb.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 1})

	opts := fastOpts()
	opts.HeartbeatInterval = 10 * time.Millisecond
	opts.SuspectAfter = 50 * time.Millisecond
	opts.DownAfter = 120 * time.Millisecond
	m := NewManager([]ProbeFunc{PingProbe(hb)}, opts)
	events := m.Subscribe()
	m.Start()
	defer m.Close()

	time.Sleep(40 * time.Millisecond) // healthy heartbeats flow
	if m.StateOf(0) != Up {
		t.Fatalf("live daemon not Up: %v", m.StateOf(0))
	}

	srv.Close()
	waitState(t, m, 0, Down)

	srv2 := rpcx.NewServer()
	monitor.RegisterHandlers(srv2)
	if _, err := srv2.Listen(addr); err != nil {
		t.Fatalf("re-listen %s: %v", addr, err)
	}
	defer srv2.Close()
	waitState(t, m, 0, Up)

	if c := m.CountersSnapshot(); c.Downs < 1 || c.Recoveries < 1 {
		t.Fatalf("churn counters: %+v", c)
	}
	// Drain events: at least one Down and one Up must have been published.
	sawDown, sawUp := false, false
	for {
		select {
		case ev := <-events:
			if ev.To == Down {
				sawDown = true
			}
			if ev.To == Up && ev.From != Up {
				sawUp = true
			}
		default:
			if !sawDown || !sawUp {
				t.Fatalf("event stream missed transitions: down=%v up=%v", sawDown, sawUp)
			}
			return
		}
	}
}

// TestIncarnationChangePublishesRestart: a changed incarnation on an
// otherwise-healthy member (no heartbeat ever missed) must surface as a
// Restart event with the new incarnation, and bump the Restarts counter.
func TestIncarnationChangePublishesRestart(t *testing.T) {
	p := &scriptedProbe{rtt: time.Millisecond}
	first := uint64(1)<<48 | 5
	p.inc.Store(first)
	m := NewManager([]ProbeFunc{p.fn}, fastOpts())
	events := m.Subscribe()
	m.Start()
	defer m.Close()

	deadline := time.Now().Add(5 * time.Second)
	for m.IncarnationOf(0) != first {
		if time.Now().After(deadline) {
			t.Fatal("incarnation never learned")
		}
		time.Sleep(2 * time.Millisecond)
	}

	second := uint64(2)<<48 | 9
	p.inc.Store(second) // silent restart: probes keep succeeding

	timeout := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if !ev.Restart {
				continue // ignore plain liveness transitions
			}
			if ev.Member != 0 || ev.To != Up || ev.Incarnation != second {
				t.Fatalf("bad restart event: %+v", ev)
			}
			if c := m.CountersSnapshot(); c.Restarts == 0 {
				t.Fatal("Restarts counter not bumped")
			}
			if m.StateOf(0) != Up {
				t.Fatalf("member should stay Up, got %v", m.StateOf(0))
			}
			if m.IncarnationOf(0) != second {
				t.Fatalf("IncarnationOf = %#x, want %#x", m.IncarnationOf(0), second)
			}
			return
		case <-timeout:
			t.Fatal("no restart event published")
		}
	}
}

// TestNodeInfo: the daemon-side node counts heartbeats and serves uptime.
func TestNodeInfo(t *testing.T) {
	srv := rpcx.NewServer()
	monitor.RegisterHandlers(srv)
	node := NewNode()
	node.Register(srv) // counting ping replaces the plain echo
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := rpcx.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	probe := PingProbe(cl)
	// First probe is the hello handshake (not a ping); the node's heartbeat
	// counter only sees the three pings that follow.
	for i := 0; i < 4; i++ {
		if _, _, err := probe(time.Second); err != nil {
			t.Fatal(err)
		}
	}
	info, err := FetchInfo(cl, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Heartbeats != 3 {
		t.Fatalf("heartbeats %d, want 3", info.Heartbeats)
	}
	if info.Uptime <= 0 {
		t.Fatalf("uptime %v", info.Uptime)
	}
	if node.Heartbeats() != 3 {
		t.Fatalf("node counter %d", node.Heartbeats())
	}
}

// TestSubscribeAfterCloseAndDoubleClose: lifecycle edges must not panic.
func TestLifecycleEdges(t *testing.T) {
	testutil.CheckGoroutines(t)
	p := &scriptedProbe{rtt: time.Millisecond}
	m := NewManager([]ProbeFunc{p.fn}, fastOpts())
	m.Start()
	m.Start() // idempotent
	ch := m.Subscribe()
	m.Close()
	m.Close() // idempotent
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel should be closed after Close")
	}
	// Reports after close are harmless no-ops on live state.
	m.ReportFailure(0)
	m.ReportSuccess(0, time.Millisecond)
}

// TestAdaptiveTimeoutResistsOutlierPoisoning feeds the detector an
// adversarial RTT sequence: a steady 1ms baseline salted with 2s outliers.
// Without the per-sample clamp a single outlier multiplies the EMA by ~600×
// and the adaptive timeout saturates at ProbeTimeout, masking a genuinely
// degrading device; with it, the timeout must stay within a small multiple
// of the honest baseline.
func TestAdaptiveTimeoutResistsOutlierPoisoning(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	p := &scriptedProbe{rtt: time.Millisecond}
	m := NewManager([]ProbeFunc{p.fn}, Options{
		HeartbeatInterval: 10 * time.Millisecond,
		ProbeTimeout:      2 * time.Second,
	})
	// Prime the estimate with an honest baseline.
	for i := 0; i < 20; i++ {
		m.ReportSuccess(0, time.Millisecond)
	}
	base := m.adaptiveTimeout(0)

	// One pathological probe.
	m.ReportSuccess(0, 2*time.Second)
	if got := m.adaptiveTimeout(0); got > 4*base {
		t.Fatalf("single outlier inflated timeout %v -> %v (>4x)", base, got)
	}

	// An adversarial alternation: every other sample is a 2s outlier. The
	// clamp bounds each outlier's contribution, and the interleaved honest
	// samples keep pulling the estimate back down, so the timeout stays far
	// below what an unclamped EMA would reach (~RTTMultiplier x 1s cap).
	for i := 0; i < 10; i++ {
		m.ReportSuccess(0, 2*time.Second)
		m.ReportSuccess(0, time.Millisecond)
	}
	if got := m.adaptiveTimeout(0); got > 100*time.Millisecond {
		t.Fatalf("alternating outliers poisoned timeout to %v, want <= 100ms", got)
	}

	// A sustained, genuine rise must still track: the clamp slows the climb
	// but cannot freeze it.
	for i := 0; i < 50; i++ {
		m.ReportSuccess(0, 100*time.Millisecond)
	}
	if got := m.adaptiveTimeout(0); got < 300*time.Millisecond {
		t.Fatalf("clamp froze adaptation: timeout %v after sustained 100ms RTTs", got)
	}
}
