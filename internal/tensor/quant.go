package tensor

import (
	"fmt"
	"math"
)

// Bitwidth is an activation quantization bitwidth supported by the supernet's
// feature-map quantization search space (paper §4.1).
type Bitwidth int

// Supported bitwidths. Bits32 is the identity (no quantization).
const (
	Bits8  Bitwidth = 8
	Bits16 Bitwidth = 16
	Bits32 Bitwidth = 32
)

// Valid reports whether b is one of the supported bitwidths.
func (b Bitwidth) Valid() bool { return b == Bits8 || b == Bits16 || b == Bits32 }

// BytesPerElement returns the wire size of one quantized element.
func (b Bitwidth) BytesPerElement() int { return int(b) / 8 }

// Quantized is a symmetric uniformly quantized tensor: value ≈ scale · q,
// with q an integer code of the given bitwidth. The 32-bit case stores the
// raw floats and is lossless.
type Quantized struct {
	Shape []int
	Bits  Bitwidth
	Scale float32
	// Exactly one of the following is populated, matching Bits.
	Q8  []int8
	Q16 []int16
	F32 []float32
}

// Quantize converts t to a Quantized representation at the given bitwidth
// using symmetric per-tensor scaling.
func Quantize(t *Tensor, bits Bitwidth) *Quantized {
	if !bits.Valid() {
		panic(fmt.Sprintf("tensor: unsupported bitwidth %d", bits))
	}
	q := &Quantized{Shape: append([]int(nil), t.Shape...), Bits: bits}
	switch bits {
	case Bits32:
		q.F32 = append([]float32(nil), t.Data...)
		q.Scale = 1
		return q
	case Bits8:
		maxAbs := t.MaxAbs()
		if maxAbs == 0 {
			q.Scale = 1
			q.Q8 = make([]int8, len(t.Data))
			return q
		}
		q.Scale = maxAbs / 127
		q.Q8 = make([]int8, len(t.Data))
		inv := 1 / q.Scale
		for i, v := range t.Data {
			q.Q8[i] = int8(clampRound(float64(v*inv), -127, 127))
		}
		return q
	default: // Bits16
		maxAbs := t.MaxAbs()
		if maxAbs == 0 {
			q.Scale = 1
			q.Q16 = make([]int16, len(t.Data))
			return q
		}
		q.Scale = maxAbs / 32767
		q.Q16 = make([]int16, len(t.Data))
		inv := 1 / q.Scale
		for i, v := range t.Data {
			q.Q16[i] = int16(clampRound(float64(v*inv), -32767, 32767))
		}
		return q
	}
}

func clampRound(v, lo, hi float64) float64 {
	v = math.Round(v)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Dequantize reconstructs a float32 tensor from q.
func (q *Quantized) Dequantize() *Tensor {
	t := New(q.Shape...)
	switch q.Bits {
	case Bits32:
		copy(t.Data, q.F32)
	case Bits8:
		for i, v := range q.Q8 {
			t.Data[i] = float32(v) * q.Scale
		}
	case Bits16:
		for i, v := range q.Q16 {
			t.Data[i] = float32(v) * q.Scale
		}
	}
	return t
}

// Len returns the number of elements.
func (q *Quantized) Len() int {
	n := 1
	for _, s := range q.Shape {
		n *= s
	}
	return n
}

// WireBytes returns the payload size of the quantized codes on the wire,
// excluding the small header (shape + scale). This is the quantity the
// latency model charges to the network.
func (q *Quantized) WireBytes() int { return q.Len() * q.Bits.BytesPerElement() }

// MaxQuantError returns the worst-case absolute reconstruction error bound
// for quantizing a tensor whose max absolute value is maxAbs at bitwidth b:
// half a quantization step.
func MaxQuantError(maxAbs float32, b Bitwidth) float32 {
	// The 1.05 factor absorbs float32 rounding in scale multiplication,
	// which matters at 16 bits where the step is near float32 precision.
	switch b {
	case Bits8:
		return maxAbs / 127 / 2 * 1.05
	case Bits16:
		return maxAbs / 32767 / 2 * 1.05
	default:
		return 0
	}
}
