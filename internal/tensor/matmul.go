package tensor

import "fmt"

// MatMul computes C = A·B for A (m×k) and B (k×n), returning a new m×n
// tensor. Rows of the output are computed in parallel.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing m×n tensor, overwriting it.
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	ad, bd, cd := a.Data, b.Data, c.Data
	parallelFor(m, func(rs, re int) {
		for i := rs; i < re; i++ {
			ci := cd[i*n : (i+1)*n]
			for x := range ci {
				ci[x] = 0
			}
			ai := ad[i*k : (i+1)*k]
			// Loop order i-k-j streams B rows and keeps the inner loop
			// vectorizable.
			for p := 0; p < k; p++ {
				av := ai[p]
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
	})
}

// MatMulTransB computes C = A·Bᵀ for A (m×k) and B (n×k), returning m×n.
// This layout is the natural one for linear-layer weight matrices stored as
// (out, in).
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransB requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	parallelFor(m, func(rs, re int) {
		for i := rs; i < re; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				var s float32
				for p := range ai {
					s += ai[p] * bj[p]
				}
				ci[j] = s
			}
		}
	})
	return c
}

// MatMulTransA computes C = Aᵀ·B for A (k×m) and B (k×n), returning m×n.
// Used for weight gradients (xᵀ · dy).
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulTransA requires rank-2 operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.Data, b.Data, c.Data
	parallelFor(m, func(rs, re int) {
		for i := rs; i < re; i++ {
			ci := cd[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				bp := bd[p*n : (p+1)*n]
				for j := range bp {
					ci[j] += av * bp[j]
				}
			}
		}
	})
	return c
}

// MatVec computes y = A·x for A (m×n) and x (n), returning m.
func MatVec(a, x *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if x.Len() != n {
		panic(fmt.Sprintf("tensor: MatVec dims %d != %d", n, x.Len()))
	}
	y := New(m)
	ad, xd, yd := a.Data, x.Data, y.Data
	parallelFor(m, func(rs, re int) {
		for i := rs; i < re; i++ {
			ai := ad[i*n : (i+1)*n]
			var s float32
			for j := range ai {
				s += ai[j] * xd[j]
			}
			yd[i] = s
		}
	})
	return y
}
