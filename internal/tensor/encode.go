package tensor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Wire format (little endian):
//
//	u8   tag ('T' plain, 'Q' quantized)
//	u8   rank | bits marker
//	u32  per-dim sizes
//	f32  scale (quantized only)
//	payload
//
// Used by rpcx to stream activations between executors; the payload size of a
// quantized tensor is exactly Quantized.WireBytes, so emulated transfer time
// matches the cost model.

var errBadWire = errors.New("tensor: malformed wire data")

// Decode caps, enforced per header field BEFORE any payload allocation: a
// corrupted or hostile shape must cost a typed error, not a multi-GiB
// make(). Checked dimension-by-dimension so the running element product can
// never overflow int64 (each factor is <= maxDecodeDim and the product is
// rejected as soon as it passes MaxDecodeElements).
const (
	// MaxDecodeElements bounds the total element count of a decoded tensor
	// (512 MiB of float32) — far above any activation or checkpoint tensor
	// this system moves, far below an allocation that could wedge an edge
	// device.
	MaxDecodeElements = 1 << 27
	maxDecodeDim      = 1 << 27
)

// checkDim folds one decoded dimension into the running element count,
// rejecting implausible shapes before anything is allocated.
func checkDim(n, dim int) (int, error) {
	if dim < 0 || dim > maxDecodeDim {
		return 0, fmt.Errorf("%w: implausible dimension %d", errBadWire, dim)
	}
	n *= dim
	if n > MaxDecodeElements {
		return 0, fmt.Errorf("%w: element count %d exceeds cap %d", errBadWire, n, MaxDecodeElements)
	}
	return n, nil
}

// Encode writes t to w in the plain float32 wire format.
func Encode(w io.Writer, t *Tensor) error {
	hdr := []byte{'T', byte(len(t.Shape))}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var b4 [4]byte
	for _, s := range t.Shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(s))
		if _, err := w.Write(b4[:]); err != nil {
			return err
		}
	}
	buf := make([]byte, 4*len(t.Data))
	for i, v := range t.Data {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

// Decode reads a plain tensor previously written by Encode.
func Decode(r io.Reader) (*Tensor, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != 'T' {
		return nil, fmt.Errorf("%w: tag %q", errBadWire, hdr[0])
	}
	rank := int(hdr[1])
	shape := make([]int, rank)
	var b4 [4]byte
	n := 1
	for i := 0; i < rank; i++ {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		shape[i] = int(binary.LittleEndian.Uint32(b4[:]))
		var err error
		if n, err = checkDim(n, shape[i]); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 4*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return t, nil
}

// EncodeQuantized writes q to w. The payload is the integer codes at the
// quantized bitwidth, so lower bitwidths genuinely send fewer bytes.
func EncodeQuantized(w io.Writer, q *Quantized) error {
	hdr := []byte{'Q', byte(len(q.Shape)), byte(q.Bits)}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var b4 [4]byte
	for _, s := range q.Shape {
		binary.LittleEndian.PutUint32(b4[:], uint32(s))
		if _, err := w.Write(b4[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(b4[:], math.Float32bits(q.Scale))
	if _, err := w.Write(b4[:]); err != nil {
		return err
	}
	switch q.Bits {
	case Bits8:
		buf := make([]byte, len(q.Q8))
		for i, v := range q.Q8 {
			buf[i] = byte(v)
		}
		_, err := w.Write(buf)
		return err
	case Bits16:
		buf := make([]byte, 2*len(q.Q16))
		for i, v := range q.Q16 {
			binary.LittleEndian.PutUint16(buf[i*2:], uint16(v))
		}
		_, err := w.Write(buf)
		return err
	default:
		buf := make([]byte, 4*len(q.F32))
		for i, v := range q.F32 {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		_, err := w.Write(buf)
		return err
	}
}

// DecodeQuantized reads a quantized tensor written by EncodeQuantized.
func DecodeQuantized(r io.Reader) (*Quantized, error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != 'Q' {
		return nil, fmt.Errorf("%w: tag %q", errBadWire, hdr[0])
	}
	rank := int(hdr[1])
	bits := Bitwidth(hdr[2])
	if !bits.Valid() {
		return nil, fmt.Errorf("%w: bits %d", errBadWire, bits)
	}
	q := &Quantized{Bits: bits, Shape: make([]int, rank)}
	var b4 [4]byte
	n := 1
	for i := 0; i < rank; i++ {
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, err
		}
		q.Shape[i] = int(binary.LittleEndian.Uint32(b4[:]))
		var err error
		if n, err = checkDim(n, q.Shape[i]); err != nil {
			return nil, err
		}
	}
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return nil, err
	}
	q.Scale = math.Float32frombits(binary.LittleEndian.Uint32(b4[:]))
	switch bits {
	case Bits8:
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		q.Q8 = make([]int8, n)
		for i, b := range buf {
			q.Q8[i] = int8(b)
		}
	case Bits16:
		buf := make([]byte, 2*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		q.Q16 = make([]int16, n)
		for i := range q.Q16 {
			q.Q16[i] = int16(binary.LittleEndian.Uint16(buf[i*2:]))
		}
	default:
		buf := make([]byte, 4*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		q.F32 = make([]float32, n)
		for i := range q.F32 {
			q.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return q, nil
}
