package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTrip32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 2, 3, 4, 4)
	q := Quantize(x, Bits32)
	y := q.Dequantize()
	if d := maxDiff(x, y); d != 0 {
		t.Fatalf("32-bit quantization must be lossless, diff %v", d)
	}
}

func TestQuantizeErrorBound8And16(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randTensor(rng, 1, 8, 14, 14)
	for _, bits := range []Bitwidth{Bits8, Bits16} {
		q := Quantize(x, bits)
		y := q.Dequantize()
		bound := float64(MaxQuantError(x.MaxAbs(), bits))
		if d := maxDiff(x, y); d > bound {
			t.Fatalf("bits %d: error %v exceeds bound %v", bits, d, bound)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	x := New(4, 4)
	for _, bits := range []Bitwidth{Bits8, Bits16, Bits32} {
		q := Quantize(x, bits)
		y := q.Dequantize()
		for _, v := range y.Data {
			if v != 0 {
				t.Fatalf("bits %d: zero tensor roundtrip nonzero %v", bits, v)
			}
		}
	}
}

func TestWireBytes(t *testing.T) {
	x := New(2, 3, 4, 4) // 96 elements
	if got := Quantize(x, Bits8).WireBytes(); got != 96 {
		t.Fatalf("8-bit wire bytes = %d, want 96", got)
	}
	if got := Quantize(x, Bits16).WireBytes(); got != 192 {
		t.Fatalf("16-bit wire bytes = %d, want 192", got)
	}
	if got := Quantize(x, Bits32).WireBytes(); got != 384 {
		t.Fatalf("32-bit wire bytes = %d, want 384", got)
	}
}

func TestBitwidthValid(t *testing.T) {
	if !Bits8.Valid() || !Bits16.Valid() || !Bits32.Valid() {
		t.Fatal("supported widths must be valid")
	}
	if Bitwidth(4).Valid() || Bitwidth(0).Valid() {
		t.Fatal("unsupported widths must be invalid")
	}
}

// Property: quantization error never exceeds the analytic half-step bound,
// for any finite input and either lossy bitwidth.
func TestQuantErrorBoundProperty(t *testing.T) {
	f := func(raw []float32, use8 bool) bool {
		vals := make([]float32, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e30 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		x := FromSlice(vals, len(vals))
		bits := Bits16
		if use8 {
			bits = Bits8
		}
		q := Quantize(x, bits)
		y := q.Dequantize()
		bound := float64(MaxQuantError(x.MaxAbs(), bits))
		return maxDiff(x, y) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randTensor(rng, 2, 3, 5, 5)
	var buf bytes.Buffer
	if err := Encode(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(y) || maxDiff(x, y) != 0 {
		t.Fatal("encode/decode roundtrip mismatch")
	}
}

func TestEncodeDecodeQuantized(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randTensor(rng, 1, 4, 6, 6)
	for _, bits := range []Bitwidth{Bits8, Bits16, Bits32} {
		q := Quantize(x, bits)
		var buf bytes.Buffer
		if err := EncodeQuantized(&buf, q); err != nil {
			t.Fatal(err)
		}
		// Header is tag+rank+bits + 4 dims*4 + scale; payload must dominate.
		wantPayload := q.WireBytes()
		if buf.Len() != wantPayload+3+4*4+4 {
			t.Fatalf("bits %d: wire size %d, want %d", bits, buf.Len(), wantPayload+3+16+4)
		}
		q2, err := DecodeQuantized(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a, b := q.Dequantize(), q2.Dequantize()
		if maxDiff(a, b) != 0 {
			t.Fatalf("bits %d: quantized roundtrip mismatch", bits)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{'X', 1, 0, 0, 0, 0})); err == nil {
		t.Fatal("Decode should reject bad tag")
	}
	if _, err := DecodeQuantized(bytes.NewReader([]byte{'Q', 1, 7, 1, 0, 0, 0})); err == nil {
		t.Fatal("DecodeQuantized should reject bad bitwidth")
	}
}

func BenchmarkConv2DIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 1, 32, 56, 56)
	w := randTensor(rng, 64, 32, 3, 3)
	bias := randTensor(rng, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, bias, ConvOpts{Stride: 1, Padding: 1})
	}
}

func BenchmarkDepthwiseConv(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 1, 64, 56, 56)
	w := randTensor(rng, 64, 1, 3, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepthwiseConv2D(x, w, nil, ConvOpts{Stride: 1, Padding: 1})
	}
}

func BenchmarkQuantize8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 1, 64, 56, 56)
	b.SetBytes(int64(4 * x.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantize(x, Bits8)
	}
}
