// Package tensor implements the dense numerical substrate of Murmuration:
// float32 tensors in NCHW layout with the operations needed to execute and
// train convolutional networks and recurrent policies — im2col convolution,
// depthwise convolution, blocked parallel matrix multiplication, pooling,
// padding, activation quantization, and elementwise kernels.
//
// All heavy kernels are parallelised over a shared worker pool sized to
// GOMAXPROCS. Tensors are plain values over a shared []float32 backing slice;
// Clone performs a deep copy.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Tensor is a dense float32 array with row-major (last dimension fastest)
// layout. Convolutional data uses NCHW order.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data with the given shape. It panics if the element count
// does not match the shape product.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, have %d", shape, n, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.Data))
	copy(d, t.Data)
	return &Tensor{Shape: append([]int(nil), t.Shape...), Data: d}
}

// Reshape returns a view of the same data with a new shape. It panics if the
// element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d)", t.Shape, len(t.Data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given NCHW (or rank-matching) index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set writes the element at the given index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandNormal fills the tensor with N(0, std²) values from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// KaimingInit fills a conv/linear weight tensor with Kaiming-uniform values
// for the given fan-in.
func (t *Tensor) KaimingInit(rng *rand.Rand, fanIn int) {
	if fanIn < 1 {
		fanIn = 1
	}
	bound := float32(math.Sqrt(6.0 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = (rng.Float32()*2 - 1) * bound
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Add accumulates o into t elementwise. Shapes must match in element count.
func (t *Tensor) Add(o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
	return t
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AXPY computes t += a*o elementwise.
func (t *Tensor) AXPY(a float32, o *Tensor) *Tensor {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AXPY size mismatch")
	}
	for i := range t.Data {
		t.Data[i] += a * o.Data[i]
	}
	return t
}

// MaxAbs returns the largest absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements in float64.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

var workers = runtime.GOMAXPROCS(0)

// SetParallelism overrides the number of workers used by parallel kernels.
// n < 1 resets to GOMAXPROCS. Intended for tests and benchmarks.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workers = n
}

// Parallelism returns the current worker count.
func Parallelism() int { return workers }

// parallelFor splits [0, n) into contiguous chunks and runs fn(start, end) on
// each concurrently. Falls back to inline execution for small n.
func parallelFor(n int, fn func(start, end int)) {
	w := workers
	if w > n {
		w = n
	}
	if w <= 1 || n < 64 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for s := 0; s < n; s += chunk {
		e := s + chunk
		if e > n {
			e = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(s, e)
	}
	wg.Wait()
}
