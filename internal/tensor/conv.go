package tensor

import "fmt"

// ConvOpts describes a 2-D convolution: square kernel, symmetric stride and
// zero padding.
type ConvOpts struct {
	Stride  int
	Padding int
}

// ConvOutSize returns the output spatial size for input size in, kernel k,
// stride s, padding p.
func ConvOutSize(in, k, s, p int) int {
	if s < 1 {
		s = 1
	}
	return (in+2*p-k)/s + 1
}

// Im2Col unrolls input x (N,C,H,W) into a matrix of shape
// (N·outH·outW, C·kh·kw) so convolution becomes a matmul with the reshaped
// weight (outC, C·kh·kw).
func Im2Col(x *Tensor, kh, kw int, o ConvOpts) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	s, p := o.Stride, o.Padding
	if s < 1 {
		s = 1
	}
	oh := ConvOutSize(h, kh, s, p)
	ow := ConvOutSize(w, kw, s, p)
	cols := New(n*oh*ow, c*kh*kw)
	xd, cd := x.Data, cols.Data
	rowLen := c * kh * kw
	parallelFor(n*oh*ow, func(rs, re int) {
		for r := rs; r < re; r++ {
			b := r / (oh * ow)
			rem := r % (oh * ow)
			oy := rem / ow
			ox := rem % ow
			dst := cd[r*rowLen : (r+1)*rowLen]
			di := 0
			for ch := 0; ch < c; ch++ {
				base := (b*c + ch) * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*s - p + ky
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowBase := base + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*s - p + kx
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = xd[rowBase+ix]
						}
						di++
					}
				}
			}
		}
	})
	return cols
}

// Col2Im scatters a column matrix (as produced by Im2Col) back into an input
// gradient of shape (N,C,H,W), accumulating overlaps. It is the adjoint of
// Im2Col and is used by convolution backward passes.
func Col2Im(cols *Tensor, n, c, h, w, kh, kw int, o ConvOpts) *Tensor {
	s, p := o.Stride, o.Padding
	if s < 1 {
		s = 1
	}
	oh := ConvOutSize(h, kh, s, p)
	ow := ConvOutSize(w, kw, s, p)
	out := New(n, c, h, w)
	cd, od := cols.Data, out.Data
	rowLen := c * kh * kw
	// Parallelise over batch: images don't overlap in the output buffer.
	parallelFor(n, func(bs, be int) {
		for b := bs; b < be; b++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					r := (b*oh+oy)*ow + ox
					src := cd[r*rowLen : (r+1)*rowLen]
					si := 0
					for ch := 0; ch < c; ch++ {
						base := (b*c + ch) * h * w
						for ky := 0; ky < kh; ky++ {
							iy := oy*s - p + ky
							if iy < 0 || iy >= h {
								si += kw
								continue
							}
							rowBase := base + iy*w
							for kx := 0; kx < kw; kx++ {
								ix := ox*s - p + kx
								if ix >= 0 && ix < w {
									od[rowBase+ix] += src[si]
								}
								si++
							}
						}
					}
				}
			}
		}
	})
	return out
}

// Conv2D computes a standard convolution of x (N,C,H,W) with weight
// (outC, C, kh, kw) and optional bias (outC), returning (N,outC,outH,outW).
// 1×1 stride-1 convolutions take a direct matmul fast path (no im2col copy);
// they dominate inverted-bottleneck networks.
func Conv2D(x, weight, bias *Tensor, o ConvOpts) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, wc, kh, kw := weight.Shape[0], weight.Shape[1], weight.Shape[2], weight.Shape[3]
	if wc != c {
		panic(fmt.Sprintf("tensor: Conv2D channels %d != weight %d", c, wc))
	}
	s := o.Stride
	if s < 1 {
		s = 1
	}
	if kh == 1 && kw == 1 && s == 1 && o.Padding == 0 {
		return conv1x1(x, weight, bias)
	}
	oh := ConvOutSize(h, kh, s, o.Padding)
	ow := ConvOutSize(w, kw, s, o.Padding)
	cols := Im2Col(x, kh, kw, o)          // (N·oh·ow, C·kh·kw)
	wmat := weight.Reshape(outC, c*kh*kw) // (outC, C·kh·kw)
	prod := MatMulTransB(cols, wmat)      // (N·oh·ow, outC)
	out := New(n, outC, oh, ow)
	pd, od := prod.Data, out.Data
	parallelFor(n*outC, func(rs, re int) {
		for r := rs; r < re; r++ {
			b := r / outC
			oc := r % outC
			var bv float32
			if bias != nil {
				bv = bias.Data[oc]
			}
			dst := od[r*oh*ow : (r+1)*oh*ow]
			for i := 0; i < oh*ow; i++ {
				dst[i] = pd[(b*oh*ow+i)*outC+oc] + bv
			}
		}
	})
	return out
}

// conv1x1 computes a pointwise convolution as W (outC×C) times the channel
// matrix of each image — no im2col materialization.
func conv1x1(x, weight, bias *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC := weight.Shape[0]
	plane := h * w
	out := New(n, outC, h, w)
	wd := weight.Data // (outC, C) row-major (kh=kw=1)
	parallelFor(n*outC, func(rs, re int) {
		for r := rs; r < re; r++ {
			b := r / outC
			oc := r % outC
			dst := out.Data[r*plane : (r+1)*plane]
			var bv float32
			if bias != nil {
				bv = bias.Data[oc]
			}
			for i := range dst {
				dst[i] = bv
			}
			wrow := wd[oc*c : (oc+1)*c]
			for ch := 0; ch < c; ch++ {
				wv := wrow[ch]
				if wv == 0 {
					continue
				}
				src := x.Data[(b*c+ch)*plane : (b*c+ch+1)*plane]
				for i := range dst {
					dst[i] += wv * src[i]
				}
			}
		}
	})
	return out
}

// Conv2DNaive is a direct reference implementation used by tests to validate
// the im2col path. It is O(N·outC·oh·ow·C·kh·kw) with no parallelism.
func Conv2DNaive(x, weight, bias *Tensor, o ConvOpts) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, kh, kw := weight.Shape[0], weight.Shape[2], weight.Shape[3]
	s, p := o.Stride, o.Padding
	if s < 1 {
		s = 1
	}
	oh := ConvOutSize(h, kh, s, p)
	ow := ConvOutSize(w, kw, s, p)
	out := New(n, outC, oh, ow)
	for b := 0; b < n; b++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					if bias != nil {
						acc = bias.Data[oc]
					}
					for ch := 0; ch < c; ch++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*s - p + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*s - p + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += x.At(b, ch, iy, ix) * weight.At(oc, ch, ky, kx)
							}
						}
					}
					out.Set(acc, b, oc, oy, ox)
				}
			}
		}
	}
	return out
}

// DepthwiseConv2D convolves each channel of x (N,C,H,W) with its own kernel
// from weight (C, 1, kh, kw), plus optional bias (C).
func DepthwiseConv2D(x, weight, bias *Tensor, o ConvOpts) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if weight.Shape[0] != c {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D channels %d != weight %d", c, weight.Shape[0]))
	}
	kh, kw := weight.Shape[2], weight.Shape[3]
	s, p := o.Stride, o.Padding
	if s < 1 {
		s = 1
	}
	oh := ConvOutSize(h, kh, s, p)
	ow := ConvOutSize(w, kw, s, p)
	out := New(n, c, oh, ow)
	xd, wd, od := x.Data, weight.Data, out.Data
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			ch := r % c
			var bv float32
			if bias != nil {
				bv = bias.Data[ch]
			}
			in := xd[r*h*w : (r+1)*h*w]
			ker := wd[ch*kh*kw : (ch+1)*kh*kw]
			dst := od[r*oh*ow : (r+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := bv
					for ky := 0; ky < kh; ky++ {
						iy := oy*s - p + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*s - p + kx
							if ix < 0 || ix >= w {
								continue
							}
							acc += in[iy*w+ix] * ker[ky*kw+kx]
						}
					}
					dst[oy*ow+ox] = acc
				}
			}
		}
	})
	return out
}

// AvgPoolGlobal reduces (N,C,H,W) to (N,C) by averaging each channel plane.
func AvgPoolGlobal(x *Tensor) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c)
	hw := float32(h * w)
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			var s float32
			for _, v := range x.Data[r*h*w : (r+1)*h*w] {
				s += v
			}
			out.Data[r] = s / hw
		}
	})
	return out
}

// MaxPool2D applies k×k max pooling with stride s.
func MaxPool2D(x *Tensor, k, s int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if s < 1 {
		s = k
	}
	oh := (h-k)/s + 1
	ow := (w-k)/s + 1
	out := New(n, c, oh, ow)
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			in := x.Data[r*h*w : (r+1)*h*w]
			dst := out.Data[r*oh*ow : (r+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					m := float32(math32NegInf)
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							v := in[(oy*s+ky)*w+ox*s+kx]
							if v > m {
								m = v
							}
						}
					}
					dst[oy*ow+ox] = m
				}
			}
		}
	})
	return out
}

const math32NegInf = float32(-3.4e38)

// Pad2D zero-pads the spatial dims of x (N,C,H,W) by p on every side.
func Pad2D(x *Tensor, p int) *Tensor {
	if p == 0 {
		return x.Clone()
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, h+2*p, w+2*p)
	ow := w + 2*p
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			src := x.Data[r*h*w : (r+1)*h*w]
			dstBase := r * (h + 2*p) * ow
			for y := 0; y < h; y++ {
				copy(out.Data[dstBase+(y+p)*ow+p:dstBase+(y+p)*ow+p+w], src[y*w:(y+1)*w])
			}
		}
	})
	return out
}

// CropSpatial extracts the spatial window [y0,y0+ch)×[x0,x0+cw) from x
// (N,C,H,W), returning (N,C,ch,cw). Out-of-range regions read as zero, which
// lets callers implement FDSP zero-padded tiles directly.
func CropSpatial(x *Tensor, y0, x0, ch, cw int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c, ch, cw)
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			src := x.Data[r*h*w : (r+1)*h*w]
			dst := out.Data[r*ch*cw : (r+1)*ch*cw]
			for y := 0; y < ch; y++ {
				iy := y0 + y
				if iy < 0 || iy >= h {
					continue
				}
				for xx := 0; xx < cw; xx++ {
					ix := x0 + xx
					if ix < 0 || ix >= w {
						continue
					}
					dst[y*cw+xx] = src[iy*w+ix]
				}
			}
		}
	})
	return out
}

// PasteSpatial writes tile (N,C,th,tw) into dst (N,C,H,W) at offset (y0,x0),
// clipping at the borders. It is the inverse of CropSpatial for in-range
// regions and is used to reassemble spatially partitioned outputs.
func PasteSpatial(dst, tile *Tensor, y0, x0 int) {
	n, c, h, w := dst.Shape[0], dst.Shape[1], dst.Shape[2], dst.Shape[3]
	th, tw := tile.Shape[2], tile.Shape[3]
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			src := tile.Data[r*th*tw : (r+1)*th*tw]
			d := dst.Data[r*h*w : (r+1)*h*w]
			for y := 0; y < th; y++ {
				dy := y0 + y
				if dy < 0 || dy >= h {
					continue
				}
				for x := 0; x < tw; x++ {
					dx := x0 + x
					if dx < 0 || dx >= w {
						continue
					}
					d[dy*w+dx] = src[y*tw+x]
				}
			}
		}
	})
}

// BilinearResize resizes x (N,C,H,W) to (N,C,outH,outW) with bilinear
// interpolation; used for elastic input resolution.
func BilinearResize(x *Tensor, outH, outW int) *Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if outH == h && outW == w {
		return x.Clone()
	}
	out := New(n, c, outH, outW)
	sy := float32(h) / float32(outH)
	sx := float32(w) / float32(outW)
	parallelFor(n*c, func(rs, re int) {
		for r := rs; r < re; r++ {
			src := x.Data[r*h*w : (r+1)*h*w]
			dst := out.Data[r*outH*outW : (r+1)*outH*outW]
			for oy := 0; oy < outH; oy++ {
				fy := (float32(oy)+0.5)*sy - 0.5
				y0 := int(fy)
				if fy < 0 {
					fy, y0 = 0, 0
				}
				y1 := y0 + 1
				if y1 >= h {
					y1 = h - 1
				}
				wy := fy - float32(y0)
				for ox := 0; ox < outW; ox++ {
					fx := (float32(ox)+0.5)*sx - 0.5
					x0 := int(fx)
					if fx < 0 {
						fx, x0 = 0, 0
					}
					x1 := x0 + 1
					if x1 >= w {
						x1 = w - 1
					}
					wx := fx - float32(x0)
					v00 := src[y0*w+x0]
					v01 := src[y0*w+x1]
					v10 := src[y1*w+x0]
					v11 := src[y1*w+x1]
					top := v00 + (v01-v00)*wx
					bot := v10 + (v11-v10)*wx
					dst[oy*outW+ox] = top + (bot-top)*wy
				}
			}
		}
	})
	return out
}
