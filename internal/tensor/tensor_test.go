package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

func maxDiff(a, b *Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 || x.Rank() != 4 {
		t.Fatalf("Len/Rank = %d/%d", x.Len(), x.Rank())
	}
	x.Set(7, 1, 2, 3, 4)
	if x.At(1, 2, 3, 4) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if x.Data[119] != 7 {
		t.Fatal("last index should be last element")
	}
}

func TestIndexPanics(t *testing.T) {
	x := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			x.At(idx...)
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 5
	if x.Data[0] != 5 {
		t.Fatal("Reshape must alias data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape must panic")
		}
	}()
	x.Reshape(5, 5)
}

func TestElementwise(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.Add(b)
	if a.Data[2] != 33 {
		t.Fatalf("Add: got %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 22 {
		t.Fatalf("Scale: got %v", a.Data)
	}
	a.AXPY(-2, b)
	if a.Data[0] != 2 || a.Data[1] != 4 || a.Data[2] != 6 {
		t.Fatalf("AXPY: got %v", a.Data)
	}
}

func TestMaxAbsSum(t *testing.T) {
	x := FromSlice([]float32{-5, 2, 3}, 3)
	if x.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func matmulRef(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func TestMatMulAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{1, 1, 1}, {5, 7, 3}, {64, 33, 17}, {128, 64, 96}} {
		a := randTensor(rng, dims[0], dims[1])
		b := randTensor(rng, dims[1], dims[2])
		got := MatMul(a, b)
		want := matmulRef(a, b)
		if d := maxDiff(got, want); d > 1e-4 {
			t.Fatalf("dims %v: max diff %v", dims, d)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randTensor(rng, 9, 13)
	b := randTensor(rng, 13, 11)
	want := MatMul(a, b)

	// C = A·Bᵀ with B stored transposed.
	bT := New(11, 13)
	for i := 0; i < 13; i++ {
		for j := 0; j < 11; j++ {
			bT.Data[j*13+i] = b.Data[i*11+j]
		}
	}
	if d := maxDiff(MatMulTransB(a, bT), want); d > 1e-4 {
		t.Fatalf("MatMulTransB diff %v", d)
	}

	// C = Aᵀ·B with A stored transposed.
	aT := New(13, 9)
	for i := 0; i < 9; i++ {
		for j := 0; j < 13; j++ {
			aT.Data[j*9+i] = a.Data[i*13+j]
		}
	}
	if d := maxDiff(MatMulTransA(aT, b), want); d > 1e-4 {
		t.Fatalf("MatMulTransA diff %v", d)
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{5, 6}, 2)
	y := MatVec(a, x)
	if y.Data[0] != 17 || y.Data[1] != 39 {
		t.Fatalf("MatVec = %v", y.Data)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestConv2DAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, c, h, w, oc, k, s, p int
	}{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{1, 4, 9, 7, 6, 5, 2, 2},
		{2, 2, 11, 11, 3, 7, 2, 3},
		{1, 3, 6, 6, 2, 1, 1, 0},
	}
	for _, cs := range cases {
		x := randTensor(rng, cs.n, cs.c, cs.h, cs.w)
		wt := randTensor(rng, cs.oc, cs.c, cs.k, cs.k)
		bias := randTensor(rng, cs.oc)
		o := ConvOpts{Stride: cs.s, Padding: cs.p}
		got := Conv2D(x, wt, bias, o)
		want := Conv2DNaive(x, wt, bias, o)
		if !got.SameShape(want) {
			t.Fatalf("case %+v: shape %v vs %v", cs, got.Shape, want.Shape)
		}
		if d := maxDiff(got, want); d > 1e-3 {
			t.Fatalf("case %+v: conv max diff %v", cs, d)
		}
	}
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(224, 3, 2, 1) != 112 {
		t.Fatal("224/k3s2p1 should be 112")
	}
	if ConvOutSize(5, 3, 1, 0) != 3 {
		t.Fatal("5/k3s1p0 should be 3")
	}
}

func TestDepthwiseConvMatchesGrouped(t *testing.T) {
	// Depthwise conv must equal a full conv whose weight is block-diagonal.
	rng := rand.New(rand.NewSource(3))
	n, c, h, w, k := 2, 3, 7, 7, 3
	x := randTensor(rng, n, c, h, w)
	dwW := randTensor(rng, c, 1, k, k)
	bias := randTensor(rng, c)
	got := DepthwiseConv2D(x, dwW, bias, ConvOpts{Stride: 1, Padding: 1})

	fullW := New(c, c, k, k)
	for ch := 0; ch < c; ch++ {
		for i := 0; i < k*k; i++ {
			fullW.Data[(ch*c+ch)*k*k+i] = dwW.Data[ch*k*k+i]
		}
	}
	want := Conv2DNaive(x, fullW, bias, ConvOpts{Stride: 1, Padding: 1})
	if d := maxDiff(got, want); d > 1e-4 {
		t.Fatalf("depthwise vs block-diag full conv diff %v", d)
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property.
	rng := rand.New(rand.NewSource(4))
	n, c, h, w, k := 1, 2, 6, 6, 3
	o := ConvOpts{Stride: 2, Padding: 1}
	x := randTensor(rng, n, c, h, w)
	cols := Im2Col(x, k, k, o)
	y := randTensor(rng, cols.Shape[0], cols.Shape[1])
	lhs := 0.0
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}
	back := Col2Im(y, n, c, h, w, k, k, o)
	rhs := 0.0
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestAvgPoolGlobal(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	p := AvgPoolGlobal(x)
	if p.Data[0] != 2.5 || p.Data[1] != 25 {
		t.Fatalf("AvgPoolGlobal = %v", p.Data)
	}
}

func TestMaxPool2D(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := MaxPool2D(x, 2, 2)
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Fatalf("MaxPool = %v, want %v", p.Data, want)
		}
	}
}

func TestPad2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	p := Pad2D(x, 1)
	if p.Shape[2] != 4 || p.Shape[3] != 4 {
		t.Fatalf("padded shape %v", p.Shape)
	}
	if p.At(0, 0, 0, 0) != 0 || p.At(0, 0, 1, 1) != 1 || p.At(0, 0, 2, 2) != 4 {
		t.Fatal("padding layout wrong")
	}
}

func TestCropPasteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 1, 2, 8, 8)
	dst := New(1, 2, 8, 8)
	// Cut x into 2x2 tiles and paste back; must reproduce x exactly.
	for _, ty := range []int{0, 4} {
		for _, tx := range []int{0, 4} {
			tile := CropSpatial(x, ty, tx, 4, 4)
			PasteSpatial(dst, tile, ty, tx)
		}
	}
	if d := maxDiff(x, dst); d != 0 {
		t.Fatalf("crop/paste roundtrip diff %v", d)
	}
}

func TestCropOutOfRangeReadsZero(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	c := CropSpatial(x, -1, -1, 3, 3)
	if c.At(0, 0, 0, 0) != 0 {
		t.Fatal("out-of-range crop should read zero")
	}
	if c.At(0, 0, 1, 1) != 1 {
		t.Fatal("in-range portion should copy")
	}
}

func TestBilinearResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randTensor(rng, 1, 3, 16, 16)
	y := BilinearResize(x, 16, 16)
	if d := maxDiff(x, y); d != 0 {
		t.Fatalf("identity resize changed data: %v", d)
	}
}

func TestBilinearResizeConstant(t *testing.T) {
	x := New(1, 1, 8, 8)
	x.Fill(3)
	y := BilinearResize(x, 5, 5)
	for _, v := range y.Data {
		if math.Abs(float64(v)-3) > 1e-6 {
			t.Fatalf("constant image must stay constant, got %v", v)
		}
	}
}

func TestParallelismOverride(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(1)
	if Parallelism() != 1 {
		t.Fatal("SetParallelism(1) not applied")
	}
	// Kernels must still be correct single-threaded.
	rng := rand.New(rand.NewSource(8))
	a := randTensor(rng, 20, 20)
	b := randTensor(rng, 20, 20)
	got := MatMul(a, b)
	want := matmulRef(a, b)
	if d := maxDiff(got, want); d > 1e-4 {
		t.Fatalf("single-thread matmul diff %v", d)
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatal("reset should restore >=1 workers")
	}
}

func TestConv1x1FastPathMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randTensor(rng, 2, 8, 9, 7)
	w := randTensor(rng, 5, 8, 1, 1)
	bias := randTensor(rng, 5)
	got := Conv2D(x, w, bias, ConvOpts{Stride: 1, Padding: 0})
	want := Conv2DNaive(x, w, bias, ConvOpts{Stride: 1, Padding: 0})
	if !got.SameShape(want) {
		t.Fatalf("shape %v vs %v", got.Shape, want.Shape)
	}
	if d := maxDiff(got, want); d > 1e-4 {
		t.Fatalf("1x1 fast path diff %v", d)
	}
	// Nil bias path.
	got2 := Conv2D(x, w, nil, ConvOpts{Stride: 1, Padding: 0})
	want2 := Conv2DNaive(x, w, nil, ConvOpts{Stride: 1, Padding: 0})
	if d := maxDiff(got2, want2); d > 1e-4 {
		t.Fatalf("1x1 fast path (nil bias) diff %v", d)
	}
	// Strided/padded 1x1 must NOT take the fast path and still be right.
	got3 := Conv2D(x, w, bias, ConvOpts{Stride: 2, Padding: 0})
	want3 := Conv2DNaive(x, w, bias, ConvOpts{Stride: 2, Padding: 0})
	if d := maxDiff(got3, want3); d > 1e-4 {
		t.Fatalf("strided 1x1 diff %v", d)
	}
}

func BenchmarkConv1x1FastPath(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, 1, 64, 56, 56)
	w := randTensor(rng, 128, 64, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, nil, ConvOpts{Stride: 1, Padding: 0})
	}
}
