package testutil

import (
	"runtime"
	"testing"
	"time"
)

func TestCheckGoroutinesPassesWhenClean(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func TestCheckGoroutinesWaitsForUnwind(t *testing.T) {
	CheckGoroutines(t)
	// A goroutine that exits shortly after the body returns must not be
	// reported: the cleanup polls past the unwind.
	release := make(chan struct{})
	for i := 0; i < leakSlack+5; i++ {
		go func() { <-release }()
	}
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
}

func TestCheckGoroutinesDetectsLeak(t *testing.T) {
	// Exercise the detection predicate directly with a short deadline: a
	// pack of parked goroutines must be seen as a leak, not absorbed.
	before := runtime.NumGoroutine()
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < leakSlack+10; i++ {
		go func() { <-release }()
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	leaked := false
	for {
		if runtime.NumGoroutine() <= before+leakSlack {
			break
		}
		if time.Now().After(deadline) {
			leaked = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !leaked {
		t.Fatal("parked goroutines not observed as a leak")
	}
}
