// Package testutil holds shared test helpers. The goroutine-leak check
// guards the self-protection work: a server that pins a goroutine per dead
// client, or a worker pool that survives Close, shows up here as a count
// that never returns to baseline.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// leakSlack absorbs runtime-internal goroutines (timer wheels, GC workers,
// race-detector helpers) that come and go independently of the test body.
const leakSlack = 10

// CheckGoroutines snapshots the goroutine count and registers a cleanup that
// fails the test if, after the body finishes, the count does not return to
// within a small slack of the baseline. Background goroutines legitimately
// take a moment to unwind after Close, so the check polls before judging.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after (slack %d)\n%s",
			before, after, leakSlack, buf[:n])
	})
}
