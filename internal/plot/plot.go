// Package plot renders small ASCII line charts for the benchmark harness, so
// cmd/benchall can show the paper's curve figures (reward and compliance vs
// training steps, latency vs devices, ...) directly in the terminal next to
// the CSV output.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is an ASCII line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	Series []Series
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	hasData := false
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			hasData = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !hasData {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		pts := interpolate(s, width, xmin, xmax)
		for col, y := range pts {
			if math.IsNaN(y) {
				continue
			}
			row := int((ymax - y) / (ymax - ymin) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = m
		}
	}

	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	yHi := fmt.Sprintf("%.3g", ymax)
	yLo := fmt.Sprintf("%.3g", ymin)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yHi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.3g", xmax)),
		fmt.Sprintf("%.3g", xmin), fmt.Sprintf("%.3g", xmax))
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "   %s", strings.Join(legend, "   "))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "   [x: %s, y: %s]", c.XLabel, c.YLabel)
	}
	fmt.Fprintln(w)
}

// interpolate resamples a series onto chart columns with linear
// interpolation between its (sorted-by-x) points; columns outside the
// series' x-range are NaN.
func interpolate(s Series, width int, xmin, xmax float64) []float64 {
	type pt struct{ x, y float64 }
	pts := make([]pt, 0, len(s.X))
	for i := range s.X {
		if !math.IsNaN(s.X[i]) && !math.IsNaN(s.Y[i]) {
			pts = append(pts, pt{s.X[i], s.Y[i]})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	out := make([]float64, width)
	for col := 0; col < width; col++ {
		x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
		out[col] = math.NaN()
		if len(pts) == 0 || x < pts[0].x-1e-12 || x > pts[len(pts)-1].x+1e-12 {
			continue
		}
		// Find the bracketing segment.
		j := sort.Search(len(pts), func(i int) bool { return pts[i].x >= x })
		if j == 0 {
			out[col] = pts[0].y
			continue
		}
		if j >= len(pts) {
			out[col] = pts[len(pts)-1].y
			continue
		}
		a, b := pts[j-1], pts[j]
		if b.x == a.x {
			out[col] = b.y
			continue
		}
		t := (x - a.x) / (b.x - a.x)
		out[col] = a.y + t*(b.y-a.y)
	}
	return out
}
