package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{Title: "demo", Width: 40, Height: 8, XLabel: "step", YLabel: "reward"}
	c.Add("up", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	c.Add("down", []float64{0, 1, 2, 3}, []float64{3, 2, 1, 0})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "[x: step, y: reward]") {
		t.Fatal("axis labels missing")
	}
	// Y-axis endpoints labelled.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Fatal("axis bounds missing")
	}
	// The rising series should put '*' in the top-right region and the
	// falling one 'o' in the top-left.
	lines := strings.Split(out, "\n")
	top := lines[1]
	if !strings.Contains(top, "*") || !strings.Contains(top, "o") {
		t.Fatalf("top row should contain both extremes: %q", top)
	}
	if strings.Index(top, "o") > strings.Index(top, "*") {
		t.Fatal("falling series should peak left of rising series")
	}
}

func TestRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "(no data)") {
		t.Fatal("empty chart should say so")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.Add("flat", []float64{0, 1}, []float64{2, 2})
	var sb strings.Builder
	c.Render(&sb) // must not divide by zero
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestRenderIgnoresNaN(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.Add("gappy", []float64{0, 1, 2}, []float64{1, math.NaN(), 3})
	var sb strings.Builder
	c.Render(&sb)
	if strings.Contains(sb.String(), "NaN") {
		t.Fatal("NaN leaked into output")
	}
}

func TestInterpolate(t *testing.T) {
	s := Series{X: []float64{0, 10}, Y: []float64{0, 10}}
	ys := interpolate(s, 11, 0, 10)
	for i, y := range ys {
		if math.Abs(y-float64(i)) > 1e-9 {
			t.Fatalf("col %d: %v", i, y)
		}
	}
	// Outside the series range: NaN.
	s2 := Series{X: []float64{5, 10}, Y: []float64{1, 1}}
	ys2 := interpolate(s2, 11, 0, 10)
	if !math.IsNaN(ys2[0]) {
		t.Fatal("columns before the series should be NaN")
	}
	if math.IsNaN(ys2[10]) {
		t.Fatal("columns inside the series should interpolate")
	}
}
