package experiments

import (
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/rl/supreme"
	"murmuration/internal/stats"
)

// AblationOptions configures the SUPREME design-choice ablation: the full
// algorithm versus variants with data sharing, pruning, or mutation
// disabled (DESIGN.md §3 calls this study out; the paper motivates each
// mechanism in §4.4 without isolating them).
type AblationOptions struct {
	Steps   int
	Hidden  int
	Seeds   []int64
	ValSize int
}

// DefaultAblationOptions mirrors the curve budget.
func DefaultAblationOptions() AblationOptions {
	return AblationOptions{Steps: 600, Hidden: 48, Seeds: []int64{1, 2}, ValSize: 40}
}

// AblationVariant names one SUPREME configuration under test.
type AblationVariant struct {
	Name    string
	Mutator func(*supreme.Options)
}

// AblationVariants returns the studied variants.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Mutator: func(o *supreme.Options) {}},
		{Name: "no-share", Mutator: func(o *supreme.Options) { o.DisableShare = true }},
		{Name: "no-prune", Mutator: func(o *supreme.Options) { o.DisablePrune = true }},
		{Name: "no-mutation", Mutator: func(o *supreme.Options) { o.DisableMutation = true }},
		{Name: "no-curriculum", Mutator: func(o *supreme.Options) { o.CurriculumEvery = 0 }},
		{Name: "no-uncertainty", Mutator: func(o *supreme.Options) { o.UncertaintyFrac = 0 }},
	}
}

// Ablation trains each SUPREME variant on the scenario and reports final
// average reward and compliance (mean over seeds).
func Ablation(s *Scenario, space env.ConstraintSpace, opts AblationOptions) (*Table, error) {
	t := &Table{
		Name:   "ablation",
		Title:  "SUPREME ablation: contribution of share / prune / mutate / curriculum / uncertainty",
		Header: []string{"variant", "final_reward", "final_compliance"},
	}
	for _, v := range AblationVariants() {
		var rewards, compliances []float64
		for _, seed := range opts.Seeds {
			val := space.ValidationSet(opts.ValSize, 1000+seed)
			p := policy.New(s.Env, opts.Hidden, seed)
			o := supreme.DefaultOptions()
			o.Steps = opts.Steps
			o.Seed = seed
			o.CurriculumEvery = opts.Steps / (space.Dims() + 1)
			v.Mutator(&o)
			tr := supreme.New(p, space, o)
			if err := tr.Run(); err != nil {
				return nil, err
			}
			ev, err := policy.Evaluate(p, val)
			if err != nil {
				return nil, err
			}
			rewards = append(rewards, ev.AvgReward)
			compliances = append(compliances, ev.Compliance)
		}
		t.AddRowF(v.Name, stats.Mean(rewards), stats.Mean(compliances))
	}
	return t, nil
}
