package experiments

import (
	"fmt"

	"murmuration/internal/baselines/adcnn"
	"murmuration/internal/baselines/neurosurgeon"
	"murmuration/internal/device"
	"murmuration/internal/rl/env"
	"murmuration/internal/zoo"
)

// Method is one curve/series in a comparison figure: a named way to produce
// (accuracy, latency) under given cluster conditions.
type Method struct {
	Name string
	// Eval returns achieved accuracy (%) and latency (ms) for the cluster.
	Eval func(cl *device.Cluster) (accPct, latencyMs float64, err error)
}

// NeurosurgeonMethod pairs the Neurosurgeon splitter with a fixed zoo model.
func NeurosurgeonMethod(modelName string) Method {
	return Method{
		Name: "neurosurgeon+" + modelName,
		Eval: func(cl *device.Cluster) (float64, float64, error) {
			m, err := zoo.ByName(modelName)
			if err != nil {
				return 0, 0, err
			}
			plan, err := neurosurgeon.Split(m.Layers, cl, 1)
			if err != nil {
				return 0, 0, err
			}
			return m.Accuracy, plan.LatencySec * 1000, nil
		},
	}
}

// ADCNNMethod pairs the ADCNN FDSP partitioner with a fixed zoo model. Per
// the paper's framing, ADCNN is a *spatial partitioning* system: it always
// runs its natural grid for the cluster (1×2 for two devices, 2×2 for a
// swarm) — it does not fall back to single-device execution when the
// network degrades, which is exactly why its compliance collapses at low
// bandwidth in Figs. 14/16b.
func ADCNNMethod(modelName string) Method {
	return Method{
		Name: "adcnn+" + modelName,
		Eval: func(cl *device.Cluster) (float64, float64, error) {
			m, err := zoo.ByName(modelName)
			if err != nil {
				return 0, 0, err
			}
			plan, err := adcnn.Execute(m.Layers, cl, adcnn.GridFor(cl.N()))
			if err != nil {
				return 0, 0, err
			}
			return m.Accuracy - plan.AccuracyPenaltyPct, plan.LatencySec * 1000, nil
		},
	}
}

// MurmurationMethod evaluates a Decider's decision under the environment's
// cost model for the given constraint template (the per-cell SLO and links
// are filled in by the caller before Eval is invoked — Eval reads them from
// the cluster it receives plus the SLO captured in template).
func MurmurationMethod(e *env.Env, d Decider, template env.Constraint) Method {
	return Method{
		Name: d.Name(),
		Eval: func(cl *device.Cluster) (float64, float64, error) {
			c := template
			c.BandwidthMbps = nil
			c.DelayMs = nil
			for i := 1; i < cl.N(); i++ {
				c.BandwidthMbps = append(c.BandwidthMbps, cl.Devices[i].BandwidthMbps)
				c.DelayMs = append(c.DelayMs, cl.Devices[i].DelayMs)
			}
			dec, err := d.Decide(c)
			if err != nil {
				return 0, 0, err
			}
			out, err := e.Evaluate(c, dec)
			if err != nil {
				return 0, 0, err
			}
			return out.AccuracyPct, out.LatencyMs, nil
		},
	}
}

// CellResult is one (method, condition) evaluation of a comparison grid.
type CellResult struct {
	Method      string
	AccuracyPct float64
	LatencyMs   float64
}

// EvalCell runs every method under one cluster condition.
func EvalCell(methods []Method, cl *device.Cluster) ([]CellResult, error) {
	out := make([]CellResult, 0, len(methods))
	for _, m := range methods {
		acc, lat, err := m.Eval(cl)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.Name, err)
		}
		out = append(out, CellResult{Method: m.Name, AccuracyPct: acc, LatencyMs: lat})
	}
	return out, nil
}
