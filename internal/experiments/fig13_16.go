package experiments

import (
	"fmt"

	"murmuration/internal/rl/env"
)

// Fig13Options parameterizes the augmented-computing latency-SLO grid.
type Fig13Options struct {
	LatencySLOMs   float64   // paper: 140
	DelaysMs       []float64 // paper: 100, 75, 50, 25, 5
	BandwidthsMbps []float64
}

// DefaultFig13Options matches the paper's axes.
func DefaultFig13Options() Fig13Options {
	return Fig13Options{
		LatencySLOMs:   140,
		DelaysMs:       []float64{100, 75, 50, 25, 5},
		BandwidthsMbps: []float64{50, 100, 150, 200, 250, 300, 350, 400},
	}
}

// Fig13Baselines is the paper's baseline set for the augmented scenario.
func Fig13Baselines() []Method {
	return []Method{
		NeurosurgeonMethod("mobilenetv3-large"),
		NeurosurgeonMethod("resnet50"),
		NeurosurgeonMethod("inceptionv3"),
		NeurosurgeonMethod("densenet161"),
		NeurosurgeonMethod("resnext101-32x8d"),
		ADCNNMethod("mobilenetv3-large"),
		ADCNNMethod("resnet50"),
	}
}

// Fig13 produces the accuracy-under-latency-SLO grid of Fig. 13: for every
// (delay, bandwidth) cell, each method's accuracy and latency, with slo_met
// marking whether it may be plotted (the paper only draws a dot when the
// method satisfies the SLO).
func Fig13(s *Scenario, d Decider, opts Fig13Options) (*Table, error) {
	methods := append(Fig13Baselines(),
		MurmurationMethod(s.Env, d, env.Constraint{Type: env.LatencySLO, LatencyMs: opts.LatencySLOMs}))
	t := &Table{
		Name:   "fig13",
		Title:  fmt.Sprintf("Fig13: augmented scenario, accuracy @ latency SLO %.0fms", opts.LatencySLOMs),
		Header: []string{"delay_ms", "bandwidth_mbps", "method", "accuracy_pct", "latency_ms", "slo_met"},
	}
	for _, delay := range opts.DelaysMs {
		for _, bw := range opts.BandwidthsMbps {
			cl := s.Cluster(bw, delay)
			cells, err := EvalCell(methods, cl)
			if err != nil {
				return nil, err
			}
			for _, c := range cells {
				met := c.LatencyMs <= opts.LatencySLOMs
				t.AddRowF(delay, bw, c.Method, c.AccuracyPct, c.LatencyMs, met)
			}
		}
	}
	return t, nil
}

// Fig14Options parameterizes the device-swarm latency-SLO grid.
type Fig14Options struct {
	LatencySLOsMs  []float64 // paper: 2000, 1000, 600, 500, 400
	BandwidthsMbps []float64 // paper: 5–500 (log axis)
	DelayMs        float64   // paper: 20
	// OtherLinksMbps is the bandwidth of the remote devices whose link is
	// not being swept (the paper varies "one out of five devices").
	OtherLinksMbps float64
}

// DefaultFig14Options matches the paper's axes.
func DefaultFig14Options() Fig14Options {
	return Fig14Options{
		LatencySLOsMs:  []float64{2000, 1000, 600, 500, 400},
		BandwidthsMbps: []float64{5, 10, 25, 50, 100, 200, 500},
		DelayMs:        20,
		OtherLinksMbps: 100,
	}
}

// Fig14Baselines is the paper's swarm baseline set.
func Fig14Baselines() []Method {
	return []Method{
		ADCNNMethod("mobilenetv3-large"),
		ADCNNMethod("resnet50"),
		ADCNNMethod("densenet161"),
		ADCNNMethod("resnext101-32x8d"),
		NeurosurgeonMethod("mobilenetv3-large"),
		NeurosurgeonMethod("resnet50"),
	}
}

// Fig14 produces the swarm accuracy grid: accuracy per (latency SLO,
// bandwidth-of-device-1) cell at fixed 20 ms delay.
func Fig14(s *Scenario, d Decider, opts Fig14Options) (*Table, error) {
	t := &Table{
		Name:   "fig14",
		Title:  "Fig14: device swarm, accuracy vs bandwidth per latency SLO @ 20ms delay",
		Header: []string{"latency_slo_ms", "bandwidth_mbps", "method", "accuracy_pct", "latency_ms", "slo_met"},
	}
	for _, slo := range opts.LatencySLOsMs {
		methods := append(Fig14Baselines(),
			MurmurationMethod(s.Env, d, env.Constraint{Type: env.LatencySLO, LatencyMs: slo}))
		for _, bw := range opts.BandwidthsMbps {
			cl := s.Cluster(opts.OtherLinksMbps, opts.DelayMs)
			cl.SetLink(1, bw, opts.DelayMs) // the swept device
			cells, err := EvalCell(methods, cl)
			if err != nil {
				return nil, err
			}
			for _, c := range cells {
				met := c.LatencyMs <= slo
				t.AddRowF(slo, bw, c.Method, c.AccuracyPct, c.LatencyMs, met)
			}
		}
	}
	return t, nil
}

// Fig15Options parameterizes the accuracy-as-SLO experiment.
type Fig15Options struct {
	AccuracySLOs   []float64 // paper x-axis: 72.5–79 %
	BandwidthsMbps []float64 // paper subfigures: 50–400
	DelayMs        float64
}

// DefaultFig15Options matches the paper's axes.
func DefaultFig15Options() Fig15Options {
	return Fig15Options{
		AccuracySLOs:   []float64{72.5, 73.5, 74.5, 75.5, 76.5, 77.5, 78.5},
		BandwidthsMbps: []float64{50, 100, 150, 200, 250, 300, 350, 400},
		DelayMs:        20,
	}
}

// Fig15Baselines is the paper's baseline set for accuracy SLOs (the
// Neurosurgeon family; a fixed model is feasible only if its accuracy meets
// the SLO).
func Fig15Baselines() []Method {
	return []Method{
		NeurosurgeonMethod("mobilenetv3-large"),
		NeurosurgeonMethod("resnet50"),
		NeurosurgeonMethod("inceptionv3"),
		NeurosurgeonMethod("densenet161"),
		NeurosurgeonMethod("resnext101-32x8d"),
	}
}

// Fig15 produces latency-under-accuracy-SLO: for every (bandwidth, accuracy
// SLO) cell, each method's latency; slo_met marks accuracy feasibility.
func Fig15(s *Scenario, d Decider, opts Fig15Options) (*Table, error) {
	t := &Table{
		Name:   "fig15",
		Title:  "Fig15: augmented scenario, inference latency @ accuracy SLO",
		Header: []string{"bandwidth_mbps", "accuracy_slo_pct", "method", "accuracy_pct", "latency_ms", "slo_met"},
	}
	for _, bw := range opts.BandwidthsMbps {
		cl := s.Cluster(bw, opts.DelayMs)
		for _, slo := range opts.AccuracySLOs {
			methods := append(Fig15Baselines(),
				MurmurationMethod(s.Env, d, env.Constraint{Type: env.AccuracySLO, AccuracyPct: slo}))
			cells, err := EvalCell(methods, cl)
			if err != nil {
				return nil, err
			}
			for _, c := range cells {
				met := c.AccuracyPct >= slo
				t.AddRowF(bw, slo, c.Method, c.AccuracyPct, c.LatencyMs, met)
			}
		}
	}
	return t, nil
}

// Fig16aOptions parameterizes the augmented compliance-rate comparison.
type Fig16aOptions struct {
	LatencySLOsMs  []float64 // paper: 100, 120, 140
	AccuracySLOPct float64   // paper: 75
	DelaysMs       []float64 // 5–100
	BandwidthsMbps []float64 // 50–400 → 40 settings
}

// DefaultFig16aOptions matches the paper's 40-setting grid.
func DefaultFig16aOptions() Fig16aOptions {
	return Fig16aOptions{
		LatencySLOsMs:  []float64{100, 120, 140},
		AccuracySLOPct: 75,
		DelaysMs:       []float64{5, 25, 50, 75, 100},
		BandwidthsMbps: []float64{50, 100, 150, 200, 250, 300, 350, 400},
	}
}

// Fig16a computes compliance rates (fraction of network settings where a
// method meets BOTH the latency SLO and the 75 % accuracy SLO).
func Fig16a(s *Scenario, d Decider, opts Fig16aOptions) (*Table, error) {
	t := &Table{
		Name:   "fig16a",
		Title:  fmt.Sprintf("Fig16a: augmented compliance rate @ %.0f%% accuracy SLO", opts.AccuracySLOPct),
		Header: []string{"latency_slo_ms", "method", "compliance_pct"},
	}
	for _, slo := range opts.LatencySLOsMs {
		methods := []Method{
			NeurosurgeonMethod("resnet50"),
			NeurosurgeonMethod("inceptionv3"),
			MurmurationMethod(s.Env, d, env.Constraint{Type: env.LatencySLO, LatencyMs: slo}),
		}
		compliant := make(map[string]int)
		total := 0
		for _, delay := range opts.DelaysMs {
			for _, bw := range opts.BandwidthsMbps {
				cl := s.Cluster(bw, delay)
				cells, err := EvalCell(methods, cl)
				if err != nil {
					return nil, err
				}
				total++
				for _, c := range cells {
					if c.LatencyMs <= slo && c.AccuracyPct >= opts.AccuracySLOPct {
						compliant[c.Method]++
					}
				}
			}
		}
		for _, m := range methods {
			t.AddRowF(slo, m.Name, 100*float64(compliant[m.Name])/float64(total))
		}
	}
	return t, nil
}

// Fig16bOptions parameterizes the swarm compliance comparison.
type Fig16bOptions struct {
	LatencySLOsMs  []float64 // paper: 600, 1000
	AccuracySLOPct float64   // paper: 74
	DelayMs        float64   // paper: 20
	BandwidthsMbps []float64 // paper: 9 settings, 5–500
	OtherLinksMbps float64
}

// DefaultFig16bOptions matches the paper's 9-setting sweep.
func DefaultFig16bOptions() Fig16bOptions {
	return Fig16bOptions{
		LatencySLOsMs:  []float64{600, 1000},
		AccuracySLOPct: 74,
		DelayMs:        20,
		BandwidthsMbps: []float64{5, 10, 25, 50, 100, 200, 300, 400, 500},
		OtherLinksMbps: 100,
	}
}

// Fig16b computes swarm compliance rates over the bandwidth sweep.
func Fig16b(s *Scenario, d Decider, opts Fig16bOptions) (*Table, error) {
	t := &Table{
		Name:   "fig16b",
		Title:  fmt.Sprintf("Fig16b: swarm compliance rate @ %.0f%% accuracy SLO", opts.AccuracySLOPct),
		Header: []string{"latency_slo_ms", "method", "compliance_pct"},
	}
	for _, slo := range opts.LatencySLOsMs {
		methods := []Method{
			ADCNNMethod("mobilenetv3-large"),
			ADCNNMethod("resnet50"),
			MurmurationMethod(s.Env, d, env.Constraint{Type: env.LatencySLO, LatencyMs: slo}),
		}
		compliant := make(map[string]int)
		total := 0
		for _, bw := range opts.BandwidthsMbps {
			cl := s.Cluster(opts.OtherLinksMbps, opts.DelayMs)
			cl.SetLink(1, bw, opts.DelayMs)
			cells, err := EvalCell(methods, cl)
			if err != nil {
				return nil, err
			}
			total++
			for _, c := range cells {
				if c.LatencyMs <= slo && c.AccuracyPct >= opts.AccuracySLOPct {
					compliant[c.Method]++
				}
			}
		}
		for _, m := range methods {
			t.AddRowF(slo, m.Name, 100*float64(compliant[m.Name])/float64(total))
		}
	}
	return t, nil
}
