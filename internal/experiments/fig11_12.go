package experiments

import (
	"fmt"

	"murmuration/internal/rl/env"
	"murmuration/internal/rl/gcsl"
	"murmuration/internal/rl/policy"
	"murmuration/internal/rl/ppo"
	"murmuration/internal/rl/supreme"
	"murmuration/internal/stats"
)

// CurvePoint is one evaluation sample of a training run.
type CurvePoint struct {
	Step       int
	Reward     float64
	Compliance float64
}

// CurveOptions configures the Fig. 11/12 training-curve experiment.
type CurveOptions struct {
	Steps     int
	EvalEvery int
	Hidden    int     // LSTM width (paper: 256; smaller is faster, same shape)
	Seeds     []int64 // paper: 3 runs, averaged
	ValSize   int
}

// DefaultCurveOptions returns a budget that reproduces the curve shapes in
// minutes of CPU time (the paper's 20 k-step x-axis is a matter of budget,
// not of algorithmic behaviour — orderings appear within the first few
// hundred episodes).
func DefaultCurveOptions() CurveOptions {
	return CurveOptions{Steps: 1200, EvalEvery: 100, Hidden: 64, Seeds: []int64{1, 2, 3}, ValSize: 40}
}

// AugmentedSpace is the training constraint grid for the augmented scenario
// (latency SLO; 10 points per metric, §6.1.1).
func AugmentedSpace() env.ConstraintSpace {
	// The paper's hard regime (Fig. 13/16a: SLOs near 100-140 ms, bandwidth
	// down to a few Mb/s): tight enough that random exploration rarely
	// lands a satisfying trajectory, which is exactly the setting SUPREME's
	// sharing/pruning/mutation are designed for (§4.3).
	// SLOs reach below what any all-local model can deliver (~35 ms on the
	// Pi), so tight cells are only satisfiable by offloading — conservative
	// collapse cannot fake compliance, exactly as in the paper's training
	// grid (some cells are outright unachievable; Fig. 12 normalizes).
	return env.ConstraintSpace{
		Type: env.LatencySLO, SLOMin: 10, SLOMax: 140,
		BwMinMbps: 5, BwMaxMbps: 400, DelayMin: 5, DelayMax: 100,
		Points: 10, Remotes: 1,
	}
}

// SwarmSpace is the training grid for the 5-device swarm scenario.
func SwarmSpace(remotes int) env.ConstraintSpace {
	// As in AugmentedSpace, the tight end sits below single-device latency
	// so spatial partitioning across the swarm is the only route to
	// compliance there.
	return env.ConstraintSpace{
		Type: env.LatencySLO, SLOMin: 30, SLOMax: 600,
		BwMinMbps: 5, BwMaxMbps: 500, DelayMin: 5, DelayMax: 100,
		Points: 10, Remotes: remotes,
	}
}

// Curves runs SUPREME, GCSL, and PPO on a scenario and returns per-method
// evaluation curves averaged over seeds. This is the data behind Fig. 11
// (reward) and Fig. 12 (normalized compliance).
func Curves(s *Scenario, space env.ConstraintSpace, opts CurveOptions) (map[string][]CurvePoint, error) {
	methods := []string{"SUPREME", "GCSL", "PPO"}
	perSeed := make(map[string][][]CurvePoint)

	for _, seed := range opts.Seeds {
		val := space.ValidationSet(opts.ValSize, 1000+seed)
		for _, method := range methods {
			var pts []CurvePoint
			record := func(step int, ev policy.EvalResult) {
				pts = append(pts, CurvePoint{Step: step, Reward: ev.AvgReward, Compliance: ev.Compliance})
			}
			p := policy.New(s.Env, opts.Hidden, seed)
			var err error
			switch method {
			case "SUPREME":
				o := supreme.DefaultOptions()
				o.Steps = opts.Steps
				o.Seed = seed
				o.EvalEvery = opts.EvalEvery
				o.Val = val
				o.Progress = record
				o.CurriculumEvery = opts.Steps / (space.Dims() + 1)
				err = supreme.New(p, space, o).Run()
			case "GCSL":
				o := gcsl.DefaultOptions()
				o.Steps = opts.Steps
				o.Seed = seed
				o.EvalEvery = opts.EvalEvery
				o.Val = val
				o.Progress = record
				err = gcsl.New(p, space, o).Run()
			case "PPO":
				o := ppo.DefaultOptions()
				o.Steps = opts.Steps
				o.Seed = seed
				o.EvalEvery = opts.EvalEvery
				o.Val = val
				o.Progress = record
				err = ppo.New(p, space, o).Run()
			}
			if err != nil {
				return nil, fmt.Errorf("%s seed %d: %w", method, seed, err)
			}
			perSeed[method] = append(perSeed[method], pts)
		}
	}

	// Average across seeds point-by-point.
	out := make(map[string][]CurvePoint)
	for _, method := range methods {
		runs := perSeed[method]
		if len(runs) == 0 {
			continue
		}
		n := len(runs[0])
		for _, r := range runs {
			if len(r) < n {
				n = len(r)
			}
		}
		avg := make([]CurvePoint, n)
		for i := 0; i < n; i++ {
			var rw, cp []float64
			for _, r := range runs {
				rw = append(rw, r[i].Reward)
				cp = append(cp, r[i].Compliance)
			}
			avg[i] = CurvePoint{Step: runs[0][i].Step, Reward: stats.Mean(rw), Compliance: stats.Mean(cp)}
		}
		out[method] = avg
	}
	return out, nil
}

// NormalizeCompliance rescales every method's compliance by the best value
// any method achieves (the paper normalizes "by the highest achievable
// compliance rate of all methods", §6.1.2).
func NormalizeCompliance(curves map[string][]CurvePoint) map[string][]CurvePoint {
	best := 0.0
	for _, pts := range curves {
		for _, p := range pts {
			if p.Compliance > best {
				best = p.Compliance
			}
		}
	}
	if best == 0 {
		return curves
	}
	out := make(map[string][]CurvePoint, len(curves))
	for m, pts := range curves {
		np := make([]CurvePoint, len(pts))
		for i, p := range pts {
			np[i] = CurvePoint{Step: p.Step, Reward: p.Reward, Compliance: p.Compliance / best}
		}
		out[m] = np
	}
	return out
}

// CurveTable renders curves into a Table: one row per eval step, one column
// pair per method.
func CurveTable(name, title string, curves map[string][]CurvePoint) *Table {
	methods := []string{"SUPREME", "GCSL", "PPO"}
	t := &Table{Name: name, Title: title}
	t.Header = []string{"step"}
	for _, m := range methods {
		t.Header = append(t.Header, m+"_reward", m+"_compliance")
	}
	if len(curves[methods[0]]) == 0 {
		return t
	}
	for i := range curves[methods[0]] {
		row := []string{fmt.Sprintf("%d", curves[methods[0]][i].Step)}
		for _, m := range methods {
			pts := curves[m]
			if i < len(pts) {
				row = append(row, fmt.Sprintf("%.4f", pts[i].Reward), fmt.Sprintf("%.4f", pts[i].Compliance))
			} else {
				row = append(row, "", "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// AUC returns the mean reward and compliance over a method's whole curve —
// a noise-robust summary for shape comparisons.
func AUC(curves map[string][]CurvePoint, method string) (reward, compliance float64) {
	pts := curves[method]
	if len(pts) == 0 {
		return 0, 0
	}
	for _, p := range pts {
		reward += p.Reward
		compliance += p.Compliance
	}
	n := float64(len(pts))
	return reward / n, compliance / n
}

// FinalPoint returns the last curve point of a method.
func FinalPoint(curves map[string][]CurvePoint, method string) CurvePoint {
	pts := curves[method]
	if len(pts) == 0 {
		return CurvePoint{}
	}
	return pts[len(pts)-1]
}
