package experiments

import (
	"testing"

	"murmuration/internal/rl/supreme"
)

func TestAblationVariantsCoverAllMechanisms(t *testing.T) {
	vs := AblationVariants()
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
		// Every mutator must be applicable without panicking.
		o := supreme.DefaultOptions()
		v.Mutator(&o)
	}
	for _, want := range []string{"full", "no-share", "no-prune", "no-mutation", "no-curriculum", "no-uncertainty"} {
		if !names[want] {
			t.Fatalf("missing ablation variant %s", want)
		}
	}
}

func TestAblationRunsAndFullIsCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation training is slow")
	}
	s := Augmented()
	opts := DefaultAblationOptions()
	opts.Steps = 120
	opts.Hidden = 24
	opts.Seeds = []int64{1}
	opts.ValSize = 15
	tb, err := Ablation(s, AugmentedSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(AblationVariants()) {
		t.Fatalf("%d rows for %d variants", len(tb.Rows), len(AblationVariants()))
	}
	var full float64
	worst := 1e9
	for _, row := range tb.Rows {
		v := parseF(t, row[1])
		if row[0] == "full" {
			full = v
		}
		if v < worst {
			worst = v
		}
		if v < 0 {
			t.Fatalf("variant %s has negative reward %v", row[0], v)
		}
	}
	// At a tiny training budget the ordering is noisy, but the full
	// algorithm must not be the worst variant by a wide margin.
	if full < worst*0.5 {
		t.Fatalf("full SUPREME (%.3f) far below worst ablation (%.3f)", full, worst)
	}
}
