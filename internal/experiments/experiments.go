// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the RL training curves (Figs. 11–12), the accuracy /
// latency / compliance grids against the Neurosurgeon and ADCNN baselines
// (Figs. 13–16), the device-count scalability sweep (Fig. 17), the decision-
// time comparison against evolutionary search (Fig. 18), and the model-
// switch-time comparison (Fig. 19).
//
// Each generator returns a Table that can be printed as ASCII or written as
// CSV (cmd/benchall drives all of them); shape assertions over the same
// tables live in the package tests.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"murmuration/internal/baselines/evo"
	"murmuration/internal/device"
	"murmuration/internal/nas"
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/supernet"
)

// Table is a rectangular result set with a title and column header.
type Table struct {
	Name   string // file-friendly identifier, e.g. "fig13"
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowF appends a row formatting each value with %v / %.4g for floats.
func (t *Table) AddRowF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV writes the table to dir/<name>.csv and returns the path.
func (t *Table) WriteCSV(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, t.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	hdr := make([]string, len(t.Header))
	for i, h := range t.Header {
		hdr[i] = esc(h)
	}
	if _, err := fmt.Fprintln(f, strings.Join(hdr, ",")); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(f, strings.Join(cells, ",")); err != nil {
			return "", err
		}
	}
	return path, nil
}

// Fprint renders the table as aligned ASCII.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

// Scenario bundles the search space, predictor, and device set of one of the
// paper's two testbeds.
type Scenario struct {
	Name  string
	Env   *env.Env
	Kinds []device.Kind
}

// Augmented returns the Augmented Computing scenario: RPi4 local + GPU
// desktop remote.
func Augmented() *Scenario {
	a := supernet.DefaultArch()
	kinds := []device.Kind{device.RaspberryPi4, device.GPUDesktop}
	return &Scenario{
		Name:  "augmented",
		Env:   env.New(a, nas.NewCalibratedPredictor(a), kinds),
		Kinds: kinds,
	}
}

// Swarm returns the Device Swarm scenario with n RPi4 devices (paper: 5).
func Swarm(n int) *Scenario {
	a := supernet.DefaultArch()
	kinds := make([]device.Kind, n)
	for i := range kinds {
		kinds[i] = device.RaspberryPi4
	}
	return &Scenario{
		Name:  fmt.Sprintf("swarm%d", n),
		Env:   env.New(a, nas.NewCalibratedPredictor(a), kinds),
		Kinds: kinds,
	}
}

// SwarmExtended returns a swarm scenario whose search space carries larger
// FDSP grids (up to 3×3). The NAS training space caps at 2×2 (§6.1.1), but
// FDSP tiling is a runtime choice — Fig. 17 scales to nine devices, which is
// only possible with finer grids; the accuracy predictor charges the larger
// grids proportionally.
func SwarmExtended(n int) *Scenario {
	a := supernet.DefaultArch()
	a.Partitions = []supernet.Partition{
		{Gy: 1, Gx: 1}, {Gy: 1, Gx: 2}, {Gy: 2, Gx: 1}, {Gy: 2, Gx: 2},
		{Gy: 2, Gx: 3}, {Gy: 3, Gx: 3},
	}
	kinds := make([]device.Kind, n)
	for i := range kinds {
		kinds[i] = device.RaspberryPi4
	}
	return &Scenario{
		Name:  fmt.Sprintf("swarm%d-ext", n),
		Env:   env.New(a, nas.NewCalibratedPredictor(a), kinds),
		Kinds: kinds,
	}
}

// Cluster materializes a device cluster with uniform link settings.
func (s *Scenario) Cluster(bwMbps, delayMs float64) *device.Cluster {
	return device.NewCluster(s.Kinds, bwMbps, delayMs)
}

// ---------------------------------------------------------------------------
// Deciders
// ---------------------------------------------------------------------------

// Decider picks a decision for a constraint — either the trained RL policy
// (the deployed system) or the evolutionary oracle (the search upper bound,
// also Fig. 18's comparator).
type Decider interface {
	Decide(c env.Constraint) (*env.Decision, error)
	Name() string
}

// PolicyDecider wraps a trained policy's greedy decode.
type PolicyDecider struct {
	P     *policy.Policy
	Label string
}

// Decide implements Decider.
func (d *PolicyDecider) Decide(c env.Constraint) (*env.Decision, error) {
	return d.P.GreedyDecision(c)
}

// Name implements Decider.
func (d *PolicyDecider) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "murmuration-rl"
}

// OracleDecider runs evolutionary search per constraint (cached).
type OracleDecider struct {
	Env   *env.Env
	Opts  evo.Options
	cache map[string]*env.Decision
}

// NewOracle creates an oracle decider with the given search budget.
func NewOracle(e *env.Env, opts evo.Options) *OracleDecider {
	return &OracleDecider{Env: e, Opts: opts, cache: make(map[string]*env.Decision)}
}

// Decide implements Decider.
func (d *OracleDecider) Decide(c env.Constraint) (*env.Decision, error) {
	key := fmt.Sprintf("%+v", c)
	if dec, ok := d.cache[key]; ok {
		return dec, nil
	}
	res, err := evo.Search(d.Env, c, d.Opts)
	if err != nil {
		return nil, err
	}
	dec, err := d.Env.Decode(res.Choices)
	if err != nil {
		return nil, err
	}
	d.cache[key] = dec
	return dec, nil
}

// Name implements Decider.
func (d *OracleDecider) Name() string { return "murmuration" }

// DefaultOracle returns an oracle with a moderate search budget, seeded with
// the structured strategies a trained policy converges to.
func DefaultOracle(e *env.Env) *OracleDecider {
	opts := evo.DefaultOptions()
	opts.Population = 64
	opts.Generations = 15
	// Subsample the structured family to half the population so the other
	// half stays randomly diverse.
	opts.SeedGenomes = SubsampleSeeds(StructuredSeeds(e), opts.Population/2)
	return NewOracle(e, opts)
}

// SubsampleSeeds deterministically shuffles and caps a seed-genome list. The
// shuffle avoids aliasing with the nested loops of StructuredSeeds (a plain
// stride would always land on the same placement mode).
func SubsampleSeeds(seeds [][]int, budget int) [][]int {
	if len(seeds) <= budget {
		return seeds
	}
	out := append([][]int(nil), seeds...)
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out[:budget]
}
