package experiments

import (
	"murmuration/internal/rl/env"
)

// StructuredSeeds builds the family of structured strategies a converged
// Murmuration policy gravitates toward: uniform per-layer settings (one size
// level for kernel/expand/depth, one partition grid, one quantization level)
// with a coherent placement (all-local, all-on-one-remote, or round-robin
// tiles over the cluster). Evolutionary search is seeded with these so the
// oracle explores the same well-shaped region the RL policy learns, instead
// of relying on luck to align twenty independent per-layer grids.
func StructuredSeeds(e *env.Env) [][]int {
	a := e.Arch
	n := e.NumDevices()
	var seeds [][]int

	placements := []int{-1, -2} // -1 all-local, -2 round-robin
	if n > 1 {
		placements = append(placements, 1) // everything on remote device 1
	}
	sizeLevels := []float64{0, 0.5, 1}
	for _, resIdx := range []int{0, len(a.Resolutions) - 1} {
		for _, size := range sizeLevels {
			for pIdx := range a.Partitions {
				for qIdx := range a.QuantBits {
					for _, pl := range placements {
						seeds = append(seeds, structuredGenome(e, resIdx, size, pIdx, qIdx, pl))
					}
				}
			}
		}
	}
	return seeds
}

// structuredGenome walks the schedule with uniform choices. size ∈ [0,1]
// scales each discrete setting list (0 = smallest, 1 = largest). placement
// -1 = all local, -2 = round-robin across all devices, ≥0 = that device.
func structuredGenome(e *env.Env, resIdx int, size float64, partIdx, quantIdx, placement int) []int {
	lvl := func(n int) int {
		k := int(size*float64(n-1) + 0.5)
		if k < 0 {
			k = 0
		}
		if k > n-1 {
			k = n - 1
		}
		return k
	}
	w := e.NewWalker()
	var out []int
	for !w.Done() {
		spec := w.Next()
		var choice int
		switch spec.Type {
		case env.ActResolution:
			choice = resIdx
		case env.ActDepth:
			choice = lvl(spec.NumChoices)
		case env.ActKernel, env.ActExpand:
			choice = lvl(spec.NumChoices)
		case env.ActPartition:
			choice = partIdx
			if choice >= spec.NumChoices {
				choice = spec.NumChoices - 1
			}
		case env.ActQuant:
			choice = quantIdx
			if choice >= spec.NumChoices {
				choice = spec.NumChoices - 1
			}
		case env.ActDevice:
			switch placement {
			case -1:
				choice = 0
			case -2:
				// Tile index → device, identical across layers so
				// consecutive aligned layers keep tiles in place.
				choice = spec.Tile % spec.NumChoices
			default:
				choice = placement
				if choice >= spec.NumChoices {
					choice = spec.NumChoices - 1
				}
			}
		}
		if err := w.Apply(choice); err != nil {
			panic(err)
		}
		out = append(out, choice)
	}
	return out
}
