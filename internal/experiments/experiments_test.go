package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// cell lookup helpers over the generated tables.

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableCSVRoundTrip(t *testing.T) {
	tb := &Table{Name: "unit", Title: "x", Header: []string{"a", "b"}}
	tb.AddRowF(1.5, "hi,there")
	dir := t.TempDir()
	path, err := tb.WriteCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "a,b") || !strings.Contains(got, `"hi,there"`) {
		t.Fatalf("csv content wrong:\n%s", got)
	}
	if filepath.Base(path) != "unit.csv" {
		t.Fatalf("path %s", path)
	}
	var sb strings.Builder
	tb.Fprint(&sb)
	if !strings.Contains(sb.String(), "== x ==") {
		t.Fatal("ascii print missing title")
	}
}

func TestStructuredSeedsValid(t *testing.T) {
	for _, s := range []*Scenario{Augmented(), Swarm(5)} {
		seeds := StructuredSeeds(s.Env)
		if len(seeds) < 20 {
			t.Fatalf("%s: only %d seeds", s.Name, len(seeds))
		}
		for i, g := range seeds {
			if _, err := s.Env.Decode(g); err != nil {
				t.Fatalf("%s seed %d invalid: %v", s.Name, i, err)
			}
		}
	}
}

func TestFig13Shape(t *testing.T) {
	s := Augmented()
	oracle := DefaultOracle(s.Env)
	opts := DefaultFig13Options()
	// Shrink the grid for test speed; axes endpoints preserved.
	opts.DelaysMs = []float64{100, 50, 5}
	opts.BandwidthsMbps = []float64{50, 200, 400}
	tb, err := Fig13(s, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Per-cell: collect feasibility and accuracies.
	type key struct{ delay, bw string }
	feasible := map[key]map[string]float64{} // cell -> method -> accuracy
	for _, row := range tb.Rows {
		if row[5] != "true" {
			continue
		}
		k := key{row[0], row[1]}
		if feasible[k] == nil {
			feasible[k] = map[string]float64{}
		}
		feasible[k][row[2]] = parseF(t, row[3])
	}

	// 1. Murmuration covers at least as many cells as every baseline.
	cover := map[string]int{}
	for _, methods := range feasible {
		for m := range methods {
			cover[m]++
		}
	}
	for m, c := range cover {
		if m == "murmuration" {
			continue
		}
		if c > cover["murmuration"] {
			t.Fatalf("baseline %s covers %d cells > murmuration %d", m, c, cover["murmuration"])
		}
	}
	if cover["murmuration"] == 0 {
		t.Fatal("murmuration satisfied no cells")
	}

	// 2. Heavy Neurosurgeon models (DenseNet161, ResNeXt101) satisfy no
	// cell at the 140 ms SLO (paper: "not able to satisfy any SLO").
	for m, c := range cover {
		if strings.Contains(m, "densenet161") || strings.Contains(m, "resnext101") {
			if c > 0 {
				t.Fatalf("heavy model %s should be infeasible at 140 ms, covers %d", m, c)
			}
		}
	}

	// 3. Where Murmuration and the best baseline are both feasible,
	// Murmuration's accuracy is within epsilon of (usually above) it.
	wins := 0
	for k, methods := range feasible {
		mur, ok := methods["murmuration"]
		if !ok {
			continue
		}
		bestBase := 0.0
		for m, acc := range methods {
			if m != "murmuration" && acc > bestBase {
				bestBase = acc
			}
		}
		if bestBase == 0 {
			wins++ // only murmuration is feasible here
			continue
		}
		if mur >= bestBase-0.8 {
			wins++
		}
		if mur < bestBase-2.5 {
			t.Fatalf("cell %v: murmuration %.2f%% far below best baseline %.2f%%", k, mur, bestBase)
		}
	}
	if wins < len(feasible)/2 {
		t.Fatalf("murmuration matched/beat baselines in only %d/%d feasible cells", wins, len(feasible))
	}
}

func TestFig14Shape(t *testing.T) {
	s := Swarm(5)
	oracle := DefaultOracle(s.Env)
	opts := DefaultFig14Options()
	opts.LatencySLOsMs = []float64{2000, 400}
	opts.BandwidthsMbps = []float64{5, 100, 500}
	tb, err := Fig14(s, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	cover := map[string]int{}
	murAcc := map[string]float64{}
	for _, row := range tb.Rows {
		if row[5] != "true" {
			continue
		}
		cover[row[2]]++
		if row[2] == "murmuration" {
			murAcc[row[0]+"/"+row[1]] = parseF(t, row[3])
		}
	}
	for m, c := range cover {
		if m != "murmuration" && c > cover["murmuration"] {
			t.Fatalf("baseline %s coverage %d > murmuration %d", m, c, cover["murmuration"])
		}
	}
	// Murmuration must cover every cell at the loose 2000 ms SLO.
	if cover["murmuration"] < 3 {
		t.Fatalf("murmuration covers only %d cells", cover["murmuration"])
	}
}

func TestFig15Shape(t *testing.T) {
	s := Augmented()
	oracle := DefaultOracle(s.Env)
	opts := DefaultFig15Options()
	opts.AccuracySLOs = []float64{72.5, 75.5, 77.5}
	opts.BandwidthsMbps = []float64{50, 400}
	tb, err := Fig15(s, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	// For each cell, murmuration's latency must be ≤ every feasible
	// baseline's latency (it can shrink the model to the SLO).
	type cell struct{ bw, slo string }
	murLat := map[cell]float64{}
	bestBaseLat := map[cell]float64{}
	for _, row := range tb.Rows {
		if row[5] != "true" {
			continue
		}
		k := cell{row[0], row[1]}
		lat := parseF(t, row[4])
		if row[2] == "murmuration" {
			murLat[k] = lat
		} else if cur, ok := bestBaseLat[k]; !ok || lat < cur {
			bestBaseLat[k] = lat
		}
	}
	if len(murLat) == 0 {
		t.Fatal("murmuration satisfied no accuracy SLO")
	}
	var maxRatio float64
	for k, base := range bestBaseLat {
		mur, ok := murLat[k]
		if !ok {
			t.Fatalf("murmuration infeasible where a baseline is feasible: %v", k)
		}
		if mur > base*1.1 {
			t.Fatalf("cell %v: murmuration latency %.1f ms > baseline %.1f ms", k, mur, base)
		}
		if r := base / mur; r > maxRatio {
			maxRatio = r
		}
	}
	// The paper reports up to 6.7×; we require a substantial (≥2×) win
	// somewhere in the grid.
	if maxRatio < 2 {
		t.Fatalf("max latency win only %.2fx; expected ≥2x somewhere", maxRatio)
	}
}

func TestFig16Shape(t *testing.T) {
	s := Augmented()
	oracle := DefaultOracle(s.Env)
	optsA := DefaultFig16aOptions()
	optsA.DelaysMs = []float64{5, 50, 100}
	optsA.BandwidthsMbps = []float64{50, 200, 400}
	ta, err := Fig16a(s, oracle, optsA)
	if err != nil {
		t.Fatal(err)
	}
	checkComplianceTable(t, ta)

	sw := Swarm(5)
	oracleSw := DefaultOracle(sw.Env)
	optsB := DefaultFig16bOptions()
	optsB.BandwidthsMbps = []float64{5, 100, 500}
	tbl, err := Fig16b(sw, oracleSw, optsB)
	if err != nil {
		t.Fatal(err)
	}
	checkComplianceTable(t, tbl)
}

// checkComplianceTable asserts murmuration's compliance ≥ every baseline at
// every SLO, with a strict win at the tightest SLO.
func checkComplianceTable(t *testing.T, tb *Table) {
	t.Helper()
	bySLO := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		if bySLO[row[0]] == nil {
			bySLO[row[0]] = map[string]float64{}
		}
		bySLO[row[0]][row[1]] = parseF(t, row[2])
	}
	anyStrictWin := false
	for slo, methods := range bySLO {
		mur := methods["murmuration"]
		for m, c := range methods {
			if m == "murmuration" {
				continue
			}
			if c > mur+1e-9 {
				t.Fatalf("%s: SLO %s: baseline %s compliance %.1f%% > murmuration %.1f%%",
					tb.Name, slo, m, c, mur)
			}
			if mur >= c+20 {
				anyStrictWin = true
			}
		}
	}
	if !anyStrictWin {
		t.Fatalf("%s: murmuration never improves compliance by ≥20 points", tb.Name)
	}
}

func TestFig17Shape(t *testing.T) {
	opts := DefaultFig17Options()
	opts.MaxDevices = 5
	opts.AccuracySLOs = []float64{75}
	tb, err := Fig17(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Latency with 5 devices must beat 1 device by ≥1.3x; speedups bounded.
	var lat1, lat5 float64
	for _, row := range tb.Rows {
		n := row[0]
		if n == "1" {
			lat1 = parseF(t, row[2])
		}
		if n == "5" {
			lat5 = parseF(t, row[2])
		}
		sp := parseF(t, row[3])
		if sp < 0.5 || sp > 10 {
			t.Fatalf("speedup %v implausible", sp)
		}
	}
	if lat1 == 0 || lat5 == 0 {
		t.Fatal("missing rows")
	}
	if lat1/lat5 < 1.3 {
		t.Fatalf("5-device speedup only %.2fx (1 dev %.1f ms, 5 dev %.1f ms)", lat1/lat5, lat1, lat5)
	}
	if lat1/lat5 > 6 {
		t.Fatalf("5-device speedup %.2fx exceeds the paper's ceiling regime", lat1/lat5)
	}
}

func TestFig18Shape(t *testing.T) {
	opts := DefaultFig18Options()
	opts.EvoPopulation = 64
	opts.EvoGenerations = 40
	opts.Hidden = 64
	opts.Repeats = 1
	tb, err := Fig18(opts)
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, row := range tb.Rows {
		if row[1] == "host-measured" {
			times[row[0]] = parseF(t, row[2])
		}
	}
	evoT, rlT := times["evolutionary-search"], times["murmuration-rl"]
	if evoT <= 0 || rlT <= 0 {
		t.Fatalf("missing host timings: %v", times)
	}
	// Even with a reduced budget, RL must be ≥10x faster (paper: ~1000x
	// with the full search budget and NN-predictor evaluation costs).
	if evoT/rlT < 10 {
		t.Fatalf("RL only %.1fx faster than evolutionary search", evoT/rlT)
	}
}

func TestFig19Shape(t *testing.T) {
	tb, err := Fig19()
	if err != nil {
		t.Fatal(err)
	}
	var reconfig float64 = -1
	minReload := -1.0
	for _, row := range tb.Rows {
		v := parseF(t, row[2])
		if row[1] == "in-memory reconfig" && (reconfig < 0 || v > reconfig) {
			reconfig = v // take the slower (paper-scale) reconfig
		}
		if row[1] == "weight reload" && (minReload < 0 || v < minReload) {
			minReload = v
		}
	}
	if reconfig < 0 || minReload < 0 {
		t.Fatal("missing rows")
	}
	if minReload < reconfig*10 {
		t.Fatalf("weight reload (%.2f ms) should be ≫ reconfig (%.2f ms)", minReload, reconfig)
	}
}

func TestCurvesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RL training is slow")
	}
	s := Augmented()
	opts := DefaultCurveOptions()
	opts.Steps = 60
	opts.EvalEvery = 30
	opts.Hidden = 24
	opts.Seeds = []int64{1}
	opts.ValSize = 10
	curves, err := Curves(s, AugmentedSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"SUPREME", "GCSL", "PPO"} {
		if len(curves[m]) < 2 {
			t.Fatalf("%s produced %d eval points", m, len(curves[m]))
		}
	}
	norm := NormalizeCompliance(curves)
	best := 0.0
	for _, pts := range norm {
		for _, p := range pts {
			if p.Compliance > best {
				best = p.Compliance
			}
		}
	}
	if best < 0.999 {
		t.Fatalf("normalization should put the best compliance at 1.0, got %v", best)
	}
	tb := CurveTable("fig11a", "reward curves", curves)
	if len(tb.Rows) != len(curves["SUPREME"]) {
		t.Fatal("curve table row count mismatch")
	}
}

// TestFig11ShapeFull runs the actual training-curve comparison at a
// realistic budget and asserts the paper's ordering: SUPREME dominates GCSL
// and PPO on whole-curve reward and compliance, and PPO collapses under the
// sparse SLO-gated reward (§4.3).
func TestFig11ShapeFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full curve training is slow")
	}
	s := Augmented()
	opts := DefaultCurveOptions()
	opts.Steps = 800
	opts.EvalEvery = 100
	opts.Seeds = []int64{1, 2}
	curves, err := Curves(s, AugmentedSpace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	supR, supC := AUC(curves, "SUPREME")
	gcR, gcC := AUC(curves, "GCSL")
	ppoR, ppoC := AUC(curves, "PPO")
	t.Logf("AUC reward/compliance: SUPREME %.3f/%.3f GCSL %.3f/%.3f PPO %.3f/%.3f",
		supR, supC, gcR, gcC, ppoR, ppoC)
	if supR <= ppoR || supC <= ppoC {
		t.Fatalf("SUPREME must dominate PPO")
	}
	if supR < gcR-0.02 {
		t.Fatalf("SUPREME reward AUC %.3f clearly below GCSL %.3f", supR, gcR)
	}
	if supC <= gcC {
		t.Fatalf("SUPREME compliance AUC %.3f must beat GCSL %.3f", supC, gcC)
	}
	// PPO collapses (paper: near-zero signal under the goal-gated reward).
	if ppoC > 0.5*supC {
		t.Fatalf("PPO compliance %.3f should collapse well below SUPREME %.3f", ppoC, supC)
	}
}
