package experiments

import (
	"fmt"
	"time"

	"murmuration/internal/baselines/evo"
	"murmuration/internal/device"
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/runtime"
	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
	"murmuration/internal/zoo"
)

// Fig17Options parameterizes the scalability sweep.
type Fig17Options struct {
	MaxDevices    int       // paper: 9
	AccuracySLOs  []float64 // paper: 75, 76
	BandwidthMbps float64   // paper: 1 Gb/s
	DelayMs       float64   // paper: 2 ms
}

// DefaultFig17Options matches the paper's setup.
func DefaultFig17Options() Fig17Options {
	return Fig17Options{MaxDevices: 9, AccuracySLOs: []float64{75, 76}, BandwidthMbps: 1000, DelayMs: 2}
}

// Fig17 sweeps the number of swarm devices under accuracy SLOs: for each
// device count, Murmuration (via the per-count oracle, since a policy's
// device head is sized to its cluster) picks the best decision and the table
// records the achieved latency — the paper's 1.7–4.5× scaling curve.
func Fig17(opts Fig17Options) (*Table, error) {
	t := &Table{
		Name:   "fig17",
		Title:  "Fig17: inference latency vs number of devices (1 Gb/s, 2 ms)",
		Header: []string{"devices", "accuracy_slo_pct", "latency_ms", "speedup_vs_1"},
	}
	base := make(map[float64]float64)
	// The decision space for n devices strictly contains every placement
	// over fewer devices (a choice sequence for n-1 devices is valid
	// unchanged on n), so the true optimum is monotone non-increasing in n.
	// The search reflects that nesting: each count runs the evolutionary
	// search seeded with the structured family plus the best genome found
	// for the previous count.
	prevBest := make(map[float64][]int)
	for n := 1; n <= opts.MaxDevices; n++ {
		s := SwarmExtended(n)
		for _, slo := range opts.AccuracySLOs {
			c := env.Constraint{Type: env.AccuracySLO, AccuracyPct: slo}
			for i := 1; i < n; i++ {
				c.BandwidthMbps = append(c.BandwidthMbps, opts.BandwidthMbps)
				c.DelayMs = append(c.DelayMs, opts.DelayMs)
			}
			eopts := evo.DefaultOptions()
			eopts.Population = 96
			eopts.Generations = 40
			eopts.SeedGenomes = SubsampleSeeds(StructuredSeeds(s.Env), eopts.Population/2)
			if g := prevBest[slo]; g != nil {
				eopts.SeedGenomes = append([][]int{g}, eopts.SeedGenomes...)
			}
			res, err := evo.Search(s.Env, c, eopts)
			if err != nil {
				return nil, err
			}
			if !res.Outcome.SLOMet {
				return nil, fmt.Errorf("fig17: no feasible decision at n=%d slo=%v", n, slo)
			}
			// Elitism keeps the seeded previous-count winner in the
			// population, so the result is monotone by construction.
			lat := res.Outcome.LatencyMs
			prevBest[slo] = res.Choices
			if n == 1 {
				base[slo] = lat
			}
			t.AddRowF(n, slo, lat, base[slo]/lat)
		}
	}
	return t, nil
}

// Fig18Options parameterizes the decision-time comparison.
type Fig18Options struct {
	// EvoBudget approximates the paper's evolutionary-search setting.
	EvoPopulation, EvoGenerations int
	// Hidden is the policy LSTM width (paper: 256).
	Hidden int
	// Repeats for timing stability.
	Repeats int
}

// DefaultFig18Options uses the paper-scale policy width.
func DefaultFig18Options() Fig18Options {
	// The evolutionary budget follows Once-for-all's published search
	// setting (population 100, 500 iterations).
	return Fig18Options{EvoPopulation: 100, EvoGenerations: 500, Hidden: 256, Repeats: 3}
}

// Fig18 measures wall-clock decision time of evolutionary search vs the RL
// policy's greedy decode on this host, then scales both to the paper's two
// device profiles via the measured host throughput (the shape — RL orders of
// magnitude faster — is hardware-independent).
func Fig18(opts Fig18Options) (*Table, error) {
	s := Augmented()
	c := env.Constraint{Type: env.LatencySLO, LatencyMs: 140,
		BandwidthMbps: []float64{200}, DelayMs: []float64{20}}

	// Evolutionary search timing.
	eopts := evo.DefaultOptions()
	eopts.Population = opts.EvoPopulation
	eopts.Generations = opts.EvoGenerations
	oracle := NewOracle(s.Env, eopts)
	evoTime := time.Duration(0)
	for r := 0; r < opts.Repeats; r++ {
		oracle.cache = map[string]*env.Decision{} // defeat caching
		start := time.Now()
		if _, err := oracle.Decide(c); err != nil {
			return nil, err
		}
		evoTime += time.Since(start)
	}
	evoTime /= time.Duration(opts.Repeats)

	// RL policy timing (untrained weights time identically to trained).
	p := policy.New(s.Env, opts.Hidden, 1)
	rlTime := time.Duration(0)
	for r := 0; r < opts.Repeats; r++ {
		start := time.Now()
		if _, err := p.GreedyDecision(c); err != nil {
			return nil, err
		}
		rlTime += time.Since(start)
	}
	rlTime /= time.Duration(opts.Repeats)

	hostFlops := measureHostFlops()
	t := &Table{
		Name:   "fig18",
		Title:  "Fig18: model search time, evolutionary search vs Murmuration RL",
		Header: []string{"method", "device", "search_time_s"},
	}
	for _, dev := range []device.Kind{device.GPUDesktop, device.RaspberryPi4} {
		scale := hostFlops / device.NewProfile(dev).FlopsPerSec
		t.AddRowF("evolutionary-search", dev.String(), evoTime.Seconds()*scale)
		t.AddRowF("murmuration-rl", dev.String(), rlTime.Seconds()*scale)
	}
	t.AddRowF("evolutionary-search", "host-measured", evoTime.Seconds())
	t.AddRowF("murmuration-rl", "host-measured", rlTime.Seconds())
	return t, nil
}

// measureHostFlops estimates this host's effective dense-compute throughput
// with a short matmul microbenchmark, used only to rescale Fig. 18 timings
// onto the paper's device profiles.
func measureHostFlops() float64 {
	n := 192
	a := tensor.New(n, n)
	b := tensor.New(n, n)
	for i := range a.Data {
		a.Data[i] = 1.0001
		b.Data[i] = 0.9999
	}
	// Warm up.
	tensor.MatMul(a, b)
	start := time.Now()
	iters := 10
	for i := 0; i < iters; i++ {
		tensor.MatMul(a, b)
	}
	el := time.Since(start).Seconds()
	return float64(2*n*n*n*iters) / el
}

// Fig19 measures model-switch time: Murmuration's in-memory supernet
// reconfiguration versus reloading each fixed model's weights (paper §6.4.5,
// "switching different types of models will require reloading the weights").
func Fig19() (*Table, error) {
	t := &Table{
		Name:   "fig19",
		Title:  "Fig19: model switch time (in-memory supernet vs weight reload)",
		Header: []string{"model", "mechanism", "switch_time_ms"},
	}
	arch := supernet.DefaultArch()

	// Supernet reconfig on the real (tiny) in-memory supernet.
	rc := runtime.NewReconfigurer(supernet.New(supernet.TinyArch(4), 2))
	tiny := supernet.TinyArch(4)
	if _, err := rc.Switch(tiny.MaxConfig()); err != nil {
		return nil, err
	}
	var best time.Duration
	for i := 0; i < 5; i++ {
		cfg := tiny.MinConfig()
		if i%2 == 0 {
			cfg = tiny.MaxConfig()
		}
		d, err := rc.Switch(cfg)
		if err != nil {
			return nil, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	t.AddRowF("murmuration-supernet", "in-memory reconfig", float64(best.Microseconds())/1000)

	// Paper-scale supernet reconfig cost model: validation + cost table on
	// the full search space (still no weight movement).
	start := time.Now()
	cfg := arch.MaxConfig()
	if err := arch.Validate(cfg); err != nil {
		return nil, err
	}
	if _, err := arch.Costs(cfg); err != nil {
		return nil, err
	}
	t.AddRowF("murmuration-supernet-paperscale", "in-memory reconfig", float64(time.Since(start).Microseconds())/1000)

	for _, m := range zoo.All() {
		d, err := runtime.SimulatedWeightLoad(int(m.TotalWeightBytes()))
		if err != nil {
			return nil, err
		}
		t.AddRowF(m.Name, "weight reload", float64(d.Microseconds())/1000)
	}
	return t, nil
}
