package nas

import (
	"fmt"
	"math/rand"

	"murmuration/internal/dataset"
	"murmuration/internal/nn"
	"murmuration/internal/supernet"
)

// TrainOptions configures one-shot supernet training.
type TrainOptions struct {
	Steps     int
	BatchSize int
	LR        float64
	Momentum  float64
	// RandomSubmodels is the number of random submodels per sandwich step
	// (in addition to max and min). The OFA-style sandwich rule uses 2.
	RandomSubmodels int
	// DistillWeight blends the KD loss (against the max submodel's soft
	// labels) with the hard-label CE loss for the smaller submodels.
	DistillWeight float64
	// WarmupSteps trains only the max config before opening the space
	// (progressive shrinking phase 0).
	WarmupSteps int
	Seed        int64
	// Progress, if non-nil, receives (step, trainLoss) after each step.
	Progress func(step int, loss float64)
}

// DefaultTrainOptions returns settings that converge on the tiny synthetic
// task in a few hundred steps.
func DefaultTrainOptions() TrainOptions {
	return TrainOptions{
		Steps:           300,
		BatchSize:       16,
		LR:              0.05,
		Momentum:        0.9,
		RandomSubmodels: 2,
		DistillWeight:   0.5,
		WarmupSteps:     50,
		Seed:            1,
	}
}

// Train runs one-shot NAS training with the sandwich rule + in-place
// distillation (paper §4.1, following Once-for-All [1]): every step trains
// the max submodel on hard labels, then the min submodel and K random
// submodels on a blend of hard labels and the max submodel's soft labels.
// Spatial partitioning and quantization settings are sampled too, which is
// what makes the resulting supernet partition-ready.
func Train(s *supernet.Supernet, train *dataset.Dataset, opts TrainOptions) error {
	if train.Len() == 0 {
		return fmt.Errorf("nas: empty training set")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	opt := nn.NewSGD(opts.LR, opts.Momentum, 1e-5)
	params := s.Params()
	a := s.Arch

	for step := 0; step < opts.Steps; step++ {
		x, labels := train.RandomBatch(opts.BatchSize, rng)

		// Max submodel: hard-label CE; its probabilities teach the others.
		maxCfg := a.MaxConfig()
		logits, caches, err := s.Forward(x, maxCfg, true)
		if err != nil {
			return err
		}
		loss, dlogits, probs := nn.SoftmaxCrossEntropy(logits, labels)
		s.Backward(dlogits, caches)

		if step >= opts.WarmupSteps {
			cfgs := []*supernet.Config{a.MinConfig()}
			for i := 0; i < opts.RandomSubmodels; i++ {
				cfgs = append(cfgs, a.RandomConfig(rng))
			}
			for _, cfg := range cfgs {
				lg, cc, err := s.Forward(x, cfg, true)
				if err != nil {
					return err
				}
				_, dce, _ := nn.SoftmaxCrossEntropy(lg, labels)
				_, dkd := nn.KLDivSoft(lg, probs)
				w := float32(opts.DistillWeight)
				d := dce.Scale(1 - w).Add(dkd.Scale(w))
				s.Backward(d, cc)
			}
		}

		nn.ClipGradNorm(params, 5)
		opt.Step(params)
		if opts.Progress != nil {
			opts.Progress(step, loss)
		}
	}
	return nil
}

// Evaluate measures top-1 accuracy (%) of a submodel on a dataset.
func Evaluate(s *supernet.Supernet, cfg *supernet.Config, ds *dataset.Dataset) (float64, error) {
	x, labels := ds.All()
	logits, _, err := s.Forward(x, cfg, false)
	if err != nil {
		return 0, err
	}
	return nn.Accuracy(logits, labels) * 100, nil
}

// CollectSamples measures the accuracy of n random submodels (plus max and
// min) for fitting an MLP predictor.
func CollectSamples(s *supernet.Supernet, ds *dataset.Dataset, n int, seed int64) ([]Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	cfgs := []*supernet.Config{s.Arch.MaxConfig(), s.Arch.MinConfig()}
	for i := 0; i < n; i++ {
		cfgs = append(cfgs, s.Arch.RandomConfig(rng))
	}
	var out []Sample
	for _, cfg := range cfgs {
		acc, err := Evaluate(s, cfg, ds)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Config: cfg, Accuracy: acc})
	}
	return out, nil
}
