// Package nas implements stage 1 of Murmuration: one-shot training of the
// partition-ready supernet (sandwich rule with in-place distillation and a
// progressive-shrinking schedule) and the accuracy predictor used by the RL
// stages.
//
// The paper trains its supernet on ImageNet and then uses "an accuracy
// predictor ... for accuracy prediction during RL policy training" (§6.1.1).
// This package provides both that predictor — an analytic model calibrated to
// the paper's reported accuracy range (max submodel ≈ 78.5%, min ≈ 72%) —
// and a trainable MLP predictor that can be fit to measured (config,
// accuracy) pairs from the in-Go supernet.
package nas

import (
	"hash/fnv"
	"math"

	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
)

// Predictor estimates the top-1 accuracy (in percent) of a submodel config.
type Predictor interface {
	Accuracy(cfg *supernet.Config) float64
}

// CalibratedPredictor is the analytic accuracy model. Penalty weights are
// calibrated so that, over the paper-scale search space (DefaultArch):
//
//   - the max config scores ≈ 78.5 % (paper Fig. 13/15 upper envelope),
//   - the min config scores ≈ 72 % (paper Fig. 15 x-axis lower end),
//   - resolution and depth dominate, kernel/width contribute moderately,
//   - 8-bit activation quantization costs ≈ 0.4 % (per the OFA/quantization
//     literature the paper builds on),
//   - each FDSP partitioned layer costs a small penalty that grows with the
//     tile count (ADCNN reports ~0.3–1 % after finetuning).
//
// A tiny deterministic per-config jitter (±0.15 %) breaks ties so search
// algorithms see a non-degenerate landscape; it is a pure hash of the
// config, so repeated queries agree.
type CalibratedPredictor struct {
	Arch *supernet.Arch

	MaxAccuracy  float64
	ResWeight    float64
	DepthWeight  float64 // per dropped layer
	KernelWeight float64
	ExpandWeight float64
	QuantWeight  float64
	PartWeight   float64
	JitterAmp    float64
}

// NewCalibratedPredictor returns the default calibration for a search space.
func NewCalibratedPredictor(a *supernet.Arch) *CalibratedPredictor {
	return &CalibratedPredictor{
		Arch:         a,
		MaxAccuracy:  78.5,
		ResWeight:    6.0,
		DepthWeight:  0.30,
		KernelWeight: 0.8,
		ExpandWeight: 0.75,
		QuantWeight:  0.4,
		PartWeight:   0.6,
		JitterAmp:    0.15,
	}
}

// Accuracy implements Predictor.
func (p *CalibratedPredictor) Accuracy(cfg *supernet.Config) float64 {
	a := p.Arch
	maxRes := float64(maxOf(a.Resolutions))
	acc := p.MaxAccuracy
	acc -= p.ResWeight * (maxRes - float64(cfg.Resolution)) / maxRes

	for si, d := range cfg.Depths {
		acc -= p.DepthWeight * float64(a.Stages[si].MaxDepth-d)
	}

	maxK, minK := float64(maxOf(a.Kernels)), float64(minOf(a.Kernels))
	maxE, minE := float64(maxOf(a.Expands)), float64(minOf(a.Expands))
	var kPen, ePen, qPen, pPen float64
	for _, l := range cfg.Layers {
		if maxK > minK {
			kPen += (maxK - float64(l.Kernel)) / (maxK - minK)
		}
		if maxE > minE {
			ePen += (maxE - float64(l.Expand)) / (maxE - minE)
		}
		qPen += (32 - float64(l.Quant)) / 24
		pPen += float64(l.Partition.NumTiles()-1) / 3
	}
	n := float64(len(cfg.Layers))
	acc -= p.KernelWeight * kPen / n
	acc -= p.ExpandWeight * ePen / n
	acc -= p.QuantWeight * qPen / n
	acc -= p.PartWeight * pPen / n

	acc += p.jitter(cfg)
	return acc
}

// jitter returns a deterministic pseudo-random offset in [-JitterAmp, +JitterAmp].
func (p *CalibratedPredictor) jitter(cfg *supernet.Config) float64 {
	h := fnv.New64a()
	h.Write([]byte(cfg.String()))
	u := float64(h.Sum64()%100000) / 100000 // [0,1)
	return (2*u - 1) * p.JitterAmp
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Featurize converts a config into the fixed-length feature vector used by
// the MLP predictor: [resNorm, per-stage depth norms..., kernel mean,
// expand mean, quant mean, partition mean].
func Featurize(a *supernet.Arch, cfg *supernet.Config) []float64 {
	maxRes := float64(maxOf(a.Resolutions))
	fs := []float64{float64(cfg.Resolution) / maxRes}
	for si, d := range cfg.Depths {
		fs = append(fs, float64(d)/float64(a.Stages[si].MaxDepth))
	}
	maxK := float64(maxOf(a.Kernels))
	maxE := float64(maxOf(a.Expands))
	var k, e, q, pt float64
	for _, l := range cfg.Layers {
		k += float64(l.Kernel) / maxK
		e += float64(l.Expand) / maxE
		q += float64(l.Quant) / 32
		pt += float64(l.Partition.NumTiles()) / 4
	}
	n := float64(len(cfg.Layers))
	return append(fs, k/n, e/n, q/n, pt/n)
}

// MLPPredictor is a small two-layer perceptron fit to measured accuracies.
type MLPPredictor struct {
	Arch   *supernet.Arch
	w1, b1 *tensor.Tensor
	w2, b2 *tensor.Tensor
	hidden int
}

// Sample is one (config, measured accuracy %) training pair.
type Sample struct {
	Config   *supernet.Config
	Accuracy float64
}

// FitMLP trains an MLP predictor on samples with plain full-batch gradient
// descent. epochs≈2000 converges for a few hundred samples.
func FitMLP(a *supernet.Arch, samples []Sample, hidden, epochs int, lr float64, seed int64) *MLPPredictor {
	if hidden <= 0 {
		hidden = 16
	}
	dim := len(Featurize(a, a.MaxConfig()))
	p := &MLPPredictor{Arch: a, hidden: hidden}
	p.w1 = tensor.New(hidden, dim)
	p.b1 = tensor.New(hidden)
	p.w2 = tensor.New(1, hidden)
	p.b2 = tensor.New(1)
	// Deterministic init from seed.
	s := uint64(seed)*2654435761 + 1
	next := func() float32 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float32(s%10000)/5000 - 1
	}
	for i := range p.w1.Data {
		p.w1.Data[i] = next() * 0.5
	}
	for i := range p.w2.Data {
		p.w2.Data[i] = next() * 0.5
	}

	n := len(samples)
	if n == 0 {
		return p
	}
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i, sm := range samples {
		X[i] = Featurize(a, sm.Config)
		Y[i] = sm.Accuracy
	}
	for epoch := 0; epoch < epochs; epoch++ {
		// Accumulate full-batch gradients.
		gw1 := make([]float64, len(p.w1.Data))
		gb1 := make([]float64, hidden)
		gw2 := make([]float64, hidden)
		gb2 := 0.0
		for i := 0; i < n; i++ {
			h, preAct := p.hiddenFwd(X[i])
			pred := p.outFwd(h)
			e := (pred - Y[i]) / float64(n)
			gb2 += e
			for j := 0; j < hidden; j++ {
				gw2[j] += e * h[j]
				// dh through tanh
				dh := e * float64(p.w2.Data[j]) * (1 - math.Tanh(preAct[j])*math.Tanh(preAct[j]))
				gb1[j] += dh
				for d := 0; d < dim; d++ {
					gw1[j*dim+d] += dh * X[i][d]
				}
			}
		}
		for i := range p.w1.Data {
			p.w1.Data[i] -= float32(lr * gw1[i])
		}
		for j := 0; j < hidden; j++ {
			p.b1.Data[j] -= float32(lr * gb1[j])
			p.w2.Data[j] -= float32(lr * gw2[j])
		}
		p.b2.Data[0] -= float32(lr * gb2)
	}
	return p
}

func (p *MLPPredictor) hiddenFwd(x []float64) (h, pre []float64) {
	dim := len(x)
	h = make([]float64, p.hidden)
	pre = make([]float64, p.hidden)
	for j := 0; j < p.hidden; j++ {
		s := float64(p.b1.Data[j])
		for d := 0; d < dim; d++ {
			s += float64(p.w1.Data[j*dim+d]) * x[d]
		}
		pre[j] = s
		h[j] = math.Tanh(s)
	}
	return h, pre
}

func (p *MLPPredictor) outFwd(h []float64) float64 {
	s := float64(p.b2.Data[0])
	for j := 0; j < p.hidden; j++ {
		s += float64(p.w2.Data[j]) * h[j]
	}
	return s
}

// Accuracy implements Predictor.
func (p *MLPPredictor) Accuracy(cfg *supernet.Config) float64 {
	h, _ := p.hiddenFwd(Featurize(p.Arch, cfg))
	return p.outFwd(h)
}
