package nas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"murmuration/internal/dataset"
	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
)

func TestCalibratedPredictorAnchors(t *testing.T) {
	a := supernet.DefaultArch()
	p := NewCalibratedPredictor(a)
	maxAcc := p.Accuracy(a.MaxConfig())
	minAcc := p.Accuracy(a.MinConfig())
	if maxAcc < 78.0 || maxAcc > 79.0 {
		t.Fatalf("max config accuracy %v, want ≈78.5", maxAcc)
	}
	if minAcc < 71.0 || minAcc > 73.0 {
		t.Fatalf("min config accuracy %v, want ≈72", minAcc)
	}
	if maxAcc <= minAcc {
		t.Fatal("max must beat min")
	}
}

func TestPredictorMonotoneInSettings(t *testing.T) {
	a := supernet.DefaultArch()
	p := NewCalibratedPredictor(a)
	p.JitterAmp = 0 // isolate the deterministic part
	base := a.MaxConfig()
	baseAcc := p.Accuracy(base)

	res := base.Clone()
	res.Resolution = 160
	if p.Accuracy(res) >= baseAcc {
		t.Fatal("lower resolution must lower accuracy")
	}

	q := base.Clone()
	for i := range q.Layers {
		q.Layers[i].Quant = tensor.Bits8
	}
	if p.Accuracy(q) >= baseAcc {
		t.Fatal("8-bit quantization must lower accuracy")
	}

	part := base.Clone()
	for i := range part.Layers {
		part.Layers[i].Partition = supernet.Partition{Gy: 2, Gx: 2}
	}
	if p.Accuracy(part) >= baseAcc {
		t.Fatal("spatial partitioning must lower accuracy")
	}

	k := base.Clone()
	for i := range k.Layers {
		k.Layers[i].Kernel = 3
	}
	if p.Accuracy(k) >= baseAcc {
		t.Fatal("smaller kernels must lower accuracy")
	}
}

func TestPredictorDeterministic(t *testing.T) {
	a := supernet.DefaultArch()
	p := NewCalibratedPredictor(a)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		cfg := a.RandomConfig(rng)
		if p.Accuracy(cfg) != p.Accuracy(cfg) {
			t.Fatal("predictor must be deterministic")
		}
	}
}

// Property: all random configs land within the calibrated accuracy band.
func TestPredictorBoundedProperty(t *testing.T) {
	a := supernet.DefaultArch()
	p := NewCalibratedPredictor(a)
	f := func(seed int64) bool {
		cfg := a.RandomConfig(rand.New(rand.NewSource(seed)))
		acc := p.Accuracy(cfg)
		return acc > 70 && acc < 79.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFeaturizeFixedLength(t *testing.T) {
	a := supernet.DefaultArch()
	rng := rand.New(rand.NewSource(2))
	want := len(Featurize(a, a.MaxConfig()))
	for i := 0; i < 20; i++ {
		cfg := a.RandomConfig(rng)
		if got := len(Featurize(a, cfg)); got != want {
			t.Fatalf("feature length %d varies from %d", got, want)
		}
	}
}

func TestMLPPredictorFitsCalibrated(t *testing.T) {
	// The MLP should be able to regress the analytic predictor closely.
	a := supernet.DefaultArch()
	cal := NewCalibratedPredictor(a)
	cal.JitterAmp = 0
	rng := rand.New(rand.NewSource(3))
	var samples []Sample
	for i := 0; i < 150; i++ {
		cfg := a.RandomConfig(rng)
		samples = append(samples, Sample{Config: cfg, Accuracy: cal.Accuracy(cfg)})
	}
	mlp := FitMLP(a, samples, 16, 3000, 0.05, 7)
	var mae float64
	for i := 0; i < 50; i++ {
		cfg := a.RandomConfig(rng)
		mae += math.Abs(mlp.Accuracy(cfg) - cal.Accuracy(cfg))
	}
	mae /= 50
	if mae > 0.5 {
		t.Fatalf("MLP predictor MAE %v%% too high", mae)
	}
}

func TestDatasetGeneration(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Classes: 4, PerClass: 10, Size: 16, NoiseStd: 0.1, Seed: 1})
	if ds.Len() != 40 {
		t.Fatalf("dataset size %d", ds.Len())
	}
	counts := map[int]int{}
	for _, l := range ds.Labels {
		counts[l]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 10 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
	// Deterministic for a fixed seed.
	ds2 := dataset.Generate(dataset.Config{Classes: 4, PerClass: 10, Size: 16, NoiseStd: 0.1, Seed: 1})
	for i := range ds.Images[0].Data {
		if ds.Images[0].Data[i] != ds2.Images[0].Data[i] {
			t.Fatal("generation must be deterministic")
		}
	}
	// Values bounded.
	for _, v := range ds.Images[0].Data {
		if v < -1 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
	}
}

func TestDatasetSplitAndBatch(t *testing.T) {
	ds := dataset.Generate(dataset.Config{Classes: 2, PerClass: 10, Size: 8, Seed: 2})
	tr, val := ds.Split(0.8)
	if tr.Len()+val.Len() != ds.Len() {
		t.Fatal("split lost samples")
	}
	if tr.Len() != 16 {
		t.Fatalf("train size %d", tr.Len())
	}
	x, labels := tr.Batch([]int{0, 3})
	if x.Shape[0] != 2 || x.Shape[1] != 3 || x.Shape[2] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if labels[0] != tr.Labels[0] || labels[1] != tr.Labels[3] {
		t.Fatal("batch labels wrong")
	}
}

func TestOneShotTrainingImprovesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	a := supernet.TinyArch(4)
	s := supernet.New(a, 42)
	ds := dataset.Generate(dataset.Config{Classes: 4, PerClass: 30, Size: 32, NoiseStd: 0.15, Seed: 42})
	train, val := ds.Split(0.8)

	before, err := Evaluate(s, a.MaxConfig(), val)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultTrainOptions()
	opts.Steps = 120
	opts.WarmupSteps = 40
	opts.BatchSize = 12
	if err := Train(s, train, opts); err != nil {
		t.Fatal(err)
	}
	afterMax, _ := Evaluate(s, a.MaxConfig(), val)
	afterMin, _ := Evaluate(s, a.MinConfig(), val)
	if afterMax <= before+5 {
		t.Fatalf("training did not improve max submodel: %v%% -> %v%%", before, afterMax)
	}
	// The min submodel shares weights and must also have learned something
	// beyond chance (25%).
	if afterMin < 35 {
		t.Fatalf("min submodel accuracy %v%% still at chance", afterMin)
	}
}

func TestCollectSamples(t *testing.T) {
	a := supernet.TinyArch(3)
	s := supernet.New(a, 1)
	ds := dataset.Generate(dataset.Config{Classes: 3, PerClass: 4, Size: 32, Seed: 3})
	samples, err := CollectSamples(s, ds, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 { // max + min + 3 random
		t.Fatalf("got %d samples", len(samples))
	}
	for _, sm := range samples {
		if sm.Accuracy < 0 || sm.Accuracy > 100 {
			t.Fatalf("accuracy %v out of range", sm.Accuracy)
		}
	}
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	a := supernet.TinyArch(2)
	s := supernet.New(a, 1)
	if err := Train(s, &dataset.Dataset{Classes: 2, Size: 32}, DefaultTrainOptions()); err == nil {
		t.Fatal("empty dataset should error")
	}
}
