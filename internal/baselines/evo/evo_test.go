package evo

import (
	"testing"

	"murmuration/internal/device"
	"murmuration/internal/nas"
	"murmuration/internal/rl/env"
	"murmuration/internal/supernet"
)

func tinyEnv() *env.Env {
	a := supernet.TinyArch(4)
	return env.New(a, nas.NewCalibratedPredictor(a), []device.Kind{device.RaspberryPi4, device.GPUDesktop})
}

func TestSearchFindsFeasibleDecision(t *testing.T) {
	e := tinyEnv()
	c := env.Constraint{Type: env.LatencySLO, LatencyMs: 100,
		BandwidthMbps: []float64{200}, DelayMs: []float64{10}}
	opts := DefaultOptions()
	opts.Population = 16
	opts.Generations = 8
	res, err := Search(e, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.SLOMet {
		t.Fatalf("search failed to satisfy an easy SLO: %+v", res.Outcome)
	}
	if _, err := e.Decode(res.Choices); err != nil {
		t.Fatalf("winning genome invalid: %v", err)
	}
	if res.Evaluations < opts.Population {
		t.Fatal("evaluation counter implausible")
	}
}

func TestSearchBeatsRandom(t *testing.T) {
	e := tinyEnv()
	c := env.Constraint{Type: env.LatencySLO, LatencyMs: 40,
		BandwidthMbps: []float64{150}, DelayMs: []float64{10}}
	opts := DefaultOptions()
	opts.Population = 24
	opts.Generations = 12
	res, err := Search(e, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the best of an equal number of pure random samples.
	opts2 := opts
	opts2.Generations = 0
	opts2.Seed = 99
	rnd, err := Search(e, c, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Reward < rnd.Outcome.Reward-1e-9 {
		t.Fatalf("evolution (%v) lost to its own random init (%v)",
			res.Outcome.Reward, rnd.Outcome.Reward)
	}
}

func TestSearchDeterministicPerSeed(t *testing.T) {
	e := tinyEnv()
	c := env.Constraint{Type: env.LatencySLO, LatencyMs: 60,
		BandwidthMbps: []float64{100}, DelayMs: []float64{10}}
	opts := DefaultOptions()
	opts.Population = 12
	opts.Generations = 4
	r1, err := Search(e, c, opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Search(e, c, opts)
	if r1.Outcome.Reward != r2.Outcome.Reward {
		t.Fatal("search must be deterministic for a fixed seed")
	}
}
