// Package evo implements evolutionary search over the joint (submodel,
// placement) decision space — the standard way to specialize a one-shot NAS
// supernet (Once-for-all [1]) and the runtime comparator of the paper's
// Fig. 18, where Murmuration's RL policy makes the same decision orders of
// magnitude faster.
//
// The genome is the environment's raw choice sequence, so every individual
// is schedule-valid by construction and the search optimizes exactly the
// same reward the RL policy does.
package evo

import (
	"math/rand"
	"sort"

	"murmuration/internal/rl/env"
)

// Options configures the evolutionary search.
type Options struct {
	Population  int
	Generations int
	// TournamentK individuals compete per parent selection.
	TournamentK int
	MutationPos int // genome positions re-rolled per mutation
	EliteFrac   float64
	Seed        int64
	// SeedGenomes are injected into the initial population (standard
	// seeded-initialization; e.g. structured strategies like "uniform 2×2
	// grid, round-robin devices"). Invalid entries are repaired step-wise.
	SeedGenomes [][]int
}

// DefaultOptions matches typical OFA evolutionary-search settings scaled to
// this problem.
func DefaultOptions() Options {
	return Options{
		Population:  64,
		Generations: 30,
		TournamentK: 4,
		MutationPos: 3,
		EliteFrac:   0.2,
		Seed:        1,
	}
}

// Result is the best decision found.
type Result struct {
	Choices []int
	Outcome env.Outcome
	// Evaluations counts env.Evaluate calls (the search cost driver).
	Evaluations int
}

type individual struct {
	choices []int
	reward  float64
	outcome env.Outcome
}

// Search runs the evolutionary search for constraint c.
func Search(e *env.Env, c env.Constraint, opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	evals := 0

	evaluate := func(choices []int) (env.Outcome, error) {
		d, err := e.Decode(choices)
		if err != nil {
			return env.Outcome{}, err
		}
		evals++
		return e.Evaluate(c, d)
	}

	randomGenome := func() []int {
		w := e.NewWalker()
		for !w.Done() {
			spec := w.Next()
			if err := w.Apply(rng.Intn(spec.NumChoices)); err != nil {
				panic(err)
			}
		}
		return w.Choices()
	}

	// mutateGenome re-rolls MutationPos random positions, repairing the
	// suffix where the schedule shape changes.
	mutateGenome := func(g []int) []int {
		positions := map[int]bool{}
		for i := 0; i < opts.MutationPos; i++ {
			positions[rng.Intn(len(g))] = true
		}
		w := e.NewWalker()
		var out []int
		i := 0
		for !w.Done() {
			spec := w.Next()
			var choice int
			switch {
			case i < len(g) && !positions[i] && g[i] < spec.NumChoices:
				choice = g[i]
			default:
				choice = rng.Intn(spec.NumChoices)
			}
			if err := w.Apply(choice); err != nil {
				panic(err)
			}
			out = append(out, choice)
			i++
		}
		return out
	}

	// crossoverGenome splices a prefix of a with a suffix of b, repairing
	// validity step by step.
	crossoverGenome := func(a, b []int) []int {
		cut := rng.Intn(len(a))
		w := e.NewWalker()
		var out []int
		i := 0
		for !w.Done() {
			spec := w.Next()
			var src []int
			if i < cut {
				src = a
			} else {
				src = b
			}
			var choice int
			if i < len(src) && src[i] < spec.NumChoices {
				choice = src[i]
			} else {
				choice = rng.Intn(spec.NumChoices)
			}
			if err := w.Apply(choice); err != nil {
				panic(err)
			}
			out = append(out, choice)
			i++
		}
		return out
	}

	// repairGenome replays a possibly-invalid genome through the schedule,
	// keeping every choice that fits and re-rolling the rest.
	repairGenome := func(g []int) []int {
		w := e.NewWalker()
		var out []int
		i := 0
		for !w.Done() {
			spec := w.Next()
			choice := rng.Intn(spec.NumChoices)
			if i < len(g) && g[i] >= 0 && g[i] < spec.NumChoices {
				choice = g[i]
			}
			if err := w.Apply(choice); err != nil {
				panic(err)
			}
			out = append(out, choice)
			i++
		}
		return out
	}

	pop := make([]individual, opts.Population)
	for i := range pop {
		var g []int
		if i < len(opts.SeedGenomes) {
			g = repairGenome(opts.SeedGenomes[i])
		} else {
			g = randomGenome()
		}
		out, err := evaluate(g)
		if err != nil {
			return Result{}, err
		}
		pop[i] = individual{choices: g, reward: out.Reward, outcome: out}
	}

	tournament := func() individual {
		best := pop[rng.Intn(len(pop))]
		for i := 1; i < opts.TournamentK; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.reward > best.reward {
				best = c
			}
		}
		return best
	}

	for gen := 0; gen < opts.Generations; gen++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].reward > pop[j].reward })
		elite := int(float64(len(pop)) * opts.EliteFrac)
		if elite < 1 {
			elite = 1
		}
		next := append([]individual(nil), pop[:elite]...)
		for len(next) < opts.Population {
			var g []int
			if rng.Float64() < 0.5 {
				g = mutateGenome(tournament().choices)
			} else {
				g = crossoverGenome(tournament().choices, tournament().choices)
			}
			out, err := evaluate(g)
			if err != nil {
				return Result{}, err
			}
			next = append(next, individual{choices: g, reward: out.Reward, outcome: out})
		}
		pop = next
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].reward > pop[j].reward })
	return Result{Choices: pop[0].choices, Outcome: pop[0].outcome, Evaluations: evals}, nil
}
