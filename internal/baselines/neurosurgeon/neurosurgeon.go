// Package neurosurgeon implements the Neurosurgeon baseline (Kang et al.,
// the paper's [7]): layer-wise partitioning of a fixed DNN between a local
// device and a single remote device, choosing the split point that minimizes
// end-to-end latency given the current bandwidth and delay. The dynamic
// program below is equivalent to the min-cut formulation of DADS [5] for
// chain-structured models.
package neurosurgeon

import (
	"fmt"

	"murmuration/internal/device"
	"murmuration/internal/supernet"
)

// Plan is a chosen split: layers [0, SplitAfter) run locally, layers
// [SplitAfter, len) run on the remote device. SplitAfter == 0 offloads
// everything (the input itself is shipped); SplitAfter == len(layers) runs
// fully local.
type Plan struct {
	SplitAfter int
	LatencySec float64
	// TransferBytes is the activation volume crossing the link.
	TransferBytes float64
}

// Split finds the latency-optimal split of a layer chain between cluster
// device 0 (local) and device `remote`.
func Split(layers []supernet.LayerCost, cluster *device.Cluster, remote int) (Plan, error) {
	if remote <= 0 || remote >= cluster.N() {
		return Plan{}, fmt.Errorf("neurosurgeon: remote device %d out of range", remote)
	}
	n := len(layers)
	if n == 0 {
		return Plan{}, fmt.Errorf("neurosurgeon: empty layer chain")
	}
	local := cluster.Devices[0].Profile
	rdev := cluster.Devices[remote]

	// Prefix/suffix execution times.
	prefixLocal := make([]float64, n+1)
	for i := 0; i < n; i++ {
		prefixLocal[i+1] = prefixLocal[i] + local.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
	}
	suffixRemote := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixRemote[i] = suffixRemote[i+1] + rdev.Profile.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
	}

	best := Plan{SplitAfter: -1, LatencySec: 1e18}
	// The classifier result returned from the remote side is tiny but paid.
	resultBytes := float64(layers[n-1].OutElems * 4)
	for k := 0; k <= n; k++ {
		var xfer, xferBytes float64
		if k < n {
			// Activation entering layer k crosses the link (fixed DNNs use
			// full 32-bit activations), plus the small result return.
			xferBytes = float64(layers[k].InElems * 4)
			xfer = rdev.TransferTime(xferBytes) + rdev.TransferTime(resultBytes)
		}
		total := prefixLocal[k] + xfer + suffixRemote[k]
		if total < best.LatencySec {
			best = Plan{SplitAfter: k, LatencySec: total, TransferBytes: xferBytes}
		}
	}
	return best, nil
}

// SplitBruteForce recomputes the optimum by explicit enumeration with
// independent arithmetic; used by tests to validate Split.
func SplitBruteForce(layers []supernet.LayerCost, cluster *device.Cluster, remote int) (Plan, error) {
	n := len(layers)
	if n == 0 {
		return Plan{}, fmt.Errorf("neurosurgeon: empty layer chain")
	}
	local := cluster.Devices[0].Profile
	rdev := cluster.Devices[remote]
	resultBytes := float64(layers[n-1].OutElems * 4)
	best := Plan{SplitAfter: -1, LatencySec: 1e18}
	for k := 0; k <= n; k++ {
		var total float64
		for i := 0; i < k; i++ {
			total += local.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
		}
		var xferBytes float64
		if k < n {
			xferBytes = float64(layers[k].InElems * 4)
			total += rdev.TransferTime(xferBytes) + rdev.TransferTime(resultBytes)
		}
		for i := k; i < n; i++ {
			total += rdev.Profile.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
		}
		if total < best.LatencySec {
			best = Plan{SplitAfter: k, LatencySec: total, TransferBytes: xferBytes}
		}
	}
	return best, nil
}
