package neurosurgeon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"murmuration/internal/device"
	"murmuration/internal/zoo"
)

func TestSplitMatchesBruteForce(t *testing.T) {
	for _, m := range zoo.All() {
		for _, bw := range []float64{5, 50, 200, 500} {
			for _, delay := range []float64{5, 50, 100} {
				cl := device.AugmentedComputing(bw, delay)
				dp, err := Split(m.Layers, cl, 1)
				if err != nil {
					t.Fatal(err)
				}
				bf, err := SplitBruteForce(m.Layers, cl, 1)
				if err != nil {
					t.Fatal(err)
				}
				if dp.SplitAfter != bf.SplitAfter {
					t.Fatalf("%s bw=%v delay=%v: DP split %d != brute %d",
						m.Name, bw, delay, dp.SplitAfter, bf.SplitAfter)
				}
				if diff := dp.LatencySec - bf.LatencySec; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%s: DP latency %v != brute %v", m.Name, dp.LatencySec, bf.LatencySec)
				}
			}
		}
	}
}

func TestHighBandwidthFavorsOffload(t *testing.T) {
	m, _ := zoo.ByName("resnext101-32x8d")
	// Heavy model, fast link to a GPU → offload early.
	cl := device.AugmentedComputing(500, 5)
	p, err := Split(m.Layers, cl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SplitAfter > len(m.Layers)/2 {
		t.Fatalf("heavy model at 500 Mb/s should offload early, split=%d/%d",
			p.SplitAfter, len(m.Layers))
	}
	// Offload must beat fully local.
	localTime := 0.0
	for _, lc := range m.Layers {
		localTime += cl.Devices[0].Profile.LayerTime(lc.FLOPs, lc.MemBytes)
	}
	if p.LatencySec >= localTime {
		t.Fatal("optimal split should beat fully local for a heavy model on a fast link")
	}
}

func TestTerribleLinkFavorsLocal(t *testing.T) {
	m, _ := zoo.ByName("mobilenetv3-large")
	cl := device.AugmentedComputing(0.1, 500) // 100 kb/s, 500 ms
	p, err := Split(m.Layers, cl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.SplitAfter != len(m.Layers) {
		t.Fatalf("at 0.1 Mb/s the split should be fully local, got %d/%d",
			p.SplitAfter, len(m.Layers))
	}
	if p.TransferBytes != 0 {
		t.Fatal("fully local split must transfer nothing")
	}
}

func TestSplitValidation(t *testing.T) {
	m, _ := zoo.ByName("resnet50")
	cl := device.AugmentedComputing(100, 10)
	if _, err := Split(m.Layers, cl, 0); err == nil {
		t.Fatal("remote=0 (local) must be rejected")
	}
	if _, err := Split(m.Layers, cl, 5); err == nil {
		t.Fatal("out-of-range remote must be rejected")
	}
	if _, err := Split(nil, cl, 1); err == nil {
		t.Fatal("empty chain must be rejected")
	}
}

// Property: the DP and brute force agree for random conditions, and the
// optimal latency is monotone non-increasing in bandwidth.
func TestSplitOptimalityProperty(t *testing.T) {
	m, _ := zoo.ByName("resnet50")
	f := func(bwRaw, delayRaw uint16) bool {
		bw := float64(bwRaw%500) + 1
		delay := float64(delayRaw % 200)
		cl := device.AugmentedComputing(bw, delay)
		dp, e1 := Split(m.Layers, cl, 1)
		bf, e2 := SplitBruteForce(m.Layers, cl, 1)
		if e1 != nil || e2 != nil {
			return false
		}
		if dp.SplitAfter != bf.SplitAfter {
			return false
		}
		cl2 := device.AugmentedComputing(bw*2, delay)
		dp2, e3 := Split(m.Layers, cl2, 1)
		if e3 != nil {
			return false
		}
		return dp2.LatencySec <= dp.LatencySec+1e-9
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
