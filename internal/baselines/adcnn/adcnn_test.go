package adcnn

import (
	"testing"

	"murmuration/internal/device"
	"murmuration/internal/supernet"
	"murmuration/internal/zoo"
)

func TestAccuracyPenaltyGrowsWithTiles(t *testing.T) {
	p1 := AccuracyPenalty(supernet.Partition{Gy: 1, Gx: 1})
	p2 := AccuracyPenalty(supernet.Partition{Gy: 1, Gx: 2})
	p4 := AccuracyPenalty(supernet.Partition{Gy: 2, Gx: 2})
	if p1 != 0 {
		t.Fatal("1x1 must cost nothing")
	}
	if !(p2 > p1 && p4 > p2) {
		t.Fatalf("penalty must grow with tiles: %v %v %v", p1, p2, p4)
	}
}

func TestGridFor(t *testing.T) {
	if g := GridFor(1); g.NumTiles() != 1 {
		t.Fatalf("1 worker → %v", g)
	}
	if g := GridFor(2); g.NumTiles() != 2 {
		t.Fatalf("2 workers → %v", g)
	}
	if g := GridFor(5); g.NumTiles() != 4 {
		t.Fatalf("5 workers → %v", g)
	}
}

func TestPartitioningSpeedsUpOnFastSwarm(t *testing.T) {
	m, _ := zoo.ByName("resnet50")
	cl := device.DeviceSwarm(4, 1000, 2)
	single, err := Execute(m.Layers, cl, supernet.Partition{Gy: 1, Gx: 1})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := Execute(m.Layers, cl, supernet.Partition{Gy: 2, Gx: 2})
	if err != nil {
		t.Fatal(err)
	}
	if quad.LatencySec >= single.LatencySec {
		t.Fatalf("2x2 FDSP (%v) should beat single device (%v) on a 1 Gb/s swarm",
			quad.LatencySec, single.LatencySec)
	}
}

func TestSlowLinkFavorsFewerTiles(t *testing.T) {
	m, _ := zoo.ByName("mobilenetv3-large")
	cl := device.DeviceSwarm(4, 1, 100) // 1 Mb/s, 100 ms: scatter dominates
	best, err := Best(m.Layers, cl, []supernet.Partition{{Gy: 1, Gx: 2}, {Gy: 2, Gx: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if best.Grid.NumTiles() != 1 {
		t.Fatalf("on a terrible link Best should pick 1x1, got %v", best.Grid)
	}
}

func TestBestPicksMinimum(t *testing.T) {
	m, _ := zoo.ByName("resnet50")
	cl := device.DeviceSwarm(5, 500, 5)
	grids := []supernet.Partition{{Gy: 1, Gx: 2}, {Gy: 2, Gx: 2}}
	best, err := Best(m.Layers, cl, grids)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range append(grids, supernet.Partition{Gy: 1, Gx: 1}) {
		p, err := Execute(m.Layers, cl, g)
		if err != nil {
			continue
		}
		if p.LatencySec < best.LatencySec-1e-12 {
			t.Fatalf("Best missed grid %v (%v < %v)", g, p.LatencySec, best.LatencySec)
		}
	}
}

func TestExecuteValidation(t *testing.T) {
	cl := device.DeviceSwarm(2, 100, 10)
	if _, err := Execute(nil, cl, supernet.Partition{Gy: 1, Gx: 1}); err == nil {
		t.Fatal("empty chain must error")
	}
	m, _ := zoo.ByName("resnet50")
	stemOnly := m.Layers[:1] // no partitionable layers
	if _, err := Execute(stemOnly, cl, supernet.Partition{Gy: 1, Gx: 1}); err == nil {
		t.Fatal("chain without partitionable layers must error")
	}
}

func TestAssignmentRoundRobin(t *testing.T) {
	m, _ := zoo.ByName("resnet50")
	cl := device.DeviceSwarm(3, 100, 10)
	p, err := Execute(m.Layers, cl, supernet.Partition{Gy: 2, Gx: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0}
	for i, d := range p.Assignment {
		if d != want[i] {
			t.Fatalf("assignment %v, want %v", p.Assignment, want)
		}
	}
}
