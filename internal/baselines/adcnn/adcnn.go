// Package adcnn implements the ADCNN baseline (Zhang et al., the paper's
// [16]): Fully Decomposable Spatial Partitioning of a fixed CNN across a
// cluster of edge devices. The input feature map of every partitionable
// layer is split into zero-padded tiles (FDSP), so tiles flow through the
// whole convolutional trunk with no cross-tile communication: the input is
// scattered once, each device processes its tile through all layers, and
// tiles gather before the (central) head.
//
// FDSP's zero padding costs a small amount of accuracy, restored by
// finetuning; the paper's finetuned numbers motivate the per-grid penalty
// here (≈0.2 % at 2 tiles, ≈0.5 % at 4).
package adcnn

import (
	"fmt"

	"murmuration/internal/device"
	"murmuration/internal/supernet"
)

// Plan describes an ADCNN execution and its predicted cost.
type Plan struct {
	Grid       supernet.Partition
	LatencySec float64
	// AccuracyPenaltyPct is subtracted from the fixed model's accuracy.
	AccuracyPenaltyPct float64
	// Assignment[t] is the device executing tile t through the trunk.
	Assignment []int
}

// AccuracyPenalty returns the finetuned FDSP accuracy cost for a grid.
func AccuracyPenalty(grid supernet.Partition) float64 {
	switch grid.NumTiles() {
	case 1:
		return 0
	case 2:
		return 0.2
	case 4:
		return 0.5
	default:
		return 0.2 * float64(grid.NumTiles()-1)
	}
}

// GridFor picks the natural grid for a device count: 1×1 for 1, 1×2 for 2-3,
// 2×2 for ≥4 workers.
func GridFor(workers int) supernet.Partition {
	switch {
	case workers <= 1:
		return supernet.Partition{Gy: 1, Gx: 1}
	case workers < 4:
		return supernet.Partition{Gy: 1, Gx: 2}
	default:
		return supernet.Partition{Gy: 2, Gx: 2}
	}
}

// Execute plans FDSP execution of a layer chain over the cluster using the
// given grid. Tiles are assigned round-robin over all devices (including the
// local device). Latency model: scatter input tiles to remote workers,
// trunk layers execute tile-parallel (serial per device), gather tile
// outputs to local, then the non-partitionable head runs locally.
func Execute(layers []supernet.LayerCost, cluster *device.Cluster, grid supernet.Partition) (Plan, error) {
	if len(layers) == 0 {
		return Plan{}, fmt.Errorf("adcnn: empty layer chain")
	}
	tiles := grid.NumTiles()
	if tiles < 1 {
		return Plan{}, fmt.Errorf("adcnn: invalid grid %v", grid)
	}
	assign := make([]int, tiles)
	for t := 0; t < tiles; t++ {
		assign[t] = t % cluster.N()
	}
	plan := Plan{Grid: grid, AccuracyPenaltyPct: AccuracyPenalty(grid), Assignment: assign}

	// Scatter: each remote worker receives its input tile (the first
	// partitionable layer's input, at 32-bit).
	firstPart := -1
	lastPart := -1
	for i, lc := range layers {
		if lc.Partitionable {
			if firstPart < 0 {
				firstPart = i
			}
			lastPart = i
		}
	}
	if firstPart < 0 {
		return Plan{}, fmt.Errorf("adcnn: no partitionable layers")
	}

	var total float64
	local := cluster.Devices[0].Profile

	// Non-partitionable prefix (stem) runs locally.
	for i := 0; i < firstPart; i++ {
		total += local.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
	}

	// Scatter phase: links to distinct devices run in parallel (switch with
	// per-link shaping); multiple tiles to one device share its link.
	tileInBytes := float64(layers[firstPart].InElems*4) / float64(tiles)
	perLink := map[int]float64{}
	for t := 0; t < tiles; t++ {
		if assign[t] != 0 {
			perLink[assign[t]] += tileInBytes
		}
	}
	total += phaseTime(cluster, perLink)

	// Trunk: per-device serial tile work, devices in parallel.
	perDev := make(map[int]float64)
	for t := 0; t < tiles; t++ {
		d := cluster.Devices[assign[t]]
		var devTime float64
		for i := firstPart; i <= lastPart; i++ {
			devTime += d.Profile.LayerTime(layers[i].FLOPs/float64(tiles), layers[i].MemBytes/float64(tiles))
		}
		perDev[assign[t]] += devTime
	}
	var maxDev float64
	for _, v := range perDev {
		if v > maxDev {
			maxDev = v
		}
	}
	total += maxDev

	// Gather trunk outputs to local (parallel links again).
	tileOutBytes := float64(layers[lastPart].OutElems*4) / float64(tiles)
	perLink = map[int]float64{}
	for t := 0; t < tiles; t++ {
		if assign[t] != 0 {
			perLink[assign[t]] += tileOutBytes
		}
	}
	total += phaseTime(cluster, perLink)

	// Head runs locally.
	for i := lastPart + 1; i < len(layers); i++ {
		total += local.LayerTime(layers[i].FLOPs, layers[i].MemBytes)
	}
	plan.LatencySec = total
	return plan, nil
}

// phaseTime is the duration of one synchronized transfer phase: the maximum
// over links of (bytes / bandwidth + delay).
func phaseTime(cluster *device.Cluster, perLink map[int]float64) float64 {
	var worst float64
	for d, b := range perLink {
		if t := cluster.Devices[d].TransferTime(b); t > worst {
			worst = t
		}
	}
	return worst
}

// Best tries every grid in the candidate list plus 1×1 and returns the
// fastest plan (ADCNN adapts its partitioning to the cluster).
func Best(layers []supernet.LayerCost, cluster *device.Cluster, grids []supernet.Partition) (Plan, error) {
	cand := append([]supernet.Partition{{Gy: 1, Gx: 1}}, grids...)
	var best Plan
	found := false
	for _, g := range cand {
		p, err := Execute(layers, cluster, g)
		if err != nil {
			continue
		}
		if !found || p.LatencySec < best.LatencySec {
			best = p
			found = true
		}
	}
	if !found {
		return Plan{}, fmt.Errorf("adcnn: no feasible grid")
	}
	return best, nil
}
