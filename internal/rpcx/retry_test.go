package rpcx

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestRedialRecoversAfterTimeout is the regression for the connection-
// poisoning dead end: a TimeoutError used to break the client permanently
// (every later call returned ErrClientBroken). With a retry policy installed
// the next call must transparently re-dial and succeed.
func TestRedialRecoversAfterTimeout(t *testing.T) {
	s := NewServer()
	var stallFirst atomic.Bool
	stallFirst.Store(true)
	release := make(chan struct{})
	s.Handle("sometimes-slow", func(p []byte) ([]byte, error) {
		if stallFirst.Swap(false) {
			<-release
		}
		return []byte("ok"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(release)

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1}) // re-dial only, no retries

	if _, err := c.CallTimeout("sometimes-slow", nil, 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first call should time out, got %v", err)
	}
	// The connection is poisoned, but the client must recover by re-dialing
	// rather than returning ErrClientBroken forever.
	resp, err := c.CallTimeout("sometimes-slow", nil, 2*time.Second)
	if err != nil {
		t.Fatalf("call after timeout did not recover via re-dial: %v", err)
	}
	if string(resp) != "ok" {
		t.Fatalf("recovered call returned %q", resp)
	}
}

// TestRetryIdempotentOnly: with MaxAttempts > 1, a transport failure on an
// idempotent-marked method is retried in place; the same failure on an
// unmarked method is returned after a single attempt.
func TestRetryIdempotentOnly(t *testing.T) {
	s := NewServer()
	var calls atomic.Int64
	s.Handle("flaky", func(p []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // first attempt exceeds the deadline
		}
		return []byte("served"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Idempotent-marked: the timed-out first attempt is retried and the
	// second attempt (fast handler) succeeds.
	ci, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ci.Close()
	ci.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond})
	ci.MarkIdempotent("flaky")
	resp, err := ci.CallTimeout("flaky", nil, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("idempotent retry did not recover: %v", err)
	}
	if string(resp) != "served" {
		t.Fatalf("retried call returned %q", resp)
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("handler ran %d times, expected a retry", n)
	}

	// Unmarked: the timeout must surface immediately with no second attempt.
	calls.Store(0)
	cn, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	cn.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond})
	if _, err := cn.CallTimeout("flaky", nil, 100*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("non-idempotent call should fail with the timeout, got %v", err)
	}
	// Give a hypothetical stray retry a moment to land before counting.
	time.Sleep(200 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Fatalf("non-idempotent method attempted %d times, want 1", n)
	}
}

// TestRemoteErrorNeverRetried: application-level handler errors reach the
// caller after exactly one attempt even on idempotent-marked methods — the
// handler ran, so the failure is not a transport fault.
func TestRemoteErrorNeverRetried(t *testing.T) {
	s := NewServer()
	var calls atomic.Int64
	s.Handle("reject", func(p []byte) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("no")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	c.MarkIdempotent("reject")

	_, err = c.Call("reject", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want *RemoteError, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("remote error retried: %d attempts", n)
	}
	// The connection survives an application error; the next call reuses it.
	if _, err := c.Call("reject", nil); !errors.As(err, &re) {
		t.Fatalf("second call: %v", err)
	}
}

// TestRetryRecoversAcrossServerRestart kills the server mid-conversation and
// brings it back on the same address: an idempotent call issued while the
// server is down must keep retrying (re-dialing each attempt) and succeed
// once the listener returns.
func TestRetryRecoversAcrossServerRestart(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 20, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 50 * time.Millisecond})
	c.MarkIdempotent("echo")

	if _, err := c.Call("echo", []byte("a")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Restart on the same port after a short outage, while a call retries.
	go func() {
		time.Sleep(150 * time.Millisecond)
		s2 := NewServer()
		s2.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
		if _, err := s2.Listen(addr); err != nil {
			t.Errorf("re-listen on %s: %v", addr, err)
		}
	}()
	resp, err := c.CallTimeout("echo", []byte("b"), time.Second)
	if err != nil {
		t.Fatalf("call across server restart: %v", err)
	}
	if string(resp) != "b" {
		t.Fatalf("got %q", resp)
	}
}

// TestNewClientWithoutAddrStaysBroken: a client wrapping a raw conn has no
// address to re-dial; after poisoning it must fail fast, not hang.
func TestNewClientWithoutAddrStaysBroken(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	s.Handle("stall", func(p []byte) ([]byte, error) { <-release; return nil, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(release)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, nil)
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	c.MarkIdempotent("stall")

	if _, err := c.CallTimeout("stall", nil, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	if _, err := c.Call("stall", nil); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("conn-wrapped client must stay broken, got %v", err)
	}
}

// TestTimeoutThenReuseNeverReadsStaleResponse: the sharper regression for
// connection poisoning. Unlike TestRedialRecoversAfterTimeout (which holds
// the slow response hostage until the test ends), here the timed-out call's
// response DOES arrive on the old connection before the client is used
// again. A client that kept reading the desynced stream would return the
// stale payload "A" as the answer to the new request "B"; the correct
// client abandons the poisoned connection and re-dials.
func TestTimeoutThenReuseNeverReadsStaleResponse(t *testing.T) {
	s := NewServer()
	var slowFirst atomic.Bool
	slowFirst.Store(true)
	s.Handle("echo-slow-once", func(p []byte) ([]byte, error) {
		if slowFirst.Swap(false) {
			time.Sleep(300 * time.Millisecond)
		}
		return p, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1}) // re-dial only, no retries

	if _, err := c.CallTimeout("echo-slow-once", []byte("A"), 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("first call should time out, got %v", err)
	}
	// Let the stale "A" response actually reach the old connection before the
	// client is reused — the trap a desynced reader would fall into.
	time.Sleep(400 * time.Millisecond)

	resp, err := c.CallTimeout("echo-slow-once", []byte("B"), 2*time.Second)
	if err != nil {
		t.Fatalf("call after timeout did not recover via re-dial: %v", err)
	}
	if string(resp) != "B" {
		t.Fatalf("reused client answered %q — read the stale response of the timed-out call", resp)
	}
}
