package rpcx

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countingGate is a RetryGate with a fixed token allowance; every
// TryWithdraw is counted whether or not it is granted.
type countingGate struct {
	allow   atomic.Int64
	asked   atomic.Int64
	refused atomic.Int64
	granted atomic.Int64
}

func (g *countingGate) TryWithdraw() bool {
	g.asked.Add(1)
	if g.allow.Add(-1) < 0 {
		g.refused.Add(1)
		return false
	}
	g.granted.Add(1)
	return true
}

// flakyServer serves a method whose first attempt exceeds any short deadline
// and whose later attempts answer instantly — the canonical retryable fault.
func flakyServer(t *testing.T) (string, *atomic.Int64, func()) {
	t.Helper()
	s := NewServer()
	var calls atomic.Int64
	s.Handle("flaky", func(p []byte) ([]byte, error) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond)
		}
		return []byte("served"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr, &calls, func() { s.Close() }
}

// TestRetryGateSuppressesRetry: with an empty budget, the retry the policy
// would have fired is suppressed and surfaces as a typed *RetryBudgetError
// that still carries the first attempt's failure for classification.
func TestRetryGateSuppressesRetry(t *testing.T) {
	addr, calls, closeSrv := flakyServer(t)
	defer closeSrv()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond})
	c.MarkIdempotent("flaky")
	gate := &countingGate{} // allowance 0: every withdrawal refused
	c.SetRetryGate(gate)

	_, err = c.CallTimeout("flaky", nil, 100*time.Millisecond)
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("suppressed retry should match ErrRetryBudget, got %v", err)
	}
	// The cause rides along: callers classifying the underlying fault still
	// see the timeout that the suppressed retry would have addressed.
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("suppressed retry should carry the timeout cause, got %v", err)
	}
	var rbe *RetryBudgetError
	if !errors.As(err, &rbe) || rbe.Method != "flaky" {
		t.Fatalf("want *RetryBudgetError for method flaky, got %#v", err)
	}
	// The sentinel must NOT read as deadline-budget exhaustion — the two are
	// different sheds with different consumers (see IsBudgetExhausted).
	if errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("retry-budget refusal must not classify as ErrBudgetExhausted: %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1 (retry suppressed)", n)
	}
	if gate.asked.Load() != 1 || gate.refused.Load() != 1 {
		t.Fatalf("gate saw %d withdrawals (%d refused), want 1/1", gate.asked.Load(), gate.refused.Load())
	}
}

// TestRetryGateAllowsWithinBudget: a funded gate charges exactly one token
// per fired retry and the call recovers.
func TestRetryGateAllowsWithinBudget(t *testing.T) {
	addr, calls, closeSrv := flakyServer(t)
	defer closeSrv()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond})
	c.MarkIdempotent("flaky")
	gate := &countingGate{}
	gate.allow.Store(2)
	c.SetRetryGate(gate)

	resp, err := c.CallTimeout("flaky", nil, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("funded retry did not recover: %v", err)
	}
	if string(resp) != "served" {
		t.Fatalf("retried call returned %q", resp)
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("handler ran %d times, expected a retry", n)
	}
	if g := gate.granted.Load(); g < 1 {
		t.Fatalf("gate granted %d withdrawals, want >= 1 (one per fired retry)", g)
	}
	// First attempts are free: withdrawals never exceed attempts-1.
	if gate.asked.Load() >= calls.Load() {
		t.Fatalf("gate asked %d times for %d attempts; first attempts must not withdraw",
			gate.asked.Load(), calls.Load())
	}
}

// TestRetryGateClearedRestoresRetry: SetRetryGate(nil) removes the budget
// and in-place retries fire ungated again.
func TestRetryGateClearedRestoresRetry(t *testing.T) {
	addr, calls, closeSrv := flakyServer(t)
	defer closeSrv()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond})
	c.MarkIdempotent("flaky")
	gate := &countingGate{} // empty: would suppress every retry
	c.SetRetryGate(gate)
	c.SetRetryGate(nil)

	resp, err := c.CallTimeout("flaky", nil, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("ungated retry did not recover: %v", err)
	}
	if string(resp) != "served" {
		t.Fatalf("retried call returned %q", resp)
	}
	if n := calls.Load(); n < 2 {
		t.Fatalf("handler ran %d times, expected a retry", n)
	}
	if gate.asked.Load() != 0 {
		t.Fatalf("cleared gate was still consulted %d times", gate.asked.Load())
	}
}
