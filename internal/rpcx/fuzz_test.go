package rpcx

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// Frame decoders face bytes straight off a (possibly corrupted) socket, so
// they must never panic or allocate beyond the frame cap, no matter the
// input. Accepted frames must also survive a re-encode/re-decode round trip.

const fuzzFrameCap = 1 << 20

func seedRequests(f *testing.F) {
	for _, budget := range []time.Duration{0, 3 * time.Millisecond} {
		for _, checksum := range []bool{false, true} {
			var buf bytes.Buffer
			if err := writeRequest(&buf, "exec.block", []byte("tile-payload"), budget, checksum); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
			// A corrupted sibling of each valid frame.
			raw := append([]byte(nil), buf.Bytes()...)
			raw[len(raw)/2] ^= 0x40
			f.Add(raw)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{5, 0, 0, 0, 0x40, 0, 0, 0, 0})
}

func FuzzReadRequest(f *testing.F) {
	seedRequests(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		method, budget, payload, checksummed, err := readRequest(bytes.NewReader(data), fuzzFrameCap)
		if err != nil {
			return
		}
		if len(payload) > fuzzFrameCap {
			t.Fatalf("payload %d bytes escaped the %d cap", len(payload), fuzzFrameCap)
		}
		if budget < 0 || budget != time.Duration(budget.Microseconds())*time.Microsecond {
			// A u64 budget large enough to overflow time.Duration can't be
			// re-encoded losslessly; decoding it without panicking is all
			// that's required.
			return
		}
		var buf bytes.Buffer
		if err := writeRequest(&buf, method, payload, budget, checksummed); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		m2, b2, p2, c2, err := readRequest(bytes.NewReader(buf.Bytes()), fuzzFrameCap)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if m2 != method || b2 != budget || !bytes.Equal(p2, payload) || c2 != checksummed {
			t.Fatalf("round trip drifted: %q/%v/%v/%v vs %q/%v/%v/%v",
				method, budget, payload, checksummed, m2, b2, p2, c2)
		}
	})
}

func FuzzReadResponse(f *testing.F) {
	for _, status := range []byte{statusOK, statusError, statusBudget, statusCorrupt} {
		for _, checksum := range []bool{false, true} {
			var buf bytes.Buffer
			if err := writeResponse(&buf, status, []byte("response-payload"), checksum); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
			raw := append([]byte(nil), buf.Bytes()...)
			raw[len(raw)-1] ^= 0x01
			f.Add(raw)
		}
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		status, payload, err := readResponse(bytes.NewReader(data), fuzzFrameCap)
		if err != nil {
			return
		}
		if len(payload) > fuzzFrameCap {
			t.Fatalf("payload %d bytes escaped the %d cap", len(payload), fuzzFrameCap)
		}
		var buf bytes.Buffer
		if err := writeResponse(&buf, status, payload, false); err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		s2, p2, err := readResponse(bytes.NewReader(buf.Bytes()), fuzzFrameCap)
		if err != nil || s2 != status || !bytes.Equal(p2, payload) {
			t.Fatalf("round trip drifted: %d/%v vs %d/%v (%v)", status, payload, s2, p2, err)
		}
	})
}

// FuzzServeConn drives raw byte streams at a live server connection: no
// input may panic the serve goroutine, leak it, or wedge it past its
// deadlines — the self-protection contract for a public-facing socket.
func FuzzServeConn(f *testing.F) {
	seedRequests(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer()
		s.MaxFrameSize = fuzzFrameCap
		s.ConnIdleTimeout = 200 * time.Millisecond
		s.WriteTimeout = 200 * time.Millisecond
		s.Handle("exec.block", func(p []byte) ([]byte, error) {
			if len(p) > 0 && p[0] == 0xFF {
				panic("fuzz-triggered handler panic")
			}
			return p, nil
		})
		client, server := net.Pipe()
		exited := make(chan struct{})
		go func() {
			defer close(exited)
			s.serveConn(server)
		}()
		client.SetDeadline(time.Now().Add(time.Second))
		client.Write(data)
		// Drain whatever the server answers so its writes can't block on the
		// unbuffered pipe, then signal EOF.
		go io.Copy(io.Discard, client)
		time.Sleep(time.Millisecond)
		client.Close()
		select {
		case <-exited:
		case <-time.After(5 * time.Second):
			t.Fatal("serveConn did not exit after the client hung up")
		}
		s.Close()
	})
}
