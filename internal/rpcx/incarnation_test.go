package rpcx

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/netem"
)

func TestMintIncarnationPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incarnation")

	first, err := MintIncarnation(path)
	if err != nil {
		t.Fatal(err)
	}
	if IncarnationSeq(first) != 1 {
		t.Fatalf("first mint seq = %d, want 1", IncarnationSeq(first))
	}
	if first == 0 {
		t.Fatal("minted incarnation must never be 0")
	}

	second, err := MintIncarnation(path)
	if err != nil {
		t.Fatal(err)
	}
	if IncarnationSeq(second) != 2 {
		t.Fatalf("second mint seq = %d, want 2", IncarnationSeq(second))
	}
	if second == first {
		t.Fatal("two mints returned the same incarnation")
	}
}

func TestMintIncarnationEphemeral(t *testing.T) {
	a, err := MintIncarnation("")
	if err != nil {
		t.Fatal(err)
	}
	b, err := MintIncarnation("")
	if err != nil {
		t.Fatal(err)
	}
	if IncarnationSeq(a) != 1 || IncarnationSeq(b) != 1 {
		t.Fatalf("ephemeral mints should both have seq 1, got %d and %d",
			IncarnationSeq(a), IncarnationSeq(b))
	}
	if a == b {
		t.Fatal("ephemeral mints collided (random bits)")
	}
}

func TestMintIncarnationCorruptState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incarnation")
	if _, err := MintIncarnation(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[5] ^= 0xFF // flip a counter byte without fixing the checksum
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MintIncarnation(path); !errors.Is(err, ErrIncarnationCorrupt) {
		t.Fatalf("want ErrIncarnationCorrupt, got %v", err)
	}
}

func TestHandshakeLearnsIncarnation(t *testing.T) {
	s := NewServer()
	s.SetIncarnation(42<<incarnationSeqBits | 7)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if got := c.RemoteIncarnation(); got != 0 {
		t.Fatalf("RemoteIncarnation before handshake = %d, want 0", got)
	}
	inc, err := c.Handshake(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(42<<incarnationSeqBits | 7); inc != want {
		t.Fatalf("handshake incarnation = %#x, want %#x", inc, want)
	}
	if c.RemoteIncarnation() != inc {
		t.Fatal("RemoteIncarnation disagrees with Handshake return")
	}
}

func TestHandshakeRepeatsAcrossRedial(t *testing.T) {
	s1 := NewServer()
	s1.SetIncarnation(1<<incarnationSeqBits | 11)
	s1.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr1, err := s1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	s2 := NewServer()
	s2.SetIncarnation(2<<incarnationSeqBits | 22)
	s2.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	var target atomic.Value
	target.Store(addr1)
	c, err := Dial(addr1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 3})
	c.MarkIdempotent("echo")
	c.SetDialer(func() (net.Conn, error) {
		return net.Dial("tcp", target.Load().(string))
	})

	if inc, err := c.Handshake(2 * time.Second); err != nil || IncarnationSeq(inc) != 1 {
		t.Fatalf("initial handshake = (%#x, %v), want seq 1", inc, err)
	}

	// "Restart": the old process dies, the replacement listens elsewhere.
	s1.Close()
	target.Store(addr2)
	c.ForceRedial()

	// The next call must transparently re-dial AND re-handshake, so the
	// remembered incarnation describes the new process.
	if _, err := c.Call("echo", []byte("hi")); err != nil {
		t.Fatalf("call after redial: %v", err)
	}
	if got := c.RemoteIncarnation(); IncarnationSeq(got) != 2 {
		t.Fatalf("RemoteIncarnation after redial = %#x, want seq 2", got)
	}
}

func TestProgressWatchdogStallsLargeFrame(t *testing.T) {
	sh := netem.NewShaper(0, 0)
	s := NewServer()
	// Wrap daemon-side conns so only the server->client direction stalls:
	// small frames (hello, ping echoes) pass, large tensor frames freeze.
	s.WrapConn = func(c net.Conn) net.Conn {
		return netem.NewConnDir(c, sh, netem.Downstream)
	}
	big := bytes.Repeat([]byte{0xAB}, 1<<20)
	s.Handle("bulk", func(p []byte) ([]byte, error) { return big, nil })
	s.Handle("ping", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetProgressPolicy(ProgressPolicy{Tick: 30 * time.Millisecond, MinBytes: 1})

	// Healthy link: both small and large frames flow under the watchdog.
	if _, err := c.CallTimeout("ping", []byte{1}, 2*time.Second); err != nil {
		t.Fatalf("ping under watchdog: %v", err)
	}
	if resp, err := c.CallTimeout("bulk", nil, 5*time.Second); err != nil || len(resp) != len(big) {
		t.Fatalf("bulk under watchdog: %d bytes, %v", len(resp), err)
	}

	// Half-open link: large frames stall for far longer than the call
	// deadline. The progress watchdog must fail the call in bounded time —
	// well before the 10s overall deadline would.
	sh.SetStallLarge(netem.Downstream, 4096, 30*time.Second)
	defer sh.SetStallLarge(netem.Downstream, 0, 0)

	start := time.Now()
	_, err = c.CallTimeout("bulk", nil, 10*time.Second)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled, got %v", err)
	}
	var se *StallError
	if !errors.As(err, &se) || se.Method != "bulk" {
		t.Fatalf("want typed *StallError for bulk, got %#v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("stall detection took %v, want bounded well under the deadline", elapsed)
	}
	if got := c.StalledCalls(); got != 1 {
		t.Fatalf("StalledCalls = %d, want 1", got)
	}

	// The stalled connection is poisoned: without a retry policy the client
	// refuses to reuse the desynced stream.
	if _, err := c.Call("ping", []byte{1}); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("want ErrClientBroken after stall, got %v", err)
	}
}

func TestProgressWatchdogExemptsCompute(t *testing.T) {
	s := NewServer()
	s.Handle("slow", func(p []byte) ([]byte, error) {
		time.Sleep(400 * time.Millisecond) // server compute: no bytes flow
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetProgressPolicy(ProgressPolicy{Tick: 50 * time.Millisecond, MinBytes: 1})

	// Many dead ticks elapse between request flush and first response byte;
	// the watchdog must not count them — compute time is the call deadline's
	// job, not the progress deadline's.
	if _, err := c.CallTimeout("slow", nil, 5*time.Second); err != nil {
		t.Fatalf("slow compute under watchdog: %v", err)
	}
	if got := c.StalledCalls(); got != 0 {
		t.Fatalf("StalledCalls = %d, want 0", got)
	}
}
