package rpcx

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"murmuration/internal/testutil"
)

func TestHandlerPanicIsolated(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewServer()
	s.Handle("boom", func(p []byte) ([]byte, error) {
		panic(fmt.Sprintf("kaboom on %q", p))
	})
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call("boom", []byte("x"))
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panicking handler returned %v, want ErrPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PanicError", err)
	}
	if !strings.Contains(pe.Msg, `kaboom on "x"`) {
		t.Fatalf("panic message lost the recovered value: %q", pe.Msg)
	}
	if !strings.Contains(pe.Msg, "goroutine") {
		t.Fatalf("panic message carries no stack: %q", pe.Msg)
	}

	// Same connection keeps serving: the panic failed one request, not the
	// stream or the process.
	out, err := c.Call("echo", []byte("still here"))
	if err != nil || string(out) != "still here" {
		t.Fatalf("connection dead after panic: out=%q err=%v", out, err)
	}
	if s.Panics() != 1 || c.Panics() != 1 {
		t.Fatalf("panic counters: server=%d client=%d, want 1/1", s.Panics(), c.Panics())
	}
}

func TestPanicNotRetried(t *testing.T) {
	testutil.CheckGoroutines(t)
	var calls atomic.Int64
	s := NewServer()
	s.Handle("boom", func([]byte) ([]byte, error) {
		calls.Add(1)
		panic("always")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond})
	c.MarkIdempotent("boom")

	if _, err := c.Call("boom", nil); !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("panicking handler ran %d times; a panic must never be retried", got)
	}
}

func TestMaxInflightOverload(t *testing.T) {
	testutil.CheckGoroutines(t)
	release := make(chan struct{})
	s := NewServer()
	s.MaxInflight = 1
	s.Handle("slow", func([]byte) ([]byte, error) {
		<-release
		return []byte("done"), nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First call occupies the single slot.
	c1, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := c1.Call("slow", nil); err != nil {
			t.Errorf("occupying call failed: %v", err)
		}
	}()
	waitForCond(t, time.Second, func() bool {
		s.inflightMu.Lock()
		defer s.inflightMu.Unlock()
		return s.inflightN == 1
	})

	// Second call is refused typed and retryable.
	c2, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.Call("slow", nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("call at cap returned %v, want ErrOverloaded", err)
	}
	if !retryable(err) {
		t.Fatal("overload refusal must be retryable")
	}
	if s.Overloads() == 0 || c2.Overloads() == 0 {
		t.Fatalf("overload counters: server=%d client=%d", s.Overloads(), c2.Overloads())
	}

	// With a retry policy, backoff rides out the congestion transparently.
	c2.SetRetryPolicy(RetryPolicy{MaxAttempts: 50, BaseBackoff: 5 * time.Millisecond,
		MaxBackoff: 10 * time.Millisecond})
	c2.MarkIdempotent("slow")
	time.AfterFunc(30*time.Millisecond, func() { close(release) })
	out, err := c2.Call("slow", nil)
	if err != nil || string(out) != "done" {
		t.Fatalf("retry across overload: out=%q err=%v", out, err)
	}
	wg.Wait()
}

func TestIdleConnEviction(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewServer()
	s.ConnIdleTimeout = 60 * time.Millisecond
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A client that connects and goes silent must be evicted, not pinned.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	waitForCond(t, 2*time.Second, func() bool { return s.Evictions() >= 1 })

	// The eviction is visible client-side as a dead connection.
	idle.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("evicted connection still readable without error")
	}

	// Active clients are unaffected as long as they keep talking.
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Call("echo", []byte("hi")); err != nil {
			t.Fatalf("active client evicted on call %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Shutdown is not wedged by connection goroutines: the idle eviction
	// already released them.
	done := make(chan struct{})
	go func() { s.Shutdown(time.Second); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Shutdown wedged")
	}
}

// flakyListener fails its first n Accepts with a transient error, then
// delegates to the real listener.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
	seen     int
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	fail := l.seen < l.failures
	l.seen++
	l.mu.Unlock()
	if fail {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

func TestAcceptLoopRecovers(t *testing.T) {
	testutil.CheckGoroutines(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	s.Serve(&flakyListener{Listener: inner, failures: 3})
	defer s.Close()

	// Despite the EMFILE-style burst the accept loop must still be alive.
	c, err := Dial(inner.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Call("echo", []byte("alive"))
	if err != nil || string(out) != "alive" {
		t.Fatalf("call after transient accept errors: out=%q err=%v", out, err)
	}
	if got := s.AcceptRetries(); got < 3 {
		t.Fatalf("AcceptRetries = %d, want >= 3", got)
	}
}

func waitForCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
