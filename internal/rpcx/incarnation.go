package rpcx

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Incarnation identity: every daemon process start mints a fresh 64-bit
// incarnation. The high 16 bits are a monotonic restart counter persisted
// across process lifetimes (crash-safe: temp file + fsync + rename, the same
// discipline as nn checkpoints), the low 48 bits are random. The counter
// gives restarts a total order — IncarnationSeq(new) > IncarnationSeq(old)
// for any two starts sharing a state file — so the gateway can fence
// responses from a dead incarnation without ever fencing a fresh one; the
// random bits disambiguate daemons that share no state file (ephemeral
// mints) or whose state file was lost.
//
// The wire contract: a server announces its incarnation through the builtin
// hello method (HelloMethod); clients learn it at handshake and re-learn it
// automatically on every re-dial. 0 is reserved for "unknown" — a minted
// incarnation is never 0.

// incarnationSeqBits is how many low bits carry the random component; the
// remaining high bits carry the persisted monotonic restart counter.
const incarnationSeqBits = 48

// ErrIncarnationCorrupt is the target for errors.Is when a persisted
// incarnation state file fails its integrity check. The file is tiny and
// rewritten atomically, so corruption means torn storage — the caller decides
// whether to fatal or re-mint from scratch.
var ErrIncarnationCorrupt = errors.New("rpcx: incarnation state corrupt")

// incarnation state file layout: magic "MIN1" | u64 counter | u32 crc32c
// (Castagnoli, over magic+counter).
var incMagic = [4]byte{'M', 'I', 'N', '1'}

const incStateSize = 4 + 8 + 4

// IncarnationSeq extracts the monotonic restart counter from an incarnation.
// Fencing compares sequences, not raw incarnations: a response is stale iff
// its incarnation's sequence is below the expected one, so the random low
// bits never order two incarnations that share a counter value.
func IncarnationSeq(inc uint64) uint64 { return inc >> incarnationSeqBits }

// MintIncarnation mints the incarnation for this process start. With a state
// path, the persisted restart counter is loaded, incremented, and written
// back atomically before the incarnation is returned — a crash between mint
// and first use can only skip a counter value, never reuse one. With an empty
// path the counter is 1 (ephemeral: ordering across restarts then rests on
// the random bits being distinct, which is enough to *detect* a restart, just
// not to order one).
func MintIncarnation(statePath string) (uint64, error) {
	var seq uint64 = 1
	if statePath != "" {
		prev, err := readIncarnationState(statePath)
		if err != nil {
			return 0, err
		}
		seq = prev + 1
		if seq >= 1<<(64-incarnationSeqBits) {
			// Counter exhausted (65k restarts): wrap to 1 rather than refuse
			// to start; fencing degrades to restart *detection* via the
			// random bits, exactly the ephemeral behavior.
			seq = 1
		}
		if err := writeIncarnationState(statePath, seq); err != nil {
			return 0, err
		}
	}
	var rnd [8]byte
	if _, err := rand.Read(rnd[:6]); err != nil {
		return 0, fmt.Errorf("rpcx: mint incarnation: %w", err)
	}
	low := binary.LittleEndian.Uint64(rnd[:]) & (1<<incarnationSeqBits - 1)
	if low == 0 {
		low = 1 // reserve 0 so a minted incarnation is never the "unknown" value
	}
	return seq<<incarnationSeqBits | low, nil
}

// readIncarnationState loads the persisted restart counter (0 when the file
// does not exist yet — the first mint then uses sequence 1).
func readIncarnationState(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(b) != incStateSize || [4]byte(b[:4]) != incMagic {
		return 0, fmt.Errorf("%w: %s: bad size or magic", ErrIncarnationCorrupt, path)
	}
	want := binary.LittleEndian.Uint32(b[12:])
	if got := crc32.Checksum(b[:12], castagnoli); got != want {
		return 0, fmt.Errorf("%w: %s: checksum mismatch (got %08x, want %08x)",
			ErrIncarnationCorrupt, path, got, want)
	}
	return binary.LittleEndian.Uint64(b[4:]), nil
}

// writeIncarnationState persists the restart counter with the checkpoint
// machinery's atomicity discipline: write a temp file in the same directory,
// fsync it, rename over the target, fsync the directory. A crash at any point
// leaves either the old counter or the new one — never a torn file.
func writeIncarnationState(path string, seq uint64) error {
	var b [incStateSize]byte
	copy(b[:4], incMagic[:])
	binary.LittleEndian.PutUint64(b[4:], seq)
	binary.LittleEndian.PutUint32(b[12:], crc32.Checksum(b[:12], castagnoli))

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".inc-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(b[:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
