package rpcx

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"testing"
	"time"
)

// The integrity layer must be invisible to peers that don't opt in: a
// budget-less, checksum-less request is bit-identical to the historical
// frame.

func TestLegacyFrameBitIdentical(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRequest(&buf, "echo", []byte("hello"), 0, false); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		10, 0, 0, 0, // totalLen = 1 + 4 + 5
		4,                  // methodLen, no flags
		'e', 'c', 'h', 'o', // method
		'h', 'e', 'l', 'l', 'o', // payload
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("legacy request frame changed:\n got %v\nwant %v", buf.Bytes(), want)
	}

	buf.Reset()
	if err := writeResponse(&buf, statusOK, []byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	want = []byte{3, 0, 0, 0, statusOK, 'o', 'k'}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("legacy response frame changed:\n got %v\nwant %v", buf.Bytes(), want)
	}
}

func TestRequestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		budget   time.Duration
		checksum bool
	}{
		{"legacy", 0, false},
		{"budget", 250 * time.Millisecond, false},
		{"checksum", 0, true},
		{"budget+checksum", 250 * time.Millisecond, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			payload := []byte{0, 1, 2, 0xfe, 0xff}
			if err := writeRequest(&buf, "m.ethod", payload, tc.budget, tc.checksum); err != nil {
				t.Fatal(err)
			}
			method, budget, got, checksummed, err := readRequest(bytes.NewReader(buf.Bytes()), DefaultMaxFrameSize)
			if err != nil {
				t.Fatal(err)
			}
			if method != "m.ethod" || budget != tc.budget || !bytes.Equal(got, payload) || checksummed != tc.checksum {
				t.Fatalf("round trip mismatch: method=%q budget=%v payload=%v checksummed=%v",
					method, budget, got, checksummed)
			}
		})
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	for _, checksum := range []bool{false, true} {
		var buf bytes.Buffer
		if err := writeResponse(&buf, statusBudget, []byte("late"), checksum); err != nil {
			t.Fatal(err)
		}
		status, payload, err := readResponse(bytes.NewReader(buf.Bytes()), DefaultMaxFrameSize)
		if err != nil {
			t.Fatal(err)
		}
		if status != statusBudget || string(payload) != "late" {
			t.Fatalf("checksum=%v: got status %d payload %q", checksum, status, payload)
		}
	}
}

func TestChecksumMismatchIsTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := writeRequest(&buf, "exec", []byte("payload-bytes"), 0, true); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] ^= 0x10 // flip a bit inside the method/payload region
	_, _, _, _, err := readRequest(bytes.NewReader(raw), DefaultMaxFrameSize)
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want typed FrameError matching ErrCorruptFrame, got %v", err)
	}

	buf.Reset()
	if err := writeResponse(&buf, statusOK, []byte("response-bytes"), true); err != nil {
		t.Fatal(err)
	}
	raw = buf.Bytes()
	raw[6] ^= 0x01
	_, _, err = readResponse(bytes.NewReader(raw), DefaultMaxFrameSize)
	if !errors.As(err, &fe) || !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("want typed FrameError matching ErrCorruptFrame, got %v", err)
	}
}

func TestFrameCapEnforcedBeforeAllocation(t *testing.T) {
	// A corrupted length prefix claiming ~4 GiB must be rejected from the
	// 4 header bytes alone — readBody never sees (or allocates) the body.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 0xfffffff0)
	_, _, _, _, err := readRequest(bytes.NewReader(hdr[:]), 1<<20)
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversize length prefix: want FrameError, got %v", err)
	}
	// Zero length is equally impossible (every frame has a head byte).
	binary.LittleEndian.PutUint32(hdr[:], 0)
	_, _, err = readResponse(bytes.NewReader(hdr[:]), 1<<20)
	if !errors.As(err, &fe) {
		t.Fatalf("zero-length frame: want FrameError, got %v", err)
	}
}

func TestServerRejectsCorruptRequest(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var buf bytes.Buffer
	if err := writeRequest(&buf, "echo", []byte("damaged in flight"), 0, true); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[10] ^= 0x04 // in-flight bit flip, length prefix intact
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}

	status, payload, err := readResponse(bufio.NewReader(conn), DefaultMaxFrameSize)
	if err != nil {
		t.Fatalf("corrupt request should earn a typed refusal, got read error %v", err)
	}
	if status != statusCorrupt {
		t.Fatalf("status = %d, want statusCorrupt; payload %q", status, payload)
	}
	if s.CorruptFrames() != 1 {
		t.Fatalf("server CorruptFrames = %d, want 1", s.CorruptFrames())
	}
	// The stream can no longer be trusted: the server must close it.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("connection should be closed after corrupt frame, read err %v", err)
	}
}

// corruptOnceServer accepts raw TCP connections; the first connection gets a
// deliberately bad-CRC response, every later connection behaves correctly.
// It exercises the client's poison → re-dial → retry path end to end.
func corruptOnceServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		first := true
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			corrupt := first
			first = false
			go func(conn net.Conn, corrupt bool) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					method, _, payload, checksummed, err := readRequest(r, DefaultMaxFrameSize)
					_ = method
					if err != nil {
						return
					}
					var buf bytes.Buffer
					if corrupt {
						// Valid length, valid flag byte, wrong CRC: exactly
						// what a bit flip on the downlink produces.
						writeResponse(&buf, statusOK, payload, true)
						raw := buf.Bytes()
						raw[len(raw)-1] ^= 0xff
						conn.Write(raw)
						return
					}
					writeResponse(&buf, statusOK, payload, checksummed)
					conn.Write(buf.Bytes())
				}
			}(conn, corrupt)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestCorruptResponsePoisonsRedialsAndRetries(t *testing.T) {
	addr, stop := corruptOnceServer(t)
	defer stop()

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetChecksum(true)
	cl.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	cl.MarkIdempotent("echo")

	resp, err := cl.CallTimeout("echo", []byte("retry me"), 5*time.Second)
	if err != nil {
		t.Fatalf("idempotent call should survive one corrupt response via retry: %v", err)
	}
	if string(resp) != "retry me" {
		t.Fatalf("payload corrupted across retry: %q", resp)
	}
	if cl.CorruptFrames() != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", cl.CorruptFrames())
	}
	if cl.Redials() != 1 {
		t.Fatalf("Redials = %d, want 1 (poisoned connection must be replaced)", cl.Redials())
	}
}

func TestCorruptResponseNotRetriedForNonIdempotent(t *testing.T) {
	addr, stop := corruptOnceServer(t)
	defer stop()

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetChecksum(true)
	cl.SetRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	// "mutate" is NOT marked idempotent: the corrupt response may hide a
	// handler that already ran, so the error must surface.
	_, err = cl.CallTimeout("mutate", []byte("once"), 5*time.Second)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("non-idempotent corrupt call: want ErrCorruptFrame, got %v", err)
	}
	if cl.CorruptFrames() != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", cl.CorruptFrames())
	}
	// The next call re-dials (retry policy installed) and succeeds.
	resp, err := cl.CallTimeout("mutate", []byte("twice"), 5*time.Second)
	if err != nil || string(resp) != "twice" {
		t.Fatalf("next call after poison should re-dial cleanly: %q %v", resp, err)
	}
	if cl.Redials() != 1 {
		t.Fatalf("Redials = %d, want 1", cl.Redials())
	}
}

func TestServerEchoesChecksum(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	readRawResponse := func() []byte {
		t.Helper()
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	var buf bytes.Buffer
	writeRequest(&buf, "echo", []byte("a"), 0, true)
	conn.Write(buf.Bytes())
	if body := readRawResponse(); body[0]&respChecksumFlag == 0 {
		t.Fatal("checksummed request must earn a checksummed response")
	}
	buf.Reset()
	writeRequest(&buf, "echo", []byte("b"), 0, false)
	conn.Write(buf.Bytes())
	if body := readRawResponse(); body[0]&respChecksumFlag != 0 {
		t.Fatal("bare request must earn a bare (historical) response")
	}
}

func TestServerMaxFrameSize(t *testing.T) {
	s := NewServer()
	s.MaxFrameSize = 1 << 10
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.CallTimeout("echo", make([]byte, 1<<11), 5*time.Second)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("over-cap request: want ErrCorruptFrame refusal, got %v", err)
	}
}

func TestClientMaxFrameSize(t *testing.T) {
	s := NewServer()
	s.Handle("big", func(p []byte) ([]byte, error) { return make([]byte, 1<<11), nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetMaxFrameSize(1 << 10)
	_, err = cl.CallTimeout("big", nil, 5*time.Second)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("over-cap response: want ErrCorruptFrame, got %v", err)
	}
	if cl.CorruptFrames() != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", cl.CorruptFrames())
	}
}

func TestChecksumCoversWholeBody(t *testing.T) {
	// The trailer CRC is computed over head byte, method, budget, and
	// payload — flipping any single one must fail verification.
	var buf bytes.Buffer
	if err := writeRequest(&buf, "m", []byte("p"), time.Second, true); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for i := 4; i < len(clean)-4; i++ {
		raw := append([]byte(nil), clean...)
		raw[i] ^= 0x80
		if _, _, _, _, err := readRequest(bytes.NewReader(raw), DefaultMaxFrameSize); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("flip at byte %d undetected: %v", i, err)
		}
	}
	// Sanity: the CRC in the trailer is a real CRC32C of the body.
	body := clean[4 : len(clean)-4]
	want := binary.LittleEndian.Uint32(clean[len(clean)-4:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		t.Fatalf("trailer is not CRC32C of body: got %08x want %08x", got, want)
	}
}
