package rpcx

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"murmuration/internal/netem"
	"murmuration/internal/tensor"
)

func TestCallRoundTrip(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := bytes.Repeat([]byte{0x5A}, 100000)
	resp, err := c.Call("echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("echo corrupted payload")
	}
}

func TestUnknownMethod(t *testing.T) {
	s := NewServer()
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()
	if _, err := c.Call("nope", nil); err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestHandlerError(t *testing.T) {
	s := NewServer()
	s.Handle("fail", func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()
	_, err := c.Call("fail", nil)
	if err == nil || err.Error() != "rpcx: remote error: boom" {
		t.Fatalf("want remote error, got %v", err)
	}
	// The connection must survive handler errors.
	s.Handle("ok", func(p []byte) ([]byte, error) { return []byte("fine"), nil })
	resp, err := c.Call("ok", nil)
	if err != nil || string(resp) != "fine" {
		t.Fatalf("connection broken after handler error: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	s.Handle("double", func(p []byte) ([]byte, error) {
		out := make([]byte, len(p))
		for i, b := range p {
			out[i] = b * 2
		}
		return out, nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := c.Call("double", []byte{byte(i)})
			if err != nil {
				errs <- err
				return
			}
			if resp[0] != byte(i*2) {
				errs <- fmt.Errorf("wrong response for %d: %d", i, resp[0])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMultipleClients(t *testing.T) {
	s := NewServer()
	s.Handle("id", func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	for i := 0; i < 5; i++ {
		c, err := Dial(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call("id", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

func TestShapedCallPaysLinkCost(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()

	// 8 Mb/s + 20 ms each way: 100 KB payload ≈ 100 ms serialize + 40 ms RTT.
	shaper := netem.NewShaper(8, 20*time.Millisecond)
	c, err := Dial(addr, shaper)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 100*1024)
	start := time.Now()
	if _, err := c.Call("echo", payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Fatalf("shaped call too fast: %v", elapsed)
	}

	// Upgrading the link must make it faster.
	c.SetLink(8000, time.Millisecond)
	start = time.Now()
	if _, err := c.Call("echo", payload); err != nil {
		t.Fatal(err)
	}
	if fast := time.Since(start); fast > elapsed/2 {
		t.Fatalf("SetLink upgrade not effective: %v vs %v", fast, elapsed)
	}
}

func TestTensorOverRPC(t *testing.T) {
	s := NewServer()
	s.Handle("scale", func(p []byte) ([]byte, error) {
		x, err := tensor.Decode(bytes.NewReader(p))
		if err != nil {
			return nil, err
		}
		x.Scale(3)
		var buf bytes.Buffer
		if err := tensor.Encode(&buf, x); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()

	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	var buf bytes.Buffer
	if err := tensor.Encode(&buf, x); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Call("scale", buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	y, err := tensor.Decode(bytes.NewReader(resp))
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[3] != 12 {
		t.Fatalf("tensor RPC wrong: %v", y.Data)
	}
}

func TestCallTimeoutStalledHandler(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	s.Handle("stall", func(p []byte) ([]byte, error) {
		<-release // deliberately stalled until the test ends
		return nil, nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	defer close(release)

	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.CallTimeout("stall", []byte("x"), 100*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled call should time out")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	var te *TimeoutError
	if !errors.As(err, &te) || !te.Timeout() || te.Method != "stall" {
		t.Fatalf("want *TimeoutError for method stall, got %#v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~100ms", elapsed)
	}
	// The stream is desynced: the client must refuse reuse rather than
	// deliver the stalled call's late response to the next caller.
	if _, err := c.Call("stall", nil); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("post-timeout call should fail with ErrClientBroken, got %v", err)
	}
}

func TestCallTimeoutFastCallUnaffected(t *testing.T) {
	s := NewServer()
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	defer s.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()
	resp, err := c.CallTimeout("echo", []byte("hi"), time.Second)
	if err != nil || string(resp) != "hi" {
		t.Fatalf("fast call under deadline failed: %v %q", err, resp)
	}
	// The deadline must be cleared for following undeadlined calls.
	if _, err := c.Call("echo", []byte("again")); err != nil {
		t.Fatalf("call after CallTimeout failed: %v", err)
	}
}

func TestShutdownDrainsInflight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	s.Handle("slow", func(p []byte) ([]byte, error) {
		close(started)
		time.Sleep(150 * time.Millisecond)
		return []byte("done"), nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type result struct {
		resp []byte
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := c.Call("slow", nil)
		got <- result{resp, err}
	}()
	<-started
	if err := s.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || string(r.resp) != "done" {
		t.Fatalf("in-flight call not drained: %v %q", r.err, r.resp)
	}
}

func TestShutdownRejectsNewRequests(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	s.Handle("slow", func(p []byte) ([]byte, error) {
		close(started)
		time.Sleep(200 * time.Millisecond)
		return nil, nil
	})
	s.Handle("echo", func(p []byte) ([]byte, error) { return p, nil })
	addr, _ := s.Listen("127.0.0.1:0")
	c1, _ := Dial(addr, nil)
	defer c1.Close()
	c2, _ := Dial(addr, nil)
	defer c2.Close()

	go c1.Call("slow", nil)
	<-started
	done := make(chan struct{})
	go func() {
		s.Shutdown(2 * time.Second)
		close(done)
	}()
	// While draining, a request on an existing connection is rejected.
	time.Sleep(20 * time.Millisecond)
	if _, err := c2.Call("echo", []byte("x")); err == nil {
		t.Fatal("request during drain should be rejected")
	}
	<-done
}

// TestShutdownRepeatedSharesDrain runs two concurrent Shutdowns over one
// in-flight call: both must return as soon as the call drains. A second
// Shutdown once overwrote the drain channel, stranding the first caller on a
// channel nothing would close until the full grace elapsed.
func TestShutdownRepeatedSharesDrain(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	s.Handle("slow", func(p []byte) ([]byte, error) {
		close(started)
		time.Sleep(150 * time.Millisecond)
		return []byte("done"), nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Call("slow", nil)
	<-started

	const grace = 5 * time.Second
	var wg sync.WaitGroup
	elapsed := make([]time.Duration, 2)
	for i := range elapsed {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			s.Shutdown(grace)
			elapsed[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for i, e := range elapsed {
		if e >= grace {
			t.Fatalf("Shutdown %d waited out the full grace (%v): drain channel not shared", i, e)
		}
	}
}

func TestShutdownGraceBounded(t *testing.T) {
	s := NewServer()
	release := make(chan struct{})
	started := make(chan struct{})
	s.Handle("hang", func(p []byte) ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	addr, _ := s.Listen("127.0.0.1:0")
	c, _ := Dial(addr, nil)
	defer c.Close()
	go c.Call("hang", nil)
	<-started
	defer close(release)

	start := time.Now()
	s.Shutdown(100 * time.Millisecond)
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("shutdown with hung handler took %v, grace not bounded", e)
	}
}

func TestServerCloseUnblocksDial(t *testing.T) {
	s := NewServer()
	addr, _ := s.Listen("127.0.0.1:0")
	s.Close()
	// After close, new calls should fail (dial might succeed briefly on
	// some platforms, but the call must not hang).
	c, err := Dial(addr, nil)
	if err != nil {
		return // expected on most platforms
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		c.Call("x", nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("call to closed server hung")
	}
}
