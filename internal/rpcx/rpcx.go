// Package rpcx is the stdlib-only transport that replaces the paper's gRPC:
// a length-prefixed binary request/response protocol over TCP. Servers
// register byte-level handlers by method name; clients issue synchronous
// calls. Connections can be wrapped with netem shapers so the link obeys
// emulated bandwidth/delay, which is how the runtime reproduces the paper's
// tc-controlled testbed.
package rpcx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"murmuration/internal/netem"
)

// Handler processes one request payload and returns a response payload.
type Handler func(payload []byte) ([]byte, error)

// TimeoutError is returned by Client.CallTimeout when the per-call deadline
// elapses before the response arrives. It satisfies net.Error's Timeout and
// unwraps to ErrTimeout so callers can use errors.Is.
type TimeoutError struct {
	Method string
	After  time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rpcx: call %q timed out after %v", e.Method, e.After)
}

// Timeout reports that this error is a deadline expiry (net.Error shape).
func (e *TimeoutError) Timeout() bool { return true }

// Unwrap lets errors.Is(err, ErrTimeout) match.
func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// Sentinel errors for client call failures.
var (
	// ErrTimeout is the target for errors.Is on per-call deadline expiry.
	ErrTimeout = errors.New("rpcx: call timeout")
	// ErrClientBroken is returned for calls on a client whose connection was
	// poisoned by an earlier timeout (the stream may hold a stale response,
	// so the connection cannot be reused). Clients with a retry policy
	// installed re-dial instead of returning this.
	ErrClientBroken = errors.New("rpcx: client connection broken by earlier timeout")
	// ErrBudgetExhausted is the target for errors.Is when a call's deadline
	// budget cannot be met: either the server refused the request because its
	// cost estimate exceeds the remaining budget (*BudgetError), or a caller
	// observed the budget expire locally. It is the typed alternative to a
	// silent late reply.
	ErrBudgetExhausted = errors.New("rpcx: budget exhausted")
	// ErrPanic is the target for errors.Is when a handler panicked on the
	// server (*PanicError). The panic was recovered — it failed one request,
	// not the daemon — but the handler ran partway, so like a RemoteError a
	// panicked call is never retried automatically.
	ErrPanic = errors.New("rpcx: handler panicked")
	// ErrOverloaded is the target for errors.Is when the server refused a
	// call because its in-flight cap was reached (*OverloadError). An
	// overload refusal is a load signal, not a fault: nothing failed, the
	// server declined work it could not finish. It is retryable (backoff
	// gives the server room) and must never count as a link or device fault.
	ErrOverloaded = errors.New("rpcx: server overloaded")
	// ErrStalled is the target for errors.Is when a call's in-flight progress
	// watchdog fired (*StallError): the frame transfer stopped advancing for
	// the configured window even though the connection is nominally alive —
	// the half-open-link signature. Like a timeout it poisons the connection
	// so the next call re-dials; like overload it is a link condition, never
	// a device fault.
	ErrStalled = errors.New("rpcx: call stalled")
	// ErrRetryBudget is the target for errors.Is when a retry was suppressed
	// because the shared retry budget (SetRetryGate) refused the withdrawal
	// (*RetryBudgetError). It is a storm-control shed, not a fault: the first
	// attempt's failure stands, but the client declined to amplify a
	// correlated outage with another attempt. Never a device signal.
	// The message deliberately says "depleted", not "exhausted": the budget-
	// exhaustion classifier matches "budget exhausted" on remote error
	// strings, and a retry-budget shed must never read as a deadline miss.
	ErrRetryBudget = errors.New("rpcx: retry budget depleted")
)

// StallError reports that an in-flight call's progress watchdog fired: the
// connection stopped moving frame bytes for MinBytes-per-Tick purposes while
// a frame transfer was in flight. It unwraps to ErrStalled. The connection is
// poisoned (the frame is torn mid-stream) and the call is retryable on a
// fresh dial for idempotent methods.
type StallError struct {
	Method string
	// Tick and MinBytes echo the violated policy; After is roughly how long
	// the call ran before the watchdog fired.
	Tick     time.Duration
	MinBytes int64
	After    time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("rpcx: call %q stalled after %v (< %d bytes progress per %v)",
		e.Method, e.After.Round(time.Millisecond), e.MinBytes, e.Tick)
}

// Unwrap lets errors.Is(err, ErrStalled) match.
func (e *StallError) Unwrap() error { return ErrStalled }

// ProgressPolicy is a client's per-call in-flight progress deadline: while a
// frame is being written, and once the first response byte has arrived, the
// connection must move at least MinBytes every Tick. Two consecutive ticks
// without progress abort the call with a typed *StallError — a hung transfer
// fails in ~2×Tick instead of burning the whole request budget. The window
// between "request flushed" and "first response byte" is exempt: that is
// server compute time, bounded by the call's own deadline, not a transfer.
type ProgressPolicy struct {
	// Tick is the progress check period (default 100ms).
	Tick time.Duration
	// MinBytes is the minimum connection I/O advance per tick (default 1).
	MinBytes int64
}

func (p ProgressPolicy) withDefaults() ProgressPolicy {
	if p.Tick <= 0 {
		p.Tick = 100 * time.Millisecond
	}
	if p.MinBytes <= 0 {
		p.MinBytes = 1
	}
	return p
}

// HelloMethod is the reserved builtin handshake method every Server answers:
// the response is the server's 8-byte little-endian incarnation (0 until
// SetIncarnation). Clients call it via Handshake; the cluster layer's
// HelloProbe rides it as a heartbeat so every probe re-reads the peer's
// identity. A user handler registered under this name takes precedence.
const HelloMethod = "rpcx.hello"

// maxPanicStack caps how much of a recovered panic's stack trace travels in
// the response payload; stacks are for operators, not for 64KiB frames.
const maxPanicStack = 4096

// PanicError reports that the server's handler panicked. Msg carries the
// recovered value and a truncated stack capture from the server. It unwraps
// to ErrPanic. Never retried: the handler executed partway, so a second
// attempt could duplicate its effect — and a deterministic panic would just
// fire again.
type PanicError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("rpcx: call %q panicked on server: %s", e.Method, e.Msg)
}

// Unwrap lets errors.Is(err, ErrPanic) match.
func (e *PanicError) Unwrap() error { return ErrPanic }

// OverloadError is the server's typed refusal of a call because its
// configured in-flight cap (Server.MaxInflight) was reached. It unwraps to
// ErrOverloaded and is retryable — backoff gives the server room to drain.
type OverloadError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("rpcx: call %q refused, server overloaded: %s", e.Method, e.Msg)
}

// Unwrap lets errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// BudgetError is the server's typed refusal of a budget-carrying call: its
// estimate of the handler's cost exceeds the remaining deadline budget the
// request arrived with, so executing it could only produce a late reply.
// It unwraps to ErrBudgetExhausted. Never retried on the same link — the
// refusal is deterministic until the server's cost estimate changes.
type BudgetError struct {
	Method string
	// Budget is the remaining budget the request carried.
	Budget time.Duration
	// Msg is the server's refusal message (it names the cost estimate).
	Msg string
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("rpcx: call %q refused, budget %v exhausted: %s", e.Method, e.Budget, e.Msg)
}

// Unwrap lets errors.Is(err, ErrBudgetExhausted) match.
func (e *BudgetError) Unwrap() error { return ErrBudgetExhausted }

// RetryBudgetError reports that a retry the policy would have fired was
// suppressed because the shared retry budget refused it. Cause is the
// failure the suppressed retry would have addressed, preserved so callers
// can still classify what actually went wrong. Unwrap yields both
// ErrRetryBudget and Cause, so errors.Is matches either.
type RetryBudgetError struct {
	Method string
	Cause  error
}

// Error implements error.
func (e *RetryBudgetError) Error() string {
	return fmt.Sprintf("rpcx: call %q retry suppressed, retry budget depleted (cause: %v)", e.Method, e.Cause)
}

// Unwrap lets errors.Is match ErrRetryBudget and the suppressed cause.
func (e *RetryBudgetError) Unwrap() []error { return []error{ErrRetryBudget, e.Cause} }

// RetryGate is the hook a shared retry budget implements (see
// limit.Budget): TryWithdraw returns whether one speculative attempt may
// fire, consuming a token when it does. It must never block.
type RetryGate interface {
	TryWithdraw() bool
}

// RemoteError is an application-level failure reported by the server's
// handler (response status != 0). It is never retried: the handler ran, so a
// second attempt could duplicate its effect.
type RemoteError struct {
	Msg string
}

// Error keeps the historical "rpcx: remote error: ..." string.
func (e *RemoteError) Error() string { return "rpcx: remote error: " + e.Msg }

// RetryPolicy configures client-side fault handling. Installing a policy
// (SetRetryPolicy) enables automatic re-dial for Dial-created clients: a
// connection poisoned by a timeout or torn down by the peer is replaced on
// the next call instead of failing with ErrClientBroken. MaxAttempts > 1
// additionally retries transport failures with exponential backoff + jitter,
// but only for methods the caller marked idempotent (MarkIdempotent) —
// a non-idempotent call may have executed on the server before the failure.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (min 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 10ms); each
	// further retry doubles it up to MaxBackoff (default 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac randomizes each backoff by ±frac (default 0.2) so a fleet
	// of retrying clients does not synchronize against a recovering server.
	JitterFrac float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	return p
}

// backoff returns the jittered delay before retry number retry (1-based).
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff << uint(retry-1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	j := 1 + p.JitterFrac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * j)
}

// Server dispatches framed requests to registered handlers.
type Server struct {
	// MaxFrameSize caps the body length of incoming request frames, enforced
	// before the body buffer is allocated (0 selects DefaultMaxFrameSize).
	// Set before Listen.
	MaxFrameSize int

	// MaxInflight caps concurrently executing handler calls (0 = unlimited).
	// A call arriving at the cap is refused with a typed *OverloadError
	// instead of queueing as a goroutine, so overload is shed at admission.
	// Set before Listen.
	MaxInflight int

	// ConnIdleTimeout evicts a connection whose next request does not arrive
	// within the window (0 = never): a stalled or dead client stops pinning a
	// goroutine and wedging Shutdown. WriteTimeout bounds each response write
	// the same way (0 = never). Set before Listen.
	ConnIdleTimeout time.Duration
	WriteTimeout    time.Duration

	// WrapConn, when set, wraps every accepted connection before it is
	// served — chaos tests use it to interpose a netem fault injector on the
	// server's write path (response traffic), which is how a one-direction
	// partition is reproduced on real sockets. Set before Listen.
	WrapConn func(net.Conn) net.Conn

	// incarnation is the identity this server announces through the builtin
	// hello method (see SetIncarnation / MintIncarnation).
	incarnation atomic.Uint64

	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	conns    map[net.Conn]struct{}
	closed   bool

	// noChecksum suppresses response checksums (see SetChecksum); incoming
	// checksummed frames are always verified.
	noChecksum atomic.Bool
	// corruptFrames counts request frames rejected for integrity violations.
	corruptFrames atomic.Uint64
	// panics counts handler panics recovered into statusPanic responses;
	// overloads counts calls refused at the MaxInflight cap; evictions counts
	// connections closed for blowing an idle/write deadline; acceptRetries
	// counts transient Accept errors survived by the accept loop's backoff.
	panics        atomic.Uint64
	overloads     atomic.Uint64
	evictions     atomic.Uint64
	acceptRetries atomic.Uint64

	// In-flight handler tracking for graceful shutdown.
	inflightMu   sync.Mutex
	draining     bool
	inflightN    int
	inflightDone chan struct{} // closed when inflightN drops to 0 while draining

	// Per-method handler-cost estimates (EMA of successful handler runtimes,
	// seconds) backing the budget guard: a request carrying a deadline budget
	// below the method's estimated cost is refused with a typed *BudgetError
	// instead of being executed into a guaranteed-late reply.
	costMu  sync.Mutex
	costSec map[string]float64
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
		costSec:  make(map[string]float64),
	}
}

// estimatedCost returns the server's smoothed runtime estimate for a method
// (0 before any successful run has been observed).
func (s *Server) estimatedCost(method string) time.Duration {
	s.costMu.Lock()
	defer s.costMu.Unlock()
	return time.Duration(s.costSec[method] * float64(time.Second))
}

// observeCost folds one successful handler runtime into the method's EMA.
func (s *Server) observeCost(method string, d time.Duration) {
	s.costMu.Lock()
	defer s.costMu.Unlock()
	sec := d.Seconds()
	if prev, ok := s.costSec[method]; ok {
		s.costSec[method] = 0.7*prev + 0.3*sec
	} else {
		s.costSec[method] = sec
	}
}

// Handle registers a handler for a method name (max 63 bytes).
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// SetIncarnation installs the identity this server announces through the
// builtin hello method. Daemons mint one per process start (MintIncarnation)
// so gateways can detect a silent restart and fence the dead incarnation's
// late responses. Safe to call at any time; 0 (the default) means "unknown".
func (s *Server) SetIncarnation(inc uint64) { s.incarnation.Store(inc) }

// Incarnation returns the identity this server announces (0 = unset).
func (s *Server) Incarnation() uint64 { return s.incarnation.Load() }

// helloHandler answers the builtin handshake: 8 bytes of little-endian
// incarnation.
func (s *Server) helloHandler([]byte) ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], s.incarnation.Load())
	return b[:], nil
}

// SetChecksum controls whether responses to checksummed requests carry a
// CRC32C trailer of their own (the echo behavior; on by default). Incoming
// checksummed requests are verified regardless — disabling only changes
// what this server emits, so a bare peer never sees an integrity frame.
func (s *Server) SetChecksum(enabled bool) { s.noChecksum.Store(!enabled) }

// CorruptFrames returns how many request frames this server rejected for
// integrity violations (checksum mismatch or over-cap length).
func (s *Server) CorruptFrames() uint64 { return s.corruptFrames.Load() }

// Panics returns how many handler panics this server recovered into typed
// statusPanic responses.
func (s *Server) Panics() uint64 { return s.panics.Load() }

// Overloads returns how many calls this server refused at its MaxInflight
// cap.
func (s *Server) Overloads() uint64 { return s.overloads.Load() }

// Evictions returns how many connections this server closed for exceeding
// the idle or write deadline.
func (s *Server) Evictions() uint64 { return s.evictions.Load() }

// AcceptRetries returns how many transient Accept errors the accept loop
// survived via backoff instead of dying.
func (s *Server) AcceptRetries() uint64 { return s.acceptRetries.Load() }

// Listen starts accepting connections on addr ("host:port"; use ":0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts accepting connections from ln in a background goroutine
// (Listen is Serve over a fresh TCP listener). Transient Accept errors —
// EMFILE under fd exhaustion, ECONNABORTED, momentary resource pressure —
// are retried with capped exponential backoff instead of killing the accept
// loop permanently; only the listener closing (Shutdown/Close) ends it.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		backoff := 5 * time.Millisecond
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				s.mu.RLock()
				closed := s.closed
				s.mu.RUnlock()
				if closed {
					return
				}
				s.acceptRetries.Add(1)
				time.Sleep(backoff)
				if backoff *= 2; backoff > time.Second {
					backoff = time.Second
				}
				continue
			}
			backoff = 5 * time.Millisecond
			if s.WrapConn != nil {
				conn = s.WrapConn(conn)
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
}

// Shutdown gracefully stops the server: it stops accepting new connections
// and new requests, waits up to grace for in-flight handler calls to finish,
// then closes every connection. Requests arriving on live connections during
// the drain are answered with an error instead of being executed.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	ln := s.ln
	s.mu.Unlock()

	s.inflightMu.Lock()
	s.draining = true
	// Concurrent/repeated Shutdowns share one drain channel: installing a
	// fresh one each time would strand earlier callers on a channel endCall
	// no longer holds, making them wait out the full grace needlessly.
	if s.inflightDone == nil {
		s.inflightDone = make(chan struct{})
		if s.inflightN == 0 {
			close(s.inflightDone)
		}
	}
	done := s.inflightDone
	s.inflightMu.Unlock()

	var lnErr error
	if ln != nil {
		lnErr = ln.Close()
	}
	deadline := time.NewTimer(grace)
	defer deadline.Stop()
	select {
	case <-done:
	case <-deadline.C:
	}

	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()

	// Connection goroutines normally exit as soon as their conn closes, but
	// one stuck inside a hung handler would block forever — bound the wait so
	// Shutdown honors its grace contract even then.
	exited := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(exited)
	}()
	select {
	case <-exited:
	case <-time.After(grace + 100*time.Millisecond):
	}
	return lnErr
}

// Close stops the listener, closes every active connection, and waits for
// the connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriterSize(conn, 64*1024)
	max := frameCap(s.MaxFrameSize)
	for {
		if s.ConnIdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ConnIdleTimeout))
		}
		method, budget, payload, checksummed, err := readRequest(r, max)
		if err != nil {
			if isTimeout(err) {
				// Idle eviction: the client held the connection without
				// sending a request for the whole window. Dropping it frees
				// the goroutine and lets Shutdown finish.
				s.evictions.Add(1)
				return
			}
			// Integrity violations earn a best-effort typed refusal before the
			// connection dies: the stream can no longer be trusted to be
			// framed, but the length-prefixed reply usually still lands and
			// turns a silent hang into a client-visible corruption signal.
			var fe *FrameError
			if errors.As(err, &fe) {
				s.corruptFrames.Add(1)
				if werr := writeResponse(w, statusCorrupt, []byte(fe.Reason), false); werr == nil {
					w.Flush()
				}
			}
			return
		}
		respChecksum := checksummed && !s.noChecksum.Load()
		s.mu.RLock()
		h := s.handlers[method]
		s.mu.RUnlock()
		if h == nil && method == HelloMethod {
			h = s.helloHandler
		}
		var status byte
		var resp []byte
		ok, overloaded := false, false
		if h != nil {
			ok, overloaded = s.beginCall()
		}
		switch {
		case h == nil:
			status = statusError
			resp = []byte(fmt.Sprintf("rpcx: unknown method %q", method))
		case overloaded:
			// In-flight cap reached: refuse typed instead of queueing the
			// work. The client sees a retryable *OverloadError.
			status = statusOverload
			resp = []byte(fmt.Sprintf("in-flight cap %d reached", s.MaxInflight))
		case !ok:
			status = statusError
			resp = []byte("rpcx: server shutting down")
		case budget > 0 && s.estimatedCost(method) > budget:
			// Budget guard: the request cannot finish in time, so refuse it
			// with a typed error instead of executing into a silent late
			// reply. The cost estimate is only ever built from observed runs,
			// so the first call of a method is never refused. beginCall above
			// registered the request, so it must be retired here.
			status = statusBudget
			resp = []byte(fmt.Sprintf("estimated cost %v exceeds remaining budget %v",
				s.estimatedCost(method).Round(time.Microsecond), budget))
			s.endCall()
		default:
			status, resp = s.invoke(method, h, payload)
			s.endCall()
		}
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err = writeResponse(w, status, resp, respChecksum)
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			if isTimeout(err) {
				// Write eviction: the client stopped draining its socket and
				// our response could not land within the window.
				s.evictions.Add(1)
			}
			return
		}
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Time{})
		}
	}
}

// invoke runs one handler with panic isolation: a panicking handler fails
// its request with a typed statusPanic response — carrying the recovered
// value and a truncated stack — and never takes down the daemon or the
// connection.
func (s *Server) invoke(method string, h Handler, payload []byte) (status byte, resp []byte) {
	start := time.Now()
	panicked := true
	defer func() {
		if !panicked {
			return
		}
		r := recover()
		s.panics.Add(1)
		stack := make([]byte, maxPanicStack)
		stack = stack[:runtime.Stack(stack, false)]
		status = statusPanic
		resp = []byte(fmt.Sprintf("%v\n\n%s", r, stack))
	}()
	out, err := h(payload)
	panicked = false
	if err != nil {
		return statusError, []byte(err.Error())
	}
	s.observeCost(method, time.Since(start))
	return statusOK, out
}

// isTimeout reports whether err is a connection-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// beginCall registers an in-flight handler invocation. ok is false when the
// request must be rejected; overloaded additionally marks the rejection as a
// MaxInflight refusal (typed statusOverload) rather than a drain.
func (s *Server) beginCall() (ok, overloaded bool) {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	if s.draining {
		return false, false
	}
	if s.MaxInflight > 0 && s.inflightN >= s.MaxInflight {
		s.overloads.Add(1)
		return false, true
	}
	s.inflightN++
	return true, false
}

// endCall retires an in-flight handler invocation and releases a pending
// Shutdown when the last one finishes.
func (s *Server) endCall() {
	s.inflightMu.Lock()
	defer s.inflightMu.Unlock()
	s.inflightN--
	if s.inflightN == 0 && s.inflightDone != nil {
		close(s.inflightDone)
		s.inflightDone = nil
	}
}

// Frame layout (little endian):
//
//	request:  u32 totalLen | u8 flags|methodLen | method | [u64 budgetµs] | payload | [u32 crc32c]
//	response: u32 totalLen | u8 flags|status    | payload | [u32 crc32c]
//
// The top bit of the request head byte is the budget flag: when set, an
// 8-byte remaining-deadline budget in microseconds follows the method name.
// The next bit is the checksum flag: when set, the body ends with a CRC32C
// (Castagnoli) of everything between the length prefix and the checksum
// itself. Method names are therefore limited to 63 bytes. A budget-less,
// checksum-less request is bit-identical to the historical frame, so
// integrity-unaware and integrity-aware peers interoperate as long as no
// optional field is sent. Responses carry the checksum flag in the top bit
// of the status byte; servers echo it — a checksummed request earns a
// checksummed response, a bare request a bare (historical) one.
const (
	budgetFlag       = 0x80
	checksumFlag     = 0x40
	maxMethodLen     = 0x3F
	respChecksumFlag = 0x80
	statusMask       = 0x7F

	statusOK     = 0
	statusError  = 1
	statusBudget = 2 // typed budget refusal; payload is the server's message
	// statusCorrupt reports that the server could not trust the request
	// frame: checksum mismatch or a length beyond its cap. The payload is
	// the server's description; the server closes the connection right after
	// sending it because the stream can no longer be trusted to be framed.
	statusCorrupt = 3
	// statusPanic reports that the handler panicked and was recovered; the
	// payload is the recovered value plus a truncated stack. The connection
	// stays usable — a panic fails one request, not the stream.
	statusPanic = 4
	// statusOverload is a typed refusal at the server's in-flight cap; the
	// payload names the cap. Retryable: backoff gives the server room.
	statusOverload = 5
)

// DefaultMaxFrameSize caps a frame's body length when the peer did not
// configure an explicit limit. The cap is enforced before the body buffer is
// allocated, so a corrupted length prefix costs a typed error, not a
// multi-GiB allocation.
const DefaultMaxFrameSize = 64 << 20

// castagnoli is the CRC32C table shared by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame is the target for errors.Is on any frame-integrity
// violation: checksum mismatch, a length prefix beyond the frame cap, or a
// structurally impossible header. Like a timeout it poisons the connection
// (the stream may be desynced) and is retried only for idempotent methods;
// it is never a device fault — the bytes went bad, not the peer.
var ErrCorruptFrame = errors.New("rpcx: corrupt frame")

// FrameError is the typed form of a frame-integrity violation. It unwraps
// to ErrCorruptFrame.
type FrameError struct {
	// Op names the decode that failed: "read-request" or "read-response".
	Op string
	// Reason describes the violation (mismatched checksum, oversize length
	// prefix, truncated header, ...).
	Reason string
}

// Error implements error.
func (e *FrameError) Error() string {
	return fmt.Sprintf("rpcx: corrupt frame (%s): %s", e.Op, e.Reason)
}

// Unwrap lets errors.Is(err, ErrCorruptFrame) match.
func (e *FrameError) Unwrap() error { return ErrCorruptFrame }

// frameCap normalizes a configured frame-size limit.
func frameCap(max int) uint32 {
	if max <= 0 {
		return DefaultMaxFrameSize
	}
	return uint32(max)
}

// readBody reads one length-prefixed frame body, enforcing the cap before
// allocating. io errors pass through untyped (a closed peer is not
// corruption); impossible lengths come back as *FrameError.
func readBody(r io.Reader, op string, max uint32) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 1 {
		return nil, &FrameError{Op: op, Reason: "zero-length frame"}
	}
	if total > max {
		return nil, &FrameError{Op: op, Reason: fmt.Sprintf("frame length %d exceeds cap %d", total, max)}
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// verifyChecksum checks and strips a CRC32C trailer from body.
func verifyChecksum(body []byte, op string) ([]byte, error) {
	if len(body) < 5 {
		return nil, &FrameError{Op: op, Reason: "checksummed frame too short"}
	}
	want := binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(body[:len(body)-4], castagnoli); got != want {
		return nil, &FrameError{Op: op, Reason: fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want)}
	}
	return body[:len(body)-4], nil
}

// readRequest decodes one request frame. checksummed reports whether the
// frame carried (and passed) a CRC32C trailer, so the response can echo it.
func readRequest(r io.Reader, max uint32) (method string, budget time.Duration, payload []byte, checksummed bool, err error) {
	body, err := readBody(r, "read-request", max)
	if err != nil {
		return "", 0, nil, false, err
	}
	if body[0]&checksumFlag != 0 {
		checksummed = true
		if body, err = verifyChecksum(body, "read-request"); err != nil {
			return "", 0, nil, true, err
		}
	}
	ml := int(body[0] & maxMethodLen)
	if 1+ml > len(body) {
		return "", 0, nil, checksummed, &FrameError{Op: "read-request", Reason: "method length beyond frame"}
	}
	method = string(body[1 : 1+ml])
	rest := body[1+ml:]
	if body[0]&budgetFlag != 0 {
		if len(rest) < 8 {
			return "", 0, nil, checksummed, &FrameError{Op: "read-request", Reason: "short budget header"}
		}
		budget = time.Duration(binary.LittleEndian.Uint64(rest)) * time.Microsecond
		rest = rest[8:]
	}
	return method, budget, rest, checksummed, nil
}

func writeRequest(w io.Writer, method string, payload []byte, budget time.Duration, checksum bool) error {
	if len(method) > maxMethodLen {
		return errors.New("rpcx: method name too long")
	}
	head := byte(len(method))
	extra := 0
	if budget > 0 {
		head |= budgetFlag
		extra = 8
	}
	tail := 0
	if checksum {
		head |= checksumFlag
		tail = 4
	}
	var budgetBuf [8]byte
	binary.LittleEndian.PutUint64(budgetBuf[:], uint64(budget.Microseconds()))
	total := uint32(1 + len(method) + extra + len(payload) + tail)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], total)
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{head}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, method); err != nil {
		return err
	}
	if budget > 0 {
		if _, err := w.Write(budgetBuf[:]); err != nil {
			return err
		}
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if checksum {
		crc := crc32.Update(0, castagnoli, []byte{head})
		crc = crc32.Update(crc, castagnoli, []byte(method))
		if budget > 0 {
			crc = crc32.Update(crc, castagnoli, budgetBuf[:])
		}
		crc = crc32.Update(crc, castagnoli, payload)
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], crc)
		if _, err := w.Write(crcBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

// flusher is satisfied by *bufio.Writer; writeResponse uses it to push the
// tiny response header onto the wire ahead of a large payload.
type flusher interface{ Flush() error }

// largeFlushThreshold: payloads at least this big get the header flushed
// first. The payload then bypasses the bufio copy entirely (direct write),
// and — critically for stall detection — the header reaches the client even
// when a half-open link stalls only large frames, so the client's progress
// watchdog sees the response start and can fail the call in bounded time.
const largeFlushThreshold = 64 * 1024

func writeResponse(w io.Writer, status byte, payload []byte, checksum bool) error {
	head := status
	tail := 0
	if checksum {
		head |= respChecksumFlag
		tail = 4
	}
	total := uint32(1 + len(payload) + tail)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], total)
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{head}); err != nil {
		return err
	}
	if len(payload) >= largeFlushThreshold {
		if f, ok := w.(flusher); ok {
			if err := f.Flush(); err != nil {
				return err
			}
		}
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if checksum {
		crc := crc32.Update(0, castagnoli, []byte{head})
		crc = crc32.Update(crc, castagnoli, payload)
		var crcBuf [4]byte
		binary.LittleEndian.PutUint32(crcBuf[:], crc)
		if _, err := w.Write(crcBuf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readResponse(r io.Reader, max uint32) (byte, []byte, error) {
	body, err := readBody(r, "read-response", max)
	if err != nil {
		return 0, nil, err
	}
	if body[0]&respChecksumFlag != 0 {
		if body, err = verifyChecksum(body, "read-response"); err != nil {
			return 0, nil, err
		}
	}
	return body[0] & statusMask, body[1:], nil
}

// Client is a synchronous RPC client over one TCP connection. Safe for
// concurrent use; calls serialize on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	shaper *netem.Shaper
	broken bool // a timed-out call desynced the stream; no further calls

	// Fault handling (see RetryPolicy). addr is empty for NewClient-wrapped
	// connections, which therefore can never re-dial unless a custom dialer
	// is installed (SetDialer).
	addr       string
	dialer     func() (net.Conn, error)
	retry      RetryPolicy
	retrySet   bool
	idempotent map[string]bool
	rng        *rand.Rand
	retryGate  RetryGate

	// Integrity (see SetChecksum / SetMaxFrameSize).
	checksum bool
	maxFrame int

	// In-flight progress deadline (see SetProgressPolicy). pc is the
	// byte-counting wrapper installed around conn while a policy is active.
	progress    ProgressPolicy
	progressSet bool
	pc          *progressConn

	// Incarnation handshake state (see Handshake): once handshaken, every
	// re-dial re-runs the hello exchange so remoteInc always names the
	// incarnation living behind the *current* connection.
	handshaken bool
	remoteInc  atomic.Uint64

	// corruptFrames counts integrity violations observed on this client's
	// calls: response frames that failed their checksum or cap locally, plus
	// typed statusCorrupt refusals from the server. redials counts successful
	// connection replacements after poisoning. panics counts statusPanic
	// responses (the peer's handler panicked); overloads counts statusOverload
	// refusals (the peer's in-flight cap); stalledCalls counts calls aborted
	// by the progress watchdog.
	corruptFrames atomic.Uint64
	redials       atomic.Uint64
	panics        atomic.Uint64
	overloads     atomic.Uint64
	stalledCalls  atomic.Uint64
}

// progressConn counts bytes crossing a connection so the progress watchdog
// can observe transfer advance without hooking bufio internals.
type progressConn struct {
	net.Conn
	bytes atomic.Int64
}

func (p *progressConn) Read(b []byte) (int, error) {
	n, err := p.Conn.Read(b)
	p.bytes.Add(int64(n))
	return n, err
}

func (p *progressConn) Write(b []byte) (int, error) {
	n, err := p.Conn.Write(b)
	p.bytes.Add(int64(n))
	return n, err
}

// Dial connects to addr. If shaper is non-nil, outbound traffic is
// bandwidth-limited and delayed through it (emulating the device's uplink).
func Dial(addr string, shaper *netem.Shaper) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn, shaper)
	c.addr = addr
	return c, nil
}

// NewClient wraps an existing connection (e.g. a netem.Pipe end).
func NewClient(conn net.Conn, shaper *netem.Shaper) *Client {
	c := &Client{conn: conn, shaper: shaper}
	c.r = bufio.NewReaderSize(conn, 64*1024)
	c.w = bufio.NewWriterSize(conn, 64*1024)
	return c
}

// SetRetryPolicy installs a retry policy and enables automatic re-dial for
// Dial-created clients (see RetryPolicy). Not safe to call concurrently with
// in-flight calls.
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.retry = p.withDefaults()
	c.retrySet = true
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
}

// SetRetryGate installs a shared retry budget: once set, every in-place
// retry attempt (beyond the first try) must withdraw a token from the gate
// before firing, and a refused withdrawal surfaces as a typed
// *RetryBudgetError (errors.Is(err, ErrRetryBudget)) carrying the failure
// the retry would have addressed. Multiple clients sharing one gate share
// one budget — that coupling is the point: it bounds the fleet-wide retry
// rate under a correlated failure. nil removes the gate. Not safe to call
// concurrently with in-flight calls.
func (c *Client) SetRetryGate(g RetryGate) { c.retryGate = g }

// SetChecksum controls whether this client's requests carry a CRC32C
// trailer (default off, keeping frames bit-identical to the historical
// format). Checksummed responses are always verified when present,
// regardless of this setting. Not safe to call concurrently with in-flight
// calls.
func (c *Client) SetChecksum(enabled bool) { c.checksum = enabled }

// SetMaxFrameSize caps the body length of response frames, enforced before
// the body buffer is allocated (<= 0 selects DefaultMaxFrameSize). Not safe
// to call concurrently with in-flight calls.
func (c *Client) SetMaxFrameSize(n int) { c.maxFrame = n }

// SetDialer installs a custom dialer used to replace a poisoned connection
// (instead of re-dialing the original address). This is how a NewClient-
// wrapped connection — e.g. one wrapped in a netem fault injector — gains
// re-dial recovery. Not safe to call concurrently with in-flight calls.
func (c *Client) SetDialer(dial func() (net.Conn, error)) { c.dialer = dial }

// SetProgressPolicy installs a per-call in-flight progress deadline (see
// ProgressPolicy). The zero policy's fields select the defaults; progress
// watching stays off entirely until this is called, so clients that never
// opt in keep the historical single-deadline behavior and pay nothing on the
// hot path. Not safe to call concurrently with in-flight calls.
func (c *Client) SetProgressPolicy(p ProgressPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.progress = p.withDefaults()
	c.progressSet = true
	c.wrapProgressLocked()
}

// wrapProgressLocked interposes the byte-counting wrapper on the current
// connection and rebuilds the buffered reader/writer over it, so every frame
// byte in either direction moves the progress counter. Caller holds c.mu and
// has set progressSet.
func (c *Client) wrapProgressLocked() {
	c.pc = &progressConn{Conn: c.conn}
	c.conn = c.pc
	c.r = bufio.NewReaderSize(c.conn, 64*1024)
	c.w = bufio.NewWriterSize(c.conn, 64*1024)
}

// Handshake performs the builtin hello exchange: it asks the peer for its
// incarnation, remembers it (RemoteIncarnation), and arms automatic
// re-handshake — every future re-dial repeats the exchange so the remembered
// incarnation always describes the process behind the current connection.
// d bounds the exchange (<= 0 means no deadline).
func (c *Client) Handshake(d time.Duration) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken {
		if !c.retrySet || (c.addr == "" && c.dialer == nil) {
			return 0, ErrClientBroken
		}
		// redialLocked re-runs the hello itself once handshaken; arm first so
		// a successful re-dial leaves remoteInc fresh either way.
		c.handshaken = true
		if err := c.redialLocked(); err != nil {
			return 0, err
		}
		return c.remoteInc.Load(), nil
	}
	if err := c.helloLocked(d); err != nil {
		return 0, err
	}
	c.handshaken = true
	return c.remoteInc.Load(), nil
}

// RemoteIncarnation returns the peer incarnation learned by the most recent
// handshake on the current connection (0 before any Handshake, or when the
// peer never called SetIncarnation).
func (c *Client) RemoteIncarnation() uint64 { return c.remoteInc.Load() }

// ForceRedial poisons the current connection so the next call (or Handshake)
// replaces it through the dialer. The cluster layer uses it when a restart is
// detected on another path: the data connection may still terminate at the
// dead incarnation's socket, and re-dialing is the only way to reach the new
// process.
func (c *Client) ForceRedial() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.broken = true
	c.conn.Close()
}

// helloLocked runs one hello request/response on the current connection and
// records the peer's incarnation. Caller holds c.mu.
func (c *Client) helloLocked(d time.Duration) error {
	if d > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(d)); err != nil {
			return err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeRequest(c.w, HelloMethod, nil, 0, c.checksum); err != nil {
		return c.callErr(HelloMethod, d, err, nil)
	}
	if err := c.w.Flush(); err != nil {
		return c.callErr(HelloMethod, d, err, nil)
	}
	status, resp, err := readResponse(c.r, frameCap(c.maxFrame))
	if err != nil {
		return c.callErr(HelloMethod, d, err, nil)
	}
	if status != statusOK || len(resp) < 8 {
		return &RemoteError{Msg: fmt.Sprintf("hello failed (status %d, %d bytes)", status, len(resp))}
	}
	c.remoteInc.Store(binary.LittleEndian.Uint64(resp))
	return nil
}

// StalledCalls returns how many calls the progress watchdog aborted with a
// typed *StallError.
func (c *Client) StalledCalls() uint64 { return c.stalledCalls.Load() }

// CorruptFrames returns how many integrity violations this client observed:
// locally failed response checksums/caps plus typed corrupt-request
// refusals from the server.
func (c *Client) CorruptFrames() uint64 { return c.corruptFrames.Load() }

// Redials returns how many times a poisoned connection was successfully
// replaced with a fresh one.
func (c *Client) Redials() uint64 { return c.redials.Load() }

// Panics returns how many typed handler-panic responses (*PanicError) this
// client has received from its peer.
func (c *Client) Panics() uint64 { return c.panics.Load() }

// Overloads returns how many typed overload refusals (*OverloadError) this
// client has received from its peer.
func (c *Client) Overloads() uint64 { return c.overloads.Load() }

// MarkIdempotent declares methods safe to retry after a transport failure:
// re-executing them on the server has no side effects. Unmarked methods are
// never retried (they still benefit from re-dial on the *next* call).
func (c *Client) MarkIdempotent(methods ...string) {
	if c.idempotent == nil {
		c.idempotent = make(map[string]bool, len(methods))
	}
	for _, m := range methods {
		c.idempotent[m] = true
	}
}

// Call issues a request and waits for the response. Emulated link cost is
// charged on both directions' payload sizes.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	return c.CallTimeout(method, payload, 0)
}

// CallTimeout issues a request and waits at most d for the full response
// (d <= 0 means no deadline). On expiry it returns a *TimeoutError (matching
// errors.Is(err, ErrTimeout)) and poisons the client: the connection may
// still deliver the stale response, so it is closed and — without a retry
// policy — every later call fails with ErrClientBroken. With a retry policy
// installed the client instead re-dials a fresh connection on the next call
// (or retries in place for idempotent-marked methods, with exponential
// backoff + jitter). The deadline covers connection I/O, not the emulated
// link's shaping sleeps.
func (c *Client) CallTimeout(method string, payload []byte, d time.Duration) ([]byte, error) {
	return c.CallBudget(method, payload, d, 0)
}

// CallBudget is CallTimeout with an explicit remaining-deadline budget
// carried to the server (budget <= 0 sends none). A server whose cost
// estimate for the method exceeds the budget refuses the call with a typed
// *BudgetError (errors.Is(err, ErrBudgetExhausted)) instead of executing it
// into a late reply. Budget refusals are never retried: the refusal is
// deterministic until the server's estimate moves. A positive budget also
// caps the call as a whole — retry attempts share it rather than each
// getting a fresh timeout, and dispatch with nothing left fails typed.
func (c *Client) CallBudget(method string, payload []byte, d, budget time.Duration) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := 1
	if c.retrySet && c.retry.MaxAttempts > 1 && c.idempotent[method] {
		attempts = c.retry.MaxAttempts
	}
	// A budget is an overall deadline across every attempt, not a per-attempt
	// timeout: retrying a call whose first attempt consumed the budget would
	// only stretch the failure to attempts x budget and still be late.
	var overall time.Time
	if budget > 0 {
		overall = time.Now().Add(budget)
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			// The shared retry budget gates every in-place retry: under a
			// correlated failure, N clients each locally entitled to a retry
			// sum to a storm, and the budget is where that sum is visible. A
			// refused withdrawal surfaces typed, carrying the first attempt's
			// failure so classification still sees what broke.
			if c.retryGate != nil && !c.retryGate.TryWithdraw() {
				return nil, &RetryBudgetError{Method: method, Cause: err}
			}
			// Backoff holds the client lock by design: the connection is
			// single-stream, so concurrent callers could not proceed anyway.
			time.Sleep(c.retry.backoff(attempt-1, c.rng))
		}
		dAtt, bAtt := d, budget
		if !overall.IsZero() {
			remaining := time.Until(overall)
			if remaining <= 0 {
				if err == nil {
					err = &BudgetError{Method: method, Budget: budget,
						Msg: "budget exhausted before dispatch"}
				}
				return nil, err
			}
			bAtt = remaining
			if dAtt <= 0 || remaining < dAtt {
				dAtt = remaining
			}
		}
		if c.broken {
			if !c.retrySet || (c.addr == "" && c.dialer == nil) {
				// Cannot re-dial: surface the failure that broke the stream
				// when this call caused it, the sentinel otherwise.
				if err != nil {
					return nil, err
				}
				return nil, ErrClientBroken
			}
			if rerr := c.redialLocked(); rerr != nil {
				err = rerr
				continue
			}
		}
		var resp []byte
		resp, err = c.callOnceLocked(method, payload, dAtt, bAtt)
		if err == nil {
			return resp, nil
		}
		if !retryable(err) {
			return nil, err
		}
	}
	return nil, err
}

// retryable reports whether an error may be fixed by re-dialing and trying
// again: transport-level failures — including corrupt frames, whose re-send
// travels clean bytes on a fresh connection — qualify, as do typed overload
// refusals (backoff gives the server room to drain); application-level
// RemoteErrors (the handler ran and answered), BudgetErrors (deterministic
// refusal), and PanicErrors (the handler executed partway; a second attempt
// could duplicate its effect) do not.
func retryable(err error) bool {
	var re *RemoteError
	var be *BudgetError
	var pe *PanicError
	return !errors.As(err, &re) && !errors.As(err, &be) && !errors.As(err, &pe)
}

// redialLocked replaces a broken connection with a fresh dial to the
// original address (or via the custom dialer). Caller holds c.mu.
func (c *Client) redialLocked() error {
	var conn net.Conn
	var err error
	if c.dialer != nil {
		if conn, err = c.dialer(); err != nil {
			return fmt.Errorf("rpcx: re-dial: %w", err)
		}
	} else if conn, err = net.DialTimeout("tcp", c.addr, 5*time.Second); err != nil {
		return fmt.Errorf("rpcx: re-dial %s: %w", c.addr, err)
	}
	c.conn.Close()
	c.conn = conn
	if c.progressSet {
		c.wrapProgressLocked() // rebuilds c.r/c.w over the counting wrapper
	} else {
		c.r = bufio.NewReaderSize(c.conn, 64*1024)
		c.w = bufio.NewWriterSize(c.conn, 64*1024)
	}
	c.broken = false
	c.redials.Add(1)
	if c.handshaken {
		// Re-learn the peer's identity before the connection serves a call:
		// a silent restart must surface as a changed incarnation here, never
		// as a stale response attributed to the new process.
		if herr := c.helloLocked(5 * time.Second); herr != nil {
			c.broken = true
			c.conn.Close()
			return fmt.Errorf("rpcx: re-handshake: %w", herr)
		}
	}
	return nil
}

// callOnceLocked performs a single request/response exchange. Caller holds
// c.mu and has ensured the connection is not broken.
func (c *Client) callOnceLocked(method string, payload []byte, d, budget time.Duration) ([]byte, error) {
	watching := c.progressSet && c.pc != nil
	if d > 0 || watching {
		if d > 0 {
			if err := c.conn.SetDeadline(time.Now().Add(d)); err != nil {
				return nil, err
			}
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if c.shaper != nil {
		c.shaper.Throttle(len(payload) + len(method) + 5)
		if sd := c.shaper.Delay(); sd > 0 {
			time.Sleep(sd)
		}
	}
	// Progress watchdog: started after the shaper's modelled sleeps so only
	// real connection I/O is on the clock. The call thread publishes the
	// write→wait phase edge (writeDone); the watchdog aborts a stalled
	// transfer by expiring the connection deadline, and the stalled flag
	// tells the error path to type the failure as a stall, not a timeout.
	var sf *stallFlag
	var writeDone atomic.Bool
	if watching {
		sf = &stallFlag{start: time.Now()}
		stop, done := make(chan struct{}), make(chan struct{})
		go progressWatch(c.conn, c.pc, c.progress, sf, &writeDone, stop, done)
		defer func() { close(stop); <-done }()
	}
	if err := writeRequest(c.w, method, payload, budget, c.checksum); err != nil {
		return nil, c.callErr(method, d, err, sf)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.callErr(method, d, err, sf)
	}
	writeDone.Store(true)
	status, resp, err := readResponse(c.r, frameCap(c.maxFrame))
	if err != nil {
		return nil, c.callErr(method, d, err, sf)
	}
	if c.shaper != nil {
		// Response pays the downlink: serialize + propagate.
		c.shaper.Throttle(len(resp) + 5)
		if sd := c.shaper.Delay(); sd > 0 {
			time.Sleep(sd)
		}
	}
	switch status {
	case statusOK:
		return resp, nil
	case statusBudget:
		return nil, &BudgetError{Method: method, Budget: budget, Msg: string(resp)}
	case statusPanic:
		// The handler panicked but the server recovered: the connection is
		// fine, the one call failed. Typed so the scheduler can count panics
		// per device and demote a wedged daemon.
		c.panics.Add(1)
		return nil, &PanicError{Method: method, Msg: string(resp)}
	case statusOverload:
		c.overloads.Add(1)
		return nil, &OverloadError{Method: method, Msg: string(resp)}
	case statusCorrupt:
		// The server could not trust our request frame and is closing the
		// connection; poison it here too so the next attempt re-dials.
		c.corruptFrames.Add(1)
		c.broken = true
		c.conn.Close()
		return nil, &FrameError{Op: "request", Reason: string(resp)}
	default:
		return nil, &RemoteError{Msg: string(resp)}
	}
}

// stallFlag is the progress watchdog's verdict channel: the watchdog sets the
// flag before aborting the connection, so the error path can tell a stall
// (progress deadline) apart from an ordinary timeout (overall deadline).
type stallFlag struct {
	atomic.Bool
	start time.Time
}

// progressWatch is the per-call watchdog goroutine: every Tick it requires
// MinBytes of connection advance while a frame transfer is in flight (the
// request is still being written, or the response has started arriving). Two
// consecutive dead ticks abort the call by expiring the connection deadline.
// The wait for the server's compute (write done, no response byte yet) is
// exempt — it is bounded by the call's own deadline.
func progressWatch(conn net.Conn, pc *progressConn, p ProgressPolicy,
	sf *stallFlag, writeDone *atomic.Bool, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(p.Tick)
	defer t.Stop()
	last := pc.bytes.Load()
	readStarted := false
	strikes := 0
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			cur := pc.bytes.Load()
			advance := cur - last
			last = cur
			if writeDone.Load() && advance > 0 {
				readStarted = true
			}
			enforcing := !writeDone.Load() || readStarted
			if !enforcing || advance >= p.MinBytes {
				strikes = 0
				continue
			}
			if strikes++; strikes < 2 {
				continue
			}
			sf.Store(true)
			// Abort the in-flight I/O: the blocked read/write returns a
			// timeout, which callErr re-types as a *StallError via sf.
			conn.SetDeadline(time.Now().Add(-time.Second))
			return
		}
	}
}

// callErr converts a transport error into a *TimeoutError when it was caused
// by the per-call deadline — or a *StallError when the progress watchdog
// aborted the call — poisoning the client so the desynced stream is never
// reused. A *FrameError (failed checksum or over-cap length) always poisons
// too — the stream's framing can no longer be trusted — and counts toward
// the corruption counter. With a retry policy installed, any other transport
// error also poisons the connection (the peer likely tore it down) so the
// next attempt or call re-dials instead of reusing a dead stream.
func (c *Client) callErr(method string, d time.Duration, err error, sf *stallFlag) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.broken = true
		c.conn.Close()
		if sf != nil && sf.Load() {
			c.stalledCalls.Add(1)
			return &StallError{Method: method, Tick: c.progress.Tick,
				MinBytes: c.progress.MinBytes, After: time.Since(sf.start)}
		}
		return &TimeoutError{Method: method, After: d}
	}
	var fe *FrameError
	if errors.As(err, &fe) {
		c.corruptFrames.Add(1)
		c.broken = true
		c.conn.Close()
		return err
	}
	if c.retrySet {
		c.broken = true
		c.conn.Close()
	}
	return err
}

// SetLink updates the emulated link parameters (no-op without a shaper).
func (c *Client) SetLink(bandwidthMbps float64, delay time.Duration) {
	if c.shaper == nil {
		return
	}
	c.shaper.SetRate(bandwidthMbps)
	c.shaper.SetDelay(delay)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
