// Package rpcx is the stdlib-only transport that replaces the paper's gRPC:
// a length-prefixed binary request/response protocol over TCP. Servers
// register byte-level handlers by method name; clients issue synchronous
// calls. Connections can be wrapped with netem shapers so the link obeys
// emulated bandwidth/delay, which is how the runtime reproduces the paper's
// tc-controlled testbed.
package rpcx

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"murmuration/internal/netem"
)

// Handler processes one request payload and returns a response payload.
type Handler func(payload []byte) ([]byte, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	wg       sync.WaitGroup
	conns    map[net.Conn]struct{}
	closed   bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Handle registers a handler for a method name (max 255 bytes).
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen starts accepting connections on addr ("host:port"; use ":0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener, closes every active connection, and waits for
// the connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, 64*1024)
	w := bufio.NewWriterSize(conn, 64*1024)
	for {
		method, payload, err := readRequest(r)
		if err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[method]
		s.mu.RUnlock()
		var status byte
		var resp []byte
		if h == nil {
			status = 1
			resp = []byte(fmt.Sprintf("rpcx: unknown method %q", method))
		} else if resp, err = h(payload); err != nil {
			status = 1
			resp = []byte(err.Error())
		}
		if err := writeResponse(w, status, resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Frame layout (little endian):
//   request:  u32 totalLen | u8 methodLen | method | payload
//   response: u32 totalLen | u8 status    | payload

func readRequest(r io.Reader) (string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 1 || total > 1<<30 {
		return "", nil, errors.New("rpcx: bad frame length")
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return "", nil, err
	}
	ml := int(body[0])
	if 1+ml > len(body) {
		return "", nil, errors.New("rpcx: bad method length")
	}
	return string(body[1 : 1+ml]), body[1+ml:], nil
}

func writeRequest(w io.Writer, method string, payload []byte) error {
	if len(method) > 255 {
		return errors.New("rpcx: method name too long")
	}
	total := uint32(1 + len(method) + len(payload))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], total)
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{byte(len(method))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, method); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func writeResponse(w io.Writer, status byte, payload []byte) error {
	total := uint32(1 + len(payload))
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], total)
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write([]byte{status}); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readResponse(r io.Reader) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	total := binary.LittleEndian.Uint32(lenBuf[:])
	if total < 1 || total > 1<<30 {
		return 0, nil, errors.New("rpcx: bad frame length")
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// Client is a synchronous RPC client over one TCP connection. Safe for
// concurrent use; calls serialize on the connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	shaper *netem.Shaper
}

// Dial connects to addr. If shaper is non-nil, outbound traffic is
// bandwidth-limited and delayed through it (emulating the device's uplink).
func Dial(addr string, shaper *netem.Shaper) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, shaper), nil
}

// NewClient wraps an existing connection (e.g. a netem.Pipe end).
func NewClient(conn net.Conn, shaper *netem.Shaper) *Client {
	c := &Client{conn: conn, shaper: shaper}
	c.r = bufio.NewReaderSize(conn, 64*1024)
	c.w = bufio.NewWriterSize(conn, 64*1024)
	return c
}

// Call issues a request and waits for the response. Emulated link cost is
// charged on both directions' payload sizes.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.shaper != nil {
		c.shaper.Throttle(len(payload) + len(method) + 5)
		if d := c.shaper.Delay(); d > 0 {
			time.Sleep(d)
		}
	}
	if err := writeRequest(c.w, method, payload); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	status, resp, err := readResponse(c.r)
	if err != nil {
		return nil, err
	}
	if c.shaper != nil {
		// Response pays the downlink: serialize + propagate.
		c.shaper.Throttle(len(resp) + 5)
		if d := c.shaper.Delay(); d > 0 {
			time.Sleep(d)
		}
	}
	if status != 0 {
		return nil, fmt.Errorf("rpcx: remote error: %s", resp)
	}
	return resp, nil
}

// SetLink updates the emulated link parameters (no-op without a shaper).
func (c *Client) SetLink(bandwidthMbps float64, delay time.Duration) {
	if c.shaper == nil {
		return
	}
	c.shaper.SetRate(bandwidthMbps)
	c.shaper.SetDelay(delay)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
