package nn

import (
	"math"

	"murmuration/internal/tensor"
)

// Param couples a trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, G: tensor.New(w.Shape...)}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and clears gradients.
	Step(params []*Param)
}

// SGD is stochastic gradient descent with classical momentum and optional
// weight decay.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Shape...)
			s.velocity[p] = v
		}
		lr := float32(s.LR)
		mu := float32(s.Momentum)
		wd := float32(s.WeightDecay)
		for i := range p.W.Data {
			g := p.G.Data[i] + wd*p.W.Data[i]
			v.Data[i] = mu*v.Data[i] + g
			p.W.Data[i] -= lr * v.Data[i]
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	t       int
	m, v    map[*Param]*tensor.Tensor
	MaxGrad float64 // per-element gradient clip; 0 disables
}

// NewAdam returns an Adam optimizer with the usual defaults for unset betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor), v: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			v = tensor.New(p.W.Shape...)
			a.m[p] = m
			a.v[p] = v
		}
		b1 := float32(a.Beta1)
		b2 := float32(a.Beta2)
		clip := float32(a.MaxGrad)
		for i := range p.W.Data {
			g := p.G.Data[i]
			if clip > 0 {
				if g > clip {
					g = clip
				} else if g < -clip {
					g = -clip
				}
			}
			m.Data[i] = b1*m.Data[i] + (1-b1)*g
			v.Data[i] = b2*v.Data[i] + (1-b2)*g*g
			mhat := float64(m.Data[i]) / c1
			vhat := float64(v.Data[i]) / c2
			p.W.Data[i] -= float32(a.LR * mhat / (math.Sqrt(vhat) + a.Eps))
		}
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var total float64
	for _, p := range params {
		for _, g := range p.G.Data {
			total += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}
