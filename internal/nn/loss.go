package nn

import (
	"math"

	"murmuration/internal/tensor"
)

// Softmax computes row-wise softmax of logits (N,K) with the max-subtraction
// trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, k := logits.Shape[0], logits.Shape[1]
	p := tensor.New(n, k)
	for r := 0; r < n; r++ {
		row := logits.Data[r*k : (r+1)*k]
		dst := p.Data[r*k : (r+1)*k]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - m))
			dst[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range dst {
			dst[i] *= inv
		}
	}
	return p
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits (N,K)
// against integer labels, along with dLogits (already divided by N) and the
// softmax probabilities.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dlogits, probs *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	probs = Softmax(logits)
	dlogits = probs.Clone()
	invN := 1 / float32(n)
	for r := 0; r < n; r++ {
		y := labels[r]
		p := probs.Data[r*k+y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		dlogits.Data[r*k+y] -= 1
	}
	loss /= float64(n)
	dlogits.Scale(invN)
	return loss, dlogits, probs
}

// SoftmaxCEWeighted is SoftmaxCrossEntropy with a per-row weight (used by
// advantage-weighted imitation in GCSL/SUPREME). The gradient of row r is
// scaled by weights[r]; loss is the weighted mean.
func SoftmaxCEWeighted(logits *tensor.Tensor, labels []int, weights []float64) (loss float64, dlogits *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	probs := Softmax(logits)
	dlogits = tensor.New(n, k)
	var wsum float64
	for r := 0; r < n; r++ {
		wsum += weights[r]
	}
	if wsum <= 0 {
		wsum = 1
	}
	for r := 0; r < n; r++ {
		y := labels[r]
		w := weights[r]
		p := probs.Data[r*k+y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= w * math.Log(float64(p))
		scale := float32(w / wsum)
		for j := 0; j < k; j++ {
			g := probs.Data[r*k+j]
			if j == y {
				g -= 1
			}
			dlogits.Data[r*k+j] = g * scale
		}
	}
	loss /= wsum
	return loss, dlogits
}

// KLDivSoft computes the knowledge-distillation loss
// KL(teacher ‖ student) over softmax distributions plus the gradient w.r.t.
// the student logits (divided by N). Used for in-place distillation during
// sandwich-rule supernet training.
func KLDivSoft(studentLogits, teacherProbs *tensor.Tensor) (loss float64, dlogits *tensor.Tensor) {
	n, k := studentLogits.Shape[0], studentLogits.Shape[1]
	sp := Softmax(studentLogits)
	dlogits = tensor.New(n, k)
	invN := 1 / float32(n)
	for r := 0; r < n; r++ {
		for j := 0; j < k; j++ {
			t := teacherProbs.Data[r*k+j]
			s := sp.Data[r*k+j]
			if t > 1e-12 {
				ss := s
				if ss < 1e-12 {
					ss = 1e-12
				}
				loss += float64(t) * math.Log(float64(t)/float64(ss))
			}
			dlogits.Data[r*k+j] = (s - t) * invN
		}
	}
	loss /= float64(n)
	return loss, dlogits
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for r := 0; r < n; r++ {
		row := logits.Data[r*k : (r+1)*k]
		best := 0
		for j := 1; j < k; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if best == labels[r] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
