package nn

import (
	"math"
	"math/rand"
	"testing"

	"murmuration/internal/tensor"
)

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// numGrad computes the numerical gradient of loss() w.r.t. t by central
// differences.
func numGrad(t *tensor.Tensor, loss func() float64) *tensor.Tensor {
	const h = 1e-3
	g := tensor.New(t.Shape...)
	for i := range t.Data {
		orig := t.Data[i]
		t.Data[i] = orig + h
		lp := loss()
		t.Data[i] = orig - h
		lm := loss()
		t.Data[i] = orig
		g.Data[i] = float32((lp - lm) / (2 * h))
	}
	return g
}

func assertClose(t *testing.T, name string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: size mismatch %d vs %d", name, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		d := math.Abs(float64(got.Data[i] - want.Data[i]))
		scale := math.Max(1, math.Abs(float64(want.Data[i])))
		if d/scale > tol {
			t.Fatalf("%s[%d]: got %v want %v (reldiff %v)", name, i, got.Data[i], want.Data[i], d/scale)
		}
	}
}

// sumLoss is a simple scalar loss: sum of elementwise products with fixed
// coefficients, whose gradient w.r.t. the output is exactly the coefficients.
func sumLoss(y, coef *tensor.Tensor) float64 {
	var s float64
	for i := range y.Data {
		s += float64(y.Data[i]) * float64(coef.Data[i])
	}
	return s
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randT(rng, 2, 3, 6, 6)
	w := randT(rng, 4, 3, 3, 3)
	b := randT(rng, 4)
	o := tensor.ConvOpts{Stride: 2, Padding: 1}
	y, cache := ConvFwd(x, w, b, o)
	coef := randT(rng, y.Shape...)

	dx, dw, db := ConvBwd(coef, cache)
	loss := func() float64 {
		y2, _ := ConvFwd(x, w, b, o)
		return sumLoss(y2, coef)
	}
	assertClose(t, "conv dx", dx, numGrad(x, loss), 2e-2)
	assertClose(t, "conv dw", dw, numGrad(w, loss), 2e-2)
	assertClose(t, "conv db", db, numGrad(b, loss), 2e-2)
}

func TestDepthwiseConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randT(rng, 1, 3, 5, 5)
	w := randT(rng, 3, 1, 3, 3)
	b := randT(rng, 3)
	o := tensor.ConvOpts{Stride: 1, Padding: 1}
	y, cache := DepthwiseConvFwd(x, w, b, o)
	coef := randT(rng, y.Shape...)
	dx, dw, db := DepthwiseConvBwd(coef, cache)
	loss := func() float64 {
		y2, _ := DepthwiseConvFwd(x, w, b, o)
		return sumLoss(y2, coef)
	}
	assertClose(t, "dw dx", dx, numGrad(x, loss), 2e-2)
	assertClose(t, "dw dw", dw, numGrad(w, loss), 2e-2)
	assertClose(t, "dw db", db, numGrad(b, loss), 2e-2)
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randT(rng, 4, 7)
	w := randT(rng, 5, 7)
	b := randT(rng, 5)
	y, cache := LinearFwd(x, w, b)
	coef := randT(rng, y.Shape...)
	dx, dw, db := LinearBwd(coef, cache)
	loss := func() float64 {
		y2, _ := LinearFwd(x, w, b)
		return sumLoss(y2, coef)
	}
	assertClose(t, "lin dx", dx, numGrad(x, loss), 2e-2)
	assertClose(t, "lin dw", dw, numGrad(w, loss), 2e-2)
	assertClose(t, "lin db", db, numGrad(b, loss), 2e-2)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randT(rng, 3, 8)
	x.Scale(4) // exercise the saturation regions of hswish/hsigmoid
	coef := randT(rng, 3, 8)

	{
		_, mask := ReLUFwd(x)
		dx := ReLUBwd(coef, mask)
		loss := func() float64 { y, _ := ReLUFwd(x); return sumLoss(y, coef) }
		assertClose(t, "relu dx", dx, numGrad(x, loss), 2e-2)
	}
	{
		_, cx := HSwishFwd(x)
		dx := HSwishBwd(coef, cx)
		loss := func() float64 { y, _ := HSwishFwd(x); return sumLoss(y, coef) }
		assertClose(t, "hswish dx", dx, numGrad(x, loss), 2e-2)
	}
	{
		_, cx := HSigmoidFwd(x)
		dx := HSigmoidBwd(coef, cx)
		loss := func() float64 { y, _ := HSigmoidFwd(x); return sumLoss(y, coef) }
		assertClose(t, "hsigmoid dx", dx, numGrad(x, loss), 2e-2)
	}
	{
		y := TanhFwd(x)
		dx := TanhBwd(coef, y)
		loss := func() float64 { return sumLoss(TanhFwd(x), coef) }
		assertClose(t, "tanh dx", dx, numGrad(x, loss), 2e-2)
	}
	{
		y := SigmoidFwd(x)
		dx := SigmoidBwd(coef, y)
		loss := func() float64 { return sumLoss(SigmoidFwd(x), coef) }
		assertClose(t, "sigmoid dx", dx, numGrad(x, loss), 2e-2)
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randT(rng, 2, 3, 4, 4)
	y, shape := GlobalAvgPoolFwd(x)
	coef := randT(rng, y.Shape...)
	dx := GlobalAvgPoolBwd(coef, shape)
	loss := func() float64 { y2, _ := GlobalAvgPoolFwd(x); return sumLoss(y2, coef) }
	assertClose(t, "gap dx", dx, numGrad(x, loss), 2e-2)
}

func TestScaleChannelsGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randT(rng, 2, 3, 4, 4)
	s := randT(rng, 2, 3)
	y := ScaleChannelsFwd(x, s)
	coef := randT(rng, y.Shape...)
	dx, ds := ScaleChannelsBwd(coef, x, s)
	loss := func() float64 { return sumLoss(ScaleChannelsFwd(x, s), coef) }
	assertClose(t, "sc dx", dx, numGrad(x, loss), 2e-2)
	assertClose(t, "sc ds", ds, numGrad(s, loss), 2e-2)
}

func TestBatchNormForwardStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randT(rng, 4, 3, 5, 5)
	gamma := tensor.New(3)
	gamma.Fill(1)
	beta := tensor.New(3)
	rm := tensor.New(3)
	rv := tensor.New(3)
	rv.Fill(1)
	y, _ := BatchNormFwd(x, gamma, beta, rm, rv, true, 0.1, 1e-5)
	// Normalized output per channel should have ~zero mean, ~unit variance.
	n, c, h, w := 4, 3, 5, 5
	for cc := 0; cc < c; cc++ {
		var sum, sq float64
		for bi := 0; bi < n; bi++ {
			for _, v := range y.Data[(bi*c+cc)*h*w : (bi*c+cc+1)*h*w] {
				sum += float64(v)
				sq += float64(v) * float64(v)
			}
		}
		cnt := float64(n * h * w)
		mean := sum / cnt
		variance := sq/cnt - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-2 {
			t.Fatalf("ch %d: mean %v var %v", cc, mean, variance)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randT(rng, 2, 2, 3, 3)
	gamma := randT(rng, 2)
	beta := randT(rng, 2)
	coefShape := []int{2, 2, 3, 3}
	coef := randT(rng, coefShape...)

	fwd := func() (*tensor.Tensor, *BNCache) {
		rm := tensor.New(2)
		rv := tensor.New(2)
		return BatchNormFwd(x, gamma, beta, rm, rv, true, 0.1, 1e-5)
	}
	_, cache := fwd()
	dx, dg, db := BatchNormBwd(coef, cache)
	loss := func() float64 { y, _ := fwd(); return sumLoss(y, coef) }
	assertClose(t, "bn dx", dx, numGrad(x, loss), 5e-2)
	assertClose(t, "bn dgamma", dg, numGrad(gamma, loss), 5e-2)
	assertClose(t, "bn dbeta", db, numGrad(beta, loss), 5e-2)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	x.Fill(10)
	gamma := tensor.New(1)
	gamma.Fill(1)
	beta := tensor.New(1)
	rm := tensor.New(1)
	rm.Fill(10)
	rv := tensor.New(1)
	rv.Fill(4)
	y, cache := BatchNormFwd(x, gamma, beta, rm, rv, false, 0.1, 0)
	if cache != nil {
		t.Fatal("eval mode should not return a cache")
	}
	for _, v := range y.Data {
		if math.Abs(float64(v)) > 1e-6 {
			t.Fatalf("eval BN of mean input should be 0, got %v", v)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := randT(rng, 5, 10)
	l.Scale(30) // large logits stress stability
	p := Softmax(l)
	for r := 0; r < 5; r++ {
		var s float64
		for _, v := range p.Data[r*10 : (r+1)*10] {
			if v < 0 || math.IsNaN(float64(v)) {
				t.Fatal("invalid probability")
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxCEGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := randT(rng, 4, 6)
	labels := []int{0, 3, 5, 2}
	_, d, _ := SoftmaxCrossEntropy(logits, labels)
	loss := func() float64 {
		l, _, _ := SoftmaxCrossEntropy(logits, labels)
		return l
	}
	assertClose(t, "ce dlogits", d, numGrad(logits, loss), 2e-2)
}

func TestSoftmaxCEWeightedGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := randT(rng, 3, 4)
	labels := []int{1, 0, 2}
	weights := []float64{0.5, 2.0, 1.0}
	_, d := SoftmaxCEWeighted(logits, labels, weights)
	loss := func() float64 {
		l, _ := SoftmaxCEWeighted(logits, labels, weights)
		return l
	}
	assertClose(t, "wce dlogits", d, numGrad(logits, loss), 2e-2)
}

func TestKLDivGradientAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	logits := randT(rng, 3, 5)
	teacher := Softmax(logits)
	loss, d := KLDivSoft(logits, teacher)
	if loss > 1e-6 {
		t.Fatalf("KL(p‖p) should be ~0, got %v", loss)
	}
	if d.MaxAbs() > 1e-6 {
		t.Fatalf("KL grad at identical dists should be ~0, got %v", d.MaxAbs())
	}
	// Gradient check against a different teacher.
	teacher2 := Softmax(randT(rng, 3, 5))
	_, d2 := KLDivSoft(logits, teacher2)
	lossFn := func() float64 {
		l, _ := KLDivSoft(logits, teacher2)
		return l
	}
	assertClose(t, "kl dlogits", d2, numGrad(logits, lossFn), 2e-2)
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 2, // argmax 1
		9, 0, 1, // argmax 0
		0, 1, 8, // argmax 2
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 2}); got != 1 {
		t.Fatalf("Accuracy = %v, want 1", got)
	}
	if got := Accuracy(logits, []int{0, 0, 2}); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v, want 2/3", got)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² with SGD; must converge.
	target := []float32{1, -2, 3}
	p := NewParam("w", tensor.New(3))
	opt := NewSGD(0.1, 0.9, 0)
	for step := 0; step < 200; step++ {
		for i := range p.W.Data {
			p.G.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(p.W.Data[i]-target[i])) > 1e-3 {
			t.Fatalf("SGD failed to converge: w=%v", p.W.Data)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	target := []float32{0.5, -1.5}
	p := NewParam("w", tensor.New(2))
	opt := NewAdam(0.05)
	for step := 0; step < 500; step++ {
		for i := range p.W.Data {
			p.G.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(p.W.Data[i]-target[i])) > 1e-2 {
			t.Fatalf("Adam failed to converge: w=%v", p.W.Data)
		}
	}
}

func TestStepClearsGradients(t *testing.T) {
	p := NewParam("w", tensor.New(2))
	p.G.Fill(1)
	NewSGD(0.1, 0, 0).Step([]*Param{p})
	if p.G.MaxAbs() != 0 {
		t.Fatal("SGD.Step must zero gradients")
	}
	p.G.Fill(1)
	NewAdam(0.1).Step([]*Param{p})
	if p.G.MaxAbs() != 0 {
		t.Fatal("Adam.Step must zero gradients")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(4))
	p.G.Fill(3) // norm = 6
	norm := ClipGradNorm([]*Param{p}, 3)
	if math.Abs(norm-6) > 1e-6 {
		t.Fatalf("pre-clip norm = %v, want 6", norm)
	}
	var total float64
	for _, g := range p.G.Data {
		total += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(total)-3) > 1e-5 {
		t.Fatalf("post-clip norm = %v, want 3", math.Sqrt(total))
	}
	// Under the limit: unchanged.
	before := p.G.Clone()
	ClipGradNorm([]*Param{p}, 100)
	for i := range before.Data {
		if before.Data[i] != p.G.Data[i] {
			t.Fatal("clip should not modify gradients under the limit")
		}
	}
}
