package nn

import (
	"math"

	"murmuration/internal/tensor"
)

// BNCache holds forward state for BatchNormBwd.
type BNCache struct {
	XHat   *tensor.Tensor
	InvStd []float32
	Gamma  *tensor.Tensor
}

// BatchNormFwd normalizes x (N,C,H,W) per channel.
//
// In training mode it uses batch statistics and updates runningMean/
// runningVar in place with the given momentum. In eval mode it uses the
// running statistics and returns a nil cache.
func BatchNormFwd(x, gamma, beta, runningMean, runningVar *tensor.Tensor,
	training bool, momentum, eps float32) (*tensor.Tensor, *BNCache) {

	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c, h, w)
	plane := h * w
	cnt := float32(n * plane)

	if !training {
		for cc := 0; cc < c; cc++ {
			invStd := float32(1 / math.Sqrt(float64(runningVar.Data[cc]+eps)))
			g, b, m := gamma.Data[cc], beta.Data[cc], runningMean.Data[cc]
			for bi := 0; bi < n; bi++ {
				src := x.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
				dst := y.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
				for i, v := range src {
					dst[i] = (v-m)*invStd*g + b
				}
			}
		}
		return y, nil
	}

	xhat := tensor.New(n, c, h, w)
	invStds := make([]float32, c)
	for cc := 0; cc < c; cc++ {
		var sum float64
		for bi := 0; bi < n; bi++ {
			for _, v := range x.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane] {
				sum += float64(v)
			}
		}
		mean := float32(sum / float64(cnt))
		var vsum float64
		for bi := 0; bi < n; bi++ {
			for _, v := range x.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane] {
				d := float64(v - mean)
				vsum += d * d
			}
		}
		variance := float32(vsum / float64(cnt))
		invStd := float32(1 / math.Sqrt(float64(variance+eps)))
		invStds[cc] = invStd
		g, b := gamma.Data[cc], beta.Data[cc]
		for bi := 0; bi < n; bi++ {
			src := x.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			xh := xhat.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			dst := y.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			for i, v := range src {
				xh[i] = (v - mean) * invStd
				dst[i] = xh[i]*g + b
			}
		}
		runningMean.Data[cc] = (1-momentum)*runningMean.Data[cc] + momentum*mean
		runningVar.Data[cc] = (1-momentum)*runningVar.Data[cc] + momentum*variance
	}
	return y, &BNCache{XHat: xhat, InvStd: invStds, Gamma: gamma}
}

// BatchNormBwd back-propagates dy through a training-mode batch norm and
// returns (dx, dgamma, dbeta).
func BatchNormBwd(dy *tensor.Tensor, cache *BNCache) (dx, dgamma, dbeta *tensor.Tensor) {
	n, c, h, w := dy.Shape[0], dy.Shape[1], dy.Shape[2], dy.Shape[3]
	plane := h * w
	cnt := float32(n * plane)
	dx = tensor.New(n, c, h, w)
	dgamma = tensor.New(c)
	dbeta = tensor.New(c)
	for cc := 0; cc < c; cc++ {
		var sumDy, sumDyXhat float64
		for bi := 0; bi < n; bi++ {
			dys := dy.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			xhs := cache.XHat.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			for i, v := range dys {
				sumDy += float64(v)
				sumDyXhat += float64(v * xhs[i])
			}
		}
		dgamma.Data[cc] = float32(sumDyXhat)
		dbeta.Data[cc] = float32(sumDy)
		g := cache.Gamma.Data[cc]
		invStd := cache.InvStd[cc]
		k1 := float32(sumDy) / cnt
		k2 := float32(sumDyXhat) / cnt
		for bi := 0; bi < n; bi++ {
			dys := dy.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			xhs := cache.XHat.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			dxs := dx.Data[(bi*c+cc)*plane : (bi*c+cc+1)*plane]
			for i := range dys {
				dxs[i] = g * invStd * (dys[i] - k1 - xhs[i]*k2)
			}
		}
	}
	return dx, dgamma, dbeta
}
