// Package nn provides the neural-network building blocks used by both the
// one-shot NAS supernet (stage 1) and the policy networks (stage 2):
// functional forward/backward ops (convolution, linear, batch norm,
// activations, pooling, softmax cross-entropy), trainable parameters, and
// SGD/Adam optimizers.
//
// Ops are deliberately functional — forward returns the output plus whatever
// cache the matching backward needs — because the supernet executes *sliced*
// views of shared weights (elastic width/kernel/depth) and must scatter
// gradients back into the full parameter tensors itself.
package nn

import (
	"math"

	"murmuration/internal/tensor"
)

// ConvCache holds forward-pass state needed by ConvBwd.
type ConvCache struct {
	X    *tensor.Tensor
	Cols *tensor.Tensor
	W    *tensor.Tensor
	Opts tensor.ConvOpts
}

// ConvFwd computes a 2-D convolution and returns the output plus the cache
// for the backward pass. x is (N,C,H,W), w is (outC,C,kh,kw), b optional.
func ConvFwd(x, w, b *tensor.Tensor, o tensor.ConvOpts) (*tensor.Tensor, *ConvCache) {
	kh, kw := w.Shape[2], w.Shape[3]
	cols := tensor.Im2Col(x, kh, kw, o)
	y := convFromCols(cols, x, w, b, o)
	return y, &ConvCache{X: x, Cols: cols, W: w, Opts: o}
}

func convFromCols(cols, x, w, b *tensor.Tensor, o tensor.ConvOpts) *tensor.Tensor {
	n, _, h, wd := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outC, c, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	s := o.Stride
	if s < 1 {
		s = 1
	}
	oh := tensor.ConvOutSize(h, kh, s, o.Padding)
	ow := tensor.ConvOutSize(wd, kw, s, o.Padding)
	wmat := w.Reshape(outC, c*kh*kw)
	prod := tensor.MatMulTransB(cols, wmat) // (N·oh·ow, outC)
	y := tensor.New(n, outC, oh, ow)
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < outC; oc++ {
			var bv float32
			if b != nil {
				bv = b.Data[oc]
			}
			dst := y.Data[(bi*outC+oc)*oh*ow : (bi*outC+oc+1)*oh*ow]
			for i := range dst {
				dst[i] = prod.Data[(bi*oh*ow+i)*outC+oc] + bv
			}
		}
	}
	return y
}

// ConvBwd back-propagates dy (N,outC,oh,ow) through the convolution and
// returns (dx, dw, db).
func ConvBwd(dy *tensor.Tensor, c *ConvCache) (dx, dw, db *tensor.Tensor) {
	n, inC, h, w := c.X.Shape[0], c.X.Shape[1], c.X.Shape[2], c.X.Shape[3]
	outC, kh, kw := c.W.Shape[0], c.W.Shape[2], c.W.Shape[3]
	oh, ow := dy.Shape[2], dy.Shape[3]

	// dy reshaped to (N·oh·ow, outC), matching the im2col row order.
	dyMat := tensor.New(n*oh*ow, outC)
	for bi := 0; bi < n; bi++ {
		for oc := 0; oc < outC; oc++ {
			src := dy.Data[(bi*outC+oc)*oh*ow : (bi*outC+oc+1)*oh*ow]
			for i, v := range src {
				dyMat.Data[(bi*oh*ow+i)*outC+oc] = v
			}
		}
	}

	// db = column sums of dyMat.
	db = tensor.New(outC)
	for r := 0; r < n*oh*ow; r++ {
		row := dyMat.Data[r*outC : (r+1)*outC]
		for oc, v := range row {
			db.Data[oc] += v
		}
	}

	// dw = dyMatᵀ · cols, reshaped to the weight shape.
	dwMat := tensor.MatMulTransA(dyMat, c.Cols) // (outC, C·kh·kw)
	dw = dwMat.Reshape(outC, inC, kh, kw)

	// dcols = dyMat · wmat, then scatter with Col2Im.
	wmat := c.W.Reshape(outC, inC*kh*kw)
	dcols := tensor.MatMul(dyMat, wmat)
	dx = tensor.Col2Im(dcols, n, inC, h, w, kh, kw, c.Opts)
	return dx, dw, db
}

// DWConvCache holds state for DepthwiseConvBwd.
type DWConvCache struct {
	X    *tensor.Tensor
	W    *tensor.Tensor
	Opts tensor.ConvOpts
}

// DepthwiseConvFwd computes a depthwise convolution; w is (C,1,kh,kw).
func DepthwiseConvFwd(x, w, b *tensor.Tensor, o tensor.ConvOpts) (*tensor.Tensor, *DWConvCache) {
	y := tensor.DepthwiseConv2D(x, w, b, o)
	return y, &DWConvCache{X: x, W: w, Opts: o}
}

// DepthwiseConvBwd back-propagates through a depthwise convolution.
func DepthwiseConvBwd(dy *tensor.Tensor, c *DWConvCache) (dx, dw, db *tensor.Tensor) {
	n, ch, h, w := c.X.Shape[0], c.X.Shape[1], c.X.Shape[2], c.X.Shape[3]
	kh, kw := c.W.Shape[2], c.W.Shape[3]
	s, p := c.Opts.Stride, c.Opts.Padding
	if s < 1 {
		s = 1
	}
	oh, ow := dy.Shape[2], dy.Shape[3]
	dx = tensor.New(n, ch, h, w)
	dw = tensor.New(ch, 1, kh, kw)
	db = tensor.New(ch)
	for bi := 0; bi < n; bi++ {
		for cc := 0; cc < ch; cc++ {
			xPlane := c.X.Data[(bi*ch+cc)*h*w : (bi*ch+cc+1)*h*w]
			dxPlane := dx.Data[(bi*ch+cc)*h*w : (bi*ch+cc+1)*h*w]
			dyPlane := dy.Data[(bi*ch+cc)*oh*ow : (bi*ch+cc+1)*oh*ow]
			ker := c.W.Data[cc*kh*kw : (cc+1)*kh*kw]
			dker := dw.Data[cc*kh*kw : (cc+1)*kh*kw]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := dyPlane[oy*ow+ox]
					if g == 0 {
						continue
					}
					db.Data[cc] += g
					for ky := 0; ky < kh; ky++ {
						iy := oy*s - p + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*s - p + kx
							if ix < 0 || ix >= w {
								continue
							}
							dker[ky*kw+kx] += g * xPlane[iy*w+ix]
							dxPlane[iy*w+ix] += g * ker[ky*kw+kx]
						}
					}
				}
			}
		}
	}
	return dx, dw, db
}

// LinearCache holds state for LinearBwd.
type LinearCache struct {
	X *tensor.Tensor
	W *tensor.Tensor
}

// LinearFwd computes y = x·Wᵀ + b for x (N,in) and W (out,in).
func LinearFwd(x, w, b *tensor.Tensor) (*tensor.Tensor, *LinearCache) {
	y := tensor.MatMulTransB(x, w)
	if b != nil {
		out := w.Shape[0]
		for r := 0; r < x.Shape[0]; r++ {
			row := y.Data[r*out : (r+1)*out]
			for i := range row {
				row[i] += b.Data[i]
			}
		}
	}
	return y, &LinearCache{X: x, W: w}
}

// LinearBwd back-propagates dy (N,out) and returns (dx, dw, db).
func LinearBwd(dy *tensor.Tensor, c *LinearCache) (dx, dw, db *tensor.Tensor) {
	dx = tensor.MatMul(dy, c.W)       // (N,out)·(out,in) = (N,in)
	dw = tensor.MatMulTransA(dy, c.X) // (out,N)·(N,in) = (out,in)
	out := c.W.Shape[0]
	db = tensor.New(out)
	for r := 0; r < dy.Shape[0]; r++ {
		row := dy.Data[r*out : (r+1)*out]
		for i, v := range row {
			db.Data[i] += v
		}
	}
	return dx, dw, db
}

// ReLUFwd applies max(0, x); the returned mask drives ReLUBwd.
func ReLUFwd(x *tensor.Tensor) (*tensor.Tensor, []bool) {
	y := x.Clone()
	mask := make([]bool, len(x.Data))
	for i, v := range y.Data {
		if v > 0 {
			mask[i] = true
		} else {
			y.Data[i] = 0
		}
	}
	return y, mask
}

// ReLUBwd gates dy by the forward mask.
func ReLUBwd(dy *tensor.Tensor, mask []bool) *tensor.Tensor {
	dx := dy.Clone()
	for i := range dx.Data {
		if !mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// HSwishFwd applies x·relu6(x+3)/6 (the MobileNetV3 hard-swish).
func HSwishFwd(x *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = v * relu6(v+3) / 6
	}
	return y, x
}

// HSwishBwd back-propagates through hard-swish given the cached input.
func HSwishBwd(dy, x *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(x.Shape...)
	for i, v := range x.Data {
		var g float32
		switch {
		case v <= -3:
			g = 0
		case v >= 3:
			g = 1
		default:
			g = (2*v + 3) / 6
		}
		dx.Data[i] = dy.Data[i] * g
	}
	return dx
}

// HSigmoidFwd applies relu6(x+3)/6.
func HSigmoidFwd(x *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = relu6(v+3) / 6
	}
	return y, x
}

// HSigmoidBwd back-propagates through hard-sigmoid.
func HSigmoidBwd(dy, x *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v > -3 && v < 3 {
			dx.Data[i] = dy.Data[i] / 6
		}
	}
	return dx
}

func relu6(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 6 {
		return 6
	}
	return v
}

// TanhFwd applies elementwise tanh; the returned output is the cache.
func TanhFwd(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	return y
}

// TanhBwd computes dy·(1−y²) given the forward output y.
func TanhBwd(dy, y *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(y.Shape...)
	for i := range y.Data {
		dx.Data[i] = dy.Data[i] * (1 - y.Data[i]*y.Data[i])
	}
	return dx
}

// SigmoidFwd applies the logistic function; the output is the cache.
func SigmoidFwd(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return y
}

// SigmoidBwd computes dy·y·(1−y).
func SigmoidBwd(dy, y *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(y.Shape...)
	for i := range y.Data {
		dx.Data[i] = dy.Data[i] * y.Data[i] * (1 - y.Data[i])
	}
	return dx
}

// GlobalAvgPoolFwd reduces (N,C,H,W) to (N,C); the cache is the input shape.
func GlobalAvgPoolFwd(x *tensor.Tensor) (*tensor.Tensor, []int) {
	return tensor.AvgPoolGlobal(x), append([]int(nil), x.Shape...)
}

// GlobalAvgPoolBwd broadcasts dy (N,C) back over the spatial dims.
func GlobalAvgPoolBwd(dy *tensor.Tensor, shape []int) *tensor.Tensor {
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	dx := tensor.New(n, c, h, w)
	inv := 1 / float32(h*w)
	for r := 0; r < n*c; r++ {
		g := dy.Data[r] * inv
		dst := dx.Data[r*h*w : (r+1)*h*w]
		for i := range dst {
			dst[i] = g
		}
	}
	return dx
}

// ScaleChannelsFwd multiplies each channel plane of x (N,C,H,W) by the
// matching gate s (N,C); used by squeeze-and-excitation.
func ScaleChannelsFwd(x, s *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := tensor.New(n, c, h, w)
	for r := 0; r < n*c; r++ {
		g := s.Data[r]
		src := x.Data[r*h*w : (r+1)*h*w]
		dst := y.Data[r*h*w : (r+1)*h*w]
		for i := range src {
			dst[i] = src[i] * g
		}
	}
	return y
}

// ScaleChannelsBwd returns (dx, ds) for the channel-scaling op.
func ScaleChannelsBwd(dy, x, s *tensor.Tensor) (dx, ds *tensor.Tensor) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	dx = tensor.New(n, c, h, w)
	ds = tensor.New(n, c)
	for r := 0; r < n*c; r++ {
		g := s.Data[r]
		var acc float32
		xs := x.Data[r*h*w : (r+1)*h*w]
		dys := dy.Data[r*h*w : (r+1)*h*w]
		dxs := dx.Data[r*h*w : (r+1)*h*w]
		for i := range xs {
			dxs[i] = dys[i] * g
			acc += dys[i] * xs[i]
		}
		ds.Data[r] = acc
	}
	return dx, ds
}
