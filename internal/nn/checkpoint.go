package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"murmuration/internal/tensor"
)

// Checkpoint format: magic, count, then per parameter a length-prefixed name
// followed by the tensor in the standard wire encoding, then an integrity
// trailer: "MURC" + u32 CRC32C (Castagnoli, little endian) over every byte
// before the trailer. Loading matches parameters by name and shape, so
// checkpoints survive reordering but not architectural changes. Legacy
// trailer-less checkpoints (written before the trailer existed) still load —
// the stream simply ends after the last parameter.

var (
	ckptMagic   = []byte("MURM1")
	ckptTrailer = []byte("MURC")

	ckptTable = crc32.MakeTable(crc32.Castagnoli)
)

// ErrCheckpointCorrupt is the typed failure for a checkpoint whose CRC32C
// trailer does not match its contents: the file was truncated or bit-rotted
// after it was written. Wrapped errors unwrap to it via errors.Is.
var ErrCheckpointCorrupt = errors.New("nn: checkpoint failed integrity check")

// crcWriter folds every byte written through it into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, ckptTable, p[:n])
	return n, err
}

// crcReader folds every byte read through it into a running CRC32C.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, ckptTable, p[:n])
	return n, err
}

// WriteParams serializes parameters to w, ending with the CRC32C trailer.
func WriteParams(w io.Writer, params []*Param) error {
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(ckptMagic); err != nil {
		return err
	}
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(params)))
	if _, err := bw.Write(n4[:]); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if len(name) > 65535 {
			return fmt.Errorf("nn: parameter name too long: %s", p.Name)
		}
		var l2 [2]byte
		binary.LittleEndian.PutUint16(l2[:], uint16(len(name)))
		if _, err := bw.Write(l2[:]); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := tensor.Encode(bw, p.W); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer goes straight to w: it carries the CRC, it isn't covered by it.
	var t8 [8]byte
	copy(t8[:4], ckptTrailer)
	binary.LittleEndian.PutUint32(t8[4:], cw.crc)
	_, err := w.Write(t8[:])
	return err
}

// ReadParams deserializes a checkpoint into params, matching by name. Every
// stored parameter must exist with an identical shape; params not present in
// the checkpoint are left untouched. When the integrity trailer is present it
// is verified (mismatch yields ErrCheckpointCorrupt); trailer-less legacy
// checkpoints are accepted as-is.
func ReadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(cr, magic); err != nil {
		return err
	}
	if string(magic) != string(ckptMagic) {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var n4 [4]byte
	if _, err := io.ReadFull(cr, n4[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(n4[:]))
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := 0; i < count; i++ {
		var l2 [2]byte
		if _, err := io.ReadFull(cr, l2[:]); err != nil {
			return err
		}
		name := make([]byte, binary.LittleEndian.Uint16(l2[:]))
		if _, err := io.ReadFull(cr, name); err != nil {
			return err
		}
		t, err := tensor.Decode(cr)
		if err != nil {
			return err
		}
		p, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not found in model", name)
		}
		if !p.W.SameShape(t) {
			return fmt.Errorf("nn: parameter %q shape %v != checkpoint %v", name, p.W.Shape, t.Shape)
		}
		copy(p.W.Data, t.Data)
	}
	// Snapshot the CRC before touching the trailer bytes: the trailer must
	// not fold into the sum it is being checked against.
	sum := cr.crc
	var t8 [8]byte
	if _, err := io.ReadFull(br, t8[:]); err != nil {
		if err == io.EOF {
			return nil // legacy checkpoint, no trailer
		}
		return fmt.Errorf("%w: truncated trailer: %v", ErrCheckpointCorrupt, err)
	}
	if string(t8[:4]) != string(ckptTrailer) {
		return fmt.Errorf("%w: bad trailer magic %q", ErrCheckpointCorrupt, t8[:4])
	}
	if got := binary.LittleEndian.Uint32(t8[4:]); got != sum {
		return fmt.Errorf("%w: crc32c %08x != stored %08x", ErrCheckpointCorrupt, sum, got)
	}
	return nil
}

// Interposition points for SaveParams, swapped by the durability regression
// test to observe the fsync/rename ordering without a kernel crash harness.
var (
	renameFile = os.Rename
	syncDir    = fsyncDir
)

// fsyncDir flushes a directory's metadata so a rename into it survives a
// crash. An empty dir means the current directory.
func fsyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SaveParams writes a checkpoint file atomically and durably: the bytes land
// in a temp file in the same directory, are fsynced, renamed over path, and
// the parent directory is fsynced last. A crash at any point leaves either
// the old checkpoint or the new one — never a truncated hybrid — and once
// SaveParams returns, the rename itself is on disk: without the directory
// fsync a power loss after rename could resurrect the old file (or nothing),
// silently un-promoting a policy snapshot the caller believed durable.
func SaveParams(path string, params []*Param) (err error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = WriteParams(f, params); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = renameFile(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// LoadParams reads a checkpoint file.
func LoadParams(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ReadParams(f, params)
}
