package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"murmuration/internal/tensor"
)

// Checkpoint format: magic, count, then per parameter a length-prefixed name
// followed by the tensor in the standard wire encoding. Loading matches
// parameters by name and shape, so checkpoints survive reordering but not
// architectural changes.

var ckptMagic = []byte("MURM1")

// WriteParams serializes parameters to w.
func WriteParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic); err != nil {
		return err
	}
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(params)))
	if _, err := bw.Write(n4[:]); err != nil {
		return err
	}
	for _, p := range params {
		name := []byte(p.Name)
		if len(name) > 65535 {
			return fmt.Errorf("nn: parameter name too long: %s", p.Name)
		}
		var l2 [2]byte
		binary.LittleEndian.PutUint16(l2[:], uint16(len(name)))
		if _, err := bw.Write(l2[:]); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		if err := tensor.Encode(bw, p.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadParams deserializes a checkpoint into params, matching by name. Every
// stored parameter must exist with an identical shape; params not present in
// the checkpoint are left untouched.
func ReadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return err
	}
	if string(magic) != string(ckptMagic) {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var n4 [4]byte
	if _, err := io.ReadFull(br, n4[:]); err != nil {
		return err
	}
	count := int(binary.LittleEndian.Uint32(n4[:]))
	byName := make(map[string]*Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	for i := 0; i < count; i++ {
		var l2 [2]byte
		if _, err := io.ReadFull(br, l2[:]); err != nil {
			return err
		}
		name := make([]byte, binary.LittleEndian.Uint16(l2[:]))
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		t, err := tensor.Decode(br)
		if err != nil {
			return err
		}
		p, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("nn: checkpoint parameter %q not found in model", name)
		}
		if !p.W.SameShape(t) {
			return fmt.Errorf("nn: parameter %q shape %v != checkpoint %v", name, p.W.Shape, t.Shape)
		}
		copy(p.W.Data, t.Data)
	}
	return nil
}

// SaveParams writes a checkpoint file.
func SaveParams(path string, params []*Param) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteParams(f, params)
}

// LoadParams reads a checkpoint file.
func LoadParams(path string, params []*Param) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ReadParams(f, params)
}
