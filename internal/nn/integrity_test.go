package nn

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"murmuration/internal/tensor"
)

func testParams() []*Param {
	return []*Param{
		NewParam("conv.w", tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)),
		NewParam("fc.b", tensor.FromSlice([]float32{-1, 0.5}, 2)),
	}
}

func freshParams() []*Param {
	return []*Param{
		NewParam("conv.w", tensor.New(2, 2)),
		NewParam("fc.b", tensor.New(2)),
	}
}

func TestCheckpointTrailerDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, testParams()); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// A flipped tensor byte (just before the 8-byte trailer) must fail the
	// CRC check with the typed sentinel.
	raw := append([]byte(nil), clean...)
	raw[len(raw)-9] ^= 0x01
	if err := ReadParams(bytes.NewReader(raw), freshParams()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("flipped payload byte: want ErrCheckpointCorrupt, got %v", err)
	}

	// A flipped CRC byte likewise.
	raw = append([]byte(nil), clean...)
	raw[len(raw)-1] ^= 0x80
	if err := ReadParams(bytes.NewReader(raw), freshParams()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("flipped crc byte: want ErrCheckpointCorrupt, got %v", err)
	}

	// A damaged trailer magic.
	raw = append([]byte(nil), clean...)
	raw[len(raw)-8] = 'X'
	if err := ReadParams(bytes.NewReader(raw), freshParams()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("bad trailer magic: want ErrCheckpointCorrupt, got %v", err)
	}

	// A partially-written trailer (crash mid-append).
	raw = clean[:len(clean)-3]
	if err := ReadParams(bytes.NewReader(raw), freshParams()); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("truncated trailer: want ErrCheckpointCorrupt, got %v", err)
	}
}

func TestCheckpointLegacyTrailerless(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, testParams()); err != nil {
		t.Fatal(err)
	}
	// A checkpoint written before the trailer existed is today's format minus
	// the final 8 bytes: it must still load, values intact.
	legacy := buf.Bytes()[:buf.Len()-8]
	got := freshParams()
	if err := ReadParams(bytes.NewReader(legacy), got); err != nil {
		t.Fatalf("legacy trailer-less checkpoint rejected: %v", err)
	}
	want := testParams()
	for i := range want {
		for j := range want[i].W.Data {
			if got[i].W.Data[j] != want[i].W.Data[j] {
				t.Fatalf("param %s drifted on legacy load", want[i].Name)
			}
		}
	}
}

func TestSaveParamsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := SaveParams(path, testParams()); err != nil {
		t.Fatal(err)
	}
	// Saving again over the same path must go through a temp file + rename,
	// never a truncate-in-place — and must not leave temp litter behind.
	if err := SaveParams(path, testParams()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want just the checkpoint", len(entries))
	}
	got := freshParams()
	if err := LoadParams(path, got); err != nil {
		t.Fatal(err)
	}
	if got[0].W.Data[3] != 4 {
		t.Fatal("checkpoint content wrong after atomic save")
	}
}

func TestSaveParamsSurvivesSimulatedTornWrite(t *testing.T) {
	// A crash mid-save leaves a partial temp file; the checkpoint at path is
	// untouched and still verifies. Simulate by writing garbage where the
	// temp file would be and confirming the real file loads regardless.
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := SaveParams(path, testParams()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp-crashed", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(path, freshParams()); err != nil {
		t.Fatalf("checkpoint damaged by a neighboring torn temp file: %v", err)
	}
	// And a truncated checkpoint itself (rename never happened over a
	// half-written file in the pre-atomic world) is now caught typed.
	rawb, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, rawb[:len(rawb)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(path, freshParams()); err == nil {
		t.Fatal("half a checkpoint loaded cleanly")
	}
}

// FuzzReadParams feeds the checkpoint reader arbitrary bytes: it must reject
// or accept without ever panicking or allocating beyond the decode caps.
func FuzzReadParams(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteParams(&buf, testParams()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())                              // valid, with trailer
	f.Add(buf.Bytes()[: buf.Len()-8 : buf.Len()-8]) // legacy, trailer-less
	f.Add(buf.Bytes()[:buf.Len()-3])                // truncated trailer
	f.Add([]byte("MURM1\xff\xff\xff\xff"))          // huge param count
	f.Add([]byte("NOPE!"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Fresh params each run: ReadParams mutates its targets in place.
		_ = ReadParams(bytes.NewReader(data), freshParams())
	})
}
