package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"murmuration/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	a := NewParam("a", tensor.FromSlice([]float32{1, 2, 3}, 3))
	b := NewParam("b", tensor.FromSlice([]float32{4, 5, 6, 7}, 2, 2))
	var buf bytes.Buffer
	if err := WriteParams(&buf, []*Param{a, b}); err != nil {
		t.Fatal(err)
	}
	// Load into fresh parameters in a different order.
	b2 := NewParam("b", tensor.New(2, 2))
	a2 := NewParam("a", tensor.New(3))
	if err := ReadParams(&buf, []*Param{b2, a2}); err != nil {
		t.Fatal(err)
	}
	for i := range a.W.Data {
		if a2.W.Data[i] != a.W.Data[i] {
			t.Fatal("param a mismatch")
		}
	}
	for i := range b.W.Data {
		if b2.W.Data[i] != b.W.Data[i] {
			t.Fatal("param b mismatch")
		}
	}
}

func TestCheckpointRejectsMismatches(t *testing.T) {
	a := NewParam("a", tensor.New(3))
	var buf bytes.Buffer
	if err := WriteParams(&buf, []*Param{a}); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	bad := NewParam("a", tensor.New(4))
	if err := ReadParams(bytes.NewReader(buf.Bytes()), []*Param{bad}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Missing parameter.
	other := NewParam("z", tensor.New(3))
	if err := ReadParams(bytes.NewReader(buf.Bytes()), []*Param{other}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	// Garbage magic.
	if err := ReadParams(bytes.NewReader([]byte("NOPE!xxxx")), []*Param{a}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCheckpointFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	a := NewParam("w", tensor.FromSlice([]float32{9, 8}, 2))
	if err := SaveParams(path, []*Param{a}); err != nil {
		t.Fatal(err)
	}
	b := NewParam("w", tensor.New(2))
	if err := LoadParams(path, []*Param{b}); err != nil {
		t.Fatal(err)
	}
	if b.W.Data[0] != 9 || b.W.Data[1] != 8 {
		t.Fatal("file roundtrip mismatch")
	}
}
