package nn

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"murmuration/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	a := NewParam("a", tensor.FromSlice([]float32{1, 2, 3}, 3))
	b := NewParam("b", tensor.FromSlice([]float32{4, 5, 6, 7}, 2, 2))
	var buf bytes.Buffer
	if err := WriteParams(&buf, []*Param{a, b}); err != nil {
		t.Fatal(err)
	}
	// Load into fresh parameters in a different order.
	b2 := NewParam("b", tensor.New(2, 2))
	a2 := NewParam("a", tensor.New(3))
	if err := ReadParams(&buf, []*Param{b2, a2}); err != nil {
		t.Fatal(err)
	}
	for i := range a.W.Data {
		if a2.W.Data[i] != a.W.Data[i] {
			t.Fatal("param a mismatch")
		}
	}
	for i := range b.W.Data {
		if b2.W.Data[i] != b.W.Data[i] {
			t.Fatal("param b mismatch")
		}
	}
}

func TestCheckpointRejectsMismatches(t *testing.T) {
	a := NewParam("a", tensor.New(3))
	var buf bytes.Buffer
	if err := WriteParams(&buf, []*Param{a}); err != nil {
		t.Fatal(err)
	}
	// Wrong shape.
	bad := NewParam("a", tensor.New(4))
	if err := ReadParams(bytes.NewReader(buf.Bytes()), []*Param{bad}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	// Missing parameter.
	other := NewParam("z", tensor.New(3))
	if err := ReadParams(bytes.NewReader(buf.Bytes()), []*Param{other}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	// Garbage magic.
	if err := ReadParams(bytes.NewReader([]byte("NOPE!xxxx")), []*Param{a}); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestCheckpointFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	a := NewParam("w", tensor.FromSlice([]float32{9, 8}, 2))
	if err := SaveParams(path, []*Param{a}); err != nil {
		t.Fatal(err)
	}
	b := NewParam("w", tensor.New(2))
	if err := LoadParams(path, []*Param{b}); err != nil {
		t.Fatal(err)
	}
	if b.W.Data[0] != 9 || b.W.Data[1] != 8 {
		t.Fatal("file roundtrip mismatch")
	}
}

// TestSaveParamsSyncsDirAfterRename is the durability regression test for the
// crash window SaveParams used to leave open: the temp file was fsynced but
// the rename was not, so a power loss after SaveParams returned could
// resurrect the old checkpoint. The rename and directory-fsync hooks are
// interposed to record ordering: the parent directory must be fsynced after
// the rename, against the directory the checkpoint lives in.
func TestSaveParamsSyncsDirAfterRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")

	var order []string
	var syncedDir string
	origRename, origSyncDir := renameFile, syncDir
	defer func() { renameFile, syncDir = origRename, origSyncDir }()
	renameFile = func(oldpath, newpath string) error {
		order = append(order, "rename")
		return os.Rename(oldpath, newpath)
	}
	syncDir = func(d string) error {
		order = append(order, "syncdir")
		syncedDir = d
		return fsyncDir(d)
	}

	p := NewParam("w", tensor.FromSlice([]float32{1, 2}, 2))
	if err := SaveParams(path, []*Param{p}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "rename" || order[1] != "syncdir" {
		t.Fatalf("hook order %v, want [rename syncdir]", order)
	}
	if filepath.Clean(syncedDir) != filepath.Clean(dir) {
		t.Fatalf("directory fsync hit %q, want %q", syncedDir, dir)
	}

	// A failed directory fsync must surface: the caller cannot treat the
	// snapshot as durable when the rename may not be on disk.
	wantErr := errors.New("injected dir-fsync failure")
	syncDir = func(string) error { return wantErr }
	if err := SaveParams(path, []*Param{p}); !errors.Is(err, wantErr) {
		t.Fatalf("SaveParams swallowed dir-fsync failure: %v", err)
	}
}

// TestSaveParamsRelativePathSyncsCWD pins the dir=="" edge: a checkpoint
// saved to a bare filename fsyncs the current directory, not an empty path.
func TestSaveParamsRelativePathSyncsCWD(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)

	var syncedDir string
	origSyncDir := syncDir
	defer func() { syncDir = origSyncDir }()
	syncDir = func(d string) error {
		syncedDir = d
		if d != "" {
			t.Fatalf("bare filename passed dir %q to syncDir, want \"\"", d)
		}
		return fsyncDir(d)
	}
	p := NewParam("w", tensor.FromSlice([]float32{3}, 1))
	if err := SaveParams("bare.ckpt", []*Param{p}); err != nil {
		t.Fatal(err)
	}
	_ = syncedDir
}
