// Package watchdog samples process resource pressure — goroutine count and
// heap allocation — in a jittered loop and drives a brownout signal: past
// configurable thresholds the serving layer is told to shed aggressively
// (raise the degradation ladder's floor, tighten admission) until pressure
// clears. It is the last line of the self-protection stack: admission
// control and concurrency limits bound intake per request class and per
// device; the watchdog bounds the process as a whole, catching whatever
// leaks past them before the OOM killer or the scheduler does.
package watchdog

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Options configures a Watchdog. Zero values select the defaults; a zero
// threshold disables that check.
type Options struct {
	// Interval is the mean sampling period (default 250ms), jittered by
	// ±JitterFrac (default 0.2) so a fleet of watchdogs does not sample in
	// lockstep.
	Interval   time.Duration
	JitterFrac float64
	// MaxGoroutines trips the brownout when the goroutine count exceeds it
	// (0 disables the check).
	MaxGoroutines int
	// MaxHeapBytes trips the brownout when heap allocation exceeds it
	// (0 disables the check).
	MaxHeapBytes uint64
	// ReleaseFrac is the hysteresis band: brownout clears only once every
	// tripped gauge has dropped below ReleaseFrac × its threshold (default
	// 0.8), so the signal does not flap right at the boundary.
	ReleaseFrac float64
	// ClearAfter is how many consecutive below-band samples are required
	// before the brownout releases (default 3).
	ClearAfter int
	// OnBrownout is called (off the sampling goroutine, synchronously) when
	// pressure crosses a threshold; reason names the tripped gauge.
	// OnClear is called when pressure has stayed below the release band for
	// ClearAfter samples.
	OnBrownout func(reason string)
	OnClear    func()
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.2
	}
	if o.ReleaseFrac <= 0 || o.ReleaseFrac >= 1 {
		o.ReleaseFrac = 0.8
	}
	if o.ClearAfter <= 0 {
		o.ClearAfter = 3
	}
	return o
}

// Watchdog samples resource gauges and publishes a brownout signal. Create
// with New, start the loop with Start, stop it with Close; Sample can also
// be driven manually (tests, custom loops).
type Watchdog struct {
	opts Options

	mu          sync.Mutex
	goroutines  int
	heapBytes   uint64
	active      bool
	clearStreak int
	brownouts   uint64
	samples     uint64
	started     bool
	stopped     bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New creates a watchdog.
func New(opts Options) *Watchdog {
	return &Watchdog{opts: opts.withDefaults(), stop: make(chan struct{})}
}

// Start launches the jittered sampling loop. Idempotent.
func (w *Watchdog) Start() {
	w.mu.Lock()
	if w.started || w.stopped {
		w.mu.Unlock()
		return
	}
	w.started = true
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for {
			j := 1 + w.opts.JitterFrac*(2*rng.Float64()-1)
			t := time.NewTimer(time.Duration(float64(w.opts.Interval) * j))
			select {
			case <-w.stop:
				t.Stop()
				return
			case <-t.C:
			}
			w.Sample()
		}
	}()
}

// Close stops the sampling loop and waits for it to exit. Idempotent.
func (w *Watchdog) Close() {
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		return
	}
	w.stopped = true
	w.mu.Unlock()
	close(w.stop)
	w.wg.Wait()
}

// Sample takes one resource measurement and advances the brownout state
// machine, invoking OnBrownout/OnClear on edges. Safe to call manually.
func (w *Watchdog) Sample() {
	g := runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	var trip string
	if w.opts.MaxGoroutines > 0 && g > w.opts.MaxGoroutines {
		trip = fmt.Sprintf("goroutines %d > %d", g, w.opts.MaxGoroutines)
	} else if w.opts.MaxHeapBytes > 0 && ms.HeapAlloc > w.opts.MaxHeapBytes {
		trip = fmt.Sprintf("heap %d B > %d B", ms.HeapAlloc, w.opts.MaxHeapBytes)
	}
	// Below the release band on every enabled gauge?
	clear := true
	if w.opts.MaxGoroutines > 0 && float64(g) >= w.opts.ReleaseFrac*float64(w.opts.MaxGoroutines) {
		clear = false
	}
	if w.opts.MaxHeapBytes > 0 && float64(ms.HeapAlloc) >= w.opts.ReleaseFrac*float64(w.opts.MaxHeapBytes) {
		clear = false
	}

	var fire func()
	w.mu.Lock()
	w.samples++
	w.goroutines = g
	w.heapBytes = ms.HeapAlloc
	switch {
	case trip != "":
		w.clearStreak = 0
		if !w.active {
			w.active = true
			w.brownouts++
			if cb := w.opts.OnBrownout; cb != nil {
				reason := trip
				fire = func() { cb(reason) }
			}
		}
	case w.active && clear:
		w.clearStreak++
		if w.clearStreak >= w.opts.ClearAfter {
			w.active = false
			w.clearStreak = 0
			if cb := w.opts.OnClear; cb != nil {
				fire = func() { cb() }
			}
		}
	default:
		// Between the release band and the threshold (or inactive): hold.
		w.clearStreak = 0
	}
	w.mu.Unlock()
	if fire != nil {
		fire()
	}
}

// Goroutines returns the last sampled goroutine count (0 before any sample).
func (w *Watchdog) Goroutines() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.goroutines
}

// HeapBytes returns the last sampled heap allocation (0 before any sample).
func (w *Watchdog) HeapBytes() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.heapBytes
}

// Active reports whether the brownout signal is currently raised.
func (w *Watchdog) Active() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.active
}

// Brownouts returns how many times the brownout signal has been raised.
func (w *Watchdog) Brownouts() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.brownouts
}

// Samples returns how many measurements have been taken.
func (w *Watchdog) Samples() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.samples
}
