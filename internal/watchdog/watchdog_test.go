package watchdog

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"murmuration/internal/testutil"
)

// burnGoroutines parks n goroutines until release is closed.
func burnGoroutines(n int, release <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			<-release
		}()
	}
	return &wg
}

func TestGoroutineThresholdTripsAndClears(t *testing.T) {
	testutil.CheckGoroutines(t)
	var mu sync.Mutex
	var reasons []string
	clears := 0
	base := runtime.NumGoroutine()
	w := New(Options{
		MaxGoroutines: base + 50,
		ClearAfter:    2,
		OnBrownout:    func(r string) { mu.Lock(); reasons = append(reasons, r); mu.Unlock() },
		OnClear:       func() { mu.Lock(); clears++; mu.Unlock() },
	})

	w.Sample()
	if w.Active() {
		t.Fatal("brownout active at baseline")
	}

	release := make(chan struct{})
	wg := burnGoroutines(200, release)
	defer func() { close(release); wg.Wait() }()

	w.Sample()
	if !w.Active() {
		t.Fatalf("brownout not raised with %d goroutines over threshold %d",
			w.Goroutines(), base+50)
	}
	if w.Brownouts() != 1 {
		t.Fatalf("brownouts = %d, want 1", w.Brownouts())
	}
	mu.Lock()
	if len(reasons) != 1 || reasons[0] == "" {
		t.Fatalf("OnBrownout reasons = %q, want one non-empty", reasons)
	}
	mu.Unlock()

	// Still over threshold: no re-fire, stays active.
	w.Sample()
	if got := w.Brownouts(); got != 1 {
		t.Fatalf("repeated trip re-fired brownout: %d", got)
	}

	// Drop the pressure; needs ClearAfter consecutive clear samples.
	close(release)
	wg.Wait()
	release = make(chan struct{}) // keep the deferred close safe
	wg = burnGoroutines(0, release)

	waitFor(t, time.Second, func() bool { return runtime.NumGoroutine() < base+40 })
	w.Sample()
	if !w.Active() {
		t.Fatal("brownout released after a single clear sample; want ClearAfter=2")
	}
	w.Sample()
	if w.Active() {
		t.Fatal("brownout still active after ClearAfter clear samples")
	}
	mu.Lock()
	if clears != 1 {
		t.Fatalf("OnClear fired %d times, want 1", clears)
	}
	mu.Unlock()
}

func TestHeapThresholdTrips(t *testing.T) {
	testutil.CheckGoroutines(t)
	tripped := make(chan string, 1)
	w := New(Options{
		MaxHeapBytes: 1, // any live heap trips it
		OnBrownout:   func(r string) { tripped <- r },
	})
	w.Sample()
	select {
	case r := <-tripped:
		if r == "" {
			t.Fatal("empty brownout reason")
		}
	default:
		t.Fatal("heap threshold of 1 byte did not trip")
	}
	if w.HeapBytes() == 0 {
		t.Fatal("heap gauge not recorded")
	}
}

func TestDisabledThresholdsNeverTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	w := New(Options{OnBrownout: func(string) { t.Error("brownout with all checks disabled") }})
	for i := 0; i < 5; i++ {
		w.Sample()
	}
	if w.Active() || w.Brownouts() != 0 {
		t.Fatalf("active=%v brownouts=%d with no thresholds", w.Active(), w.Brownouts())
	}
	if w.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", w.Samples())
	}
}

func TestHysteresisHoldsBetweenBandAndThreshold(t *testing.T) {
	testutil.CheckGoroutines(t)
	// Trip on goroutines, then set the scene so the count sits between
	// ReleaseFrac*Max and Max: the brownout must hold.
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	wg := burnGoroutines(100, release)
	defer func() { close(release); wg.Wait() }()

	w := New(Options{
		MaxGoroutines: base + 50, // 100 burners put us over
		ReleaseFrac:   0.5,
		ClearAfter:    1,
	})
	w.Sample()
	if !w.Active() {
		t.Fatal("not tripped")
	}

	// Raise the threshold above the current count but keep the count above
	// the release band: base+100 in [0.5*(base+150), base+150].
	w.opts.MaxGoroutines = base + 150
	w.Sample()
	if !w.Active() {
		t.Fatal("brownout released inside the hysteresis band")
	}
}

func TestStartCloseLoop(t *testing.T) {
	testutil.CheckGoroutines(t)
	fired := make(chan struct{}, 1)
	w := New(Options{
		Interval:     2 * time.Millisecond,
		MaxHeapBytes: 1,
		OnBrownout: func(string) {
			select {
			case fired <- struct{}{}:
			default:
			}
		},
	})
	w.Start()
	w.Start() // idempotent
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("sampling loop never fired the brownout callback")
	}
	w.Close()
	w.Close() // idempotent
	n := w.Samples()
	time.Sleep(20 * time.Millisecond)
	if got := w.Samples(); got != n {
		t.Fatalf("samples advanced after Close: %d -> %d", n, got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
