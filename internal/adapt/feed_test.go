package adapt

import (
	"sync"
	"testing"

	"murmuration/internal/serve"
)

func TestFeedDropsOldest(t *testing.T) {
	f := NewFeed(3)
	for v := 1; v <= 5; v++ {
		f.Offer(serve.OutcomeEvent{Rung: v})
	}
	got := f.Drain()
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	for i, want := range []int{3, 4, 5} {
		if got[i].Rung != want {
			t.Fatalf("event %d = %d, want %d (oldest must drop first)", i, got[i].Rung, want)
		}
	}
	if f.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.Dropped())
	}
	if f.Len() != 0 || f.Drain() != nil {
		t.Fatal("drain did not empty the feed")
	}
}

func TestFeedWrapsAcrossDrains(t *testing.T) {
	f := NewFeed(4)
	seq := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			seq++
			f.Offer(serve.OutcomeEvent{Rung: seq})
		}
		got := f.Drain()
		if len(got) != 3 {
			t.Fatalf("round %d: drained %d, want 3", round, len(got))
		}
		for i := range got {
			if got[i].Rung != seq-2+i {
				t.Fatalf("round %d: out-of-order drain %v", round, got)
			}
		}
	}
}

func TestFeedConcurrentOffer(t *testing.T) {
	f := NewFeed(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f.Offer(serve.OutcomeEvent{})
			}
		}()
	}
	wg.Wait()
	if n, d := f.Len(), f.Dropped(); uint64(n)+d != 1600 {
		t.Fatalf("len %d + dropped %d != 1600 offers", n, d)
	}
}
