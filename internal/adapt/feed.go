// Package adapt closes Murmuration's control loop: it taps the gateway's
// live outcome stream, feeds measured transitions back into the SUPREME
// replay buffer, retrains the policy in the background, and promotes
// retrained snapshots through a guarded shadow → canary → full rollout with
// automatic rollback to the last known-good policy.
//
// The design splits into three pieces:
//
//   - Feed: a bounded, drop-oldest buffer between the serving hot path and
//     the adaptation loop. The gateway's tap must never block, so under
//     pressure the feed sheds its oldest events — stale telemetry is the
//     cheapest thing in the system to lose.
//   - Manifest: a tiny crash-safe record of the rollout state machine
//     (current/last-good versions, promotion and rollback counts, circuit
//     breaker), written atomically next to the versioned policy checkpoints.
//   - Controller: the rollout state machine itself, installed as the
//     runtime's decider so it can route a canary fraction of decisions
//     through the candidate policy and hot-swap the incumbent on promotion.
package adapt

import (
	"sync"

	"murmuration/internal/serve"
)

// Feed is the bounded hand-off between the gateway's outcome tap and the
// adaptation loop. Offer never blocks: when the buffer is full the oldest
// event is dropped to make room. It implements serve.OutcomeTap.
type Feed struct {
	mu      sync.Mutex
	buf     []serve.OutcomeEvent // ring storage, len == capacity
	head    int                  // index of oldest event
	n       int                  // live events
	dropped uint64
}

// DefaultFeedCap bounds the feed when the caller does not: at typical
// serving rates it holds several retrain intervals of events.
const DefaultFeedCap = 4096

// NewFeed creates a feed holding at most capacity events (DefaultFeedCap
// when <= 0).
func NewFeed(capacity int) *Feed {
	if capacity <= 0 {
		capacity = DefaultFeedCap
	}
	return &Feed{buf: make([]serve.OutcomeEvent, capacity)}
}

// Offer appends an event, dropping the oldest when full. Non-blocking and
// safe under the gateway mutex: the critical section is a few index updates.
func (f *Feed) Offer(ev serve.OutcomeEvent) {
	f.mu.Lock()
	if f.n == len(f.buf) {
		// Full: overwrite the oldest. Newest data wins — the loop adapts to
		// the present, not the past.
		f.head = (f.head + 1) % len(f.buf)
		f.n--
		f.dropped++
	}
	f.buf[(f.head+f.n)%len(f.buf)] = ev
	f.n++
	f.mu.Unlock()
}

// Drain removes and returns every buffered event in arrival order.
func (f *Feed) Drain() []serve.OutcomeEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n == 0 {
		return nil
	}
	out := make([]serve.OutcomeEvent, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.head+i)%len(f.buf)]
		f.buf[(f.head+i)%len(f.buf)] = serve.OutcomeEvent{} // release Choices
	}
	f.head, f.n = 0, 0
	return out
}

// Len returns the number of buffered events.
func (f *Feed) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Dropped returns how many events were shed oldest-first.
func (f *Feed) Dropped() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}
