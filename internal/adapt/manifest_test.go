package adapt

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Current:        7,
		LastGood:       5,
		Promotions:     3,
		Rollbacks:      2,
		RollbackStreak: 1,
		Pinned:         true,
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round trip: got %+v, want %+v", got, m)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	good := EncodeManifest(Manifest{Current: 9, LastGood: 4})
	// Every single-byte flip must be caught by framing or the CRC.
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		if _, err := DecodeManifest(bad); !errors.Is(err, ErrManifestCorrupt) {
			t.Fatalf("flip at byte %d accepted (err=%v)", i, err)
		}
	}
	if _, err := DecodeManifest(good[:len(good)-1]); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatal("truncated manifest accepted")
	}
	if _, err := DecodeManifest(append(good, 0)); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatal("oversized manifest accepted")
	}
	if _, err := DecodeManifest(nil); !errors.Is(err, ErrManifestCorrupt) {
		t.Fatal("empty manifest accepted")
	}
}

func TestManifestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adapt.manifest")
	m := Manifest{Current: 2, LastGood: 1, Promotions: 2, Rollbacks: 1}
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("file round trip: got %+v, want %+v", got, m)
	}
	// Overwrite must be atomic-replace, not append.
	m2 := Manifest{Current: 3, LastGood: 2, Promotions: 3, Rollbacks: 1}
	if err := SaveManifest(path, m2); err != nil {
		t.Fatal(err)
	}
	if got, err = LoadManifest(path); err != nil || got != m2 {
		t.Fatalf("after overwrite: got %+v err %v, want %+v", got, err, m2)
	}
}

// FuzzDecodePolicySnapshot fuzzes the policy-snapshot manifest decoder: it
// must never panic on arbitrary bytes, and every accepted frame must be
// canonical — re-encoding the decoded manifest reproduces the input
// byte-for-byte, so no two distinct accepted frames mean the same thing.
func FuzzDecodePolicySnapshot(f *testing.F) {
	f.Add(EncodeManifest(Manifest{}))
	f.Add(EncodeManifest(Manifest{Current: 1, LastGood: 1, Promotions: 1}))
	f.Add(EncodeManifest(Manifest{
		Current: ^uint64(0), LastGood: 42, Promotions: 7, Rollbacks: 7,
		RollbackStreak: 255, Pinned: true,
	}))
	f.Add([]byte("MADP"))
	f.Add(bytes.Repeat([]byte{0xff}, manifestLen))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		if got := EncodeManifest(m); !bytes.Equal(got, b) {
			t.Fatalf("accepted frame not canonical:\n in  %x\n out %x", b, got)
		}
	})
}
