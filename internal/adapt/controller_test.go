package adapt

import (
	"os"
	"sync"
	"testing"
	"time"

	"murmuration/internal/device"
	"murmuration/internal/nas"
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/runtime"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
)

// tinySetup builds the small policy/space pair the rollout tests train and
// stage candidates from.
func tinySetup(seed int64) (*supernet.Arch, *policy.Policy, env.ConstraintSpace) {
	a := supernet.TinyArch(4)
	e := env.New(a, nas.NewCalibratedPredictor(a), []device.Kind{device.RaspberryPi4, device.GPUDesktop})
	p := policy.New(e, 16, seed)
	space := env.ConstraintSpace{
		Type: env.LatencySLO, SLOMin: 5, SLOMax: 5000,
		BwMinMbps: 50, BwMaxMbps: 500, DelayMin: 1, DelayMax: 20,
		Points: 10, Remotes: 1,
	}
	return a, p, space
}

// newAdaptRuntime builds a local-only runtime (the controller only needs it
// for ConstraintFor and cache invalidation in these tests).
func newAdaptRuntime(a *supernet.Arch, seed int64, d runtime.Decider) *runtime.Runtime {
	net := supernet.New(a, seed)
	sched := runtime.NewScheduler(net, nil)
	return runtime.New(sched, d, runtime.NewStrategyCache(32, 25, 5, 10), nil)
}

func localMinDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	}
}

// servedEvent fabricates one tapped served outcome under a 1-remote
// constraint with the given SLO budget and attainment verdict.
func servedEvent(sloMs float64, met bool) serve.OutcomeEvent {
	return serve.OutcomeEvent{
		Kind:  serve.KindServed,
		Class: serve.ClassLatency,
		SLO:   runtime.SLO{Type: env.LatencySLO, Value: sloMs},
		Constraint: env.Constraint{
			Type: env.LatencySLO, LatencyMs: sloMs,
			BandwidthMbps: []float64{100}, DelayMs: []float64{5},
		},
		LatencyMs: 10,
		SLOMet:    met,
	}
}

func repeatEvents(ev serve.OutcomeEvent, n int) []serve.OutcomeEvent {
	out := make([]serve.OutcomeEvent, n)
	for i := range out {
		out[i] = ev
	}
	return out
}

// TestShadowPromotionDeferredDuringBrownout pins the guardrail interaction:
// a candidate that wins its shadow evaluation while the gateway is in
// brownout stays in shadow — a policy change mid-overload would be judged
// against overload noise — and advances to canary only once the brownout
// clears.
func TestShadowPromotionDeferredDuringBrownout(t *testing.T) {
	a, p, space := tinySetup(1)
	rt := newAdaptRuntime(a, 1, localMinDecider(a))
	brown := true
	ctl, err := New(Config{
		Runtime: rt, Policy: p, Space: space,
		MinShadow: 4, TrainRounds: 1,
		Brownout: func() bool { return brown },
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Candidate identical to the incumbent: every shadow comparison is a tie,
	// and ties count as wins — the gate is purely the brownout.
	ctl.ForceCandidate(policyDecider{p: p.Clone()})

	ctl.Tick(repeatEvents(servedEvent(5000, true), 6))
	if m := ctl.Mode(); m != ModeShadow {
		t.Fatalf("mode during brownout = %v, want shadow (promotion deferred)", m)
	}
	if ctl.shadowScored.Load() == 0 {
		t.Fatal("no shadow comparisons were scored")
	}

	brown = false
	ctl.Tick(nil)
	if m := ctl.Mode(); m != ModeCanary {
		t.Fatalf("mode after brownout cleared = %v, want canary", m)
	}
}

// TestShadowLossRestagesCandidate pins the shadow gate's failure path: a
// candidate that cannot meet the live SLOs is discarded without ever serving
// a request, and a fresh snapshot of the retrained working policy is staged
// under a new version.
func TestShadowLossRestagesCandidate(t *testing.T) {
	a, p, space := tinySetup(2)
	rt := newAdaptRuntime(a, 2, localMinDecider(a))
	ctl, err := New(Config{
		Runtime: rt, Policy: p, Space: space,
		MinShadow: 4, TrainRounds: 1, Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	v1 := ctl.ForceCandidate(policyDecider{p: p.Clone()})

	// An SLO no decision can meet: the candidate cannot win a single
	// comparison, so the gate must discard it.
	ctl.Tick(repeatEvents(servedEvent(1e-6, true), 6))
	rs := ctl.routing.Load()
	if rs.mode != ModeShadow {
		t.Fatalf("mode after shadow loss = %v, want shadow (restaged)", rs.mode)
	}
	if rs.candidateVer <= v1 {
		t.Fatalf("candidate version %d after restage, want > %d", rs.candidateVer, v1)
	}
}

// TestCanaryRollbackAndCircuitBreaker drives the canary guardrail twice: the
// first attainment collapse rolls back to last-good after RollbackWindows
// consecutive bad windows (hysteresis — one bad window is not enough), and
// the second consecutive rollback trips the circuit breaker, pinning the
// frozen policy.
func TestCanaryRollbackAndCircuitBreaker(t *testing.T) {
	a, p, space := tinySetup(3)
	rt := newAdaptRuntime(a, 3, localMinDecider(a))
	ctl, err := New(Config{
		Runtime: rt, Policy: p, Space: space,
		MinShadow: 4, MinCanary: 4, RollbackWindows: 2, MaxRollbacks: 2,
		TrainRounds: 1, Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := repeatEvents(servedEvent(5000, false), 5)

	ctl.ForceCandidate(policyDecider{p: p.Clone()})
	ctl.ForceCanary()
	ctl.Tick(bad)
	if m := ctl.Mode(); m != ModeCanary {
		t.Fatalf("one bad window already rolled back (mode %v); hysteresis requires two", m)
	}
	ctl.Tick(bad)
	if m := ctl.Mode(); m != ModeIncumbent {
		t.Fatalf("mode after %d bad windows = %v, want incumbent", 2, m)
	}
	if got := ctl.AdaptStats().Rollbacks; got != 1 {
		t.Fatalf("rollbacks = %d, want 1", got)
	}
	if ctl.Pinned() {
		t.Fatal("pinned after a single rollback; breaker threshold is 2")
	}

	ctl.ForceCandidate(policyDecider{p: p.Clone()})
	ctl.ForceCanary()
	ctl.Tick(bad)
	ctl.Tick(bad)
	if got := ctl.AdaptStats().Rollbacks; got != 2 {
		t.Fatalf("rollbacks = %d, want 2", got)
	}
	if !ctl.Pinned() {
		t.Fatal("two consecutive rollbacks must pin the policy")
	}

	// Pinned: healthy windows stage nothing; promotion hooks are inert.
	ctl.Tick(repeatEvents(servedEvent(5000, true), 6))
	if m := ctl.Mode(); m != ModeIncumbent {
		t.Fatalf("pinned controller staged a candidate (mode %v)", m)
	}
	ctl.ForcePromote()
	if got := ctl.AdaptStats().Promotions; got != 0 {
		t.Fatalf("pinned controller promoted (promotions %d)", got)
	}
}

// shedEvent fabricates one tapped admission refusal for an SLO-carrying
// request (no constraint: sheds never resolve one).
func shedEvent(sloMs float64) serve.OutcomeEvent {
	return serve.OutcomeEvent{
		Kind:  serve.KindShed,
		Class: serve.ClassLatency,
		SLO:   runtime.SLO{Type: env.LatencySLO, Value: sloMs},
	}
}

// TestCanaryShedStarvationRollsBack pins the starvation guardrail: a canary
// whose windows carry only sheds — SLO traffic refused wholesale, nothing
// served — must accumulate bad windows and roll back. Without the starvation
// clause a bad candidate that poisons the batch-cost estimate sheds the whole
// class, the attainment clause reads every window as clean, and the canary
// wedges forever.
func TestCanaryShedStarvationRollsBack(t *testing.T) {
	a, p, space := tinySetup(6)
	rt := newAdaptRuntime(a, 6, localMinDecider(a))
	ctl, err := New(Config{
		Runtime: rt, Policy: p, Space: space,
		MinShadow: 4, MinCanary: 1 << 30, RollbackWindows: 2,
		TrainRounds: 1, Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctl.ForceCandidate(policyDecider{p: p.Clone()})
	ctl.ForceCanary()

	sheds := repeatEvents(shedEvent(100), 5)
	ctl.Tick(sheds)
	if m := ctl.Mode(); m != ModeCanary {
		t.Fatalf("one starved window already rolled back (mode %v); hysteresis requires two", m)
	}
	ctl.Tick(sheds)
	if m := ctl.Mode(); m != ModeIncumbent {
		t.Fatalf("mode after two shed-starved windows = %v, want incumbent (rollback)", m)
	}
	if got := ctl.AdaptStats().Rollbacks; got != 1 {
		t.Fatalf("rollbacks = %d, want 1", got)
	}
}

// TestPromotePersistsAndResumes pins crash safety: a promotion writes the
// versioned checkpoint, the current checkpoint, and the manifest durably,
// and a fresh controller over the same directory resumes serving the
// promoted version — not the frozen config it was constructed with.
func TestPromotePersistsAndResumes(t *testing.T) {
	a, p, space := tinySetup(4)
	rt := newAdaptRuntime(a, 4, localMinDecider(a))
	dir := t.TempDir()
	cfg := Config{
		Runtime: rt, Policy: p, Space: space, Dir: dir,
		MinShadow: 4, RollbackWindows: 2, TrainRounds: 1, Log: t.Logf,
	}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.ForceCandidate(policyDecider{p: p.Clone()})
	ctl.ForcePromote()

	for _, f := range []string{ctl.versionCkptPath(1), ctl.currentCkptPath(), ctl.manifestPath()} {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("promotion artifact missing: %v", err)
		}
	}
	if s := ctl.AdaptStats(); s.PolicyVersion != 1 || s.Promotions != 1 {
		t.Fatalf("after promote: %+v, want version 1 / promotions 1", s)
	}

	// Two clean windows settle the probation: v1 becomes last-good.
	ctl.Tick(repeatEvents(servedEvent(5000, true), 5))
	ctl.Tick(repeatEvents(servedEvent(5000, true), 5))
	m, err := LoadManifest(ctl.manifestPath())
	if err != nil {
		t.Fatal(err)
	}
	if m.Current != 1 || m.LastGood != 1 {
		t.Fatalf("settled manifest %+v, want current=1 lastGood=1", m)
	}

	ctl2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := ctl2.AdaptStats(); s.PolicyVersion != 1 || s.Promotions != 1 {
		t.Fatalf("resumed controller: %+v, want version 1 / promotions 1", s)
	}
}

// TestCanaryRollbackKeepsLedger is the in-flight rollback edge: with every
// decision canary-routed, a rollback fired while batches are mid-flight must
// not double-count (or lose) a single request in the gateway's ledger.
func TestCanaryRollbackKeepsLedger(t *testing.T) {
	a := supernet.TinyArch(4)
	base := localMinDecider(a)
	rt := newAdaptRuntime(a, 5, base)
	ctl, err := New(Config{Runtime: rt, Incumbent: base, CanaryFrac: 1.0, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rt.SwapDecider(ctl)
	gw := serve.New(rt, serve.Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond})
	defer gw.Close(2 * time.Second)
	ctl.AttachGateway(gw)

	// A distinguishable candidate: max config instead of min.
	cand := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MaxConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	})
	ctl.ForceCandidate(cand)
	ctl.ForceCanary()

	x := tensor.New(1, 3, 32, 32)
	slo := runtime.SLO{Type: env.LatencySLO, Value: 10000}
	var wg sync.WaitGroup
	submit := func(n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				gw.Submit(x, slo)
			}()
		}
	}
	submit(20)
	// Roll back only once canary decisions are demonstrably in flight/served,
	// while the first wave is still being drained.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Stats().CanaryServed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no canary request served before rollback")
		}
		time.Sleep(time.Millisecond)
	}
	ctl.ForceRollback("test: mid-flight rollback")
	submit(20)
	wg.Wait()

	st := gw.Stats()
	if st.Admitted != st.Served+st.Dropped+st.Failed {
		t.Fatalf("ledger broken across rollback: admitted %d != served %d + dropped %d + failed %d",
			st.Admitted, st.Served, st.Dropped, st.Failed)
	}
	var met, missed uint64
	for c := 0; c < serve.NumClasses; c++ {
		met += st.ClassMet[c]
		missed += st.ClassMissed[c]
	}
	if met+missed != st.Admitted {
		t.Fatalf("class ledger broken: met %d + missed %d != admitted %d", met, missed, st.Admitted)
	}
	if st.Rollbacks != 1 {
		t.Fatalf("stats rollbacks = %d, want 1", st.Rollbacks)
	}
	if st.CanaryServed == 0 {
		t.Fatal("no canary-served requests before the rollback")
	}
	if st.CanaryServed > st.Served {
		t.Fatalf("canary served %d exceeds served %d", st.CanaryServed, st.Served)
	}
}
