package adapt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Manifest is the durable record of the rollout state machine. It is written
// atomically on every promotion and rollback, next to the versioned policy
// checkpoints, so a restarted gateway resumes from the last promoted policy
// — never from a candidate that was mid-rollout when the process died.
type Manifest struct {
	// Current is the serving (incumbent) policy version; LastGood is the
	// version rollback returns to.
	Current  uint64
	LastGood uint64
	// Promotions / Rollbacks are lifetime transition counts.
	Promotions uint64
	Rollbacks  uint64
	// RollbackStreak counts consecutive rollbacks with no intervening settled
	// promotion; Pinned marks the circuit breaker: after MaxRollbacks
	// consecutive rollbacks the frozen policy is pinned and adaptation stops
	// promoting until an operator intervenes.
	RollbackStreak uint8
	Pinned         bool
}

// Wire layout (little endian), fixed length:
//
//	"MADP" | u8 version=1 | u64 current | u64 lastGood | u64 promotions
//	| u64 rollbacks | u8 rollbackStreak | u8 pinned | u32 crc32c
//
// The CRC covers every preceding byte. The frame is fixed-size and decoding
// rejects any trailing bytes, so encode(decode(b)) == b for every accepted b
// — the canonical round trip the fuzz target asserts.
const (
	manifestVersion = 1
	manifestLen     = 4 + 1 + 4*8 + 1 + 1 + 4
)

var manifestMagic = []byte("MADP")

var manifestTable = crc32.MakeTable(crc32.Castagnoli)

// ErrManifestCorrupt is the typed failure for a manifest that fails framing
// or integrity checks. Wrapped errors unwrap to it via errors.Is.
var ErrManifestCorrupt = errors.New("adapt: manifest failed integrity check")

// EncodeManifest serializes a manifest to its fixed-size wire form.
func EncodeManifest(m Manifest) []byte {
	b := make([]byte, 0, manifestLen)
	b = append(b, manifestMagic...)
	b = append(b, manifestVersion)
	var u8 [8]byte
	for _, v := range []uint64{m.Current, m.LastGood, m.Promotions, m.Rollbacks} {
		binary.LittleEndian.PutUint64(u8[:], v)
		b = append(b, u8[:]...)
	}
	b = append(b, m.RollbackStreak)
	if m.Pinned {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	var c4 [4]byte
	binary.LittleEndian.PutUint32(c4[:], crc32.Checksum(b, manifestTable))
	return append(b, c4[:]...)
}

// DecodeManifest parses and verifies a manifest frame. It never panics on
// arbitrary input, and any accepted input re-encodes byte-identically.
func DecodeManifest(b []byte) (Manifest, error) {
	if len(b) != manifestLen {
		return Manifest{}, fmt.Errorf("%w: length %d, want %d", ErrManifestCorrupt, len(b), manifestLen)
	}
	if string(b[:4]) != string(manifestMagic) {
		return Manifest{}, fmt.Errorf("%w: bad magic %q", ErrManifestCorrupt, b[:4])
	}
	if b[4] != manifestVersion {
		return Manifest{}, fmt.Errorf("%w: version %d, want %d", ErrManifestCorrupt, b[4], manifestVersion)
	}
	body, tail := b[:manifestLen-4], b[manifestLen-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, manifestTable); got != want {
		return Manifest{}, fmt.Errorf("%w: crc32c %08x != stored %08x", ErrManifestCorrupt, want, got)
	}
	var m Manifest
	off := 5
	next := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	m.Current = next()
	m.LastGood = next()
	m.Promotions = next()
	m.Rollbacks = next()
	m.RollbackStreak = b[off]
	switch b[off+1] {
	case 0:
		m.Pinned = false
	case 1:
		m.Pinned = true
	default:
		// Reject non-canonical booleans: they would break the exact
		// round-trip property and smuggle entropy through re-encoding.
		return Manifest{}, fmt.Errorf("%w: pinned byte %d", ErrManifestCorrupt, b[off+1])
	}
	return m, nil
}

// SaveManifest writes the manifest atomically and durably (temp file, fsync,
// rename, directory fsync) — the same discipline as nn.SaveParams, so a crash
// leaves either the old manifest or the new one.
func SaveManifest(path string, m Manifest) (err error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if _, err = f.Write(EncodeManifest(m)); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	d, err := os.Open(dirOrDot(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func dirOrDot(dir string) string {
	if dir == "" {
		return "."
	}
	return dir
}

// LoadManifest reads and verifies a manifest file.
func LoadManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	return DecodeManifest(b)
}
