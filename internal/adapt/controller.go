package adapt

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"murmuration/internal/nn"
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/rl/supreme"
	"murmuration/internal/runtime"
	"murmuration/internal/serve"
)

// Mode is the rollout state a candidate policy is in.
type Mode int32

// Rollout modes. Shadow and Canary both carry a candidate; Incumbent means
// no candidate is staged (either between rollouts or because the circuit
// breaker pinned the policy).
const (
	ModeIncumbent Mode = iota
	ModeShadow
	ModeCanary
)

// String names the mode for logs.
func (m Mode) String() string {
	switch m {
	case ModeIncumbent:
		return "incumbent"
	case ModeShadow:
		return "shadow"
	case ModeCanary:
		return "canary"
	}
	return "unknown"
}

// Config configures a Controller. Zero values select the defaults.
type Config struct {
	// Runtime is the deployment runtime whose decider the controller becomes
	// (required). The controller invalidates its strategy cache on every
	// promotion and rollback.
	Runtime *runtime.Runtime
	// Incumbent is the initial serving decider. When nil and Policy is set,
	// the frozen Policy serves.
	Incumbent runtime.Decider
	// Policy is the trainable policy the background loop retrains (a private
	// clone is trained; serving always uses frozen snapshots). Nil disables
	// retraining — the controller is then routing-only (tests, static
	// deployments).
	Policy *policy.Policy
	// Space is the constraint grid the replay buffer is bucketed on
	// (required when Policy is set).
	Space env.ConstraintSpace
	// TrainOpts tune the background trainer (zero: supreme.DefaultOptions).
	TrainOpts supreme.Options
	// Dir is where versioned checkpoints and the manifest persist ("" = no
	// persistence; promotions survive only the process).
	Dir string
	// Interval is the retrain/evaluate cadence (default 2s).
	Interval time.Duration
	// CanaryFrac is the fraction of decisions routed through the candidate
	// during canary (default 0.2, clamped to [0.001, 1]).
	CanaryFrac float64
	// RollbackSLO is the attainment floor: a window whose SLO attainment
	// falls below it counts as bad (default 0.7).
	RollbackSLO float64
	// TrainRounds is how many targeted SUPREME rounds run per tick (default 2).
	TrainRounds int
	// MinShadow is how many shadow comparisons must accumulate before the
	// shadow gate is evaluated (default 16); ShadowWinFrac is the win
	// fraction the candidate needs to advance to canary (default 0.6).
	MinShadow     int
	ShadowWinFrac float64
	// MinCanary is how many canary-served outcomes must be observed, with no
	// bad window, before full promotion (default 8).
	MinCanary int
	// RollbackWindows is the hysteresis: consecutive bad windows required to
	// roll back, and also the post-promotion probation length in windows
	// (default 2).
	RollbackWindows int
	// MaxRollbacks is the circuit breaker: this many consecutive rollbacks
	// pin the frozen policy (default 2).
	MaxRollbacks int
	// FeedCap bounds the outcome feed (default DefaultFeedCap).
	FeedCap int
	// Brownout, when set, reports whether the gateway is in brownout;
	// promotions are deferred while it returns true. AttachGateway wires it.
	Brownout func() bool
	// Log receives state-transition lines (default log.Printf).
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.CanaryFrac <= 0 {
		c.CanaryFrac = 0.2
	}
	if c.CanaryFrac > 1 {
		c.CanaryFrac = 1
	}
	if c.RollbackSLO <= 0 {
		c.RollbackSLO = 0.7
	}
	if c.TrainRounds <= 0 {
		c.TrainRounds = 2
	}
	if c.MinShadow <= 0 {
		c.MinShadow = 16
	}
	if c.ShadowWinFrac <= 0 {
		c.ShadowWinFrac = 0.6
	}
	if c.MinCanary <= 0 {
		c.MinCanary = 8
	}
	if c.RollbackWindows <= 0 {
		c.RollbackWindows = 2
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 2
	}
	if c.Log == nil {
		c.Log = log.Printf
	}
	return c
}

// Per-tick work bounds: cells retrained and shadow comparisons scored are
// capped so a busy gateway cannot turn the background loop into a second
// serving workload.
const (
	maxCellsPerTick  = 8
	maxShadowPerTick = 32
)

// routing is the immutable decision-routing snapshot behind the atomic
// pointer: the serving hot path loads it once per decision and never takes a
// lock. Transitions install a fresh copy.
type routing struct {
	mode           Mode
	incumbent      runtime.Decider
	incumbentVer   uint64
	candidate      runtime.Decider
	candidateVer   uint64
	canaryPermille uint64
}

// Controller is the rollout state machine. It implements runtime.MetaDecider
// (install it as the runtime's decider), serve.AdaptSource (attach it to the
// gateway), and drives retraining plus guarded promotion in a background
// goroutine between Start and Close.
type Controller struct {
	cfg  Config
	rt   *runtime.Runtime
	feed *Feed
	gw   *serve.Gateway

	routing   atomic.Pointer[routing]
	canaryCtr atomic.Uint64

	// Wire-visible counters (serve.AdaptStats); atomics because the gateway
	// reads them under its own mutex while the loop updates them.
	shadowScored atomic.Uint64
	promotions   atomic.Uint64
	rollbacks    atomic.Uint64

	// trainer owns the working policy (a private clone of cfg.Policy); only
	// the background loop (or Tick in tests) touches it.
	trainer *supreme.Trainer

	// mu guards the state-machine bookkeeping below across the background
	// loop and the Force* test hooks. Never held while calling into the
	// gateway or while serving decisions.
	mu             sync.Mutex
	version        uint64 // last assigned snapshot version
	shadowWins     int
	shadowTotal    int
	canarySeen     int
	badWindows     int
	watchLeft      int // >0: post-promotion probation windows remaining
	rollbackStreak int
	pinned         bool
	lastGood       runtime.Decider
	lastGoodVer    uint64

	stop chan struct{}
	done chan struct{}
}

// choiceDecider is a decider that exposes the policy choice sequence behind
// each decision (policy snapshots do; arbitrary deciders do not).
type choiceDecider interface {
	DecideChoices(c env.Constraint) (*env.Decision, []int, error)
}

// policyDecider adapts a frozen policy snapshot to runtime.Decider.
type policyDecider struct{ p *policy.Policy }

// Decide implements runtime.Decider.
func (pd policyDecider) Decide(c env.Constraint) (*env.Decision, error) {
	d, _, err := pd.DecideChoices(c)
	return d, err
}

// DecideChoices implements choiceDecider.
func (pd policyDecider) DecideChoices(c env.Constraint) (*env.Decision, []int, error) {
	choices, err := pd.p.Greedy(c)
	if err != nil {
		return nil, nil, err
	}
	d, err := pd.p.Env.Decode(choices)
	if err != nil {
		return nil, nil, err
	}
	return d, choices, nil
}

func decideWithChoices(d runtime.Decider, c env.Constraint) (*env.Decision, []int, error) {
	if cd, ok := d.(choiceDecider); ok {
		return cd.DecideChoices(c)
	}
	dec, err := d.Decide(c)
	return dec, nil, err
}

// New creates a controller. The incumbent serves immediately; when Dir holds
// a manifest and a current checkpoint from a previous run, the last promoted
// policy is restored and serves instead of the configured one (crash
// recovery: a promotion, once durable, survives the process).
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if cfg.Runtime == nil {
		return nil, fmt.Errorf("adapt: Config.Runtime is required")
	}
	if cfg.Incumbent == nil && cfg.Policy == nil {
		return nil, fmt.Errorf("adapt: need Config.Incumbent or Config.Policy")
	}
	ctl := &Controller{
		cfg:  cfg,
		rt:   cfg.Runtime,
		feed: NewFeed(cfg.FeedCap),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	incumbent := cfg.Incumbent
	if incumbent == nil {
		incumbent = policyDecider{p: cfg.Policy.Clone()}
	}
	rs := &routing{mode: ModeIncumbent, incumbent: incumbent}

	if cfg.Policy != nil {
		working := cfg.Policy.Clone()
		if cfg.Dir != "" {
			if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
				return nil, err
			}
			m, err := LoadManifest(ctl.manifestPath())
			switch {
			case err == nil:
				// Resume: the last durably promoted snapshot serves.
				restored := cfg.Policy.Clone()
				if lerr := nn.LoadParams(ctl.currentCkptPath(), restored.Params()); lerr == nil {
					rs.incumbent = policyDecider{p: restored}
					rs.incumbentVer = m.Current
					working = restored.Clone()
					ctl.version = m.Current
					ctl.lastGoodVer = m.LastGood
					ctl.promotions.Store(m.Promotions)
					ctl.rollbacks.Store(m.Rollbacks)
					ctl.rollbackStreak = int(m.RollbackStreak)
					ctl.pinned = m.Pinned
					cfg.Log("adapt: resumed policy v%d from %s (promotions=%d rollbacks=%d pinned=%v)",
						m.Current, cfg.Dir, m.Promotions, m.Rollbacks, m.Pinned)
				} else {
					cfg.Log("adapt: manifest present but checkpoint unusable (%v); serving frozen policy", lerr)
				}
			case os.IsNotExist(err):
				// Fresh directory: nothing to resume.
			default:
				cfg.Log("adapt: manifest unreadable (%v); serving frozen policy", err)
			}
		}
		opts := cfg.TrainOpts
		if opts.Steps == 0 && opts.TopN == 0 {
			opts = supreme.DefaultOptions()
		}
		ctl.trainer = supreme.New(working, cfg.Space, opts)
	}

	ctl.lastGood = rs.incumbent
	if ctl.lastGoodVer == 0 {
		ctl.lastGoodVer = rs.incumbentVer
	}
	ctl.routing.Store(rs)
	return ctl, nil
}

func (ctl *Controller) manifestPath() string {
	return filepath.Join(ctl.cfg.Dir, "adapt.manifest")
}

func (ctl *Controller) currentCkptPath() string {
	return filepath.Join(ctl.cfg.Dir, "policy_current.ckpt")
}

func (ctl *Controller) versionCkptPath(v uint64) string {
	return filepath.Join(ctl.cfg.Dir, fmt.Sprintf("policy_v%06d.ckpt", v))
}

// Feed returns the outcome feed; install it as the gateway's tap (or let
// AttachGateway do it).
func (ctl *Controller) Feed() *Feed { return ctl.feed }

// AttachGateway wires the controller to a gateway: the outcome tap, the
// stats adapter, and the brownout signal that defers promotions.
func (ctl *Controller) AttachGateway(gw *serve.Gateway) {
	ctl.gw = gw
	gw.SetOutcomeTap(ctl.feed)
	gw.AttachAdapter(ctl)
	if ctl.cfg.Brownout == nil {
		ctl.cfg.Brownout = gw.Brownout
	}
}

// Decide implements runtime.Decider.
func (ctl *Controller) Decide(c env.Constraint) (*env.Decision, error) {
	d, _, err := ctl.DecideMeta(c)
	return d, err
}

// DecideMeta implements runtime.MetaDecider: during canary, a CanaryFrac
// slice of decisions routes through the candidate (uncached, so the canary
// fraction stays honest — a cached canary decision would be replayed for the
// whole bucket); everything else is the incumbent. A candidate failure falls
// back to the incumbent rather than failing the request.
func (ctl *Controller) DecideMeta(c env.Constraint) (*env.Decision, runtime.DecisionMeta, error) {
	rs := ctl.routing.Load()
	if rs.mode == ModeCanary && rs.candidate != nil {
		if ctl.canaryCtr.Add(1)%1000 < rs.canaryPermille {
			d, choices, err := decideWithChoices(rs.candidate, c)
			if err == nil {
				return d, runtime.DecisionMeta{
					PolicyVersion: rs.candidateVer,
					Canary:        true,
					NoCache:       true,
					Choices:       choices,
				}, nil
			}
			ctl.cfg.Log("adapt: candidate v%d decide failed (%v); serving incumbent", rs.candidateVer, err)
		}
	}
	d, choices, err := decideWithChoices(rs.incumbent, c)
	return d, runtime.DecisionMeta{PolicyVersion: rs.incumbentVer, Choices: choices}, err
}

// PolicyVersion implements runtime.PolicyVersioner: cache hits belong to the
// incumbent, because canary decisions never enter the cache and the cache is
// cleared on every promotion and rollback.
func (ctl *Controller) PolicyVersion() uint64 {
	return ctl.routing.Load().incumbentVer
}

// AdaptStats implements serve.AdaptSource. Called under the gateway mutex —
// atomics only, no locks.
func (ctl *Controller) AdaptStats() serve.AdaptStats {
	return serve.AdaptStats{
		PolicyVersion: ctl.routing.Load().incumbentVer,
		ShadowScored:  ctl.shadowScored.Load(),
		Promotions:    ctl.promotions.Load(),
		Rollbacks:     ctl.rollbacks.Load(),
	}
}

// Mode returns the current rollout mode.
func (ctl *Controller) Mode() Mode { return ctl.routing.Load().mode }

// Pinned reports whether the circuit breaker has pinned the policy.
func (ctl *Controller) Pinned() bool {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.pinned
}

// Start launches the background adaptation loop.
func (ctl *Controller) Start() {
	go func() {
		defer close(ctl.done)
		t := time.NewTicker(ctl.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctl.stop:
				return
			case <-t.C:
				ctl.Tick(ctl.feed.Drain())
			}
		}
	}()
}

// Close stops the background loop and waits for it to exit.
func (ctl *Controller) Close() {
	select {
	case <-ctl.stop:
	default:
		close(ctl.stop)
	}
	<-ctl.done
}

// window summarizes one tick's drained events for the guardrails.
type window struct {
	total  int // admitted SLO-carrying outcomes (served+dropped+failed)
	met    int // of those, SLO met
	canary int // canary-served outcomes observed
	shed   int // SLO-carrying requests refused at admission
}

func (w window) attainment() float64 {
	if w.total == 0 {
		return 1
	}
	return float64(w.met) / float64(w.total)
}

// windowBad is the guardrail predicate for canary and probation windows: the
// observed attainment fell below the floor, or the window was shed-starved —
// SLO-carrying traffic was refused wholesale and nothing served at all. The
// second clause matters because a bad candidate can poison the gateway's
// batch-cost estimate until admission sheds the entire class: with no served
// outcomes the attainment clause alone would read the window as clean, the
// bad-window streak would keep resetting, and the canary would wedge forever
// behind its own damage.
func (ctl *Controller) windowBad(w window) bool {
	return (w.total > 0 && w.attainment() < ctl.cfg.RollbackSLO) ||
		(w.total == 0 && w.shed > 0)
}

// Tick runs one adaptation step over a batch of drained events: ingest live
// transitions, retrain on the observed constraint cells, score the shadow
// candidate, and evaluate the guarded state machine. The background loop
// calls it on the configured cadence; tests call it directly with synthetic
// events for deterministic control.
func (ctl *Controller) Tick(events []serve.OutcomeEvent) {
	w := ctl.observe(events)
	ctl.train(events)
	ctl.scoreShadow(events)
	ctl.advance(w)
}

// observe folds the window guardrail counters. Sheds are excluded from
// attainment — a shed is load refusal, not policy quality — but counted
// separately so windowBad can spot shed-starvation; best-effort traffic is
// excluded entirely, it carries no SLO to attain.
func (ctl *Controller) observe(events []serve.OutcomeEvent) window {
	var w window
	for _, ev := range events {
		if ev.Canary && ev.Kind == serve.KindServed {
			w.canary++
		}
		if ev.Class == serve.ClassBestEffort {
			continue
		}
		if ev.Kind == serve.KindShed {
			w.shed++
			continue
		}
		w.total++
		if ev.SLOMet {
			w.met++
		}
	}
	return w
}

// train ingests live transitions into the replay buffer and runs targeted
// SUPREME rounds on the constraint cells the gateway actually saw.
func (ctl *Controller) train(events []serve.OutcomeEvent) {
	if ctl.trainer == nil {
		return
	}
	seen := map[string]bool{}
	var cells []env.Constraint
	note := func(c env.Constraint) {
		if len(cells) >= maxCellsPerTick {
			return
		}
		k := fmt.Sprint(ctl.trainer.Buffer.KeyOf(c))
		if !seen[k] {
			seen[k] = true
			cells = append(cells, c)
		}
	}
	for _, ev := range events {
		switch ev.Kind {
		case serve.KindServed:
			note(ev.Constraint)
			if len(ev.Choices) > 0 {
				if _, err := ctl.trainer.IngestLive(ev.Constraint, ev.Choices, ev.LatencyMs); err != nil {
					ctl.cfg.Log("adapt: live ingest failed: %v", err)
				}
			}
		case serve.KindShed, serve.KindDropped, serve.KindFailed:
			// No resolved constraint on these events; reconstruct the cell
			// from the SLO and current link state so collapsed admission
			// still steers training at the live regime.
			note(ctl.rt.ConstraintFor(ev.SLO))
		}
	}
	if len(cells) == 0 {
		return
	}
	if err := ctl.trainer.TrainOn(cells, ctl.cfg.TrainRounds); err != nil {
		ctl.cfg.Log("adapt: retrain failed: %v", err)
	}
}

// scoreShadow scores the staged candidate against the incumbent on the
// constraints of live served requests — without serving a single candidate
// decision. Both sides are evaluated under the cost model (apples to
// apples); measured outcomes enter the loop through the replay buffer, not
// here.
func (ctl *Controller) scoreShadow(events []serve.OutcomeEvent) {
	rs := ctl.routing.Load()
	if rs.mode != ModeShadow || rs.candidate == nil || ctl.trainer == nil {
		return
	}
	e := ctl.trainer.Policy.Env
	scored, wins := 0, 0
	for _, ev := range events {
		if ev.Kind != serve.KindServed || scored >= maxShadowPerTick {
			continue
		}
		cd, err := rs.candidate.Decide(ev.Constraint)
		if err != nil {
			continue
		}
		id, err := rs.incumbent.Decide(ev.Constraint)
		if err != nil {
			continue
		}
		cOut, err := e.Evaluate(ev.Constraint, cd)
		if err != nil {
			continue
		}
		iOut, err := e.Evaluate(ev.Constraint, id)
		if err != nil {
			continue
		}
		scored++
		if cOut.SLOMet && (!iOut.SLOMet || cOut.Reward >= iOut.Reward) {
			wins++
		}
	}
	if scored == 0 {
		return
	}
	ctl.shadowScored.Add(uint64(scored))
	ctl.mu.Lock()
	ctl.shadowTotal += scored
	ctl.shadowWins += wins
	ctl.mu.Unlock()
}

// advance evaluates the guarded state machine for one window. All
// transitions happen here, under mu, and each transition installs a fresh
// routing snapshot.
func (ctl *Controller) advance(w window) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	if ctl.pinned {
		return
	}
	rs := ctl.routing.Load()
	switch rs.mode {
	case ModeIncumbent:
		if ctl.watchLeft > 0 {
			// Post-promotion probation: the freshly promoted policy must hold
			// attainment for RollbackWindows windows before it becomes the
			// new last-good.
			if ctl.windowBad(w) {
				ctl.badWindows++
			} else {
				ctl.badWindows = 0
			}
			if ctl.badWindows >= ctl.cfg.RollbackWindows {
				ctl.rollbackLocked(rs, "post-promotion attainment collapse")
				return
			}
			ctl.watchLeft--
			if ctl.watchLeft == 0 {
				ctl.lastGood, ctl.lastGoodVer = rs.incumbent, rs.incumbentVer
				ctl.rollbackStreak = 0
				ctl.saveManifestLocked(rs)
				ctl.cfg.Log("adapt: policy v%d settled as last-good", rs.incumbentVer)
			}
			return
		}
		ctl.stageCandidateLocked(rs)
	case ModeShadow:
		if ctl.shadowTotal < ctl.cfg.MinShadow {
			return
		}
		winFrac := float64(ctl.shadowWins) / float64(ctl.shadowTotal)
		if winFrac < ctl.cfg.ShadowWinFrac {
			// Candidate lost its shadow evaluation: discard it and stage a
			// fresh snapshot of the (since retrained) working policy.
			ctl.cfg.Log("adapt: candidate v%d lost shadow (%d/%d wins); restaging",
				rs.candidateVer, ctl.shadowWins, ctl.shadowTotal)
			ctl.stageCandidateLocked(rs)
			return
		}
		if ctl.cfg.Brownout != nil && ctl.cfg.Brownout() {
			// Promotion toward canary is deferred under brownout: the gateway
			// is shedding to survive, and a policy change mid-brownout would
			// be evaluated against overload noise, not policy quality.
			ctl.cfg.Log("adapt: candidate v%d passed shadow but gateway in brownout; deferring canary", rs.candidateVer)
			return
		}
		next := &routing{
			mode:           ModeCanary,
			incumbent:      rs.incumbent,
			incumbentVer:   rs.incumbentVer,
			candidate:      rs.candidate,
			candidateVer:   rs.candidateVer,
			canaryPermille: uint64(ctl.cfg.CanaryFrac * 1000),
		}
		if next.canaryPermille < 1 {
			next.canaryPermille = 1
		}
		ctl.routing.Store(next)
		ctl.canarySeen, ctl.badWindows = 0, 0
		ctl.cfg.Log("adapt: candidate v%d shadow %d/%d wins → canary at %.1f%%",
			rs.candidateVer, ctl.shadowWins, ctl.shadowTotal, float64(next.canaryPermille)/10)
	case ModeCanary:
		if ctl.windowBad(w) {
			ctl.badWindows++
		} else {
			ctl.badWindows = 0
		}
		if ctl.badWindows >= ctl.cfg.RollbackWindows {
			ctl.rollbackLocked(rs, "canary attainment collapse")
			return
		}
		ctl.canarySeen += w.canary
		if ctl.canarySeen >= ctl.cfg.MinCanary && ctl.badWindows == 0 {
			if ctl.cfg.Brownout != nil && ctl.cfg.Brownout() {
				ctl.cfg.Log("adapt: candidate v%d canary complete but gateway in brownout; deferring promotion", rs.candidateVer)
				return
			}
			ctl.promoteLocked(rs)
		}
	}
}

// stageCandidateLocked snapshots the working policy as the next shadow
// candidate. Caller holds mu.
func (ctl *Controller) stageCandidateLocked(rs *routing) {
	if ctl.trainer == nil {
		return
	}
	ctl.version++
	cand := policyDecider{p: ctl.trainer.Policy.Clone()}
	ctl.routing.Store(&routing{
		mode:         ModeShadow,
		incumbent:    rs.incumbent,
		incumbentVer: rs.incumbentVer,
		candidate:    cand,
		candidateVer: ctl.version,
	})
	ctl.shadowWins, ctl.shadowTotal = 0, 0
	ctl.badWindows = 0
}

// promoteLocked makes the candidate the incumbent: hot-swap behind the
// atomic pointer, strategy cache invalidated, wait estimates reset (the
// decision regime just changed), snapshot and manifest persisted. The old
// incumbent stays last-good until the probation settles. Caller holds mu.
func (ctl *Controller) promoteLocked(rs *routing) {
	next := &routing{
		mode:         ModeIncumbent,
		incumbent:    rs.candidate,
		incumbentVer: rs.candidateVer,
	}
	ctl.routing.Store(next)
	ctl.promotions.Add(1)
	ctl.watchLeft = ctl.cfg.RollbackWindows
	ctl.badWindows = 0
	ctl.invalidateServing()
	ctl.persistLocked(next)
	ctl.cfg.Log("adapt: promoted policy v%d (canary %d outcomes clean)", next.incumbentVer, ctl.canarySeen)
}

// rollbackLocked abandons the candidate (canary rollback) or reverts to the
// last-good incumbent (post-promotion rollback). Two consecutive rollbacks
// trip the circuit breaker: the frozen last-good policy is pinned and no
// further candidates are staged. Caller holds mu.
func (ctl *Controller) rollbackLocked(rs *routing, reason string) {
	next := &routing{
		mode:         ModeIncumbent,
		incumbent:    ctl.lastGood,
		incumbentVer: ctl.lastGoodVer,
	}
	ctl.routing.Store(next)
	ctl.rollbacks.Add(1)
	ctl.rollbackStreak++
	ctl.badWindows = 0
	ctl.watchLeft = 0
	ctl.canarySeen = 0
	if ctl.rollbackStreak >= ctl.cfg.MaxRollbacks {
		ctl.pinned = true
	}
	// Unlearn the bad direction: reset the working policy to the last-good
	// parameters, so the next candidate does not restage the same regression.
	if ctl.trainer != nil {
		if pd, ok := ctl.lastGood.(policyDecider); ok {
			src, dst := pd.p.Params(), ctl.trainer.Policy.Params()
			for i := range src {
				copy(dst[i].W.Data, src[i].W.Data)
			}
		}
	}
	ctl.invalidateServing()
	ctl.persistLocked(next)
	ctl.cfg.Log("adapt: rolled back to policy v%d (%s; streak %d, pinned %v)",
		next.incumbentVer, reason, ctl.rollbackStreak, ctl.pinned)
}

// invalidateServing clears state learned under the previous decision regime:
// cached strategies (attributed to the wrong policy version) and the
// gateway's queue-wait estimates (batch cost just changed).
func (ctl *Controller) invalidateServing() {
	ctl.rt.InvalidateStrategies()
	if ctl.gw != nil {
		ctl.gw.ResetWaitEstimates()
	}
}

// persistLocked writes the incumbent's checkpoint (versioned + current) and
// the manifest. Checkpoint first, manifest last: a manifest never references
// a snapshot that is not already durable. Caller holds mu.
func (ctl *Controller) persistLocked(rs *routing) {
	if ctl.cfg.Dir == "" {
		return
	}
	if pd, ok := rs.incumbent.(policyDecider); ok {
		params := pd.p.Params()
		if err := nn.SaveParams(ctl.versionCkptPath(rs.incumbentVer), params); err != nil {
			ctl.cfg.Log("adapt: snapshot v%d save failed: %v", rs.incumbentVer, err)
			return
		}
		if err := nn.SaveParams(ctl.currentCkptPath(), params); err != nil {
			ctl.cfg.Log("adapt: current snapshot save failed: %v", err)
			return
		}
	}
	ctl.saveManifestLocked(rs)
}

func (ctl *Controller) saveManifestLocked(rs *routing) {
	if ctl.cfg.Dir == "" {
		return
	}
	m := Manifest{
		Current:        rs.incumbentVer,
		LastGood:       ctl.lastGoodVer,
		Promotions:     ctl.promotions.Load(),
		Rollbacks:      ctl.rollbacks.Load(),
		RollbackStreak: uint8(min(ctl.rollbackStreak, 255)),
		Pinned:         ctl.pinned,
	}
	if err := SaveManifest(ctl.manifestPath(), m); err != nil {
		ctl.cfg.Log("adapt: manifest save failed: %v", err)
	}
}

// ForceCandidate stages an explicit decider as the shadow candidate — a test
// hook for injecting known-good or known-bad candidates.
func (ctl *Controller) ForceCandidate(d runtime.Decider) uint64 {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	rs := ctl.routing.Load()
	ctl.version++
	ctl.routing.Store(&routing{
		mode:         ModeShadow,
		incumbent:    rs.incumbent,
		incumbentVer: rs.incumbentVer,
		candidate:    d,
		candidateVer: ctl.version,
	})
	ctl.shadowWins, ctl.shadowTotal = 0, 0
	ctl.badWindows = 0
	return ctl.version
}

// ForceCanary advances the staged candidate to canary immediately, skipping
// the shadow gate. No-op without a candidate.
func (ctl *Controller) ForceCanary() {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	rs := ctl.routing.Load()
	if rs.candidate == nil {
		return
	}
	permille := uint64(ctl.cfg.CanaryFrac * 1000)
	if permille < 1 {
		permille = 1
	}
	ctl.routing.Store(&routing{
		mode:           ModeCanary,
		incumbent:      rs.incumbent,
		incumbentVer:   rs.incumbentVer,
		candidate:      rs.candidate,
		candidateVer:   rs.candidateVer,
		canaryPermille: permille,
	})
	ctl.canarySeen, ctl.badWindows = 0, 0
}

// ForcePromote promotes the staged candidate immediately. No-op without a
// candidate or when pinned.
func (ctl *Controller) ForcePromote() {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	rs := ctl.routing.Load()
	if rs.candidate == nil || ctl.pinned {
		return
	}
	ctl.promoteLocked(rs)
}

// ForceRollback triggers an immediate rollback, abandoning any candidate and
// reverting to last-good.
func (ctl *Controller) ForceRollback(reason string) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	ctl.rollbackLocked(ctl.routing.Load(), reason)
}
