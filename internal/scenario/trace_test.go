package scenario

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/testutil"
)

func encodeBin(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Seed: 42,
		Events: []Event{
			{At: 0, Kind: EvRequest, SLOType: env.LatencySLO, SLOValue: 250, Resolution: 32, Model: "resnet50"},
			{At: 5 * time.Millisecond, Kind: EvSetDelay, Device: 1, Value: 80},
			{At: 7 * time.Millisecond, Kind: EvSetLoss, Device: 0, Value: 0.05, Seed: 9},
			{At: 8 * time.Millisecond, Kind: EvSetCorrupt, Device: 0, Value: 0.01, Seed: 3},
			{At: 9 * time.Millisecond, Kind: EvSetRate, Device: 1, Value: 1e6},
			{At: 10 * time.Millisecond, Kind: EvDeviceLeave, Device: 1},
			{At: 12 * time.Millisecond, Kind: EvRequest, SLOType: env.AccuracySLO, SLOValue: 70, Resolution: 28, Model: "mobilenetv3-large"},
			{At: 13 * time.Millisecond, Kind: EvSlowCompute, Device: 0, Value: 10},
			{At: 14 * time.Millisecond, Kind: EvComputeError, Device: 0, Value: 0.3, Seed: 7},
			{At: 15 * time.Millisecond, Kind: EvBlackhole, Device: 0, Value: 50},
			{At: 16 * time.Millisecond, Kind: EvRestart, Device: 1},
			{At: 17 * time.Millisecond, Kind: EvAsymDegrade, Device: 0, Value: 200, Seed: 8192},
			{At: 18 * time.Millisecond, Kind: EvSlowCompute, Device: 0, Value: 1},
			{At: 19 * time.Millisecond, Kind: EvComputeError, Device: 0},
			{At: 20 * time.Millisecond, Kind: EvDeviceJoin, Device: 1},
			{At: 21 * time.Millisecond, Kind: EvMassKill, Value: 0.5},
			{At: 25 * time.Millisecond, Kind: EvMassRecover},
			{At: 26 * time.Millisecond, Kind: EvRestartStorm, Value: 1},
		},
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := sampleTrace()
	b := encodeBin(t, tr)
	got, err := DecodeBinary(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != tr.Name || got.Seed != tr.Seed || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
	// Re-encode must be byte-identical: the codec is canonical.
	if b2 := encodeBin(t, got); !bytes.Equal(b, b2) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != tr.Name || got.Seed != tr.Seed || len(got.Events) != len(tr.Events) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestTraceVersionError(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := &Trace{Name: "v", Events: []Event{{Kind: EvDeviceJoin}}}
	b := encodeBin(t, tr)
	b[4] = 99 // version byte follows the 4-byte magic
	_, err := DecodeBinary(bytes.NewReader(b))
	var ve *TraceVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want TraceVersionError, got %v", err)
	}
	if ve.Got != 99 || ve.Want != traceWireVersion {
		t.Fatalf("bad fields: %+v", ve)
	}

	var jbuf bytes.Buffer
	if err := tr.EncodeJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	j := bytes.Replace(jbuf.Bytes(), []byte(`"version": 1`), []byte(`"version": 9`), 1)
	_, err = DecodeJSON(bytes.NewReader(j))
	if !errors.As(err, &ve) {
		t.Fatalf("want TraceVersionError from JSON decoder, got %v", err)
	}
}

func TestDecodeBinaryRejects(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := sampleTrace()
	good := encodeBin(t, tr)

	t.Run("short", func(t *testing.T) {
		if _, err := DecodeBinary(bytes.NewReader(good[:3])); err == nil {
			t.Fatal("want error on truncated input")
		}
	})
	t.Run("magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := DecodeBinary(bytes.NewReader(b)); err == nil {
			t.Fatal("want error on bad magic")
		}
	})
	t.Run("trailing", func(t *testing.T) {
		b := append(append([]byte(nil), good...), 0)
		if _, err := DecodeBinary(bytes.NewReader(b)); err == nil {
			t.Fatal("want error on trailing bytes")
		}
	})
	t.Run("count-overclaim", func(t *testing.T) {
		// Claim far more events than the buffer could hold: the decoder must
		// reject before allocating.
		b := append([]byte(nil), good...)
		off := 4 + 1 + 1 + len(tr.Name) + 8
		binary.LittleEndian.PutUint32(b[off:], 1<<19)
		if _, err := DecodeBinary(bytes.NewReader(b)); err == nil {
			t.Fatal("want error on count overclaim")
		}
	})
	t.Run("truncated-event", func(t *testing.T) {
		if _, err := DecodeBinary(bytes.NewReader(good[:len(good)-5])); err == nil {
			t.Fatal("want error on truncated event")
		}
	})
}

func TestEncodeRejectsInvalid(t *testing.T) {
	testutil.CheckGoroutines(t)
	var buf bytes.Buffer
	t.Run("non-monotonic", func(t *testing.T) {
		bad := sampleTrace()
		bad.Events[3].At = 0
		if err := bad.EncodeBinary(&buf); err == nil {
			t.Fatal("want error on non-monotonic events")
		}
	})
	t.Run("request-without-resolution", func(t *testing.T) {
		bad := &Trace{Events: []Event{{Kind: EvRequest, SLOType: env.LatencySLO}}}
		if err := bad.EncodeBinary(&buf); err == nil {
			t.Fatal("want error on request with zero resolution")
		}
	})
	t.Run("device-out-of-range", func(t *testing.T) {
		bad := &Trace{Events: []Event{{Kind: EvDeviceLeave, Device: MaxTraceDevices}}}
		if err := bad.EncodeBinary(&buf); err == nil {
			t.Fatal("want error on out-of-range device")
		}
	})
	t.Run("unknown-kind", func(t *testing.T) {
		bad := &Trace{Events: []Event{{Kind: numKinds}}}
		if err := bad.EncodeBinary(&buf); err == nil {
			t.Fatal("want error on unknown kind")
		}
	})
	t.Run("mass-kill-bad-fraction", func(t *testing.T) {
		for _, frac := range []float64{0, -0.5, 1.5} {
			bad := &Trace{Events: []Event{{Kind: EvMassKill, Value: frac}}}
			if err := bad.EncodeBinary(&buf); err == nil {
				t.Fatalf("want error on mass-kill fraction %v", frac)
			}
		}
	})
	t.Run("restart-storm-bad-fraction", func(t *testing.T) {
		bad := &Trace{Events: []Event{{Kind: EvRestartStorm, Value: 2}}}
		if err := bad.EncodeBinary(&buf); err == nil {
			t.Fatal("want error on restart-storm fraction 2")
		}
	})
}
