package scenario

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"murmuration/internal/runtime"
	"murmuration/internal/serve"
	"murmuration/internal/tensor"
)

// Submitter is the surface the runner drives load at. *serve.Gateway
// satisfies it in-process; WireSubmitter adapts a serve.Client for driving a
// remote gateway over rpcx.
type Submitter interface {
	Submit(x *tensor.Tensor, slo runtime.SLO) (serve.Outcome, error)
}

// WireSubmitter drives a remote gateway through its rpcx client. The
// degradation rung does not travel the infer wire, so outcomes report
// Rung = -1 (unknown) and the rung histogram comes from the gateway's stats
// instead.
type WireSubmitter struct {
	Client *serve.Client
	// Timeout bounds each call (0 waits indefinitely; see
	// rpcx.Client.CallTimeout for the poisoning caveat).
	Timeout time.Duration
}

// Submit implements Submitter.
func (w *WireSubmitter) Submit(x *tensor.Tensor, slo runtime.SLO) (serve.Outcome, error) {
	res, err := w.Client.Infer(x, slo, w.Timeout)
	if err != nil {
		return serve.Outcome{Rung: -1, Err: err}, err
	}
	return serve.Outcome{
		Logits:     res.Logits,
		QueueWait:  res.QueueWait,
		ExecTime:   res.ExecTime,
		DecideTime: res.DecideTime,
		BatchSize:  res.BatchSize,
		CacheHit:   res.CacheHit,
		Rung:       -1,
	}, nil
}

// RunOptions parameterizes Run.
type RunOptions struct {
	// Submitter receives every request arrival. Required.
	Submitter Submitter
	// Orchestrator receives every environment event. Optional: with none
	// attached, environment events are counted as skipped (and OnEnvSkipped
	// fires) instead of failing the run — a loadgen pointed at a remote
	// gateway has no reach into that deployment's shapers.
	Orchestrator *Orchestrator
	// Speed compresses (>1) or dilates (<1) the trace clock. Default 1.
	Speed float64
	// Channels is the synthesized input's channel count (default 3).
	Channels int
	// MaxInFlight bounds concurrently outstanding submissions — open-loop
	// arrivals do not wait for completions, but memory must stay bounded
	// (default 1024). When the bound is hit the runner blocks, which shows
	// up as late arrivals rather than lost ones.
	MaxInFlight int
	// OnEnvSkipped observes environment events dropped for lack of an
	// orchestrator.
	OnEnvSkipped func(Event)
}

// RunResult summarizes a replay.
type RunResult struct {
	Requests   uint64
	EnvApplied uint64
	EnvSkipped uint64
	Elapsed    time.Duration
}

// Run replays a trace open-loop: request arrivals are dispatched at their
// trace offsets (scaled by Speed) on goroutines that do not wait for prior
// outcomes — exactly how independent clients behave — and environment events
// are applied inline through the orchestrator at the same offsets. Outcomes
// land in the scorer as they complete; Run returns once every submission has
// finished.
//
// Input tensors are synthesized deterministically from the trace seed and
// the request's index, at the request's resolution, so two replays of the
// same trace submit identical payloads.
func Run(t *Trace, o RunOptions, sc *Scorer) (*RunResult, error) {
	if o.Submitter == nil {
		return nil, fmt.Errorf("scenario: RunOptions.Submitter is required")
	}
	if o.Speed <= 0 {
		o.Speed = 1
	}
	if o.Channels <= 0 {
		o.Channels = 3
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 1024
	}
	sem := make(chan struct{}, o.MaxInFlight)
	var wg sync.WaitGroup
	res := &RunResult{}
	start := time.Now()
	for i, ev := range t.Events {
		due := start.Add(time.Duration(float64(ev.At) / o.Speed))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if !ev.IsRequest() {
			if o.Orchestrator == nil {
				res.EnvSkipped++
				if o.OnEnvSkipped != nil {
					o.OnEnvSkipped(ev)
				}
				continue
			}
			if err := o.Orchestrator.Apply(ev); err != nil {
				wg.Wait()
				return res, err
			}
			res.EnvApplied++
			continue
		}
		res.Requests++
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, ev Event) {
			defer func() { <-sem; wg.Done() }()
			x := requestTensor(t.Seed, i, o.Channels, ev.Resolution)
			slo := ev.SLO()
			t0 := time.Now()
			out, err := o.Submitter.Submit(x, slo)
			if sc != nil {
				sc.Record(slo, out.Rung, time.Since(t0), err)
			}
		}(i, ev)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}

// requestTensor synthesizes the deterministic input for request index i of a
// trace: a seeded normal image at the request's resolution.
func requestTensor(traceSeed int64, i, channels, resolution int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(traceSeed*1_000_003 + int64(i)))
	x := tensor.New(1, channels, resolution, resolution)
	x.RandNormal(rng, 0.5)
	return x
}
