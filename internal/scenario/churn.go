package scenario

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/netem"
	"murmuration/internal/runtime"
)

// ErrNotEnvironment is returned when a request event is handed to the
// orchestrator: arrivals belong to the runner, not the churn path.
var ErrNotEnvironment = errors.New("scenario: request events are workload, not environment")

// Target binds one trace device index to the live handles its environment
// events act on. Every field is optional; events with no applicable handle
// are an error so a mis-wired scenario fails loudly instead of silently
// testing nothing.
type Target struct {
	// Shaper is the device's netem hook: delay, rate, loss, corruption, and
	// blackhole transitions apply here.
	Shaper *netem.Shaper
	// Leave is called on EvDeviceLeave (e.g. kill the daemon). When nil,
	// the shaper is blackholed for leaveBlackhole instead — the link-level
	// emulation of a device that went dark.
	Leave func()
	// Join is called on EvDeviceJoin (e.g. restart the daemon). When nil,
	// any active blackhole on the shaper is cleared.
	Join func()
	// Compute is the device's compute-fault hook: slow-compute and
	// compute-error transitions apply here (the daemon-side injector
	// wrapping Executor.ExecBlockHandler).
	Compute *runtime.ComputeInjector
	// Restart is called on EvRestart (replace the daemon process so it
	// comes back under a fresh incarnation). There is no shaper fallback:
	// a restart is a process identity change, not a link condition, so a
	// restart event without a hook is a mis-wired scenario.
	Restart func()
	// Asym is called on EvAsymDegrade with the stall threshold in bytes and
	// the window duration (d <= 0 clears). When nil, the shaper's
	// large-frame stall is opened on the Downstream direction instead —
	// the direction tensor responses ride.
	Asym func(minBytes int, d time.Duration)
}

// leaveBlackhole is the outage window a hook-less EvDeviceLeave opens; long
// enough that the device stays dark until an explicit EvDeviceJoin clears it.
const leaveBlackhole = 24 * time.Hour

// DefaultAsymMinBytes is the stall threshold an EvAsymDegrade with Seed <= 0
// selects: large enough that pings, heartbeats, and hello frames pass, small
// enough that every tensor frame wedges.
const DefaultAsymMinBytes = 4096

// Orchestrator replays a trace's environment events against live daemons:
// netem transitions go to each device's shaper, leave/join churn goes to the
// kill/restart hooks (and optionally to the failure detector). It is safe
// for concurrent use.
type Orchestrator struct {
	mu      sync.Mutex
	targets []Target
	cluster *cluster.Manager
	applied uint64
	// massKilled remembers which devices the last EvMassKill removed, so a
	// following EvMassRecover revives exactly that set — no per-device
	// bookkeeping in the trace.
	massKilled []int

	// OnApply, when set, observes every successfully applied event
	// (called outside the lock, in apply order per caller).
	OnApply func(Event)
}

// NewOrchestrator binds trace device i to targets[i].
func NewOrchestrator(targets []Target) *Orchestrator {
	return &Orchestrator{targets: targets}
}

// AttachCluster optionally wires the failure detector in: EvDeviceLeave
// additionally marks the member Down so detection does not wait out the
// heartbeat silence (an operator-scripted removal is an unambiguous signal,
// unlike an organic failure). Recovery still flows through heartbeats — the
// detector, not the script, decides when a device is trustworthy again.
func (o *Orchestrator) AttachCluster(m *cluster.Manager) {
	o.mu.Lock()
	o.cluster = m
	o.mu.Unlock()
}

// Applied returns how many environment events have been applied so far.
func (o *Orchestrator) Applied() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.applied
}

// Apply dispatches one environment event to its device's live handles.
func (o *Orchestrator) Apply(ev Event) error {
	if ev.IsRequest() {
		return ErrNotEnvironment
	}
	switch ev.Kind {
	case EvMassKill, EvMassRecover, EvRestartStorm:
		// Fleet-wide events; Device is ignored.
		if err := o.applyMass(ev); err != nil {
			return err
		}
		o.noteApplied(ev)
		return nil
	}
	o.mu.Lock()
	if ev.Device < 0 || ev.Device >= len(o.targets) {
		o.mu.Unlock()
		return fmt.Errorf("scenario: event targets device %d, orchestrator has %d", ev.Device, len(o.targets))
	}
	tgt := o.targets[ev.Device]
	mgr := o.cluster
	o.mu.Unlock()

	sh := tgt.Shaper
	needShaper := func() error {
		if sh == nil {
			return fmt.Errorf("scenario: %v event for device %d, but no shaper bound", ev.Kind, ev.Device)
		}
		return nil
	}
	switch ev.Kind {
	case EvSetDelay:
		if err := needShaper(); err != nil {
			return err
		}
		sh.SetDelay(time.Duration(ev.Value * float64(time.Millisecond)))
	case EvSetRate:
		if err := needShaper(); err != nil {
			return err
		}
		sh.SetRate(ev.Value)
	case EvSetLoss:
		if err := needShaper(); err != nil {
			return err
		}
		sh.SetLoss(ev.Value, ev.Seed)
	case EvSetCorrupt:
		if err := needShaper(); err != nil {
			return err
		}
		sh.SetCorrupt(ev.Value, ev.Seed)
	case EvBlackhole:
		if err := needShaper(); err != nil {
			return err
		}
		sh.Blackhole(time.Duration(ev.Value * float64(time.Millisecond)))
	case EvSlowCompute:
		if tgt.Compute == nil {
			return fmt.Errorf("scenario: %v event for device %d, but no compute injector bound", ev.Kind, ev.Device)
		}
		tgt.Compute.SetSlowdown(ev.Value)
	case EvComputeError:
		if tgt.Compute == nil {
			return fmt.Errorf("scenario: %v event for device %d, but no compute injector bound", ev.Kind, ev.Device)
		}
		tgt.Compute.SetErrorRate(ev.Value, ev.Seed)
	case EvRestart:
		if tgt.Restart == nil {
			return fmt.Errorf("scenario: restart event for device %d, but no restart hook bound", ev.Device)
		}
		tgt.Restart()
	case EvAsymDegrade:
		minBytes := int(ev.Seed)
		if minBytes <= 0 {
			minBytes = DefaultAsymMinBytes
		}
		dur := time.Duration(ev.Value * float64(time.Millisecond))
		switch {
		case tgt.Asym != nil:
			tgt.Asym(minBytes, dur)
		case sh != nil:
			sh.SetStallLarge(netem.Downstream, minBytes, dur)
		default:
			return fmt.Errorf("scenario: asym-degrade for device %d, but no asym hook or shaper bound", ev.Device)
		}
	case EvDeviceLeave:
		switch {
		case tgt.Leave != nil:
			tgt.Leave()
		case sh != nil:
			sh.Blackhole(leaveBlackhole)
		default:
			return fmt.Errorf("scenario: device-leave for device %d, but no leave hook or shaper bound", ev.Device)
		}
		if mgr != nil {
			mgr.MarkDown(ev.Device)
		}
	case EvDeviceJoin:
		switch {
		case tgt.Join != nil:
			tgt.Join()
		case sh != nil:
			sh.Blackhole(0)
		default:
			return fmt.Errorf("scenario: device-join for device %d, but no join hook or shaper bound", ev.Device)
		}
	default:
		return fmt.Errorf("scenario: unknown event kind %d", ev.Kind)
	}
	o.noteApplied(ev)
	return nil
}

// noteApplied records a successful apply and fires the observer hook
// (outside the lock).
func (o *Orchestrator) noteApplied(ev Event) {
	o.mu.Lock()
	o.applied++
	hook := o.OnApply
	o.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// applyMass dispatches one fleet-wide event. Hooks are validated for every
// affected device before any is touched, so a mis-wired scenario fails
// without leaving the fleet half-killed.
func (o *Orchestrator) applyMass(ev Event) error {
	o.mu.Lock()
	targets := append([]Target(nil), o.targets...)
	mgr := o.cluster
	killed := append([]int(nil), o.massKilled...)
	o.mu.Unlock()

	// ceil(frac*N): a mass event always claims at least one device.
	count := func(frac float64) int {
		n := int(math.Ceil(frac * float64(len(targets))))
		if n > len(targets) {
			n = len(targets)
		}
		return n
	}

	switch ev.Kind {
	case EvMassKill:
		victims := make([]int, 0, count(ev.Value))
		for i := 0; i < count(ev.Value); i++ {
			if targets[i].Leave == nil && targets[i].Shaper == nil {
				return fmt.Errorf("scenario: mass-kill victim %d has no leave hook or shaper bound", i)
			}
			victims = append(victims, i)
		}
		for _, i := range victims {
			if tgt := targets[i]; tgt.Leave != nil {
				tgt.Leave()
			} else {
				tgt.Shaper.Blackhole(leaveBlackhole)
			}
		}
		// One batched Down: subscribers see the correlated loss as a single
		// K-member notification, not K races.
		if mgr != nil {
			mgr.MarkDownBatch(victims)
		}
		o.mu.Lock()
		o.massKilled = victims
		o.mu.Unlock()
	case EvMassRecover:
		for _, i := range killed {
			if targets[i].Join == nil && targets[i].Shaper == nil {
				return fmt.Errorf("scenario: mass-recover device %d has no join hook or shaper bound", i)
			}
		}
		for _, i := range killed {
			if tgt := targets[i]; tgt.Join != nil {
				tgt.Join()
			} else {
				tgt.Shaper.Blackhole(0)
			}
		}
		// The script just revived these devices, so — unlike organic recovery,
		// which must wait for heartbeat evidence — the batched Up override is
		// sound, and it is what lets the consumer stagger reintegration.
		if mgr != nil && len(killed) > 0 {
			mgr.MarkUpBatch(killed)
		}
		o.mu.Lock()
		o.massKilled = nil
		o.mu.Unlock()
	case EvRestartStorm:
		for i := 0; i < count(ev.Value); i++ {
			if targets[i].Restart == nil {
				return fmt.Errorf("scenario: restart-storm device %d has no restart hook bound", i)
			}
		}
		for i := 0; i < count(ev.Value); i++ {
			targets[i].Restart()
		}
	}
	return nil
}

// Player replays a trace's environment timeline through an orchestrator on
// a logical clock: Advance(t) synchronously applies every environment event
// with offset <= t, in order, without sleeping. Tests use it to script fault
// timelines deterministically — the kill happens exactly between two phases
// of the test, not "hopefully after 50ms of wall time". A Player is not safe
// for concurrent use; drive it from one goroutine (the runner drives its own
// inline copy of this logic on the wall clock instead).
type Player struct {
	o      *Orchestrator
	events []Event
	pos    int
}

// NewPlayer extracts the trace's environment events (requests are skipped —
// they belong to the runner) for replay through o.
func NewPlayer(o *Orchestrator, t *Trace) *Player {
	p := &Player{o: o}
	for _, e := range t.Events {
		if !e.IsRequest() {
			p.events = append(p.events, e)
		}
	}
	return p
}

// Advance applies every not-yet-applied environment event with At <= to and
// returns how many were applied. The first apply error stops the replay at
// that event (a later Advance retries it).
func (p *Player) Advance(to time.Duration) (int, error) {
	applied := 0
	for p.pos < len(p.events) && p.events[p.pos].At <= to {
		if err := p.o.Apply(p.events[p.pos]); err != nil {
			return applied, err
		}
		p.pos++
		applied++
	}
	return applied, nil
}

// Finish applies every remaining environment event.
func (p *Player) Finish() (int, error) {
	if len(p.events) == 0 {
		return 0, nil
	}
	return p.Advance(p.events[len(p.events)-1].At)
}

// Remaining reports how many environment events have not yet been applied.
func (p *Player) Remaining() int { return len(p.events) - p.pos }
