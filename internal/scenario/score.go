package scenario

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"murmuration/internal/runtime"
	"murmuration/internal/serve"
)

// Scorer accumulates per-request outcomes into a per-class SLO attainment
// report. It is safe for concurrent use — the runner records from one
// goroutine per in-flight request.
type Scorer struct {
	mu      sync.Mutex
	classes [serve.NumClasses]classAgg
	rungs   map[int]uint64
}

type classAgg struct {
	requests        uint64
	served          uint64
	onTime          uint64
	late            uint64
	shed            uint64
	deadlineDropped uint64
	budgetExhausted uint64
	overloaded      uint64
	failed          uint64
	latencies       []time.Duration // served requests only
}

// NewScorer returns an empty scorer.
func NewScorer() *Scorer {
	return &Scorer{rungs: make(map[int]uint64)}
}

// Record folds in one finished request: its SLO (bucketed exactly the way
// gateway admission buckets it), the degradation rung it served at (negative
// = unknown, e.g. over the wire), the wall latency the client observed, and
// the outcome error (nil = served).
func (s *Scorer) Record(slo runtime.SLO, rung int, latency time.Duration, err error) {
	class := serve.ClassFor(slo)
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := &s.classes[class]
	agg.requests++
	if err == nil {
		agg.served++
		agg.latencies = append(agg.latencies, latency)
		if rung >= 0 {
			s.rungs[rung]++
		}
		// A latency-SLO request only attains its SLO when the answer came
		// back within the budget the client asked for.
		if class == serve.ClassLatency &&
			latency > time.Duration(slo.Value*float64(time.Millisecond)) {
			agg.late++
		} else {
			agg.onTime++
		}
		return
	}
	// Order matters: overload errors carry the "serve: shed" prefix, and
	// budget exhaustion is a flavor of deadline miss — classify the most
	// specific refusal first.
	switch {
	case serve.IsOverloaded(err):
		agg.overloaded++
	case serve.IsBudgetExhausted(err):
		agg.budgetExhausted++
	case serve.IsDeadlineMissed(err):
		agg.deadlineDropped++
	case serve.IsShed(err):
		agg.shed++
	default:
		agg.failed++
	}
}

// ClassReport is one service class's slice of a Report.
type ClassReport struct {
	Class           string  `json:"class"`
	Requests        uint64  `json:"requests"`
	Served          uint64  `json:"served"`
	OnTime          uint64  `json:"on_time"`
	Late            uint64  `json:"late"`
	Shed            uint64  `json:"shed"`
	DeadlineDropped uint64  `json:"deadline_dropped"`
	BudgetExhausted uint64  `json:"budget_exhausted"`
	Overloaded      uint64  `json:"overloaded"`
	Failed          uint64  `json:"failed"`
	Attainment      float64 `json:"attainment"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
}

// RungCount is one bar of the degradation-rung histogram.
type RungCount struct {
	Rung     int    `json:"rung"`
	Requests uint64 `json:"requests"`
}

// ClassAttainment is the gateway-side attainment for one class, computed
// from the v6 per-class counters on the stats wire.
type ClassAttainment struct {
	Class      string  `json:"class"`
	Met        uint64  `json:"met"`
	Missed     uint64  `json:"missed"`
	Attainment float64 `json:"attainment"`
}

// GatewayReport is the gateway-side counter delta over a scenario run.
type GatewayReport struct {
	Admitted         uint64 `json:"admitted"`
	Served           uint64 `json:"served"`
	Shed             uint64 `json:"shed"`
	Dropped          uint64 `json:"dropped"`
	Failed           uint64 `json:"failed"`
	DeadlineMissed   uint64 `json:"deadline_missed"`
	Degraded         uint64 `json:"degraded"`
	BudgetExhausted  uint64 `json:"budget_exhausted"`
	Overloads        uint64 `json:"overloads"`
	FailoverAttempts uint64 `json:"failover_attempts"`
	Failovers        uint64 `json:"failovers"`
	Batches          uint64 `json:"batches"`
	BatchedRequests  uint64 `json:"batched_requests"`
	// PolicyVersion is the serving policy version at the end of the run (a
	// gauge, not a delta); the four counters below attribute the adaptation
	// controller's rollout activity during the run (wire v7).
	PolicyVersion   uint64            `json:"policy_version"`
	ShadowScored    uint64            `json:"shadow_scored"`
	CanaryServed    uint64            `json:"canary_served"`
	Promotions      uint64            `json:"promotions"`
	Rollbacks       uint64            `json:"rollbacks"`
	ClassAttainment []ClassAttainment `json:"class_attainment"`
}

// GatewayDelta subtracts two stats snapshots (taken before and after a run)
// into the gateway-side section of a Report, including per-class attainment
// read straight off the v6 counters — no client-side bookkeeping.
func GatewayDelta(before, after serve.Stats) *GatewayReport {
	g := &GatewayReport{
		Admitted:         after.Admitted - before.Admitted,
		Served:           after.Served - before.Served,
		Shed:             after.Shed - before.Shed,
		Dropped:          after.Dropped - before.Dropped,
		Failed:           after.Failed - before.Failed,
		DeadlineMissed:   after.DeadlineMissed - before.DeadlineMissed,
		Degraded:         after.Degraded - before.Degraded,
		BudgetExhausted:  after.BudgetExhausted - before.BudgetExhausted,
		Overloads:        after.Overloads - before.Overloads,
		FailoverAttempts: after.FailoverAttempts - before.FailoverAttempts,
		Failovers:        after.Failovers - before.Failovers,
		Batches:          after.Batches - before.Batches,
		BatchedRequests:  after.BatchedRequests - before.BatchedRequests,
		PolicyVersion:    after.PolicyVersion,
		ShadowScored:     after.ShadowScored - before.ShadowScored,
		CanaryServed:     after.CanaryServed - before.CanaryServed,
		Promotions:       after.Promotions - before.Promotions,
		Rollbacks:        after.Rollbacks - before.Rollbacks,
	}
	for c := 0; c < serve.NumClasses; c++ {
		met := after.ClassMet[c] - before.ClassMet[c]
		missed := after.ClassMissed[c] - before.ClassMissed[c]
		att := 1.0
		if met+missed > 0 {
			att = float64(met) / float64(met+missed)
		}
		g.ClassAttainment = append(g.ClassAttainment, ClassAttainment{
			Class: serve.Class(c).String(), Met: met, Missed: missed, Attainment: att,
		})
	}
	return g
}

// Report is the machine-readable verdict of one scenario run.
type Report struct {
	Scenario string `json:"scenario"`
	// StatsWireVersion / PolicyVersion are the report header: which stats
	// frame version the gateway spoke and which policy version was serving
	// when the run ended. Set by clients that read them off the wire (the
	// load generator); zero when unknown.
	StatsWireVersion int            `json:"stats_wire_version,omitempty"`
	PolicyVersion    uint64         `json:"policy_version,omitempty"`
	Requests         uint64         `json:"requests"`
	Classes          []ClassReport  `json:"classes"`
	Rungs            []RungCount    `json:"rungs"`
	Gateway          *GatewayReport `json:"gateway,omitempty"`
}

// Report snapshots the scorer into a report. gw may be nil when no gateway
// stats delta is available (e.g. a client that could not reach the stats
// endpoint).
func (s *Scorer) Report(scenario string, gw *GatewayReport) *Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &Report{Scenario: scenario, Gateway: gw}
	for c := 0; c < serve.NumClasses; c++ {
		agg := &s.classes[c]
		r.Requests += agg.requests
		cr := ClassReport{
			Class:           serve.Class(c).String(),
			Requests:        agg.requests,
			Served:          agg.served,
			OnTime:          agg.onTime,
			Late:            agg.late,
			Shed:            agg.shed,
			DeadlineDropped: agg.deadlineDropped,
			BudgetExhausted: agg.budgetExhausted,
			Overloaded:      agg.overloaded,
			Failed:          agg.failed,
			Attainment:      attainment(serve.Class(c), agg),
		}
		if len(agg.latencies) > 0 {
			sorted := append([]time.Duration(nil), agg.latencies...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			cr.P50Ms = percentileMs(sorted, 0.50)
			cr.P95Ms = percentileMs(sorted, 0.95)
			cr.P99Ms = percentileMs(sorted, 0.99)
		}
		r.Classes = append(r.Classes, cr)
	}
	for rung, n := range s.rungs {
		r.Rungs = append(r.Rungs, RungCount{Rung: rung, Requests: n})
	}
	sort.Slice(r.Rungs, func(i, j int) bool { return r.Rungs[i].Rung < r.Rungs[j].Rung })
	return r
}

// attainment defines per-class SLO attainment: the latency class must answer
// within each request's own deadline; the accuracy and best-effort classes
// attain by being served at all (their quality constraint is enforced by
// strategy resolution, not by the clock). A class with no traffic attains
// vacuously.
func attainment(c serve.Class, agg *classAgg) float64 {
	if agg.requests == 0 {
		return 1
	}
	if c == serve.ClassLatency {
		return float64(agg.onTime) / float64(agg.requests)
	}
	return float64(agg.served) / float64(agg.requests)
}

func percentileMs(sorted []time.Duration, q float64) float64 {
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// Attainment returns the client-observed attainment for a class name
// ("latency", "accuracy", "best-effort"), 1.0 for an unknown or empty class.
func (r *Report) Attainment(class string) float64 {
	for _, c := range r.Classes {
		if c.Class == class {
			if c.Requests == 0 {
				return 1
			}
			return c.Attainment
		}
	}
	return 1
}

// Thresholds maps class name → minimum required attainment.
type Thresholds map[string]float64

// Check verifies every threshold against the client-observed attainment and
// returns one error naming all violations (nil when every class passes).
func (r *Report) Check(t Thresholds) error {
	var violations []string
	names := make([]string, 0, len(t))
	for name := range t {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if got := r.Attainment(name); got < t[name] {
			violations = append(violations,
				fmt.Sprintf("%s attainment %.3f < %.3f", name, got, t[name]))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("scenario %q: %s", r.Scenario, strings.Join(violations, "; "))
	}
	return nil
}

// JSON renders the report for files and CI artifacts.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
