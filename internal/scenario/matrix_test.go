// The CI scenario matrix: five end-to-end scenarios — steady, diurnal,
// flash-crowd, churn, combined — each synthesizing a seeded trace, replaying
// it against a live gateway, and asserting per-class SLO attainment
// thresholds plus the serving ledger. Everything is driven through the
// public scenario API, the way cmd/murmuration-loadgen drives it.
package scenario_test

import (
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/monitor"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// matrixMix is the request blend every matrix scenario uses: mostly
// latency-SLO traffic with deadlines generous enough to absorb -race and a
// loaded CI host, an accuracy slice, and a best-effort tail.
func matrixMix(latencyMs float64) scenario.Mix {
	return scenario.Mix{
		Classes: []scenario.ClassShare{
			{SLOType: env.LatencySLO, SLOValue: latencyMs, Weight: 0.5},
			{SLOType: env.AccuracySLO, SLOValue: 75, Weight: 0.3},
			{SLOType: env.LatencySLO, SLOValue: 0, Weight: 0.2}, // best-effort
		},
		Resolutions: []int{32, 28},
	}
}

// newLocalGateway builds a gateway over a local-only runtime with a fixed
// min-config decider — the single-node end of the matrix.
func newLocalGateway(t *testing.T, seed int64) *serve.Gateway {
	t.Helper()
	a := supernet.TinyArch(4)
	net := supernet.New(a, seed)
	sched := runtime.NewScheduler(net, nil)
	decider := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	})
	rt := runtime.New(sched, decider, runtime.NewStrategyCache(32, 25, 5, 10), nil)
	return serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 256,
	})
}

// runScenario synthesizes the trace, replays it at the gateway, closes and
// drains, and checks attainment thresholds plus the two ledgers (scorer-side
// and gateway-side per-class counters).
func runScenario(t *testing.T, name string, g *serve.Gateway, opts scenario.GenOptions, orch *scenario.Orchestrator, th scenario.Thresholds) *scenario.Report {
	t.Helper()
	tr, err := scenario.Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Stats()
	sc := scenario.NewScorer()
	res, err := scenario.Run(tr, scenario.RunOptions{Submitter: g, Orchestrator: orch}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != uint64(tr.Requests()) {
		t.Fatalf("runner dispatched %d of %d trace requests", res.Requests, tr.Requests())
	}
	g.Close(30 * time.Second)
	after := g.Stats()
	report := sc.Report(name, scenario.GatewayDelta(before, after))

	if js, err := report.JSON(); err != nil {
		t.Fatalf("report JSON: %v", err)
	} else {
		t.Logf("scenario %s report:\n%s", name, js)
	}
	if err := report.Check(th); err != nil {
		t.Fatal(err)
	}
	// The serving ledger and its per-class v6 refinement both balance after
	// drain: nothing vanished, and every admitted request landed in exactly
	// one met/missed bucket.
	if after.Admitted != after.Served+after.Dropped+after.Failed {
		t.Fatalf("ledger broken: %+v", after)
	}
	var met, missed uint64
	for c := 0; c < serve.NumClasses; c++ {
		met += after.ClassMet[c]
		missed += after.ClassMissed[c]
	}
	if met+missed != after.Admitted {
		t.Fatalf("per-class ledger broken: met %d + missed %d != admitted %d", met, missed, after.Admitted)
	}
	return report
}

func TestScenarioSteady(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newLocalGateway(t, 401)
	runScenario(t, "steady", g, scenario.GenOptions{
		Name: "steady", Seed: 401, Duration: 1200 * time.Millisecond,
		Process: scenario.Poisson{Rate: 120},
		Mix:     matrixMix(10_000),
	}, nil, scenario.Thresholds{
		"latency": 0.95, "accuracy": 0.95, "best-effort": 0.95,
	})
}

func TestScenarioDiurnal(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newLocalGateway(t, 402)
	runScenario(t, "diurnal", g, scenario.GenOptions{
		Name: "diurnal", Seed: 402, Duration: 1200 * time.Millisecond,
		Process: scenario.Diurnal{Base: 80, Amplitude: 60, Period: 600 * time.Millisecond},
		Mix:     matrixMix(10_000),
	}, nil, scenario.Thresholds{
		"latency": 0.95, "accuracy": 0.95, "best-effort": 0.95,
	})
}

func TestScenarioFlashCrowd(t *testing.T) {
	testutil.CheckGoroutines(t)
	g := newLocalGateway(t, 403)
	report := runScenario(t, "flash-crowd", g, scenario.GenOptions{
		Name: "flash-crowd", Seed: 403, Duration: 1200 * time.Millisecond,
		Process: scenario.FlashCrowd{
			Base:   40,
			Bursts: []scenario.Burst{{At: 400 * time.Millisecond, Duration: 300 * time.Millisecond, Multiplier: 12}},
		},
		Mix: matrixMix(10_000),
	}, nil, scenario.Thresholds{
		// The burst may legitimately shed; the floor asserts the gateway keeps
		// serving the bulk of the crowd rather than collapsing.
		"latency": 0.7, "accuracy": 0.7, "best-effort": 0.5,
	})
	if report.Requests < 60 {
		t.Fatalf("flash-crowd trace carried only %d requests — burst missing", report.Requests)
	}
}

// startDaemon brings up one device daemon: executor, monitor, cluster node.
func startDaemon(t *testing.T, net *supernet.Supernet, addr string) (*rpcx.Server, string) {
	t.Helper()
	srv := rpcx.NewServer()
	runtime.NewExecutor(net).Register(srv)
	monitor.RegisterHandlers(srv)
	cluster.NewNode().Register(srv)
	got, err := srv.Listen(addr)
	if err != nil {
		t.Fatalf("listen %q: %v", addr, err)
	}
	return srv, got
}

// liveDecider spreads tiles round-robin over every device whose link looks
// alive — the same shape the chaos tests use, so placements follow churn.
func liveDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		var live []int
		for i, bw := range c.BandwidthMbps {
			if bw > 1 {
				live = append(live, i+1)
			}
		}
		if len(live) > 0 {
			n := 0
			for k := range p.Devices {
				for ti := range p.Devices[k] {
					p.Devices[k][ti] = live[n%len(live)]
					n++
				}
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	}
}

func dialData(t *testing.T, addr string, sh *netem.Shaper) *rpcx.Client {
	t.Helper()
	c, err := rpcx.Dial(addr, sh)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	c.SetRetryPolicy(rpcx.RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond})
	c.MarkIdempotent(runtime.ExecBlockMethod, monitor.PingMethod)
	return c
}

// TestScenarioChurn replays a trace whose environment timeline kills one of
// two real device daemons mid-run and restarts it, all through the
// orchestrator's leave/join hooks. Requests carry a generous SLO; the bar is
// that churn costs latency and degradation, never Failed requests.
func TestScenarioChurn(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 404)

	srv1, addr1 := startDaemon(t, net, "127.0.0.1:0")
	srv2, addr2 := startDaemon(t, net, "127.0.0.1:0")
	defer srv2.Close()

	data1, data2 := dialData(t, addr1, nil), dialData(t, addr2, nil)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second
	rt := runtime.New(sched, liveDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)

	hb1, hb2 := dialData(t, addr1, nil), dialData(t, addr2, nil)
	defer hb1.Close()
	defer hb2.Close()
	m := cluster.NewManager(
		[]cluster.ProbeFunc{cluster.PingProbe(hb1), cluster.PingProbe(hb2)},
		cluster.Options{
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectAfter:      50 * time.Millisecond,
			DownAfter:         120 * time.Millisecond,
		})
	defer m.Close()

	g := serve.New(rt, serve.Options{Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 64})
	g.AttachCluster(m)
	m.Start()

	// The orchestrator owns the fault timeline: leave kills daemon 1's
	// process, join restarts it on the same address. AttachCluster marks the
	// member Down at the leave so detection does not race the trace clock.
	var srv1b *rpcx.Server
	orch := scenario.NewOrchestrator([]scenario.Target{{
		Leave: func() { srv1.Close() },
		Join:  func() { srv1b, _ = startDaemon(t, net, addr1) },
	}})
	orch.AttachCluster(m)
	defer func() {
		if srv1b != nil {
			srv1b.Close()
		}
	}()

	runScenario(t, "churn", g, scenario.GenOptions{
		Name: "churn", Seed: 404, Duration: 1500 * time.Millisecond,
		Process: scenario.Poisson{Rate: 40},
		Mix:     matrixMix(30_000),
		Env: []scenario.Event{
			{At: 500 * time.Millisecond, Kind: scenario.EvDeviceLeave, Device: 0},
			{At: 1000 * time.Millisecond, Kind: scenario.EvDeviceJoin, Device: 0},
		},
	}, orch, scenario.Thresholds{
		"latency": 0.9, "accuracy": 0.9, "best-effort": 0.8,
	})

	st := g.Stats()
	if st.Failed != 0 {
		t.Fatalf("churn produced %d Failed requests, want 0 (failover serves them): %+v", st.Failed, st)
	}
	if orch.Applied() != 2 {
		t.Fatalf("orchestrator applied %d events, want 2", orch.Applied())
	}
	if c := m.CountersSnapshot(); c.Recoveries < 1 {
		t.Fatalf("detector never reintegrated the restarted daemon: %+v", c)
	}
}

// TestScenarioCombined superposes a diurnal base with a flash crowd while the
// environment timeline degrades both device links mid-run and restores them —
// workload dynamics and environment dynamics in the same trace.
func TestScenarioCombined(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 405)

	srv1, addr1 := startDaemon(t, net, "127.0.0.1:0")
	srv2, addr2 := startDaemon(t, net, "127.0.0.1:0")
	defer srv1.Close()
	defer srv2.Close()

	sh1 := netem.NewShaper(0, 2*time.Millisecond)
	sh2 := netem.NewShaper(0, 2*time.Millisecond)
	data1, data2 := dialData(t, addr1, sh1), dialData(t, addr2, sh2)
	defer data1.Close()
	defer data2.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data1, data2})
	sched.RemoteTimeout = 10 * time.Second
	rt := runtime.New(sched, liveDecider(a), runtime.NewStrategyCache(32, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 5)
	rt.SetLinkState(1, 100, 5)

	g := serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 128,
		MaxRung: 3, LadderHysteresis: 4,
	})

	orch := scenario.NewOrchestrator([]scenario.Target{{Shaper: sh1}, {Shaper: sh2}})

	runScenario(t, "combined", g, scenario.GenOptions{
		Name: "combined", Seed: 405, Duration: 1500 * time.Millisecond,
		Process: scenario.Superpose{
			scenario.Diurnal{Base: 30, Amplitude: 20, Period: 750 * time.Millisecond},
			scenario.FlashCrowd{Base: 0, Bursts: []scenario.Burst{
				{At: 600 * time.Millisecond, Duration: 300 * time.Millisecond, Multiplier: 1}, // Base 0: burst adds nothing
			}},
			scenario.Pareto{Rate: 10, Alpha: 1.5},
		},
		Mix: matrixMix(30_000),
		Env: []scenario.Event{
			// Mid-run delay spike on both links, then restoration.
			{At: 500 * time.Millisecond, Kind: scenario.EvSetDelay, Device: 0, Value: 60},
			{At: 500 * time.Millisecond, Kind: scenario.EvSetDelay, Device: 1, Value: 60},
			{At: 1000 * time.Millisecond, Kind: scenario.EvSetDelay, Device: 0, Value: 2},
			{At: 1000 * time.Millisecond, Kind: scenario.EvSetDelay, Device: 1, Value: 2},
		},
	}, orch, scenario.Thresholds{
		"latency": 0.9, "accuracy": 0.9, "best-effort": 0.8,
	})

	if orch.Applied() != 4 {
		t.Fatalf("orchestrator applied %d events, want 4", orch.Applied())
	}
	st := g.Stats()
	if st.Failed != 0 {
		t.Fatalf("combined scenario produced %d Failed requests: %+v", st.Failed, st)
	}
}
