package scenario

import (
	"testing"
	"time"

	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
)

func TestOrchestratorDispatch(t *testing.T) {
	sh := netem.NewShaper(0, 0)
	o := NewOrchestrator([]Target{{Shaper: sh}})

	if err := o.Apply(Event{Kind: EvSetDelay, Device: 0, Value: 40}); err != nil {
		t.Fatal(err)
	}
	if got := sh.Delay(); got != 40*time.Millisecond {
		t.Fatalf("delay = %v, want 40ms", got)
	}
	if err := o.Apply(Event{Kind: EvBlackhole, Device: 0, Value: 1e7}); err != nil {
		t.Fatal(err)
	}
	if !sh.OutageActive() {
		t.Fatal("blackhole not active")
	}
	if err := o.Apply(Event{Kind: EvBlackhole, Device: 0, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.OutageActive() {
		t.Fatal("blackhole not cleared")
	}
	if err := o.Apply(Event{Kind: EvSetLoss, Device: 0, Value: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvSetCorrupt, Device: 0, Value: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvSetRate, Device: 0, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if got := o.Applied(); got != 6 {
		t.Fatalf("applied = %d, want 6", got)
	}
}

func TestOrchestratorLeaveJoin(t *testing.T) {
	var left, joined int
	o := NewOrchestrator([]Target{{
		Leave: func() { left++ },
		Join:  func() { joined++ },
	}})
	if err := o.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvDeviceJoin, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if left != 1 || joined != 1 {
		t.Fatalf("left=%d joined=%d, want 1/1", left, joined)
	}

	// Without hooks, leave/join fall back to a blackhole window on the shaper.
	sh := netem.NewShaper(0, 0)
	o2 := NewOrchestrator([]Target{{Shaper: sh}})
	if err := o2.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if !sh.OutageActive() {
		t.Fatal("leave without hook should blackhole the shaper")
	}
	if err := o2.Apply(Event{Kind: EvDeviceJoin, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.OutageActive() {
		t.Fatal("join without hook should clear the blackhole")
	}
}

func TestOrchestratorRestartAsym(t *testing.T) {
	var restarts int
	var gotMin int
	var gotDur time.Duration
	o := NewOrchestrator([]Target{{
		Restart: func() { restarts++ },
		Asym:    func(minBytes int, d time.Duration) { gotMin, gotDur = minBytes, d },
	}})
	if err := o.Apply(Event{Kind: EvRestart, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	if err := o.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 150, Seed: 8192}); err != nil {
		t.Fatal(err)
	}
	if gotMin != 8192 || gotDur != 150*time.Millisecond {
		t.Fatalf("asym hook got (%d, %v), want (8192, 150ms)", gotMin, gotDur)
	}
	// Seed <= 0 selects the default stall threshold.
	if err := o.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if gotMin != DefaultAsymMinBytes {
		t.Fatalf("default threshold = %d, want %d", gotMin, DefaultAsymMinBytes)
	}

	// Without a hook, asym-degrade opens the shaper's Downstream stall window.
	sh := netem.NewShaper(0, 0)
	o2 := NewOrchestrator([]Target{{Shaper: sh}})
	if err := o2.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 1e7}); err != nil {
		t.Fatal(err)
	}
	if !sh.StallActive(netem.Downstream) {
		t.Fatal("asym-degrade without hook should open the downstream stall")
	}
	if sh.StallActive(netem.Upstream) {
		t.Fatal("asym-degrade must be one-directional")
	}
	if err := o2.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.StallActive(netem.Downstream) {
		t.Fatal("asym-degrade with Value <= 0 should clear the stall")
	}
	// A restart is a process identity change; a shaper cannot emulate it.
	if err := o2.Apply(Event{Kind: EvRestart, Device: 0}); err == nil {
		t.Fatal("want error for restart event without a restart hook")
	}
}

func TestOrchestratorErrors(t *testing.T) {
	o := NewOrchestrator([]Target{{}})
	if err := o.Apply(Event{Kind: EvRequest, SLOType: env.LatencySLO, Resolution: 32}); err != ErrNotEnvironment {
		t.Fatalf("want ErrNotEnvironment, got %v", err)
	}
	if err := o.Apply(Event{Kind: EvSetDelay, Device: 5}); err == nil {
		t.Fatal("want error for out-of-range device")
	}
	if err := o.Apply(Event{Kind: EvSetDelay, Device: 0}); err == nil {
		t.Fatal("want error when no shaper is bound")
	}
	if err := o.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err == nil {
		t.Fatal("want error when no leave hook or shaper is bound")
	}
}

func TestPlayerAdvance(t *testing.T) {
	sh := netem.NewShaper(0, 0)
	o := NewOrchestrator([]Target{{Shaper: sh}})
	var order []Kind
	o.OnApply = func(ev Event) { order = append(order, ev.Kind) }

	tr := &Trace{
		Name: "player",
		Events: []Event{
			{At: 0, Kind: EvRequest, SLOType: env.LatencySLO, SLOValue: 100, Resolution: 32},
			{At: 10 * time.Millisecond, Kind: EvSetDelay, Device: 0, Value: 50},
			{At: 20 * time.Millisecond, Kind: EvRequest, SLOType: env.LatencySLO, SLOValue: 100, Resolution: 32},
			{At: 30 * time.Millisecond, Kind: EvDeviceLeave, Device: 0},
			{At: 60 * time.Millisecond, Kind: EvDeviceJoin, Device: 0},
			{At: 90 * time.Millisecond, Kind: EvSetDelay, Device: 0, Value: 0},
		},
	}
	p := NewPlayer(o, tr)
	if got := p.Remaining(); got != 4 {
		t.Fatalf("remaining = %d, want 4 (requests excluded)", got)
	}

	n, err := p.Advance(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied %d events by t=30ms, want 2", n)
	}
	if !sh.OutageActive() {
		t.Fatal("leave at t=30ms should have blackholed the shaper")
	}

	// Advancing to the same point again is a no-op.
	if n, _ := p.Advance(30 * time.Millisecond); n != 0 {
		t.Fatalf("re-advance applied %d events, want 0", n)
	}

	n, err = p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || p.Remaining() != 0 {
		t.Fatalf("finish applied %d, remaining %d; want 2, 0", n, p.Remaining())
	}
	if sh.OutageActive() {
		t.Fatal("join should have cleared the blackhole")
	}

	want := []Kind{EvSetDelay, EvDeviceLeave, EvDeviceJoin, EvSetDelay}
	if len(order) != len(want) {
		t.Fatalf("applied order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("applied order %v, want %v", order, want)
		}
	}
}
