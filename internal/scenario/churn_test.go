package scenario

import (
	"testing"
	"time"

	"murmuration/internal/cluster"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/testutil"
)

func TestOrchestratorDispatch(t *testing.T) {
	testutil.CheckGoroutines(t)
	sh := netem.NewShaper(0, 0)
	o := NewOrchestrator([]Target{{Shaper: sh}})

	if err := o.Apply(Event{Kind: EvSetDelay, Device: 0, Value: 40}); err != nil {
		t.Fatal(err)
	}
	if got := sh.Delay(); got != 40*time.Millisecond {
		t.Fatalf("delay = %v, want 40ms", got)
	}
	if err := o.Apply(Event{Kind: EvBlackhole, Device: 0, Value: 1e7}); err != nil {
		t.Fatal(err)
	}
	if !sh.OutageActive() {
		t.Fatal("blackhole not active")
	}
	if err := o.Apply(Event{Kind: EvBlackhole, Device: 0, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.OutageActive() {
		t.Fatal("blackhole not cleared")
	}
	if err := o.Apply(Event{Kind: EvSetLoss, Device: 0, Value: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvSetCorrupt, Device: 0, Value: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvSetRate, Device: 0, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if got := o.Applied(); got != 6 {
		t.Fatalf("applied = %d, want 6", got)
	}
}

func TestOrchestratorLeaveJoin(t *testing.T) {
	testutil.CheckGoroutines(t)
	var left, joined int
	o := NewOrchestrator([]Target{{
		Leave: func() { left++ },
		Join:  func() { joined++ },
	}})
	if err := o.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if err := o.Apply(Event{Kind: EvDeviceJoin, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if left != 1 || joined != 1 {
		t.Fatalf("left=%d joined=%d, want 1/1", left, joined)
	}

	// Without hooks, leave/join fall back to a blackhole window on the shaper.
	sh := netem.NewShaper(0, 0)
	o2 := NewOrchestrator([]Target{{Shaper: sh}})
	if err := o2.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if !sh.OutageActive() {
		t.Fatal("leave without hook should blackhole the shaper")
	}
	if err := o2.Apply(Event{Kind: EvDeviceJoin, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.OutageActive() {
		t.Fatal("join without hook should clear the blackhole")
	}
}

func TestOrchestratorRestartAsym(t *testing.T) {
	testutil.CheckGoroutines(t)
	var restarts int
	var gotMin int
	var gotDur time.Duration
	o := NewOrchestrator([]Target{{
		Restart: func() { restarts++ },
		Asym:    func(minBytes int, d time.Duration) { gotMin, gotDur = minBytes, d },
	}})
	if err := o.Apply(Event{Kind: EvRestart, Device: 0}); err != nil {
		t.Fatal(err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	if err := o.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 150, Seed: 8192}); err != nil {
		t.Fatal(err)
	}
	if gotMin != 8192 || gotDur != 150*time.Millisecond {
		t.Fatalf("asym hook got (%d, %v), want (8192, 150ms)", gotMin, gotDur)
	}
	// Seed <= 0 selects the default stall threshold.
	if err := o.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 10}); err != nil {
		t.Fatal(err)
	}
	if gotMin != DefaultAsymMinBytes {
		t.Fatalf("default threshold = %d, want %d", gotMin, DefaultAsymMinBytes)
	}

	// Without a hook, asym-degrade opens the shaper's Downstream stall window.
	sh := netem.NewShaper(0, 0)
	o2 := NewOrchestrator([]Target{{Shaper: sh}})
	if err := o2.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 1e7}); err != nil {
		t.Fatal(err)
	}
	if !sh.StallActive(netem.Downstream) {
		t.Fatal("asym-degrade without hook should open the downstream stall")
	}
	if sh.StallActive(netem.Upstream) {
		t.Fatal("asym-degrade must be one-directional")
	}
	if err := o2.Apply(Event{Kind: EvAsymDegrade, Device: 0, Value: 0}); err != nil {
		t.Fatal(err)
	}
	if sh.StallActive(netem.Downstream) {
		t.Fatal("asym-degrade with Value <= 0 should clear the stall")
	}
	// A restart is a process identity change; a shaper cannot emulate it.
	if err := o2.Apply(Event{Kind: EvRestart, Device: 0}); err == nil {
		t.Fatal("want error for restart event without a restart hook")
	}
}

// TestOrchestratorMassEvents covers the correlated-failure kinds: a mass
// kill removes ceil(frac*N) devices and delivers their Down transitions as
// one batch, a mass recover revives exactly that set with one batched Up,
// and a restart storm restarts ceil(frac*N) devices.
func TestOrchestratorMassEvents(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 5
	var left, joined, restarted [n]int
	targets := make([]Target, n)
	for i := range targets {
		i := i
		targets[i] = Target{
			Leave:   func() { left[i]++ },
			Join:    func() { joined[i]++ },
			Restart: func() { restarted[i]++ },
		}
	}
	o := NewOrchestrator(targets)

	probes := make([]cluster.ProbeFunc, n)
	for i := range probes {
		probes[i] = func(timeout time.Duration) (time.Duration, uint64, error) {
			return time.Millisecond, 0, nil
		}
	}
	m := cluster.NewManager(probes, cluster.Options{})
	defer m.Close()
	batches := m.SubscribeBatch()
	o.AttachCluster(m)

	// 0.5 of 5 devices → ceil = 3 victims, lowest indices first.
	if err := o.Apply(Event{Kind: EvMassKill, Value: 0.5}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 0
		if i < 3 {
			want = 1
		}
		if left[i] != want {
			t.Fatalf("device %d left %d times, want %d", i, left[i], want)
		}
		wantState := cluster.Up
		if i < 3 {
			wantState = cluster.Down
		}
		if st := m.StateOf(i); st != wantState {
			t.Fatalf("device %d state %v, want %v", i, st, wantState)
		}
	}
	if batch := <-batches; len(batch) != 3 {
		t.Fatalf("down batch carried %d events, want 3", len(batch))
	}

	// Recovery revives exactly the killed set, again as one batch.
	if err := o.Apply(Event{Kind: EvMassRecover}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 0
		if i < 3 {
			want = 1
		}
		if joined[i] != want {
			t.Fatalf("device %d joined %d times, want %d", i, joined[i], want)
		}
		if st := m.StateOf(i); st != cluster.Up {
			t.Fatalf("device %d state %v after recovery, want Up", i, st)
		}
	}
	if batch := <-batches; len(batch) != 3 {
		t.Fatalf("up batch carried %d events, want 3", len(batch))
	}

	// A second recover with nothing killed is a no-op, not an error.
	if err := o.Apply(Event{Kind: EvMassRecover}); err != nil {
		t.Fatal(err)
	}

	// Full-fleet restart storm.
	if err := o.Apply(Event{Kind: EvRestartStorm, Value: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if restarted[i] != 1 {
			t.Fatalf("device %d restarted %d times, want 1", i, restarted[i])
		}
	}
	if got := o.Applied(); got != 4 {
		t.Fatalf("applied = %d, want 4", got)
	}
}

// TestOrchestratorMassErrors: a mass event whose victims lack hooks must
// fail before touching any device.
func TestOrchestratorMassErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	var left int
	o := NewOrchestrator([]Target{
		{Leave: func() { left++ }},
		{}, // no hooks at all
	})
	if err := o.Apply(Event{Kind: EvMassKill, Value: 1}); err == nil {
		t.Fatal("want error when a victim has no leave hook or shaper")
	}
	if left != 0 {
		t.Fatalf("validation failure still killed %d devices; mass apply must be all-or-nothing", left)
	}
	if err := o.Apply(Event{Kind: EvRestartStorm, Value: 0.5}); err == nil {
		t.Fatal("want error when a storm target has no restart hook")
	}
}

func TestOrchestratorErrors(t *testing.T) {
	testutil.CheckGoroutines(t)
	o := NewOrchestrator([]Target{{}})
	if err := o.Apply(Event{Kind: EvRequest, SLOType: env.LatencySLO, Resolution: 32}); err != ErrNotEnvironment {
		t.Fatalf("want ErrNotEnvironment, got %v", err)
	}
	if err := o.Apply(Event{Kind: EvSetDelay, Device: 5}); err == nil {
		t.Fatal("want error for out-of-range device")
	}
	if err := o.Apply(Event{Kind: EvSetDelay, Device: 0}); err == nil {
		t.Fatal("want error when no shaper is bound")
	}
	if err := o.Apply(Event{Kind: EvDeviceLeave, Device: 0}); err == nil {
		t.Fatal("want error when no leave hook or shaper is bound")
	}
}

func TestPlayerAdvance(t *testing.T) {
	testutil.CheckGoroutines(t)
	sh := netem.NewShaper(0, 0)
	o := NewOrchestrator([]Target{{Shaper: sh}})
	var order []Kind
	o.OnApply = func(ev Event) { order = append(order, ev.Kind) }

	tr := &Trace{
		Name: "player",
		Events: []Event{
			{At: 0, Kind: EvRequest, SLOType: env.LatencySLO, SLOValue: 100, Resolution: 32},
			{At: 10 * time.Millisecond, Kind: EvSetDelay, Device: 0, Value: 50},
			{At: 20 * time.Millisecond, Kind: EvRequest, SLOType: env.LatencySLO, SLOValue: 100, Resolution: 32},
			{At: 30 * time.Millisecond, Kind: EvDeviceLeave, Device: 0},
			{At: 60 * time.Millisecond, Kind: EvDeviceJoin, Device: 0},
			{At: 90 * time.Millisecond, Kind: EvSetDelay, Device: 0, Value: 0},
		},
	}
	p := NewPlayer(o, tr)
	if got := p.Remaining(); got != 4 {
		t.Fatalf("remaining = %d, want 4 (requests excluded)", got)
	}

	n, err := p.Advance(30 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied %d events by t=30ms, want 2", n)
	}
	if !sh.OutageActive() {
		t.Fatal("leave at t=30ms should have blackholed the shaper")
	}

	// Advancing to the same point again is a no-op.
	if n, _ := p.Advance(30 * time.Millisecond); n != 0 {
		t.Fatalf("re-advance applied %d events, want 0", n)
	}

	n, err = p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || p.Remaining() != 0 {
		t.Fatalf("finish applied %d, remaining %d; want 2, 0", n, p.Remaining())
	}
	if sh.OutageActive() {
		t.Fatal("join should have cleared the blackhole")
	}

	want := []Kind{EvSetDelay, EvDeviceLeave, EvDeviceJoin, EvSetDelay}
	if len(order) != len(want) {
		t.Fatalf("applied order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("applied order %v, want %v", order, want)
		}
	}
}
