package scenario

import (
	"bytes"
	"testing"
)

// FuzzDecodeTrace hammers the binary trace decoder with arbitrary bytes: it
// must never panic or over-allocate (the caps reject forged counts before any
// allocation), and any input it accepts must re-encode canonically — decode →
// encode → decode → encode yields byte-identical output, even for traces
// carrying NaN float payloads that defeat direct struct comparison.
func FuzzDecodeTrace(f *testing.F) {
	seed := sampleTrace()
	var buf bytes.Buffer
	if err := seed.EncodeBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("MTRC"))
	f.Add(buf.Bytes()[:buf.Len()/2])

	// A restart/asym-degrade-only trace seeds the corpus with the newest
	// kinds so mutation explores their field encodings too.
	robust := &Trace{Name: "robust", Events: []Event{
		{Kind: EvRestart, Device: 0},
		{Kind: EvAsymDegrade, Device: 1, Value: 150, Seed: 4096},
	}}
	var rbuf bytes.Buffer
	if err := robust.EncodeBinary(&rbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(rbuf.Bytes())

	// A correlated-failure trace seeds the mass kinds, including their
	// fraction-valued Value field and its (0, 1] validation boundary.
	storm := &Trace{Name: "storm", Events: []Event{
		{Kind: EvMassKill, Value: 0.5},
		{Kind: EvRestartStorm, Value: 1},
		{Kind: EvMassRecover},
	}}
	var sbuf bytes.Buffer
	if err := storm.EncodeBinary(&sbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(sbuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc1 bytes.Buffer
		if err := tr.EncodeBinary(&enc1); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := DecodeBinary(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		var enc2 bytes.Buffer
		if err := tr2.EncodeBinary(&enc2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("re-encode is not canonical")
		}
	})
}
