package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/zoo"
)

// ArrivalProcess synthesizes request arrival offsets over a window. All
// randomness must come from the supplied rng so the same seed reproduces the
// same arrivals bit for bit.
type ArrivalProcess interface {
	// Arrivals returns strictly increasing offsets in [0, d).
	Arrivals(d time.Duration, rng *rand.Rand) []time.Duration
}

// Poisson is the open-loop baseline: exponentially distributed interarrival
// gaps at a constant mean rate (requests per second).
type Poisson struct {
	Rate float64
}

// Arrivals implements ArrivalProcess.
func (p Poisson) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	if p.Rate <= 0 {
		return nil
	}
	var out []time.Duration
	t := time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
	for t < d {
		out = append(out, t)
		t += time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
	}
	return out
}

// Diurnal is a sinusoidal day/night cycle: a non-homogeneous Poisson process
// whose instantaneous rate is Base + Amplitude·sin(2πt/Period + Phase),
// clamped at zero. Compressing Period turns a 24-hour cycle into a
// seconds-long test scenario.
type Diurnal struct {
	Base, Amplitude float64 // requests per second
	Period          time.Duration
	Phase           float64 // radians
}

func (p Diurnal) rate(t time.Duration) float64 {
	r := p.Base + p.Amplitude*math.Sin(2*math.Pi*t.Seconds()/p.Period.Seconds()+p.Phase)
	if r < 0 {
		return 0
	}
	return r
}

// Arrivals implements ArrivalProcess by thinning against the peak rate.
func (p Diurnal) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	if p.Period <= 0 || p.Base+math.Abs(p.Amplitude) <= 0 {
		return nil
	}
	return thin(d, p.Base+math.Abs(p.Amplitude), p.rate, rng)
}

// Burst is one flash-crowd window: for Duration starting At, the base rate
// is multiplied by Multiplier.
type Burst struct {
	At         time.Duration
	Duration   time.Duration
	Multiplier float64
}

// FlashCrowd is a piecewise-constant process: a steady Base rate with
// multiplicative bursts — the "everyone opens the app at kickoff" shape that
// exercises admission control and shedding.
type FlashCrowd struct {
	Base   float64 // requests per second
	Bursts []Burst
}

func (p FlashCrowd) rate(t time.Duration) float64 {
	r := p.Base
	for _, b := range p.Bursts {
		if t >= b.At && t < b.At+b.Duration && b.Multiplier > 0 {
			r = p.Base * b.Multiplier
		}
	}
	return r
}

// Arrivals implements ArrivalProcess by thinning against the tallest burst.
func (p FlashCrowd) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	peak := p.Base
	for _, b := range p.Bursts {
		if r := p.Base * b.Multiplier; r > peak {
			peak = r
		}
	}
	if peak <= 0 {
		return nil
	}
	return thin(d, peak, p.rate, rng)
}

// Pareto draws heavy-tailed interarrival gaps: long quiet stretches broken
// by dense clumps, the self-similar shape real request streams show. Alpha
// is the tail exponent (must be > 1 for a finite mean; 1.5 is the classic
// heavy-tail choice); Rate is the long-run mean in requests per second.
type Pareto struct {
	Rate  float64
	Alpha float64
}

// Arrivals implements ArrivalProcess.
func (p Pareto) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	alpha := p.Alpha
	if alpha <= 1 {
		alpha = 1.5
	}
	if p.Rate <= 0 {
		return nil
	}
	// Scale xm so the Pareto mean xm·α/(α−1) equals the target mean gap.
	mean := 1 / p.Rate
	xm := mean * (alpha - 1) / alpha
	var out []time.Duration
	var t time.Duration
	for {
		u := rng.Float64()
		if u == 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := xm / math.Pow(u, 1/alpha)
		t += time.Duration(gap * float64(time.Second))
		if t >= d {
			return out
		}
		out = append(out, t)
	}
}

// Superpose merges several processes into one stream (e.g. a diurnal base
// plus a Pareto tail).
type Superpose []ArrivalProcess

// Arrivals implements ArrivalProcess.
func (s Superpose) Arrivals(d time.Duration, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	for _, p := range s {
		out = append(out, p.Arrivals(d, rng)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// thin samples a non-homogeneous Poisson process with instantaneous rate
// rate(t) bounded by peak, via Lewis–Shedler thinning.
func thin(d time.Duration, peak float64, rate func(time.Duration) float64, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	var t time.Duration
	for {
		t += time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if t >= d {
			return out
		}
		if rng.Float64()*peak < rate(t) {
			out = append(out, t)
		}
	}
}

// ClassShare is one entry of a request mix: an SLO drawn with probability
// proportional to Weight.
type ClassShare struct {
	SLOType  env.SLOType
	SLOValue float64
	Weight   float64
}

// Mix describes what each arrival asks for: its SLO class, its input
// resolution, and its zoo-model choice. Weights need not sum to one.
type Mix struct {
	Classes []ClassShare
	// Resolutions are the candidate square input edges;
	// ResolutionWeights may be nil for a uniform draw.
	Resolutions       []int
	ResolutionWeights []float64
	// Models are candidate model names; ModelWeights may be nil for a
	// uniform draw. ZipfWeights gives the heavy-tailed popularity real
	// multi-tenant serving shows (a few hot models, a long cold tail).
	Models       []string
	ModelWeights []float64
}

// DefaultMix is the matrix's standard request blend: mostly latency-SLO
// traffic, a quality-bound slice, and a best-effort tail, over three input
// resolutions and the zoo's models under Zipf popularity.
func DefaultMix() Mix {
	var models []string
	for _, m := range zoo.All() {
		models = append(models, m.Name)
	}
	return Mix{
		Classes: []ClassShare{
			{SLOType: env.LatencySLO, SLOValue: 250, Weight: 0.5},
			{SLOType: env.AccuracySLO, SLOValue: 75, Weight: 0.3},
			{SLOType: env.LatencySLO, SLOValue: 0, Weight: 0.2}, // best-effort
		},
		Resolutions:  []int{32, 28, 24},
		Models:       models,
		ModelWeights: ZipfWeights(len(models), 1.1),
	}
}

// ZipfWeights returns n weights proportional to 1/rank^s — the heavy-tailed
// popularity curve for model (or tenant) choice.
func ZipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// weightedPick draws an index with probability proportional to weights
// (uniform when weights is nil or degenerate).
func weightedPick(n int, weights []float64, rng *rand.Rand) int {
	if n <= 0 {
		return 0
	}
	if len(weights) != n {
		return rng.Intn(n)
	}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(n)
	}
	x := rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	return n - 1
}

func (m Mix) sample(rng *rand.Rand) (slo ClassShare, resolution int, model string) {
	weights := make([]float64, len(m.Classes))
	for i, c := range m.Classes {
		weights[i] = c.Weight
	}
	slo = m.Classes[weightedPick(len(m.Classes), weights, rng)]
	resolution = m.Resolutions[weightedPick(len(m.Resolutions), m.ResolutionWeights, rng)]
	if len(m.Models) > 0 {
		model = m.Models[weightedPick(len(m.Models), m.ModelWeights, rng)]
	}
	return slo, resolution, model
}

// GenOptions parameterizes Synthesize.
type GenOptions struct {
	Name     string
	Seed     int64
	Duration time.Duration
	Process  ArrivalProcess
	// Mix defaults to DefaultMix when it has no classes.
	Mix Mix
	// Env is an optional environment timeline (device churn, link
	// transitions) merged into the request stream. Build it by hand or with
	// Churn.
	Env []Event
}

// Synthesize builds a trace from an arrival process and a request mix. The
// construction is fully deterministic in Seed: the same options always yield
// the byte-identical trace (rng draws happen in a fixed order — arrivals
// first, then one mix sample per arrival — and the merge sort is stable).
func Synthesize(o GenOptions) (*Trace, error) {
	if o.Process == nil {
		return nil, fmt.Errorf("scenario: GenOptions.Process is required")
	}
	if o.Duration <= 0 {
		return nil, fmt.Errorf("scenario: GenOptions.Duration must be positive")
	}
	mix := o.Mix
	if len(mix.Classes) == 0 {
		mix = DefaultMix()
	}
	if len(mix.Resolutions) == 0 {
		mix.Resolutions = []int{32}
	}
	rng := rand.New(rand.NewSource(o.Seed))
	arrivals := o.Process.Arrivals(o.Duration, rng)
	events := make([]Event, 0, len(arrivals)+len(o.Env))
	for _, at := range arrivals {
		share, res, model := mix.sample(rng)
		events = append(events, Event{
			At: at, Kind: EvRequest,
			SLOType: share.SLOType, SLOValue: share.SLOValue,
			Resolution: res, Model: model,
		})
	}
	for _, e := range o.Env {
		if e.IsRequest() {
			return nil, fmt.Errorf("scenario: GenOptions.Env contains a request event")
		}
		events = append(events, e)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	t := &Trace{Name: o.Name, Seed: o.Seed, Events: events}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ChurnOptions parameterizes Churn, the environment-timeline generator.
type ChurnOptions struct {
	// Devices is how many remote devices the timeline covers.
	Devices int
	// MeanUp is the mean healthy stretch before a device leaves
	// (exponential; 0 disables leave/join churn).
	MeanUp time.Duration
	// Downtime is how long a departed device stays gone before rejoining.
	Downtime time.Duration
	// DegradeEvery is the mean period between link-degrade windows per
	// device (exponential; 0 disables degrade churn).
	DegradeEvery time.Duration
	// DegradeFor is how long a degrade window lasts.
	DegradeFor time.Duration
	// DegradeDelayMs / CalmDelayMs are the one-way delays inside and
	// outside a degrade window.
	DegradeDelayMs, CalmDelayMs float64
	// SlowEvery is the mean period between slow-compute windows per device
	// (exponential; 0 disables); SlowFor is the window length and SlowFactor
	// the compute-latency multiplier inside it (must be > 1 to emit).
	SlowEvery, SlowFor time.Duration
	SlowFactor         float64
	// ComputeErrEvery / ComputeErrFor / ComputeErrRate likewise synthesize
	// compute-error windows, inside which each block execution fails with
	// probability ComputeErrRate (seeded per window from the trace rng).
	ComputeErrEvery, ComputeErrFor time.Duration
	ComputeErrRate                 float64
	// RestartEvery is the mean period between in-place daemon restarts per
	// device (exponential; 0 disables restart churn). A restart is a single
	// event: the replacement process is live immediately, under a new
	// incarnation.
	RestartEvery time.Duration
	// AsymEvery / AsymFor synthesize asymmetric stall windows per device
	// (exponential period; 0 disables): inside a window, frames of at least
	// AsymMinBytes bytes wedge on the bulk direction while small frames
	// pass. AsymMinBytes <= 0 selects DefaultAsymMinBytes.
	AsymEvery, AsymFor time.Duration
	AsymMinBytes       int
}

// Churn synthesizes a seeded environment timeline: per device, exponential
// up-times broken by leave→join pairs, and delay-degrade windows that raise
// the link's one-way delay and later restore it. Merge the result into a
// workload via GenOptions.Env.
func Churn(o ChurnOptions, d time.Duration, rng *rand.Rand) []Event {
	var events []Event
	for dev := 0; dev < o.Devices; dev++ {
		if o.MeanUp > 0 && o.Downtime > 0 {
			t := expAfter(o.MeanUp, rng)
			for t < d {
				events = append(events, Event{At: t, Kind: EvDeviceLeave, Device: dev})
				rejoin := t + o.Downtime
				if rejoin >= d {
					break
				}
				events = append(events, Event{At: rejoin, Kind: EvDeviceJoin, Device: dev})
				t = rejoin + expAfter(o.MeanUp, rng)
			}
		}
		if o.DegradeEvery > 0 && o.DegradeFor > 0 {
			t := expAfter(o.DegradeEvery, rng)
			for t < d {
				events = append(events, Event{At: t, Kind: EvSetDelay, Device: dev, Value: o.DegradeDelayMs})
				clear := t + o.DegradeFor
				if clear >= d {
					clear = d - 1
				}
				events = append(events, Event{At: clear, Kind: EvSetDelay, Device: dev, Value: o.CalmDelayMs})
				t = clear + expAfter(o.DegradeEvery, rng)
			}
		}
		if o.SlowEvery > 0 && o.SlowFor > 0 && o.SlowFactor > 1 {
			t := expAfter(o.SlowEvery, rng)
			for t < d {
				events = append(events, Event{At: t, Kind: EvSlowCompute, Device: dev, Value: o.SlowFactor})
				clear := t + o.SlowFor
				if clear >= d {
					clear = d - 1
				}
				events = append(events, Event{At: clear, Kind: EvSlowCompute, Device: dev, Value: 1})
				t = clear + expAfter(o.SlowEvery, rng)
			}
		}
		if o.RestartEvery > 0 {
			t := expAfter(o.RestartEvery, rng)
			for t < d {
				events = append(events, Event{At: t, Kind: EvRestart, Device: dev})
				t += expAfter(o.RestartEvery, rng)
			}
		}
		if o.AsymEvery > 0 && o.AsymFor > 0 {
			t := expAfter(o.AsymEvery, rng)
			for t < d {
				events = append(events, Event{
					At: t, Kind: EvAsymDegrade, Device: dev,
					Value: o.AsymFor.Seconds() * 1000,
					Seed:  int64(o.AsymMinBytes),
				})
				t = t + o.AsymFor + expAfter(o.AsymEvery, rng)
			}
		}
		if o.ComputeErrEvery > 0 && o.ComputeErrFor > 0 && o.ComputeErrRate > 0 {
			t := expAfter(o.ComputeErrEvery, rng)
			for t < d {
				events = append(events, Event{
					At: t, Kind: EvComputeError, Device: dev,
					Value: o.ComputeErrRate, Seed: rng.Int63(),
				})
				clear := t + o.ComputeErrFor
				if clear >= d {
					clear = d - 1
				}
				events = append(events, Event{At: clear, Kind: EvComputeError, Device: dev})
				t = clear + expAfter(o.ComputeErrEvery, rng)
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

func expAfter(mean time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
