// Adaptation scenarios: the closed loop (live outcome tap → background
// retraining → shadow/canary/full rollout) replayed against seeded drift
// traces. Two verdicts: a drifting environment where the adaptive controller
// must match or beat a frozen decider, and a hostile canary that must roll
// back automatically without bending the serving ledger.
package scenario_test

import (
	"testing"
	"time"

	"murmuration/internal/adapt"
	"murmuration/internal/device"
	"murmuration/internal/nas"
	"murmuration/internal/netem"
	"murmuration/internal/rl/env"
	"murmuration/internal/rl/policy"
	"murmuration/internal/rl/supreme"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/scenario"
	"murmuration/internal/serve"
	"murmuration/internal/supernet"
	"murmuration/internal/testutil"
)

// remoteMinDecider pins every tile of the min config onto remote device 1 —
// the frozen policy that is right while the link is fast and wrong once the
// trace degrades it.
func remoteMinDecider(a *supernet.Arch) runtime.DeciderFunc {
	return func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		p := supernet.LocalPlacement(costs)
		for k := range p.Devices {
			for ti := range p.Devices[k] {
				p.Devices[k][ti] = 1
			}
		}
		return &env.Decision{Config: cfg, Placement: p}, nil
	}
}

// driftTrace synthesizes the seeded drift trace both runs replay: a
// latency/accuracy blend whose class mix shifts toward tight deadlines
// halfway through, with a link-degrade event (2ms → 150ms one-way) at 900ms.
// Once degraded, a remote min-config inference costs two sequential tile
// RPCs × two shaped directions ≈ 600ms — far past the 280ms deadlines — so
// only a decider that moves work off the link keeps attaining.
func driftTrace(t *testing.T, seed int64) *scenario.Trace {
	t.Helper()
	const half = 1500 * time.Millisecond
	phase := func(s int64, rate, latW, accW float64) *scenario.Trace {
		tr, err := scenario.Synthesize(scenario.GenOptions{
			Name: "adapt-drift", Seed: s, Duration: half,
			Process: scenario.Poisson{Rate: rate},
			Mix: scenario.Mix{
				Classes: []scenario.ClassShare{
					{SLOType: env.LatencySLO, SLOValue: 280, Weight: latW},
					{SLOType: env.AccuracySLO, SLOValue: 75, Weight: accW},
				},
				Resolutions: []int{32},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	first := phase(seed, 20, 0.6, 0.4)
	second := phase(seed+1, 24, 0.85, 0.15)

	events := append([]scenario.Event(nil), first.Events...)
	for _, ev := range second.Events {
		ev.At += half
		events = append(events, ev)
	}
	events = append(events, scenario.Event{
		At: 900 * time.Millisecond, Kind: scenario.EvSetDelay, Device: 0, Value: 150,
	})
	sortEvents(events)
	return &scenario.Trace{Name: "adapt-drift", Seed: seed, Events: events}
}

// sortEvents re-sorts a hand-merged event stream by offset, stably.
func sortEvents(events []scenario.Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].At < events[j-1].At; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// adaptController pretrains a constraint-conditioned policy offline (the
// paper's offline SUPREME phase) and wraps the frozen incumbent in an
// adaptation controller tuned for a seconds-long trace: short windows, an
// aggressive canary, and a rollback floor low enough that drift turbulence
// alone cannot trip it.
func adaptController(t *testing.T, rt *runtime.Runtime, a *supernet.Arch, incumbent runtime.Decider, seed int64) *adapt.Controller {
	t.Helper()
	e := env.New(a, nas.NewCalibratedPredictor(a), []device.Kind{device.RaspberryPi4, device.GPUDesktop})
	p := policy.New(e, 16, seed)
	space := env.ConstraintSpace{
		Type: env.LatencySLO, SLOMin: 50, SLOMax: 2000,
		BwMinMbps: 20, BwMaxMbps: 200, DelayMin: 1, DelayMax: 200,
		Points: 8, Remotes: 1,
	}
	opts := supreme.DefaultOptions()
	opts.Steps = 250
	opts.CurriculumEvery = 30
	opts.Seed = seed
	if err := supreme.New(p, space, opts).Run(); err != nil {
		t.Fatalf("offline pretrain: %v", err)
	}
	ctl, err := adapt.New(adapt.Config{
		Runtime: rt, Incumbent: incumbent, Policy: p, Space: space,
		Dir:        t.TempDir(),
		Interval:   120 * time.Millisecond,
		CanaryFrac: 0.9, RollbackSLO: 0.25,
		TrainRounds: 2, MinShadow: 4, ShadowWinFrac: 0.5, MinCanary: 2,
		RollbackWindows: 3, MaxRollbacks: 4,
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

// runDriftTrace replays tr against one real remote daemon. With adaptive
// false, the frozen remote-min decider serves the whole trace; with true, an
// adaptation controller wraps it and must promote its way off the degraded
// link. Returns the scored report with the v7 gateway section attached.
func runDriftTrace(t *testing.T, tr *scenario.Trace, seed int64, adaptive bool) *scenario.Report {
	t.Helper()
	a := supernet.TinyArch(4)
	net := supernet.New(a, seed)

	srv, addr := startDaemon(t, net, "127.0.0.1:0")
	defer srv.Close()
	sh := netem.NewShaper(0, 2*time.Millisecond)
	data := dialData(t, addr, sh)
	defer data.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data})
	sched.RemoteTimeout = 10 * time.Second
	frozen := remoteMinDecider(a)
	rt := runtime.New(sched, frozen, runtime.NewStrategyCache(64, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 2)

	g := serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 128,
		MaxRung: -1,
	})

	var ctl *adapt.Controller
	name := "adapt-drift-frozen"
	if adaptive {
		name = "adapt-drift-adaptive"
		ctl = adaptController(t, rt, a, frozen, seed)
		rt.SwapDecider(ctl)
		ctl.AttachGateway(g)
		ctl.Start()
	}

	// The orchestrator mirrors link drift into the runtime's constraint view
	// the way the production monitor loop does — the policy can only react to
	// drift it can see.
	orch := scenario.NewOrchestrator([]scenario.Target{{Shaper: sh}})
	orch.OnApply = func(ev scenario.Event) {
		if ev.Kind == scenario.EvSetDelay {
			rt.SetLinkState(ev.Device, 100, ev.Value)
		}
	}

	before := g.Stats()
	sc := scenario.NewScorer()
	res, err := scenario.Run(tr, scenario.RunOptions{Submitter: g, Orchestrator: orch}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != uint64(tr.Requests()) {
		t.Fatalf("runner dispatched %d of %d trace requests", res.Requests, tr.Requests())
	}
	g.Close(30 * time.Second)
	if ctl != nil {
		ctl.Close()
	}
	after := g.Stats()

	if after.Admitted != after.Served+after.Dropped+after.Failed {
		t.Fatalf("ledger broken: %+v", after)
	}
	var met, missed uint64
	for c := 0; c < serve.NumClasses; c++ {
		met += after.ClassMet[c]
		missed += after.ClassMissed[c]
	}
	if met+missed != after.Admitted {
		t.Fatalf("per-class ledger broken: met %d + missed %d != admitted %d", met, missed, after.Admitted)
	}

	report := sc.Report(name, scenario.GatewayDelta(before, after))
	report.StatsWireVersion = serve.StatsWireVersion
	report.PolicyVersion = after.PolicyVersion
	if js, err := report.JSON(); err != nil {
		t.Fatalf("report JSON: %v", err)
	} else {
		t.Logf("scenario %s report:\n%s", name, js)
	}
	return report
}

// TestScenarioAdaptDrift replays the same seeded drift trace twice — frozen
// decider vs closed-loop adaptation — and asserts the adaptive run promoted
// at least one candidate and attained at least as well per class (with a
// small tolerance), strictly better on the latency class the drift punishes.
func TestScenarioAdaptDrift(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := driftTrace(t, 501)

	frozen := runDriftTrace(t, tr, 501, false)
	adapted := runDriftTrace(t, tr, 501, true)

	if adapted.Gateway.Promotions < 1 {
		t.Fatalf("adaptive run never promoted a candidate: %+v", adapted.Gateway)
	}
	for _, class := range []string{"latency", "accuracy"} {
		fa, aa := frozen.Attainment(class), adapted.Attainment(class)
		if aa < fa-0.05 {
			t.Errorf("%s attainment regressed under adaptation: frozen %.3f, adapted %.3f", class, fa, aa)
		}
	}
	if fa, aa := frozen.Attainment("latency"), adapted.Attainment("latency"); aa < fa+0.05 {
		t.Errorf("adaptation did not beat the frozen policy on the drifted class: frozen %.3f, adapted %.3f", fa, aa)
	}
}

// TestScenarioAdaptRollback forces a canary that routes everything over a
// 150ms-shaped link under 200ms deadlines, with promotion made unreachable.
// The guarded rollout must detect the bad canary from live windows (served
// misses or shed starvation), roll back to the incumbent, reset the poisoned
// wait estimates, and keep both ledgers exact — rollback costs latency, never
// accounting.
func TestScenarioAdaptRollback(t *testing.T) {
	testutil.CheckGoroutines(t)
	a := supernet.TinyArch(4)
	net := supernet.New(a, 502)

	srv, addr := startDaemon(t, net, "127.0.0.1:0")
	defer srv.Close()
	sh := netem.NewShaper(0, 150*time.Millisecond)
	data := dialData(t, addr, sh)
	defer data.Close()

	sched := runtime.NewScheduler(net, []*rpcx.Client{data})
	sched.RemoteTimeout = 10 * time.Second
	local := runtime.DeciderFunc(func(c env.Constraint) (*env.Decision, error) {
		cfg := a.MinConfig()
		costs, _ := a.Costs(cfg)
		return &env.Decision{Config: cfg, Placement: supernet.LocalPlacement(costs)}, nil
	})
	rt := runtime.New(sched, local, runtime.NewStrategyCache(64, 25, 5, 10), nil)
	rt.SetLinkState(0, 100, 150)

	// Routing-only controller (no trainable policy): promotion is unreachable
	// (MinCanary is effectively infinite), so automatic rollback is the only
	// way out of canary.
	ctl, err := adapt.New(adapt.Config{
		Runtime: rt, Incumbent: local,
		CanaryFrac: 1.0, RollbackSLO: 0.7,
		RollbackWindows: 2, MinCanary: 1 << 30, MaxRollbacks: 3,
		Interval: 100 * time.Millisecond,
		Log:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SwapDecider(ctl)

	g := serve.New(rt, serve.Options{
		Workers: 2, MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 128,
		MaxRung: -1,
	})
	ctl.AttachGateway(g)
	ctl.ForceCandidate(remoteMinDecider(a))
	ctl.ForceCanary()
	ctl.Start()

	tr, err := scenario.Synthesize(scenario.GenOptions{
		Name: "adapt-rollback", Seed: 502, Duration: 2500 * time.Millisecond,
		Process: scenario.Poisson{Rate: 40},
		Mix: scenario.Mix{
			Classes: []scenario.ClassShare{
				{SLOType: env.LatencySLO, SLOValue: 200, Weight: 0.8},
				{SLOType: env.LatencySLO, SLOValue: 0, Weight: 0.2}, // best-effort
			},
			Resolutions: []int{32},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	before := g.Stats()
	sc := scenario.NewScorer()
	res, err := scenario.Run(tr, scenario.RunOptions{Submitter: g}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != uint64(tr.Requests()) {
		t.Fatalf("runner dispatched %d of %d trace requests", res.Requests, tr.Requests())
	}
	g.Close(30 * time.Second)
	ctl.Close()
	after := g.Stats()

	if after.Admitted != after.Served+after.Dropped+after.Failed {
		t.Fatalf("ledger broken across rollback: %+v", after)
	}
	var met, missed uint64
	for c := 0; c < serve.NumClasses; c++ {
		met += after.ClassMet[c]
		missed += after.ClassMissed[c]
	}
	if met+missed != after.Admitted {
		t.Fatalf("per-class ledger broken across rollback: met %d + missed %d != admitted %d", met, missed, after.Admitted)
	}

	report := sc.Report("adapt-rollback", scenario.GatewayDelta(before, after))
	report.StatsWireVersion = serve.StatsWireVersion
	report.PolicyVersion = after.PolicyVersion
	if js, err := report.JSON(); err != nil {
		t.Fatalf("report JSON: %v", err)
	} else {
		t.Logf("scenario adapt-rollback report:\n%s", js)
	}

	gw := report.Gateway
	if gw.Rollbacks < 1 {
		t.Fatalf("bad canary never rolled back: %+v", gw)
	}
	if gw.Promotions != 0 {
		t.Fatalf("bad canary was promoted %d times: %+v", gw.Promotions, gw)
	}
	if gw.CanaryServed == 0 {
		t.Fatalf("canary never served a request before rollback: %+v", gw)
	}
	if m := ctl.Mode(); m != adapt.ModeIncumbent {
		t.Fatalf("mode after rollback = %v, want incumbent", m)
	}
	if ctl.Pinned() {
		t.Fatal("a single rollback pinned the controller (circuit breaker too eager)")
	}
	// Post-rollback the incumbent serves locally and the reset wait estimates
	// let deadlines admit again. A wedged canary attains ~0 (every request
	// over the 150ms link misses its 200ms deadline); the floor only needs to
	// separate recovery from that, with slack for the race detector's slowdown.
	if att := report.Attainment("latency"); att < 0.25 {
		t.Fatalf("latency attainment %.3f after rollback, want >= 0.25 (recovery)", att)
	}
}
