package scenario

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/rpcx"
	"murmuration/internal/runtime"
	"murmuration/internal/serve"
	"murmuration/internal/testutil"
)

func latency(ms float64) runtime.SLO {
	return runtime.SLO{Type: env.LatencySLO, Value: ms}
}

func TestScorerClassification(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewScorer()
	// Served on time at rung 0 and rung 2.
	s.Record(latency(100), 0, 10*time.Millisecond, nil)
	s.Record(latency(100), 2, 20*time.Millisecond, nil)
	// Served but late: counts served yet misses the latency SLO.
	s.Record(latency(100), 0, 150*time.Millisecond, nil)
	// The refusal taxonomy, one of each.
	s.Record(latency(100), -1, 0, serve.ErrQueueFull)
	s.Record(latency(100), -1, 0, serve.ErrDeadlineMissed)
	s.Record(latency(100), -1, 0, rpcx.ErrBudgetExhausted)
	s.Record(latency(100), -1, 0, serve.ErrOverloaded)
	s.Record(latency(100), -1, 0, errors.New("boom"))
	// Accuracy class: served slow is still attained (no clock constraint).
	s.Record(runtime.SLO{Type: env.AccuracySLO, Value: 75}, 0, 2*time.Second, nil)

	r := s.Report("classification", nil)
	if r.Requests != 9 {
		t.Fatalf("requests = %d, want 9", r.Requests)
	}
	lat := r.Classes[int(serve.ClassLatency)]
	if lat.Served != 3 || lat.OnTime != 2 || lat.Late != 1 {
		t.Fatalf("latency served/onTime/late = %d/%d/%d, want 3/2/1", lat.Served, lat.OnTime, lat.Late)
	}
	if lat.Shed != 1 || lat.DeadlineDropped != 1 || lat.BudgetExhausted != 1 || lat.Overloaded != 1 || lat.Failed != 1 {
		t.Fatalf("refusal breakdown = %+v", lat)
	}
	if got, want := lat.Attainment, 2.0/8.0; got != want {
		t.Fatalf("latency attainment = %v, want %v", got, want)
	}
	acc := r.Classes[int(serve.ClassAccuracy)]
	if acc.Attainment != 1 {
		t.Fatalf("accuracy attainment = %v, want 1 (served, no clock bound)", acc.Attainment)
	}
	// Rung histogram covers exactly the known-rung serves.
	var rungTotal uint64
	for _, rc := range r.Rungs {
		rungTotal += rc.Requests
	}
	if rungTotal != 4 {
		t.Fatalf("rung histogram total = %d, want 4", rungTotal)
	}
}

func TestScorerOverloadedBeforeShed(t *testing.T) {
	testutil.CheckGoroutines(t)
	// ErrOverloaded carries the "serve: shed" prefix: classification must pick
	// the more specific overload bucket, not the generic shed one.
	s := NewScorer()
	s.Record(latency(100), -1, 0, serve.ErrOverloaded)
	r := s.Report("order", nil)
	lat := r.Classes[int(serve.ClassLatency)]
	if lat.Overloaded != 1 || lat.Shed != 0 {
		t.Fatalf("overloaded/shed = %d/%d, want 1/0", lat.Overloaded, lat.Shed)
	}
}

func TestGatewayDelta(t *testing.T) {
	testutil.CheckGoroutines(t)
	var before, after serve.Stats
	before.Admitted, after.Admitted = 10, 110
	before.ClassMet[serve.ClassLatency], after.ClassMet[serve.ClassLatency] = 5, 95
	before.ClassMissed[serve.ClassLatency], after.ClassMissed[serve.ClassLatency] = 5, 15
	after.ClassMet[serve.ClassBestEffort] = 7

	g := GatewayDelta(before, after)
	if g.Admitted != 100 {
		t.Fatalf("admitted delta = %d, want 100", g.Admitted)
	}
	lat := g.ClassAttainment[int(serve.ClassLatency)]
	if lat.Met != 90 || lat.Missed != 10 || lat.Attainment != 0.9 {
		t.Fatalf("latency attainment = %+v, want 90/10/0.9", lat)
	}
	be := g.ClassAttainment[int(serve.ClassBestEffort)]
	if be.Met != 7 || be.Attainment != 1 {
		t.Fatalf("best-effort attainment = %+v, want 7 met, 1.0", be)
	}
	acc := g.ClassAttainment[int(serve.ClassAccuracy)]
	if acc.Attainment != 1 {
		t.Fatalf("idle class attainment = %v, want vacuous 1.0", acc.Attainment)
	}
}

func TestReportCheck(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewScorer()
	s.Record(latency(100), 0, 10*time.Millisecond, nil)
	s.Record(latency(100), 0, 10*time.Millisecond, nil)
	s.Record(latency(100), -1, 0, serve.ErrQueueFull)
	r := s.Report("check", nil)

	if err := r.Check(Thresholds{"latency": 0.5}); err != nil {
		t.Fatalf("0.667 attainment should pass 0.5: %v", err)
	}
	err := r.Check(Thresholds{"latency": 0.9, "accuracy": 0.9})
	if err == nil {
		t.Fatal("0.667 attainment should fail 0.9")
	}
	if !strings.Contains(err.Error(), "latency") {
		t.Fatalf("violation should name the class: %v", err)
	}
	if strings.Contains(err.Error(), "accuracy") {
		t.Fatalf("idle accuracy class attains vacuously, must not violate: %v", err)
	}
	// Unknown class names attain vacuously rather than erroring — thresholds
	// stay forward-compatible with future classes.
	if err := r.Check(Thresholds{"no-such-class": 0.99}); err != nil {
		t.Fatalf("unknown class should pass vacuously: %v", err)
	}
}

func TestReportJSON(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewScorer()
	s.Record(latency(100), 1, 42*time.Millisecond, nil)
	b, err := s.Report("json", GatewayDelta(serve.Stats{}, serve.Stats{})).JSON()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"scenario", "requests", "classes", "rungs", "gateway"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("report missing %q: %s", key, b)
		}
	}
}

func TestPercentiles(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewScorer()
	for i := 1; i <= 100; i++ {
		s.Record(latency(1000), 0, time.Duration(i)*time.Millisecond, nil)
	}
	lat := s.Report("pct", nil).Classes[int(serve.ClassLatency)]
	if lat.P50Ms < 45 || lat.P50Ms > 55 {
		t.Fatalf("p50 = %v, want ~50", lat.P50Ms)
	}
	if lat.P95Ms < 90 || lat.P95Ms > 100 {
		t.Fatalf("p95 = %v, want ~95", lat.P95Ms)
	}
	if lat.P99Ms < 94 || lat.P99Ms > 100 {
		t.Fatalf("p99 = %v, want ~99", lat.P99Ms)
	}
}
