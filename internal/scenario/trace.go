// Package scenario is Murmuration's evaluation substrate: a deterministic,
// seedable scenario engine that turns "the gateway survives uniform synthetic
// clients" into "the gateway meets its SLOs under realistic workload and
// environment dynamics".
//
// A scenario is a Trace — one time-ordered event stream mixing request
// arrivals (SLO class, input resolution, zoo-model choice) with environment
// events (device join/leave, link delay/loss/corruption/blackhole/rate
// transitions). Traces are synthesized from composable arrival processes
// (Poisson, diurnal sinusoid, flash-crowd bursts, heavy-tailed Pareto) by the
// generator in gen.go, replayed against live daemons by the churn
// orchestrator in churn.go, driven open-loop at a gateway by the runner in
// run.go, and judged by the per-class SLO scorer in score.go.
//
// The same seed always produces the byte-identical trace, so every scenario
// in the CI matrix is exactly reproducible on a laptop.
package scenario

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"murmuration/internal/rl/env"
	"murmuration/internal/runtime"
)

// Kind discriminates trace events. Request arrivals are the workload;
// everything else is an environment event the churn orchestrator replays
// against live daemons through the netem and cluster hooks.
type Kind uint8

// Event kinds. The numeric values are part of the binary trace format —
// append, never reorder.
const (
	// EvRequest is one inference arrival: SLO, input resolution, model.
	EvRequest Kind = iota
	// EvDeviceLeave removes a device mid-run (daemon kill or blackhole).
	EvDeviceLeave
	// EvDeviceJoin returns a previously removed device.
	EvDeviceJoin
	// EvSetDelay sets a device link's one-way delay to Value milliseconds.
	EvSetDelay
	// EvSetRate sets a device link's bandwidth to Value Mb/s (<= 0 unlimited).
	EvSetRate
	// EvSetLoss sets a device link's packet-loss rate to Value (0 disables),
	// seeded by Seed for reproducible chaos.
	EvSetLoss
	// EvSetCorrupt sets a device link's bit-flip corruption rate to Value
	// (0 disables), seeded by Seed.
	EvSetCorrupt
	// EvBlackhole opens an outage window of Value milliseconds on a device
	// link (<= 0 clears an active window).
	EvBlackhole
	// EvSlowCompute sets a device's compute-latency slowdown multiplier to
	// Value (the daemon-side injector stretches every block execution's wall
	// time by that factor; Value <= 1 clears). The compute-path mirror of
	// EvSetDelay: the link is honest, the silicon limps.
	EvSlowCompute
	// EvComputeError sets a device's compute error-injection rate to Value
	// (each block execution fails with that probability, seeded by Seed for
	// reproducible injection; Value <= 0 clears).
	EvComputeError
	// EvRestart restarts a device's daemon process in place: the replacement
	// answers heartbeats under a fresh incarnation, exercising the gateway's
	// incarnation fence and restart reconfiguration. Unlike a leave/join
	// pair there is no Down window — the restart is only visible through the
	// incarnation change.
	EvRestart
	// EvAsymDegrade opens an asymmetric stall window of Value milliseconds
	// on a device link's bulk direction: frames of at least Seed bytes
	// (<= 0 selects the 4096-byte default) wedge while small frames — pings,
	// heartbeats — pass. Value <= 0 clears an active window.
	EvAsymDegrade
	// EvMassKill removes a fraction Value of all devices at once — the
	// correlated-failure scenario (rack power loss, shared-uplink cut). The
	// victims are the first ceil(Value*N) device indices; they are removed
	// through the same leave path as EvDeviceLeave but their Down transitions
	// are delivered to subscribers as one batch, so the gateway's
	// correlated-loss detector and batched failover handling are exercised
	// rather than N independent losses. Device is ignored.
	EvMassKill
	// EvMassRecover returns every device a prior EvMassKill removed, all at
	// once — the recovery-storm scenario that the gateway must smooth with
	// staggered reintegration. Device and Value are ignored.
	EvMassRecover
	// EvRestartStorm restarts a fraction Value of all devices simultaneously
	// (each through the same in-place restart path as EvRestart): fresh
	// incarnations with no Down window, arriving together. Device is ignored.
	EvRestartStorm
	numKinds
)

var kindNames = [numKinds]string{
	"request", "device-leave", "device-join", "set-delay",
	"set-rate", "set-loss", "set-corrupt", "blackhole",
	"slow-compute", "compute-error", "restart", "asym-degrade",
	"mass-kill", "mass-recover", "restart-storm",
}

// String names the kind for logs and the JSON trace form.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

func kindFromString(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown event kind %q", s)
}

// Event is one trace entry. Request events use the SLO/Resolution/Model
// fields; environment events use Device/Value/Seed. At is the offset from
// trace start; events in a trace are ordered by non-decreasing At.
type Event struct {
	At   time.Duration
	Kind Kind

	// Request fields.
	SLOType    env.SLOType
	SLOValue   float64
	Resolution int    // square input edge, pixels
	Model      string // zoo model name ("" = the deployment's supernet)

	// Environment fields.
	Device int     // remote device index (0-based, scheduler device i+1)
	Value  float64 // ms / Mb/s / rate, depending on Kind
	Seed   int64   // rng seed for loss/corruption injection
}

// IsRequest reports whether the event is a workload arrival (as opposed to
// an environment transition).
func (e Event) IsRequest() bool { return e.Kind == EvRequest }

// SLO returns the request event's service-level objective.
func (e Event) SLO() runtime.SLO {
	return runtime.SLO{Type: e.SLOType, Value: e.SLOValue}
}

// Trace is one replayable scenario: a name, the seed it was synthesized
// from, and its time-ordered event stream.
type Trace struct {
	Name   string
	Seed   int64
	Events []Event
}

// Requests counts the trace's workload arrivals.
func (t *Trace) Requests() int {
	n := 0
	for _, e := range t.Events {
		if e.IsRequest() {
			n++
		}
	}
	return n
}

// Duration is the offset of the last event (0 for an empty trace).
func (t *Trace) Duration() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].At
}

// Binary trace format (little endian):
//
//	magic "MTRC" | u8 version | u8 nameLen | name | i64 seed | u32 count
//	per event: u64 atNs | u8 kind | u8 sloType | f64 sloValue
//	           u32 resolution | u8 modelLen | model | u32 device
//	           f64 value | i64 seed
//
// Decoding is bounded before allocation, mirroring tensor.MaxDecodeElements:
// the event count is capped at MaxTraceEvents and cross-checked against the
// bytes actually present, so a forged header cannot force a huge allocation.
const (
	traceWireVersion = 1
	// MaxTraceEvents bounds how many events a decoder will accept — ~10 M
	// requests is far beyond any scenario the matrix replays, and small
	// enough that a hostile count cannot exhaust memory.
	MaxTraceEvents = 1 << 20
	// MaxTraceDevices bounds the device index an environment event may name.
	MaxTraceDevices = 1 << 16
	// MaxTraceResolution bounds a request's input edge, mirroring the
	// spirit of tensor.MaxDecodeElements: a 4096² input is already far past
	// anything the supernet accepts.
	MaxTraceResolution = 1 << 12
	// minEventSize is the smallest encodable event (empty model name), used
	// to reject impossible event counts before allocating.
	minEventSize = 8 + 1 + 1 + 8 + 4 + 1 + 4 + 8 + 8
	maxNameLen   = 255
	maxModelLen  = 255
)

var traceMagic = [4]byte{'M', 'T', 'R', 'C'}

// TraceVersionError is the typed mismatch a decoder reports for a trace
// written by a different format version — the same pattern as the serve
// stats wire's WireVersionError.
type TraceVersionError struct {
	Got, Want byte
}

// Error implements error.
func (e *TraceVersionError) Error() string {
	return fmt.Sprintf("scenario: trace format version %d, want %d (re-synthesize the trace?)", e.Got, e.Want)
}

// validate enforces the trace invariants shared by both decoders (and by
// Synthesize before it hands a trace out): bounded sizes, known kinds, valid
// request SLO types, non-decreasing timestamps.
func (t *Trace) validate() error {
	if len(t.Name) > maxNameLen {
		return fmt.Errorf("scenario: trace name %d bytes exceeds cap %d", len(t.Name), maxNameLen)
	}
	if len(t.Events) > MaxTraceEvents {
		return fmt.Errorf("scenario: %d events exceed cap %d", len(t.Events), MaxTraceEvents)
	}
	var prev time.Duration
	for i, e := range t.Events {
		if e.At < 0 {
			return fmt.Errorf("scenario: event %d at negative offset %v", i, e.At)
		}
		if e.At < prev {
			return fmt.Errorf("scenario: event %d at %v precedes event %d at %v", i, e.At, i-1, prev)
		}
		prev = e.At
		if e.Kind >= numKinds {
			return fmt.Errorf("scenario: event %d has unknown kind %d", i, e.Kind)
		}
		if len(e.Model) > maxModelLen {
			return fmt.Errorf("scenario: event %d model name %d bytes exceeds cap %d", i, len(e.Model), maxModelLen)
		}
		if e.IsRequest() {
			if e.SLOType != env.LatencySLO && e.SLOType != env.AccuracySLO {
				return fmt.Errorf("scenario: event %d has bad SLO type %d", i, e.SLOType)
			}
			if e.Resolution < 1 || e.Resolution > MaxTraceResolution {
				return fmt.Errorf("scenario: event %d resolution %d outside [1, %d]", i, e.Resolution, MaxTraceResolution)
			}
		} else {
			if e.Device < 0 || e.Device >= MaxTraceDevices {
				return fmt.Errorf("scenario: event %d device %d outside [0, %d)", i, e.Device, MaxTraceDevices)
			}
			if e.Kind == EvMassKill || e.Kind == EvRestartStorm {
				// Value is a fleet fraction, not a ms/rate knob.
				if !(e.Value > 0 && e.Value <= 1) {
					return fmt.Errorf("scenario: event %d %s fraction %v outside (0, 1]", i, e.Kind, e.Value)
				}
			}
		}
	}
	return nil
}

// EncodeBinary writes the trace in its compact binary form. The encoding is
// canonical: the same trace always produces the same bytes, which is what
// the determinism test asserts against.
func (t *Trace) EncodeBinary(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.WriteByte(traceWireVersion)
	buf.WriteByte(byte(len(t.Name)))
	buf.WriteString(t.Name)
	var u8 [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u8[:], v)
		buf.Write(u8[:])
	}
	putU32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u8[:4], v)
		buf.Write(u8[:4])
	}
	putU64(uint64(t.Seed))
	putU32(uint32(len(t.Events)))
	for _, e := range t.Events {
		putU64(uint64(e.At))
		buf.WriteByte(byte(e.Kind))
		buf.WriteByte(byte(e.SLOType))
		putU64(math.Float64bits(e.SLOValue))
		putU32(uint32(e.Resolution))
		buf.WriteByte(byte(len(e.Model)))
		buf.WriteString(e.Model)
		putU32(uint32(e.Device))
		putU64(math.Float64bits(e.Value))
		putU64(uint64(e.Seed))
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// DecodeBinary reads a binary trace, enforcing the format version and the
// size caps before any allocation proportional to untrusted input.
func DecodeBinary(r io.Reader) (*Trace, error) {
	all, err := io.ReadAll(io.LimitReader(r, int64(MaxTraceEvents)*512+4096))
	if err != nil {
		return nil, err
	}
	b := all
	if len(b) < len(traceMagic)+2 {
		return nil, fmt.Errorf("scenario: short trace header")
	}
	if !bytes.Equal(b[:4], traceMagic[:]) {
		return nil, fmt.Errorf("scenario: bad trace magic %q", b[:4])
	}
	if b[4] != traceWireVersion {
		return nil, &TraceVersionError{Got: b[4], Want: traceWireVersion}
	}
	nameLen := int(b[5])
	b = b[6:]
	if len(b) < nameLen+8+4 {
		return nil, fmt.Errorf("scenario: short trace header")
	}
	t := &Trace{Name: string(b[:nameLen])}
	b = b[nameLen:]
	t.Seed = int64(binary.LittleEndian.Uint64(b))
	count := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if count > MaxTraceEvents {
		return nil, fmt.Errorf("scenario: %d events exceed cap %d", count, MaxTraceEvents)
	}
	// A forged count cannot force a large allocation: every event occupies
	// at least minEventSize bytes, so the count must fit the bytes present.
	if count > len(b)/minEventSize {
		return nil, fmt.Errorf("scenario: %d events cannot fit %d remaining bytes", count, len(b))
	}
	t.Events = make([]Event, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < minEventSize {
			return nil, fmt.Errorf("scenario: truncated event %d", i)
		}
		var e Event
		e.At = time.Duration(binary.LittleEndian.Uint64(b))
		e.Kind = Kind(b[8])
		e.SLOType = env.SLOType(b[9])
		e.SLOValue = math.Float64frombits(binary.LittleEndian.Uint64(b[10:]))
		e.Resolution = int(binary.LittleEndian.Uint32(b[18:]))
		modelLen := int(b[22])
		b = b[23:]
		if len(b) < modelLen+4+8+8 {
			return nil, fmt.Errorf("scenario: truncated event %d", i)
		}
		e.Model = string(b[:modelLen])
		b = b[modelLen:]
		e.Device = int(binary.LittleEndian.Uint32(b))
		e.Value = math.Float64frombits(binary.LittleEndian.Uint64(b[4:]))
		e.Seed = int64(binary.LittleEndian.Uint64(b[12:]))
		b = b[20:]
		t.Events = append(t.Events, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("scenario: %d trailing bytes after %d events", len(b), count)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// jsonTrace is the versioned JSON form — human-readable and diffable, for
// checked-in scenario definitions and loadgen output.
type jsonTrace struct {
	Version int         `json:"version"`
	Name    string      `json:"name"`
	Seed    int64       `json:"seed"`
	Events  []jsonEvent `json:"events"`
}

type jsonEvent struct {
	AtNs       int64   `json:"at_ns"`
	Kind       string  `json:"kind"`
	SLOType    string  `json:"slo_type,omitempty"`
	SLOValue   float64 `json:"slo_value,omitempty"`
	Resolution int     `json:"resolution,omitempty"`
	Model      string  `json:"model,omitempty"`
	Device     int     `json:"device,omitempty"`
	Value      float64 `json:"value,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

func sloTypeName(t env.SLOType) string {
	if t == env.AccuracySLO {
		return "accuracy"
	}
	return "latency"
}

func sloTypeFromName(s string) (env.SLOType, error) {
	switch s {
	case "latency", "":
		return env.LatencySLO, nil
	case "accuracy":
		return env.AccuracySLO, nil
	}
	return 0, fmt.Errorf("scenario: unknown SLO type %q", s)
}

// EncodeJSON writes the trace in its versioned JSON form.
func (t *Trace) EncodeJSON(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	jt := jsonTrace{Version: traceWireVersion, Name: t.Name, Seed: t.Seed}
	for _, e := range t.Events {
		je := jsonEvent{AtNs: int64(e.At), Kind: e.Kind.String()}
		if e.IsRequest() {
			je.SLOType = sloTypeName(e.SLOType)
			je.SLOValue = e.SLOValue
			je.Resolution = e.Resolution
			je.Model = e.Model
		} else {
			je.Device = e.Device
			je.Value = e.Value
			je.Seed = e.Seed
		}
		jt.Events = append(jt.Events, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// DecodeJSON reads a versioned JSON trace, applying the same validation as
// the binary decoder.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	dec := json.NewDecoder(io.LimitReader(r, int64(MaxTraceEvents)*1024+1<<20))
	if err := dec.Decode(&jt); err != nil {
		return nil, err
	}
	if jt.Version != traceWireVersion {
		return nil, &TraceVersionError{Got: byte(jt.Version), Want: traceWireVersion}
	}
	t := &Trace{Name: jt.Name, Seed: jt.Seed}
	for i, je := range jt.Events {
		kind, err := kindFromString(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		e := Event{At: time.Duration(je.AtNs), Kind: kind}
		if kind == EvRequest {
			if e.SLOType, err = sloTypeFromName(je.SLOType); err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			e.SLOValue = je.SLOValue
			e.Resolution = je.Resolution
			e.Model = je.Model
		} else {
			e.Device = je.Device
			e.Value = je.Value
			e.Seed = je.Seed
		}
		t.Events = append(t.Events, e)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}
