package scenario

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"murmuration/internal/testutil"
)

func TestSynthesizeDeterministic(t *testing.T) {
	testutil.CheckGoroutines(t)
	opts := GenOptions{
		Name:     "determinism",
		Seed:     7,
		Duration: 2 * time.Second,
		Process: Superpose{
			Diurnal{Base: 40, Amplitude: 20, Period: time.Second},
			FlashCrowd{Base: 5, Bursts: []Burst{{At: 500 * time.Millisecond, Duration: 200 * time.Millisecond, Multiplier: 8}}},
		},
		Env: Churn(ChurnOptions{Devices: 2, MeanUp: 700 * time.Millisecond, Downtime: 100 * time.Millisecond},
			2*time.Second, rand.New(rand.NewSource(7))),
	}
	a, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	ab := encodeBin(t, a)
	bb := encodeBin(t, b)
	// The acceptance bar: same seed, byte-identical trace.
	if !bytes.Equal(ab, bb) {
		t.Fatal("same seed produced different traces")
	}

	opts.Seed = 8
	opts.Env = nil
	c, err := Synthesize(opts)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, encodeBin(t, c)) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestArrivalProcessRates(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(1))
	d := 10 * time.Second

	cases := []struct {
		name   string
		p      ArrivalProcess
		lo, hi int
	}{
		{"poisson", Poisson{Rate: 100}, 800, 1200},
		{"diurnal", Diurnal{Base: 100, Amplitude: 50, Period: time.Second}, 800, 1200},
		{"pareto", Pareto{Rate: 100, Alpha: 1.5}, 100, 5000},
		{"flash", FlashCrowd{Base: 50, Bursts: []Burst{{At: time.Second, Duration: time.Second, Multiplier: 10}}}, 700, 2200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arr := tc.p.Arrivals(d, rng)
			if len(arr) < tc.lo || len(arr) > tc.hi {
				t.Fatalf("%d arrivals over %v, want [%d,%d]", len(arr), d, tc.lo, tc.hi)
			}
			for i := 1; i < len(arr); i++ {
				if arr[i] < arr[i-1] {
					t.Fatalf("arrivals not sorted at %d", i)
				}
				if arr[i] < 0 || arr[i] >= d {
					t.Fatalf("arrival %v out of [0,%v)", arr[i], d)
				}
			}
		})
	}
}

func TestFlashCrowdBurstShape(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(3))
	p := FlashCrowd{Base: 20, Bursts: []Burst{{At: 2 * time.Second, Duration: time.Second, Multiplier: 20}}}
	arr := p.Arrivals(4*time.Second, rng)
	var inBurst, outside int
	for _, a := range arr {
		if a >= 2*time.Second && a < 3*time.Second {
			inBurst++
		} else {
			outside++
		}
	}
	// The burst second carries ~400 arrivals vs ~20/s in the other three
	// seconds: the burst window must dominate even with sampling noise.
	if inBurst < outside {
		t.Fatalf("burst not visible: %d in burst vs %d outside", inBurst, outside)
	}
}

func TestMixCoverage(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr, err := Synthesize(GenOptions{
		Name:     "mix",
		Seed:     11,
		Duration: 2 * time.Second,
		Process:  Poisson{Rate: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}
	types := map[int]int{}
	models := map[string]int{}
	resolutions := map[int]int{}
	for _, ev := range tr.Events {
		if !ev.IsRequest() {
			t.Fatalf("unexpected env event %v", ev.Kind)
		}
		types[int(ev.SLOType)]++
		models[ev.Model]++
		resolutions[ev.Resolution]++
	}
	if len(types) < 2 {
		t.Fatalf("default mix produced only SLO types %v", types)
	}
	if len(models) < 2 {
		t.Fatalf("default mix produced only models %v", models)
	}
	if len(resolutions) < 2 {
		t.Fatalf("default mix produced only resolutions %v", resolutions)
	}
}

func TestChurnEventsPaired(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(5))
	evs := Churn(ChurnOptions{
		Devices: 3, MeanUp: 300 * time.Millisecond, Downtime: 50 * time.Millisecond,
		DegradeEvery: 500 * time.Millisecond, DegradeFor: 100 * time.Millisecond,
		DegradeDelayMs: 120, CalmDelayMs: 2,
	}, 3*time.Second, rng)
	if len(evs) == 0 {
		t.Fatal("no churn events")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events not sorted at %d", i)
		}
	}
	// Per device: leaves and joins strictly alternate, starting with a leave;
	// only a trailing leave (downtime past the horizon) may go unanswered.
	down := map[int]bool{}
	for _, ev := range evs {
		switch ev.Kind {
		case EvDeviceLeave:
			if down[ev.Device] {
				t.Fatalf("double leave for device %d", ev.Device)
			}
			down[ev.Device] = true
		case EvDeviceJoin:
			if !down[ev.Device] {
				t.Fatalf("join without leave for device %d", ev.Device)
			}
			down[ev.Device] = false
		case EvSetDelay:
			// degrade/restore windows; validity is covered by Synthesize
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
}

func TestChurnRestartAsymWindows(t *testing.T) {
	testutil.CheckGoroutines(t)
	rng := rand.New(rand.NewSource(7))
	evs := Churn(ChurnOptions{
		Devices: 2, RestartEvery: 200 * time.Millisecond,
		AsymEvery: 300 * time.Millisecond, AsymFor: 80 * time.Millisecond,
		AsymMinBytes: 8192,
	}, 3*time.Second, rng)
	var restarts, asyms int
	for _, ev := range evs {
		switch ev.Kind {
		case EvRestart:
			restarts++
		case EvAsymDegrade:
			asyms++
			if ev.Value != 80 {
				t.Fatalf("asym window = %v ms, want 80", ev.Value)
			}
			if ev.Seed != 8192 {
				t.Fatalf("asym threshold = %d, want 8192", ev.Seed)
			}
		default:
			t.Fatalf("unexpected kind %v", ev.Kind)
		}
	}
	if restarts == 0 || asyms == 0 {
		t.Fatalf("restarts=%d asyms=%d, want both > 0", restarts, asyms)
	}
	// The timeline must merge into a valid, codable trace.
	tr, err := Synthesize(GenOptions{
		Name: "robust", Seed: 11, Duration: 3 * time.Second,
		Process: Poisson{Rate: 5}, Env: evs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
}
