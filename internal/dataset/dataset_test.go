package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateDefaults(t *testing.T) {
	// Degenerate configs are clamped to sane defaults.
	ds := Generate(Config{Classes: 0, PerClass: 0, Size: 0, Seed: 1})
	if ds.Classes != 2 || ds.Size != 32 {
		t.Fatalf("defaults not applied: classes=%d size=%d", ds.Classes, ds.Size)
	}
	if ds.Len() != 20 {
		t.Fatalf("default PerClass should give 20 samples, got %d", ds.Len())
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A trivial nearest-class-mean classifier on raw pixels should beat
	// chance clearly — otherwise the NAS task would be unlearnable.
	ds := Generate(Config{Classes: 4, PerClass: 40, Size: 16, NoiseStd: 0.2, Seed: 7})
	train, val := ds.Split(0.75)

	dim := 3 * 16 * 16
	means := make([][]float64, 4)
	counts := make([]int, 4)
	for i := range means {
		means[i] = make([]float64, dim)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Labels[i]
		counts[c]++
		for j, v := range train.Images[i].Data {
			means[c][j] += float64(v)
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < val.Len(); i++ {
		best, bestDist := -1, math.MaxFloat64
		for c := range means {
			var d float64
			for j, v := range val.Images[i].Data {
				diff := float64(v) - means[c][j]
				d += diff * diff
			}
			if d < bestDist {
				best, bestDist = c, d
			}
		}
		if best == val.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(val.Len())
	// Random phases wash out class means (textures average toward zero),
	// so raw-pixel nearest-mean is a weak probe — but it must still beat
	// 4-class chance (0.25) clearly; convolutional features do far better
	// (see the nas training test).
	if acc < 0.4 {
		t.Fatalf("nearest-mean accuracy %.2f; classes not separable enough", acc)
	}
}

func TestDifferentSeedsDifferentData(t *testing.T) {
	a := Generate(Config{Classes: 2, PerClass: 2, Size: 8, Seed: 1})
	b := Generate(Config{Classes: 2, PerClass: 2, Size: 8, Seed: 2})
	same := true
	for i := range a.Images[0].Data {
		if a.Images[0].Data[i] != b.Images[0].Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should generate different images")
	}
}

func TestSplitBounds(t *testing.T) {
	ds := Generate(Config{Classes: 2, PerClass: 5, Size: 8, Seed: 3})
	// Extreme fractions are clamped so neither side is empty.
	tr, val := ds.Split(0)
	if tr.Len() < 1 || val.Len() < 1 {
		t.Fatalf("Split(0) produced empty side: %d/%d", tr.Len(), val.Len())
	}
	tr, val = ds.Split(1)
	if tr.Len() < 1 || val.Len() < 1 {
		t.Fatalf("Split(1) produced empty side: %d/%d", tr.Len(), val.Len())
	}
}

func TestRandomBatchShapes(t *testing.T) {
	ds := Generate(Config{Classes: 3, PerClass: 4, Size: 8, Seed: 4})
	rng := rand.New(rand.NewSource(1))
	x, labels := ds.RandomBatch(6, rng)
	if x.Shape[0] != 6 || x.Shape[1] != 3 || x.Shape[2] != 8 || x.Shape[3] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	if len(labels) != 6 {
		t.Fatalf("labels %d", len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 3 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestAllReturnsEverything(t *testing.T) {
	ds := Generate(Config{Classes: 2, PerClass: 3, Size: 8, Seed: 5})
	x, labels := ds.All()
	if x.Shape[0] != 6 || len(labels) != 6 {
		t.Fatal("All() should return every sample")
	}
}

// Property: all pixels stay in [-1, 1] for any noise level and seed.
func TestPixelsBoundedProperty(t *testing.T) {
	f := func(seed int64, noiseRaw uint8) bool {
		ds := Generate(Config{
			Classes: 3, PerClass: 2, Size: 8,
			NoiseStd: float64(noiseRaw) / 64, Seed: seed,
		})
		for _, img := range ds.Images {
			for _, v := range img.Data {
				if v < -1 || v > 1 || math.IsNaN(float64(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
