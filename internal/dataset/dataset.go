// Package dataset generates the deterministic synthetic image-classification
// data that stands in for ImageNet in this reproduction (see DESIGN.md §1).
// Each class is a distinct oriented sinusoidal texture ("Gabor-ish") with
// class-specific frequency, orientation, and color balance, corrupted by
// noise — hard enough that a constant predictor fails, easy enough that the
// tiny in-Go supernet can learn it in seconds.
package dataset

import (
	"math"
	"math/rand"

	"murmuration/internal/tensor"
)

// Dataset is an in-memory labelled image set (NCHW float32 in [-1, 1]).
type Dataset struct {
	Images  []*tensor.Tensor // each (C, H, W)
	Labels  []int
	Classes int
	Size    int // spatial side length
}

// Config controls synthesis.
type Config struct {
	Classes  int
	PerClass int
	Size     int     // image side length
	NoiseStd float64 // additive Gaussian noise
	Seed     int64
}

// Generate synthesizes a dataset. Images within a class share texture
// parameters but differ in phase, offset, and noise.
func Generate(cfg Config) *Dataset {
	if cfg.Classes < 2 {
		cfg.Classes = 2
	}
	if cfg.Size <= 0 {
		cfg.Size = 32
	}
	if cfg.PerClass <= 0 {
		cfg.PerClass = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Classes: cfg.Classes, Size: cfg.Size}
	for class := 0; class < cfg.Classes; class++ {
		// Class-specific texture parameters.
		angle := float64(class) * math.Pi / float64(cfg.Classes)
		freq := 2 * math.Pi * (1.5 + float64(class%4)) / float64(cfg.Size)
		colorShift := float64(class%3) - 1
		for i := 0; i < cfg.PerClass; i++ {
			img := synthesize(rng, cfg.Size, angle, freq, colorShift, cfg.NoiseStd)
			d.Images = append(d.Images, img)
			d.Labels = append(d.Labels, class)
		}
	}
	// Shuffle deterministically.
	rng.Shuffle(len(d.Images), func(i, j int) {
		d.Images[i], d.Images[j] = d.Images[j], d.Images[i]
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	})
	return d
}

func synthesize(rng *rand.Rand, size int, angle, freq, colorShift, noiseStd float64) *tensor.Tensor {
	img := tensor.New(3, size, size)
	phase := rng.Float64() * 2 * math.Pi
	dx := math.Cos(angle)
	dy := math.Sin(angle)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			v := math.Sin(freq*(float64(x)*dx+float64(y)*dy) + phase)
			for c := 0; c < 3; c++ {
				chShift := colorShift * (float64(c) - 1) * 0.3
				val := v + chShift + rng.NormFloat64()*noiseStd
				if val > 1 {
					val = 1
				}
				if val < -1 {
					val = -1
				}
				img.Data[(c*size+y)*size+x] = float32(val)
			}
		}
	}
	return img
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Images) }

// Split divides the dataset into train/validation partitions; frac is the
// training fraction in (0, 1).
func (d *Dataset) Split(frac float64) (train, val *Dataset) {
	n := int(float64(d.Len()) * frac)
	if n < 1 {
		n = 1
	}
	if n >= d.Len() {
		n = d.Len() - 1
	}
	train = &Dataset{Images: d.Images[:n], Labels: d.Labels[:n], Classes: d.Classes, Size: d.Size}
	val = &Dataset{Images: d.Images[n:], Labels: d.Labels[n:], Classes: d.Classes, Size: d.Size}
	return train, val
}

// Batch assembles samples [idx[0], idx[1], ...] into a (N, C, H, W) tensor
// plus labels.
func (d *Dataset) Batch(idx []int) (*tensor.Tensor, []int) {
	n := len(idx)
	c, h, w := 3, d.Size, d.Size
	x := tensor.New(n, c, h, w)
	labels := make([]int, n)
	per := c * h * w
	for i, id := range idx {
		copy(x.Data[i*per:(i+1)*per], d.Images[id].Data)
		labels[i] = d.Labels[id]
	}
	return x, labels
}

// RandomBatch samples a batch of size n uniformly with replacement.
func (d *Dataset) RandomBatch(n int, rng *rand.Rand) (*tensor.Tensor, []int) {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	return d.Batch(idx)
}

// All returns the whole dataset as one batch (for small validation sets).
func (d *Dataset) All() (*tensor.Tensor, []int) {
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return d.Batch(idx)
}
