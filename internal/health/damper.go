package health

import (
	"math"
	"sync"
	"time"
)

// Flap damping, after BGP route-flap damping (RFC 2439): every membership
// flip of a device adds a fixed penalty to that device's figure of merit; the
// penalty decays exponentially with a configured half-life. While the penalty
// is above the suppress threshold the device is held down — reinstatement is
// refused even though the failure detector says Up — and it is released only
// once the penalty has decayed below the reuse threshold and a minimum
// hold-down has elapsed. A device cycling leave/join every few hundred
// milliseconds therefore converges to "out" instead of thrashing the strategy
// cache, the wait estimates, and the AIMD limiters faster than they converge.

// DamperOptions configures a Damper. Zero values select the defaults.
type DamperOptions struct {
	// Penalty is added per flip (default 1000).
	Penalty float64
	// SuppressThreshold is the figure of merit at which a device is held
	// down (default 2500 — i.e. the third flip inside one half-life).
	SuppressThreshold float64
	// ReuseThreshold is the figure of merit below which a suppressed device
	// becomes reusable again (default 800).
	ReuseThreshold float64
	// HalfLife is the penalty's exponential-decay half-life (default 10s).
	HalfLife time.Duration
	// HoldDown is the minimum suppression time once triggered (default 1s):
	// even a penalty that would decay across ReuseThreshold quickly cannot
	// release the device sooner.
	HoldDown time.Duration
	// MaxPenalty caps the accumulated penalty (default 8× SuppressThreshold)
	// so the worst-case hold-down after a long flap storm stays bounded.
	MaxPenalty float64
}

func (o DamperOptions) withDefaults() DamperOptions {
	if o.Penalty <= 0 {
		o.Penalty = 1000
	}
	if o.SuppressThreshold <= 0 {
		o.SuppressThreshold = 2500
	}
	if o.ReuseThreshold <= 0 || o.ReuseThreshold >= o.SuppressThreshold {
		o.ReuseThreshold = o.SuppressThreshold * 0.32
	}
	if o.HalfLife <= 0 {
		o.HalfLife = 10 * time.Second
	}
	if o.HoldDown <= 0 {
		o.HoldDown = time.Second
	}
	if o.MaxPenalty <= 0 {
		o.MaxPenalty = 8 * o.SuppressThreshold
	}
	return o
}

// damped is the damper state for one device.
type damped struct {
	penalty    float64
	lastDecay  time.Time
	suppressed bool
	holdUntil  time.Time
	flips      uint64
}

// Damper is a per-device flap damper on an explicit clock: callers pass now
// to every method, so tests drive it on a synthetic timeline with no sleeps.
// Safe for concurrent use.
type Damper struct {
	opts DamperOptions

	mu   sync.Mutex
	devs []*damped

	suppressions uint64
}

// NewDamper creates a damper over n devices.
func NewDamper(n int, opts DamperOptions) *Damper {
	d := &Damper{opts: opts.withDefaults(), devs: make([]*damped, n)}
	for i := range d.devs {
		d.devs[i] = &damped{}
	}
	return d
}

// decayLocked brings device dv's penalty current to now.
func (d *Damper) decayLocked(dv *damped, now time.Time) {
	if dv.lastDecay.IsZero() {
		dv.lastDecay = now
		return
	}
	dt := now.Sub(dv.lastDecay)
	if dt <= 0 {
		return
	}
	dv.penalty *= math.Exp2(-float64(dt) / float64(d.opts.HalfLife))
	dv.lastDecay = now
}

// RecordFlip charges one membership flip to device i at time now and returns
// whether the device is suppressed afterwards. Crossing the suppress
// threshold starts the hold-down window.
func (d *Damper) RecordFlip(i int, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.devs) {
		return false
	}
	dv := d.devs[i]
	d.decayLocked(dv, now)
	dv.flips++
	dv.penalty += d.opts.Penalty
	if dv.penalty > d.opts.MaxPenalty {
		dv.penalty = d.opts.MaxPenalty
	}
	if !dv.suppressed && dv.penalty >= d.opts.SuppressThreshold {
		dv.suppressed = true
		dv.holdUntil = now.Add(d.opts.HoldDown)
		d.suppressions++
	}
	return dv.suppressed
}

// Suppressed reports whether device i is held down at time now, releasing it
// when the penalty has decayed below the reuse threshold and the hold-down
// has elapsed.
func (d *Damper) Suppressed(i int, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.devs) {
		return false
	}
	dv := d.devs[i]
	if !dv.suppressed {
		return false
	}
	d.decayLocked(dv, now)
	if dv.penalty < d.opts.ReuseThreshold && !now.Before(dv.holdUntil) {
		dv.suppressed = false
		return false
	}
	return true
}

// PenaltyOf returns device i's decayed figure of merit at time now.
func (d *Damper) PenaltyOf(i int, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.devs) {
		return 0
	}
	dv := d.devs[i]
	d.decayLocked(dv, now)
	return dv.penalty
}

// Flips returns how many flips device i has accumulated over its lifetime.
func (d *Damper) Flips(i int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.devs) {
		return 0
	}
	return d.devs[i].flips
}

// Suppressions returns how many times any device crossed into suppression.
func (d *Damper) Suppressions() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.suppressions
}
