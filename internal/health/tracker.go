// Package health scores device usefulness from data-path observations.
//
// The cluster failure detector (internal/cluster) answers "is the device
// alive?" — it cannot see a device that answers 1ms heartbeats while serving
// tiles 10× slow or failing a third of its block calls. This package closes
// that gap with a per-device SLI ledger fed from real tile-RPC outcomes, a
// gray-failure detector that scores each device's window against the fleet
// median, a four-state health machine (Active → Probation → Quarantined →
// Reintegrating) whose quarantine excludes a device from placement without
// tearing down its connections, and a BGP-style flap damper (damper.go) that
// keeps a membership-flapping device from thrashing the caches and limiters.
//
// Everything runs on an explicit clock: callers pass now to every mutating
// method, so unit tests drive the whole machine on a synthetic timeline.
package health

import (
	"sort"
	"sync"
	"time"
)

// State is a device's health-machine state.
type State int

const (
	// Active devices take full traffic.
	Active State = iota
	// Probation devices still take full traffic but have shown gray windows;
	// more grayness quarantines them, clean windows restore Active.
	Probation
	// Quarantined devices are excluded from placement (their connections stay
	// up and low-rate synthetic probes keep them warm and observed).
	Quarantined
	// Reintegrating devices take a ramped fraction of traffic; a relapse
	// aborts back to Quarantined, a full ramp restores Active.
	Reintegrating
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Probation:
		return "probation"
	case Quarantined:
		return "quarantined"
	case Reintegrating:
		return "reintegrating"
	default:
		return "invalid"
	}
}

// Options configures a Tracker. Zero values select the defaults.
type Options struct {
	// Window is the SLI aggregation window (default 1s). Judgement happens
	// at window rolls, driven by Tick.
	Window time.Duration
	// MinSamples is the minimum number of observations in a window for the
	// window to be judged at all (default 3); thinner windows move no
	// streaks in either direction.
	MinSamples int
	// LatencyFactor marks a window gray when the device's p50 tile latency
	// is at least this multiple of the fleet median p50 (default 3).
	LatencyFactor float64
	// FailureRate marks a window gray when (errors+timeouts)/total reaches
	// this fraction (default 0.30). Overload rejections are tracked but are
	// backpressure, not device sickness, so they never trigger grayness.
	FailureRate float64
	// GrayWindows is the hysteresis K: K consecutive gray windows demote
	// Active → Probation, and K more demote Probation → Quarantined
	// (default 3).
	GrayWindows int
	// CleanWindows is the number of consecutive clean windows needed to
	// promote Probation → Active, to arm Quarantined → Reintegrating, and
	// to advance each reintegration ramp step (default 2).
	CleanWindows int
	// ReintegrateAfter is the minimum time a device spends Quarantined
	// before the ramp may start (default 10s).
	ReintegrateAfter time.Duration
	// RampWeights is the reintegration traffic-weight ladder; each clean
	// window advances one step, and completing the ladder restores Active
	// (default 0.1, 0.25, 0.5).
	RampWeights []float64
	// DigestSize bounds the per-window latency digest (default 128 samples,
	// most recent kept).
	DigestSize int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
	if o.LatencyFactor <= 0 {
		o.LatencyFactor = 3
	}
	if o.FailureRate <= 0 {
		o.FailureRate = 0.30
	}
	if o.GrayWindows <= 0 {
		o.GrayWindows = 3
	}
	if o.CleanWindows <= 0 {
		o.CleanWindows = 2
	}
	if o.ReintegrateAfter <= 0 {
		o.ReintegrateAfter = 10 * time.Second
	}
	if len(o.RampWeights) == 0 {
		o.RampWeights = []float64{0.1, 0.25, 0.5}
	}
	if o.DigestSize <= 0 {
		o.DigestSize = 128
	}
	return o
}

// SLI is one judged window's service-level indicators for a device.
type SLI struct {
	P50Ms        float64 // median successful tile latency, milliseconds
	Samples      int     // total observations in the window
	FailureRate  float64 // (errors + timeouts) / total
	OverloadRate float64 // overload rejections / total
}

// Counters are the tracker's monotonic transition counters, exported on the
// serving stats wire (v8).
type Counters struct {
	// GraySuspects counts gray-window detections: windows where a device's
	// SLIs breached the fleet-relative thresholds while its heartbeats said
	// Up.
	GraySuspects uint64
	// Probations counts Active → Probation demotions.
	Probations uint64
	// Quarantines counts entries into Quarantined (from Probation or by
	// reintegration relapse).
	Quarantines uint64
	// Reintegrations counts completed ramps (Reintegrating → Active).
	Reintegrations uint64
}

// Transition describes one health-machine state change.
type Transition struct {
	Device   int
	From, To State
	At       time.Time
}

// devSLI is the tracker's per-device state.
type devSLI struct {
	state State
	up    bool // the heartbeat detector's view; grayness only applies while up

	// current-window accumulators
	lat       []float64 // successful-call latencies, ms, capped ring
	latNext   int       // ring write cursor once the cap is hit
	total     int
	failures  int
	overloads int

	last   SLI  // last judged window
	judged bool // last window had enough samples to judge

	grayStreak  int
	cleanStreak int
	since       time.Time // entry time of the current state
	rampStep    int
	admitSeq    uint64 // weighted-admission rotation counter
}

// Tracker is the per-device SLI ledger and gray-failure health machine.
// Safe for concurrent use. OnTransition, if set before observations start,
// is invoked outside the tracker lock for every state change.
type Tracker struct {
	opts Options

	// OnTransition observes state changes; it runs on the Tick caller's
	// goroutine after the tracker lock is released, so it may call back
	// into the tracker.
	OnTransition func(Transition)

	mu          sync.Mutex
	devs        []*devSLI
	windowStart time.Time
	counters    Counters
}

// NewTracker creates a tracker over n devices, all Active and Up.
func NewTracker(n int, opts Options) *Tracker {
	t := &Tracker{opts: opts.withDefaults(), devs: make([]*devSLI, n)}
	for i := range t.devs {
		t.devs[i] = &devSLI{state: Active, up: true}
	}
	return t
}

// ObserveOK records one successful tile call on device i.
func (t *Tracker) ObserveOK(i int, elapsed time.Duration, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return
	}
	t.primeWindowLocked(now)
	d.total++
	ms := float64(elapsed) / float64(time.Millisecond)
	if len(d.lat) < t.opts.DigestSize {
		d.lat = append(d.lat, ms)
		return
	}
	d.lat[d.latNext] = ms
	d.latNext = (d.latNext + 1) % t.opts.DigestSize
}

// ObserveFailure records one failed or timed-out tile call on device i.
func (t *Tracker) ObserveFailure(i int, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return
	}
	t.primeWindowLocked(now)
	d.total++
	d.failures++
}

// ObserveOverload records one overload rejection on device i. Overload is
// backpressure from a healthy limiter, so it never marks a window gray, but
// the rate is kept on the SLI for observability.
func (t *Tracker) ObserveOverload(i int, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return
	}
	t.primeWindowLocked(now)
	d.total++
	d.overloads++
}

// SetUp records the heartbeat detector's view of device i. Grayness only
// means anything while the detector says Up: a down device's streaks are
// discarded (the cluster layer owns hard failures), and its health state is
// frozen until it returns.
func (t *Tracker) SetUp(i int, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return
	}
	if d.up && !up {
		d.grayStreak, d.cleanStreak = 0, 0
		t.resetWindowLocked(d)
	}
	d.up = up
}

// StateOf returns device i's health state.
func (t *Tracker) StateOf(i int) State {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return Active
	}
	return d.state
}

// LastSLI returns device i's most recently judged window, and whether any
// window has been judged yet.
func (t *Tracker) LastSLI(i int) (SLI, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return SLI{}, false
	}
	return d.last, d.judged
}

// Weight returns the fraction of traffic device i should take: 1 for
// Active and Probation, 0 for Quarantined, and the current ramp weight for
// Reintegrating.
func (t *Tracker) Weight(i int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.weightLocked(t.dev(i))
}

func (t *Tracker) weightLocked(d *devSLI) float64 {
	if d == nil {
		return 1
	}
	switch d.state {
	case Quarantined:
		return 0
	case Reintegrating:
		step := d.rampStep
		if step >= len(t.opts.RampWeights) {
			step = len(t.opts.RampWeights) - 1
		}
		return t.opts.RampWeights[step]
	default:
		return 1
	}
}

// Admit reports whether the next dispatch to device i should proceed under
// its current traffic weight. Admission is a deterministic rotation — at
// weight w, exactly ⌈w·n⌉ of any n consecutive calls are admitted — so the
// reintegration ramp is reproducible under a seeded test.
func (t *Tracker) Admit(i int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := t.dev(i)
	if d == nil {
		return true
	}
	w := t.weightLocked(d)
	if w >= 1 {
		return true
	}
	if w <= 0 {
		return false
	}
	seq := d.admitSeq
	d.admitSeq++
	return int(float64(seq+1)*w) > int(float64(seq)*w)
}

// Counters returns the transition counters.
func (t *Tracker) Counters() Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counters
}

// Tick drives the clock forward: when a full window has elapsed it judges
// every device's window against the fleet, advances the state machine, and
// opens a fresh window. It also arms Quarantined → Reintegrating once the
// quarantine minimum has elapsed. Call it at least twice per window.
func (t *Tracker) Tick(now time.Time) []Transition {
	t.mu.Lock()
	t.primeWindowLocked(now)
	var trs []Transition
	if now.Sub(t.windowStart) >= t.opts.Window {
		trs = t.rollLocked(now)
		t.windowStart = now
	}
	// Quarantine release is time-gated as well as window-gated, so check it
	// on every tick, not just at rolls.
	for i, d := range t.devs {
		if d.state == Quarantined && d.up &&
			d.cleanStreak >= t.opts.CleanWindows &&
			now.Sub(d.since) >= t.opts.ReintegrateAfter {
			trs = append(trs, t.transitionLocked(i, Reintegrating, now))
		}
	}
	t.mu.Unlock()
	if t.OnTransition != nil {
		for _, tr := range trs {
			t.OnTransition(tr)
		}
	}
	return trs
}

// rollLocked judges the closing window and advances every device's machine.
func (t *Tracker) rollLocked(now time.Time) []Transition {
	// First pass: compute each judged device's SLI.
	type verdict struct {
		judged bool
		sli    SLI
		hasP50 bool
	}
	verdicts := make([]verdict, len(t.devs))
	var fleet []float64 // judged, up devices' p50s
	for i, d := range t.devs {
		if d.total < t.opts.MinSamples {
			continue
		}
		v := &verdicts[i]
		v.judged = true
		v.sli = SLI{
			Samples:      d.total,
			FailureRate:  float64(d.failures) / float64(d.total),
			OverloadRate: float64(d.overloads) / float64(d.total),
		}
		if len(d.lat) > 0 {
			v.sli.P50Ms = p50(d.lat)
			v.hasP50 = true
			if d.up {
				fleet = append(fleet, v.sli.P50Ms)
			}
		}
	}
	// The fleet baseline is the *lower* median of the judged p50s: with an
	// even fleet the faster half anchors it, so in a two-device fleet the
	// healthy device sets the bar and the limping one scores against it
	// instead of against their midpoint.
	var fleetMed float64
	if len(fleet) > 0 {
		sort.Float64s(fleet)
		fleetMed = fleet[(len(fleet)-1)/2]
	}

	// Second pass: score and advance.
	var trs []Transition
	for i, d := range t.devs {
		v := verdicts[i]
		if v.judged {
			d.last, d.judged = v.sli, true
		}
		t.resetWindowLocked(d)
		if !v.judged || !d.up {
			continue // thin window or detector-down: move no streaks
		}
		gray := v.sli.FailureRate >= t.opts.FailureRate ||
			(v.hasP50 && fleetMed > 0 && v.sli.P50Ms >= t.opts.LatencyFactor*fleetMed)
		if gray {
			t.counters.GraySuspects++
			d.grayStreak++
			d.cleanStreak = 0
		} else {
			d.cleanStreak++
			d.grayStreak = 0
		}
		switch d.state {
		case Active:
			if d.grayStreak >= t.opts.GrayWindows {
				trs = append(trs, t.transitionLocked(i, Probation, now))
			}
		case Probation:
			if d.grayStreak >= t.opts.GrayWindows {
				trs = append(trs, t.transitionLocked(i, Quarantined, now))
			} else if d.cleanStreak >= t.opts.CleanWindows {
				trs = append(trs, t.transitionLocked(i, Active, now))
			}
		case Quarantined:
			// Release is armed here (cleanStreak) and fired by the
			// time gate in Tick.
		case Reintegrating:
			if gray {
				// Relapse aborts the ramp.
				trs = append(trs, t.transitionLocked(i, Quarantined, now))
			} else if d.cleanStreak >= t.opts.CleanWindows {
				d.cleanStreak = 0
				d.rampStep++
				if d.rampStep >= len(t.opts.RampWeights) {
					trs = append(trs, t.transitionLocked(i, Active, now))
				}
			}
		}
	}
	return trs
}

// transitionLocked moves device i to state to, resets its streaks, and bumps
// the matching counter.
func (t *Tracker) transitionLocked(i int, to State, now time.Time) Transition {
	d := t.devs[i]
	tr := Transition{Device: i, From: d.state, To: to, At: now}
	d.state = to
	d.since = now
	d.grayStreak, d.cleanStreak = 0, 0
	d.rampStep = 0
	switch to {
	case Probation:
		t.counters.Probations++
	case Quarantined:
		t.counters.Quarantines++
	case Active:
		if tr.From == Reintegrating {
			t.counters.Reintegrations++
		}
	}
	return tr
}

func (t *Tracker) dev(i int) *devSLI {
	if i < 0 || i >= len(t.devs) {
		return nil
	}
	return t.devs[i]
}

func (t *Tracker) primeWindowLocked(now time.Time) {
	if t.windowStart.IsZero() {
		t.windowStart = now
	}
}

func (t *Tracker) resetWindowLocked(d *devSLI) {
	d.lat = d.lat[:0]
	d.latNext = 0
	d.total, d.failures, d.overloads = 0, 0, 0
}

// p50 returns the median of xs (lower-interpolated, xs is scratch and may be
// reordered).
func p50(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
