package health

import (
	"testing"
	"time"

	"murmuration/internal/testutil"
)

// All tests in this package run the tracker and damper on a synthetic clock:
// time is a variable advanced by hand, never a sleep.

const win = time.Second

// testOpts: small hysteresis so state walks stay short, one-step ramp
// options where the test doesn't care about ramp length.
func testOpts() Options {
	return Options{
		Window:           win,
		MinSamples:       2,
		LatencyFactor:    3,
		FailureRate:      0.30,
		GrayWindows:      2,
		CleanWindows:     2,
		ReintegrateAfter: 5 * win,
		RampWeights:      []float64{0.25, 0.5},
	}
}

// feedWindow pushes one window of observations for a two-device fleet and
// rolls it: device 0 at p50 slowMs with failures/total failure rate, device 1
// always healthy at 1ms. Returns the transitions fired by the roll.
func feedWindow(tr *Tracker, now time.Time, slowMs float64, failures, total int) []Transition {
	for k := 0; k < total-failures; k++ {
		tr.ObserveOK(0, time.Duration(slowMs*float64(time.Millisecond)), now)
	}
	for k := 0; k < failures; k++ {
		tr.ObserveFailure(0, now)
	}
	for k := 0; k < total; k++ {
		tr.ObserveOK(1, time.Millisecond, now)
	}
	return tr.Tick(now.Add(win))
}

func TestGrayDetectionThresholdAndHysteresis(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now) // prime the window clock

	// A device at 2× the fleet median is below the 3× threshold: never gray.
	for w := 0; w < 4; w++ {
		feedWindow(tr, now, 2, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("2x device state = %v, want Active", got)
	}
	if c := tr.Counters(); c.GraySuspects != 0 {
		t.Fatalf("GraySuspects = %d, want 0", c.GraySuspects)
	}

	// At 10× the fleet median: one gray window is a suspect, not a demotion
	// (hysteresis needs GrayWindows consecutive).
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("after 1 gray window state = %v, want Active (hysteresis)", got)
	}
	if c := tr.Counters(); c.GraySuspects != 1 {
		t.Fatalf("GraySuspects = %d, want 1", c.GraySuspects)
	}

	// A clean window in between resets the streak.
	feedWindow(tr, now, 2, 0, 4)
	now = now.Add(win)
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("gray-clean-gray state = %v, want Active", got)
	}

	// GrayWindows consecutive gray windows demote to Probation.
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Probation {
		t.Fatalf("after consecutive gray windows state = %v, want Probation", got)
	}
	if c := tr.Counters(); c.Probations != 1 {
		t.Fatalf("Probations = %d, want 1", c.Probations)
	}
	// Device 1 anchored the fleet median the whole time and stayed Active.
	if got := tr.StateOf(1); got != Active {
		t.Fatalf("healthy device state = %v, want Active", got)
	}
}

func TestFailureRateGraysWithoutLatency(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	// Same latency as the fleet, but 50% failures: gray on the failure SLI.
	for w := 0; w < 2; w++ {
		feedWindow(tr, now, 1, 2, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Probation {
		t.Fatalf("state = %v, want Probation from failure rate alone", got)
	}
	sli, ok := tr.LastSLI(0)
	if !ok || sli.FailureRate != 0.5 {
		t.Fatalf("LastSLI = %+v ok=%v, want FailureRate 0.5", sli, ok)
	}
}

func TestOverloadIsNotGray(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	// 75% overload rejections are backpressure, not sickness.
	for w := 0; w < 4; w++ {
		tr.ObserveOK(0, time.Millisecond, now)
		for k := 0; k < 3; k++ {
			tr.ObserveOverload(0, now)
		}
		for k := 0; k < 4; k++ {
			tr.ObserveOK(1, time.Millisecond, now)
		}
		tr.Tick(now.Add(win))
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active (overload is not gray)", got)
	}
	if sli, _ := tr.LastSLI(0); sli.OverloadRate != 0.75 {
		t.Fatalf("OverloadRate = %v, want 0.75", sli.OverloadRate)
	}
}

func TestProbationRelapseQuarantinesAndRecoveryRestores(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	// Relapse direction: Probation + GrayWindows more gray → Quarantined.
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	for w := 0; w < 4; w++ { // 2 → Probation, 2 more → Quarantined
		feedWindow(tr, now, 10, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Quarantined {
		t.Fatalf("state = %v, want Quarantined", got)
	}
	if c := tr.Counters(); c.Quarantines != 1 || c.Probations != 1 {
		t.Fatalf("counters = %+v, want 1 quarantine, 1 probation", c)
	}
	if w := tr.Weight(0); w != 0 {
		t.Fatalf("quarantined weight = %v, want 0", w)
	}

	// Recovery direction: Probation + CleanWindows clean → Active.
	tr2 := NewTracker(2, testOpts())
	now = time.Unix(0, 0)
	tr2.Tick(now)
	for w := 0; w < 2; w++ {
		feedWindow(tr2, now, 10, 0, 4)
		now = now.Add(win)
	}
	if got := tr2.StateOf(0); got != Probation {
		t.Fatalf("state = %v, want Probation", got)
	}
	for w := 0; w < 2; w++ {
		feedWindow(tr2, now, 1, 0, 4)
		now = now.Add(win)
	}
	if got := tr2.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active after clean probation", got)
	}
	if c := tr2.Counters(); c.Quarantines != 0 {
		t.Fatalf("Quarantines = %d, want 0 on the recovery path", c.Quarantines)
	}
}

// quarantineDevice walks device 0 of a fresh tracker into Quarantined and
// returns the tracker and the current synthetic time.
func quarantineDevice(t *testing.T) (*Tracker, time.Time) {
	t.Helper()
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	for w := 0; w < 4; w++ {
		feedWindow(tr, now, 10, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Quarantined {
		t.Fatalf("setup: state = %v, want Quarantined", got)
	}
	return tr, now
}

func TestReintegrationRampWeightsAndCompletion(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr, now := quarantineDevice(t)

	// Clean windows alone don't release: the ReintegrateAfter time gate
	// (5 windows here) must also elapse. Quarantine entry was at `now`.
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Quarantined {
		t.Fatalf("state = %v, want Quarantined until ReintegrateAfter", got)
	}
	for w := 0; w < 3; w++ { // windows 3..5 since quarantine
		feedWindow(tr, now, 1, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Reintegrating {
		t.Fatalf("state = %v, want Reintegrating after time gate + clean windows", got)
	}

	// Ramp step 0: weight 0.25, and Admit passes exactly 1 in 4.
	if w := tr.Weight(0); w != 0.25 {
		t.Fatalf("ramp weight = %v, want 0.25", w)
	}
	admits := 0
	for k := 0; k < 8; k++ {
		if tr.Admit(0) {
			admits++
		}
	}
	if admits != 2 {
		t.Fatalf("admitted %d of 8 at weight 0.25, want 2", admits)
	}

	// CleanWindows clean windows advance to step 1 (weight 0.5), the same
	// again completes the ramp back to Active.
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	if w := tr.Weight(0); w != 0.5 {
		t.Fatalf("ramp weight after advance = %v, want 0.5", w)
	}
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active after full ramp", got)
	}
	if c := tr.Counters(); c.Reintegrations != 1 {
		t.Fatalf("Reintegrations = %d, want 1", c.Reintegrations)
	}
	if !tr.Admit(0) || tr.Weight(0) != 1 {
		t.Fatal("active device must take full traffic again")
	}
}

func TestReintegrationRelapseAborts(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr, now := quarantineDevice(t)
	for w := 0; w < 5; w++ {
		feedWindow(tr, now, 1, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Reintegrating {
		t.Fatalf("state = %v, want Reintegrating", got)
	}
	// One gray window during the ramp aborts straight back to Quarantined.
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Quarantined {
		t.Fatalf("state = %v, want Quarantined after relapse", got)
	}
	if c := tr.Counters(); c.Quarantines != 2 || c.Reintegrations != 0 {
		t.Fatalf("counters = %+v, want 2 quarantines, 0 reintegrations", c)
	}
	// The relapse restarts the time gate: clean windows right after it do
	// not release before ReintegrateAfter elapses again.
	feedWindow(tr, now, 1, 0, 4)
	now = now.Add(win)
	feedWindow(tr, now, 1, 0, 4)
	if got := tr.StateOf(0); got != Quarantined {
		t.Fatalf("state = %v, want Quarantined (time gate restarted)", got)
	}
}

func TestDetectorDownFreezesStreaks(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	// The heartbeat detector takes over: grayness no longer applies.
	tr.SetUp(0, false)
	for w := 0; w < 3; w++ {
		feedWindow(tr, now, 10, 0, 4)
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active (down devices move no streaks)", got)
	}
	// Back up: the streak restarts from zero, so demotion takes the full
	// hysteresis again.
	tr.SetUp(0, true)
	feedWindow(tr, now, 10, 0, 4)
	now = now.Add(win)
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active after one post-rejoin gray window", got)
	}
	feedWindow(tr, now, 10, 0, 4)
	if got := tr.StateOf(0); got != Probation {
		t.Fatalf("state = %v, want Probation", got)
	}
}

func TestThinWindowsMoveNoStreaks(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	now := time.Unix(0, 0)
	tr.Tick(now)
	// One sample per window is below MinSamples=2: never judged, never gray.
	for w := 0; w < 5; w++ {
		tr.ObserveOK(0, 100*time.Millisecond, now)
		tr.ObserveOK(1, time.Millisecond, now)
		tr.Tick(now.Add(win))
		now = now.Add(win)
	}
	if got := tr.StateOf(0); got != Active {
		t.Fatalf("state = %v, want Active (thin windows unjudged)", got)
	}
	if _, ok := tr.LastSLI(0); ok {
		t.Fatal("thin windows must not produce a judged SLI")
	}
}

func TestTransitionCallbackFiresOutsideLock(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	tr := NewTracker(2, testOpts())
	var got []Transition
	tr.OnTransition = func(x Transition) {
		// Re-entering the tracker here deadlocks if the callback were fired
		// under the lock.
		_ = tr.StateOf(x.Device)
		got = append(got, x)
	}
	now := time.Unix(0, 0)
	tr.Tick(now)
	for w := 0; w < 4; w++ {
		feedWindow(tr, now, 10, 0, 4)
		now = now.Add(win)
	}
	if len(got) != 2 || got[0].To != Probation || got[1].To != Quarantined {
		t.Fatalf("transitions = %+v, want Probation then Quarantined", got)
	}
	if got[1].From != Probation {
		t.Fatalf("quarantine From = %v, want Probation", got[1].From)
	}
}

func TestDamperSuppressAndPenaltyDecay(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	d := NewDamper(2, DamperOptions{
		Penalty:           1000,
		SuppressThreshold: 2500,
		ReuseThreshold:    800,
		HalfLife:          10 * time.Second,
		HoldDown:          time.Second,
	})
	now := time.Unix(100, 0)

	// Two flips stay below the suppress threshold.
	if d.RecordFlip(0, now) {
		t.Fatal("suppressed after 1 flip")
	}
	now = now.Add(100 * time.Millisecond)
	if d.RecordFlip(0, now) {
		t.Fatal("suppressed after 2 flips")
	}
	if d.Suppressed(0, now) {
		t.Fatal("Suppressed true below threshold")
	}

	// The third flip inside the half-life crosses it.
	now = now.Add(100 * time.Millisecond)
	if !d.RecordFlip(0, now) {
		t.Fatal("not suppressed after 3 rapid flips")
	}
	if !d.Suppressed(0, now) || d.Suppressions() != 1 {
		t.Fatalf("want suppressed with 1 suppression, got %v/%d",
			d.Suppressed(0, now), d.Suppressions())
	}
	// The other device is untouched.
	if d.Suppressed(1, now) || d.Flips(1) != 0 {
		t.Fatal("flips leaked across devices")
	}

	// Exponential decay: one half-life halves the penalty.
	p0 := d.PenaltyOf(0, now)
	p1 := d.PenaltyOf(0, now.Add(10*time.Second))
	if ratio := p1 / p0; ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("penalty decayed to %.2f of start after one half-life, want ~0.5", ratio)
	}

	// Release needs the penalty below ReuseThreshold (~2950 → <800 is just
	// under 2 half-lives) — 30s is comfortably past it and past hold-down.
	if d.Suppressed(0, now.Add(15*time.Second)) != true {
		t.Fatal("released too early")
	}
	if d.Suppressed(0, now.Add(30*time.Second)) {
		t.Fatal("still suppressed after penalty decayed below reuse threshold")
	}
	// Release is sticky until the next suppression.
	if d.Suppressed(0, now.Add(31*time.Second)) {
		t.Fatal("re-suppressed without a flip")
	}
}

func TestDamperHoldDownFloorsRelease(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	// A tiny half-life decays the penalty almost instantly, but the
	// hold-down still pins the device out for its full duration.
	d := NewDamper(1, DamperOptions{
		Penalty:           1000,
		SuppressThreshold: 2500,
		ReuseThreshold:    800,
		HalfLife:          10 * time.Millisecond,
		HoldDown:          5 * time.Second,
	})
	now := time.Unix(0, 0)
	d.RecordFlip(0, now)
	d.RecordFlip(0, now)
	if !d.RecordFlip(0, now) {
		t.Fatal("not suppressed")
	}
	if !d.Suppressed(0, now.Add(time.Second)) {
		t.Fatal("hold-down ignored: released before HoldDown elapsed")
	}
	if d.Suppressed(0, now.Add(5*time.Second)) {
		t.Fatal("not released once hold-down elapsed and penalty decayed")
	}
}

func TestDamperPenaltyCap(t *testing.T) {
	defer testutil.CheckGoroutines(t)
	d := NewDamper(1, DamperOptions{HalfLife: time.Hour})
	now := time.Unix(0, 0)
	for k := 0; k < 100; k++ {
		d.RecordFlip(0, now)
	}
	if p := d.PenaltyOf(0, now); p > 8*2500 {
		t.Fatalf("penalty %v exceeds MaxPenalty cap", p)
	}
	if d.Flips(0) != 100 {
		t.Fatalf("Flips = %d, want 100", d.Flips(0))
	}
}
