package netem

import (
	"bytes"
	"net"
	"testing"
)

func TestSetCorruptFlipsOneBit(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	s := NewShaper(0, 0)
	s.SetCorrupt(1, 7) // every write corrupted, deterministic
	c := NewConn(p1, s)

	msg := bytes.Repeat([]byte{0x55}, 64)
	go func() {
		if _, err := c.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := p2.Read(got); err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for i := range msg {
		if d := msg[i] ^ got[i]; d != 0 {
			for ; d != 0; d &= d - 1 {
				flipped++
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("want exactly one flipped bit, got %d (len preserved: %v)", flipped, len(got) == len(msg))
	}
	if s.Corruptions() != 1 {
		t.Fatalf("Corruptions = %d, want 1", s.Corruptions())
	}
	// The caller's buffer must never be mutated — the flip happens on a copy.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0x55}, 64)) {
		t.Fatal("Write corrupted the caller's buffer in place")
	}
}

func TestSetCorruptZeroRateIsClean(t *testing.T) {
	p1, p2 := net.Pipe()
	defer p1.Close()
	defer p2.Close()
	s := NewShaper(0, 0)
	s.SetCorrupt(1, 1)
	s.SetCorrupt(0, 0) // disable again
	c := NewConn(p1, s)

	msg := []byte("clean passage")
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := p2.Read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("rate 0 corrupted bytes: %q", got)
	}
	if s.Corruptions() != 0 {
		t.Fatalf("Corruptions = %d, want 0", s.Corruptions())
	}
}
