package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestShaperPacesTraffic(t *testing.T) {
	// 8 Mb/s = 1 MB/s. Sending 200 KB beyond the burst should take ~0.2s.
	s := NewShaper(8, 0)
	start := time.Now()
	s.Throttle(220 * 1024) // burst absorbs ~16KB+
	elapsed := time.Since(start)
	if elapsed < 120*time.Millisecond {
		t.Fatalf("throttle too fast: %v", elapsed)
	}
	if elapsed > 800*time.Millisecond {
		t.Fatalf("throttle too slow: %v", elapsed)
	}
}

func TestShaperUnlimited(t *testing.T) {
	s := NewShaper(0, 0)
	start := time.Now()
	s.Throttle(100 * 1024 * 1024)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("unlimited shaper must not block")
	}
}

func TestShaperBurstAllowsSmallMessages(t *testing.T) {
	s := NewShaper(100, 0)
	start := time.Now()
	s.Throttle(1024) // well within burst
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("small messages should pass within the burst allowance")
	}
}

func TestTransferTimeModel(t *testing.T) {
	s := NewShaper(80, 30*time.Millisecond) // 10 MB/s
	got := s.TransferTime(10 * 1000 * 1000)
	want := time.Second + 30*time.Millisecond
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Fatalf("TransferTime = %v, want ~%v", got, want)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	s := NewShaper(0.008, 0) // 1 KB/s: painfully slow
	s.SetRate(8000)          // now 1 GB/s
	start := time.Now()
	s.Throttle(1024 * 1024)
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("SetRate did not take effect")
	}
}

func TestSetDelay(t *testing.T) {
	s := NewShaper(100, 5*time.Millisecond)
	s.SetDelay(25 * time.Millisecond)
	if s.Delay() != 25*time.Millisecond {
		t.Fatalf("Delay = %v", s.Delay())
	}
}

func TestShapedPipeEndToEnd(t *testing.T) {
	// 8 Mb/s, 20 ms delay; a 100 KB message should take >= ~100ms+20ms-burst.
	a, b := Pipe(8, 20*time.Millisecond)
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{0xAB}, 100*1024)
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = buf
	}()
	start := time.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through shaped pipe")
	}
	if elapsed < 60*time.Millisecond {
		t.Fatalf("shaped pipe too fast: %v", elapsed)
	}
}

func TestCopyShaped(t *testing.T) {
	src := bytes.NewReader(bytes.Repeat([]byte{1}, 64*1024))
	var dst bytes.Buffer
	s := NewShaper(0, 0)
	n, err := CopyShaped(&dst, src, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64*1024 || dst.Len() != 64*1024 {
		t.Fatalf("copied %d bytes", n)
	}
}

func TestCopyShapedPropagatesError(t *testing.T) {
	a, b := net.Pipe()
	b.Close() // broken destination
	src := bytes.NewReader(make([]byte, 1024))
	if _, err := CopyShaped(a, src, NewShaper(0, 0)); err == nil {
		// write to closed pipe may succeed on some platforms until flush;
		// tolerate but check copy to closed conn twice fails.
		if _, err2 := CopyShaped(a, bytes.NewReader(make([]byte, 1024)), NewShaper(0, 0)); err2 == nil {
			t.Skip("platform buffers writes to closed pipe")
		}
	}
	a.Close()
}

// TestBlackholeSwallowsWrites scripts an outage window: during it, bytes
// written through the shaped conn never reach the peer (reads time out);
// after it closes, the link carries traffic again.
func TestBlackholeSwallowsWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	sh := NewShaper(0, 0)
	ca := NewConn(a, sh)

	sh.Blackhole(200 * time.Millisecond)
	if !sh.OutageActive() {
		t.Fatal("outage window should be active")
	}
	if n, err := ca.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("blackholed write should report success, got n=%d err=%v", n, err)
	}
	buf := make([]byte, 4)
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := b.Read(buf); err == nil {
		t.Fatal("peer received bytes during a blackhole window")
	}

	// Window expires on its own; traffic flows again.
	time.Sleep(200 * time.Millisecond)
	if sh.OutageActive() {
		t.Fatal("outage window should have expired")
	}
	done := make(chan error, 1)
	go func() {
		_, err := ca.Write([]byte("back"))
		done <- err
	}()
	b.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("post-outage read: %v", err)
	}
	if !bytes.Equal(buf, []byte("back")) {
		t.Fatalf("post-outage payload %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBlackholeClear verifies an explicit clear reopens the link before the
// window would have expired.
func TestBlackholeClear(t *testing.T) {
	sh := NewShaper(0, 0)
	sh.Blackhole(time.Hour)
	if !sh.OutageActive() {
		t.Fatal("window should be active")
	}
	sh.Blackhole(0)
	if sh.OutageActive() {
		t.Fatal("clear did not close the window")
	}
}

// TestLossRateDropsWrites: with 100% loss every write vanishes; with 0% all
// arrive; a middling seeded rate drops a plausible fraction, reproducibly.
func TestLossRateDropsWrites(t *testing.T) {
	sh := NewShaper(0, 0)
	sh.SetLoss(1.0, 7)
	if !sh.drop(Upstream) {
		t.Fatal("rate 1.0 must drop every write")
	}
	sh.SetLoss(0, 0)
	if sh.drop(Upstream) {
		t.Fatal("rate 0 must drop nothing")
	}
	sh.SetLoss(0.5, 7)
	dropped := 0
	for i := 0; i < 1000; i++ {
		if sh.drop(Upstream) {
			dropped++
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("rate 0.5 dropped %d/1000", dropped)
	}
}
