package netem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestShaperPacesTraffic(t *testing.T) {
	// 8 Mb/s = 1 MB/s. Sending 200 KB beyond the burst should take ~0.2s.
	s := NewShaper(8, 0)
	start := time.Now()
	s.Throttle(220 * 1024) // burst absorbs ~16KB+
	elapsed := time.Since(start)
	if elapsed < 120*time.Millisecond {
		t.Fatalf("throttle too fast: %v", elapsed)
	}
	if elapsed > 800*time.Millisecond {
		t.Fatalf("throttle too slow: %v", elapsed)
	}
}

func TestShaperUnlimited(t *testing.T) {
	s := NewShaper(0, 0)
	start := time.Now()
	s.Throttle(100 * 1024 * 1024)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("unlimited shaper must not block")
	}
}

func TestShaperBurstAllowsSmallMessages(t *testing.T) {
	s := NewShaper(100, 0)
	start := time.Now()
	s.Throttle(1024) // well within burst
	if time.Since(start) > 20*time.Millisecond {
		t.Fatal("small messages should pass within the burst allowance")
	}
}

func TestTransferTimeModel(t *testing.T) {
	s := NewShaper(80, 30*time.Millisecond) // 10 MB/s
	got := s.TransferTime(10 * 1000 * 1000)
	want := time.Second + 30*time.Millisecond
	if got < want-10*time.Millisecond || got > want+10*time.Millisecond {
		t.Fatalf("TransferTime = %v, want ~%v", got, want)
	}
}

func TestSetRateTakesEffect(t *testing.T) {
	s := NewShaper(0.008, 0) // 1 KB/s: painfully slow
	s.SetRate(8000)          // now 1 GB/s
	start := time.Now()
	s.Throttle(1024 * 1024)
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("SetRate did not take effect")
	}
}

func TestSetDelay(t *testing.T) {
	s := NewShaper(100, 5*time.Millisecond)
	s.SetDelay(25 * time.Millisecond)
	if s.Delay() != 25*time.Millisecond {
		t.Fatalf("Delay = %v", s.Delay())
	}
}

func TestShapedPipeEndToEnd(t *testing.T) {
	// 8 Mb/s, 20 ms delay; a 100 KB message should take >= ~100ms+20ms-burst.
	a, b := Pipe(8, 20*time.Millisecond)
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte{0xAB}, 100*1024)
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		got = buf
	}()
	start := time.Now()
	if _, err := a.Write(payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted through shaped pipe")
	}
	if elapsed < 60*time.Millisecond {
		t.Fatalf("shaped pipe too fast: %v", elapsed)
	}
}

func TestCopyShaped(t *testing.T) {
	src := bytes.NewReader(bytes.Repeat([]byte{1}, 64*1024))
	var dst bytes.Buffer
	s := NewShaper(0, 0)
	n, err := CopyShaped(&dst, src, s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 64*1024 || dst.Len() != 64*1024 {
		t.Fatalf("copied %d bytes", n)
	}
}

func TestCopyShapedPropagatesError(t *testing.T) {
	a, b := net.Pipe()
	b.Close() // broken destination
	src := bytes.NewReader(make([]byte, 1024))
	if _, err := CopyShaped(a, src, NewShaper(0, 0)); err == nil {
		// write to closed pipe may succeed on some platforms until flush;
		// tolerate but check copy to closed conn twice fails.
		if _, err2 := CopyShaped(a, bytes.NewReader(make([]byte, 1024)), NewShaper(0, 0)); err2 == nil {
			t.Skip("platform buffers writes to closed pipe")
		}
	}
	a.Close()
}
