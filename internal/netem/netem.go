// Package netem emulates network conditions the way the paper uses the `tc`
// traffic-control tool: it imposes a bandwidth cap (token bucket) and an
// additive propagation delay on real byte streams. The runtime wraps its TCP
// connections in a shaped conn so distributed-inference measurements respond
// to the same (bandwidth, delay) variables the RL policy reasons about.
package netem

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Shaper rate-limits a byte stream with a token bucket and delays delivery.
// It is safe for concurrent use by a single writer and a single reader per
// direction (wrap each direction in its own Shaper).
type Shaper struct {
	mu            sync.Mutex
	bytesPerSec   float64
	delay         time.Duration
	tokens        float64
	lastRefill    time.Time
	maxBurstBytes float64

	// Fault injection (see Blackhole / SetLoss / SetCorrupt): writes through
	// a Conn are silently swallowed while an outage window is active or when
	// the loss coin comes up, emulating a link that drops packets or goes
	// dark; the corrupt coin instead flips one random bit in the write,
	// emulating in-flight data corruption.
	outageUntil time.Time
	lossRate    float64
	lossRng     *rand.Rand
	corruptRate float64
	corruptRng  *rand.Rand
	corruptions uint64
}

// NewShaper creates a shaper with the given bandwidth (megabits per second)
// and one-way delay. bandwidthMbps <= 0 means unlimited.
func NewShaper(bandwidthMbps float64, delay time.Duration) *Shaper {
	s := &Shaper{
		bytesPerSec: bandwidthMbps * 1e6 / 8,
		delay:       delay,
		lastRefill:  time.Now(),
	}
	// Allow up to 2 ms worth of burst so small messages aren't over-paced
	// while bulk transfers (and bandwidth probes) still see the line rate.
	s.maxBurstBytes = s.bytesPerSec * 0.002
	if s.maxBurstBytes < 16*1024 {
		s.maxBurstBytes = 16 * 1024
	}
	s.tokens = s.maxBurstBytes
	return s
}

// SetRate updates the bandwidth cap (megabits per second) at runtime.
func (s *Shaper) SetRate(bandwidthMbps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bytesPerSec = bandwidthMbps * 1e6 / 8
	s.maxBurstBytes = s.bytesPerSec * 0.002
	if s.maxBurstBytes < 16*1024 {
		s.maxBurstBytes = 16 * 1024
	}
}

// SetDelay updates the one-way delay at runtime.
func (s *Shaper) SetDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.delay = d
}

// Delay returns the currently configured one-way delay.
func (s *Shaper) Delay() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delay
}

// Blackhole opens an outage window of duration d starting now: every write
// through a Conn wrapping this shaper is silently discarded until the window
// closes, emulating a link that has gone dark (the peer sees nothing, so
// callers observe timeouts rather than connection errors — exactly how a
// dead edge device presents). d <= 0 clears any active window. Tests use
// this to script device churn deterministically.
func (s *Shaper) Blackhole(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d <= 0 {
		s.outageUntil = time.Time{}
		return
	}
	s.outageUntil = time.Now().Add(d)
}

// OutageActive reports whether a Blackhole window is currently open.
func (s *Shaper) OutageActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Now().Before(s.outageUntil)
}

// SetLoss injects random packet loss: each write through a Conn wrapping
// this shaper is independently discarded with probability rate (0 disables).
// The seeded RNG keeps chaos tests reproducible. Note that on a framed
// stream a lost write corrupts the message framing, so the practical effect
// is a torn connection — which is the realistic failure mode.
func (s *Shaper) SetLoss(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lossRate = rate
	if rate > 0 {
		s.lossRng = rand.New(rand.NewSource(seed))
	} else {
		s.lossRng = nil
	}
}

// SetCorrupt injects random data corruption, mirroring SetLoss: each write
// through a Conn wrapping this shaper independently has one random bit
// flipped with probability rate (0 disables). The seeded RNG keeps chaos
// tests reproducible. Unlike a lost write, a corrupted write preserves the
// stream's length, so a checksum-less protocol delivers the flipped bytes
// to the application silently — exactly the failure the rpcx frame
// checksums exist to catch.
func (s *Shaper) SetCorrupt(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.corruptRate = rate
	if rate > 0 {
		s.corruptRng = rand.New(rand.NewSource(seed))
	} else {
		s.corruptRng = nil
	}
}

// Corruptions returns how many writes have had a bit flipped so far.
func (s *Shaper) Corruptions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corruptions
}

// corruptBit returns the bit index to flip in an n-byte write, or -1 when
// the write passes clean.
func (s *Shaper) corruptBit(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == 0 || s.corruptRate <= 0 || s.corruptRng.Float64() >= s.corruptRate {
		return -1
	}
	s.corruptions++
	return s.corruptRng.Intn(n * 8)
}

// drop reports whether the current write should be discarded under the
// active outage window or loss rate.
func (s *Shaper) drop() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Now().Before(s.outageUntil) {
		return true
	}
	return s.lossRate > 0 && s.lossRng.Float64() < s.lossRate
}

// Throttle blocks until n bytes may pass under the bandwidth cap. It returns
// immediately when unlimited. The bucket may go negative (debt), which is
// slept off at the line rate — this keeps the long-run rate exact even for
// writes much larger than the burst allowance.
func (s *Shaper) Throttle(n int) {
	s.mu.Lock()
	if s.bytesPerSec <= 0 {
		s.mu.Unlock()
		return
	}
	now := time.Now()
	s.tokens += now.Sub(s.lastRefill).Seconds() * s.bytesPerSec
	s.lastRefill = now
	if s.tokens > s.maxBurstBytes {
		s.tokens = s.maxBurstBytes
	}
	s.tokens -= float64(n)
	var wait time.Duration
	if s.tokens < 0 {
		wait = time.Duration(-s.tokens / s.bytesPerSec * float64(time.Second))
	}
	s.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// TransferTime returns the modelled time to move n bytes through this shaper
// (serialization + delay), without actually sleeping. This is the same
// formula the RL environment's cost model uses.
func (s *Shaper) TransferTime(n int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.delay
	if s.bytesPerSec > 0 {
		d += time.Duration(float64(n) / s.bytesPerSec * float64(time.Second))
	}
	return d
}

// Conn wraps a net.Conn with independent shapers per direction. The write
// path pays serialization time (token bucket); the read path pays the
// propagation delay once per message burst, approximating a symmetric link.
type Conn struct {
	net.Conn
	writeShaper *Shaper
	readDelayed bool
}

// NewConn wraps c with the given shaper on the write path. The first read
// after each write burst is delayed by the shaper's one-way delay.
func NewConn(c net.Conn, s *Shaper) *Conn {
	return &Conn{Conn: c, writeShaper: s}
}

// Write throttles, then applies the propagation delay before the bytes hit
// the underlying connection — matching "serialize then propagate". During an
// outage window (Blackhole) or a loss event (SetLoss) the bytes are silently
// discarded: the write "succeeds" but the peer never sees it. A corruption
// event (SetCorrupt) instead flips one random bit in a copy of the buffer —
// the peer receives the right number of wrong bytes.
func (c *Conn) Write(p []byte) (int, error) {
	if c.writeShaper.drop() {
		return len(p), nil
	}
	if bit := c.writeShaper.corruptBit(len(p)); bit >= 0 {
		q := append([]byte(nil), p...)
		q[bit/8] ^= 1 << (bit % 8)
		p = q
	}
	c.writeShaper.Throttle(len(p))
	if d := c.writeShaper.Delay(); d > 0 && !c.readDelayed {
		// Charge propagation once per logical message: the caller is
		// expected to write a full message per Write via buffered IO.
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Pipe returns two shaped in-memory connection endpoints (like net.Pipe)
// with the given symmetric bandwidth and delay. Useful for tests that need
// deterministic shaped links without real sockets.
func Pipe(bandwidthMbps float64, delay time.Duration) (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a, NewShaper(bandwidthMbps, delay)), NewConn(b, NewShaper(bandwidthMbps, delay))
}

// CopyShaped copies from src to dst through a shaper, for proxy-style
// emulation of a constrained link.
func CopyShaped(dst io.Writer, src io.Reader, s *Shaper) (int64, error) {
	buf := make([]byte, 32*1024)
	var total int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			s.Throttle(n)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if err != nil {
			if err == io.EOF {
				return total, nil
			}
			return total, err
		}
	}
}
