// Package netem emulates network conditions the way the paper uses the `tc`
// traffic-control tool: it imposes a bandwidth cap (token bucket) and an
// additive propagation delay on real byte streams. The runtime wraps its TCP
// connections in a shaped conn so distributed-inference measurements respond
// to the same (bandwidth, delay) variables the RL policy reasons about.
//
// A Shaper carries independent state per link direction (Upstream: client →
// server requests; Downstream: server → client responses), so chaos tests and
// scenario traces can reproduce asymmetric faults — the half-open link whose
// small heartbeat frames keep flowing while large tensor frames stall in one
// direction. The undirected methods (SetRate, Blackhole, ...) keep their
// historic symmetric meaning by applying to both directions.
package netem

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Dir selects one direction of a shaped link.
type Dir int

// Link directions. Upstream is the client-to-server path (requests, and the
// write path of a Conn created with NewConn); Downstream is the server-to-
// client path (responses).
const (
	Upstream Dir = iota
	Downstream
	numDirs
)

// String names the direction for logs.
func (d Dir) String() string {
	switch d {
	case Upstream:
		return "upstream"
	case Downstream:
		return "downstream"
	}
	return "dir(?)"
}

// dirState is the shaping and fault-injection state of one link direction.
type dirState struct {
	bytesPerSec   float64
	delay         time.Duration
	tokens        float64
	lastRefill    time.Time
	maxBurstBytes float64

	outageUntil time.Time
	lossRate    float64
	lossRng     *rand.Rand
	corruptRate float64
	corruptRng  *rand.Rand

	// Size-dependent stall injection: while the window is open, writes of at
	// least stallMin bytes block until it closes — small frames (heartbeats,
	// ping echoes) pass untouched while large tensor frames hang, which is the
	// differential-observability signature of a half-open link.
	stallMin   int
	stallUntil time.Time
}

func (d *dirState) setRate(bandwidthMbps float64) {
	d.bytesPerSec = bandwidthMbps * 1e6 / 8
	// Allow up to 2 ms worth of burst so small messages aren't over-paced
	// while bulk transfers (and bandwidth probes) still see the line rate.
	d.maxBurstBytes = d.bytesPerSec * 0.002
	if d.maxBurstBytes < 16*1024 {
		d.maxBurstBytes = 16 * 1024
	}
}

// Shaper rate-limits a byte stream with a token bucket and delays delivery,
// with independent state per direction. It is safe for concurrent use.
type Shaper struct {
	mu          sync.Mutex
	dirs        [numDirs]dirState
	corruptions uint64
}

// NewShaper creates a shaper with the given bandwidth (megabits per second)
// and one-way delay, symmetric across both directions. bandwidthMbps <= 0
// means unlimited.
func NewShaper(bandwidthMbps float64, delay time.Duration) *Shaper {
	s := &Shaper{}
	now := time.Now()
	for i := range s.dirs {
		d := &s.dirs[i]
		d.setRate(bandwidthMbps)
		d.delay = delay
		d.lastRefill = now
		d.tokens = d.maxBurstBytes
	}
	return s
}

// eachDir runs f over every direction's state. Caller holds s.mu.
func (s *Shaper) eachDir(f func(*dirState)) {
	for i := range s.dirs {
		f(&s.dirs[i])
	}
}

// SetRate updates the bandwidth cap (megabits per second) in both directions.
func (s *Shaper) SetRate(bandwidthMbps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eachDir(func(d *dirState) { d.setRate(bandwidthMbps) })
}

// SetRateDir updates one direction's bandwidth cap (megabits per second).
func (s *Shaper) SetRateDir(dir Dir, bandwidthMbps float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirs[dir].setRate(bandwidthMbps)
}

// SetDelay updates the one-way delay in both directions.
func (s *Shaper) SetDelay(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eachDir(func(ds *dirState) { ds.delay = d })
}

// SetDelayDir updates one direction's one-way delay.
func (s *Shaper) SetDelayDir(dir Dir, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirs[dir].delay = d
}

// Delay returns the currently configured one-way delay (Upstream — the write
// path of a Conn created with NewConn, and of the rpcx client).
func (s *Shaper) Delay() time.Duration { return s.DelayDir(Upstream) }

// DelayDir returns one direction's configured one-way delay.
func (s *Shaper) DelayDir(dir Dir) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirs[dir].delay
}

// Blackhole opens an outage window of duration d in both directions starting
// now: every write through a Conn wrapping this shaper is silently discarded
// until the window closes, emulating a link that has gone dark (the peer sees
// nothing, so callers observe timeouts rather than connection errors —
// exactly how a dead edge device presents). d <= 0 clears any active window.
// Tests use this to script device churn deterministically.
func (s *Shaper) Blackhole(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	until := windowUntil(d)
	s.eachDir(func(ds *dirState) { ds.outageUntil = until })
}

// BlackholeDir opens (or, with d <= 0, clears) an outage window in one
// direction only — the asymmetric partition where requests still arrive but
// responses vanish, or vice versa.
func (s *Shaper) BlackholeDir(dir Dir, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirs[dir].outageUntil = windowUntil(d)
}

func windowUntil(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// OutageActive reports whether a Blackhole window is currently open in either
// direction.
func (s *Shaper) OutageActive() bool {
	return s.OutageActiveDir(Upstream) || s.OutageActiveDir(Downstream)
}

// OutageActiveDir reports whether one direction's outage window is open.
func (s *Shaper) OutageActiveDir(dir Dir) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Now().Before(s.dirs[dir].outageUntil)
}

// SetLoss injects random packet loss in both directions: each write through a
// Conn wrapping this shaper is independently discarded with probability rate
// (0 disables). The seeded RNG keeps chaos tests reproducible. Note that on a
// framed stream a lost write corrupts the message framing, so the practical
// effect is a torn connection — which is the realistic failure mode.
func (s *Shaper) SetLoss(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eachDir(func(d *dirState) { d.setLoss(rate, seed) })
}

// SetLossDir injects random packet loss in one direction only.
func (s *Shaper) SetLossDir(dir Dir, rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirs[dir].setLoss(rate, seed)
}

func (d *dirState) setLoss(rate float64, seed int64) {
	d.lossRate = rate
	if rate > 0 {
		d.lossRng = rand.New(rand.NewSource(seed))
	} else {
		d.lossRng = nil
	}
}

// SetCorrupt injects random data corruption in both directions, mirroring
// SetLoss: each write through a Conn wrapping this shaper independently has
// one random bit flipped with probability rate (0 disables). The seeded RNG
// keeps chaos tests reproducible. Unlike a lost write, a corrupted write
// preserves the stream's length, so a checksum-less protocol delivers the
// flipped bytes to the application silently — exactly the failure the rpcx
// frame checksums exist to catch.
func (s *Shaper) SetCorrupt(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eachDir(func(d *dirState) { d.setCorrupt(rate, seed) })
}

// SetCorruptDir injects bit-flip corruption in one direction only.
func (s *Shaper) SetCorruptDir(dir Dir, rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirs[dir].setCorrupt(rate, seed)
}

func (d *dirState) setCorrupt(rate float64, seed int64) {
	d.corruptRate = rate
	if rate > 0 {
		d.corruptRng = rand.New(rand.NewSource(seed))
	} else {
		d.corruptRng = nil
	}
}

// Corruptions returns how many writes have had a bit flipped so far (both
// directions).
func (s *Shaper) Corruptions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corruptions
}

// SetStallLarge opens a stall window of duration d in one direction: writes
// of at least minBytes block until the window closes, while smaller writes
// pass untouched. This is the injected form of the classic gray network
// failure — heartbeats and ping echoes (small frames) keep succeeding while
// tensor frames (large) hang, so only an in-flight progress deadline can see
// the fault. minBytes <= 0 or d <= 0 clears the window.
func (s *Shaper) SetStallLarge(dir Dir, minBytes int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := &s.dirs[dir]
	if minBytes <= 0 || d <= 0 {
		ds.stallMin = 0
		ds.stallUntil = time.Time{}
		return
	}
	ds.stallMin = minBytes
	ds.stallUntil = time.Now().Add(d)
}

// StallActive reports whether one direction's stall window is currently open.
func (s *Shaper) StallActive(dir Dir) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := &s.dirs[dir]
	return ds.stallMin > 0 && time.Now().Before(ds.stallUntil)
}

// stall blocks an n-byte write in direction dir while its stall window is
// open and n meets the size threshold. The sleep is chunked so clearing the
// window (SetStallLarge(dir, 0, 0)) releases stalled writers promptly.
func (s *Shaper) stall(dir Dir, n int) {
	for {
		s.mu.Lock()
		ds := &s.dirs[dir]
		active := ds.stallMin > 0 && n >= ds.stallMin && time.Now().Before(ds.stallUntil)
		remaining := time.Until(ds.stallUntil)
		s.mu.Unlock()
		if !active {
			return
		}
		nap := 5 * time.Millisecond
		if remaining < nap {
			nap = remaining
		}
		if nap > 0 {
			time.Sleep(nap)
		}
	}
}

// corruptBit returns the bit index to flip in an n-byte write, or -1 when
// the write passes clean.
func (s *Shaper) corruptBit(dir Dir, n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &s.dirs[dir]
	if n == 0 || d.corruptRate <= 0 || d.corruptRng.Float64() >= d.corruptRate {
		return -1
	}
	s.corruptions++
	return d.corruptRng.Intn(n * 8)
}

// drop reports whether the current write in direction dir should be discarded
// under the active outage window or loss rate.
func (s *Shaper) drop(dir Dir) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &s.dirs[dir]
	if time.Now().Before(d.outageUntil) {
		return true
	}
	return d.lossRate > 0 && d.lossRng.Float64() < d.lossRate
}

// Throttle blocks until n bytes may pass Upstream under the bandwidth cap —
// the legacy single-direction entry point used by the rpcx client's write
// path.
func (s *Shaper) Throttle(n int) { s.ThrottleDir(Upstream, n) }

// ThrottleDir blocks until n bytes may pass in direction dir under its
// bandwidth cap. It returns immediately when unlimited. The bucket may go
// negative (debt), which is slept off at the line rate — this keeps the
// long-run rate exact even for writes much larger than the burst allowance.
func (s *Shaper) ThrottleDir(dir Dir, n int) {
	s.mu.Lock()
	d := &s.dirs[dir]
	if d.bytesPerSec <= 0 {
		s.mu.Unlock()
		return
	}
	now := time.Now()
	d.tokens += now.Sub(d.lastRefill).Seconds() * d.bytesPerSec
	d.lastRefill = now
	if d.tokens > d.maxBurstBytes {
		d.tokens = d.maxBurstBytes
	}
	d.tokens -= float64(n)
	var wait time.Duration
	if d.tokens < 0 {
		wait = time.Duration(-d.tokens / d.bytesPerSec * float64(time.Second))
	}
	s.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// TransferTime returns the modelled time to move n bytes Upstream through
// this shaper (serialization + delay), without actually sleeping. This is the
// same formula the RL environment's cost model uses; for a symmetric shaper
// (any shaper not configured with the *Dir methods) both directions agree.
func (s *Shaper) TransferTime(n int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds := &s.dirs[Upstream]
	d := ds.delay
	if ds.bytesPerSec > 0 {
		d += time.Duration(float64(n) / ds.bytesPerSec * float64(time.Second))
	}
	return d
}

// Conn wraps a net.Conn with a shaper applied to its write path in one link
// direction. A client-side wrap (NewConn) writes Upstream; a server-side wrap
// (NewConnDir with Downstream) writes Downstream, so one shared Shaper can
// shape a full link asymmetrically.
type Conn struct {
	net.Conn
	shaper *Shaper
	dir    Dir
}

// NewConn wraps c with the given shaper on the write path, in the Upstream
// direction (the historic client-side behavior).
func NewConn(c net.Conn, s *Shaper) *Conn {
	return NewConnDir(c, s, Upstream)
}

// NewConnDir wraps c with the given shaper on the write path, in an explicit
// direction. Server-side wraps (e.g. rpcx.Server.WrapConn) use Downstream so
// response traffic is shaped by the Downstream state of the same Shaper the
// client side shares.
func NewConnDir(c net.Conn, s *Shaper, dir Dir) *Conn {
	return &Conn{Conn: c, shaper: s, dir: dir}
}

// Write throttles, then applies the propagation delay before the bytes hit
// the underlying connection — matching "serialize then propagate". During an
// outage window (Blackhole) or a loss event (SetLoss) the bytes are silently
// discarded: the write "succeeds" but the peer never sees it. A corruption
// event (SetCorrupt) instead flips one random bit in a copy of the buffer —
// the peer receives the right number of wrong bytes. A stall window
// (SetStallLarge) blocks large writes until it closes while passing small
// ones.
func (c *Conn) Write(p []byte) (int, error) {
	if c.shaper.drop(c.dir) {
		return len(p), nil
	}
	if bit := c.shaper.corruptBit(c.dir, len(p)); bit >= 0 {
		q := append([]byte(nil), p...)
		q[bit/8] ^= 1 << (bit % 8)
		p = q
	}
	c.shaper.stall(c.dir, len(p))
	c.shaper.ThrottleDir(c.dir, len(p))
	if d := c.shaper.DelayDir(c.dir); d > 0 {
		// Charge propagation once per logical message: the caller is
		// expected to write a full message per Write via buffered IO.
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Pipe returns two shaped in-memory connection endpoints (like net.Pipe)
// with the given symmetric bandwidth and delay. Useful for tests that need
// deterministic shaped links without real sockets.
func Pipe(bandwidthMbps float64, delay time.Duration) (*Conn, *Conn) {
	a, b, _ := PipeShaper(bandwidthMbps, delay)
	return a, b
}

// PipeShaper is Pipe exposing the single Shaper both endpoints share: the
// first endpoint writes Upstream, the second Downstream, so the caller can
// degrade one direction (BlackholeDir, SetStallLarge, ...) while the other
// stays healthy — the in-memory form of an asymmetric partition.
func PipeShaper(bandwidthMbps float64, delay time.Duration) (*Conn, *Conn, *Shaper) {
	a, b := net.Pipe()
	s := NewShaper(bandwidthMbps, delay)
	return NewConnDir(a, s, Upstream), NewConnDir(b, s, Downstream), s
}

// CopyShaped copies from src to dst through a shaper's Upstream direction,
// for proxy-style emulation of a constrained link.
func CopyShaped(dst io.Writer, src io.Reader, s *Shaper) (int64, error) {
	buf := make([]byte, 32*1024)
	var total int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			s.Throttle(n)
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
		}
		if err != nil {
			if err == io.EOF {
				return total, nil
			}
			return total, err
		}
	}
}
