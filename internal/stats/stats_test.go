package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Fatalf("Variance(single) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := []float64{1, 2, 3, 4}
	big := make([]float64, 400)
	for i := range big {
		big[i] = float64(i%4) + 1
	}
	if CI95(big) >= CI95(small) {
		t.Fatalf("CI95 should shrink with n: big=%v small=%v", CI95(big), CI95(small))
	}
}

func TestEMA(t *testing.T) {
	e := NewEMA(0.5)
	if e.Primed() {
		t.Fatal("new EMA should not be primed")
	}
	e.Add(10)
	if !almostEq(e.Value(), 10, 1e-12) {
		t.Fatalf("first sample should set value, got %v", e.Value())
	}
	e.Add(20)
	if !almostEq(e.Value(), 15, 1e-12) {
		t.Fatalf("EMA = %v, want 15", e.Value())
	}
}

func TestEMAClampsAlpha(t *testing.T) {
	e := NewEMA(5)
	e.Add(1)
	e.Add(3)
	if !almostEq(e.Value(), 3, 1e-12) {
		t.Fatalf("alpha clamped to 1 should track last sample, got %v", e.Value())
	}
}

func TestLinRegExactLine(t *testing.T) {
	l := NewLinReg(16)
	for i := 0; i < 10; i++ {
		x := float64(i)
		l.Observe(x, 3+2*x)
	}
	a, b, err := l.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 3, 1e-9) || !almostEq(b, 2, 1e-9) {
		t.Fatalf("fit = (%v, %v), want (3, 2)", a, b)
	}
	if got := l.Predict(20); !almostEq(got, 43, 1e-9) {
		t.Fatalf("Predict(20) = %v, want 43", got)
	}
}

func TestLinRegWindowEviction(t *testing.T) {
	l := NewLinReg(3)
	// Old outlier points must be forgotten once the window slides past them.
	l.Observe(0, 1000)
	for i := 1; i <= 3; i++ {
		l.Observe(float64(i), float64(i))
	}
	if l.N() != 3 {
		t.Fatalf("window size = %d, want 3", l.N())
	}
	if got := l.Predict(4); !almostEq(got, 4, 1e-9) {
		t.Fatalf("Predict(4) = %v, want 4 (outlier evicted)", got)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	l := NewLinReg(8)
	l.Observe(5, 1)
	l.Observe(5, 3)
	if _, _, err := l.Fit(); err == nil {
		t.Fatal("expected error for constant x")
	}
	// Predict falls back to mean of y.
	if got := l.Predict(9); !almostEq(got, 2, 1e-12) {
		t.Fatalf("degenerate Predict = %v, want mean 2", got)
	}
}

func TestReservoirBounded(t *testing.T) {
	r := NewReservoir[int](10, 1)
	for i := 0; i < 1000; i++ {
		r.Add(i)
	}
	if len(r.Items()) != 10 {
		t.Fatalf("reservoir size = %d, want 10", len(r.Items()))
	}
	if r.Seen() != 1000 {
		t.Fatalf("seen = %d, want 1000", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 items should land in a k=50 reservoir about half the time.
	counts := make([]int, 100)
	for seed := int64(0); seed < 200; seed++ {
		r := NewReservoir[int](50, seed)
		for i := 0; i < 100; i++ {
			r.Add(i)
		}
		for _, it := range r.Items() {
			counts[it]++
		}
	}
	for i, c := range counts {
		if c < 60 || c > 140 { // expected 100, generous bounds
			t.Fatalf("item %d selected %d/200 times; reservoir not uniform", i, c)
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi && lo >= Min(xs) && hi <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: EMA output stays within the range of its inputs.
func TestEMABoundedProperty(t *testing.T) {
	f := func(raw []float64, alpha float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewEMA(math.Mod(math.Abs(alpha), 1) + 1e-6)
		for _, x := range xs {
			e.Add(x)
		}
		return e.Value() >= Min(xs)-1e-6 && e.Value() <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
