// Package stats provides the small statistical primitives used across
// Murmuration: summary statistics with confidence intervals, exponential
// moving averages, online linear regression (the monitoring-data predictor
// of §5 of the paper), and reservoir sampling for bounded trace capture.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// CI95 returns the half-width of the 95% confidence interval of the mean of
// xs under a normal approximation (1.96 · s/√n). Zero for n < 2.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// EMA is an exponential moving average with smoothing factor alpha in (0, 1].
// The zero value is not usable; construct with NewEMA.
type EMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEMA returns an EMA with the given smoothing factor. alpha is clamped to
// (0, 1].
func NewEMA(alpha float64) *EMA {
	if alpha <= 0 {
		alpha = 1e-3
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EMA{alpha: alpha}
}

// Add folds x into the average and returns the updated value.
func (e *EMA) Add(x float64) float64 {
	if !e.primed {
		e.value = x
		e.primed = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current average (0 before any sample).
func (e *EMA) Value() float64 { return e.value }

// Primed reports whether at least one sample has been added.
func (e *EMA) Primed() bool { return e.primed }

// ErrInsufficientData is returned by LinReg.Fit when fewer than two distinct
// x values have been observed.
var ErrInsufficientData = errors.New("stats: insufficient data for regression")

// LinReg is a simple online least-squares linear regression y = a + b·x over
// a sliding window. It backs the Monitoring-data Predictor (paper §5), which
// forecasts short-term bandwidth/delay changes.
type LinReg struct {
	window int
	xs, ys []float64
}

// NewLinReg returns a regression over a sliding window of the given size
// (minimum 2).
func NewLinReg(window int) *LinReg {
	if window < 2 {
		window = 2
	}
	return &LinReg{window: window}
}

// Observe appends an (x, y) pair, evicting the oldest when the window is full.
func (l *LinReg) Observe(x, y float64) {
	l.xs = append(l.xs, x)
	l.ys = append(l.ys, y)
	if len(l.xs) > l.window {
		l.xs = l.xs[1:]
		l.ys = l.ys[1:]
	}
}

// N returns the number of points currently in the window.
func (l *LinReg) N() int { return len(l.xs) }

// Fit returns the intercept a and slope b of the least-squares line.
func (l *LinReg) Fit() (a, b float64, err error) {
	n := float64(len(l.xs))
	if n < 2 {
		return 0, 0, ErrInsufficientData
	}
	mx := Mean(l.xs)
	my := Mean(l.ys)
	var sxx, sxy float64
	for i := range l.xs {
		dx := l.xs[i] - mx
		sxx += dx * dx
		sxy += dx * (l.ys[i] - my)
	}
	if sxx == 0 {
		return 0, 0, ErrInsufficientData
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Predict extrapolates the fitted line to x. If the fit is degenerate it
// falls back to the mean of the observed y values.
func (l *LinReg) Predict(x float64) float64 {
	a, b, err := l.Fit()
	if err != nil {
		return Mean(l.ys)
	}
	return a + b*x
}

// Reservoir keeps a uniform random sample of up to k items from a stream.
type Reservoir[T any] struct {
	k     int
	n     int
	items []T
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of capacity k seeded deterministically.
func NewReservoir[T any](k int, seed int64) *Reservoir[T] {
	if k < 1 {
		k = 1
	}
	return &Reservoir[T]{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add offers an item to the reservoir.
func (r *Reservoir[T]) Add(item T) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.items[j] = item
	}
}

// Items returns the current sample (shared backing array; do not mutate).
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items have been offered in total.
func (r *Reservoir[T]) Seen() int { return r.n }

// Window is a fixed-capacity sliding window of observations supporting
// quantile queries — the primitive behind P95-derived hedge delays (Dean &
// Barroso's tail-tolerance playbook: hedge after the 95th-percentile
// expected latency). Not safe for concurrent use; callers guard it.
type Window struct {
	cap  int
	vals []float64
	next int
	full bool
}

// NewWindow returns a window keeping the last cap observations (min 1).
func NewWindow(cap int) *Window {
	if cap < 1 {
		cap = 1
	}
	return &Window{cap: cap, vals: make([]float64, 0, cap)}
}

// Add records one observation, evicting the oldest at capacity.
func (w *Window) Add(v float64) {
	if len(w.vals) < w.cap {
		w.vals = append(w.vals, v)
		return
	}
	w.full = true
	w.vals[w.next] = v
	w.next = (w.next + 1) % w.cap
}

// Len returns the number of retained observations.
func (w *Window) Len() int { return len(w.vals) }

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) of the retained
// observations, or 0 when the window is empty.
func (w *Window) Quantile(p float64) float64 {
	if len(w.vals) == 0 {
		return 0
	}
	return Percentile(w.vals, p)
}
