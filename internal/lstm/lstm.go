// Package lstm implements the 1-layer LSTM that backs Murmuration's RL
// policy (paper Fig. 5: "an LSTM is preferred over a transformer ... due to
// its lower computational power requirement"). It provides a step API for
// acting (one decision at a time with carried state) and full
// backpropagation-through-time for training, plus the per-action-type fully
// connected heads.
package lstm

import (
	"math/rand"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

// LSTM is a single-layer LSTM with input size I and hidden size H. Gate
// order in the stacked weight matrices is [input, forget, cell, output].
type LSTM struct {
	InputSize  int
	HiddenSize int

	Wx *nn.Param // (4H, I)
	Wh *nn.Param // (4H, H)
	B  *nn.Param // (4H)
}

// New creates an LSTM with Xavier-style initialization and forget-gate bias 1
// (standard practice for stable early training).
func New(inputSize, hiddenSize int, rng *rand.Rand) *LSTM {
	l := &LSTM{InputSize: inputSize, HiddenSize: hiddenSize}
	wx := tensor.New(4*hiddenSize, inputSize)
	wx.KaimingInit(rng, inputSize)
	wh := tensor.New(4*hiddenSize, hiddenSize)
	wh.KaimingInit(rng, hiddenSize)
	b := tensor.New(4 * hiddenSize)
	for i := hiddenSize; i < 2*hiddenSize; i++ {
		b.Data[i] = 1 // forget gate bias
	}
	l.Wx = nn.NewParam("lstm.wx", wx)
	l.Wh = nn.NewParam("lstm.wh", wh)
	l.B = nn.NewParam("lstm.b", b)
	return l
}

// Params returns the trainable parameters.
func (l *LSTM) Params() []*nn.Param { return []*nn.Param{l.Wx, l.Wh, l.B} }

// State is the recurrent state (h, c), each (N, H).
type State struct {
	H *tensor.Tensor
	C *tensor.Tensor
}

// ZeroState returns an all-zero state for batch size n.
func (l *LSTM) ZeroState(n int) *State {
	return &State{H: tensor.New(n, l.HiddenSize), C: tensor.New(n, l.HiddenSize)}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{H: s.H.Clone(), C: s.C.Clone()}
}

// stepCache stores everything BPTT needs for one timestep.
type stepCache struct {
	x     *tensor.Tensor // (N, I)
	hPrev *tensor.Tensor // (N, H)
	cPrev *tensor.Tensor // (N, H)
	i, f  *tensor.Tensor // gate activations (N, H)
	g, o  *tensor.Tensor
	c     *tensor.Tensor // new cell state
	tanhC *tensor.Tensor
}

// Step advances one timestep: x is (N, I); returns the new hidden output
// (N, H), the next state, and an opaque cache for Backward.
func (l *LSTM) Step(x *tensor.Tensor, s *State) (*tensor.Tensor, *State, *StepCache) {
	n := x.Shape[0]
	H := l.HiddenSize

	// gates = x·Wxᵀ + h·Whᵀ + b  → (N, 4H)
	gx := tensor.MatMulTransB(x, l.Wx.W)
	gh := tensor.MatMulTransB(s.H, l.Wh.W)
	gates := gx.Add(gh)
	for r := 0; r < n; r++ {
		row := gates.Data[r*4*H : (r+1)*4*H]
		for j := range row {
			row[j] += l.B.W.Data[j]
		}
	}

	iG := tensor.New(n, H)
	fG := tensor.New(n, H)
	gG := tensor.New(n, H)
	oG := tensor.New(n, H)
	for r := 0; r < n; r++ {
		base := r * 4 * H
		for j := 0; j < H; j++ {
			iG.Data[r*H+j] = gates.Data[base+j]
			fG.Data[r*H+j] = gates.Data[base+H+j]
			gG.Data[r*H+j] = gates.Data[base+2*H+j]
			oG.Data[r*H+j] = gates.Data[base+3*H+j]
		}
	}
	iA := nn.SigmoidFwd(iG)
	fA := nn.SigmoidFwd(fG)
	gA := nn.TanhFwd(gG)
	oA := nn.SigmoidFwd(oG)

	c := tensor.New(n, H)
	for k := range c.Data {
		c.Data[k] = fA.Data[k]*s.C.Data[k] + iA.Data[k]*gA.Data[k]
	}
	tc := nn.TanhFwd(c)
	h := tensor.New(n, H)
	for k := range h.Data {
		h.Data[k] = oA.Data[k] * tc.Data[k]
	}

	cache := &StepCache{stepCache{
		x: x, hPrev: s.H, cPrev: s.C,
		i: iA, f: fA, g: gA, o: oA, c: c, tanhC: tc,
	}}
	return h, &State{H: h, C: c}, cache
}

// StepCache is the exported opaque cache type for one timestep.
type StepCache struct{ c stepCache }

// Backward runs BPTT over a recorded sequence of step caches. dhs[t] is the
// gradient of the loss w.r.t. the hidden output at step t (nil for steps with
// no loss). Gradients accumulate into the LSTM parameters; the returned
// slice holds the gradient w.r.t. each step's input.
func (l *LSTM) Backward(caches []*StepCache, dhs []*tensor.Tensor) []*tensor.Tensor {
	if len(caches) != len(dhs) {
		panic("lstm: caches/dhs length mismatch")
	}
	T := len(caches)
	if T == 0 {
		return nil
	}
	n := caches[0].c.x.Shape[0]
	H := l.HiddenSize
	dxs := make([]*tensor.Tensor, T)

	dhNext := tensor.New(n, H)
	dcNext := tensor.New(n, H)

	for t := T - 1; t >= 0; t-- {
		cc := &caches[t].c
		dh := dhNext.Clone()
		if dhs[t] != nil {
			dh.Add(dhs[t])
		}

		// h = o · tanh(c)
		do := tensor.New(n, H)
		dc := dcNext.Clone()
		for k := range dh.Data {
			do.Data[k] = dh.Data[k] * cc.tanhC.Data[k]
			dc.Data[k] += dh.Data[k] * cc.o.Data[k] * (1 - cc.tanhC.Data[k]*cc.tanhC.Data[k])
		}

		// c = f·cPrev + i·g
		di := tensor.New(n, H)
		df := tensor.New(n, H)
		dg := tensor.New(n, H)
		dcPrev := tensor.New(n, H)
		for k := range dc.Data {
			di.Data[k] = dc.Data[k] * cc.g.Data[k]
			df.Data[k] = dc.Data[k] * cc.cPrev.Data[k]
			dg.Data[k] = dc.Data[k] * cc.i.Data[k]
			dcPrev.Data[k] = dc.Data[k] * cc.f.Data[k]
		}

		// Through the gate nonlinearities.
		diPre := nn.SigmoidBwd(di, cc.i)
		dfPre := nn.SigmoidBwd(df, cc.f)
		dgPre := nn.TanhBwd(dg, cc.g)
		doPre := nn.SigmoidBwd(do, cc.o)

		// Stack to (N, 4H).
		dGates := tensor.New(n, 4*H)
		for r := 0; r < n; r++ {
			base := r * 4 * H
			for j := 0; j < H; j++ {
				dGates.Data[base+j] = diPre.Data[r*H+j]
				dGates.Data[base+H+j] = dfPre.Data[r*H+j]
				dGates.Data[base+2*H+j] = dgPre.Data[r*H+j]
				dGates.Data[base+3*H+j] = doPre.Data[r*H+j]
			}
		}

		// gates = x·Wxᵀ + hPrev·Whᵀ + b
		l.Wx.G.Add(tensor.MatMulTransA(dGates, cc.x))
		l.Wh.G.Add(tensor.MatMulTransA(dGates, cc.hPrev))
		for r := 0; r < n; r++ {
			row := dGates.Data[r*4*H : (r+1)*4*H]
			for j, v := range row {
				l.B.G.Data[j] += v
			}
		}
		dxs[t] = tensor.MatMul(dGates, l.Wx.W)
		dhNext = tensor.MatMul(dGates, l.Wh.W)
		dcNext = dcPrev
	}
	return dxs
}

// Head is a fully connected output head mapping the hidden state to logits
// for one action type (paper: "each action type uses a different fully
// connected layer").
type Head struct {
	Name string
	W    *nn.Param // (K, H)
	B    *nn.Param // (K)
}

// NewHead creates a head with K outputs over hidden size H.
func NewHead(name string, hiddenSize, k int, rng *rand.Rand) *Head {
	w := tensor.New(k, hiddenSize)
	w.KaimingInit(rng, hiddenSize)
	return &Head{Name: name, W: nn.NewParam(name+".w", w), B: nn.NewParam(name+".b", tensor.New(k))}
}

// Params returns the head's trainable parameters.
func (h *Head) Params() []*nn.Param { return []*nn.Param{h.W, h.B} }

// Forward computes logits (N, K) from hidden (N, H).
func (h *Head) Forward(hidden *tensor.Tensor) (*tensor.Tensor, *nn.LinearCache) {
	return nn.LinearFwd(hidden, h.W.W, h.B.W)
}

// Backward accumulates parameter gradients and returns dHidden.
func (h *Head) Backward(dLogits *tensor.Tensor, cache *nn.LinearCache) *tensor.Tensor {
	dx, dw, db := nn.LinearBwd(dLogits, cache)
	h.W.G.Add(dw)
	h.B.G.Add(db)
	return dx
}
