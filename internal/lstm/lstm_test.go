package lstm

import (
	"math"
	"math/rand"
	"testing"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

func randT(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

func TestStepShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := New(5, 8, rng)
	s := l.ZeroState(3)
	x := randT(rng, 3, 5)
	h, s2, cache := l.Step(x, s)
	if h.Shape[0] != 3 || h.Shape[1] != 8 {
		t.Fatalf("h shape %v", h.Shape)
	}
	if s2.C.Shape[0] != 3 || s2.C.Shape[1] != 8 {
		t.Fatalf("c shape %v", s2.C.Shape)
	}
	if cache == nil {
		t.Fatal("nil cache")
	}
}

func TestStatePropagation(t *testing.T) {
	// Same input twice from zero state vs carried state must differ,
	// proving the recurrence actually carries information.
	rng := rand.New(rand.NewSource(2))
	l := New(4, 6, rng)
	x := randT(rng, 1, 4)
	h1, s1, _ := l.Step(x, l.ZeroState(1))
	h2, _, _ := l.Step(x, s1)
	same := true
	for i := range h1.Data {
		if math.Abs(float64(h1.Data[i]-h2.Data[i])) > 1e-7 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("hidden state did not evolve across steps")
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := New(2, 4, rng)
	for i := 4; i < 8; i++ {
		if l.B.W.Data[i] != 1 {
			t.Fatal("forget gate bias should be initialized to 1")
		}
	}
	for i := 0; i < 4; i++ {
		if l.B.W.Data[i] != 0 {
			t.Fatal("non-forget biases should start at 0")
		}
	}
}

// seqLoss runs a T-step sequence and returns sum(coef[t] ⊙ h[t]).
func seqLoss(l *LSTM, xs, coefs []*tensor.Tensor) float64 {
	s := l.ZeroState(xs[0].Shape[0])
	var total float64
	for t := range xs {
		var h *tensor.Tensor
		h, s, _ = l.Step(xs[t], s)
		for i := range h.Data {
			total += float64(h.Data[i]) * float64(coefs[t].Data[i])
		}
	}
	return total
}

func TestBPTTGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := New(3, 4, rng)
	T, n := 3, 2
	xs := make([]*tensor.Tensor, T)
	coefs := make([]*tensor.Tensor, T)
	for i := 0; i < T; i++ {
		xs[i] = randT(rng, n, 3)
		coefs[i] = randT(rng, n, 4)
	}

	// Analytic gradients.
	s := l.ZeroState(n)
	caches := make([]*StepCache, T)
	dhs := make([]*tensor.Tensor, T)
	for i := 0; i < T; i++ {
		_, s, caches[i] = l.Step(xs[i], s)
		dhs[i] = coefs[i]
	}
	dxs := l.Backward(caches, dhs)

	loss := func() float64 { return seqLoss(l, xs, coefs) }

	checkParam := func(name string, p *nn.Param) {
		t.Helper()
		const h = 1e-3
		for i := 0; i < len(p.W.Data); i += 7 { // sample every 7th element
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := loss()
			p.W.Data[i] = orig - h
			lm := loss()
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := float64(p.G.Data[i])
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want)/scale > 3e-2 {
				t.Fatalf("%s grad[%d]: got %v want %v", name, i, got, want)
			}
		}
	}
	checkParam("Wx", l.Wx)
	checkParam("Wh", l.Wh)
	checkParam("B", l.B)

	// Input gradients via numerical differentiation.
	const h = 1e-3
	for ti := 0; ti < T; ti++ {
		for i := 0; i < len(xs[ti].Data); i += 3 {
			orig := xs[ti].Data[i]
			xs[ti].Data[i] = orig + h
			lp := loss()
			xs[ti].Data[i] = orig - h
			lm := loss()
			xs[ti].Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := float64(dxs[ti].Data[i])
			scale := math.Max(1, math.Abs(want))
			if math.Abs(got-want)/scale > 3e-2 {
				t.Fatalf("dx[%d][%d]: got %v want %v", ti, i, got, want)
			}
		}
	}
}

func TestBackwardNilDh(t *testing.T) {
	// Steps without loss contribution (nil dh) should be legal.
	rng := rand.New(rand.NewSource(5))
	l := New(3, 4, rng)
	s := l.ZeroState(1)
	var caches []*StepCache
	for i := 0; i < 3; i++ {
		var c *StepCache
		_, s, c = l.Step(randT(rng, 1, 3), s)
		caches = append(caches, c)
	}
	dhs := []*tensor.Tensor{nil, randT(rng, 1, 4), nil}
	dxs := l.Backward(caches, dhs)
	if len(dxs) != 3 {
		t.Fatalf("want 3 input grads, got %d", len(dxs))
	}
	// Gradient at step 2 must be zero: its output feeds nothing.
	if dxs[2].MaxAbs() != 0 {
		t.Fatal("step after the last loss should receive zero gradient")
	}
	// Gradient at step 0 should generally be nonzero (flows through state).
	if dxs[0].MaxAbs() == 0 {
		t.Fatal("gradient should flow backward through recurrent state")
	}
}

func TestLSTMLearnsToMemorize(t *testing.T) {
	// Task: output at final step must classify the first input token.
	// Tests that LSTM + head + Adam can actually learn a memory task.
	rng := rand.New(rand.NewSource(6))
	l := New(2, 16, rng)
	head := NewHead("out", 16, 2, rng)
	params := append(l.Params(), head.Params()...)
	opt := nn.NewAdam(0.01)

	sample := func() ([]*tensor.Tensor, int) {
		label := rng.Intn(2)
		xs := make([]*tensor.Tensor, 4)
		x0 := tensor.New(1, 2)
		x0.Data[label] = 1
		xs[0] = x0
		for i := 1; i < 4; i++ {
			xs[i] = tensor.New(1, 2) // zero padding steps
		}
		return xs, label
	}

	var finalLoss float64
	for epoch := 0; epoch < 300; epoch++ {
		xs, label := sample()
		s := l.ZeroState(1)
		caches := make([]*StepCache, 4)
		var h *tensor.Tensor
		for i := 0; i < 4; i++ {
			h, s, caches[i] = l.Step(xs[i], s)
		}
		logits, lc := head.Forward(h)
		loss, dlogits, _ := nn.SoftmaxCrossEntropy(logits, []int{label})
		finalLoss = loss
		dh := head.Backward(dlogits, lc)
		dhs := []*tensor.Tensor{nil, nil, nil, dh}
		l.Backward(caches, dhs)
		opt.Step(params)
	}
	if finalLoss > 0.3 {
		t.Fatalf("LSTM failed to learn memorization task: loss %v", finalLoss)
	}
	// Verify both classes classify correctly.
	for label := 0; label < 2; label++ {
		xs := make([]*tensor.Tensor, 4)
		x0 := tensor.New(1, 2)
		x0.Data[label] = 1
		xs[0] = x0
		for i := 1; i < 4; i++ {
			xs[i] = tensor.New(1, 2)
		}
		s := l.ZeroState(1)
		var h *tensor.Tensor
		for i := 0; i < 4; i++ {
			h, s, _ = l.Step(xs[i], s)
		}
		logits, _ := head.Forward(h)
		pred := 0
		if logits.Data[1] > logits.Data[0] {
			pred = 1
		}
		if pred != label {
			t.Fatalf("label %d misclassified (logits %v)", label, logits.Data)
		}
	}
}

func TestStateClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := New(2, 3, rng)
	s := l.ZeroState(1)
	_, s2, _ := l.Step(randT(rng, 1, 2), s)
	cl := s2.Clone()
	cl.H.Data[0] = 99
	if s2.H.Data[0] == 99 {
		t.Fatal("Clone must deep-copy hidden state")
	}
}
