// Package device models the heterogeneous edge hardware of the paper's two
// evaluation scenarios: Raspberry Pi 4 nodes and a Ryzen 5500 + GTX 1080
// desktop. A Profile turns per-layer FLOP and byte counts into execution
// time estimates; the same profiles scale the real in-process executor so
// locally measured numbers land in the paper's regime.
package device

import "fmt"

// Kind identifies a device class used in the evaluation.
type Kind int

// Device kinds.
const (
	RaspberryPi4 Kind = iota
	GPUDesktop        // AMD Ryzen 5500 + Nvidia GTX 1080
)

// String returns the human-readable device name.
func (k Kind) String() string {
	switch k {
	case RaspberryPi4:
		return "raspberry-pi-4"
	case GPUDesktop:
		return "ryzen5500-gtx1080"
	default:
		return fmt.Sprintf("device(%d)", int(k))
	}
}

// Profile captures the compute capability of one device. Throughput numbers
// are *effective single-image serving* rates — what a batch-1 request
// achieves end to end, including framework overhead and host↔accelerator
// copies — not peak silicon numbers. They are calibrated jointly against
// published batch-1 CNN latencies and the paper's observed feasibility
// frontier (Fig. 13: MobileNetV3/ResNet50/Inception can meet a 140 ms SLO
// through the GPU desktop under good networks, DenseNet161 and
// ResNeXt101-32x8d never can):
//
//   - RPi4: ~4 GFLOP/s effective NEON fp32 conv throughput (MobileNetV3 ≈
//     115 ms, ResNet50 ≈ 2 s — matching measured Pi 4 numbers), ~2.5 GB/s
//     usable LPDDR4 bandwidth, ~0.3 ms per-layer dispatch overhead.
//   - GTX 1080 desktop: ~120 GFLOP/s effective batch-1 serving throughput
//     (ResNet50 ≈ 73 ms, DenseNet161 ≈ 137 ms, ResNeXt101 ≈ 280 ms
//     end-to-end), ~25 GB/s effective bandwidth, ~0.3 ms per-layer launch
//     overhead.
type Profile struct {
	Kind Kind
	// FlopsPerSec is effective floating-point throughput.
	FlopsPerSec float64
	// MemBytesPerSec is effective memory bandwidth.
	MemBytesPerSec float64
	// LayerOverheadSec is fixed per-layer dispatch/launch overhead.
	LayerOverheadSec float64
	// WeightLoadBytesPerSec is storage→memory bandwidth for loading model
	// weights (used for the model-switch experiment, Fig. 19).
	WeightLoadBytesPerSec float64
}

// NewProfile returns the calibrated profile for a device kind.
func NewProfile(kind Kind) Profile {
	switch kind {
	case GPUDesktop:
		return Profile{
			Kind:                  kind,
			FlopsPerSec:           1.2e11,
			MemBytesPerSec:        25e9,
			LayerOverheadSec:      0.0003,
			WeightLoadBytesPerSec: 1.5e9, // NVMe → GPU
		}
	default:
		return Profile{
			Kind:                  RaspberryPi4,
			FlopsPerSec:           4e9,
			MemBytesPerSec:        2.5e9,
			LayerOverheadSec:      0.0003,
			WeightLoadBytesPerSec: 45e6, // SD card read
		}
	}
}

// LayerTime estimates the execution time in seconds of a layer with the
// given FLOP count and total memory traffic (activations + weights read +
// output written). The layer is limited by whichever of compute or memory
// is slower (roofline), plus fixed overhead.
func (p Profile) LayerTime(flops, memBytes float64) float64 {
	tc := flops / p.FlopsPerSec
	tm := memBytes / p.MemBytesPerSec
	t := tc
	if tm > t {
		t = tm
	}
	return t + p.LayerOverheadSec
}

// WeightLoadTime estimates the time to load `bytes` of model weights from
// storage into memory (Fig. 19's model-switch cost for non-resident models).
func (p Profile) WeightLoadTime(bytes float64) float64 {
	return bytes / p.WeightLoadBytesPerSec
}

// Device is one participant in a deployment: a profile plus its network
// attributes as seen from the local (source) device. The local device has
// index 0 by convention, with zero delay and infinite bandwidth to itself.
type Device struct {
	ID      int
	Profile Profile
	// BandwidthMbps is the available bandwidth of the link from the local
	// device, in megabits per second.
	BandwidthMbps float64
	// DelayMs is the one-way network delay from the local device, in
	// milliseconds.
	DelayMs float64
}

// TransferTime returns the time in seconds to move `bytes` from the local
// device to this device (or back): serialization at the link bandwidth plus
// propagation delay. Transfers to the local device itself are free.
func (d Device) TransferTime(bytes float64) float64 {
	if d.ID == 0 {
		return 0
	}
	bw := d.BandwidthMbps * 1e6 / 8 // bytes per second
	if bw <= 0 {
		return 1e9 // unreachable device: effectively infinite
	}
	return bytes/bw + d.DelayMs/1000
}

// Cluster is an ordered set of devices; index 0 is the local device.
type Cluster struct {
	Devices []Device
}

// NewCluster builds a cluster from profiles. Bandwidth/delay start at the
// provided defaults and can be updated per device (e.g. by the monitor).
func NewCluster(kinds []Kind, bandwidthMbps, delayMs float64) *Cluster {
	c := &Cluster{}
	for i, k := range kinds {
		d := Device{ID: i, Profile: NewProfile(k), BandwidthMbps: bandwidthMbps, DelayMs: delayMs}
		if i == 0 {
			d.DelayMs = 0
		}
		c.Devices = append(c.Devices, d)
	}
	return c
}

// N returns the number of devices.
func (c *Cluster) N() int { return len(c.Devices) }

// Local returns the local device.
func (c *Cluster) Local() Device { return c.Devices[0] }

// SetLink updates the network attributes of device i (no-op for i == 0).
func (c *Cluster) SetLink(i int, bandwidthMbps, delayMs float64) {
	if i <= 0 || i >= len(c.Devices) {
		return
	}
	c.Devices[i].BandwidthMbps = bandwidthMbps
	c.Devices[i].DelayMs = delayMs
}

// Clone deep-copies the cluster.
func (c *Cluster) Clone() *Cluster {
	return &Cluster{Devices: append([]Device(nil), c.Devices...)}
}

// AugmentedComputing returns the paper's first scenario: one RPi4 local
// device paired with a GPU desktop.
func AugmentedComputing(bandwidthMbps, delayMs float64) *Cluster {
	return NewCluster([]Kind{RaspberryPi4, GPUDesktop}, bandwidthMbps, delayMs)
}

// DeviceSwarm returns the paper's second scenario: n RPi4 devices (1 local +
// n-1 remote). The paper uses n = 5.
func DeviceSwarm(n int, bandwidthMbps, delayMs float64) *Cluster {
	kinds := make([]Kind, n)
	for i := range kinds {
		kinds[i] = RaspberryPi4
	}
	return NewCluster(kinds, bandwidthMbps, delayMs)
}
