package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfileRoofline(t *testing.T) {
	p := NewProfile(RaspberryPi4)
	// Compute-bound: lots of flops, no memory.
	tc := p.LayerTime(p.FlopsPerSec, 0)
	if math.Abs(tc-(1+p.LayerOverheadSec)) > 1e-9 {
		t.Fatalf("compute-bound time = %v, want ~1s", tc)
	}
	// Memory-bound: no flops, lots of bytes.
	tm := p.LayerTime(0, p.MemBytesPerSec)
	if math.Abs(tm-(1+p.LayerOverheadSec)) > 1e-9 {
		t.Fatalf("memory-bound time = %v, want ~1s", tm)
	}
	// Max of the two governs.
	both := p.LayerTime(p.FlopsPerSec, 2*p.MemBytesPerSec)
	if math.Abs(both-(2+p.LayerOverheadSec)) > 1e-9 {
		t.Fatalf("roofline time = %v, want ~2s", both)
	}
}

func TestGPUFasterThanPi(t *testing.T) {
	pi := NewProfile(RaspberryPi4)
	gpu := NewProfile(GPUDesktop)
	flops, bytes := 1e9, 50e6
	if gpu.LayerTime(flops, bytes) >= pi.LayerTime(flops, bytes) {
		t.Fatal("GPU must be faster than RPi4 on a conv layer")
	}
	// Calibration sanity: the GPU desktop's batch-1 effective serving
	// throughput is ~30x the Pi's (peak silicon would be ~400x, but
	// single-image serving is launch- and copy-bound — see Profile docs).
	ratio := gpu.FlopsPerSec / pi.FlopsPerSec
	if ratio < 10 || ratio > 100 {
		t.Fatalf("GPU:Pi throughput ratio %v out of expected range", ratio)
	}
}

func TestTransferTime(t *testing.T) {
	d := Device{ID: 1, BandwidthMbps: 100, DelayMs: 20}
	// 12.5 MB at 100 Mb/s = 1s, plus 20ms delay.
	got := d.TransferTime(12.5e6)
	if math.Abs(got-1.02) > 1e-9 {
		t.Fatalf("TransferTime = %v, want 1.02", got)
	}
}

func TestLocalTransferFree(t *testing.T) {
	d := Device{ID: 0, BandwidthMbps: 1, DelayMs: 1000}
	if d.TransferTime(1e9) != 0 {
		t.Fatal("local transfers must be free")
	}
}

func TestZeroBandwidthUnreachable(t *testing.T) {
	d := Device{ID: 2, BandwidthMbps: 0, DelayMs: 0}
	if d.TransferTime(1) < 1e8 {
		t.Fatal("zero bandwidth should be effectively unreachable")
	}
}

func TestClusterConstruction(t *testing.T) {
	c := AugmentedComputing(200, 10)
	if c.N() != 2 {
		t.Fatalf("augmented cluster size %d", c.N())
	}
	if c.Local().Profile.Kind != RaspberryPi4 {
		t.Fatal("local device should be the RPi4")
	}
	if c.Devices[1].Profile.Kind != GPUDesktop {
		t.Fatal("remote device should be the GPU desktop")
	}
	if c.Local().DelayMs != 0 {
		t.Fatal("local device must have zero delay")
	}

	s := DeviceSwarm(5, 100, 20)
	if s.N() != 5 {
		t.Fatalf("swarm size %d", s.N())
	}
	for _, d := range s.Devices {
		if d.Profile.Kind != RaspberryPi4 {
			t.Fatal("swarm devices must all be RPi4")
		}
	}
}

func TestSetLink(t *testing.T) {
	c := DeviceSwarm(3, 100, 20)
	c.SetLink(1, 50, 5)
	if c.Devices[1].BandwidthMbps != 50 || c.Devices[1].DelayMs != 5 {
		t.Fatal("SetLink did not update device 1")
	}
	// Local device and out-of-range indexes are ignored.
	c.SetLink(0, 1, 1)
	if c.Devices[0].BandwidthMbps != 100 {
		t.Fatal("SetLink must not modify the local device")
	}
	c.SetLink(99, 1, 1) // must not panic
}

func TestCloneIndependence(t *testing.T) {
	c := DeviceSwarm(2, 100, 20)
	cl := c.Clone()
	cl.SetLink(1, 1, 1)
	if c.Devices[1].BandwidthMbps == 1 {
		t.Fatal("Clone must not share device slice")
	}
}

// Property: more bandwidth or less delay never increases transfer time.
func TestTransferMonotonicityProperty(t *testing.T) {
	f := func(bytesRaw, bw1Raw, bw2Raw, delayRaw uint32) bool {
		bytes := float64(bytesRaw%1000000) + 1
		bw1 := float64(bw1Raw%500) + 1
		bw2 := bw1 + float64(bw2Raw%500)
		delay := float64(delayRaw % 100)
		d1 := Device{ID: 1, BandwidthMbps: bw1, DelayMs: delay}
		d2 := Device{ID: 1, BandwidthMbps: bw2, DelayMs: delay}
		if d2.TransferTime(bytes) > d1.TransferTime(bytes)+1e-12 {
			return false
		}
		d3 := Device{ID: 1, BandwidthMbps: bw1, DelayMs: delay / 2}
		return d3.TransferTime(bytes) <= d1.TransferTime(bytes)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if RaspberryPi4.String() != "raspberry-pi-4" {
		t.Fatal("RPi4 name")
	}
	if GPUDesktop.String() != "ryzen5500-gtx1080" {
		t.Fatal("GPU name")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}
