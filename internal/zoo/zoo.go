// Package zoo provides per-layer cost profiles of the fixed DNNs the paper
// combines with the Neurosurgeon and ADCNN baselines (§6.2.1, Figs. 13–16):
// MobileNetV3-Large, ResNet-50, Inception-V3, DenseNet-161, and
// ResNeXt101-32x8d.
//
// Layer tables are built from each architecture's published structure
// (stage layout, channel widths, block types) and then scaled so the model
// totals match the published MAC and parameter counts; top-1 accuracies are
// the torchvision ImageNet numbers the paper quotes (e.g. DenseNet161 77.1%,
// ResNeXt101 79.3%).
package zoo

import (
	"fmt"

	"murmuration/internal/supernet"
	"murmuration/internal/tensor"
)

// Model is a fixed DNN: an immutable per-layer cost table plus metadata.
type Model struct {
	Name     string
	Accuracy float64 // ImageNet top-1, percent
	// Layers is ordered input→output; Layers[0] is the stem and the last
	// entry is the classifier head, matching supernet cost tables.
	Layers []supernet.LayerCost
}

// TotalFLOPs returns the model's total FLOP count.
func (m *Model) TotalFLOPs() float64 { return supernet.TotalFLOPs(m.Layers) }

// TotalWeightBytes returns the model's parameter footprint in bytes.
func (m *Model) TotalWeightBytes() float64 { return supernet.TotalWeightBytes(m.Layers) }

// All returns every zoo model, ordered by accuracy.
func All() []*Model {
	return []*Model{
		MobileNetV3(),
		ResNet50(),
		InceptionV3(),
		DenseNet161(),
		ResNeXt101(),
	}
}

// ByName returns the model with the given name, or an error.
func ByName(name string) (*Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("zoo: unknown model %q", name)
}

// layerSpec is an intermediate description used by the builders.
type layerSpec struct {
	name     string
	flops    float64
	weights  float64 // scalar parameter count
	inElems  int
	outElems int
}

// build converts specs into LayerCosts and rescales FLOPs/params to the
// published totals (macs·2 and params, both absolute counts).
func build(name string, acc float64, specs []layerSpec, totalMACs, totalParams float64) *Model {
	var fsum, wsum float64
	for _, s := range specs {
		fsum += s.flops
		wsum += s.weights
	}
	fScale := totalMACs * 2 / fsum
	wScale := totalParams / wsum
	m := &Model{Name: name, Accuracy: acc}
	for _, s := range specs {
		wBytes := s.weights * wScale * 4
		m.Layers = append(m.Layers, supernet.LayerCost{
			Name:          s.name,
			FLOPs:         s.flops * fScale,
			MemBytes:      wBytes + float64(s.inElems+s.outElems)*4,
			WeightBytes:   wBytes,
			InElems:       s.inElems,
			OutElems:      s.outElems,
			Partition:     supernet.Partition{Gy: 1, Gx: 1},
			Quant:         tensor.Bits32,
			Partitionable: true,
		})
	}
	// Stem and head are not spatially partitionable (matches supernet
	// conventions: the head is the centrally executed FC).
	m.Layers[0].Partitionable = false
	m.Layers[len(m.Layers)-1].Partitionable = false
	return m
}

func conv(name string, h, w, cin, cout, k, stride int) layerSpec {
	oh, ow := h/stride, w/stride
	return layerSpec{
		name:     name,
		flops:    2 * float64(oh*ow) * float64(cin*cout*k*k),
		weights:  float64(cin*cout*k*k + cout),
		inElems:  h * w * cin,
		outElems: oh * ow * cout,
	}
}

// MobileNetV3 is MobileNetV3-Large: 219 M MACs, 5.48 M params, 75.2 % top-1.
func MobileNetV3() *Model {
	type blk struct{ cin, exp, cout, k, s, res int }
	blocks := []blk{
		{16, 16, 16, 3, 1, 112},
		{16, 64, 24, 3, 2, 112},
		{24, 72, 24, 3, 1, 56},
		{24, 72, 40, 5, 2, 56},
		{40, 120, 40, 5, 1, 28},
		{40, 120, 40, 5, 1, 28},
		{40, 240, 80, 3, 2, 28},
		{80, 200, 80, 3, 1, 14},
		{80, 184, 80, 3, 1, 14},
		{80, 184, 80, 3, 1, 14},
		{80, 480, 112, 3, 1, 14},
		{112, 672, 112, 3, 1, 14},
		{112, 672, 160, 5, 2, 14},
		{160, 960, 160, 5, 1, 7},
		{160, 960, 160, 5, 1, 7},
	}
	specs := []layerSpec{conv("stem", 224, 224, 3, 16, 3, 2)}
	for i, b := range blocks {
		oh := b.res / b.s
		fl := 2*float64(b.res*b.res)*float64(b.cin*b.exp) + // expand
			2*float64(oh*oh)*float64(b.exp*b.k*b.k) + // depthwise
			2*float64(oh*oh)*float64(b.exp*b.cout) // project
		wts := float64(b.cin*b.exp + b.exp*b.k*b.k + b.exp*b.cout)
		specs = append(specs, layerSpec{
			name:     fmt.Sprintf("block%d", i),
			flops:    fl,
			weights:  wts,
			inElems:  b.res * b.res * b.cin,
			outElems: oh * oh * b.cout,
		})
	}
	specs = append(specs, layerSpec{
		name:     "head",
		flops:    2 * (float64(7*7*160*960) + 960*1280 + 1280*1000),
		weights:  float64(160*960 + 960*1280 + 1280*1000),
		inElems:  7 * 7 * 160,
		outElems: 1000,
	})
	return build("mobilenetv3-large", 75.2, specs, 219e6, 5.48e6)
}

// ResNet50: 4.09 G MACs, 25.6 M params, 76.1 % top-1.
func ResNet50() *Model {
	specs := []layerSpec{conv("stem", 224, 224, 3, 64, 7, 2)}
	type stage struct{ blocks, width, res int }
	stages := []stage{{3, 256, 56}, {4, 512, 28}, {6, 1024, 14}, {3, 2048, 7}}
	cin := 64
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			mid := st.width / 4
			res := st.res
			inRes := res
			if b == 0 && si > 0 {
				inRes = res * 2
			}
			fl := 2*float64(res*res)*float64(cin*mid)/float64(inRes*inRes/(res*res)) +
				2*float64(res*res)*float64(mid*mid*9) +
				2*float64(res*res)*float64(mid*st.width)
			wts := float64(cin*mid + mid*mid*9 + mid*st.width)
			if b == 0 {
				wts += float64(cin * st.width) // downsample projection
			}
			specs = append(specs, layerSpec{
				name:     fmt.Sprintf("s%d.b%d", si, b),
				flops:    fl,
				weights:  wts,
				inElems:  inRes * inRes * cin,
				outElems: res * res * st.width,
			})
			cin = st.width
		}
	}
	specs = append(specs, layerSpec{
		name: "head", flops: 2 * 2048 * 1000, weights: 2048*1000 + 1000,
		inElems: 7 * 7 * 2048, outElems: 1000,
	})
	return build("resnet50", 76.1, specs, 4.09e9, 25.6e6)
}

// InceptionV3: 5.7 G MACs, 27.2 M params, 77.3 % top-1 (299×299 input).
func InceptionV3() *Model {
	specs := []layerSpec{conv("stem", 299, 299, 3, 32, 3, 2)}
	specs = append(specs,
		conv("stem2", 149, 149, 32, 64, 3, 1),
		conv("stem3", 73, 73, 64, 192, 3, 1),
	)
	// Inception module groups: 3 at 35×35/288, 5 at 17×17/768, 2 at 8×8/2048.
	type grp struct{ n, res, ch int }
	for gi, g := range []grp{{3, 35, 288}, {5, 17, 768}, {2, 8, 2048}} {
		for i := 0; i < g.n; i++ {
			// Treat each module as a 1x1-heavy mixed conv of its width.
			fl := 2 * float64(g.res*g.res) * float64(g.ch*g.ch) * 0.6
			specs = append(specs, layerSpec{
				name:     fmt.Sprintf("inception%d.%d", gi, i),
				flops:    fl,
				weights:  float64(g.ch*g.ch) * 0.6,
				inElems:  g.res * g.res * g.ch,
				outElems: g.res * g.res * g.ch,
			})
		}
	}
	specs = append(specs, layerSpec{
		name: "head", flops: 2 * 2048 * 1000, weights: 2048*1000 + 1000,
		inElems: 8 * 8 * 2048, outElems: 1000,
	})
	return build("inceptionv3", 77.3, specs, 5.7e9, 27.2e6)
}

// DenseNet161: 7.79 G MACs, 28.7 M params, 77.1 % top-1.
func DenseNet161() *Model {
	specs := []layerSpec{conv("stem", 224, 224, 3, 96, 7, 2)}
	// Dense blocks (growth 48): widths after each block, halved by
	// transitions; modelled at dense-layer granularity grouped in fours.
	type blk struct{ layers, res, cin, cout int }
	blocks := []blk{
		{6, 56, 96, 384},
		{12, 28, 192, 768},
		{36, 14, 384, 2112},
		{24, 7, 1056, 2208},
	}
	for bi, b := range blocks {
		groups := (b.layers + 3) / 4
		for g := 0; g < groups; g++ {
			frac := float64(g+1) / float64(groups)
			ch := float64(b.cin) + (float64(b.cout)-float64(b.cin))*frac
			fl := 2 * float64(b.res*b.res) * ch * 48 * 4 * 2.5
			specs = append(specs, layerSpec{
				name:     fmt.Sprintf("dense%d.%d", bi, g),
				flops:    fl,
				weights:  ch * 48 * 5,
				inElems:  b.res * b.res * int(ch*0.8),
				outElems: b.res * b.res * int(ch),
			})
		}
	}
	specs = append(specs, layerSpec{
		name: "head", flops: 2 * 2208 * 1000, weights: 2208*1000 + 1000,
		inElems: 7 * 7 * 2208, outElems: 1000,
	})
	return build("densenet161", 77.1, specs, 7.79e9, 28.7e6)
}

// ResNeXt101 is ResNeXt101-32x8d: 16.5 G MACs, 88.8 M params, 79.3 % top-1.
func ResNeXt101() *Model {
	specs := []layerSpec{conv("stem", 224, 224, 3, 64, 7, 2)}
	type stage struct{ blocks, width, mid, res int }
	stages := []stage{{3, 256, 256, 56}, {4, 512, 512, 28}, {23, 1024, 1024, 14}, {3, 2048, 2048, 7}}
	cin := 64
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			res := st.res
			inRes := res
			if b == 0 && si > 0 {
				inRes = res * 2
			}
			// Grouped 3x3 (32 groups) reduces the middle conv cost.
			fl := 2*float64(res*res)*float64(cin*st.mid) +
				2*float64(res*res)*float64(st.mid*st.mid*9)/32 +
				2*float64(res*res)*float64(st.mid*st.width)
			wts := float64(cin*st.mid) + float64(st.mid*st.mid*9)/32 + float64(st.mid*st.width)
			if b == 0 {
				wts += float64(cin * st.width)
			}
			specs = append(specs, layerSpec{
				name:     fmt.Sprintf("s%d.b%d", si, b),
				flops:    fl,
				weights:  wts,
				inElems:  inRes * inRes * cin,
				outElems: res * res * st.width,
			})
			cin = st.width
		}
	}
	specs = append(specs, layerSpec{
		name: "head", flops: 2 * 2048 * 1000, weights: 2048*1000 + 1000,
		inElems: 7 * 7 * 2048, outElems: 1000,
	})
	return build("resnext101-32x8d", 79.3, specs, 16.5e9, 88.8e6)
}
