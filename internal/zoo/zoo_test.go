package zoo

import (
	"math"
	"testing"

	"murmuration/internal/device"
	"murmuration/internal/supernet"
)

func TestAllModelsPresent(t *testing.T) {
	models := All()
	if len(models) != 5 {
		t.Fatalf("expected 5 zoo models, got %d", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		names[m.Name] = true
	}
	for _, want := range []string{"mobilenetv3-large", "resnet50", "inceptionv3", "densenet161", "resnext101-32x8d"} {
		if !names[want] {
			t.Fatalf("missing model %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("resnet50")
	if err != nil || m.Name != "resnet50" {
		t.Fatalf("ByName failed: %v", err)
	}
	if _, err := ByName("vgg16"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestPublishedTotalsPreserved(t *testing.T) {
	cases := []struct {
		name     string
		macs     float64
		params   float64
		accuracy float64
	}{
		{"mobilenetv3-large", 219e6, 5.48e6, 75.2},
		{"resnet50", 4.09e9, 25.6e6, 76.1},
		{"inceptionv3", 5.7e9, 27.2e6, 77.3},
		{"densenet161", 7.79e9, 28.7e6, 77.1},
		{"resnext101-32x8d", 16.5e9, 88.8e6, 79.3},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.TotalFLOPs()-c.macs*2)/(c.macs*2) > 1e-6 {
			t.Fatalf("%s FLOPs %v, want %v", c.name, m.TotalFLOPs(), c.macs*2)
		}
		if math.Abs(m.TotalWeightBytes()-c.params*4)/(c.params*4) > 1e-6 {
			t.Fatalf("%s weights %v bytes, want %v", c.name, m.TotalWeightBytes(), c.params*4)
		}
		if m.Accuracy != c.accuracy {
			t.Fatalf("%s accuracy %v, want %v", c.name, m.Accuracy, c.accuracy)
		}
	}
}

func TestAccuracyOrdering(t *testing.T) {
	// Paper's baseline set: ResNeXt101 > Inception ≈ DenseNet > ResNet50 >
	// MobileNetV3.
	rx, _ := ByName("resnext101-32x8d")
	mb, _ := ByName("mobilenetv3-large")
	if rx.Accuracy <= mb.Accuracy {
		t.Fatal("ResNeXt101 must beat MobileNetV3 on accuracy")
	}
	if rx.TotalFLOPs() <= mb.TotalFLOPs() {
		t.Fatal("ResNeXt101 must cost more FLOPs than MobileNetV3")
	}
}

func TestLayerChainsConsistent(t *testing.T) {
	for _, m := range All() {
		if len(m.Layers) < 5 {
			t.Fatalf("%s has only %d layers", m.Name, len(m.Layers))
		}
		if m.Layers[0].Partitionable || m.Layers[len(m.Layers)-1].Partitionable {
			t.Fatalf("%s stem/head must not be partitionable", m.Name)
		}
		for i, lc := range m.Layers {
			if lc.FLOPs <= 0 || lc.OutElems <= 0 || lc.InElems <= 0 {
				t.Fatalf("%s layer %d (%s) has non-positive fields", m.Name, i, lc.Name)
			}
		}
		if m.Layers[len(m.Layers)-1].OutElems != 1000 {
			t.Fatalf("%s head must emit 1000 classes", m.Name)
		}
	}
}

func TestZooModelsWorkWithLatencyModel(t *testing.T) {
	// The whole point of shared LayerCost: zoo models drop into
	// EstimateLatency unchanged.
	cl := device.AugmentedComputing(100, 10)
	for _, m := range All() {
		p := supernet.LocalPlacement(m.Layers)
		br, err := supernet.EstimateLatency(m.Layers, cl, p)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if br.TotalSec <= 0 {
			t.Fatalf("%s latency %v", m.Name, br.TotalSec)
		}
	}
	// Heavier model must be slower on the same device.
	mb, _ := ByName("mobilenetv3-large")
	rx, _ := ByName("resnext101-32x8d")
	bMB, _ := supernet.EstimateLatency(mb.Layers, cl, supernet.LocalPlacement(mb.Layers))
	bRX, _ := supernet.EstimateLatency(rx.Layers, cl, supernet.LocalPlacement(rx.Layers))
	if bRX.TotalSec <= bMB.TotalSec {
		t.Fatal("ResNeXt101 must be slower than MobileNetV3 on a Pi")
	}
}

func TestPiLatencyRegime(t *testing.T) {
	// MobileNetV3 on an RPi4 runs on the order of 100 ms; heavy models run
	// in seconds. The profiles should land in those regimes (±5x) so the
	// paper's 140 ms/2000 ms SLOs discriminate the same way.
	cl := device.DeviceSwarm(1, 1000, 0)
	mb, _ := ByName("mobilenetv3-large")
	bMB, _ := supernet.EstimateLatency(mb.Layers, cl, supernet.LocalPlacement(mb.Layers))
	if bMB.TotalSec < 0.02 || bMB.TotalSec > 0.5 {
		t.Fatalf("MobileNetV3 on Pi = %v s, want ~0.05–0.5", bMB.TotalSec)
	}
	rx, _ := ByName("resnext101-32x8d")
	bRX, _ := supernet.EstimateLatency(rx.Layers, cl, supernet.LocalPlacement(rx.Layers))
	if bRX.TotalSec < 1 || bRX.TotalSec > 60 {
		t.Fatalf("ResNeXt101 on Pi = %v s, want seconds", bRX.TotalSec)
	}
}
