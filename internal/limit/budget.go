package limit

import (
	"math"
	"sync"
	"time"
)

// BudgetOptions configures a retry Budget. Zero values select the defaults.
type BudgetOptions struct {
	// Ratio is the fraction of primary traffic that may be re-driven as
	// retries, failovers, or hedges (default 0.1): every Deposit (one per
	// primary request) accrues Ratio tokens, every speculative attempt
	// withdraws one whole token.
	Ratio float64
	// MinRate is a time-based trickle in tokens per second (default 1) so a
	// quiet system can still afford its first retry: with no floor, the very
	// first failure after an idle period would find an empty bucket and a
	// cold start could never hedge. The trickle also refills the bucket
	// after a storm drains it, restoring hedging without requiring new
	// primary traffic first.
	MinRate float64
	// Burst caps the balance (default 10 tokens) so a long calm period
	// cannot bank enough credit to finance a storm later. It is also the
	// starting balance: the bucket begins full.
	Burst float64
	// Now supplies the clock (default time.Now); tests inject a synthetic
	// one to exercise the trickle without sleeping.
	Now func() time.Time
}

func (o BudgetOptions) withDefaults() BudgetOptions {
	if o.Ratio <= 0 {
		o.Ratio = 0.1
	}
	if o.MinRate <= 0 {
		o.MinRate = 1
	}
	if o.Burst <= 0 {
		o.Burst = 10
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// BudgetStats is a point-in-time snapshot of a Budget.
type BudgetStats struct {
	// Balance is the current token balance (after applying the trickle).
	Balance float64
	// Deposits counts primary-request deposits, Withdrawals granted
	// speculative attempts, Exhausted refused ones.
	Deposits, Withdrawals, Exhausted uint64
}

// Budget is a Finagle-style global retry budget: a token bucket that every
// speculative attempt — rpcx retry, scheduler failover, hedged second call —
// must withdraw from before firing. Primary requests deposit a fraction of a
// token each, so the total speculative rate is bounded at roughly
// Ratio × primary rate regardless of how many independent recovery
// mechanisms decide to re-drive work at once. That coupling is the point:
// under a correlated failure each mechanism is locally reasonable, but their
// sum is a retry storm, and a shared budget is the only place the sum is
// visible. Safe for concurrent use.
type Budget struct {
	mu   sync.Mutex
	opts BudgetOptions

	balance float64
	last    time.Time // last trickle accrual

	deposits    uint64
	withdrawals uint64
	exhausted   uint64
}

// NewBudget creates a budget; the bucket starts full (at Burst).
func NewBudget(opts BudgetOptions) *Budget {
	b := &Budget{opts: opts.withDefaults()}
	b.balance = b.opts.Burst
	b.last = b.opts.Now()
	return b
}

// accrueLocked folds the elapsed-time trickle into the balance. Caller holds
// b.mu.
func (b *Budget) accrueLocked() {
	now := b.opts.Now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.balance = math.Min(b.opts.Burst, b.balance+dt*b.opts.MinRate)
	}
	b.last = now
}

// Deposit credits the budget for one primary request (Ratio tokens).
func (b *Budget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accrueLocked()
	b.deposits++
	b.balance = math.Min(b.opts.Burst, b.balance+b.opts.Ratio)
}

// TryWithdraw takes one whole token for a speculative attempt, reporting
// false (and counting the refusal) when the bucket cannot cover it. It never
// blocks: an attempt the budget cannot afford should be shed, not queued.
func (b *Budget) TryWithdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accrueLocked()
	if b.balance < 1 {
		b.exhausted++
		return false
	}
	b.balance--
	b.withdrawals++
	return true
}

// Balance returns the current token balance.
func (b *Budget) Balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accrueLocked()
	return b.balance
}

// Snapshot returns the budget's counters and balance.
func (b *Budget) Snapshot() BudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.accrueLocked()
	return BudgetStats{
		Balance:     b.balance,
		Deposits:    b.deposits,
		Withdrawals: b.withdrawals,
		Exhausted:   b.exhausted,
	}
}

// Exhausted returns how many withdrawals the budget has refused.
func (b *Budget) Exhausted() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}
