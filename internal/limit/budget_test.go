package limit

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for exercising the budget's
// time-based trickle without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestBudgetStartsFull(t *testing.T) {
	clk := newFakeClock()
	b := NewBudget(BudgetOptions{Ratio: 0.1, MinRate: 1, Burst: 5, Now: clk.Now})
	if got := b.Balance(); got != 5 {
		t.Fatalf("starting balance %v, want Burst=5", got)
	}
	for i := 0; i < 5; i++ {
		if !b.TryWithdraw() {
			t.Fatalf("withdrawal %d refused from a full bucket", i)
		}
	}
	if b.TryWithdraw() {
		t.Fatal("withdrawal granted from an empty bucket")
	}
	if st := b.Snapshot(); st.Withdrawals != 5 || st.Exhausted != 1 {
		t.Fatalf("counters %+v, want 5 withdrawals / 1 exhausted", st)
	}
}

// TestBudgetRatioBoundsRetryRate is the Finagle property: across any burst,
// granted speculative attempts cannot exceed Ratio × primaries plus the
// initial burst allowance.
func TestBudgetRatioBoundsRetryRate(t *testing.T) {
	clk := newFakeClock()
	const ratio, burst = 0.2, 3.0
	b := NewBudget(BudgetOptions{Ratio: ratio, MinRate: 0.001, Burst: burst, Now: clk.Now})

	const primaries = 500
	granted := 0
	for i := 0; i < primaries; i++ {
		b.Deposit()
		// An adversarial caller retries after every single primary.
		if b.TryWithdraw() {
			granted++
		}
	}
	max := int(ratio*primaries+burst) + 1
	if granted > max {
		t.Fatalf("granted %d speculative attempts for %d primaries, want <= %d", granted, primaries, max)
	}
	if granted == 0 {
		t.Fatal("budget granted nothing — deposits are not crediting")
	}
}

// TestBudgetTrickleRefills: after a storm drains the bucket, elapsed time
// alone (MinRate) restores withdrawals — no new primary traffic required.
func TestBudgetTrickleRefills(t *testing.T) {
	clk := newFakeClock()
	b := NewBudget(BudgetOptions{Ratio: 0.1, MinRate: 2, Burst: 4, Now: clk.Now})
	for b.TryWithdraw() {
	}
	if b.TryWithdraw() {
		t.Fatal("bucket should be empty")
	}
	clk.Advance(time.Second) // 2 tokens of trickle
	if got := b.Balance(); got < 1.9 || got > 2.1 {
		t.Fatalf("balance after 1s trickle = %v, want ~2", got)
	}
	if !b.TryWithdraw() || !b.TryWithdraw() {
		t.Fatal("trickle did not restore withdrawals")
	}
	if b.TryWithdraw() {
		t.Fatal("withdrew more than the trickle accrued")
	}
}

// TestBudgetBurstCapsBanking: a long calm period cannot bank unlimited
// credit — the balance is clamped at Burst.
func TestBudgetBurstCapsBanking(t *testing.T) {
	clk := newFakeClock()
	b := NewBudget(BudgetOptions{Ratio: 0.5, MinRate: 10, Burst: 6, Now: clk.Now})
	clk.Advance(time.Hour)
	for i := 0; i < 1000; i++ {
		b.Deposit()
	}
	if got := b.Balance(); got != 6 {
		t.Fatalf("balance %v after an idle hour + 1000 deposits, want Burst=6", got)
	}
	granted := 0
	for b.TryWithdraw() {
		granted++
	}
	if granted != 6 {
		t.Fatalf("drained %d tokens, want exactly Burst=6", granted)
	}
}

func TestBudgetDefaults(t *testing.T) {
	b := NewBudget(BudgetOptions{})
	if b.opts.Ratio != 0.1 || b.opts.MinRate != 1 || b.opts.Burst != 10 {
		t.Fatalf("defaults %+v", b.opts)
	}
	if !b.TryWithdraw() {
		t.Fatal("default bucket should start full")
	}
}

func TestBudgetConcurrentAccounting(t *testing.T) {
	clk := newFakeClock()
	b := NewBudget(BudgetOptions{Ratio: 0.1, MinRate: 0.001, Burst: 2, Now: clk.Now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Deposit()
				b.TryWithdraw()
			}
		}()
	}
	wg.Wait()
	st := b.Snapshot()
	if st.Deposits != 1600 {
		t.Fatalf("deposits %d, want 1600", st.Deposits)
	}
	if st.Withdrawals+st.Exhausted != 1600 {
		t.Fatalf("withdrawals %d + exhausted %d != 1600 attempts", st.Withdrawals, st.Exhausted)
	}
	if st.Balance < 0 {
		t.Fatalf("balance went negative: %v", st.Balance)
	}
}
