// Package limit provides an adaptive (AIMD) concurrency limiter: a
// semaphore whose capacity grows additively while completions are
// comfortable and collapses multiplicatively on congestion signals
// (timeouts, budget refusals, overload rejections). It is the serving
// layer's self-protection against unbounded in-flight work — instead of
// queueing overload as goroutines and heap, dispatch past the learned
// limit is refused and shed at admission, the same shape as TCP's
// congestion control and the AIMD limiters in Netflix's concurrency-limits.
package limit

import (
	"errors"
	"sync"
	"time"
)

// ErrLimited is the target for errors.Is when an acquisition is refused
// because the adaptive limit is saturated. It is an overload shed — never a
// link or device fault: nothing failed, the system refused to take on work
// it could not finish.
var ErrLimited = errors.New("limit: concurrency limit reached")

// Outcome classifies how a released slot's work ended, driving the AIMD
// dynamics.
type Outcome int

const (
	// OK is a comfortable completion: the limit grows additively
	// (one slot per full window of successes).
	OK Outcome = iota
	// Congested is a congestion signal — timeout, budget refusal, overload
	// rejection, or a misbehaving peer: the limit is cut multiplicatively.
	Congested
	// Neutral releases the slot without moving the limit (application-level
	// failures that say nothing about load).
	Neutral
)

// Options configures an AIMD limiter. Zero values select the defaults.
type Options struct {
	// Min and Max bound the limit (defaults 1 and 64). The limit can never
	// be cut below Min, so progress is always possible.
	Min, Max int
	// Start is the initial limit (default 8, clamped into [Min, Max]).
	Start int
	// Backoff is the multiplicative-decrease factor applied on a congestion
	// signal (default 0.7).
	Backoff float64
	// CutCooldown is the minimum spacing between multiplicative cuts
	// (default 100ms): a burst of N concurrent timeouts is one congestion
	// event, not N — without the cooldown one bad batch would collapse the
	// limit straight to Min.
	CutCooldown time.Duration
}

func (o Options) withDefaults() Options {
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max <= 0 {
		o.Max = 64
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.Start <= 0 {
		o.Start = 8
	}
	if o.Start < o.Min {
		o.Start = o.Min
	}
	if o.Start > o.Max {
		o.Start = o.Max
	}
	if o.Backoff <= 0 || o.Backoff >= 1 {
		o.Backoff = 0.7
	}
	if o.CutCooldown <= 0 {
		o.CutCooldown = 100 * time.Millisecond
	}
	return o
}

// Stats is a point-in-time snapshot of a limiter.
type Stats struct {
	// Limit is the current integer limit; Inflight the held slots.
	Limit, Inflight int
	// Sheds counts refused acquisitions, Cuts multiplicative decreases,
	// Grows full additive steps (+1 slot each).
	Sheds, Cuts, Grows uint64
}

// AIMD is an adaptive concurrency limiter. Safe for concurrent use.
type AIMD struct {
	mu   sync.Mutex
	cond *sync.Cond
	opts Options

	// limit is fractional so additive increase can accumulate +1/limit per
	// comfortable completion (one full slot per window of successes).
	limit    float64
	inflight int
	lastCut  time.Time

	sheds, cuts, grows uint64
}

// New creates a limiter.
func New(opts Options) *AIMD {
	l := &AIMD{opts: opts.withDefaults()}
	l.limit = float64(l.opts.Start)
	l.cond = sync.NewCond(&l.mu)
	return l
}

// TryAcquire takes a slot if one is free under the current limit; it never
// blocks.
func (l *AIMD) TryAcquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= int(l.limit) {
		l.sheds++
		return false
	}
	l.inflight++
	return true
}

// AcquireWait takes a slot, waiting up to maxWait for one to free up. It
// reports false when the limit stayed saturated for the whole wait — the
// caller should shed (ErrLimited) rather than queue further.
func (l *AIMD) AcquireWait(maxWait time.Duration) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight < int(l.limit) {
		l.inflight++
		return true
	}
	if maxWait <= 0 {
		l.sheds++
		return false
	}
	deadline := time.Now().Add(maxWait)
	for l.inflight >= int(l.limit) {
		now := time.Now()
		if !now.Before(deadline) {
			l.sheds++
			return false
		}
		// Cond has no timed wait: a timer broadcast bounds the sleep (the
		// same idiom the serving layer's batch linger uses).
		t := time.AfterFunc(deadline.Sub(now), l.cond.Broadcast)
		l.cond.Wait()
		t.Stop()
	}
	l.inflight++
	return true
}

// Release returns a slot and folds the work's outcome into the limit: OK
// grows it additively (+1 per limit completions), Congested cuts it
// multiplicatively (rate-limited by CutCooldown), Neutral leaves it alone.
func (l *AIMD) Release(o Outcome) {
	l.mu.Lock()
	if l.inflight > 0 {
		l.inflight--
	}
	switch o {
	case OK:
		before := int(l.limit)
		l.limit += 1 / l.limit
		if l.limit > float64(l.opts.Max) {
			l.limit = float64(l.opts.Max)
		}
		if int(l.limit) > before {
			l.grows++
		}
	case Congested:
		l.cutLocked()
	}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Cut applies an external congestion signal not tied to a held slot (e.g. a
// queue overflowing upstream of the limiter).
func (l *AIMD) Cut() {
	l.mu.Lock()
	l.cutLocked()
	l.mu.Unlock()
}

// cutLocked performs one multiplicative decrease, at most once per
// CutCooldown. Caller holds l.mu.
func (l *AIMD) cutLocked() {
	now := time.Now()
	if now.Sub(l.lastCut) < l.opts.CutCooldown {
		return
	}
	l.lastCut = now
	l.limit *= l.opts.Backoff
	if l.limit < float64(l.opts.Min) {
		l.limit = float64(l.opts.Min)
	}
	l.cuts++
}

// Reset restores the limit to its starting value and clears the cut
// cooldown, waking any blocked acquirers. The serving layer calls it when a
// device is reinstated after an outage or completes health reintegration:
// the old limit was learned against a failing device, and making the
// recovered one climb back additively from a collapsed limit would throttle
// it for no reason. Lifetime counters and in-flight slots are preserved.
func (l *AIMD) Reset() {
	l.mu.Lock()
	l.limit = float64(l.opts.Start)
	l.lastCut = time.Time{}
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Limit returns the current integer limit.
func (l *AIMD) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Inflight returns the number of held slots.
func (l *AIMD) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Snapshot returns the limiter's counters and gauges.
func (l *AIMD) Snapshot() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Limit: int(l.limit), Inflight: l.inflight,
		Sheds: l.sheds, Cuts: l.cuts, Grows: l.grows,
	}
}
