package limit

import (
	"sync"
	"testing"
	"time"
)

func TestTryAcquireRespectsLimit(t *testing.T) {
	l := New(Options{Start: 2, Min: 1, Max: 4})
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("first two acquisitions should succeed at limit 2")
	}
	if l.TryAcquire() {
		t.Fatal("third acquisition escaped the limit")
	}
	if s := l.Snapshot(); s.Sheds != 1 || s.Inflight != 2 {
		t.Fatalf("snapshot after shed: %+v", s)
	}
	l.Release(Neutral)
	if !l.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestAdditiveIncrease(t *testing.T) {
	l := New(Options{Start: 2, Min: 1, Max: 8})
	// One full window of comfortable completions grows the limit by ~1.
	for i := 0; i < 3; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d refused", i)
		}
		l.Release(OK)
	}
	if got := l.Limit(); got != 3 {
		t.Fatalf("limit after one success window = %d, want 3", got)
	}
	// Growth saturates at Max.
	for i := 0; i < 200; i++ {
		l.TryAcquire()
		l.Release(OK)
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("limit should cap at Max=8, got %d", got)
	}
}

func TestMultiplicativeDecreaseAndFloor(t *testing.T) {
	l := New(Options{Start: 10, Min: 2, Max: 16, Backoff: 0.5, CutCooldown: time.Nanosecond})
	l.TryAcquire()
	l.Release(Congested)
	if got := l.Limit(); got != 5 {
		t.Fatalf("limit after one cut = %d, want 5", got)
	}
	for i := 0; i < 10; i++ {
		time.Sleep(time.Microsecond)
		l.Cut()
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit should floor at Min=2, got %d", got)
	}
	if s := l.Snapshot(); s.Cuts < 3 {
		t.Fatalf("cuts not counted: %+v", s)
	}
}

func TestCutCooldownCoalescesBursts(t *testing.T) {
	l := New(Options{Start: 16, Min: 1, Max: 16, Backoff: 0.5, CutCooldown: time.Hour})
	// A burst of congestion signals within one cooldown is one event.
	for i := 0; i < 8; i++ {
		l.Cut()
	}
	if got := l.Limit(); got != 8 {
		t.Fatalf("burst of cuts collapsed the limit to %d, want one halving to 8", got)
	}
	if s := l.Snapshot(); s.Cuts != 1 {
		t.Fatalf("burst should count one cut, got %d", s.Cuts)
	}
}

func TestAcquireWaitBlocksUntilRelease(t *testing.T) {
	l := New(Options{Start: 1, Min: 1, Max: 1})
	if !l.TryAcquire() {
		t.Fatal("first acquire refused")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	got := false
	go func() {
		defer wg.Done()
		got = l.AcquireWait(2 * time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	l.Release(Neutral)
	wg.Wait()
	if !got {
		t.Fatal("waiter did not get the released slot")
	}
	// Saturated for the whole wait: refuse.
	if l.AcquireWait(20 * time.Millisecond) {
		t.Fatal("acquire should time out while saturated")
	}
}

func TestDefaults(t *testing.T) {
	l := New(Options{})
	if got := l.Limit(); got != 8 {
		t.Fatalf("default start = %d, want 8", got)
	}
	for i := 0; i < 8; i++ {
		if !l.TryAcquire() {
			t.Fatalf("acquire %d refused under default start", i)
		}
	}
	if l.TryAcquire() {
		t.Fatal("acquisition beyond default start")
	}
}

func TestResetRestoresStartLimit(t *testing.T) {
	l := New(Options{Start: 10, Min: 2, Max: 16, Backoff: 0.5, CutCooldown: time.Nanosecond})
	l.TryAcquire()
	l.Release(Congested)
	time.Sleep(time.Microsecond)
	l.Cut()
	if got := l.Limit(); got >= 10 {
		t.Fatalf("setup: limit not cut, got %d", got)
	}
	cutsBefore := l.Snapshot().Cuts
	if !l.TryAcquire() {
		t.Fatal("acquire refused below limit")
	}
	l.Reset()
	s := l.Snapshot()
	if s.Limit != 10 {
		t.Fatalf("limit after Reset = %d, want Start=10", s.Limit)
	}
	if s.Inflight != 1 {
		t.Fatalf("Reset must preserve in-flight slots, got %d", s.Inflight)
	}
	if s.Cuts != cutsBefore {
		t.Fatalf("Reset must preserve lifetime counters: cuts %d -> %d", cutsBefore, s.Cuts)
	}
	// Reset also clears the cut cooldown, so the next congestion signal
	// lands immediately.
	l.Release(Congested)
	if got := l.Limit(); got != 5 {
		t.Fatalf("limit after post-reset cut = %d, want 5", got)
	}
}
