package supernet

import (
	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

// Backward back-propagates dLogits through the submodel recorded in caches,
// accumulating gradients into the supernet's shared parameters. Elastic
// slices scatter their gradients into the corresponding regions of the full
// weight tensors, which is what lets many submodels train the same weights
// (one-shot weight sharing).
func (s *Supernet) Backward(dLogits *tensor.Tensor, c *Caches) {
	// Classifier.
	dPooled, dW, dB := nn.LinearBwd(dLogits, c.clsCache)
	s.clsW.G.Add(dW)
	s.clsB.G.Add(dB)

	// Global pool + head activation + BN + conv.
	dy := nn.GlobalAvgPoolBwd(dPooled, c.poolShape)
	dy = nn.HSwishBwd(dy, c.headAct)
	var dg, db *tensor.Tensor
	dy, dg, db = nn.BatchNormBwd(dy, c.headBN)
	scatterVec(s.headBN.gamma.G, dg, s.Arch.HeadChannels)
	scatterVec(s.headBN.beta.G, db, s.Arch.HeadChannels)
	var dwConv, dbConv *tensor.Tensor
	cin := c.headIn.Shape[1]
	dy, dwConv, dbConv = nn.ConvBwd(dy, c.headCache)
	scatterConv1x1(s.headW.G, dwConv, s.Arch.HeadChannels, cin)
	s.headB.G.Add(dbConv)

	// Blocks in reverse.
	for i := len(c.blocks) - 1; i >= 0; i-- {
		dy = s.blockBwd(dy, c.blocks[i])
	}

	// Stem.
	dy = nn.HSwishBwd(dy, c.stemAct)
	dy, dg, db = nn.BatchNormBwd(dy, c.stemBN)
	s.stemBN.gamma.G.Add(dg)
	s.stemBN.beta.G.Add(db)
	_, dwConv, dbConv = nn.ConvBwd(dy, c.stemCache)
	s.stemW.G.Add(dwConv)
	s.stemB.G.Add(dbConv)
}

// blockBwd back-propagates through one (possibly tiled) MBConv block and
// returns the gradient w.r.t. the block input. Input quantization uses a
// straight-through estimator, so the gradient passes unchanged.
func (s *Supernet) blockBwd(dy *tensor.Tensor, bc *blockCache) *tensor.Tensor {
	b := bc.block
	dx := tensor.New(bc.inShape...)
	ti := 0
	for range bc.tiles {
		y0, x0 := bc.tileY[ti], bc.tileX[ti]
		th, tw := bc.tileH[ti], bc.tileW[ti]
		dyt := tensor.CropSpatial(dy, y0/b.stride, x0/b.stride, th/b.stride, tw/b.stride)
		dxt := s.tileBwd(dyt, bc.tiles[ti], b, bc.setting)
		if bc.residual {
			dxt.Add(dyt) // identity shortcut
		}
		tensor.PasteSpatial(dx, dxt, y0, x0)
		ti++
	}
	return dx
}

// tileBwd reverses tileFwd for one tile, scattering weight gradients into
// the shared parameters.
func (s *Supernet) tileBwd(dy *tensor.Tensor, tc *tileCache, b *mbBlock, ls LayerSetting) *tensor.Tensor {
	hidden := b.inC * ls.Expand
	if hidden > b.maxHidden {
		hidden = b.maxHidden
	}

	// Project BN + conv.
	d, dg, db := nn.BatchNormBwd(dy, tc.bn3)
	scatterVec(b.bn3.gamma.G, dg, b.outC)
	scatterVec(b.bn3.beta.G, db, b.outC)
	d, dwp, _ := nn.ConvBwd(d, tc.projC)
	scatterConv1x1(b.projW.G, dwp, b.outC, hidden)

	// Squeeze-and-excitation.
	if b.se {
		seC := b.maxHidden / 4
		if seC < 1 {
			seC = 1
		}
		dAct, dGate := nn.ScaleChannelsBwd(d, tc.act2Out, tc.seGate)
		dz := nn.HSigmoidBwd(dGate, tc.seGateIn)
		dz, dw2, db2 := nn.LinearBwd(dz, tc.seC2)
		scatterLinear(b.seW2.G, dw2, hidden, seC)
		scatterVec(b.seB2.G, db2, hidden)
		dz = nn.ReLUBwd(dz, tc.seMask)
		dPooled, dw1, db1 := nn.LinearBwd(dz, tc.seC1)
		scatterLinear(b.seW1.G, dw1, seC, hidden)
		b.seB1.G.Add(db1)
		dAct.Add(nn.GlobalAvgPoolBwd(dPooled, tc.seShape))
		d = dAct
	}

	// Depthwise activation + BN + conv.
	d = nn.HSwishBwd(d, tc.act2In)
	d, dg, db = nn.BatchNormBwd(d, tc.bn2)
	scatterVec(b.bn2.gamma.G, dg, hidden)
	scatterVec(b.bn2.beta.G, db, hidden)
	var dwd *tensor.Tensor
	d, dwd, _ = nn.DepthwiseConvBwd(d, tc.dwC)
	scatterDW(b.dwW.G, dwd, hidden, ls.Kernel)

	// Expand activation + BN + conv.
	d = nn.HSwishBwd(d, tc.act1In)
	d, dg, db = nn.BatchNormBwd(d, tc.bn1)
	scatterVec(b.bn1.gamma.G, dg, hidden)
	scatterVec(b.bn1.beta.G, db, hidden)
	var dwe *tensor.Tensor
	d, dwe, _ = nn.ConvBwd(d, tc.expC)
	scatterConv1x1(b.expandW.G, dwe, hidden, b.inC)
	return d
}
