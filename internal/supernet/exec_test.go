package supernet

import (
	"math"
	"math/rand"
	"testing"

	"murmuration/internal/tensor"
)

// TestExecComposeMatchesForward verifies that the runtime execution path —
// ExecStem, per-layer TileSplit + ExecBlock (with wire quantization applied
// per tile), ExecHead — reproduces the monolithic Forward exactly. This is
// the invariant that makes distributed execution trustworthy.
func TestExecComposeMatchesForward(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 11)
	rng := rand.New(rand.NewSource(11))
	x := tensor.New(1, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}

	for trial := 0; trial < 5; trial++ {
		cfg := a.RandomConfig(rng)
		want, _, err := s.Forward(x, cfg, false)
		if err != nil {
			t.Fatal(err)
		}

		// Compose the runtime path.
		y := tensor.BilinearResize(x, cfg.Resolution, cfg.Resolution)
		y = s.ExecStem(y)
		for layer := 0; layer < cfg.NumLayers(); layer++ {
			ls := cfg.Layers[layer]
			stage, index, stride, err := a.BlockAt(cfg, layer)
			if err != nil {
				t.Fatal(err)
			}
			h, w := y.Shape[2], y.Shape[3]
			y0s, x0s, ths, tws, err := TileSplit(h, w, ls.Partition, stride)
			if err != nil {
				t.Fatal(err)
			}
			outC := a.Stages[stage].Width
			out := tensor.New(y.Shape[0], outC, h/stride, w/stride)
			for ti := range y0s {
				tile := tensor.CropSpatial(y, y0s[ti], x0s[ti], ths[ti], tws[ti])
				if ls.Quant != tensor.Bits32 {
					tile = tensor.Quantize(tile, ls.Quant).Dequantize()
				}
				res, err := s.ExecBlock(stage, index, tile, ls)
				if err != nil {
					t.Fatal(err)
				}
				tensor.PasteSpatial(out, res, y0s[ti]/stride, x0s[ti]/stride)
			}
			y = out
		}
		got := s.ExecHead(y)

		if !got.SameShape(want) {
			t.Fatalf("trial %d (%s): shape %v vs %v", trial, cfg, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-5 {
				t.Fatalf("trial %d (%s): logit %d differs %v vs %v", trial, cfg, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestBlockAtMapping(t *testing.T) {
	a := TinyArch(4)
	cfg := a.MaxConfig() // depths [2,2]
	cases := []struct{ layer, stage, index, stride int }{
		{0, 0, 0, 2},
		{1, 0, 1, 1},
		{2, 1, 0, 2},
		{3, 1, 1, 1},
	}
	for _, c := range cases {
		st, idx, sd, err := a.BlockAt(cfg, c.layer)
		if err != nil {
			t.Fatal(err)
		}
		if st != c.stage || idx != c.index || sd != c.stride {
			t.Fatalf("layer %d: got (%d,%d,%d) want (%d,%d,%d)",
				c.layer, st, idx, sd, c.stage, c.index, c.stride)
		}
	}
	if _, _, _, err := a.BlockAt(cfg, 4); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
	if _, _, _, err := a.BlockAt(cfg, -1); err == nil {
		t.Fatal("negative layer accepted")
	}
}

func TestExecBlockValidation(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 12)
	ls := LayerSetting{Kernel: 3, Expand: 2, Partition: Partition{Gy: 1, Gx: 1}, Quant: tensor.Bits32}
	x := tensor.New(1, 3, 8, 8) // wrong channel count for stage 0 block 0
	if _, err := s.ExecBlock(0, 0, x, ls); err == nil {
		t.Fatal("wrong channel count accepted")
	}
	if _, err := s.ExecBlock(9, 0, tensor.New(1, 8, 8, 8), ls); err == nil {
		t.Fatal("bad stage accepted")
	}
	if _, err := s.ExecBlock(0, 9, tensor.New(1, 8, 8, 8), ls); err == nil {
		t.Fatal("bad block index accepted")
	}
	// Odd tile with stride-2 block.
	if _, err := s.ExecBlock(0, 0, tensor.New(1, 8, 7, 7), ls); err == nil {
		t.Fatal("stride-indivisible tile accepted")
	}
}

func TestTileSplitGeometry(t *testing.T) {
	y0s, x0s, ths, tws, err := TileSplit(16, 16, Partition{Gy: 2, Gx: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(y0s) != 4 {
		t.Fatalf("%d tiles", len(y0s))
	}
	// Tiles must partition the input exactly.
	var area int
	for i := range y0s {
		area += ths[i] * tws[i]
		if y0s[i]%2 != 0 || x0s[i]%2 != 0 {
			t.Fatal("tile origins must be stride-aligned")
		}
	}
	if area != 16*16 {
		t.Fatalf("tiles cover %d pixels, want 256", area)
	}
	// Uneven split: 6 rows into 4 output rows over stride 1, grid 3.
	_, _, ths2, _, err := TileSplit(6, 6, Partition{Gy: 3, Gx: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ths2[0]+ths2[1]+ths2[2] != 6 {
		t.Fatalf("uneven split sums to %d", ths2[0]+ths2[1]+ths2[2])
	}
	// Impossible split errors.
	if _, _, _, _, err := TileSplit(2, 2, Partition{Gy: 4, Gx: 1}, 1); err == nil {
		t.Fatal("oversubscribed grid accepted")
	}
	if _, _, _, _, err := TileSplit(7, 7, Partition{Gy: 1, Gx: 1}, 2); err == nil {
		t.Fatal("stride-indivisible input accepted")
	}
}
