package supernet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"murmuration/internal/device"
	"murmuration/internal/tensor"
)

func TestCostsTableStructure(t *testing.T) {
	a := DefaultArch()
	cfg := a.MaxConfig()
	costs, err := a.Costs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// stem + 20 blocks + head
	if len(costs) != 22 {
		t.Fatalf("cost table has %d entries, want 22", len(costs))
	}
	if costs[0].Name != "stem" || costs[len(costs)-1].Name != "head" {
		t.Fatal("cost table must start with stem and end with head")
	}
	for i, lc := range costs {
		if lc.FLOPs <= 0 || lc.WeightBytes <= 0 || lc.OutElems <= 0 {
			t.Fatalf("layer %d (%s) has non-positive cost", i, lc.Name)
		}
		if i > 0 && costs[i].InElems != costs[i-1].OutElems {
			t.Fatalf("layer %d input %d != layer %d output %d",
				i, costs[i].InElems, i-1, costs[i-1].OutElems)
		}
	}
}

func TestQuantReducesWireBytes(t *testing.T) {
	a := DefaultArch()
	cfg := a.MaxConfig()
	cfg.Layers[3].Quant = tensor.Bits8
	costs, _ := a.Costs(cfg)
	full := costs[4] // layer index 3 is cost entry 4 (after stem)
	if full.InWireBytes() != float64(full.InElems) {
		t.Fatalf("8-bit wire bytes should equal element count, got %v for %d elems",
			full.InWireBytes(), full.InElems)
	}
	cfg2 := a.MaxConfig()
	costs2, _ := a.Costs(cfg2)
	if costs2[4].InWireBytes() != float64(costs2[4].InElems*4) {
		t.Fatal("32-bit wire bytes should be 4 bytes per element")
	}
}

func TestLocalPlacementZeroTransfer(t *testing.T) {
	a := DefaultArch()
	cfg := a.MaxConfig()
	costs, _ := a.Costs(cfg)
	cl := device.AugmentedComputing(100, 10)
	br, err := EstimateLatency(costs, cl, LocalPlacement(costs))
	if err != nil {
		t.Fatal(err)
	}
	if br.TransferSec != 0 {
		t.Fatalf("all-local placement should have zero transfer, got %v", br.TransferSec)
	}
	if br.ComputeSec <= 0 {
		t.Fatal("compute time must be positive")
	}
}

func TestOffloadToGPUReducesLatency(t *testing.T) {
	// Neurosurgeon's core premise: with decent bandwidth, running the heavy
	// suffix on the GPU beats all-local on the Pi.
	a := DefaultArch()
	cfg := a.MaxConfig()
	costs, _ := a.Costs(cfg)
	cl := device.AugmentedComputing(400, 5)

	local := LocalPlacement(costs)
	brLocal, err := EstimateLatency(costs, cl, local)
	if err != nil {
		t.Fatal(err)
	}

	// All blocks on the GPU (device 1).
	remote := LocalPlacement(costs)
	for k := range remote.Devices {
		for ti := range remote.Devices[k] {
			remote.Devices[k][ti] = 1
		}
	}
	brRemote, err := EstimateLatency(costs, cl, remote)
	if err != nil {
		t.Fatal(err)
	}
	if brRemote.TotalSec >= brLocal.TotalSec {
		t.Fatalf("GPU offload (%v) should beat all-local Pi (%v) at 400 Mb/s",
			brRemote.TotalSec, brLocal.TotalSec)
	}
	if brRemote.TransferSec <= 0 {
		t.Fatal("offload must pay transfer time")
	}
}

func TestLowBandwidthFavorsLocal(t *testing.T) {
	a := DefaultArch()
	cfg := a.MaxConfig()
	costs, _ := a.Costs(cfg)
	cl := device.AugmentedComputing(1, 100) // 1 Mb/s, 100 ms

	remote := LocalPlacement(costs)
	for k := range remote.Devices {
		for ti := range remote.Devices[k] {
			remote.Devices[k][ti] = 1
		}
	}
	brRemote, _ := EstimateLatency(costs, cl, remote)
	brLocal, _ := EstimateLatency(costs, cl, LocalPlacement(costs))
	if brLocal.TotalSec >= brRemote.TotalSec {
		t.Fatalf("at 1 Mb/s local (%v) should beat offload (%v)",
			brLocal.TotalSec, brRemote.TotalSec)
	}
}

func TestSpatialPartitionSpeedsUpSwarm(t *testing.T) {
	// On a swarm with fast links, a 2x2 spatial partition over 4 devices
	// should beat single-device execution (Fig. 17's premise).
	a := DefaultArch()
	cfg := a.MaxConfig()
	for i := range cfg.Layers {
		cfg.Layers[i].Partition = Partition{2, 2}
		cfg.Layers[i].Quant = tensor.Bits8
	}
	costs, err := a.Costs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl := device.DeviceSwarm(5, 1000, 2)
	p := LocalPlacement(costs)
	for k := range p.Devices {
		for ti := range p.Devices[k] {
			p.Devices[k][ti] = ti % 4 // devices 0-3
		}
	}
	brPart, err := EstimateLatency(costs, cl, p)
	if err != nil {
		t.Fatal(err)
	}
	cfgLocal := a.MaxConfig()
	costsLocal, _ := a.Costs(cfgLocal)
	brLocal, _ := EstimateLatency(costsLocal, cl, LocalPlacement(costsLocal))
	if brPart.TotalSec >= brLocal.TotalSec {
		t.Fatalf("2x2 partition on swarm (%v) should beat single Pi (%v)",
			brPart.TotalSec, brLocal.TotalSec)
	}
}

func TestPlacementValidation(t *testing.T) {
	a := TinyArch(4)
	cfg := a.MaxConfig()
	costs, _ := a.Costs(cfg)
	cl := device.DeviceSwarm(2, 100, 10)

	p := LocalPlacement(costs)
	p.Devices[0][0] = 5 // out of range
	if _, err := EstimateLatency(costs, cl, p); err == nil {
		t.Fatal("out-of-range device accepted")
	}

	p2 := LocalPlacement(costs)
	p2.Devices = p2.Devices[:len(p2.Devices)-1]
	if _, err := EstimateLatency(costs, cl, p2); err == nil {
		t.Fatal("missing layer accepted")
	}

	cfg2 := a.MaxConfig()
	cfg2.Layers[0].Partition = Partition{2, 2}
	costs2, _ := a.Costs(cfg2)
	p3 := LocalPlacement(costs) // built from the 1x1 config
	if err := p3.Validate(costs2, cl.N()); err == nil {
		t.Fatal("tile-count mismatch accepted")
	}
}

// Property: latency is monotone non-increasing in bandwidth and
// non-decreasing in delay, for a random remote-heavy placement.
func TestLatencyMonotonicityProperty(t *testing.T) {
	a := TinyArch(4)
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, bwRaw, delayRaw uint16) bool {
		cfg := a.RandomConfig(rand.New(rand.NewSource(seed)))
		costs, err := a.Costs(cfg)
		if err != nil {
			return false
		}
		bw := float64(bwRaw%400) + 5
		delay := float64(delayRaw % 100)
		p := LocalPlacement(costs)
		for k := range p.Devices {
			for ti := range p.Devices[k] {
				p.Devices[k][ti] = rng.Intn(2)
			}
		}
		cl1 := device.AugmentedComputing(bw, delay)
		cl2 := device.AugmentedComputing(bw*2, delay)
		cl3 := device.AugmentedComputing(bw, delay+50)
		b1, e1 := EstimateLatency(costs, cl1, p)
		b2, e2 := EstimateLatency(costs, cl2, p)
		b3, e3 := EstimateLatency(costs, cl3, p)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return b2.TotalSec <= b1.TotalSec+1e-12 && b3.TotalSec >= b1.TotalSec-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
