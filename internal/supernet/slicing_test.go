package supernet

import (
	"math/rand"
	"testing"

	"murmuration/internal/tensor"
)

// TestSubmodelUsesOnlySlicedWeights verifies the weight-sharing contract:
// a submodel's output depends only on the weight slice its config selects.
// Corrupting everything *outside* the slice (extra channels, kernel rims,
// inactive blocks) must not change the submodel's logits.
func TestSubmodelUsesOnlySlicedWeights(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 31)
	rng := rand.New(rand.NewSource(31))
	x := tensor.New(1, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}

	// A strictly-inside-the-space submodel: min depth, min kernel/expand.
	cfg := a.MinConfig()
	want, _, err := s.Forward(x, cfg, false)
	if err != nil {
		t.Fatal(err)
	}

	// Reference output of a large-kernel submodel, captured before the
	// corruption (it must change afterwards — proving the corrupted region
	// is genuinely live for configs that select it).
	big := a.MinConfig()
	for i := range big.Layers {
		big.Layers[i].Kernel = a.MaxKernel()
	}
	bigBefore, _, err := s.Forward(x, big, false)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt weights outside the min submodel's slices: for every block
	// param, overwrite the region beyond the min channel count and beyond
	// the center-cropped kernel.
	for _, p := range s.Params() {
		switch {
		case p.W.Rank() == 4 && p.W.Shape[1] == 1: // depthwise (C,1,K,K)
			maxK := p.W.Shape[2]
			minK := minInt2(a.Kernels)
			off := (maxK - minK) / 2
			for c := 0; c < p.W.Shape[0]; c++ {
				for ky := 0; ky < maxK; ky++ {
					for kx := 0; kx < maxK; kx++ {
						inside := ky >= off && ky < off+minK && kx >= off && kx < off+minK
						if !inside {
							p.W.Set(999, c, 0, ky, kx)
						}
					}
				}
			}
		}
	}
	got, _, err := s.Forward(x, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("logit %d changed after corrupting out-of-slice kernel rims: %v vs %v",
				i, want.Data[i], got.Data[i])
		}
	}

	// Sanity: the corruption must matter for a submodel that *does* use the
	// large kernel.
	bigAfter, _, err := s.Forward(x, big, false)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range bigAfter.Data {
		if bigAfter.Data[i] != bigBefore.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("corrupted kernel rims should change the large-kernel submodel's output")
	}
}

func minInt2(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// TestGradIsolationAcrossSubmodels: training the min submodel must leave
// gradients of out-of-slice weights at zero.
func TestGradIsolationAcrossSubmodels(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 32)
	rng := rand.New(rand.NewSource(32))
	x := tensor.New(2, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	cfg := a.MinConfig()
	logits, caches, err := s.Forward(x, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	d := tensor.New(logits.Shape...)
	d.Fill(0.1)
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
	s.Backward(d, caches)

	for _, p := range s.Params() {
		if p.W.Rank() == 4 && p.W.Shape[1] == 1 { // depthwise
			maxK := p.W.Shape[2]
			minK := minInt2(a.Kernels)
			off := (maxK - minK) / 2
			// Gradient outside the center crop must be exactly zero.
			for c := 0; c < p.W.Shape[0]; c++ {
				for ky := 0; ky < maxK; ky++ {
					for kx := 0; kx < maxK; kx++ {
						inside := ky >= off && ky < off+minK && kx >= off && kx < off+minK
						if !inside && p.G.At(c, 0, ky, kx) != 0 {
							t.Fatalf("%s: gradient leaked outside kernel slice at (%d,%d,%d)",
								p.Name, c, ky, kx)
						}
					}
				}
			}
		}
	}
}
