package supernet

import (
	"fmt"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

// Caches holds everything Backward needs for one Forward invocation.
type Caches struct {
	cfg      *Config
	training bool

	inputResized *tensor.Tensor
	stemCache    *nn.ConvCache
	stemBN       *nn.BNCache
	stemAct      *tensor.Tensor // hswish input cache

	blocks []*blockCache

	headIn    *tensor.Tensor
	headCache *nn.ConvCache
	headBN    *nn.BNCache
	headAct   *tensor.Tensor
	poolShape []int
	clsCache  *nn.LinearCache
	clsW      *tensor.Tensor // sliced classifier weight used in fwd
}

// blockCache caches one MBConv block execution (possibly tiled).
type blockCache struct {
	block    *mbBlock
	setting  LayerSetting
	inShape  []int
	grid     Partition
	tiles    []*tileCache
	tileY    []int // tile origin rows
	tileX    []int
	tileH    []int
	tileW    []int
	residual bool
}

// tileCache caches the ops of one tile's pass through a block.
type tileCache struct {
	xTile    *tensor.Tensor
	expandW  *tensor.Tensor
	expC     *nn.ConvCache
	bn1      *nn.BNCache
	act1In   *tensor.Tensor
	dwW      *tensor.Tensor
	dwC      *nn.DWConvCache
	bn2      *nn.BNCache
	act2In   *tensor.Tensor
	act2Out  *tensor.Tensor // input to SE / proj
	sePooled *tensor.Tensor
	seShape  []int
	seW1     *tensor.Tensor
	seC1     *nn.LinearCache
	seMask   []bool
	seW2     *tensor.Tensor
	seC2     *nn.LinearCache
	seGateIn *tensor.Tensor // hsigmoid input cache
	seGate   *tensor.Tensor
	projW    *tensor.Tensor
	projC    *nn.ConvCache
	bn3      *nn.BNCache
}

// Forward runs submodel cfg over input x (N, C, H, W). The input is resized
// to cfg.Resolution. When training is true, batch-norm running statistics
// update and the returned caches support Backward.
func (s *Supernet) Forward(x *tensor.Tensor, cfg *Config, training bool) (*tensor.Tensor, *Caches, error) {
	if err := s.Arch.Validate(cfg); err != nil {
		return nil, nil, err
	}
	c := &Caches{cfg: cfg, training: training}

	x = tensor.BilinearResize(x, cfg.Resolution, cfg.Resolution)
	c.inputResized = x

	// Stem: 3x3 stride-2 conv + BN + hswish.
	var y *tensor.Tensor
	y, c.stemCache = nn.ConvFwd(x, s.stemW.W, s.stemB.W, tensor.ConvOpts{Stride: 2, Padding: 1})
	y, c.stemBN = s.bnFwd(s.stemBN, y, s.Arch.StemChannels, training)
	y, c.stemAct = nn.HSwishFwd(y)

	li := 0
	for si := range s.Arch.Stages {
		d := cfg.Depths[si]
		for bi := 0; bi < d; bi++ {
			setting := cfg.Layers[li]
			li++
			bc, out, err := s.blockFwd(s.blocks[si][bi], y, setting, training)
			if err != nil {
				return nil, nil, err
			}
			c.blocks = append(c.blocks, bc)
			y = out
		}
	}

	// Head conv + BN + hswish + global pool + classifier.
	c.headIn = y
	cin := y.Shape[1]
	headW := sliceConv1x1(s.headW.W, s.Arch.HeadChannels, cin)
	var hc *nn.ConvCache
	y, hc = nn.ConvFwd(y, headW, s.headB.W, tensor.ConvOpts{Stride: 1, Padding: 0})
	c.headCache = hc
	y, c.headBN = s.bnFwd(s.headBN, y, s.Arch.HeadChannels, training)
	y, c.headAct = nn.HSwishFwd(y)
	var pooled *tensor.Tensor
	pooled, c.poolShape = nn.GlobalAvgPoolFwd(y)
	logits, lc := nn.LinearFwd(pooled, s.clsW.W, s.clsB.W)
	c.clsCache = lc
	c.clsW = s.clsW.W
	return logits, c, nil
}

// bnFwd runs batch normalization over the first `ch` channels using the
// sliced affine parameters. Batch statistics are always used (the standard
// weight-sharing NAS practice, since running stats are not valid across
// submodels); running stats update only in training mode.
func (s *Supernet) bnFwd(bn *bnParams, x *tensor.Tensor, ch int, training bool) (*tensor.Tensor, *nn.BNCache) {
	gamma := sliceVec(bn.gamma.W, ch)
	beta := sliceVec(bn.beta.W, ch)
	rm := sliceVec(bn.runMean, ch)
	rv := sliceVec(bn.runVar, ch)
	momentum := float32(0)
	if training {
		momentum = 0.05
	}
	y, cache := nn.BatchNormFwd(x, gamma, beta, rm, rv, true, momentum, 1e-5)
	if training {
		copy(bn.runMean.Data[:ch], rm.Data)
		copy(bn.runVar.Data[:ch], rv.Data)
	}
	// Stash the sliced gamma in the cache (BatchNormBwd reads cache.Gamma).
	cache.Gamma = gamma
	return y, cache
}

// blockFwd executes one MBConv block under an elastic setting, tiling the
// input per the FDSP spatial partition. Tiles are computed independently
// with zero padding (no halo exchange), exactly as they would execute on
// separate devices.
func (s *Supernet) blockFwd(b *mbBlock, x *tensor.Tensor, ls LayerSetting, training bool) (*blockCache, *tensor.Tensor, error) {
	n := x.Shape[0]
	h, w := x.Shape[2], x.Shape[3]
	grid := ls.Partition
	if h%b.stride != 0 || w%b.stride != 0 {
		return nil, nil, fmt.Errorf("supernet: fmap %dx%d not divisible by stride %d", h, w, b.stride)
	}
	// Tile boundaries are chosen in *output* space and mapped back through
	// the stride, so any grid works for any stride (tiles may be unequal).
	outRows, err := splitSizes(h/b.stride, grid.Gy)
	if err != nil {
		return nil, nil, err
	}
	outCols, err := splitSizes(w/b.stride, grid.Gx)
	if err != nil {
		return nil, nil, err
	}

	// Simulate input feature-map quantization (straight-through gradient).
	if ls.Quant != tensor.Bits32 {
		x = tensor.Quantize(x, ls.Quant).Dequantize()
	}

	bc := &blockCache{
		block: b, setting: ls,
		inShape:  append([]int(nil), x.Shape...),
		grid:     grid,
		residual: b.stride == 1 && b.inC == b.outC,
	}
	outH, outW := h/b.stride, w/b.stride
	out := tensor.New(n, b.outC, outH, outW)

	oy := 0
	for _, oRows := range outRows {
		ox := 0
		for _, oCols := range outCols {
			y0, x0 := oy*b.stride, ox*b.stride
			tileH, tileW := oRows*b.stride, oCols*b.stride
			xt := tensor.CropSpatial(x, y0, x0, tileH, tileW)
			tc, yt := s.tileFwd(b, xt, ls, training)
			if bc.residual {
				yt = yt.Clone().Add(xt)
			}
			bc.tiles = append(bc.tiles, tc)
			bc.tileY = append(bc.tileY, y0)
			bc.tileX = append(bc.tileX, x0)
			bc.tileH = append(bc.tileH, tileH)
			bc.tileW = append(bc.tileW, tileW)
			tensor.PasteSpatial(out, yt, oy, ox)
			ox += oCols
		}
		oy += oRows
	}
	return bc, out, nil
}

// splitSizes divides n into g contiguous chunks whose sizes differ by at
// most one. It errors when n < g (a tile would be empty).
func splitSizes(n, g int) ([]int, error) {
	if g < 1 {
		return nil, fmt.Errorf("supernet: invalid grid %d", g)
	}
	if n < g {
		return nil, fmt.Errorf("supernet: cannot split %d rows into %d tiles", n, g)
	}
	out := make([]int, g)
	base := n / g
	rem := n % g
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out, nil
}

// tileFwd runs one tile through the block's expand → depthwise → (SE) →
// project pipeline using sliced weights.
func (s *Supernet) tileFwd(b *mbBlock, xt *tensor.Tensor, ls LayerSetting, training bool) (*tileCache, *tensor.Tensor) {
	hidden := b.inC * ls.Expand
	if hidden > b.maxHidden {
		hidden = b.maxHidden
	}
	tc := &tileCache{xTile: xt}

	// Expand 1x1.
	tc.expandW = sliceConv1x1(b.expandW.W, hidden, b.inC)
	y, cc := nn.ConvFwd(xt, tc.expandW, nil, tensor.ConvOpts{Stride: 1, Padding: 0})
	tc.expC = cc
	y, tc.bn1 = s.bnFwd(b.bn1, y, hidden, training)
	y, tc.act1In = nn.HSwishFwd(y)

	// Depthwise kxk.
	k := ls.Kernel
	tc.dwW = sliceDW(b.dwW.W, hidden, k)
	var dwc *nn.DWConvCache
	y, dwc = nn.DepthwiseConvFwd(y, tc.dwW, nil, tensor.ConvOpts{Stride: b.stride, Padding: k / 2})
	tc.dwC = dwc
	y, tc.bn2 = s.bnFwd(b.bn2, y, hidden, training)
	y, tc.act2In = nn.HSwishFwd(y)
	tc.act2Out = y

	// Squeeze-and-excitation.
	if b.se {
		seC := b.maxHidden / 4
		if seC < 1 {
			seC = 1
		}
		pooled, shape := nn.GlobalAvgPoolFwd(y)
		tc.sePooled = pooled
		tc.seShape = shape
		tc.seW1 = sliceLinear(b.seW1.W, seC, hidden)
		z, c1 := nn.LinearFwd(pooled, tc.seW1, b.seB1.W)
		tc.seC1 = c1
		var mask []bool
		z, mask = nn.ReLUFwd(z)
		tc.seMask = mask
		tc.seW2 = sliceLinear(b.seW2.W, hidden, seC)
		g, c2 := nn.LinearFwd(z, tc.seW2, sliceVec(b.seB2.W, hidden))
		tc.seC2 = c2
		g, tc.seGateIn = nn.HSigmoidFwd(g)
		tc.seGate = g
		y = nn.ScaleChannelsFwd(y, g)
	}

	// Project 1x1 + BN (no activation — linear bottleneck).
	tc.projW = sliceConv1x1(b.projW.W, b.outC, hidden)
	var pc *nn.ConvCache
	y, pc = nn.ConvFwd(y, tc.projW, nil, tensor.ConvOpts{Stride: 1, Padding: 0})
	tc.projC = pc
	y, tc.bn3 = s.bnFwd(b.bn3, y, b.outC, training)
	return tc, y
}
