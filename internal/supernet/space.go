// Package supernet implements Murmuration's partition-ready one-shot NAS
// supernet (paper §4.1): a MobileNetV3-style weight-shared network whose
// submodels vary along six axes — input resolution, per-stage block depth,
// per-layer kernel size, per-layer expansion (channel) width, per-layer
// spatial partitioning (FDSP), and per-layer input feature-map quantization.
//
// The package provides the search space and submodel configs, a per-layer
// cost model (FLOPs, memory traffic, wire bytes) consumed by the RL
// environment and the baselines, and a real executable/trainable network for
// the in-Go NAS pipeline.
package supernet

import (
	"fmt"
	"math/rand"

	"murmuration/internal/tensor"
)

// Partition is a spatial FDSP grid (Gy × Gx tiles).
type Partition struct {
	Gy, Gx int
}

// NumTiles returns Gy·Gx.
func (p Partition) NumTiles() int { return p.Gy * p.Gx }

// String renders "2x2".
func (p Partition) String() string { return fmt.Sprintf("%dx%d", p.Gy, p.Gx) }

// StageSpec describes one stage (block) of the supernet.
type StageSpec struct {
	// Width is the stage output channel count at maximum width.
	Width int
	// MinDepth and MaxDepth bound the number of MBConv layers.
	MinDepth, MaxDepth int
	// Stride of the first layer in the stage (rest are stride 1).
	Stride int
	// SE enables squeeze-and-excitation in this stage's blocks.
	SE bool
}

// Arch defines the full search space: the static backbone plus the elastic
// choice sets. The paper's configuration ("a variance of MobileNetV3") is
// DefaultArch; TinyArch is a reduced instance trainable in-process.
type Arch struct {
	Name         string
	StemChannels int
	Stages       []StageSpec
	HeadChannels int
	NumClasses   int
	InChannels   int

	Resolutions []int             // e.g. 160..224
	Kernels     []int             // e.g. 3,5,7
	Expands     []int             // expansion ratios, e.g. 3,4,6
	Partitions  []Partition       // e.g. 1x1, 1x2, 2x1, 2x2
	QuantBits   []tensor.Bitwidth // e.g. 8,16,32
}

// DefaultArch is the paper-scale search space: a MobileNetV3-Large variant
// evaluated at ImageNet resolutions. Matches §6.1.1: spatial partitioning
// 1×1–2×2, quantization 32→8 bits, resolution 224→160, block depth 4→2,
// kernel 7→3.
func DefaultArch() *Arch {
	return &Arch{
		Name:         "mbv3-supernet",
		StemChannels: 16,
		Stages: []StageSpec{
			{Width: 24, MinDepth: 2, MaxDepth: 4, Stride: 2, SE: false},
			{Width: 40, MinDepth: 2, MaxDepth: 4, Stride: 2, SE: true},
			{Width: 80, MinDepth: 2, MaxDepth: 4, Stride: 2, SE: false},
			{Width: 112, MinDepth: 2, MaxDepth: 4, Stride: 1, SE: true},
			{Width: 160, MinDepth: 2, MaxDepth: 4, Stride: 2, SE: true},
		},
		HeadChannels: 960,
		NumClasses:   1000,
		InChannels:   3,
		Resolutions:  []int{160, 176, 192, 208, 224},
		Kernels:      []int{3, 5, 7},
		Expands:      []int{3, 4, 6},
		Partitions:   []Partition{{1, 1}, {1, 2}, {2, 1}, {2, 2}},
		QuantBits:    []tensor.Bitwidth{tensor.Bits8, tensor.Bits16, tensor.Bits32},
	}
}

// TinyArch is a scaled-down instance of the same search space, small enough
// to train for real inside the Go test-suite and examples.
func TinyArch(numClasses int) *Arch {
	return &Arch{
		Name:         "tiny-supernet",
		StemChannels: 8,
		Stages: []StageSpec{
			{Width: 12, MinDepth: 1, MaxDepth: 2, Stride: 2, SE: false},
			{Width: 16, MinDepth: 1, MaxDepth: 2, Stride: 2, SE: true},
		},
		HeadChannels: 32,
		NumClasses:   numClasses,
		InChannels:   3,
		Resolutions:  []int{24, 32},
		Kernels:      []int{3, 5},
		Expands:      []int{2, 3},
		Partitions:   []Partition{{1, 1}, {1, 2}, {2, 2}},
		QuantBits:    []tensor.Bitwidth{tensor.Bits8, tensor.Bits32},
	}
}

// MaxDepthTotal returns the number of layer slots across all stages.
func (a *Arch) MaxDepthTotal() int {
	n := 0
	for _, s := range a.Stages {
		n += s.MaxDepth
	}
	return n
}

// MaxKernel returns the largest kernel in the space.
func (a *Arch) MaxKernel() int {
	m := 0
	for _, k := range a.Kernels {
		if k > m {
			m = k
		}
	}
	return m
}

// MaxExpand returns the largest expansion ratio in the space.
func (a *Arch) MaxExpand() int {
	m := 0
	for _, e := range a.Expands {
		if e > m {
			m = e
		}
	}
	return m
}

// LayerSetting holds the elastic settings of one active MBConv layer.
type LayerSetting struct {
	Kernel    int
	Expand    int
	Partition Partition
	Quant     tensor.Bitwidth
}

// Config is a fully specified submodel: resolution, per-stage depths, and
// per-active-layer settings (indexed stage-major: all layers of stage 0,
// then stage 1, ...). Layers[i] corresponds to ActiveLayerIndex.
type Config struct {
	Resolution int
	Depths     []int
	Layers     []LayerSetting
}

// Clone deep-copies the config.
func (c *Config) Clone() *Config {
	return &Config{
		Resolution: c.Resolution,
		Depths:     append([]int(nil), c.Depths...),
		Layers:     append([]LayerSetting(nil), c.Layers...),
	}
}

// NumLayers returns the number of active MBConv layers.
func (c *Config) NumLayers() int { return len(c.Layers) }

// Validate checks the config against the search space.
func (a *Arch) Validate(c *Config) error {
	if !containsInt(a.Resolutions, c.Resolution) {
		return fmt.Errorf("supernet: resolution %d not in space %v", c.Resolution, a.Resolutions)
	}
	if len(c.Depths) != len(a.Stages) {
		return fmt.Errorf("supernet: %d depths for %d stages", len(c.Depths), len(a.Stages))
	}
	total := 0
	for i, d := range c.Depths {
		s := a.Stages[i]
		if d < s.MinDepth || d > s.MaxDepth {
			return fmt.Errorf("supernet: stage %d depth %d outside [%d,%d]", i, d, s.MinDepth, s.MaxDepth)
		}
		total += d
	}
	if len(c.Layers) != total {
		return fmt.Errorf("supernet: %d layer settings for %d active layers", len(c.Layers), total)
	}
	for i, l := range c.Layers {
		if !containsInt(a.Kernels, l.Kernel) {
			return fmt.Errorf("supernet: layer %d kernel %d not in %v", i, l.Kernel, a.Kernels)
		}
		if !containsInt(a.Expands, l.Expand) {
			return fmt.Errorf("supernet: layer %d expand %d not in %v", i, l.Expand, a.Expands)
		}
		if !containsPartition(a.Partitions, l.Partition) {
			return fmt.Errorf("supernet: layer %d partition %v not in space", i, l.Partition)
		}
		if !containsBits(a.QuantBits, l.Quant) {
			return fmt.Errorf("supernet: layer %d quant %d not in space", i, l.Quant)
		}
	}
	return nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsPartition(xs []Partition, v Partition) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsBits(xs []tensor.Bitwidth, v tensor.Bitwidth) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// MaxConfig returns the largest submodel: max resolution, depth, kernel,
// expand, no partitioning, full precision.
func (a *Arch) MaxConfig() *Config {
	c := &Config{Resolution: maxInt(a.Resolutions)}
	for _, s := range a.Stages {
		c.Depths = append(c.Depths, s.MaxDepth)
		for i := 0; i < s.MaxDepth; i++ {
			c.Layers = append(c.Layers, LayerSetting{
				Kernel: a.MaxKernel(), Expand: a.MaxExpand(),
				Partition: Partition{1, 1}, Quant: tensor.Bits32,
			})
		}
	}
	return c
}

// MinConfig returns the smallest submodel: min resolution, depth, kernel,
// expand, no partitioning, 8-bit activations.
func (a *Arch) MinConfig() *Config {
	minQ := a.QuantBits[0]
	for _, q := range a.QuantBits {
		if q < minQ {
			minQ = q
		}
	}
	c := &Config{Resolution: minInt(a.Resolutions)}
	for _, s := range a.Stages {
		c.Depths = append(c.Depths, s.MinDepth)
		for i := 0; i < s.MinDepth; i++ {
			c.Layers = append(c.Layers, LayerSetting{
				Kernel: minInt(a.Kernels), Expand: minInt(a.Expands),
				Partition: Partition{1, 1}, Quant: minQ,
			})
		}
	}
	return c
}

// RandomConfig samples a uniform random submodel.
func (a *Arch) RandomConfig(rng *rand.Rand) *Config {
	c := &Config{Resolution: a.Resolutions[rng.Intn(len(a.Resolutions))]}
	for _, s := range a.Stages {
		d := s.MinDepth + rng.Intn(s.MaxDepth-s.MinDepth+1)
		c.Depths = append(c.Depths, d)
		for i := 0; i < d; i++ {
			c.Layers = append(c.Layers, LayerSetting{
				Kernel:    a.Kernels[rng.Intn(len(a.Kernels))],
				Expand:    a.Expands[rng.Intn(len(a.Expands))],
				Partition: a.Partitions[rng.Intn(len(a.Partitions))],
				Quant:     a.QuantBits[rng.Intn(len(a.QuantBits))],
			})
		}
	}
	return c
}

// Mutate returns a copy of c with roughly rate·|settings| random settings
// re-sampled (at least one). Used by evolutionary search and SUPREME's
// replay-buffer mutation.
func (a *Arch) Mutate(c *Config, rate float64, rng *rand.Rand) *Config {
	out := c.Clone()
	if rng.Float64() < rate {
		out.Resolution = a.Resolutions[rng.Intn(len(a.Resolutions))]
	}
	// Depth mutation requires re-shaping the layer list.
	for si := range out.Depths {
		if rng.Float64() < rate {
			s := a.Stages[si]
			newD := s.MinDepth + rng.Intn(s.MaxDepth-s.MinDepth+1)
			out = reshapeDepth(a, out, si, newD, rng)
		}
	}
	for i := range out.Layers {
		if rng.Float64() < rate {
			out.Layers[i].Kernel = a.Kernels[rng.Intn(len(a.Kernels))]
		}
		if rng.Float64() < rate {
			out.Layers[i].Expand = a.Expands[rng.Intn(len(a.Expands))]
		}
		if rng.Float64() < rate {
			out.Layers[i].Partition = a.Partitions[rng.Intn(len(a.Partitions))]
		}
		if rng.Float64() < rate {
			out.Layers[i].Quant = a.QuantBits[rng.Intn(len(a.QuantBits))]
		}
	}
	if out.String() == c.String() && len(a.Kernels) > 1 {
		// Force one real change so Mutate never returns an identical config.
		i := rng.Intn(len(out.Layers))
		cur := out.Layers[i].Kernel
		for {
			k := a.Kernels[rng.Intn(len(a.Kernels))]
			if k != cur {
				out.Layers[i].Kernel = k
				break
			}
		}
	}
	return out
}

// reshapeDepth changes stage si of cfg to depth newD, trimming or extending
// the layer list with random settings.
func reshapeDepth(a *Arch, cfg *Config, si, newD int, rng *rand.Rand) *Config {
	out := &Config{Resolution: cfg.Resolution, Depths: append([]int(nil), cfg.Depths...)}
	idx := 0
	for s := 0; s < len(a.Stages); s++ {
		d := cfg.Depths[s]
		stageLayers := cfg.Layers[idx : idx+d]
		idx += d
		if s != si {
			out.Layers = append(out.Layers, stageLayers...)
			continue
		}
		out.Depths[s] = newD
		for i := 0; i < newD; i++ {
			if i < len(stageLayers) {
				out.Layers = append(out.Layers, stageLayers[i])
			} else {
				out.Layers = append(out.Layers, LayerSetting{
					Kernel:    a.Kernels[rng.Intn(len(a.Kernels))],
					Expand:    a.Expands[rng.Intn(len(a.Expands))],
					Partition: a.Partitions[rng.Intn(len(a.Partitions))],
					Quant:     a.QuantBits[rng.Intn(len(a.QuantBits))],
				})
			}
		}
	}
	return out
}

// Crossover produces a child taking each stage's depth and layers from one of
// the two parents uniformly at random (used by evolutionary search).
func (a *Arch) Crossover(p1, p2 *Config, rng *rand.Rand) *Config {
	child := &Config{}
	if rng.Intn(2) == 0 {
		child.Resolution = p1.Resolution
	} else {
		child.Resolution = p2.Resolution
	}
	i1, i2 := 0, 0
	for s := range a.Stages {
		d1, d2 := p1.Depths[s], p2.Depths[s]
		l1 := p1.Layers[i1 : i1+d1]
		l2 := p2.Layers[i2 : i2+d2]
		i1 += d1
		i2 += d2
		if rng.Intn(2) == 0 {
			child.Depths = append(child.Depths, d1)
			child.Layers = append(child.Layers, l1...)
		} else {
			child.Depths = append(child.Depths, d2)
			child.Layers = append(child.Layers, l2...)
		}
	}
	return child
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// String renders a compact human-readable config description.
func (c *Config) String() string {
	s := fmt.Sprintf("r%d d%v [", c.Resolution, c.Depths)
	for i, l := range c.Layers {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("k%de%d%sq%d", l.Kernel, l.Expand, l.Partition, l.Quant)
	}
	return s + "]"
}
