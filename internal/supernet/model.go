package supernet

import (
	"fmt"
	"math/rand"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

// Supernet holds the weight-shared parameters of the full search space. Any
// Config selects a submodel that runs directly against slices of these
// weights — switching submodels never copies or reloads parameters, which is
// what makes Murmuration's in-memory model reconfiguration take milliseconds
// (paper §5.1, Fig. 19).
type Supernet struct {
	Arch *Arch

	stemW, stemB *nn.Param
	stemBN       *bnParams
	blocks       [][]*mbBlock // [stage][layerSlot]
	headW, headB *nn.Param
	headBN       *bnParams
	clsW, clsB   *nn.Param
}

type bnParams struct {
	gamma, beta *nn.Param
	runMean     *tensor.Tensor
	runVar      *tensor.Tensor
}

func newBN(name string, c int) *bnParams {
	g := tensor.New(c)
	g.Fill(1)
	rv := tensor.New(c)
	rv.Fill(1)
	return &bnParams{
		gamma:   nn.NewParam(name+".gamma", g),
		beta:    nn.NewParam(name+".beta", tensor.New(c)),
		runMean: tensor.New(c),
		runVar:  rv,
	}
}

// mbBlock stores a mobile inverted-bottleneck block at maximum width/kernel.
type mbBlock struct {
	inC, outC, maxHidden, maxK int
	se                         bool
	stride                     int

	expandW *nn.Param // (maxHidden, inC, 1, 1)
	bn1     *bnParams
	dwW     *nn.Param // (maxHidden, 1, maxK, maxK)
	bn2     *bnParams
	seW1    *nn.Param // (seC, maxHidden)
	seB1    *nn.Param
	seW2    *nn.Param // (maxHidden, seC)
	seB2    *nn.Param
	projW   *nn.Param // (outC, maxHidden, 1, 1)
	bn3     *bnParams
}

// New builds a randomly initialized supernet for the given search space.
func New(a *Arch, seed int64) *Supernet {
	rng := rand.New(rand.NewSource(seed))
	s := &Supernet{Arch: a}

	stemW := tensor.New(a.StemChannels, a.InChannels, 3, 3)
	stemW.KaimingInit(rng, a.InChannels*9)
	s.stemW = nn.NewParam("stem.w", stemW)
	s.stemB = nn.NewParam("stem.b", tensor.New(a.StemChannels))
	s.stemBN = newBN("stem.bn", a.StemChannels)

	maxK := a.MaxKernel()
	maxE := a.MaxExpand()
	cin := a.StemChannels
	for si, st := range a.Stages {
		var stage []*mbBlock
		blockIn := cin
		for li := 0; li < st.MaxDepth; li++ {
			stride := 1
			if li == 0 {
				stride = st.Stride
			}
			b := newMBBlock(fmt.Sprintf("s%d.b%d", si, li), blockIn, st.Width, blockIn*maxE, maxK, stride, st.SE, rng)
			stage = append(stage, b)
			blockIn = st.Width
		}
		s.blocks = append(s.blocks, stage)
		cin = st.Width
	}

	headW := tensor.New(a.HeadChannels, cin, 1, 1)
	headW.KaimingInit(rng, cin)
	s.headW = nn.NewParam("head.w", headW)
	s.headB = nn.NewParam("head.b", tensor.New(a.HeadChannels))
	s.headBN = newBN("head.bn", a.HeadChannels)

	clsW := tensor.New(a.NumClasses, a.HeadChannels)
	clsW.KaimingInit(rng, a.HeadChannels)
	s.clsW = nn.NewParam("cls.w", clsW)
	s.clsB = nn.NewParam("cls.b", tensor.New(a.NumClasses))
	return s
}

func newMBBlock(name string, inC, outC, maxHidden, maxK, stride int, se bool, rng *rand.Rand) *mbBlock {
	b := &mbBlock{inC: inC, outC: outC, maxHidden: maxHidden, maxK: maxK, se: se, stride: stride}
	ew := tensor.New(maxHidden, inC, 1, 1)
	ew.KaimingInit(rng, inC)
	b.expandW = nn.NewParam(name+".expand", ew)
	b.bn1 = newBN(name+".bn1", maxHidden)
	dw := tensor.New(maxHidden, 1, maxK, maxK)
	dw.KaimingInit(rng, maxK*maxK)
	b.dwW = nn.NewParam(name+".dw", dw)
	b.bn2 = newBN(name+".bn2", maxHidden)
	if se {
		seC := maxHidden / 4
		if seC < 1 {
			seC = 1
		}
		w1 := tensor.New(seC, maxHidden)
		w1.KaimingInit(rng, maxHidden)
		b.seW1 = nn.NewParam(name+".se1", w1)
		b.seB1 = nn.NewParam(name+".se1b", tensor.New(seC))
		w2 := tensor.New(maxHidden, seC)
		w2.KaimingInit(rng, seC)
		b.seW2 = nn.NewParam(name+".se2", w2)
		b.seB2 = nn.NewParam(name+".se2b", tensor.New(maxHidden))
	}
	pw := tensor.New(outC, maxHidden, 1, 1)
	pw.KaimingInit(rng, maxHidden)
	b.projW = nn.NewParam(name+".proj", pw)
	b.bn3 = newBN(name+".bn3", outC)
	return b
}

// Params returns every trainable parameter of the supernet.
func (s *Supernet) Params() []*nn.Param {
	ps := []*nn.Param{s.stemW, s.stemB, s.stemBN.gamma, s.stemBN.beta}
	for _, stage := range s.blocks {
		for _, b := range stage {
			ps = append(ps, b.expandW, b.bn1.gamma, b.bn1.beta,
				b.dwW, b.bn2.gamma, b.bn2.beta,
				b.projW, b.bn3.gamma, b.bn3.beta)
			if b.se {
				ps = append(ps, b.seW1, b.seB1, b.seW2, b.seB2)
			}
		}
	}
	ps = append(ps, s.headW, s.headB, s.headBN.gamma, s.headBN.beta, s.clsW, s.clsB)
	return ps
}

// NumParams returns the total scalar parameter count.
func (s *Supernet) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += p.W.Len()
	}
	return n
}

// ---------------------------------------------------------------------------
// Weight slicing
// ---------------------------------------------------------------------------

// sliceConv1x1 copies the (outC, inC) top-left block of a 1x1 conv weight.
func sliceConv1x1(full *tensor.Tensor, outC, inC int) *tensor.Tensor {
	w := tensor.New(outC, inC, 1, 1)
	fullIn := full.Shape[1]
	for o := 0; o < outC; o++ {
		copy(w.Data[o*inC:(o+1)*inC], full.Data[o*fullIn:o*fullIn+inC])
	}
	return w
}

func scatterConv1x1(fullG, g *tensor.Tensor, outC, inC int) {
	fullIn := fullG.Shape[1]
	for o := 0; o < outC; o++ {
		dst := fullG.Data[o*fullIn : o*fullIn+inC]
		src := g.Data[o*inC : (o+1)*inC]
		for i := range src {
			dst[i] += src[i]
		}
	}
}

// sliceDW center-crops the first `ch` depthwise kernels from maxK to k.
func sliceDW(full *tensor.Tensor, ch, k int) *tensor.Tensor {
	maxK := full.Shape[2]
	off := (maxK - k) / 2
	w := tensor.New(ch, 1, k, k)
	for c := 0; c < ch; c++ {
		for y := 0; y < k; y++ {
			srcBase := c*maxK*maxK + (y+off)*maxK + off
			copy(w.Data[c*k*k+y*k:c*k*k+(y+1)*k], full.Data[srcBase:srcBase+k])
		}
	}
	return w
}

func scatterDW(fullG, g *tensor.Tensor, ch, k int) {
	maxK := fullG.Shape[2]
	off := (maxK - k) / 2
	for c := 0; c < ch; c++ {
		for y := 0; y < k; y++ {
			dst := fullG.Data[c*maxK*maxK+(y+off)*maxK+off:]
			src := g.Data[c*k*k+y*k : c*k*k+(y+1)*k]
			for i := range src {
				dst[i] += src[i]
			}
		}
	}
}

// sliceLinear copies the (out, in) top-left block of a linear weight.
func sliceLinear(full *tensor.Tensor, out, in int) *tensor.Tensor {
	w := tensor.New(out, in)
	fullIn := full.Shape[1]
	for o := 0; o < out; o++ {
		copy(w.Data[o*in:(o+1)*in], full.Data[o*fullIn:o*fullIn+in])
	}
	return w
}

func scatterLinear(fullG, g *tensor.Tensor, out, in int) {
	fullIn := fullG.Shape[1]
	for o := 0; o < out; o++ {
		dst := fullG.Data[o*fullIn : o*fullIn+in]
		src := g.Data[o*in : (o+1)*in]
		for i := range src {
			dst[i] += src[i]
		}
	}
}

func sliceVec(full *tensor.Tensor, n int) *tensor.Tensor {
	v := tensor.New(n)
	copy(v.Data, full.Data[:n])
	return v
}

func scatterVec(fullG, g *tensor.Tensor, n int) {
	for i := 0; i < n; i++ {
		fullG.Data[i] += g.Data[i]
	}
}
