package supernet

import (
	"fmt"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

// The Exec* methods are the runtime executor's entry points: they run one
// piece of the network (stem, a single block on a single tile, or the head)
// in inference mode against the in-memory shared weights. The distributed
// scheduler composes them across devices; quantization of inputs happens on
// the wire, not here.

// ExecStem runs the stem on x (N,C,H,W at the config resolution).
func (s *Supernet) ExecStem(x *tensor.Tensor) *tensor.Tensor {
	y, _ := nn.ConvFwd(x, s.stemW.W, s.stemB.W, tensor.ConvOpts{Stride: 2, Padding: 1})
	y, _ = s.bnFwd(s.stemBN, y, s.Arch.StemChannels, false)
	y, _ = nn.HSwishFwd(y)
	return y
}

// ExecBlock runs MBConv block (stage, index) on one input tile under an
// elastic setting, including the residual shortcut when applicable. The
// caller is responsible for spatial tiling; the tile is treated as a full
// FDSP tile (zero padding at its borders).
func (s *Supernet) ExecBlock(stage, index int, x *tensor.Tensor, ls LayerSetting) (*tensor.Tensor, error) {
	if stage < 0 || stage >= len(s.blocks) {
		return nil, fmt.Errorf("supernet: stage %d out of range", stage)
	}
	if index < 0 || index >= len(s.blocks[stage]) {
		return nil, fmt.Errorf("supernet: block %d out of range in stage %d", index, stage)
	}
	b := s.blocks[stage][index]
	if x.Shape[1] != b.inC {
		return nil, fmt.Errorf("supernet: block s%d.b%d wants %d channels, got %d",
			stage, index, b.inC, x.Shape[1])
	}
	if x.Shape[2]%b.stride != 0 || x.Shape[3]%b.stride != 0 {
		return nil, fmt.Errorf("supernet: tile %dx%d not divisible by stride %d",
			x.Shape[2], x.Shape[3], b.stride)
	}
	_, y := s.tileFwd(b, x, ls, false)
	if b.stride == 1 && b.inC == b.outC {
		y.Add(x)
	}
	return y, nil
}

// BlockAt maps an active-layer index of cfg to its (stage, blockIndex) and
// stride. It mirrors the stage-major layer ordering of Config.Layers.
func (a *Arch) BlockAt(cfg *Config, layer int) (stage, index, stride int, err error) {
	if layer < 0 || layer >= len(cfg.Layers) {
		return 0, 0, 0, fmt.Errorf("supernet: layer %d out of range", layer)
	}
	idx := layer
	for si := range a.Stages {
		if idx < cfg.Depths[si] {
			stride = 1
			if idx == 0 {
				stride = a.Stages[si].Stride
			}
			return si, idx, stride, nil
		}
		idx -= cfg.Depths[si]
	}
	return 0, 0, 0, fmt.Errorf("supernet: layer %d beyond active depth", layer)
}

// ExecHead runs the final conv + pooling + classifier on the trunk output.
func (s *Supernet) ExecHead(x *tensor.Tensor) *tensor.Tensor {
	cin := x.Shape[1]
	headW := sliceConv1x1(s.headW.W, s.Arch.HeadChannels, cin)
	y, _ := nn.ConvFwd(x, headW, s.headB.W, tensor.ConvOpts{Stride: 1, Padding: 0})
	y, _ = s.bnFwd(s.headBN, y, s.Arch.HeadChannels, false)
	y, _ = nn.HSwishFwd(y)
	pooled, _ := nn.GlobalAvgPoolFwd(y)
	logits, _ := nn.LinearFwd(pooled, s.clsW.W, s.clsB.W)
	return logits
}

// TileSplit computes the FDSP tile geometry for an input of spatial size
// (h, w) under grid and stride: per-tile input origins and sizes, in
// row-major tile order. It matches blockFwd's output-space tiling.
func TileSplit(h, w int, grid Partition, stride int) (y0s, x0s, ths, tws []int, err error) {
	if h%stride != 0 || w%stride != 0 {
		return nil, nil, nil, nil, fmt.Errorf("supernet: fmap %dx%d not divisible by stride %d", h, w, stride)
	}
	rows, err := splitSizes(h/stride, grid.Gy)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	cols, err := splitSizes(w/stride, grid.Gx)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	oy := 0
	for _, r := range rows {
		ox := 0
		for _, c := range cols {
			y0s = append(y0s, oy*stride)
			x0s = append(x0s, ox*stride)
			ths = append(ths, r*stride)
			tws = append(tws, c*stride)
			ox += c
		}
		oy += r
	}
	return y0s, x0s, ths, tws, nil
}
