package supernet

import (
	"math"
	"math/rand"
	"testing"

	"murmuration/internal/nn"
	"murmuration/internal/tensor"
)

func randInput(rng *rand.Rand, n, c, h, w int) *tensor.Tensor {
	t := tensor.New(n, c, h, w)
	for i := range t.Data {
		t.Data[i] = rng.Float32()*2 - 1
	}
	return t
}

// microArch is a minimal search space for gradient checks: one stage, no SE.
func microArch() *Arch {
	return &Arch{
		Name:         "micro",
		StemChannels: 4,
		Stages: []StageSpec{
			{Width: 6, MinDepth: 1, MaxDepth: 2, Stride: 2, SE: true},
		},
		HeadChannels: 8,
		NumClasses:   3,
		InChannels:   3,
		Resolutions:  []int{16},
		Kernels:      []int{3, 5},
		Expands:      []int{2, 3},
		Partitions:   []Partition{{1, 1}, {1, 2}, {2, 2}},
		QuantBits:    []tensor.Bitwidth{tensor.Bits8, tensor.Bits32},
	}
}

func TestForwardShapes(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 1)
	rng := rand.New(rand.NewSource(1))
	x := randInput(rng, 2, 3, 32, 32)
	for _, cfg := range []*Config{a.MaxConfig(), a.MinConfig()} {
		logits, _, err := s.Forward(x, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		if logits.Shape[0] != 2 || logits.Shape[1] != 4 {
			t.Fatalf("logits shape %v", logits.Shape)
		}
		for _, v := range logits.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("logits contain NaN/Inf")
			}
		}
	}
}

func TestForwardDeterministic(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 2)
	rng := rand.New(rand.NewSource(2))
	x := randInput(rng, 1, 3, 32, 32)
	cfg := a.MaxConfig()
	l1, _, err := s.Forward(x, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, _ := s.Forward(x, cfg, false)
	for i := range l1.Data {
		if l1.Data[i] != l2.Data[i] {
			t.Fatal("eval forward must be deterministic")
		}
	}
}

func TestDifferentConfigsDifferentOutputs(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 3)
	rng := rand.New(rand.NewSource(3))
	x := randInput(rng, 1, 3, 32, 32)
	l1, _, _ := s.Forward(x, a.MaxConfig(), false)
	l2, _, _ := s.Forward(x, a.MinConfig(), false)
	diff := 0.0
	for i := range l1.Data {
		diff += math.Abs(float64(l1.Data[i] - l2.Data[i]))
	}
	if diff < 1e-6 {
		t.Fatal("max and min submodels should produce different logits")
	}
}

func TestRandomConfigsAllExecute(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 4)
	rng := rand.New(rand.NewSource(4))
	x := randInput(rng, 1, 3, 32, 32)
	for i := 0; i < 20; i++ {
		cfg := a.RandomConfig(rng)
		logits, _, err := s.Forward(x, cfg, false)
		if err != nil {
			t.Fatalf("config %d (%s): %v", i, cfg, err)
		}
		for _, v := range logits.Data {
			if math.IsNaN(float64(v)) {
				t.Fatalf("config %d produced NaN", i)
			}
		}
	}
}

func TestPartitionedForwardCloseToUnpartitioned(t *testing.T) {
	// FDSP changes border math (zero padding at tile edges) plus per-tile
	// BN/SE statistics, so outputs differ — but must stay close in scale.
	a := TinyArch(4)
	s := New(a, 5)
	rng := rand.New(rand.NewSource(5))
	x := randInput(rng, 1, 3, 32, 32)

	cfgFull := a.MaxConfig()
	cfgPart := a.MaxConfig()
	for i := range cfgPart.Layers {
		cfgPart.Layers[i].Partition = Partition{2, 2}
	}
	l1, _, err := s.Forward(x, cfgFull, false)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := s.Forward(x, cfgPart, false)
	if err != nil {
		t.Fatal(err)
	}
	var norm1, normDiff float64
	for i := range l1.Data {
		norm1 += float64(l1.Data[i]) * float64(l1.Data[i])
		d := float64(l1.Data[i] - l2.Data[i])
		normDiff += d * d
	}
	if normDiff/math.Max(norm1, 1e-9) > 4.0 {
		t.Fatalf("partitioned output wildly different: relative sq err %v", normDiff/norm1)
	}
}

// TestFDSPConvInteriorExact verifies the core FDSP property at the op level:
// zero-padded tile convolution matches the full convolution exactly on all
// output pixels whose receptive field does not cross a tile border.
func TestFDSPConvInteriorExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randInput(rng, 1, 3, 16, 16)
	w := tensor.New(4, 3, 3, 3)
	w.KaimingInit(rng, 27)
	opts := tensor.ConvOpts{Stride: 1, Padding: 1}
	full := tensor.Conv2D(x, w, nil, opts)

	// 2x2 FDSP tiles of 8x8.
	stitched := tensor.New(1, 4, 16, 16)
	for _, y0 := range []int{0, 8} {
		for _, x0 := range []int{0, 8} {
			tile := tensor.CropSpatial(x, y0, x0, 8, 8)
			out := tensor.Conv2D(tile, w, nil, opts)
			tensor.PasteSpatial(stitched, out, y0, x0)
		}
	}
	// Interior pixels: those at distance ≥1 from any tile border.
	for c := 0; c < 4; c++ {
		for y := 0; y < 16; y++ {
			for xx := 0; xx < 16; xx++ {
				distY := minAbs(y%8, 7-y%8)
				distX := minAbs(xx%8, 7-xx%8)
				if distY < 1 || distX < 1 {
					continue // border pixel, FDSP differs by design
				}
				f := full.At(0, c, y, xx)
				st := stitched.At(0, c, y, xx)
				if math.Abs(float64(f-st)) > 1e-4 {
					t.Fatalf("interior pixel (%d,%d,%d) differs: %v vs %v", c, y, xx, f, st)
				}
			}
		}
	}
}

func minAbs(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestGradientCheckEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("gradient check is slow")
	}
	a := microArch()
	s := New(a, 7)
	rng := rand.New(rand.NewSource(7))
	x := randInput(rng, 2, 3, 16, 16)
	labels := []int{0, 2}
	cfg := &Config{
		Resolution: 16,
		Depths:     []int{2},
		Layers: []LayerSetting{
			{Kernel: 3, Expand: 2, Partition: Partition{1, 1}, Quant: tensor.Bits32},
			{Kernel: 5, Expand: 3, Partition: Partition{1, 2}, Quant: tensor.Bits32},
		},
	}

	loss := func() float64 {
		logits, _, err := s.Forward(x, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		l, _, _ := nn.SoftmaxCrossEntropy(logits, labels)
		return l
	}

	logits, caches, err := s.Forward(x, cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	_, dlogits, _ := nn.SoftmaxCrossEntropy(logits, labels)
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
	s.Backward(dlogits, caches)

	// Momentum 0.05 BN running-stat updates make loss() non-repeatable;
	// neutralize by re-running forward (momentum update is idempotent in
	// expectation and tiny); tolerance accounts for it.
	const h = 1e-2
	checked := 0
	for _, p := range s.Params() {
		stride := p.W.Len()/3 + 1
		for i := 0; i < p.W.Len(); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := loss()
			p.W.Data[i] = orig - h
			lm := loss()
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := float64(p.G.Data[i])
			scale := math.Max(0.05, math.Abs(want))
			if math.Abs(got-want)/scale > 0.15 {
				t.Fatalf("%s grad[%d]: analytic %v numeric %v", p.Name, i, got, want)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d gradient entries checked", checked)
	}
}

func TestSupernetOverfitsTinyBatch(t *testing.T) {
	// One-shot sanity: SGD on a fixed batch must drive training loss down.
	a := TinyArch(4)
	s := New(a, 8)
	rng := rand.New(rand.NewSource(8))
	x := randInput(rng, 8, 3, 32, 32)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 4
	}
	cfg := a.MaxConfig()
	opt := nn.NewSGD(0.05, 0.9, 0)
	params := s.Params()

	var first, last float64
	for step := 0; step < 30; step++ {
		logits, caches, err := s.Forward(x, cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		loss, dlogits, _ := nn.SoftmaxCrossEntropy(logits, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		s.Backward(dlogits, caches)
		nn.ClipGradNorm(params, 5)
		opt.Step(params)
	}
	if last > first*0.7 {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestNumParamsPositiveAndStable(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 9)
	n := s.NumParams()
	if n <= 0 {
		t.Fatal("NumParams must be positive")
	}
	if s.NumParams() != n {
		t.Fatal("NumParams must be stable")
	}
}

func TestQuantizedConfigExecutes(t *testing.T) {
	a := TinyArch(4)
	s := New(a, 10)
	rng := rand.New(rand.NewSource(10))
	x := randInput(rng, 1, 3, 32, 32)
	cfg := a.MaxConfig()
	for i := range cfg.Layers {
		cfg.Layers[i].Quant = tensor.Bits8
	}
	lq, _, err := s.Forward(x, cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	lf, _, _ := s.Forward(x, a.MaxConfig(), false)
	// Quantization perturbs but should not destroy the output.
	var diff, norm float64
	for i := range lq.Data {
		d := float64(lq.Data[i] - lf.Data[i])
		diff += d * d
		norm += float64(lf.Data[i]) * float64(lf.Data[i])
	}
	if diff == 0 {
		t.Fatal("8-bit quantization should perturb the logits")
	}
	if diff/math.Max(norm, 1e-9) > 1.0 {
		t.Fatalf("8-bit quantization destroyed the output: rel err %v", diff/norm)
	}
}

func BenchmarkTinyForwardMaxConfig(b *testing.B) {
	a := TinyArch(4)
	s := New(a, 1)
	rng := rand.New(rand.NewSource(1))
	x := randInput(rng, 1, 3, 32, 32)
	cfg := a.MaxConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Forward(x, cfg, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCostModel(b *testing.B) {
	a := DefaultArch()
	cfg := a.MaxConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Costs(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
