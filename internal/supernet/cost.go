package supernet

import (
	"fmt"

	"murmuration/internal/device"
	"murmuration/internal/tensor"
)

// LayerCost summarizes one decision layer (an MBConv block, or the fixed
// stem/head) for the latency model: compute, memory traffic, and the size of
// its input/output activations.
type LayerCost struct {
	Name string
	// FLOPs is the total floating-point operation count of the layer.
	FLOPs float64
	// MemBytes is the memory traffic (weights + activations) for the
	// roofline model.
	MemBytes float64
	// WeightBytes is the parameter footprint of the layer.
	WeightBytes float64
	// InElems / OutElems are activation element counts entering/leaving.
	InElems, OutElems int
	// Partition is the spatial grid this layer executes under.
	Partition Partition
	// Quant is the bitwidth applied to this layer's *input* feature map
	// when it crosses a device boundary.
	Quant tensor.Bitwidth
	// Partitionable marks layers the placement may spread across devices
	// (MBConv blocks). The stem and head always run on the owner device.
	Partitionable bool
}

// InWireBytes returns the wire size of this layer's full input under its
// quantization setting.
func (lc LayerCost) InWireBytes() float64 {
	return float64(lc.InElems * lc.Quant.BytesPerElement())
}

// Costs computes the per-layer cost table of config c under search space a.
// The table contains: stem, one entry per active MBConv layer, and the
// head (final conv + global pool + classifier) as the last entry.
func (a *Arch) Costs(c *Config) ([]LayerCost, error) {
	if err := a.Validate(c); err != nil {
		return nil, err
	}
	var out []LayerCost
	r := c.Resolution
	h, w := r, r
	inC := a.InChannels

	// Stem: 3x3 stride-2 conv + BN + hswish.
	oh, ow := h/2, w/2
	stemFlops := float64(2*oh*ow) * float64(inC*9*a.StemChannels)
	stemW := float64(inC*9*a.StemChannels+2*a.StemChannels) * 4
	out = append(out, LayerCost{
		Name:        "stem",
		FLOPs:       stemFlops,
		MemBytes:    stemW + float64(h*w*inC+oh*ow*a.StemChannels)*4,
		WeightBytes: stemW,
		InElems:     h * w * inC,
		OutElems:    oh * ow * a.StemChannels,
		Partition:   Partition{1, 1},
		Quant:       tensor.Bits32,
	})
	h, w = oh, ow
	cin := a.StemChannels

	li := 0
	for si, st := range a.Stages {
		d := c.Depths[si]
		for i := 0; i < d; i++ {
			ls := c.Layers[li]
			li++
			stride := 1
			if i == 0 {
				stride = st.Stride
			}
			oh, ow := h/stride, w/stride
			hidden := cin * ls.Expand
			cout := st.Width

			// expand 1x1 → depthwise kxk → (SE) → project 1x1
			fl := float64(2*h*w) * float64(cin*hidden)                   // expand
			fl += float64(2*oh*ow) * float64(hidden*ls.Kernel*ls.Kernel) // depthwise
			if st.SE {
				se := hidden / 4
				if se < 1 {
					se = 1
				}
				fl += float64(2*hidden*se*2) + float64(oh*ow*hidden) // squeeze-excite + rescale
			}
			fl += float64(2*oh*ow) * float64(hidden*cout) // project

			wBytes := float64(cin*hidden+hidden*ls.Kernel*ls.Kernel+hidden*cout) * 4
			if st.SE {
				se := hidden / 4
				if se < 1 {
					se = 1
				}
				wBytes += float64(2*hidden*se) * 4
			}
			actBytes := float64(h*w*cin+oh*ow*cout+h*w*hidden+oh*ow*hidden) * 4

			out = append(out, LayerCost{
				Name:          fmt.Sprintf("stage%d.block%d", si, i),
				FLOPs:         fl,
				MemBytes:      wBytes + actBytes,
				WeightBytes:   wBytes,
				InElems:       h * w * cin,
				OutElems:      oh * ow * cout,
				Partition:     ls.Partition,
				Quant:         ls.Quant,
				Partitionable: true,
			})
			h, w = oh, ow
			cin = cout
		}
	}

	// Head: 1x1 conv to HeadChannels, global pool, classifier.
	headFlops := float64(2*h*w)*float64(cin*a.HeadChannels) +
		float64(2*a.HeadChannels*a.NumClasses)
	headW := float64(cin*a.HeadChannels+a.HeadChannels*a.NumClasses) * 4
	out = append(out, LayerCost{
		Name:        "head",
		FLOPs:       headFlops,
		MemBytes:    headW + float64(h*w*cin+a.HeadChannels+a.NumClasses)*4,
		WeightBytes: headW,
		InElems:     h * w * cin,
		OutElems:    a.NumClasses,
		Partition:   Partition{1, 1},
		Quant:       tensor.Bits32,
	})
	return out, nil
}

// TotalFLOPs sums the cost table's FLOPs.
func TotalFLOPs(costs []LayerCost) float64 {
	var s float64
	for _, c := range costs {
		s += c.FLOPs
	}
	return s
}

// TotalWeightBytes sums the cost table's parameter footprint.
func TotalWeightBytes(costs []LayerCost) float64 {
	var s float64
	for _, c := range costs {
		s += c.WeightBytes
	}
	return s
}

// Decision is a joint submodel + placement choice — the unit Murmuration's
// policy outputs and the runtime executes.
type Decision struct {
	Config    *Config
	Placement *Placement
}

// Placement assigns each tile of each partitionable layer to a device index
// within a cluster. Devices[k] has exactly Partition.NumTiles() entries for
// decision layer k (indexing only the partitionable layers, in order).
type Placement struct {
	Devices [][]int
}

// LocalPlacement places every tile of every layer on device 0.
func LocalPlacement(costs []LayerCost) *Placement {
	p := &Placement{}
	for _, lc := range costs {
		if !lc.Partitionable {
			continue
		}
		p.Devices = append(p.Devices, make([]int, lc.Partition.NumTiles()))
	}
	return p
}

// Validate checks the placement against a cost table and cluster size.
func (p *Placement) Validate(costs []LayerCost, n int) error {
	k := 0
	for _, lc := range costs {
		if !lc.Partitionable {
			continue
		}
		if k >= len(p.Devices) {
			return fmt.Errorf("supernet: placement missing layer %d", k)
		}
		if len(p.Devices[k]) != lc.Partition.NumTiles() {
			return fmt.Errorf("supernet: layer %d has %d tiles, placement has %d",
				k, lc.Partition.NumTiles(), len(p.Devices[k]))
		}
		for _, d := range p.Devices[k] {
			if d < 0 || d >= n {
				return fmt.Errorf("supernet: device %d out of range [0,%d)", d, n)
			}
		}
		k++
	}
	if k != len(p.Devices) {
		return fmt.Errorf("supernet: placement has %d layers, costs have %d", len(p.Devices), k)
	}
	return nil
}

// LatencyBreakdown itemizes the estimated inference latency.
type LatencyBreakdown struct {
	ComputeSec  float64
	TransferSec float64
	TotalSec    float64
}

// EstimateLatency predicts end-to-end inference latency (seconds) for
// executing the cost table on the cluster under the placement.
//
// Model: the stem runs on the local device (0). For each partitionable
// layer, input tiles move from their current owner to the assigned device
// (star topology — remote↔remote hops relay through the local device). The
// network follows the paper's testbed (a switch with per-link `tc` shaping):
// traffic on *distinct* links proceeds in parallel, traffic sharing a link
// serializes, so a transfer phase costs the maximum over links of
// (link bytes / link bandwidth + link delay). Tile computations run in
// parallel across devices (serially per device). A grid change forces a
// gather to the local device followed by a re-scatter. After the last
// block, tiles gather back to the local device, which runs the head (the
// paper's "centrally executed fully connected layers").
func EstimateLatency(costs []LayerCost, cluster *device.Cluster, p *Placement) (LatencyBreakdown, error) {
	if err := p.Validate(costs, cluster.N()); err != nil {
		return LatencyBreakdown{}, err
	}
	var br LatencyBreakdown

	// ownership: device per tile of the *previous* layer's output grid.
	owners := []int{0}
	prevGrid := Partition{1, 1}
	prevOutElems := 0

	k := 0 // partitionable-layer index
	for _, lc := range costs {
		if !lc.Partitionable {
			// Stem and head run on the local device; any remote tiles
			// must be gathered first.
			ph := newPhase(cluster)
			gatherBytes := gatherBytesPerOwner(owners, prevOutElems, lc.Quant)
			for _, o := range owners {
				ph.add(o, gatherBytes)
			}
			br.TransferSec += ph.time()
			br.ComputeSec += cluster.Devices[0].Profile.LayerTime(lc.FLOPs, lc.MemBytes)
			owners = []int{0}
			prevGrid = Partition{1, 1}
			prevOutElems = lc.OutElems
			continue
		}

		assign := p.Devices[k]
		k++
		grid := lc.Partition
		tiles := grid.NumTiles()
		tileInBytes := lc.InWireBytes() / float64(tiles)

		ph := newPhase(cluster)
		if grid == prevGrid && tiles == len(owners) {
			// Tile-aligned: each tile moves only if its owner changes
			// (relayed through the local device: both links are charged).
			for t := 0; t < tiles; t++ {
				if owners[t] != assign[t] {
					ph.add(owners[t], tileInBytes)
					ph.add(assign[t], tileInBytes)
				}
			}
		} else {
			// Grid change: gather previous output to local, then scatter
			// this layer's input tiles to their devices.
			gatherBytes := gatherBytesPerOwner(owners, prevOutElems, lc.Quant)
			for _, o := range owners {
				ph.add(o, gatherBytes)
			}
			br.TransferSec += ph.time()
			ph = newPhase(cluster)
			for t := 0; t < tiles; t++ {
				ph.add(assign[t], tileInBytes)
			}
		}
		br.TransferSec += ph.time()

		// Per-device serial compute, devices in parallel.
		perDev := make(map[int]float64)
		tileFlops := lc.FLOPs / float64(tiles)
		tileMem := lc.MemBytes / float64(tiles)
		for t := 0; t < tiles; t++ {
			d := assign[t]
			perDev[d] += cluster.Devices[d].Profile.LayerTime(tileFlops, tileMem)
		}
		var maxComp float64
		for _, v := range perDev {
			if v > maxComp {
				maxComp = v
			}
		}
		br.ComputeSec += maxComp

		owners = append([]int(nil), assign...)
		prevGrid = grid
		prevOutElems = lc.OutElems
	}

	br.TotalSec = br.ComputeSec + br.TransferSec
	return br, nil
}

// phase accumulates per-link traffic for one synchronized transfer phase and
// reports its duration: max over links of (bytes/bandwidth + delay), with
// device 0 (local) free.
type phase struct {
	cluster *device.Cluster
	bytes   map[int]float64
}

func newPhase(cluster *device.Cluster) *phase {
	return &phase{cluster: cluster, bytes: make(map[int]float64)}
}

// add charges `bytes` to device d's link (no-op for the local device).
func (p *phase) add(d int, bytes float64) {
	if d != 0 && bytes > 0 {
		p.bytes[d] += bytes
	}
}

// time returns the phase duration.
func (p *phase) time() float64 {
	var worst float64
	for d, b := range p.bytes {
		if t := p.cluster.Devices[d].TransferTime(b); t > worst {
			worst = t
		}
	}
	return worst
}

// gatherBytesPerOwner is the wire size of one owner's tile when collecting
// totalElems split evenly among owners at bitwidth q.
func gatherBytesPerOwner(owners []int, totalElems int, q tensor.Bitwidth) float64 {
	if totalElems == 0 || len(owners) == 0 {
		return 0
	}
	return float64(totalElems*q.BytesPerElement()) / float64(len(owners))
}
