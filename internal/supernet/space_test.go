package supernet

import (
	"math/rand"
	"testing"

	"murmuration/internal/tensor"
)

func TestMaxMinConfigsValid(t *testing.T) {
	for _, a := range []*Arch{DefaultArch(), TinyArch(4)} {
		if err := a.Validate(a.MaxConfig()); err != nil {
			t.Fatalf("%s max config invalid: %v", a.Name, err)
		}
		if err := a.Validate(a.MinConfig()); err != nil {
			t.Fatalf("%s min config invalid: %v", a.Name, err)
		}
	}
}

func TestMaxConfigIsLargest(t *testing.T) {
	a := DefaultArch()
	maxC, _ := a.Costs(a.MaxConfig())
	minC, _ := a.Costs(a.MinConfig())
	if TotalFLOPs(maxC) <= TotalFLOPs(minC) {
		t.Fatal("max config must have more FLOPs than min config")
	}
	if TotalWeightBytes(maxC) <= TotalWeightBytes(minC) {
		t.Fatal("max config must have more weights than min config")
	}
}

func TestRandomConfigsValid(t *testing.T) {
	a := DefaultArch()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		c := a.RandomConfig(rng)
		if err := a.Validate(c); err != nil {
			t.Fatalf("random config %d invalid: %v\n%s", i, err, c)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	a := DefaultArch()
	good := a.MaxConfig()

	bad := good.Clone()
	bad.Resolution = 999
	if a.Validate(bad) == nil {
		t.Fatal("bad resolution accepted")
	}

	bad = good.Clone()
	bad.Depths[0] = 99
	if a.Validate(bad) == nil {
		t.Fatal("bad depth accepted")
	}

	bad = good.Clone()
	bad.Layers[0].Kernel = 11
	if a.Validate(bad) == nil {
		t.Fatal("bad kernel accepted")
	}

	bad = good.Clone()
	bad.Layers[2].Partition = Partition{3, 3}
	if a.Validate(bad) == nil {
		t.Fatal("bad partition accepted")
	}

	bad = good.Clone()
	bad.Layers[1].Quant = tensor.Bitwidth(4)
	if a.Validate(bad) == nil {
		t.Fatal("bad quant accepted")
	}

	bad = good.Clone()
	bad.Layers = bad.Layers[:len(bad.Layers)-1]
	if a.Validate(bad) == nil {
		t.Fatal("layer/depth mismatch accepted")
	}
}

func TestMutateProducesValidDistinctConfigs(t *testing.T) {
	a := DefaultArch()
	rng := rand.New(rand.NewSource(2))
	base := a.RandomConfig(rng)
	for i := 0; i < 100; i++ {
		m := a.Mutate(base, 0.1, rng)
		if err := a.Validate(m); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		if m.String() == base.String() {
			t.Fatalf("mutation %d produced identical config", i)
		}
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	a := TinyArch(4)
	rng := rand.New(rand.NewSource(3))
	base := a.MaxConfig()
	snapshot := base.String()
	for i := 0; i < 50; i++ {
		a.Mutate(base, 0.5, rng)
	}
	if base.String() != snapshot {
		t.Fatal("Mutate modified the parent config")
	}
}

func TestCrossoverValid(t *testing.T) {
	a := DefaultArch()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		p1 := a.RandomConfig(rng)
		p2 := a.RandomConfig(rng)
		child := a.Crossover(p1, p2, rng)
		if err := a.Validate(child); err != nil {
			t.Fatalf("crossover %d invalid: %v", i, err)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := TinyArch(4)
	c := a.MaxConfig()
	cl := c.Clone()
	cl.Layers[0].Kernel = 3 // max config uses kernel 5 in TinyArch
	cl.Depths[0] = 1
	if c.Layers[0].Kernel == 3 || c.Depths[0] == 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestPartitionHelpers(t *testing.T) {
	p := Partition{2, 2}
	if p.NumTiles() != 4 || p.String() != "2x2" {
		t.Fatalf("partition helpers: %d %s", p.NumTiles(), p)
	}
}

func TestArchBounds(t *testing.T) {
	a := DefaultArch()
	if a.MaxKernel() != 7 || a.MaxExpand() != 6 {
		t.Fatalf("MaxKernel/MaxExpand = %d/%d", a.MaxKernel(), a.MaxExpand())
	}
	if a.MaxDepthTotal() != 20 {
		t.Fatalf("MaxDepthTotal = %d, want 20 (5 stages × 4)", a.MaxDepthTotal())
	}
}

func TestPaperScaleFLOPsRange(t *testing.T) {
	// The MobileNetV3-Large family runs 150–700 MFLOPs at these
	// resolutions; the supernet's max config should land in that regime
	// (×2 for our multiply+add counting convention).
	a := DefaultArch()
	costs, err := a.Costs(a.MaxConfig())
	if err != nil {
		t.Fatal(err)
	}
	fl := TotalFLOPs(costs)
	if fl < 100e6 || fl > 3e9 {
		t.Fatalf("max config FLOPs %v outside MobileNetV3 regime", fl)
	}
}
